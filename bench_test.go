package repro

// One benchmark per table and figure of the paper's Section VI, plus the
// two theorem constructions. Each benchmark exercises exactly the code that
// regenerates the corresponding artifact (cmd/experiments prints the full
// rows; EXPERIMENTS.md records paper-vs-measured numbers). The suite is the
// Small dataset so `go test -bench=.` stays fast; run
// `go run ./cmd/experiments -exp all -scale full` for the real thing.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/factor"
	"repro/internal/minio"
	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/traversal"
	"repro/internal/tree"
)

var (
	suiteOnce sync.Once
	suite     []dataset.Instance
	suiteErr  error
)

func benchSuite(b *testing.B) []dataset.Instance {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = dataset.AssemblySuite(dataset.Small)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkTableIPostOrderVsOptimal regenerates Table I: PostOrder memory
// versus the optimum over the assembly-tree suite.
func BenchmarkTableIPostOrderVsOptimal(b *testing.B) {
	insts := benchSuite(b)
	var st experiments.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = experiments.RunMemoryComparison(insts).Stats()
	}
	b.ReportMetric(100*st.FractionNonOpt, "%nonopt")
	b.ReportMetric(st.MaxRatio, "maxratio")
}

// BenchmarkFig5MemoryProfile regenerates Figure 5: the performance profile
// of PostOrder against the optimum on the non-optimal cases.
func BenchmarkFig5MemoryProfile(b *testing.B) {
	insts := benchSuite(b)
	mc := experiments.RunMemoryComparison(insts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Profile(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: the run-time comparison of the three
// MinMemory algorithms (each sub-benchmark times one algorithm over the
// whole suite; the profile is the ratio of these numbers).
func BenchmarkFig6(b *testing.B) {
	insts := benchSuite(b)
	algs := []struct {
		name string
		f    func(*tree.Tree) traversal.Result
	}{
		{"MinMem", traversal.MinMem},
		{"PostOrder", traversal.BestPostOrder},
		{"Liu", traversal.LiuExact},
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, inst := range insts {
					_ = alg.f(inst.Tree)
				}
			}
		})
	}
}

// BenchmarkFig7Heuristics regenerates Figure 7: the I/O volume of every
// eviction policy on MinMem traversals across the memory sweep.
func BenchmarkFig7Heuristics(b *testing.B) {
	insts := benchSuite(b)
	for _, pol := range minio.Policies {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, inst := range insts {
					order := traversal.MinMem(inst.Tree).Order
					m := inst.Tree.MaxMemReq()
					if _, err := minio.Simulate(inst.Tree, order, m, pol); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig8TraversalsFirstFit regenerates Figure 8: the three traversal
// algorithms under the First Fit policy.
func BenchmarkFig8TraversalsFirstFit(b *testing.B) {
	insts := benchSuite(b)
	travs := []struct {
		name string
		f    func(*tree.Tree) traversal.Result
	}{
		{"PostOrder", traversal.BestPostOrder},
		{"Liu", traversal.LiuExact},
		{"MinMem", traversal.MinMem},
	}
	for _, tv := range travs {
		b.Run(tv.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, inst := range insts {
					res := tv.f(inst.Tree)
					m := inst.Tree.MaxMemReq()
					if _, err := minio.Simulate(inst.Tree, res.Order, m, minio.FirstFit); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTable2RandomTrees regenerates Table II / Figure 9: PostOrder
// versus the optimum on random-weight trees.
func BenchmarkTable2RandomTrees(b *testing.B) {
	insts := dataset.RandomWeightSuite(benchSuite(b), 2)
	var st experiments.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = experiments.RunMemoryComparison(insts).Stats()
	}
	b.ReportMetric(100*st.FractionNonOpt, "%nonopt")
	b.ReportMetric(st.MaxRatio, "maxratio")
}

// BenchmarkTheorem1Harpoon regenerates the Theorem 1 demonstration: nested
// harpoons where PostOrder is unboundedly worse than optimal.
func BenchmarkTheorem1Harpoon(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTheorem1(4, 4, 400, 1)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[len(rows)-1].Ratio
	}
	b.ReportMetric(ratio, "PO/opt@L4")
}

// BenchmarkTheorem2Reduction regenerates the Theorem 2 verification: the
// 2-Partition ⇔ MinIO ≤ S/2 equivalence on the reduction gadget.
func BenchmarkTheorem2Reduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTheorem2(8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Consistent {
				b.Fatalf("reduction inconsistent on %v", r.Items)
			}
		}
	}
}

// BenchmarkAblationMinMemReuse quantifies the frontier reuse of
// Algorithm 4 (DESIGN.md ablation): Explore-call counts with and without
// carrying the saved cut between memory lifts.
func BenchmarkAblationMinMemReuse(b *testing.B) {
	insts := benchSuite(b)
	var withR, withoutR int64
	var err error
	for i := 0; i < b.N; i++ {
		withR, withoutR, err = experiments.AblationMinMemReuse(insts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(withR), "calls-reuse")
	b.ReportMetric(float64(withoutR), "calls-restart")
}

// BenchmarkAblationPostorderRule quantifies Liu's child-sorting rule
// against the natural child order on random-weight trees.
func BenchmarkAblationPostorderRule(b *testing.B) {
	insts := dataset.RandomWeightSuite(benchSuite(b), 2)
	var frac, ratio float64
	for i := 0; i < b.N; i++ {
		frac, ratio = experiments.AblationPostorderRule(insts)
	}
	b.ReportMetric(100*frac, "%improved")
	b.ReportMetric(ratio, "meanratio")
}

// BenchmarkAblationBestKWindow sweeps the Best-K subset window.
func BenchmarkAblationBestKWindow(b *testing.B) {
	insts := benchSuite(b)
	for _, k := range []int{1, 2, 5, 8} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			var io map[int]int64
			var err error
			for i := 0; i < b.N; i++ {
				io, err = experiments.AblationBestKWindow(insts, []int{k})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(io[k]), "totalIO")
		})
	}
}

// BenchmarkMultifrontalFactorization times the numeric factorization under
// the three traversals, with the measured memory peak as a custom metric —
// the end-to-end demonstration that the model's savings are real.
func BenchmarkMultifrontalFactorization(b *testing.B) {
	g, err := sparse.Grid3D(6, 6, 6)
	if err != nil {
		b.Fatal(err)
	}
	perm, err := ordering.NestedDissection(g, ordering.NestedDissectionOptions{LeafSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	pg, err := g.Permute(perm)
	if err != nil {
		b.Fatal(err)
	}
	a, err := factor.Laplacian(pg)
	if err != nil {
		b.Fatal(err)
	}
	parent, err := symbolic.EliminationTree(pg)
	if err != nil {
		b.Fatal(err)
	}
	counts, err := symbolic.ColumnCounts(pg, parent)
	if err != nil {
		b.Fatal(err)
	}
	n := pg.N()
	f := make([]int64, n)
	nw := make([]int64, n)
	for j := 0; j < n; j++ {
		mu := counts[j]
		f[j] = (mu - 1) * (mu - 1)
		nw[j] = mu*mu - (mu-1)*(mu-1)
	}
	for j, p := range parent {
		if p == symbolic.NoParent {
			f[j] = 0
		}
	}
	wt, err := tree.New(parent, f, nw)
	if err != nil {
		b.Fatal(err)
	}
	orders := map[string][]int{
		"postorder": symbolic.EtreePostorder(parent),
		"minmem":    tree.ReverseOrder(traversal.MinMem(wt).Order),
	}
	for name, order := range orders {
		b.Run(name, func(b *testing.B) {
			var peak int64
			for i := 0; i < b.N; i++ {
				_, st, err := factor.Multifrontal(a, factor.Options{Order: order})
				if err != nil {
					b.Fatal(err)
				}
				peak = st.PeakLive
			}
			b.ReportMetric(float64(peak), "peak-entries")
		})
	}
}

// BenchmarkMinMemAlgorithms times the core algorithms on a single larger
// tree, the microbenchmark a library user cares about.
func BenchmarkMinMemAlgorithms(b *testing.B) {
	t, err := tree.NestedHarpoon(4, 5, 400, 1) // 4093 nodes
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MinMem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = traversal.MinMem(t)
		}
	})
	b.Run("Liu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = traversal.LiuExact(t)
		}
	})
	b.Run("PostOrder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = traversal.BestPostOrder(t)
		}
	})
}
