// Harpoon demonstrates Theorem 1: on nested harpoon trees the best
// postorder traversal needs arbitrarily more memory than the optimal
// traversal. The program grows the nesting depth and prints measured values
// against the closed forms from the proof.
package main

import (
	"fmt"
	"log"

	"repro/internal/traversal"
	"repro/internal/tree"
)

func main() {
	const (
		b   = 4   // branches per harpoon level
		m   = 400 // the M parameter (divisible by b)
		eps = 1   // the ε parameter
	)
	fmt.Printf("nested harpoons with b=%d, M=%d, ε=%d\n", b, m, eps)
	fmt.Printf("closed forms: postorder = M+ε+L(b−1)M/b, optimal = M+ε+L(b−1)ε\n\n")
	fmt.Printf("%-7s %-8s %-22s %-22s %-7s\n", "L", "nodes", "postorder (measured)", "optimal (measured)", "ratio")
	for l := 1; l <= 7; l++ {
		h, err := tree.NestedHarpoon(b, l, m, eps)
		if err != nil {
			log.Fatal(err)
		}
		po := traversal.BestPostOrder(h)
		opt := traversal.MinMem(h)
		wantPO := tree.HarpoonPostOrderMemory(b, l, m, eps)
		wantOpt := tree.HarpoonOptimalMemory(b, l, m, eps)
		mark := ""
		if po.Memory != wantPO || opt.Memory != wantOpt {
			mark = "  ← MISMATCH with theory!"
		}
		fmt.Printf("%-7d %-8d %-22s %-22s %-7.3f%s\n",
			l, h.Len(),
			fmt.Sprintf("%d (want %d)", po.Memory, wantPO),
			fmt.Sprintf("%d (want %d)", opt.Memory, wantOpt),
			float64(po.Memory)/float64(opt.Memory), mark)
	}
	fmt.Println("\nthe ratio grows linearly in L: for any K there is a tree where the best")
	fmt.Println("postorder needs K× the optimal memory (Theorem 1).")
}
