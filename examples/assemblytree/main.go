// Assemblytree walks the full multifrontal pipeline of the paper on a model
// problem: sparse matrix → fill-reducing ordering → elimination tree →
// column counts → relaxed amalgamation → assembly tree → optimal traversal.
// It prints how the in-core memory requirement depends on the ordering and
// the amalgamation level.
package main

import (
	"fmt"
	"log"

	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/traversal"
)

func main() {
	// The model problem: a 24×24 five-point Laplacian (n = 576), the shape
	// of matrix dominating sparse Cholesky benchmark collections.
	m, err := sparse.Grid2D(24, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: %d×%d grid Laplacian, %d nonzeros\n\n", m.N(), m.N(), m.NNZ())

	orderings := []struct {
		name string
		perm func() ([]int, error)
	}{
		{"natural", func() ([]int, error) { return ordering.Natural(m), nil }},
		{"minimum degree", func() ([]int, error) { return ordering.MinimumDegree(m) }},
		{"nested dissection", func() ([]int, error) {
			return ordering.NestedDissection(m, ordering.NestedDissectionOptions{LeafSize: 32})
		}},
	}
	fmt.Printf("%-18s %8s %8s %7s %12s %12s %9s\n",
		"ordering", "|L|", "nodes", "relax", "postorder", "optimal", "ratio")
	for _, ord := range orderings {
		perm, err := ord.perm()
		if err != nil {
			log.Fatal(err)
		}
		pm, err := m.Permute(perm)
		if err != nil {
			log.Fatal(err)
		}
		parent, err := symbolic.EliminationTree(pm)
		if err != nil {
			log.Fatal(err)
		}
		counts, err := symbolic.ColumnCounts(pm, parent)
		if err != nil {
			log.Fatal(err)
		}
		for _, relax := range []int{1, 4, 16} {
			res, err := symbolic.Amalgamate(parent, counts, symbolic.AssemblyOptions{Relax: relax})
			if err != nil {
				log.Fatal(err)
			}
			po := traversal.BestPostOrder(res.Tree)
			opt := traversal.MinMem(res.Tree)
			fmt.Printf("%-18s %8d %8d %7d %12d %12d %9.3f\n",
				ord.name, symbolic.FactorNNZ(counts), res.Tree.Len(), relax,
				po.Memory, opt.Memory, float64(po.Memory)/float64(opt.Memory))
		}
	}
	fmt.Println("\npostorder ≈ optimal on assembly trees — the paper's Table I finding;")
	fmt.Println("compare examples/harpoon for trees where postorder is arbitrarily bad.")
}
