// Quickstart: build a small tree workflow by hand, solve MinMemory with the
// three algorithms of the paper, and run an out-of-core simulation under a
// tight memory budget.
package main

import (
	"fmt"
	"log"

	"repro/internal/minio"
	"repro/internal/traversal"
	"repro/internal/tree"
)

func main() {
	// A 6-task workflow. Node 0 is the root; every node carries an input
	// file (exchanged with its parent) and an execution file.
	//
	//	        0
	//	      /   \
	//	     1     2
	//	    / \     \
	//	   3   4     5
	parent := []int{tree.NoParent, 0, 0, 1, 1, 2}
	f := []int64{0, 8, 3, 5, 4, 9} // input file sizes
	n := []int64{2, 1, 1, 2, 1, 3} // execution file sizes
	t, err := tree.New(parent, f, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow: %d tasks, trivial lower bound max MemReq = %d\n\n", t.Len(), t.MaxMemReq())

	// MinMemory: what is the smallest main memory that lets the whole tree
	// run without touching secondary storage?
	po := traversal.BestPostOrder(t) // Liu 1986: best among postorders
	liu := traversal.LiuExact(t)     // Liu 1987: exact, hill–valley merges
	mm := traversal.MinMem(t)        // this paper: exact, top-down Explore
	fmt.Printf("best postorder : %d units, order %v\n", po.Memory, po.Order)
	fmt.Printf("Liu exact      : %d units, order %v\n", liu.Memory, liu.Order)
	fmt.Printf("MinMem (paper) : %d units, order %v\n\n", mm.Memory, mm.Order)

	// Every order can be validated against Algorithm 1 of the paper.
	if err := traversal.CheckInCore(t, mm.Order, mm.Memory); err != nil {
		log.Fatal(err)
	}

	// MinIO: with less memory than the in-core optimum, files must be
	// written to secondary storage. Compare two eviction heuristics.
	m := t.MaxMemReq() // tightest feasible memory
	for _, pol := range []minio.Policy{minio.LSNF, minio.FirstFit} {
		sim, err := minio.Simulate(t, mm.Order, m, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("out-of-core with M=%d, %-9s: I/O volume %d (%d files written)\n",
			m, pol, sim.IO, len(sim.Writes))
	}
}
