// Quickstart: build a small tree workflow by hand, solve MinMemory with the
// three algorithms of the paper, and run an out-of-core simulation under a
// tight memory budget. Every solver is selected by name from the schedule
// registry — the same engine the binaries and experiments use.
package main

import (
	"fmt"
	"log"

	"repro/internal/schedule"
	"repro/internal/traversal" // also registers the MinMemory solvers
	"repro/internal/tree"
)

func main() {
	// A 6-task workflow. Node 0 is the root; every node carries an input
	// file (exchanged with its parent) and an execution file.
	//
	//	        0
	//	      /   \
	//	     1     2
	//	    / \     \
	//	   3   4     5
	parent := []int{tree.NoParent, 0, 0, 1, 1, 2}
	f := []int64{0, 8, 3, 5, 4, 9} // input file sizes
	n := []int64{2, 1, 1, 2, 1, 3} // execution file sizes
	t, err := tree.New(parent, f, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow: %d tasks, trivial lower bound max MemReq = %d\n\n", t.Len(), t.MaxMemReq())

	// MinMemory: what is the smallest main memory that lets the whole tree
	// run without touching secondary storage? Three algorithms, by name:
	// Liu 1986 (best postorder), Liu 1987 (exact, hill–valley merges), and
	// this paper's exact MinMem (top-down Explore).
	var minmem schedule.Outcome
	for _, name := range []string{"postorder", "liu", "minmem"} {
		alg, err := schedule.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := alg.Run(schedule.Request{Tree: t})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s: %d units, order %v\n", schedule.DisplayName(name), res.Memory, res.Order)
		minmem = res
	}
	fmt.Println()

	// Every order can be validated against Algorithm 1 of the paper (the
	// checker replays it through the unified simulator).
	if err := traversal.CheckInCore(t, minmem.Order, minmem.Memory); err != nil {
		log.Fatal(err)
	}

	// MinIO: with less memory than the in-core optimum, files must be
	// written to secondary storage. Compare two eviction heuristics.
	m := t.MaxMemReq() // tightest feasible memory
	for _, name := range []string{"lsnf", "first-fit"} {
		pol, err := schedule.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pol.Run(schedule.Request{Tree: t, Order: minmem.Order, Memory: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("out-of-core with M=%d, %-9s: I/O volume %d (%d files written)\n",
			m, schedule.DisplayName(name), res.IO, len(res.Writes))
	}
}
