// Outofcore explores the MinIO side of the paper: an assembly tree is
// executed with less and less main memory, and the six eviction heuristics
// of Section V-B are compared on the resulting I/O volume, together with
// the divisible lower bound. Policies and the lower bound are resolved by
// name from the schedule registry and replayed by the unified simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/ordering"
	"repro/internal/schedule"
	"repro/internal/sparse"
	"repro/internal/symbolic"

	// Register the MinMemory solvers and the divisible lower bound.
	_ "repro/internal/minio"
	_ "repro/internal/traversal"
)

func main() {
	// Assembly tree of a 3D model problem under nested dissection — the
	// wide trees where traversal order and eviction policy matter most.
	m, err := sparse.Grid3D(7, 7, 7)
	if err != nil {
		log.Fatal(err)
	}
	perm, err := ordering.NestedDissection(m, ordering.NestedDissectionOptions{LeafSize: 32})
	if err != nil {
		log.Fatal(err)
	}
	pm, err := m.Permute(perm)
	if err != nil {
		log.Fatal(err)
	}
	res, err := symbolic.AssemblyTree(pm, symbolic.AssemblyOptions{Relax: 1})
	if err != nil {
		log.Fatal(err)
	}
	t := res.Tree
	lo := t.MaxMemReq()
	// PostOrder wins for out-of-core (Figure 8).
	po, err := mustRun("postorder", schedule.Request{Tree: t})
	if err != nil {
		log.Fatal(err)
	}
	hi := po.Memory
	order := po.Order
	policies := schedule.EvictionPolicyNames()
	fmt.Printf("assembly tree: %d nodes; this traversal needs %d in-core, absolute floor %d\n\n", t.Len(), hi, lo)
	fmt.Printf("%-10s", "memory")
	for _, pol := range policies {
		fmt.Printf(" %13s", schedule.DisplayName(pol))
	}
	fmt.Printf(" %13s\n", "lower bound")
	for _, fr := range []float64{0, 0.25, 0.5, 0.75, 1} {
		mem := lo + int64(fr*float64(hi-lo))
		fmt.Printf("%-10d", mem)
		req := schedule.Request{Tree: t, Order: order, Memory: mem}
		for _, pol := range policies {
			sim, err := mustRun(pol, req)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %13d", sim.IO)
		}
		lb, err := mustRun("divisible-bound", req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %13d\n", lb.IO)
	}
	fmt.Println("\nI/O falls to zero once memory reaches the traversal's in-core need. The")
	fmt.Println("divisible bound shrinks smoothly, while integral policies pay for whole")
	fmt.Println("files — the gap is the price of indivisibility that makes MinIO NP-hard.")
}

// mustRun resolves an algorithm by name and runs it.
func mustRun(name string, req schedule.Request) (schedule.Outcome, error) {
	alg, err := schedule.Lookup(name)
	if err != nil {
		return schedule.Outcome{}, err
	}
	return alg.Run(req)
}
