// Solver runs the complete numeric pipeline the paper's model abstracts:
// an SPD system is ordered, symbolically analysed, factored with the
// multifrontal method following different tree traversals, and solved.
// The measured dense-entry peak of the real factorization coincides
// exactly with the abstract model's prediction — and the optimal traversal
// beats the postorder on actual memory.
package main

import (
	"fmt"
	"log"

	"repro/internal/factor"
	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/traversal"
	"repro/internal/tree"
)

func main() {
	// A 3D model problem: 6×6×6 grid Laplacian, nested-dissection ordered.
	g, err := sparse.Grid3D(6, 6, 6)
	if err != nil {
		log.Fatal(err)
	}
	perm, err := ordering.NestedDissection(g, ordering.NestedDissectionOptions{LeafSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	pg, err := g.Permute(perm)
	if err != nil {
		log.Fatal(err)
	}
	a, err := factor.Laplacian(pg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: n=%d, nnz=%d (3D grid Laplacian, ND ordered)\n\n", pg.N(), pg.NNZ())

	// The weighted elimination tree drives the traversal choice.
	parent, err := symbolic.EliminationTree(pg)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := symbolic.ColumnCounts(pg, parent)
	if err != nil {
		log.Fatal(err)
	}
	n := pg.N()
	f := make([]int64, n)
	nw := make([]int64, n)
	for j := 0; j < n; j++ {
		mu := counts[j]
		f[j] = (mu - 1) * (mu - 1)
		nw[j] = mu*mu - (mu-1)*(mu-1)
	}
	for j, p := range parent {
		if p == symbolic.NoParent {
			f[j] = 0
		}
	}
	wt, err := tree.New(parent, f, nw)
	if err != nil {
		log.Fatal(err)
	}

	traversals := []struct {
		name  string
		order []int // bottom-up
	}{
		{"etree postorder", symbolic.EtreePostorder(parent)},
		{"best postorder", tree.ReverseOrder(traversal.BestPostOrder(wt).Order)},
		{"MinMem optimal", tree.ReverseOrder(traversal.MinMem(wt).Order)},
	}
	fmt.Printf("%-18s %14s %14s %10s\n", "traversal", "measured peak", "model peak", "residual")
	for _, tv := range traversals {
		chol, st, err := factor.Multifrontal(a, factor.Options{Order: tv.order})
		if err != nil {
			log.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i%5) - 2
		}
		x, err := chol.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %14d %14d %10.2e\n", tv.name, st.PeakLive, st.ModelPeak, factor.Residual(a, x, b))
	}
	// Supernodal variant: one dense front per fundamental supernode (the
	// assembly tree with perfect amalgamation), same model equality.
	asm, err := symbolic.AssemblyTree(pg, symbolic.AssemblyOptions{Relax: 0})
	if err != nil {
		log.Fatal(err)
	}
	supOrder := tree.ReverseOrder(traversal.MinMem(asm.Tree).Order)
	cholS, stS, err := factor.SupernodalMultifrontal(a, factor.SupernodalOptions{Order: supOrder})
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	xs, err := cholS.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %14d %14d %10.2e   (%d supernodes, max front %d)\n",
		"supernodal MinMem", stS.PeakLive, stS.ModelPeak, factor.Residual(a, xs, b),
		stS.Supernodes, stS.MaxFront)

	fmt.Println("\nmeasured == model on every traversal: the paper's abstraction is exact,")
	fmt.Println("and the MinMem traversal needs the least real memory.")
}
