// Modelvariants walks through Section III-C of the paper: the pebble-game
// "model with replacement" (Figure 1) and Liu's x⁺/x⁻ model (Figure 2) both
// reduce to the paper's model, and the unit replacement model is exactly
// the Sethi–Ullman register problem of Section II-B.
package main

import (
	"fmt"
	"log"

	"repro/internal/pebble"
	"repro/internal/traversal"
	"repro/internal/tree"
)

func main() {
	// --- Figure 1: the model with replacement -------------------------
	// A node needs max(f_i, Σ f_children) memory: the input file is
	// replaced in place by the outputs. The transform adds a negative
	// execution file n_i = −min(f_i, Σ f_children).
	parent := []int{tree.NoParent, 0, 0, 0, 2, 2, 5, 5}
	f := []int64{1, 1, 1, 2, 1, 3, 1, 2}
	repl, err := tree.FromReplacementModel(parent, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1 — replacement model transform")
	fmt.Printf("  node: f, n, MemReq = max(f, Σ children f)\n")
	for i := 0; i < repl.Len(); i++ {
		fmt.Printf("  %4d: %2d %3d %3d\n", i, repl.F(i), repl.N(i), repl.MemReq(i))
	}
	fmt.Printf("  optimal pebbles for the tree: %d\n\n", traversal.MinMem(repl).Memory)

	// --- Figure 2: Liu's x+/x− model ----------------------------------
	// Each column x is described by its processing peak n_{x+} and the
	// subtree storage n_{x−}; merging the pair back gives our model with
	// f = n_{x−} and MemReq = n_{x+}.
	liu := []tree.LiuModelNode{
		{Parent: tree.NoParent, NPlus: 9, NMinus: 3},
		{Parent: 0, NPlus: 5, NMinus: 2},
		{Parent: 0, NPlus: 6, NMinus: 2},
		{Parent: 1, NPlus: 4, NMinus: 1},
		{Parent: 1, NPlus: 3, NMinus: 1},
	}
	lt, err := tree.FromLiuModel(liu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 2 — Liu's x+/x− model transform")
	for i, nd := range liu {
		fmt.Printf("  node %d: n+=%d n−=%d  →  f=%d n=%d MemReq=%d\n",
			i, nd.NPlus, nd.NMinus, lt.F(i), lt.N(i), lt.MemReq(i))
	}
	fmt.Printf("  minimum memory: %d\n\n", traversal.MinMem(lt).Memory)

	// --- Section II-B: the Sethi–Ullman connection --------------------
	// On unit files the replacement model is the classic register
	// allocation problem; the Sethi–Ullman label equals MinMemory.
	balanced := []int{tree.NoParent, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6}
	su, err := pebble.SethiUllmanNumber(balanced)
	if err != nil {
		log.Fatal(err)
	}
	ut, err := pebble.UnitTree(balanced)
	if err != nil {
		log.Fatal(err)
	}
	mm := traversal.MinMem(ut).Memory
	fmt.Println("Section II-B — unit pebbles = Sethi–Ullman registers")
	fmt.Printf("  balanced binary tree of depth 3: SU number %d, MinMem %d\n", su, mm)
	if su != mm {
		log.Fatal("mismatch: the reduction is broken")
	}
	// With fewer registers the spills of the SU strategy appear:
	for m := mm; m >= ut.MaxMemReq(); m-- {
		io, err := pebble.UnitMinIO(balanced, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d registers → %d stores\n", m, io)
	}
}
