package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tree"
)

func genTo(t *testing.T, args ...string) *tree.Tree {
	t.Helper()
	out := filepath.Join(t.TempDir(), "out.tree")
	if err := run(append(args, "-o", out)); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := tree.Read(f)
	if err != nil {
		t.Fatalf("generated file unparsable: %v", err)
	}
	return tr
}

func TestGenerateHarpoon(t *testing.T) {
	tr := genTo(t, "-kind", "harpoon", "-b", "3", "-levels", "1", "-mem", "30", "-eps", "1")
	if tr.Len() != 10 {
		t.Fatalf("harpoon has %d nodes, want 10", tr.Len())
	}
}

func TestGenerateRandomKinds(t *testing.T) {
	for _, attach := range []string{"uniform", "preferential", "chainy"} {
		tr := genTo(t, "-kind", "random", "-nodes", "50", "-attach", attach, "-seed", "3")
		if tr.Len() != 50 {
			t.Fatalf("%s random tree has %d nodes", attach, tr.Len())
		}
	}
}

func TestGenerateChain(t *testing.T) {
	tr := genTo(t, "-kind", "chain", "-nodes", "17")
	if tr.Len() != 17 || tr.Depth() != 16 {
		t.Fatalf("chain: %d nodes, depth %d", tr.Len(), tr.Depth())
	}
}

func TestGenerateReduction(t *testing.T) {
	tr := genTo(t, "-kind", "reduction", "-items", "3,5,2,4")
	if tr.Len() != 11 {
		t.Fatalf("reduction gadget has %d nodes, want 11", tr.Len())
	}
}

func TestGenerateAssemblyMatrices(t *testing.T) {
	for _, spec := range []string{"grid2d:8", "grid3d:4", "rand:60,2.5", "band:50,3"} {
		for _, ord := range []string{"md", "nd", "rcm", "natural"} {
			tr := genTo(t, "-kind", "assembly", "-matrix", spec, "-order", ord, "-relax", "2")
			if tr.Len() < 1 {
				t.Fatalf("%s/%s produced empty tree", spec, ord)
			}
		}
	}
}

func TestGenerateFromMatrixMarket(t *testing.T) {
	mm := filepath.Join(t.TempDir(), "m.mtx")
	content := "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n1 1\n2 1\n3 2\n"
	if err := os.WriteFile(mm, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	tr := genTo(t, "-kind", "assembly", "-matrix", "mm:"+mm, "-order", "md", "-relax", "1")
	if tr.Len() < 1 {
		t.Fatal("empty tree from MatrixMarket input")
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-kind", "harpoon", "-b", "1"},
		{"-kind", "random", "-attach", "nope"},
		{"-kind", "assembly", "-matrix", "nokind"},
		{"-kind", "assembly", "-matrix", "grid2d:x"},
		{"-kind", "assembly", "-matrix", "weird:3"},
		{"-kind", "assembly", "-matrix", "rand:5"},
		{"-kind", "assembly", "-matrix", "band:5"},
		{"-kind", "assembly", "-matrix", "grid2d:8", "-order", "nope"},
		{"-kind", "reduction", "-items", "1,2,x"},
		{"-kind", "reduction", "-items", "1,2"}, // odd sum: 3
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
