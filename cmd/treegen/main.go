// Command treegen generates .tree workflow files: Theorem 1 harpoons,
// random trees, 2-Partition reduction gadgets, and full assembly trees
// produced by the matrix → ordering → symbolic pipeline.
//
// Usage examples:
//
//	treegen -kind harpoon -b 4 -levels 3 -mem 400 -eps 1 -o harpoon.tree
//	treegen -kind random -nodes 1000 -maxf 100 -maxn 20 -seed 7 -o rnd.tree
//	treegen -kind assembly -matrix grid2d:32 -order md -relax 4 -o asm.tree
//	treegen -from-mtx bcsstk10.mtx -order md -relax 4 -o bcsstk10.tree
//	treegen -kind reduction -items 3,5,2,4 -o gadget.tree
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "treegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("treegen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "random", "tree kind: harpoon | random | assembly | reduction | chain")
		out     = fs.String("o", "", "output file (default stdout)")
		b       = fs.Int("b", 3, "harpoon: branches per level")
		levels  = fs.Int("levels", 1, "harpoon: nesting depth")
		mem     = fs.Int64("mem", 300, "harpoon: M parameter")
		eps     = fs.Int64("eps", 1, "harpoon: ε parameter")
		nodes   = fs.Int("nodes", 100, "random/chain: node count")
		maxF    = fs.Int64("maxf", 100, "random/chain: max input file size")
		maxN    = fs.Int64("maxn", 10, "random/chain: max execution file size")
		attach  = fs.String("attach", "uniform", "random: uniform | preferential | chainy")
		seed    = fs.Int64("seed", 1, "random: PRNG seed")
		matrix  = fs.String("matrix", "grid2d:16", "assembly: grid2d:K | grid3d:K | rand:N,DEG | band:N,B | mm:FILE")
		fromMtx = fs.String("from-mtx", "", "build an assembly tree from this MatrixMarket file (implies -kind assembly, overrides -matrix)")
		order   = fs.String("order", "md", "assembly: md (alias amd) | nd | rcm | natural")
		relax   = fs.Int("relax", 1, "assembly: relaxed amalgamation budget per node")
		items   = fs.String("items", "1,2,3", "reduction: comma-separated 2-Partition items")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fromMtx != "" {
		*kind = "assembly"
		*matrix = "mm:" + *fromMtx
	}
	var (
		t   *tree.Tree
		err error
	)
	switch *kind {
	case "harpoon":
		t, err = tree.NestedHarpoon(*b, *levels, *mem, *eps)
	case "random":
		var k tree.AttachKind
		switch *attach {
		case "uniform":
			k = tree.AttachUniform
		case "preferential":
			k = tree.AttachPreferential
		case "chainy":
			k = tree.AttachChainy
		default:
			return fmt.Errorf("unknown attach kind %q", *attach)
		}
		t, err = tree.Random(rand.New(rand.NewSource(*seed)), tree.RandomOptions{
			Nodes: *nodes, MaxF: *maxF, MaxN: *maxN, Attach: k,
		})
	case "chain":
		rng := rand.New(rand.NewSource(*seed))
		f := make([]int64, *nodes)
		n := make([]int64, *nodes)
		for i := range f {
			f[i] = 1 + rng.Int63n(*maxF)
			if *maxN > 0 {
				n[i] = rng.Int63n(*maxN + 1)
			}
		}
		t, err = tree.Chain(f, n)
	case "assembly":
		t, err = buildAssembly(*matrix, *order, *relax)
	case "reduction":
		var a []int64
		for _, s := range strings.Split(*items, ",") {
			v, perr := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if perr != nil {
				return fmt.Errorf("bad item %q: %v", s, perr)
			}
			a = append(a, v)
		}
		var inst *tree.TwoPartitionInstance
		inst, err = tree.NewTwoPartition(a)
		if err == nil {
			t = inst.Tree
			fmt.Fprintf(os.Stderr, "reduction: M=%d IO bound=%d\n", inst.Memory, inst.IOBound)
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		file, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer file.Close()
		w = file
	}
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d-node tree (MaxMemReq=%d)\n", t.Len(), t.MaxMemReq())
	return nil
}

func buildAssembly(matrixSpec, orderName string, relax int) (*tree.Tree, error) {
	m, err := parseMatrix(matrixSpec)
	if err != nil {
		return nil, err
	}
	var perm []int
	switch orderName {
	case "md", "amd":
		perm, err = ordering.MinimumDegree(m)
	case "nd":
		perm, err = ordering.NestedDissection(m, ordering.NestedDissectionOptions{})
	case "rcm":
		perm, err = ordering.ReverseCuthillMcKee(m)
	case "natural":
		perm = ordering.Natural(m)
	default:
		return nil, fmt.Errorf("unknown ordering %q", orderName)
	}
	if err != nil {
		return nil, err
	}
	pm, err := m.Permute(perm)
	if err != nil {
		return nil, err
	}
	res, err := symbolic.AssemblyTree(pm, symbolic.AssemblyOptions{Relax: relax})
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}

func parseMatrix(spec string) (*sparse.Matrix, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("matrix spec %q: want kind:params", spec)
	}
	params := strings.Split(parts[1], ",")
	atoi := func(s string) (int, error) { return strconv.Atoi(strings.TrimSpace(s)) }
	switch parts[0] {
	case "grid2d":
		k, err := atoi(params[0])
		if err != nil {
			return nil, err
		}
		return sparse.Grid2D(k, k)
	case "grid3d":
		k, err := atoi(params[0])
		if err != nil {
			return nil, err
		}
		return sparse.Grid3D(k, k, k)
	case "rand":
		if len(params) != 2 {
			return nil, fmt.Errorf("rand matrix wants N,DEG")
		}
		n, err := atoi(params[0])
		if err != nil {
			return nil, err
		}
		deg, err := strconv.ParseFloat(strings.TrimSpace(params[1]), 64)
		if err != nil {
			return nil, err
		}
		m, err := sparse.RandomSymmetric(rand.New(rand.NewSource(99)), n, deg)
		if err != nil {
			return nil, err
		}
		return m.Symmetrize(), nil
	case "band":
		if len(params) != 2 {
			return nil, fmt.Errorf("band matrix wants N,B")
		}
		n, err := atoi(params[0])
		if err != nil {
			return nil, err
		}
		hb, err := atoi(params[1])
		if err != nil {
			return nil, err
		}
		return sparse.BandMatrix(n, hb)
	case "mm":
		f, err := os.Open(parts[1])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := sparse.ReadMatrixMarket(f)
		if err != nil {
			return nil, err
		}
		return m.Symmetrize(), nil
	default:
		return nil, fmt.Errorf("unknown matrix kind %q", parts[0])
	}
}
