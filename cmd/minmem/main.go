// Command minmem solves the MinMemory problem on a .tree file with any of
// the registered algorithms (best postorder, Liu's exact algorithm, the new
// MinMem, the brute-force oracles, …) and reports memory values, run times
// and a cross-check of every returned traversal against the Algorithm 1
// feasibility checker. Algorithms are selected by name from the schedule
// registry; there is no hard-wired dispatch.
//
// Usage:
//
//	minmem -in workflow.tree [-algo postorder,liu,minmem]
//	minmem -in workflow.tree -algo all      # every registered solver
//	minmem -list                            # print the registry
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/schedule"
	"repro/internal/traversal" // also registers the MinMemory solvers
	"repro/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minmem:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minmem", flag.ContinueOnError)
	in := fs.String("in", "", "input .tree file (default stdin)")
	algo := fs.String("algo", "postorder,liu,minmem",
		"comma-separated MinMemory algorithms from the registry, or \"all\"")
	list := fs.Bool("list", false, "list the registered MinMemory algorithms and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range schedule.NamesByKind(schedule.KindMinMemory) {
			fmt.Fprintf(w, "%-20s %s\n", name, schedule.DisplayName(name))
		}
		return nil
	}
	var names []string
	lenient := *algo == "all" // "all" skips solvers inapplicable to this tree (e.g. size-limited oracles)
	if lenient {
		names = schedule.NamesByKind(schedule.KindMinMemory)
	} else {
		for _, n := range strings.Split(*algo, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no algorithm selected")
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	t, err := tree.Read(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tree: %d nodes, depth %d, MaxMemReq %d, ΣF %d\n",
		t.Len(), t.Depth(), t.MaxMemReq(), t.TotalF())
	for _, name := range names {
		alg, err := schedule.Lookup(name)
		if err != nil {
			return err
		}
		if alg.Kind() != schedule.KindMinMemory {
			return fmt.Errorf("algorithm %q is not a MinMemory solver", name)
		}
		start := time.Now()
		res, err := alg.Run(schedule.Request{Tree: t})
		if err != nil {
			if lenient {
				fmt.Fprintf(w, "%-18s skipped: %v\n", name, err)
				continue
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)
		note := "(no traversal exhibited)"
		if res.Order != nil {
			// Algorithm 1: the returned traversal must fit the claimed memory.
			if err := traversal.CheckInCore(t, res.Order, res.Memory); err != nil {
				return fmt.Errorf("%s: returned traversal failed the checker: %w", name, err)
			}
			note = "(traversal verified)"
		}
		fmt.Fprintf(w, "%-18s memory=%-12d time=%-12s %s\n", name, res.Memory, elapsed, note)
	}
	return nil
}
