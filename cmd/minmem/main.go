// Command minmem solves the MinMemory problem on a .tree file with the
// three algorithms of the paper (best postorder, Liu's exact algorithm, the
// new MinMem) and reports memory values, run times and a cross-check of
// every returned traversal against the Algorithm 1 feasibility checker.
//
// Usage:
//
//	minmem -in workflow.tree [-algo all|postorder|liu|minmem]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/traversal"
	"repro/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minmem:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minmem", flag.ContinueOnError)
	in := fs.String("in", "", "input .tree file (default stdin)")
	algo := fs.String("algo", "all", "algorithm: all | postorder | liu | minmem")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	t, err := tree.Read(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tree: %d nodes, depth %d, MaxMemReq %d, ΣF %d\n",
		t.Len(), t.Depth(), t.MaxMemReq(), t.TotalF())
	type alg struct {
		name string
		f    func(*tree.Tree) traversal.Result
	}
	algs := []alg{
		{"postorder", traversal.BestPostOrder},
		{"liu", traversal.LiuExact},
		{"minmem", traversal.MinMem},
	}
	ran := 0
	for _, a := range algs {
		if *algo != "all" && *algo != a.name {
			continue
		}
		ran++
		start := time.Now()
		res := a.f(t)
		elapsed := time.Since(start)
		if err := traversal.CheckInCore(t, res.Order, res.Memory); err != nil {
			return fmt.Errorf("%s: returned traversal failed the checker: %w", a.name, err)
		}
		fmt.Fprintf(w, "%-10s memory=%-12d time=%-12s (traversal verified)\n", a.name, res.Memory, elapsed)
	}
	if ran == 0 {
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}
