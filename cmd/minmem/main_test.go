package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tree"
)

func writeTree(t *testing.T) string {
	t.Helper()
	h, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "h.tree")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := h.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeTree(t)
	var sb strings.Builder
	if err := run([]string{"-in", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"postorder", "liu", "minmem", "traversal verified"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Harpoon(3, 2, 30, 1): postorder needs 71, optimal 35.
	if !strings.Contains(out, "memory=71") || !strings.Contains(out, "memory=35") {
		t.Fatalf("wrong memory values:\n%s", out)
	}
}

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"postorder", "liu", "minmem", "brute", "Liu"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
	// Only the MinMemory side of the registry: no eviction policies.
	if strings.Contains(out, "first-fit") || strings.Contains(out, "lsnf") {
		t.Fatalf("-list leaked MinIO algorithms:\n%s", out)
	}
}

func TestRunSingleAlgorithm(t *testing.T) {
	path := writeTree(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-algo", "minmem"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "postorder") {
		t.Fatal("postorder ran despite -algo minmem")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTree(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-algo", "nope"}, &sb); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.tree")
	if err := os.WriteFile(bad, []byte("not a tree"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}, &sb); err == nil {
		t.Fatal("malformed file accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
