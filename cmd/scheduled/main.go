// Command scheduled is the long-running evaluation service: it serves the
// schedule algorithm registry over the HTTP/JSON protocol of
// internal/service, so remote clients (cmd/experiments -backend http://…,
// or service.Client embedded anywhere) can list algorithms and run job
// batches without linking the solvers.
//
// With -cache the server evaluates through a content-addressed result
// cache persisted as a row store, so repeated grids over the same
// instances are answered without re-running the algorithms. -cache-format
// selects the store file form: "jsonl" (the default, line-per-entry text),
// "binary" (the framed binary wire form — smaller and cheaper to load,
// same contents bit for bit) or "paged" (an out-of-core paged block file
// with a B-tree index — same contents again, but rows are served from disk
// through a bounded page cache, so the store can be far larger than RAM
// and opens in O(1) instead of loading every row). -cache-max bounds the
// store: beyond that many rows the least-recently-used entries are evicted
// (the resident formats compact the file down to the bound on close or the
// next load; the paged store deletes in place through its free list), so a
// long-lived server's store does not grow without bound. The same store backs the
// /v1/warm endpoint: rows a shard (or a sibling server) computed elsewhere
// are pushed in and answer later batches here, so a fleet of cached servers
// converges on one warm working set.
//
// Usage:
//
//	scheduled -addr 127.0.0.1:8080
//	scheduled -addr :9090 -workers 8 -cache rows.jsonl -cache-max 100000
//	scheduled -addr :9091 -cache rows.bin -cache-format binary
//	scheduled -addr :9092 -cache rows.paged -cache-format paged
//	scheduled -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/schedule"
	"repro/internal/service"

	// Register every MinMemory solver and MinIO policy/oracle.
	_ "repro/internal/minio"
	_ "repro/internal/traversal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scheduled:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scheduled", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "per-batch worker-pool bound (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "row-store path; evaluate through a content-addressed result cache")
	cacheMax := fs.Int("cache-max", 0, "row-store entry bound: LRU-evict beyond this many rows (0 = unbounded)")
	cacheFormat := fs.String("cache-format", "jsonl", "row-store file form: "+strings.Join(schedule.StoreFormatNames(), " | "))
	list := fs.Bool("list", false, "list the registered algorithms and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range schedule.Names() {
			alg, err := schedule.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-20s %-10s %s\n", name, alg.Kind(), schedule.DisplayName(name))
		}
		return nil
	}
	var backend schedule.Backend = schedule.Local{}
	var cached *schedule.Cached
	var store schedule.RowStore
	if *cache != "" {
		format, err := schedule.ParseStoreFormat(*cacheFormat)
		if err != nil {
			return err
		}
		store, err = schedule.OpenRowStore(*cache, schedule.StoreOptions{MaxEntries: *cacheMax, Format: format})
		if err != nil {
			return err
		}
		defer store.Close()
		cached = schedule.NewCached(backend, store)
		backend = cached
		fmt.Fprintf(w, "scheduled: row store %s holds %d rows\n", *cache, store.Len())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scheduled: listening on http://%s (%d algorithms, backend %s)\n",
		ln.Addr(), len(schedule.Names()), backend.Capabilities().Name)
	var warmStore schedule.Store
	if store != nil {
		warmStore = store
	}
	srv := &http.Server{Handler: service.NewServerWith(service.ServerOptions{
		Backend: backend, Workers: *workers, Store: warmStore,
	}).Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	if cached != nil {
		hits, misses := cached.Counters()
		fmt.Fprintf(w, "scheduled: served %d cache hits, %d misses, %d evictions\n", hits, misses, store.Evictions())
	}
	return nil
}
