// Command scheduled is the long-running evaluation service: it serves the
// schedule algorithm registry over the HTTP/JSON protocol of
// internal/service, so remote clients (cmd/experiments -backend http://…,
// or service.Client embedded anywhere) can list algorithms and run job
// batches without linking the solvers.
//
// With -cache the server evaluates through a content-addressed result
// cache persisted as a row store, so repeated grids over the same
// instances are answered without re-running the algorithms. -cache-format
// selects the store file form: "jsonl" (the default, line-per-entry text),
// "binary" (the framed binary wire form — smaller and cheaper to load,
// same contents bit for bit) or "paged" (an out-of-core paged block file
// with a B-tree index — same contents again, but rows are served from disk
// through a bounded page cache, so the store can be far larger than RAM
// and opens in O(1) instead of loading every row). -cache-max bounds the
// store: beyond that many rows the least-recently-used entries are evicted
// (the resident formats compact the file down to the bound on close or the
// next load; the paged store deletes in place through its free list), so a
// long-lived server's store does not grow without bound. The same store backs the
// /v1/warm endpoint: rows a shard (or a sibling server) computed elsewhere
// are pushed in and answer later batches here, so a fleet of cached servers
// converges on one warm working set.
//
// The server is multi-tenant: callers name their tenant in the X-Tenant
// header, upload trees to a per-tenant corpus on /v1/trees, and are
// admission-controlled per tenant. -tenant-rate and -tenant-burst shape a
// token bucket in jobs per second, -tenant-queue bounds each tenant's
// admitted-but-unfinished jobs and -tenant-trees bounds its corpus;
// over-limit batches are rejected with 429 and a Retry-After hint that
// service.Client honors. -concurrency lifts the one-batch-at-a-time
// evaluation bound. Everything — batch outcomes, cache and store counters,
// per-tenant admission stats — is scrapeable from /metrics in the
// Prometheus text format.
//
// With -children the server is a front door: batches fan out over the
// named child servers through the shard scheduler instead of evaluating
// locally, and -admit-depth sheds work with 429 when every healthy child's
// queue is already that deep. -chunk re-cuts each client batch into chunks
// of that many jobs (default 64), so the scheduler has enough pieces to
// spread; -hedge-after enables speculative re-dispatch of straggler
// chunks — a chunk running past max(-hedge-after, -hedge-multiple × the
// child's predicted completion time) is raced on a second healthy child,
// the first result wins and the loser is cancelled. The shard's scheduling
// counters (including hedges and hedge wins) then appear on /metrics too.
//
// With -peers the server push-gossips its results: after every successful
// batch the computed rows are offered, keyed by cache key, to each peer's
// /v1/warm endpoint through a bounded per-peer queue (-gossip-queue
// batches). A slow or dead peer drops warm batches instead of slowing the
// serving path, and rows received on /v1/warm are never re-gossiped, so
// fleets of cached servers heat each other without loops and without a
// shard in the middle.
//
// The environment knobs SCHEDULED_FAULT_DELAY (a duration) and
// SCHEDULED_FAULT_AFTER (a call count, default 0) wrap the backend in the
// schedule.FaultBackend test harness: every batch evaluation from call
// number FAULT_AFTER on stalls for FAULT_DELAY first, honoring
// cancellation. This is the deterministic "one child degrades mid-grid"
// knob the hedging smoke tests use; leave it unset in production.
//
// On SIGINT/SIGTERM the server drains: in-flight batches finish (bounded
// by -drain), the row store is flushed and closed, and the process exits 0.
//
// Usage:
//
//	scheduled -addr 127.0.0.1:8080
//	scheduled -addr :9090 -workers 8 -cache rows.jsonl -cache-max 100000
//	scheduled -addr :9091 -cache rows.bin -cache-format binary
//	scheduled -addr :9092 -cache rows.paged -cache-format paged
//	scheduled -addr :8080 -tenant-rate 500 -tenant-burst 2000 -tenant-queue 5000
//	scheduled -addr :8080 -children http://10.0.0.1:9090,http://10.0.0.2:9090 -admit-depth 256
//	scheduled -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/tenant"

	// Register every MinMemory solver and MinIO policy/oracle.
	_ "repro/internal/minio"
	_ "repro/internal/traversal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scheduled:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scheduled", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "per-batch worker-pool bound (0 = GOMAXPROCS)")
	concurrency := fs.Int("concurrency", 0, "batches evaluated at once (0 = 1, strict serialization)")
	cache := fs.String("cache", "", "row-store path; evaluate through a content-addressed result cache")
	cacheMax := fs.Int("cache-max", 0, "row-store entry bound: LRU-evict beyond this many rows (0 = unbounded)")
	cacheFormat := fs.String("cache-format", "jsonl", "row-store file form: "+strings.Join(schedule.StoreFormatNames(), " | "))
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant token-bucket refill, jobs/sec (0 = no rate limit)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant token-bucket capacity in jobs (0 = max(rate, 64))")
	tenantQueue := fs.Int("tenant-queue", 0, "per-tenant bound on admitted-but-unfinished jobs (0 = unbounded)")
	tenantTrees := fs.Int("tenant-trees", 0, "per-tenant corpus bound in distinct trees (0 = unbounded)")
	children := fs.String("children", "", "comma-separated child server URLs; fan batches out over them instead of evaluating locally")
	admitDepth := fs.Int("admit-depth", 0, "shed batches with 429 when every healthy child queues this many jobs (0 = never; needs -children)")
	chunk := fs.Int("chunk", 0, "front-door chunk size: re-cut client batches into chunks of this many jobs (0 = engine default; needs -children)")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedge straggler chunks after this floor delay (0 = no hedging; needs -children)")
	hedgeMultiple := fs.Float64("hedge-multiple", 0, "hedge a chunk running this many times past its predicted completion (0 = default; needs -hedge-after)")
	peers := fs.String("peers", "", "comma-separated peer server URLs; push computed rows to their /v1/warm caches after each batch")
	gossipQueue := fs.Int("gossip-queue", 0, "per-peer bound on queued warm batches; full queues drop, never block (0 = default)")
	drain := fs.Duration("drain", 5*time.Second, "shutdown bound on draining in-flight batches")
	list := fs.Bool("list", false, "list the registered algorithms and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range schedule.Names() {
			alg, err := schedule.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-20s %-10s %s\n", name, alg.Kind(), schedule.DisplayName(name))
		}
		return nil
	}

	var backend schedule.Backend = schedule.Local{}
	var shard *schedule.Shard
	if *children != "" {
		var kids []schedule.Backend
		for _, url := range strings.Split(*children, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			c := service.NewClient(url, nil)
			c.Retries = 2
			kids = append(kids, c)
		}
		var err error
		shard, err = schedule.NewShardWith(schedule.ShardOptions{
			MaxQueueDepth: *admitDepth,
			HedgeAfter:    *hedgeAfter,
			HedgeMultiple: *hedgeMultiple,
			ChunkSize:     *chunk,
		}, kids...)
		if err != nil {
			return err
		}
		backend = shard
		fmt.Fprintf(w, "scheduled: front door over %d children (admit depth %d, hedge after %v)\n",
			len(kids), *admitDepth, *hedgeAfter)
	} else {
		switch {
		case *admitDepth != 0:
			return fmt.Errorf("-admit-depth needs -children: a local backend has no child queues to measure")
		case *hedgeAfter != 0:
			return fmt.Errorf("-hedge-after needs -children: a local backend has no siblings to hedge on")
		case *chunk != 0:
			return fmt.Errorf("-chunk needs -children: only the front-door shard re-chunks batches")
		}
	}

	// The fault-injection env knobs wrap whatever backend evaluates the
	// batches, so smoke fleets can degrade one child deterministically.
	if spec := os.Getenv("SCHEDULED_FAULT_DELAY"); spec != "" {
		delay, err := time.ParseDuration(spec)
		if err != nil {
			return fmt.Errorf("SCHEDULED_FAULT_DELAY: %w", err)
		}
		after := 0
		if a := os.Getenv("SCHEDULED_FAULT_AFTER"); a != "" {
			if after, err = strconv.Atoi(a); err != nil {
				return fmt.Errorf("SCHEDULED_FAULT_AFTER: %w", err)
			}
		}
		fault := schedule.NewFaultBackend(backend)
		fault.SlowAfter(after, delay)
		backend = fault
		fmt.Fprintf(w, "scheduled: fault injection armed: %v delay from call %d on\n", delay, after)
	}

	var cached *schedule.Cached
	var store schedule.RowStore
	defer func() {
		if store != nil {
			store.Close()
		}
	}()
	if *cache != "" {
		format, err := schedule.ParseStoreFormat(*cacheFormat)
		if err != nil {
			return err
		}
		store, err = schedule.OpenRowStore(*cache, schedule.StoreOptions{MaxEntries: *cacheMax, Format: format})
		if err != nil {
			return err
		}
		cached = schedule.NewCached(backend, store)
		backend = cached
		fmt.Fprintf(w, "scheduled: row store %s holds %d rows\n", *cache, store.Len())
	}

	var gossip *service.Gossiper
	if *peers != "" {
		var warmers []schedule.RowWarmer
		var names []string
		for _, url := range strings.Split(*peers, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			warmers = append(warmers, service.NewClient(url, nil))
			names = append(names, url)
		}
		gossip = service.NewGossiper(service.GossiperOptions{QueueBound: *gossipQueue}, warmers...)
		defer gossip.Close()
		fmt.Fprintf(w, "scheduled: gossiping warm rows to %d peers (%s)\n", len(names), strings.Join(names, ", "))
	} else if *gossipQueue != 0 {
		return fmt.Errorf("-gossip-queue needs -peers: there is no queue without peers to push to")
	}

	tenants := tenant.NewRegistry(tenant.Limits{
		RatePerSec: *tenantRate,
		Burst:      *tenantBurst,
		MaxQueued:  *tenantQueue,
		MaxTrees:   *tenantTrees,
	})
	if *tenantRate > 0 || *tenantQueue > 0 || *tenantTrees > 0 {
		fmt.Fprintf(w, "scheduled: tenant quotas rate %g/s burst %d queue %d trees %d\n",
			*tenantRate, *tenantBurst, *tenantQueue, *tenantTrees)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scheduled: listening on http://%s (%d algorithms, backend %s)\n",
		ln.Addr(), len(schedule.Names()), backend.Capabilities().Name)
	var warmStore schedule.Store
	if store != nil {
		warmStore = store
	}
	srv := &http.Server{Handler: service.NewServerWith(service.ServerOptions{
		Backend:     backend,
		Workers:     *workers,
		Store:       warmStore,
		Tenants:     tenants,
		Concurrency: *concurrency,
		Cache:       cached,
		Rows:        store,
		Shard:       shard,
		Gossip:      gossip,
	}).Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight batches finish (bounded), then
	// flush the store. A stuck drain force-closes but still exits cleanly —
	// the store flush below is what must not be skipped.
	fmt.Fprintf(w, "scheduled: draining in-flight batches (up to %v)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		fmt.Fprintf(w, "scheduled: drain timed out after %v; connections closed\n", *drain)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	if cached != nil {
		hits, misses := cached.Counters()
		fmt.Fprintf(w, "scheduled: served %d cache hits, %d misses, %d evictions\n", hits, misses, store.Evictions())
	}
	if gossip != nil {
		// Close before reporting so queued warm batches drain into the
		// counters; the deferred Close then finds it already closed.
		gossip.Close()
		gs := gossip.Stats()
		fmt.Fprintf(w, "scheduled: gossip pushed %d rows (%d batches enqueued, %d dropped, %d errors)\n",
			gs.SentRows, gs.EnqueuedBatches, gs.DroppedBatches, gs.Errors)
	}
	if store != nil {
		s := store
		store = nil
		if err := s.Close(); err != nil {
			return fmt.Errorf("closing row store: %w", err)
		}
		fmt.Fprintf(w, "scheduled: row store flushed\n")
	}
	return nil
}
