package main

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/tree"
)

var addrRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

// startScheduled runs the binary's run() on an ephemeral port and returns
// the base URL plus a shutdown func that waits for a clean exit.
func startScheduled(t *testing.T, extraArgs ...string) (string, func() string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	var out strings.Builder
	go func() {
		err := run(ctx, append([]string{"-addr", "127.0.0.1:0"}, extraArgs...), pw)
		pw.Close()
		errc <- err
	}()
	sc := bufio.NewScanner(pr)
	var base string
	for sc.Scan() {
		out.WriteString(sc.Text())
		out.WriteByte('\n')
		if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		cancel()
		t.Fatalf("server never reported its address; output:\n%s\nerr: %v", out.String(), <-errc)
	}
	drained := make(chan struct{})
	go func() { // keep draining so shutdown prints don't block the pipe
		defer close(drained)
		for sc.Scan() {
			out.WriteString(sc.Text())
			out.WriteByte('\n')
		}
	}()
	return base, func() string {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("server exited with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
		<-drained
		return out.String()
	}
}

func TestServeHealthAndBatch(t *testing.T) {
	base, shutdown := startScheduled(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	client := service.NewClient(base, nil)
	h, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{
		{Instance: "harpoon", Tree: h, Algorithm: "postorder"},
		{Instance: "harpoon", Tree: h, Algorithm: "minmem"},
	}
	rows, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Harpoon(3, 2, 30, 1): postorder needs 71, optimal 35.
	if rows[0].Memory != 71 || rows[1].Memory != 35 {
		t.Fatalf("wrong remote results: %+v", rows)
	}
	shutdown()
}

func TestServeWithCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "rows.jsonl")
	base, shutdown := startScheduled(t, "-cache", cache)
	client := service.NewClient(base, nil)
	h, err := tree.NestedHarpoon(2, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{{Instance: "h", Tree: h, Algorithm: "minmem"}}
	first, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != second[0] {
		t.Fatalf("cached replay not bit-identical: %+v vs %+v", first[0], second[0])
	}
	out := shutdown()
	if !strings.Contains(out, "1 cache hits, 1 misses") {
		t.Fatalf("shutdown did not report cache counters:\n%s", out)
	}
}

// -cache-format binary persists the store in the framed wire form and a
// binary-transport client reads the served rows bit-identically to JSON.
func TestServeWithBinaryCacheAndTransport(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "rows.bin")
	base, shutdown := startScheduled(t, "-cache", cache, "-cache-format", "binary")
	h, err := tree.NestedHarpoon(2, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{
		{Instance: "h", Tree: h, Algorithm: "postorder"},
		{Instance: "h", Tree: h, Algorithm: "minmem"},
	}
	jsonClient := service.NewClient(base, nil)
	first, err := jsonClient.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	binClient := service.NewClient(base, nil)
	binClient.Binary = true
	second, err := binClient.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		a, b := first[i], second[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("binary replay of row %d not bit-identical: %+v vs %+v", i, first[i], second[i])
		}
	}
	out := shutdown()
	if !strings.Contains(out, "2 cache hits, 2 misses") {
		t.Fatalf("shutdown did not report cache counters:\n%s", out)
	}
	store, err := schedule.OpenRowStore(cache, schedule.StoreOptions{Format: schedule.FormatBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 2 {
		t.Fatalf("binary store reopened with %d rows, want 2", store.Len())
	}
}

// -cache-format paged keeps the result cache out of core; a server restart
// over the same file reopens it and serves every earlier row from disk
// without re-running anything.
func TestServeWithPagedCacheAndRestart(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "rows.paged")
	base, shutdown := startScheduled(t, "-cache", cache, "-cache-format", "paged")
	h, err := tree.NestedHarpoon(2, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{
		{Instance: "h", Tree: h, Algorithm: "postorder"},
		{Instance: "h", Tree: h, Algorithm: "minmem"},
	}
	first, err := service.NewClient(base, nil).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := shutdown()
	if !strings.Contains(out, "0 cache hits, 2 misses") {
		t.Fatalf("first server did not report the misses:\n%s", out)
	}

	base, shutdown = startScheduled(t, "-cache", cache, "-cache-format", "paged")
	second, err := service.NewClient(base, nil).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("restarted server row %d not bit-identical: %+v vs %+v", i, first[i], second[i])
		}
	}
	out = shutdown()
	if !strings.Contains(out, "2 cache hits, 0 misses") {
		t.Fatalf("restarted server did not serve from the paged store:\n%s", out)
	}
}

// Tenant quota flags wire through: an over-rate batch is a 429 with
// Retry-After, the rejection is scrapeable from /metrics, and shutdown
// drains cleanly with the store flushed.
func TestServeWithQuotasAndMetrics(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "rows.jsonl")
	base, shutdown := startScheduled(t,
		"-cache", cache, "-tenant-rate", "0.5", "-tenant-burst", "2")
	client := service.NewClient(base, nil)
	client.Tenant = "acme"
	h, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{
		{Instance: "harpoon", Tree: h, Algorithm: "postorder"},
		{Instance: "harpoon", Tree: h, Algorithm: "minmem"},
	}
	if _, err := client.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	// The bucket (burst 2) is empty and refills at 0.5/s: this is a 429.
	_, err = client.Run(context.Background(), jobs, schedule.BatchOptions{})
	var se *service.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate batch: err %v, want a 429", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("429 without a Retry-After hint: %+v", se)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`scheduled_batches_total{outcome="ok"} 1`,
		`scheduled_batches_total{outcome="rejected"} 1`,
		`scheduled_tenant_accepted_jobs_total{tenant="acme"} 2`,
		`scheduled_tenant_rejected_jobs_total{tenant="acme",reason="rate"} 2`,
		"scheduled_cache_misses_total 2",
	} {
		if !strings.Contains(string(scrape), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, scrape)
		}
	}
	out := shutdown()
	for _, want := range []string{"draining in-flight batches", "row store flushed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("shutdown output missing %q:\n%s", want, out)
		}
	}
}

// -children turns the server into a front door: batches fan out over the
// child servers, results match, and the shard counters reach /metrics.
func TestServeFrontDoorShard(t *testing.T) {
	childA, shutdownA := startScheduled(t)
	childB, shutdownB := startScheduled(t)
	front, shutdownFront := startScheduled(t,
		"-children", childA+","+childB, "-admit-depth", "1024")
	client := service.NewClient(front, nil)
	h, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{
		{Instance: "harpoon", Tree: h, Algorithm: "postorder"},
		{Instance: "harpoon", Tree: h, Algorithm: "minmem"},
	}
	rows, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Memory != 71 || rows[1].Memory != 35 {
		t.Fatalf("wrong fanned-out results: %+v", rows)
	}
	resp, err := http.Get(front + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"scheduled_shard_load_sheds_total 0",
		`scheduled_shard_child_chunks_total{child="`,
	} {
		if !strings.Contains(string(scrape), want) {
			t.Fatalf("front door /metrics missing %q:\n%s", want, scrape)
		}
	}
	shutdownFront()
	shutdownA()
	shutdownB()
	// -admit-depth without -children cannot work: there is no queue to measure.
	if err := run(context.Background(), []string{"-admit-depth", "8"}, io.Discard); err == nil {
		t.Fatal("-admit-depth without -children accepted")
	}
}

func TestListAndErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"minmem", "minmemory", "first-fit", "minio", "Liu"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, sb.String())
		}
	}
	if err := run(context.Background(), []string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &sb); err == nil {
		t.Fatal("bad address accepted")
	}
	if err := run(context.Background(), []string{"-cache", "x", "-cache-format", "bogus"}, &sb); err == nil {
		t.Fatal("bad cache format accepted")
	}
}

// -peers push-gossips computed rows: a batch served by one server lands in
// the peer's cache, so the peer answers the same grid without recomputing,
// and both ends report the gossip at shutdown.
func TestServeGossipPeers(t *testing.T) {
	peerCache := filepath.Join(t.TempDir(), "peer-rows.jsonl")
	peerBase, shutdownPeer := startScheduled(t, "-cache", peerCache)
	originBase, shutdownOrigin := startScheduled(t, "-peers", peerBase)

	h, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{
		{Instance: "harpoon", Tree: h, Algorithm: "postorder"},
		{Instance: "harpoon", Tree: h, Algorithm: "minmem"},
	}
	if _, err := service.NewClient(originBase, nil).Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	// Shutdown closes the gossiper, which drains the queue — so the push is
	// complete and accounted for by the time the output returns.
	out := shutdownOrigin()
	for _, want := range []string{
		"scheduled: gossiping warm rows to 1 peers",
		"scheduled: gossip pushed 2 rows (1 batches enqueued, 0 dropped, 0 errors)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("origin shutdown output missing %q:\n%s", want, out)
		}
	}
	// The gossip-warmed peer answers the same grid entirely from its cache.
	if _, err := service.NewClient(peerBase, nil).Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	out = shutdownPeer()
	if !strings.Contains(out, "2 cache hits, 0 misses") {
		t.Fatalf("gossip-warmed peer recomputed:\n%s", out)
	}

	// -gossip-queue without -peers cannot work: there is no queue to bound.
	if err := run(context.Background(), []string{"-gossip-queue", "4"}, io.Discard); err == nil {
		t.Fatal("-gossip-queue without -peers accepted")
	}
}

// A front door with -hedge-after beats a child slowed by the fault-injection
// env knobs: results stay correct, the hedge counters reach /metrics, and
// the slowed child reports the armed harness.
func TestServeHedgedFrontDoorBeatsSlowChild(t *testing.T) {
	childA, shutdownA := startScheduled(t)
	// The env knobs are read at startup, so only the server started while
	// they are set gets the harness.
	t.Setenv("SCHEDULED_FAULT_DELAY", "300ms")
	childB, shutdownB := startScheduled(t)
	t.Setenv("SCHEDULED_FAULT_DELAY", "")
	front, shutdownFront := startScheduled(t,
		"-children", childA+","+childB, "-hedge-after", "25ms", "-chunk", "1")

	h2, err := tree.NestedHarpoon(2, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{
		{Instance: "h2", Tree: h2, Algorithm: "postorder"},
		{Instance: "h2", Tree: h2, Algorithm: "minmem"},
		{Instance: "h3", Tree: h3, Algorithm: "postorder"},
		{Instance: "h3", Tree: h3, Algorithm: "minmem"},
	}
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := service.NewClient(front, nil).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		a, b := want[i], got[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("hedged row %d differs from local: %+v vs %+v", i, got[i], want[i])
		}
	}

	resp, err := http.Get(front + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m := regexp.MustCompile(`scheduled_shard_hedge_wins_total (\d+)`).FindStringSubmatch(string(scrape))
	if m == nil || m[1] == "0" {
		t.Fatalf("front door recorded no hedge wins:\n%s", scrape)
	}

	shutdownFront()
	shutdownA()
	if out := shutdownB(); !strings.Contains(out, "fault injection armed: 300ms delay from call 0 on") {
		t.Fatalf("slowed child did not report the harness:\n%s", out)
	}

	// The hedging and chunking flags only mean something on a front door.
	if err := run(context.Background(), []string{"-hedge-after", "25ms"}, io.Discard); err == nil {
		t.Fatal("-hedge-after without -children accepted")
	}
	if err := run(context.Background(), []string{"-chunk", "8"}, io.Discard); err == nil {
		t.Fatal("-chunk without -children accepted")
	}
	t.Setenv("SCHEDULED_FAULT_DELAY", "not-a-duration")
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0"}, io.Discard); err == nil {
		t.Fatal("malformed SCHEDULED_FAULT_DELAY accepted")
	}
}

// -cache-max bounds the row store: the LRU overflow is evicted, reported at
// shutdown, and the store file compacts to the bound on the next load.
func TestServeWithBoundedCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "rows.jsonl")
	base, shutdown := startScheduled(t, "-cache", cache, "-cache-max", "1")
	client := service.NewClient(base, nil)
	h2, err := tree.NestedHarpoon(2, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []schedule.Job{
		{Instance: "h2", Tree: h2, Algorithm: "minmem"},
		{Instance: "h3", Tree: h3, Algorithm: "minmem"},
	}
	if _, err := client.Run(context.Background(), jobs, schedule.BatchOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	out := shutdown()
	if !strings.Contains(out, "1 evictions") {
		t.Fatalf("shutdown did not report the eviction:\n%s", out)
	}
	// The store file compacts to the bound when reopened.
	store, err := schedule.OpenJSONLStoreWith(cache, schedule.StoreOptions{MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 1 {
		t.Fatalf("bounded store reopened with %d rows, want 1", store.Len())
	}
}
