package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tree"
)

func writeTree(t *testing.T) string {
	t.Helper()
	h, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "h.tree")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := h.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllPolicies(t *testing.T) {
	path := writeTree(t)
	for _, trav := range []string{"minmem", "postorder", "liu"} {
		var sb strings.Builder
		if err := run([]string{"-in", path, "-frac", "0.25", "-traversal", trav}, &sb); err != nil {
			t.Fatalf("%s: %v", trav, err)
		}
		out := sb.String()
		for _, want := range []string{"LSNF", "First Fit", "Best Fit", "First Fill", "Best Fill", "Best K Comb.", "lower bound"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s output missing %q:\n%s", trav, want, out)
			}
		}
	}
}

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"lsnf", "first-fit", "best-k", "divisible-bound", "First Fit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
	// Only the MinIO side of the registry: no MinMemory solvers.
	if strings.Contains(out, "postorder") || strings.Contains(out, "minmem") {
		t.Fatalf("-list leaked MinMemory algorithms:\n%s", out)
	}
}

func TestRunExplicitMemory(t *testing.T) {
	path := writeTree(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-mem", "33"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "M=33") {
		t.Fatalf("memory not reported:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTree(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-traversal", "nope"}, &sb); err == nil {
		t.Fatal("unknown traversal accepted")
	}
	if err := run([]string{"-in", path, "-frac", "1.5"}, &sb); err == nil {
		t.Fatal("fraction out of range accepted")
	}
	if err := run([]string{"-in", path, "-mem", "5"}, &sb); err == nil {
		t.Fatal("memory below MaxMemReq accepted")
	}
	if err := run([]string{"-in", "/missing"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}
