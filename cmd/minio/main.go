// Command minio simulates out-of-core traversals: given a .tree file and a
// main-memory budget, it runs the paper's six eviction heuristics on a
// chosen traversal and reports the I/O volume of each, plus the divisible
// lower bound.
//
// Usage:
//
//	minio -in workflow.tree -frac 0.5                  # sweep point between MaxMemReq and optimal
//	minio -in workflow.tree -mem 12345 -traversal postorder
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/minio"
	"repro/internal/traversal"
	"repro/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minio:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minio", flag.ContinueOnError)
	in := fs.String("in", "", "input .tree file (default stdin)")
	mem := fs.Int64("mem", 0, "main memory size (overrides -frac)")
	frac := fs.Float64("frac", 0.5, "memory as a fraction between MaxMemReq (0) and the in-core optimum (1)")
	trav := fs.String("traversal", "minmem", "traversal: minmem | postorder | liu")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	t, err := tree.Read(r)
	if err != nil {
		return err
	}
	var res traversal.Result
	switch *trav {
	case "minmem":
		res = traversal.MinMem(t)
	case "postorder":
		res = traversal.BestPostOrder(t)
	case "liu":
		res = traversal.LiuExact(t)
	default:
		return fmt.Errorf("unknown traversal %q", *trav)
	}
	lo := t.MaxMemReq()
	hi := traversal.MinMem(t).Memory
	m := *mem
	if m == 0 {
		if *frac < 0 || *frac > 1 {
			return fmt.Errorf("-frac must be in [0,1], got %f", *frac)
		}
		m = lo + int64(*frac*float64(hi-lo))
	}
	if m < lo {
		return fmt.Errorf("memory %d below MaxMemReq %d: no schedule exists", m, lo)
	}
	fmt.Fprintf(w, "tree: %d nodes, MaxMemReq %d, in-core optimum %d\n", t.Len(), lo, hi)
	fmt.Fprintf(w, "traversal: %s (needs %d in-core), memory M=%d\n", *trav, res.Memory, m)
	lb, err := minio.LowerBoundDivisible(t, res.Order, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %12s %8s\n", "policy", "IO volume", "writes")
	for _, pol := range minio.Policies {
		sim, err := minio.Simulate(t, res.Order, m, pol)
		if err != nil {
			return fmt.Errorf("%v: %w", pol, err)
		}
		fmt.Fprintf(w, "%-16s %12d %8d\n", pol.String(), sim.IO, len(sim.Writes))
	}
	fmt.Fprintf(w, "%-16s %12d    (divisible relaxation, same traversal)\n", "lower bound", lb)
	return nil
}
