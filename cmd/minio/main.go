// Command minio simulates out-of-core traversals: given a .tree file and a
// main-memory budget, it runs the paper's six eviction heuristics on a
// chosen traversal and reports the I/O volume of each, plus the divisible
// lower bound. Both the traversal algorithm and the policies are resolved
// by name through the schedule registry.
//
// Usage:
//
//	minio -in workflow.tree -frac 0.5                  # sweep point between MaxMemReq and optimal
//	minio -in workflow.tree -mem 12345 -traversal postorder
//	minio -list                                        # print the registered MinIO algorithms
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/schedule"
	"repro/internal/tree"

	// Register the MinMemory solvers and the MinIO oracles (including the
	// divisible lower bound) with the schedule registry.
	_ "repro/internal/minio"
	_ "repro/internal/traversal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minio:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minio", flag.ContinueOnError)
	in := fs.String("in", "", "input .tree file (default stdin)")
	mem := fs.Int64("mem", 0, "main memory size (overrides -frac)")
	frac := fs.Float64("frac", 0.5, "memory as a fraction between MaxMemReq (0) and the in-core optimum (1)")
	trav := fs.String("traversal", "minmem", "traversal algorithm (any registered MinMemory solver)")
	list := fs.Bool("list", false, "list the registered MinIO algorithms and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range schedule.NamesByKind(schedule.KindMinIO) {
			fmt.Fprintf(w, "%-20s %s\n", name, schedule.DisplayName(name))
		}
		return nil
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	t, err := tree.Read(r)
	if err != nil {
		return err
	}
	travAlg, err := schedule.Lookup(*trav)
	if err != nil {
		return err
	}
	if travAlg.Kind() != schedule.KindMinMemory {
		return fmt.Errorf("algorithm %q is not a MinMemory solver", *trav)
	}
	res, err := travAlg.Run(schedule.Request{Tree: t})
	if err != nil {
		return fmt.Errorf("%s: %w", *trav, err)
	}
	if res.Order == nil {
		return fmt.Errorf("%s proves a memory value but exhibits no traversal to replay", *trav)
	}
	lo := t.MaxMemReq()
	optAlg, err := schedule.Lookup("minmem")
	if err != nil {
		return err
	}
	opt, err := optAlg.Run(schedule.Request{Tree: t})
	if err != nil {
		return err
	}
	hi := opt.Memory
	m := *mem
	if m == 0 {
		if *frac < 0 || *frac > 1 {
			return fmt.Errorf("-frac must be in [0,1], got %f", *frac)
		}
		m = lo + int64(*frac*float64(hi-lo))
	}
	if m < lo {
		return fmt.Errorf("memory %d below MaxMemReq %d: no schedule exists", m, lo)
	}
	fmt.Fprintf(w, "tree: %d nodes, MaxMemReq %d, in-core optimum %d\n", t.Len(), lo, hi)
	fmt.Fprintf(w, "traversal: %s (needs %d in-core), memory M=%d\n", *trav, res.Memory, m)
	fmt.Fprintf(w, "%-16s %12s %8s\n", "policy", "IO volume", "writes")
	req := schedule.Request{Tree: t, Order: res.Order, Memory: m}
	for _, name := range schedule.EvictionPolicyNames() {
		pol, err := schedule.Lookup(name)
		if err != nil {
			return err
		}
		sim, err := pol.Run(req)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "%-16s %12d %8d\n", schedule.DisplayName(name), sim.IO, len(sim.Writes))
	}
	lbAlg, err := schedule.Lookup("divisible-bound")
	if err != nil {
		return err
	}
	lb, err := lbAlg.Run(req)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %12d    (divisible relaxation, same traversal)\n", "lower bound", lb.IO)
	return nil
}
