package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/tenant"
	"repro/internal/tree"
)

// loadConfig carries the -exp load flag values.
type loadConfig struct {
	out         string  // BENCH_load.json path
	backend     string  // "local" (in-process quota'd server) or a server URL
	tenantSweep string  // comma-separated concurrent-tenant counts, e.g. "1,2,4"
	batches     int     // batches each tenant submits
	jobsPerReq  int     // jobs per batch
	nodes       int     // tree size of each tenant's corpus
	rate        float64 // per-tenant token-bucket refill (local backend)
	burst       int     // per-tenant token-bucket capacity (local backend)
	queue       int     // per-tenant queue-depth quota (local backend)
	requireRej  bool    // fail unless the sweep saw at least one rejection
}

// loadTenantStats is one synthetic tenant's outcome within a run.
type loadTenantStats struct {
	Tenant       string `json:"tenant"`
	Batches      int    `json:"batches"`
	AcceptedJobs int64  `json:"accepted_jobs"`
	RejectedJobs int64  `json:"rejected_jobs"`
	Throttles    int64  `json:"throttles"`
}

// loadRun is one row of BENCH_load.json: N concurrent tenants driving the
// server closed-loop, with latency percentiles over their batch round
// trips and aggregate throughput.
type loadRun struct {
	Tenants          int               `json:"tenants"`
	JobsPerBatch     int               `json:"jobs_per_batch"`
	BatchesPerTenant int               `json:"batches_per_tenant"`
	P50Ms            float64           `json:"p50_ms"`
	P99Ms            float64           `json:"p99_ms"`
	RowsPerSec       float64           `json:"rows_per_sec"`
	AcceptedJobs     int64             `json:"accepted_jobs"`
	RejectedJobs     int64             `json:"rejected_jobs"`
	Throttles        int64             `json:"throttles"`
	PerTenant        []loadTenantStats `json:"per_tenant"`
}

// loadReport is the top-level BENCH_load.json document.
type loadReport struct {
	Description string    `json:"description"`
	Backend     string    `json:"backend"`
	RatePerSec  float64   `json:"tenant_rate_per_sec"`
	Burst       int       `json:"tenant_burst"`
	MaxQueued   int       `json:"tenant_max_queued"`
	Runs        []loadRun `json:"runs"`
}

// loadCorpus builds one tenant's instances: distinct trees per tenant
// (seeded by the tenant index) so corpora never collide across tenants.
func loadCorpus(tenantIdx, jobsPerReq, nodes int) ([]schedule.Instance, []schedule.Job, error) {
	algos := []string{"postorder", "liu", "minmem"}
	nInsts := (jobsPerReq + len(algos) - 1) / len(algos)
	var insts []schedule.Instance
	for i := 0; i < nInsts; i++ {
		rng := rand.New(rand.NewSource(int64(1000*tenantIdx + i)))
		tr, err := tree.Random(rng, tree.RandomOptions{Nodes: nodes, MaxF: 50, MaxN: 20, Attach: tree.AttachKind(i % 3)})
		if err != nil {
			return nil, nil, err
		}
		insts = append(insts, schedule.Instance{Name: fmt.Sprintf("t%d-rand-%d", tenantIdx, i), Tree: tr})
	}
	jobs := schedule.MinMemoryGrid(insts, algos)
	if len(jobs) > jobsPerReq {
		jobs = jobs[:jobsPerReq]
	}
	return insts, jobs, nil
}

// percentile reads the q-quantile (0 < q ≤ 1) off sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runLoad is the -exp load mode: the multi-tenant load harness. For each
// tenant count in cfg.tenantSweep it drives that many concurrent synthetic
// tenants against the server — each uploads its own tree corpus, then
// submits cfg.batches by-digest batches closed-loop, retrying 429s with
// the server's Retry-After — and records per-run p50/p99 batch latency,
// aggregate rows/sec and accepted/rejected job counts into cfg.out
// (BENCH_load.json), next to BENCH_solver.json.
//
// With cfg.backend "local" the harness spins an in-process server quota'd
// by cfg.rate/cfg.burst/cfg.queue; pointing it at a running scheduled
// server's URL load-tests that instead (the quota flags then describe
// nothing — the server's own -tenant-* flags rule).
func runLoad(w io.Writer, cfg loadConfig) error {
	if cfg.queue > 0 && cfg.queue < cfg.jobsPerReq {
		return fmt.Errorf("-load-queue %d is below -load-jobs %d: every batch would be rejected forever", cfg.queue, cfg.jobsPerReq)
	}
	var sweep []int
	for _, s := range strings.Split(cfg.tenantSweep, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return fmt.Errorf("bad -load-tenants entry %q", s)
		}
		sweep = append(sweep, n)
	}
	if len(sweep) == 0 {
		return fmt.Errorf("-load-tenants selected no tenant counts")
	}
	maxTenants := sweep[0]
	for _, n := range sweep {
		if n > maxTenants {
			maxTenants = n
		}
	}

	base := cfg.backend
	backendName := cfg.backend
	if cfg.backend == "local" {
		reg := tenant.NewRegistry(tenant.Limits{
			RatePerSec: cfg.rate, Burst: cfg.burst, MaxQueued: cfg.queue,
		})
		srv := httptest.NewServer(service.NewServerWith(service.ServerOptions{
			Tenants:     reg,
			Concurrency: maxTenants, // tenants contend on quotas, not on one eval slot
		}).Handler())
		defer srv.Close()
		base = srv.URL
		backendName = fmt.Sprintf("local (in-process, rate %g/s burst %d queue %d)", cfg.rate, cfg.burst, cfg.queue)
	} else if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return fmt.Errorf("unknown -load-backend %q (want local or an http(s) URL)", base)
	}

	report := loadReport{
		Description: "multi-tenant load harness (cmd/experiments -exp load): N concurrent synthetic tenants submit by-digest batches closed-loop, retrying 429s per the server's Retry-After; p50/p99 are batch round-trip latencies, rows_per_sec counts accepted rows over the run's wall clock, rejected_jobs counts jobs bounced by admission control before their retry landed",
		Backend:     backendName,
		RatePerSec:  cfg.rate,
		Burst:       cfg.burst,
		MaxQueued:   cfg.queue,
	}
	fmt.Fprintf(w, "Load — %d batches × %d jobs per tenant on backend %s\n", cfg.batches, cfg.jobsPerReq, backendName)
	fmt.Fprintf(w, "  %-8s %10s %10s %12s %12s %12s\n", "tenants", "p50 ms", "p99 ms", "rows/sec", "accepted", "rejected")

	var totalRejected int64
	for _, nTenants := range sweep {
		run := loadRun{
			Tenants:          nTenants,
			JobsPerBatch:     cfg.jobsPerReq,
			BatchesPerTenant: cfg.batches,
		}
		var (
			mu        sync.Mutex
			latencies []float64
			wg        sync.WaitGroup
			runErr    error
		)
		fail := func(err error) {
			mu.Lock()
			if runErr == nil {
				runErr = err
			}
			mu.Unlock()
		}
		perTenant := make([]loadTenantStats, nTenants)
		start := time.Now()
		for ti := 0; ti < nTenants; ti++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				name := fmt.Sprintf("load-%02d", ti)
				insts, jobs, err := loadCorpus(ti, cfg.jobsPerReq, cfg.nodes)
				if err != nil {
					fail(err)
					return
				}
				var rejected, throttles int64
				client := service.NewClient(base, nil)
				client.Tenant = name
				client.ByDigest = true
				client.Retries = 16
				client.RetryBackoff = 50 * time.Millisecond
				client.OnThrottle = func(time.Duration) {
					throttles++
					rejected += int64(len(jobs))
				}
				var trees []*tree.Tree
				for _, inst := range insts {
					trees = append(trees, inst.Tree)
				}
				if _, err := client.UploadTrees(context.Background(), trees); err != nil {
					fail(fmt.Errorf("tenant %s: %w", name, err))
					return
				}
				var accepted int64
				for b := 0; b < cfg.batches; b++ {
					t0 := time.Now()
					rows, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
					if err != nil {
						fail(fmt.Errorf("tenant %s batch %d: %w", name, b, err))
						return
					}
					accepted += int64(len(rows))
					mu.Lock()
					latencies = append(latencies, float64(time.Since(t0).Microseconds())/1000)
					mu.Unlock()
				}
				perTenant[ti] = loadTenantStats{
					Tenant: name, Batches: cfg.batches,
					AcceptedJobs: accepted, RejectedJobs: rejected, Throttles: throttles,
				}
			}(ti)
		}
		wg.Wait()
		if runErr != nil {
			return runErr
		}
		elapsed := time.Since(start).Seconds()
		for _, ts := range perTenant {
			run.AcceptedJobs += ts.AcceptedJobs
			run.RejectedJobs += ts.RejectedJobs
			run.Throttles += ts.Throttles
		}
		totalRejected += run.RejectedJobs
		sort.Float64s(latencies)
		run.P50Ms = percentile(latencies, 0.50)
		run.P99Ms = percentile(latencies, 0.99)
		if elapsed > 0 {
			run.RowsPerSec = float64(run.AcceptedJobs) / elapsed
		}
		run.PerTenant = perTenant
		report.Runs = append(report.Runs, run)
		fmt.Fprintf(w, "  %-8d %10.2f %10.2f %12.0f %12d %12d\n",
			run.Tenants, run.P50Ms, run.P99Ms, run.RowsPerSec, run.AcceptedJobs, run.RejectedJobs)
	}
	fmt.Fprintln(w)
	if cfg.requireRej && totalRejected == 0 {
		return fmt.Errorf("-load-require-rejections: admission control never rejected a batch (loosen the sweep or tighten the quotas)")
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(cfg.out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %d load runs to %s\n", len(report.Runs), cfg.out)
	return nil
}
