// Command experiments regenerates every table and figure of Section VI of
// the paper plus demonstrations of Theorems 1 and 2. Output is textual:
// Table I/II-style statistic blocks and ASCII performance profiles for the
// figures; -csv writes machine-readable profile curves next to them.
//
// The grid experiment runs an arbitrary (instance × algorithm) grid on a
// selectable evaluation backend — in-process, cache-decorated, or a remote
// scheduled server — streaming one row per cell as it completes and
// exporting the rows as CSV and JSON Lines.
//
// Usage:
//
//	experiments -exp all -scale medium
//	experiments -exp fig7 -scale full -csv out/
//	experiments -exp grid -algos postorder,liu,minmem -csv out/
//	experiments -exp grid -backend cached -cache rows.jsonl -csv out/
//	experiments -exp grid -backend http://127.0.0.1:8080 -notime -csv out/
//	experiments -exp grid -backend http://h1:8080,http://h2:8080 -progress
//
// A comma-separated -backend URL list shards the grid: chunks of jobs fan
// out across the servers concurrently under the -shard-policy scheduler
// (adaptive by default: each chunk goes to the server with the lowest
// expected completion time, so a slow or busy server naturally receives
// fewer chunks). A failed chunk is resubmitted to another server and the
// failing server is quarantined with exponential backoff, health-probed,
// and readmitted when it recovers; the merged rows are bit-identical to a
// local run (Seconds aside). -warm forwards each computed chunk's rows to
// the sibling servers' caches, so a re-run or resubmitted chunk is warm
// everywhere. After the grid the shard's scheduling counters
// (resubmissions, quarantines, readmissions, warmed rows) and per-server
// dispatch statistics are reported. -progress reports rows/sec and
// completed/total on stderr, so long sharded sweeps are observable.
//
// -exp load is the multi-tenant load harness: N concurrent synthetic
// tenants (swept over -load-tenants) each upload a private tree corpus
// and submit by-digest batches closed-loop against an in-process quota'd
// server (or a running scheduled server via -load-backend URL), retrying
// 429s per the server's Retry-After. Per tenant count it records p50/p99
// batch latency, aggregate rows/sec and accepted/rejected job counts into
// -load-out (BENCH_load.json); -load-require-rejections turns "admission
// control actually fired" into an exit-status assertion for smoke tests.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1 | fig5 | fig6 | fig7 | fig8 | table2 | fig9 | theorem1 | theorem2 | ablation | grid | matrices | bench | load | all (matrices, bench and load run only when selected explicitly)")
	scaleName := fs.String("scale", "medium", "dataset scale: small | medium | full")
	csvDir := fs.String("csv", "", "directory for CSV profile exports (optional)")
	seeds := fs.Int("seeds", 3, "random-weight copies per tree for table2/fig9")
	workers := fs.Int("workers", 0, "parallel workers for table1 and grid (0 = GOMAXPROCS)")
	algos := fs.String("algos", "postorder,liu,minmem", "MinMemory algorithms for the grid experiment")
	backendSpec := fs.String("backend", "local", "grid evaluation backend: local | cached | scheduled-server URL(s); a comma-separated URL list shards the grid across the servers")
	cachePath := fs.String("cache", "", "row-store path for -backend cached (empty = in-memory)")
	cacheFormat := fs.String("cache-format", "jsonl", "row-store file form: "+strings.Join(schedule.StoreFormatNames(), " | "))
	retries := fs.Int("retries", 2, "per-chunk submission retries for remote backends (transient errors only)")
	binary := fs.Bool("binary", false, "use the binary batch transport for remote backends (all servers must understand it)")
	shardPolicy := fs.String("shard-policy", "adaptive", "chunk dispatch policy for sharded backends: adaptive | roundrobin")
	warm := fs.Bool("warm", false, "forward computed rows to sibling server caches (sharded backends)")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedge straggler chunks after this floor delay (0 = no hedging; sharded backends)")
	hedgeMultiple := fs.Float64("hedge-multiple", 0, "hedge a chunk running this many times past its predicted completion (0 = default)")
	progress := fs.Bool("progress", false, "report grid progress (completed/total, rows/sec) on stderr")
	noTime := fs.Bool("notime", false, "zero the seconds column of grid exports, making CSV/JSONL byte-identical across backends and reruns")
	benchOut := fs.String("bench-out", "BENCH_solver.json", "output path for the -exp bench record file")
	benchNodes := fs.Int("bench-nodes", 20_000, "tree size of the -exp bench corpora")
	loadOut := fs.String("load-out", "BENCH_load.json", "output path for the -exp load record file")
	loadBackend := fs.String("load-backend", "local", "-exp load target: local (in-process quota'd server) or a scheduled server URL")
	loadTenants := fs.String("load-tenants", "1,2,4", "comma-separated concurrent-tenant counts for -exp load")
	loadBatches := fs.Int("load-batches", 6, "batches each synthetic tenant submits")
	loadJobs := fs.Int("load-jobs", 24, "jobs per synthetic batch")
	loadNodes := fs.Int("load-nodes", 400, "tree size of each synthetic tenant's corpus")
	loadRate := fs.Float64("load-rate", 0, "per-tenant token-bucket refill for the local load server, jobs/sec (0 = no rate limit)")
	loadBurst := fs.Int("load-burst", 0, "per-tenant token-bucket capacity for the local load server (0 = max(rate, 64))")
	loadQueue := fs.Int("load-queue", 0, "per-tenant queue-depth quota for the local load server (0 = unbounded)")
	loadRequireRej := fs.Bool("load-require-rejections", false, "fail unless admission control rejected at least one batch (smoke-test assertion)")
	corpusName := fs.String("corpus", "smoke", "-exp matrices manifest: smoke (tiny generator-only) or default (real matrices with generator fallbacks)")
	corpusDir := fs.String("corpus-dir", "", "local MatrixMarket mirror for -exp matrices; missing files fall back to the deterministic generators")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exp == "bench" {
		return runBench(w, *benchOut, *benchNodes)
	}
	if *exp == "matrices" {
		return runMatrices(w, matricesConfig{
			grid: gridConfig{
				algos: *algos, workers: *workers, csvDir: *csvDir,
				backend: *backendSpec, cachePath: *cachePath, cacheFormat: *cacheFormat, retries: *retries,
				binary: *binary, shardPolicy: *shardPolicy, warm: *warm,
				hedgeAfter: *hedgeAfter, hedgeMultiple: *hedgeMultiple,
				progress: *progress, noTime: *noTime,
			},
			corpus: *corpusName, corpusDir: *corpusDir,
		})
	}
	if *exp == "load" {
		return runLoad(w, loadConfig{
			out: *loadOut, backend: *loadBackend, tenantSweep: *loadTenants,
			batches: *loadBatches, jobsPerReq: *loadJobs, nodes: *loadNodes,
			rate: *loadRate, burst: *loadBurst, queue: *loadQueue,
			requireRej: *loadRequireRej,
		})
	}
	var scale dataset.Scale
	switch *scaleName {
	case "small":
		scale = dataset.Small
	case "medium":
		scale = dataset.Medium
	case "full":
		scale = dataset.Full
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	want := func(names ...string) bool {
		for _, n := range names {
			if *exp == n || *exp == "all" {
				return true
			}
		}
		return false
	}
	writeCSV := func(name string, curves []profile.Curve, maxTau float64) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		var taus []float64
		const steps = 200
		for i := 0; i <= steps; i++ {
			taus = append(taus, 1+(maxTau-1)*float64(i)/steps)
		}
		return profile.WriteCSV(f, curves, taus)
	}

	var insts []dataset.Instance
	needSuite := want("table1", "fig5", "fig6", "fig7", "fig8", "table2", "fig9", "ablation", "grid")
	if needSuite {
		var err error
		insts, err = dataset.AssemblySuite(scale)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "dataset: %d assembly trees (%s scale)\n\n", len(insts), *scaleName)
	}

	if want("table1", "fig5") {
		mc, err := experiments.RunMemoryComparisonParallel(context.Background(), insts, *workers)
		if err != nil {
			return err
		}
		if want("table1") {
			fmt.Fprint(w, experiments.FormatStats("Table I — PostOrder memory vs optimal (assembly trees)", mc.Stats()))
			fmt.Fprintln(w)
		}
		if want("fig5") {
			curves, err := mc.Profile(true)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Figure 5 — memory profile, PostOrder vs optimal (non-optimal cases only)")
			fmt.Fprintln(w, profile.Render(curves, 60, 12, 1.25))
			fmt.Fprintln(w, experiments.FormatCurveSummaries(curves))
			if err := writeCSV("fig5", curves, 1.25); err != nil {
				return err
			}
		}
	}
	if want("fig6") {
		tr := experiments.RunTimings(insts)
		curves, err := tr.Profile()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Figure 6 — run time profile of the three MinMemory algorithms")
		fmt.Fprintln(w, profile.Render(curves, 60, 12, 5))
		fmt.Fprintln(w, experiments.FormatCurveSummaries(curves))
		counts := tr.FastestCounts()
		for _, alg := range experiments.TimingAlgorithms {
			fmt.Fprintf(w, "  %-10s fastest (or tied) on %d/%d instances\n", schedule.DisplayName(alg), counts[alg], len(tr.Names))
		}
		fmt.Fprintln(w)
		if err := writeCSV("fig6", curves, 5); err != nil {
			return err
		}
	}
	if want("fig7") {
		hr, err := experiments.RunHeuristics(insts)
		if err != nil {
			return err
		}
		curves, err := hr.Profile()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Figure 7 — I/O volume profile of the six eviction heuristics (MinMem traversals)")
		fmt.Fprintln(w, profile.Render(curves, 60, 12, 5))
		fmt.Fprintln(w, experiments.FormatCurveSummaries(curves))
		if err := writeCSV("fig7", curves, 5); err != nil {
			return err
		}
	}
	if want("fig8") {
		tio, err := experiments.RunTraversalIO(insts)
		if err != nil {
			return err
		}
		curves, err := tio.Profile()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Figure 8 — I/O volume profile of the three traversal algorithms + First Fit")
		fmt.Fprintln(w, profile.Render(curves, 60, 12, 5))
		fmt.Fprintln(w, experiments.FormatCurveSummaries(curves))
		if err := writeCSV("fig8", curves, 5); err != nil {
			return err
		}
	}
	if want("table2", "fig9") {
		rnd := dataset.RandomWeightSuite(insts, *seeds)
		mc := experiments.RunMemoryComparison(rnd)
		if want("table2") {
			fmt.Fprint(w, experiments.FormatStats("Table II — PostOrder memory vs optimal (random-weight trees)", mc.Stats()))
			fmt.Fprintln(w)
		}
		if want("fig9") {
			curves, err := mc.Profile(false)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Figure 9 — memory profile, PostOrder vs optimal (random trees)")
			fmt.Fprintln(w, profile.Render(curves, 60, 12, 2.0))
			fmt.Fprintln(w, experiments.FormatCurveSummaries(curves))
			if err := writeCSV("fig9", curves, 2.0); err != nil {
				return err
			}
		}
	}
	if want("ablation") {
		out, err := experiments.FormatAblations(insts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Design ablations (see DESIGN.md)")
		fmt.Fprint(w, out)
		fmt.Fprintln(w)
	}
	if want("grid") {
		cfg := gridConfig{
			algos: *algos, workers: *workers, csvDir: *csvDir,
			backend: *backendSpec, cachePath: *cachePath, cacheFormat: *cacheFormat, retries: *retries,
			binary: *binary, shardPolicy: *shardPolicy, warm: *warm,
			hedgeAfter: *hedgeAfter, hedgeMultiple: *hedgeMultiple,
			progress: *progress, noTime: *noTime,
		}
		if err := runGrid(w, insts, cfg); err != nil {
			return err
		}
	}
	return runTheorems(w, want)
}

// gridConfig carries the grid experiment's flag values.
type gridConfig struct {
	algos         string
	workers       int
	csvDir        string
	backend       string
	cachePath     string
	cacheFormat   string
	retries       int
	binary        bool
	shardPolicy   string
	warm          bool
	hedgeAfter    time.Duration
	hedgeMultiple float64
	progress      bool
	noTime        bool
}

// newBackend resolves a -backend spec: "local", "cached" (decorating local
// with an in-memory store, or the row store at cachePath in the
// -cache-format encoding), the URL of a
// scheduled evaluation server, or a comma-separated URL list, which builds
// a schedule.Shard fanning chunks out across the servers under the
// -shard-policy scheduler (with -warm, computed rows are forwarded to
// sibling caches). The cleanup func flushes the on-disk store; call it when
// the grid is done.
func newBackend(cfg gridConfig) (schedule.Backend, func() error, error) {
	nop := func() error { return nil }
	newClient := func(url string) (*service.Client, error) {
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return nil, fmt.Errorf("backend URL %q is not http(s)", url)
		}
		c := service.NewClient(url, nil)
		c.Retries = cfg.retries
		c.Binary = cfg.binary
		return c, nil
	}
	spec := cfg.backend
	switch {
	case spec == "local":
		return schedule.Local{}, nop, nil
	case spec == "cached":
		if cfg.cachePath == "" {
			return schedule.NewCached(schedule.Local{}, nil), nop, nil
		}
		format, err := schedule.ParseStoreFormat(cfg.cacheFormat)
		if err != nil {
			return nil, nil, err
		}
		store, err := schedule.OpenRowStore(cfg.cachePath, schedule.StoreOptions{Format: format})
		if err != nil {
			return nil, nil, err
		}
		return schedule.NewCached(schedule.Local{}, store), store.Close, nil
	case strings.Contains(spec, ","):
		var children []schedule.Backend
		for _, url := range strings.Split(spec, ",") {
			if url = strings.TrimSpace(url); url == "" {
				continue
			}
			c, err := newClient(url)
			if err != nil {
				return nil, nil, err
			}
			children = append(children, c)
		}
		shard, err := schedule.NewShardWith(schedule.ShardOptions{
			Policy:        schedule.ShardPolicy(cfg.shardPolicy),
			Warm:          cfg.warm,
			HedgeAfter:    cfg.hedgeAfter,
			HedgeMultiple: cfg.hedgeMultiple,
		}, children...)
		if err != nil {
			return nil, nil, err
		}
		return shard, nop, nil
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		c, err := newClient(spec)
		if err != nil {
			return nil, nil, err
		}
		return c, nop, nil
	default:
		return nil, nil, fmt.Errorf("unknown backend %q (want local, cached or http:// URLs)", spec)
	}
}

// gridProgress reports completed/total and rows/sec on w, updated in place
// (carriage return) at most a few times a second, with a final newline.
type gridProgress struct {
	w     io.Writer
	total int
	done  int
	start time.Time
	last  time.Time
}

func newGridProgress(w io.Writer, total int) *gridProgress {
	now := time.Now()
	return &gridProgress{w: w, total: total, start: now, last: now}
}

// row records one completed row; callers serialize it (the OnRow contract).
func (p *gridProgress) row() {
	p.done++
	now := time.Now()
	if p.done != p.total && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	rate := float64(p.done) / (now.Sub(p.start).Seconds() + 1e-9)
	fmt.Fprintf(p.w, "\rgrid: %d/%d rows (%.0f rows/s)", p.done, p.total, rate)
	if p.done == p.total {
		fmt.Fprintln(p.w)
	}
}

// runGrid evaluates an (instance × algorithm) grid on the selected
// evaluation backend: every MinMemory algorithm in cfg.algos on every
// instance, plus the six eviction policies replaying MinMem traversals
// across the memory sweep. Rows stream to w as they complete; with
// cfg.csvDir set they are also exported as grid.csv and grid.jsonl (with
// cfg.noTime, the seconds column is zeroed so the exports are
// byte-identical across backends and reruns).
func runGrid(w io.Writer, insts []dataset.Instance, cfg gridConfig) error {
	workers, csvDir := cfg.workers, cfg.csvDir
	gridInsts := make([]schedule.Instance, len(insts))
	for i, inst := range insts {
		gridInsts[i] = schedule.Instance{Name: inst.Name, Tree: inst.Tree}
	}
	var algNames []string
	for _, n := range strings.Split(cfg.algos, ",") {
		if n = strings.TrimSpace(n); n != "" {
			algNames = append(algNames, n)
		}
	}
	jobs := schedule.MinMemoryGrid(gridInsts, algNames)
	// Policy sweep budgets: the trivial floor and the midpoint to the
	// in-core optimum, read off the orderBy (minmem) outcome the grid has
	// already computed.
	memories := func(t *tree.Tree, out schedule.Outcome) ([]int64, error) {
		lo := t.MaxMemReq()
		if mid := (lo + out.Memory) / 2; mid != lo {
			return []int64{lo, mid}, nil
		}
		return []int64{lo}, nil
	}
	polJobs, err := schedule.MinIOGrid(context.Background(), gridInsts, "minmem", schedule.EvictionPolicyNames(), memories, workers)
	if err != nil {
		return err
	}
	jobs = append(jobs, polJobs...)
	backend, cleanup, err := newBackend(cfg)
	if err != nil {
		return err
	}
	defer cleanup()
	fmt.Fprintf(w, "Grid — %d jobs (%d instances × {%s} + policy sweep) on backend %s, streamed as completed\n",
		len(jobs), len(insts), strings.Join(algNames, ","), backend.Capabilities().Name)
	fmt.Fprintf(w, "  %-24s %-12s %10s %12s %12s\n", "instance", "algorithm", "budget", "memory", "io")
	var prog *gridProgress
	if cfg.progress {
		prog = newGridProgress(os.Stderr, len(jobs))
	}
	rows, err := backend.Run(context.Background(), jobs, schedule.BatchOptions{
		Workers: workers,
		OnRow: func(r schedule.Row) {
			fmt.Fprintf(w, "  %-24s %-12s %10d %12d %12d\n", r.Instance, r.Algorithm, r.Budget, r.Memory, r.IO)
			if prog != nil {
				prog.row()
			}
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %d rows\n", len(rows))
	if s, ok := backend.(*schedule.Shard); ok {
		reportShard(w, s)
	}
	if c, ok := backend.(*schedule.Cached); ok {
		hits, misses := c.Counters()
		fmt.Fprintf(w, "  cache: %d hits, %d misses\n", hits, misses)
	}
	fmt.Fprintln(w)
	if csvDir == "" {
		return cleanup()
	}
	if cfg.noTime {
		for i := range rows {
			rows[i].Seconds = 0
		}
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(csvDir, "grid.csv"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := schedule.WriteRowsCSV(cf, rows); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(csvDir, "grid.jsonl"))
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := schedule.WriteRowsJSON(jf, rows); err != nil {
		return err
	}
	return cleanup()
}

// reportShard prints the shard's scheduling counters and per-server
// dispatch statistics after a grid, so operators can see how the adaptive
// scheduler spread the work and which servers flapped.
func reportShard(w io.Writer, s *schedule.Shard) {
	c := s.Counters()
	if c.Resubmissions > 0 || c.Quarantines > 0 || c.Readmissions > 0 || c.WarmedRows > 0 || c.WarmErrors > 0 {
		fmt.Fprintf(w, "  shard: %d resubmissions, %d quarantines, %d readmissions, %d warmed rows, %d warm errors\n",
			c.Resubmissions, c.Quarantines, c.Readmissions, c.WarmedRows, c.WarmErrors)
	}
	if c.Hedges > 0 {
		fmt.Fprintf(w, "  shard: %d hedges, %d hedge wins\n", c.Hedges, c.HedgeWins)
	}
	for _, cs := range s.ChildStats() {
		state := ""
		if cs.Quarantined {
			state = " (quarantined)"
		}
		fmt.Fprintf(w, "  shard child %s: %d chunks, %d rows, %d failures, %.0f rows/s%s\n",
			cs.Name, cs.Chunks, cs.Rows, cs.Failures, cs.RowsPerSec, state)
	}
}

// runTheorems prints the Theorem 1 and 2 demonstrations.
func runTheorems(w io.Writer, want func(...string) bool) error {
	if want("theorem1") {
		rows, err := experiments.RunTheorem1(4, 6, 400, 1)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Theorem 1 — nested harpoons (b=4, M=400, ε=1): unbounded PostOrder/optimal ratio")
		fmt.Fprintf(w, "  %-7s %-8s %-12s %-12s %-8s\n", "levels", "nodes", "postorder", "optimal", "ratio")
		for _, r := range rows {
			check := "ok"
			if r.PostOrder != r.WantPO || r.Optimal != r.WantOpt {
				check = "MISMATCH with closed form"
			}
			fmt.Fprintf(w, "  %-7d %-8d %-12d %-12d %-8.3f %s\n", r.Levels, r.Nodes, r.PostOrder, r.Optimal, r.Ratio, check)
		}
		fmt.Fprintln(w)
	}
	if want("theorem2") {
		rows, err := experiments.RunTheorem2(20)
		if err != nil {
			return err
		}
		ok := 0
		fmt.Fprintln(w, "Theorem 2 — 2-Partition reduction: MinIO ≤ S/2 ⇔ instance solvable")
		for _, r := range rows {
			status := "consistent"
			if !r.Consistent {
				status = "INCONSISTENT"
			}
			if r.Consistent {
				ok++
			}
			fmt.Fprintf(w, "  items=%-20s solvable=%-5v minIO=%-5d bound=%-5d %s\n",
				fmt.Sprint(r.Items), r.Solvable, r.MinIO, r.Bound, status)
		}
		fmt.Fprintf(w, "  %d/%d instances consistent\n\n", ok, len(rows))
	}
	return nil
}
