package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/hillvalley"
	"repro/internal/ordering"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
)

// benchRecord is one row of BENCH_solver.json: a named micro-benchmark
// over a generated tree corpus with the standard Go benchmark metrics plus
// a throughput figure (tree nodes or evaluation rows per second).
type benchRecord struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec,omitempty"`
}

// benchReport is the top-level BENCH_solver.json document.
type benchReport struct {
	Description string        `json:"description"`
	Benchmarks  []benchRecord `json:"benchmarks"`
}

// benchCorpus generates the benchmark trees: one shape per attachment
// kind at the given node count, deterministic across runs.
func benchCorpus(nodes int) (map[string]*tree.Tree, error) {
	shapes := map[string]tree.AttachKind{
		"uniform":      tree.AttachUniform,
		"preferential": tree.AttachPreferential,
		"chainy":       tree.AttachChainy,
	}
	out := make(map[string]*tree.Tree, len(shapes))
	for name, kind := range shapes {
		rng := rand.New(rand.NewSource(2011))
		tr, err := tree.Random(rng, tree.RandomOptions{Nodes: nodes, MaxF: 100, MaxN: 40, Attach: kind})
		if err != nil {
			return nil, err
		}
		out[name] = tr
	}
	return out, nil
}

// record runs fn under testing.Benchmark and converts the result, deriving
// RowsPerSec from rows processed per op.
func record(name string, nodes int, rowsPerOp float64, fn func(b *testing.B)) benchRecord {
	r := testing.Benchmark(fn)
	rec := benchRecord{
		Name:        name,
		Nodes:       nodes,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if rowsPerOp > 0 && rec.NsPerOp > 0 {
		rec.RowsPerSec = rowsPerOp / (rec.NsPerOp / 1e9)
	}
	return rec
}

// runBench is the -exp bench mode: it benchmarks the solver hot path —
// the hillvalley kernel (LiuProfile/LiuExact), the unified simulator's
// peak accounting and Best-K eviction replay, and the local batch
// evaluator — over generated tree corpora, prints a summary table and
// writes the records to outPath (BENCH_solver.json), so every future PR
// can diff the perf trajectory.
func runBench(w io.Writer, outPath string, nodes int) error {
	trees, err := benchCorpus(nodes)
	if err != nil {
		return err
	}
	report := benchReport{
		Description: "solver hot-path benchmarks (cmd/experiments -exp bench); ns_per_op and allocs_per_op from testing.Benchmark, rows_per_sec = tree nodes (kernel/simulator) or evaluation rows (batch) per second; batch-local is the cold solver-bound path, batch-local-binary streams the same grid from a warmed cache through the pooled chunk engine into the framed binary row form, batch-remote-{json,binary} contrast the two transports over one warmed server; store-{jsonl,binary,paged}/{put,get} measure row-store overwrite and replay throughput per format; mm-parse is the zero-alloc MatrixMarket parser (rows_per_sec = coordinate entries), amd and etree-counts run the AMD ordering and the skeleton column counts on the 316x316 grid (~100k columns, rows_per_sec = columns), corpus-pipeline streams the smoke manifest end to end (rows_per_sec = tree instances) — all four at fixed problem sizes independent of -bench-nodes",
	}
	fmt.Fprintf(w, "Solver benchmarks — %d-node corpora, one tree per shape\n", nodes)
	fmt.Fprintf(w, "  %-34s %14s %12s %14s\n", "benchmark", "ns/op", "allocs/op", "rows/sec")
	add := func(rec benchRecord) {
		report.Benchmarks = append(report.Benchmarks, rec)
		fmt.Fprintf(w, "  %-34s %14.0f %12d %14.0f\n", rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.RowsPerSec)
	}
	for _, shape := range []string{"uniform", "preferential", "chainy"} {
		tr := trees[shape]
		p := float64(tr.Len())
		add(record("liu-profile/"+shape, tr.Len(), p, func(b *testing.B) {
			var k hillvalley.Kernel
			var dst []hillvalley.Segment
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = k.Profile(tr, dst[:0])
			}
		}))
		add(record("liu-exact/"+shape, tr.Len(), p, func(b *testing.B) {
			var k hillvalley.Kernel
			var order []int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, order = k.Exact(tr, order[:0])
			}
		}))
		order := tr.TopDown()
		add(record("simulate-peak/"+shape, tr.Len(), p, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Simulate(tr, order, schedule.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		}))
		sim, err := schedule.Simulate(tr, order, schedule.Config{})
		if err != nil {
			return err
		}
		budget := tr.MaxMemReq() + (sim.Peak-tr.MaxMemReq())/2
		ev, err := schedule.BestK(schedule.BestKWindow)
		if err != nil {
			return err
		}
		add(record("evict-best-k/"+shape, tr.Len(), p, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Simulate(tr, order, schedule.Config{Memory: budget, Evict: ev}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	// Batch evaluator throughput: a small MinMemory grid on the local
	// backend, reported as evaluation rows per second.
	var insts []schedule.Instance
	for i := 0; i < 6; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		tr, err := tree.Random(rng, tree.RandomOptions{Nodes: 400, MaxF: 50, MaxN: 20, Attach: tree.AttachKind(i % 3)})
		if err != nil {
			return err
		}
		insts = append(insts, schedule.Instance{Name: fmt.Sprintf("rand-%d", i), Tree: tr})
	}
	jobs := schedule.MinMemoryGrid(insts, []string{"postorder", "liu", "minmem"})
	add(record("batch-local/minmemory-grid", 0, float64(len(jobs)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (schedule.Local{}).Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// The allocation-free batch spine: the same grid answered from a warmed
	// content-addressed cache and streamed through the pooled chunk engine
	// into the framed binary row form. The cold batch-local path above is
	// solver-bound; this entry isolates the row-serving machinery the binary
	// wire format exists for.
	cached := schedule.NewCached(schedule.Local{}, nil)
	if _, err := cached.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		return err
	}
	add(record("batch-local-binary/minmemory-grid", 0, float64(len(jobs)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := schedule.NewBinaryRowSink(io.Discard)
			if err := cached.Stream(context.Background(), schedule.SliceSource(jobs), sink, schedule.StreamOptions{}); err != nil {
				b.Fatal(err)
			}
			if err := sink.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// Row-store throughput across the three on-disk formats, over the same
	// grid's rows: puts overwrite a fixed key set (the cached backend's
	// steady state), gets replay it. The resident formats (jsonl, binary)
	// serve gets from memory; the paged store reads through its page cache,
	// so this pair also tracks the out-of-core read path.
	rows, err := (schedule.Local{}).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		return err
	}
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = schedule.CacheKey(j)
	}
	storeDir, err := os.MkdirTemp("", "bench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	for _, format := range []schedule.StoreFormat{schedule.FormatJSONL, schedule.FormatBinary, schedule.FormatPaged} {
		st, err := schedule.OpenRowStore(
			filepath.Join(storeDir, "rows."+format.String()),
			schedule.StoreOptions{Format: format})
		if err != nil {
			return err
		}
		for i := range keys { // warm once so every get hits
			if err := st.Put(keys[i], rows[i]); err != nil {
				return err
			}
		}
		add(record("store-"+format.String()+"/put", 0, float64(len(jobs)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for k := range keys {
					if err := st.Put(keys[k], rows[k]); err != nil {
						b.Fatal(err)
					}
				}
			}
		}))
		add(record("store-"+format.String()+"/get", 0, float64(len(jobs)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for k := range keys {
					if _, ok := st.Get(keys[k]); !ok {
						b.Fatalf("key %d missing from the %v store", k, format)
					}
				}
			}
		}))
		if err := st.Close(); err != nil {
			return err
		}
	}
	// Remote throughput over the same warmed cache, JSON vs binary: the
	// contrast is pure transport (encoding, HTTP framing, decoding).
	srv := httptest.NewServer(service.NewServerWith(service.ServerOptions{Backend: cached}).Handler())
	defer srv.Close()
	for _, mode := range []struct {
		name   string
		binary bool
	}{{"batch-remote-json/minmemory-grid", false}, {"batch-remote-binary/minmemory-grid", true}} {
		client := service.NewClient(srv.URL, nil)
		client.Binary = mode.binary
		add(record(mode.name, 0, float64(len(jobs)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := client.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	// Real-matrix front end, fixed problem sizes (independent of -bench-nodes
	// so the CI gate compares like with like): the zero-alloc MatrixMarket
	// parser (rows/sec = coordinate entries), AMD on the ~100k-node 2D model
	// problem and the skeleton column counts on the same matrix (rows/sec =
	// matrix columns), and the smoke corpus pipeline end to end (rows/sec =
	// tree instances).
	gm, err := sparse.Grid2D(200, 200)
	if err != nil {
		return err
	}
	var mmBuf bytes.Buffer
	if err := gm.WriteMatrixMarket(&mmBuf); err != nil {
		return err
	}
	mmData := mmBuf.Bytes()
	var parser sparse.Parser
	if _, err := parser.ParseBytes(mmData); err != nil { // warm the buffers
		return err
	}
	add(record("mm-parse/grid2d-200", gm.N(), float64(gm.NNZ()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parser.ParseBytes(mmData); err != nil {
				b.Fatal(err)
			}
		}
	}))
	ga, err := sparse.Grid2D(316, 316)
	if err != nil {
		return err
	}
	add(record("amd/grid2d-100k", ga.N(), float64(ga.N()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ordering.AMD(ga); err != nil {
				b.Fatal(err)
			}
		}
	}))
	parentA, err := symbolic.EliminationTree(ga)
	if err != nil {
		return err
	}
	add(record("etree-counts/grid2d-100k", ga.N(), float64(ga.N()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := symbolic.ColumnCounts(ga, parentA); err != nil {
				b.Fatal(err)
			}
		}
	}))
	smoke := corpus.SmokeManifest()
	smokeInstances := float64(len(smoke) * len(corpus.OrderingNames()) * 2)
	add(record("corpus-pipeline/smoke", 0, smokeInstances, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pipe, err := corpus.NewPipeline(smoke, corpus.PipelineOptions{})
			if err != nil {
				b.Fatal(err)
			}
			for {
				_, ok, err := pipe.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
			pipe.Close()
		}
	}))
	fmt.Fprintln(w)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %d benchmark records to %s\n", len(report.Benchmarks), outPath)
	return nil
}
