package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/service"
)

func TestRunAllSmall(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-exp", "all", "-scale", "small", "-seeds", "1", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table I", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
		"Table II", "Figure 9", "Theorem 1", "Theorem 2", "consistent",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	for _, f := range []string{"fig5.csv", "fig6.csv", "fig7.csv", "fig8.csv", "fig9.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("CSV %s missing: %v", f, err)
		}
		if !strings.HasPrefix(string(data), "tau,") {
			t.Fatalf("CSV %s malformed", f)
		}
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "theorem1", "theorem2"} {
		var sb strings.Builder
		if err := run([]string{"-exp", exp, "-scale", "small"}, &sb); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
	// A single experiment must not run the others.
	var sb strings.Builder
	if err := run([]string{"-exp", "theorem1", "-scale", "small"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Table I") {
		t.Fatal("theorem1 run produced Table I")
	}
}

// The same grid exported through every backend — local, cached cold, cached
// warm (across a process-like store reopen) and HTTP — must be byte-identical
// once -notime zeroes the seconds column.
func TestGridBackendsByteIdentical(t *testing.T) {
	srv := httptest.NewServer(service.NewServer(nil, 0).Handler())
	defer srv.Close()
	dir := t.TempDir()
	store := filepath.Join(dir, "rows.jsonl")

	gridFiles := func(name string, backendArgs ...string) (csv, jsonl string, out string) {
		t.Helper()
		sub := filepath.Join(dir, name)
		var sb strings.Builder
		args := append([]string{"-exp", "grid", "-scale", "small", "-notime", "-csv", sub}, backendArgs...)
		if err := run(args, &sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := os.ReadFile(filepath.Join(sub, "grid.csv"))
		if err != nil {
			t.Fatal(err)
		}
		j, err := os.ReadFile(filepath.Join(sub, "grid.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return string(c), string(j), sb.String()
	}

	localCSV, localJSONL, _ := gridFiles("local", "-backend", "local")
	coldCSV, coldJSONL, coldOut := gridFiles("cold", "-backend", "cached", "-cache", store)
	warmCSV, warmJSONL, warmOut := gridFiles("warm", "-backend", "cached", "-cache", store)
	httpCSV, httpJSONL, _ := gridFiles("http", "-backend", srv.URL)

	for name, got := range map[string][2]string{
		"cached cold": {coldCSV, coldJSONL},
		"cached warm": {warmCSV, warmJSONL},
		"http":        {httpCSV, httpJSONL},
	} {
		if got[0] != localCSV {
			t.Fatalf("%s grid.csv differs from local", name)
		}
		if got[1] != localJSONL {
			t.Fatalf("%s grid.jsonl differs from local", name)
		}
	}
	if !strings.Contains(coldOut, "cache: 0 hits") {
		t.Fatalf("cold run not reported as all misses:\n%s", coldOut)
	}
	if !strings.Contains(warmOut, "0 misses") || !strings.Contains(warmOut, "hits") {
		t.Fatalf("warm run not served fully from the store:\n%s", warmOut)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "nope"}, &sb); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-exp", "grid", "-scale", "small", "-backend", "bogus"}, &sb); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// A comma-separated -backend URL list shards the grid across the servers;
// the exports must stay byte-identical to local, a mid-grid server failure
// included (the shard resubmits those chunks to the other server).
func TestGridShardedBackendByteIdentical(t *testing.T) {
	srv1 := httptest.NewServer(service.NewServer(nil, 0).Handler())
	defer srv1.Close()
	flaky := &failFirstHandler{inner: service.NewServer(nil, 0).Handler()}
	flaky.failN.Store(1)
	srv2 := httptest.NewServer(flaky)
	defer srv2.Close()
	dir := t.TempDir()

	gridFiles := func(name string, backendArgs ...string) (csv, jsonl string) {
		t.Helper()
		sub := filepath.Join(dir, name)
		var sb strings.Builder
		args := append([]string{"-exp", "grid", "-scale", "small", "-notime", "-csv", sub}, backendArgs...)
		if err := run(args, &sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := os.ReadFile(filepath.Join(sub, "grid.csv"))
		if err != nil {
			t.Fatal(err)
		}
		j, err := os.ReadFile(filepath.Join(sub, "grid.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return string(c), string(j)
	}

	localCSV, localJSONL := gridFiles("local", "-backend", "local")
	shardCSV, shardJSONL := gridFiles("shard", "-backend", srv1.URL+","+srv2.URL, "-retries", "0")
	if shardCSV != localCSV {
		t.Fatal("sharded grid.csv differs from local")
	}
	if shardJSONL != localJSONL {
		t.Fatal("sharded grid.jsonl differs from local")
	}
	if flaky.batches.Load() == 0 {
		t.Fatal("second server never dispatched to")
	}

	// Both dispatch policies and cache warming produce the same bytes.
	rrCSV, rrJSONL := gridFiles("roundrobin", "-backend", srv1.URL+","+srv2.URL,
		"-retries", "0", "-shard-policy", "roundrobin", "-warm")
	if rrCSV != localCSV || rrJSONL != localJSONL {
		t.Fatal("round-robin warmed shard exports differ from local")
	}

	// The binary transport across the same shard is byte-identical too.
	binCSV, binJSONL := gridFiles("binary", "-backend", srv1.URL+","+srv2.URL,
		"-retries", "0", "-binary")
	if binCSV != localCSV || binJSONL != localJSONL {
		t.Fatal("binary-transport shard exports differ from local")
	}

	// Malformed lists and unknown policies are rejected.
	var sb strings.Builder
	if err := run([]string{"-exp", "grid", "-scale", "small", "-backend", srv1.URL + ",bogus"}, &sb); err == nil {
		t.Fatal("non-URL shard member accepted")
	}
	if err := run([]string{"-exp", "grid", "-scale", "small",
		"-backend", srv1.URL + "," + srv2.URL, "-shard-policy", "fastest"}, &sb); err == nil {
		t.Fatal("unknown shard policy accepted")
	}
}

// failFirstHandler 502s its first failN /v1/batch calls, then serves.
type failFirstHandler struct {
	inner   http.Handler
	failN   atomic.Int64
	batches atomic.Int64
}

func (h *failFirstHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/batch" {
		h.batches.Add(1)
		if h.failN.Add(-1) >= 0 {
			http.Error(w, "down", http.StatusBadGateway)
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

// -progress reports completed/total rows on stderr without disturbing the
// grid output or exports.
func TestGridProgress(t *testing.T) {
	old := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(pr)
		done <- string(b)
	}()
	var sb strings.Builder
	runErr := run([]string{"-exp", "grid", "-scale", "small", "-progress"}, &sb)
	pw.Close()
	os.Stderr = old
	stderr := <-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.Contains(stderr, "rows/s)") || !strings.Contains(stderr, "grid: ") {
		t.Fatalf("progress output missing from stderr: %q", stderr)
	}
	if !strings.Contains(sb.String(), " rows") {
		t.Fatalf("grid output disturbed:\n%s", sb.String())
	}
}

// -exp bench writes a well-formed BENCH_solver.json with the solver
// hot-path records: the kernel benchmarks must report (near) zero
// steady-state allocations and a positive throughput.
func TestBenchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("bench mode in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_solver.json")
	var sb strings.Builder
	if err := run([]string{"-exp", "bench", "-bench-nodes", "500", "-bench-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "liu-profile/uniform") {
		t.Fatalf("summary table missing kernel rows:\n%s", sb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Description string `json:"description"`
		Benchmarks  []struct {
			Name        string  `json:"name"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
			RowsPerSec  float64 `json:"rows_per_sec"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_solver.json is not valid JSON: %v", err)
	}
	if len(report.Benchmarks) < 13 {
		t.Fatalf("only %d benchmark records", len(report.Benchmarks))
	}
	for _, b := range report.Benchmarks {
		if b.NsPerOp <= 0 || b.RowsPerSec <= 0 {
			t.Errorf("%s: non-positive metrics: %+v", b.Name, b)
		}
		if strings.HasPrefix(b.Name, "liu-profile/") && b.AllocsPerOp > 4 {
			t.Errorf("%s: %d allocs/op, kernel should be (near) allocation-free", b.Name, b.AllocsPerOp)
		}
	}
}

// -exp load writes a well-formed BENCH_load.json: per tenant count, the
// latency percentiles and throughput are positive, accepted jobs match the
// configured volume, and with quotas this tight admission control must
// have rejected work (-load-require-rejections would exit nonzero
// otherwise — the CI smoke job leans on exactly that).
func TestLoadMode(t *testing.T) {
	if testing.Short() {
		t.Skip("load mode backs off for whole seconds on 429s")
	}
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	var sb strings.Builder
	err := run([]string{"-exp", "load",
		"-load-tenants", "1,2", "-load-batches", "2", "-load-jobs", "6",
		"-load-nodes", "120", "-load-rate", "20", "-load-burst", "6",
		"-load-require-rejections", "-load-out", out}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Backend string `json:"backend"`
		Runs    []struct {
			Tenants      int     `json:"tenants"`
			P50Ms        float64 `json:"p50_ms"`
			P99Ms        float64 `json:"p99_ms"`
			RowsPerSec   float64 `json:"rows_per_sec"`
			AcceptedJobs int64   `json:"accepted_jobs"`
			RejectedJobs int64   `json:"rejected_jobs"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_load.json is not valid JSON: %v", err)
	}
	if len(report.Runs) != 2 {
		t.Fatalf("recorded %d runs, want 2", len(report.Runs))
	}
	for _, r := range report.Runs {
		if r.P50Ms <= 0 || r.P99Ms < r.P50Ms || r.RowsPerSec <= 0 {
			t.Errorf("tenants=%d: implausible latency/throughput: %+v", r.Tenants, r)
		}
		if want := int64(r.Tenants * 2 * 6); r.AcceptedJobs != want {
			t.Errorf("tenants=%d: accepted %d jobs, want %d", r.Tenants, r.AcceptedJobs, want)
		}
		if r.RejectedJobs == 0 {
			t.Errorf("tenants=%d: quotas this tight must reject work", r.Tenants)
		}
	}

	// A queue quota below the batch size would retry forever: refused up front.
	if err := run([]string{"-exp", "load", "-load-jobs", "8", "-load-queue", "4"}, io.Discard); err == nil {
		t.Fatal("-load-queue below -load-jobs accepted")
	}
	if err := run([]string{"-exp", "load", "-load-tenants", "zero"}, io.Discard); err == nil {
		t.Fatal("bad -load-tenants accepted")
	}
	if err := run([]string{"-exp", "load", "-load-backend", "ftp://nope"}, io.Discard); err == nil {
		t.Fatal("bad -load-backend accepted")
	}
}
