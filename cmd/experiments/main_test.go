package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
)

func TestRunAllSmall(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-exp", "all", "-scale", "small", "-seeds", "1", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table I", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
		"Table II", "Figure 9", "Theorem 1", "Theorem 2", "consistent",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	for _, f := range []string{"fig5.csv", "fig6.csv", "fig7.csv", "fig8.csv", "fig9.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("CSV %s missing: %v", f, err)
		}
		if !strings.HasPrefix(string(data), "tau,") {
			t.Fatalf("CSV %s malformed", f)
		}
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "theorem1", "theorem2"} {
		var sb strings.Builder
		if err := run([]string{"-exp", exp, "-scale", "small"}, &sb); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
	// A single experiment must not run the others.
	var sb strings.Builder
	if err := run([]string{"-exp", "theorem1", "-scale", "small"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Table I") {
		t.Fatal("theorem1 run produced Table I")
	}
}

// The same grid exported through every backend — local, cached cold, cached
// warm (across a process-like store reopen) and HTTP — must be byte-identical
// once -notime zeroes the seconds column.
func TestGridBackendsByteIdentical(t *testing.T) {
	srv := httptest.NewServer(service.NewServer(nil, 0).Handler())
	defer srv.Close()
	dir := t.TempDir()
	store := filepath.Join(dir, "rows.jsonl")

	gridFiles := func(name string, backendArgs ...string) (csv, jsonl string, out string) {
		t.Helper()
		sub := filepath.Join(dir, name)
		var sb strings.Builder
		args := append([]string{"-exp", "grid", "-scale", "small", "-notime", "-csv", sub}, backendArgs...)
		if err := run(args, &sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := os.ReadFile(filepath.Join(sub, "grid.csv"))
		if err != nil {
			t.Fatal(err)
		}
		j, err := os.ReadFile(filepath.Join(sub, "grid.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return string(c), string(j), sb.String()
	}

	localCSV, localJSONL, _ := gridFiles("local", "-backend", "local")
	coldCSV, coldJSONL, coldOut := gridFiles("cold", "-backend", "cached", "-cache", store)
	warmCSV, warmJSONL, warmOut := gridFiles("warm", "-backend", "cached", "-cache", store)
	httpCSV, httpJSONL, _ := gridFiles("http", "-backend", srv.URL)

	for name, got := range map[string][2]string{
		"cached cold": {coldCSV, coldJSONL},
		"cached warm": {warmCSV, warmJSONL},
		"http":        {httpCSV, httpJSONL},
	} {
		if got[0] != localCSV {
			t.Fatalf("%s grid.csv differs from local", name)
		}
		if got[1] != localJSONL {
			t.Fatalf("%s grid.jsonl differs from local", name)
		}
	}
	if !strings.Contains(coldOut, "cache: 0 hits") {
		t.Fatalf("cold run not reported as all misses:\n%s", coldOut)
	}
	if !strings.Contains(warmOut, "0 misses") || !strings.Contains(warmOut, "hits") {
		t.Fatalf("warm run not served fully from the store:\n%s", warmOut)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "nope"}, &sb); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-exp", "grid", "-scale", "small", "-backend", "bogus"}, &sb); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
