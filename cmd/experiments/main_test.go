package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllSmall(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-exp", "all", "-scale", "small", "-seeds", "1", "-csv", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table I", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
		"Table II", "Figure 9", "Theorem 1", "Theorem 2", "consistent",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	for _, f := range []string{"fig5.csv", "fig6.csv", "fig7.csv", "fig8.csv", "fig9.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("CSV %s missing: %v", f, err)
		}
		if !strings.HasPrefix(string(data), "tau,") {
			t.Fatalf("CSV %s malformed", f)
		}
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "theorem1", "theorem2"} {
		var sb strings.Builder
		if err := run([]string{"-exp", exp, "-scale", "small"}, &sb); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
	// A single experiment must not run the others.
	var sb strings.Builder
	if err := run([]string{"-exp", "theorem1", "-scale", "small"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Table I") {
		t.Fatal("theorem1 run produced Table I")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "nope"}, &sb); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
