package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/schedule"
	"repro/internal/tree"
)

// matricesConfig carries the -exp matrices flag values: the corpus
// selection plus the grid backend options it shares with -exp grid.
type matricesConfig struct {
	grid      gridConfig
	corpus    string
	corpusDir string
}

// pipelineSource adapts a corpus.Pipeline to schedule.InstanceSource,
// counting provenance so the report can say how many matrices came from a
// mirrored file versus the generator fallback.
type pipelineSource struct {
	p         *corpus.Pipeline
	fromFile  map[string]bool
	instances int
}

func (s *pipelineSource) NextInstance() (schedule.Instance, bool, error) {
	inst, ok, err := s.p.Next()
	if err != nil || !ok {
		return schedule.Instance{}, false, err
	}
	if inst.Source == "file" {
		s.fromFile[inst.Matrix] = true
	}
	s.instances++
	return schedule.Instance{Name: inst.Name, Tree: inst.Tree}, true, nil
}

// matricesOrderBy is the MinMemory solver whose traversal seeds the policy
// sweep and whose certified memory ranks the orderings in the report.
const matricesOrderBy = "minmem"

// runMatrices streams the real-matrix corpus through the ordering ×
// amalgamation pipeline and evaluates the full (instance × algorithm ×
// budget) grid on the selected backend, overlapping tree construction with
// evaluation. Rows stream to w as they complete; with csvDir set they are
// also exported as matrices.csv and matrices.jsonl (Seconds zeroed under
// -notime, making the exports byte-identical across backends). The run
// ends with the winner-per-family report: for each matrix family, the
// ordering with the lowest geometric-mean optimal peak memory.
func runMatrices(w io.Writer, cfg matricesConfig) error {
	var entries []corpus.Entry
	switch cfg.corpus {
	case "smoke":
		entries = corpus.SmokeManifest()
	case "default":
		entries = corpus.DefaultManifest()
	default:
		return fmt.Errorf("unknown corpus %q (want smoke or default)", cfg.corpus)
	}
	var algNames []string
	for _, n := range strings.Split(cfg.grid.algos, ",") {
		if n = strings.TrimSpace(n); n != "" {
			algNames = append(algNames, n)
		}
	}
	pipe, err := corpus.NewPipeline(entries, corpus.PipelineOptions{
		Dir:     cfg.corpusDir,
		Workers: cfg.grid.workers,
	})
	if err != nil {
		return err
	}
	defer pipe.Close()
	src := &pipelineSource{p: pipe, fromFile: map[string]bool{}}
	memories := func(t *tree.Tree, out schedule.Outcome) ([]int64, error) {
		lo := t.MaxMemReq()
		if mid := (lo + out.Memory) / 2; mid != lo {
			return []int64{lo, mid}, nil
		}
		return []int64{lo}, nil
	}
	jobs, err := schedule.GridSource(src, algNames, matricesOrderBy, schedule.EvictionPolicyNames(), memories)
	if err != nil {
		return err
	}
	backend, cleanup, err := newBackend(cfg.grid)
	if err != nil {
		return err
	}
	defer cleanup()

	fmt.Fprintf(w, "Matrices — corpus %s (%d matrices) × {%s} orderings × relax {1,4} on backend %s, streamed as built\n",
		cfg.corpus, len(entries), strings.Join(corpus.OrderingNames(), ","), backend.Capabilities().Name)
	fmt.Fprintf(w, "  %-28s %-12s %10s %12s %12s\n", "instance", "algorithm", "budget", "memory", "io")

	families := corpus.Families(entries)
	report := newFamilyReport(families)
	sinks := []schedule.RowSink{
		schedule.SinkFunc(func(r schedule.Row) error {
			fmt.Fprintf(w, "  %-28s %-12s %10d %12d %12d\n", r.Instance, r.Algorithm, r.Budget, r.Memory, r.IO)
			report.row(r)
			return nil
		}),
	}
	var prog *streamProgress
	if cfg.grid.progress {
		prog = &streamProgress{w: os.Stderr, start: time.Now()}
		sinks = append(sinks, schedule.SinkFunc(func(schedule.Row) error { prog.row(); return nil }))
	}
	var csvSink *schedule.CSVSink
	if cfg.grid.csvDir != "" {
		if err := os.MkdirAll(cfg.grid.csvDir, 0o755); err != nil {
			return err
		}
		cf, err := os.Create(filepath.Join(cfg.grid.csvDir, "matrices.csv"))
		if err != nil {
			return err
		}
		defer cf.Close()
		jf, err := os.Create(filepath.Join(cfg.grid.csvDir, "matrices.jsonl"))
		if err != nil {
			return err
		}
		defer jf.Close()
		csvSink = schedule.NewCSVSink(cf)
		export := schedule.MultiSink(csvSink, schedule.NewJSONLSink(jf))
		noTime := cfg.grid.noTime
		sinks = append(sinks, schedule.SinkFunc(func(r schedule.Row) error {
			if noTime {
				r.Seconds = 0
			}
			return export.Push(r)
		}))
	}
	rows := 0
	sinks = append(sinks, schedule.SinkFunc(func(schedule.Row) error { rows++; return nil }))

	if err := backend.Stream(context.Background(), jobs, schedule.MultiSink(sinks...),
		schedule.StreamOptions{Workers: cfg.grid.workers}); err != nil {
		return err
	}
	if prog != nil {
		prog.finish()
	}
	if csvSink != nil {
		if err := csvSink.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "  %d rows (%d instances)\n", rows, src.instances)
	mirrored := len(src.fromFile)
	fmt.Fprintf(w, "  corpus sources: %d mirrored file(s), %d generator fallback(s)\n", mirrored, len(entries)-mirrored)
	if s, ok := backend.(*schedule.Shard); ok {
		reportShard(w, s)
	}
	if c, ok := backend.(*schedule.Cached); ok {
		hits, misses := c.Counters()
		fmt.Fprintf(w, "  cache: %d hits, %d misses\n", hits, misses)
	}
	fmt.Fprintln(w)
	report.print(w)
	return cleanup()
}

// familyReport accumulates the orderBy solver's certified peak memory per
// (family, ordering) and ranks orderings by geometric mean within each
// family — the experiment's headline: which fill-reducing ordering wins on
// which kind of matrix.
type familyReport struct {
	families map[string]corpus.Family
	// logSum and count index by family then ordering.
	logSum map[corpus.Family]map[string]float64
	count  map[corpus.Family]map[string]int
}

func newFamilyReport(families map[string]corpus.Family) *familyReport {
	return &familyReport{
		families: families,
		logSum:   map[corpus.Family]map[string]float64{},
		count:    map[corpus.Family]map[string]int{},
	}
}

// row folds one grid row into the aggregate. Only the orderBy solver's
// MinMemory rows count: one certified optimum per instance.
func (fr *familyReport) row(r schedule.Row) {
	if r.Algorithm != matricesOrderBy || r.Kind != schedule.KindMinMemory.String() {
		return
	}
	// Instance names are "matrix/ordering/rN".
	parts := strings.Split(r.Instance, "/")
	if len(parts) != 3 {
		return
	}
	fam, ok := fr.families[parts[0]]
	if !ok || r.Memory < 1 {
		return
	}
	if fr.logSum[fam] == nil {
		fr.logSum[fam] = map[string]float64{}
		fr.count[fam] = map[string]int{}
	}
	fr.logSum[fam][parts[1]] += math.Log(float64(r.Memory))
	fr.count[fam][parts[1]]++
}

// print writes the winner table: per family, every ordering's
// geometric-mean optimal peak memory, best first.
func (fr *familyReport) print(w io.Writer) {
	var fams []string
	for f := range fr.logSum {
		fams = append(fams, string(f))
	}
	sort.Strings(fams)
	if len(fams) == 0 {
		fmt.Fprintf(w, "Winning ordering per family: no %s rows collected\n", matricesOrderBy)
		return
	}
	fmt.Fprintf(w, "Winning ordering per family (geometric-mean optimal peak memory, %s solver)\n", matricesOrderBy)
	for _, f := range fams {
		fam := corpus.Family(f)
		type score struct {
			ordering string
			geomean  float64
		}
		var scores []score
		for ord, s := range fr.logSum[fam] {
			scores = append(scores, score{ord, math.Exp(s / float64(fr.count[fam][ord]))})
		}
		sort.Slice(scores, func(i, j int) bool {
			if scores[i].geomean != scores[j].geomean {
				return scores[i].geomean < scores[j].geomean
			}
			return scores[i].ordering < scores[j].ordering
		})
		fmt.Fprintf(w, "  %-9s winner %-8s", f, scores[0].ordering)
		for _, s := range scores {
			fmt.Fprintf(w, "  %s=%.0f", s.ordering, s.geomean)
		}
		fmt.Fprintln(w)
	}
}

// streamProgress reports rows/sec on w for streaming grids whose total is
// unknown up front, updated in place at most a few times a second.
type streamProgress struct {
	w     io.Writer
	done  int
	start time.Time
	last  time.Time
}

func (p *streamProgress) row() {
	p.done++
	now := time.Now()
	if now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	rate := float64(p.done) / (now.Sub(p.start).Seconds() + 1e-9)
	fmt.Fprintf(p.w, "\rmatrices: %d rows (%.0f rows/s)", p.done, rate)
}

func (p *streamProgress) finish() {
	if p.done > 0 {
		fmt.Fprintf(p.w, "\rmatrices: %d rows\n", p.done)
	}
}
