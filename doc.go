// Package repro is a from-scratch Go reproduction of Jacquelin, Marchal,
// Robert and Uçar, "On optimal tree traversals for sparse matrix
// factorization" (IPDPS 2011): memory-optimal traversals of tree-shaped
// workflows (MinMemory) and I/O-minimizing out-of-core traversals (MinIO),
// together with the complete multifrontal substrate needed to regenerate
// the paper's experimental evaluation.
//
// The library lives under internal/ (see DESIGN.md for the map); cmd/
// contains the executables and examples/ runnable walkthroughs. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's Section VI.
package repro
