// Package repro is a from-scratch Go reproduction of Jacquelin, Marchal,
// Robert and Uçar, "On optimal tree traversals for sparse matrix
// factorization" (IPDPS 2011): memory-optimal traversals of tree-shaped
// workflows (MinMemory) and I/O-minimizing out-of-core traversals (MinIO),
// together with the complete multifrontal substrate needed to regenerate
// the paper's experimental evaluation.
//
// The library lives under internal/ — see README.md for the package map
// and DESIGN.md for the architecture:
//
//   - internal/tree, internal/pebble: the paper's workflow model and its
//     pebble-game connections.
//   - internal/traversal, internal/minio: the MinMemory solvers and the
//     MinIO policies and oracles.
//   - internal/schedule: the algorithm registry, the shared traversal
//     simulator, and the batch/streaming evaluation engine (Local, Cached,
//     Shard backends; see that package's doc for the Backend contract,
//     ordering guarantees, residency bounds and retry behavior).
//   - internal/service: the HTTP/JSON evaluation service and its client,
//     turning any machine running cmd/scheduled into an evaluation server.
//   - internal/sparse, internal/ordering, internal/symbolic,
//     internal/factor, internal/dataset: the sparse-matrix substrate that
//     produces the assembly trees the experiments run on.
//
// cmd/ contains the executables (experiments, minmem, minio, treegen,
// scheduled) and examples/ runnable walkthroughs. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// Section VI; `experiments -exp grid -backend url1,url2` runs the same
// grids sharded across evaluation servers with adaptive scheduling, child
// quarantine/readmission and cross-shard cache warming.
package repro
