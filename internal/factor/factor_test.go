package factor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/traversal"
	"repro/internal/tree"
)

func laplacianOf(t *testing.T, pattern *sparse.Matrix) *SPD {
	t.Helper()
	a, err := Laplacian(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFactorSolveGrid(t *testing.T) {
	g, err := sparse.Grid2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := laplacianOf(t, g)
	chol, st, err := Multifrontal(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Fronts != 64 || st.FactorNNZ < 64 {
		t.Fatalf("stats = %+v", st)
	}
	b := make([]float64, 64)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x, err := chol.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if res := Residual(a, x, b); res > 1e-9 {
		t.Fatalf("residual %g too large", res)
	}
}

// The headline validation: the measured peak of live dense entries equals
// the paper-model prediction exactly, for several orderings and traversals.
func TestMeasuredPeakEqualsModel(t *testing.T) {
	g, err := sparse.Grid2D(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	md, err := ordering.MinimumDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	pmd, err := g.Permute(md)
	if err != nil {
		t.Fatal(err)
	}
	for name, pattern := range map[string]*sparse.Matrix{"natural": g, "md": pmd} {
		a := laplacianOf(t, pattern)
		_, st, err := Multifrontal(a, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.PeakLive != st.ModelPeak {
			t.Fatalf("%s: measured peak %d != model %d", name, st.PeakLive, st.ModelPeak)
		}
	}
}

// An optimal traversal from the model really does reduce the measured
// factorization memory (or at least never increases it) compared to an
// arbitrary postorder.
func TestOptimalTraversalHelpsRealFactorization(t *testing.T) {
	g, err := sparse.Grid3D(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := ordering.NestedDissection(g, ordering.NestedDissectionOptions{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	a := laplacianOf(t, pg)
	// Default (etree postorder).
	_, stPost, err := Multifrontal(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Model-optimal traversal: build the weighted etree, solve MinMemory,
	// feed the bottom-up order back into the numeric code.
	parent, err := symbolic.EliminationTree(a.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := symbolic.ColumnCounts(a.Pattern, parent)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Pattern.N()
	f := make([]int64, n)
	nn := make([]int64, n)
	for j := 0; j < n; j++ {
		mu := counts[j]
		f[j] = (mu - 1) * (mu - 1)
		nn[j] = mu*mu - (mu-1)*(mu-1)
	}
	for j, p := range parent {
		if p == symbolic.NoParent {
			f[j] = 0
		}
	}
	wt, err := tree.New(parent, f, nn)
	if err != nil {
		t.Fatal(err)
	}
	opt := traversal.MinMem(wt)
	order := tree.ReverseOrder(opt.Order) // bottom-up for the numeric sweep
	_, stOpt, err := Multifrontal(a, Options{Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if stOpt.PeakLive != opt.Memory {
		t.Fatalf("optimal traversal measured %d, model promised %d", stOpt.PeakLive, opt.Memory)
	}
	if stOpt.PeakLive > stPost.PeakLive {
		t.Fatalf("optimal traversal used more memory (%d) than postorder (%d)", stOpt.PeakLive, stPost.PeakLive)
	}
	t.Logf("postorder peak %d, optimal peak %d", stPost.PeakLive, stOpt.PeakLive)
}

func TestMultifrontalErrors(t *testing.T) {
	g, err := sparse.Grid2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := laplacianOf(t, g)
	// Invalid orders.
	if _, _, err := Multifrontal(a, Options{Order: []int{0, 1}}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, _, err := Multifrontal(a, Options{Order: []int{0, 0, 1, 2, 3, 4, 5, 6, 7}}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	top := make([]int, 9)
	parent, _ := symbolic.EliminationTree(g)
	// Build a top-down order (root first): invalid for the bottom-up sweep.
	post := symbolic.EtreePostorder(parent)
	for i, v := range post {
		top[len(post)-1-i] = v
	}
	if _, _, err := Multifrontal(a, Options{Order: top}); err == nil {
		t.Fatal("top-down order accepted")
	}
	// Indefinite matrix: flip a diagonal sign.
	bad := &SPD{Pattern: a.Pattern, Values: append([]float64(nil), a.Values...)}
	base := 0
	for j := 0; j < bad.Pattern.N(); j++ {
		col := bad.Pattern.Col(j)
		for k, i := range col {
			if int(i) == j && j == 0 {
				bad.Values[base+k] = -5
			}
		}
		base += len(col)
	}
	if _, _, err := Multifrontal(bad, Options{}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestNewSPDValidation(t *testing.T) {
	g, err := sparse.Grid2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSPD(nil, nil); err == nil {
		t.Fatal("nil pattern accepted")
	}
	if _, err := NewSPD(g, []float64{1}); err == nil {
		t.Fatal("short values accepted")
	}
	vals := make([]float64, g.NNZ())
	if _, err := NewSPD(g, vals); err != nil {
		t.Fatal(err)
	}
	asym, err := sparse.New(2, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSPD(asym, make([]float64, asym.NNZ())); err == nil {
		t.Fatal("asymmetric pattern accepted")
	}
	if _, err := Laplacian(asym); err == nil {
		t.Fatal("asymmetric Laplacian accepted")
	}
}

func TestSolveErrors(t *testing.T) {
	g, err := sparse.Grid2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := laplacianOf(t, g)
	chol, _, err := Multifrontal(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chol.Solve([]float64{1, 2}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

// Property: on random SPD systems the factorization solves accurately and
// the measured peak always matches the model, across random traversals.
func TestQuickFactorizationAccuracyAndModel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(61))}
	prop := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw%40)
		rng := rand.New(rand.NewSource(seed))
		raw, err := sparse.RandomSymmetric(rng, n, 2)
		if err != nil {
			return false
		}
		a, err := Laplacian(raw.Symmetrize())
		if err != nil {
			return false
		}
		chol, st, err := Multifrontal(a, Options{})
		if err != nil {
			return false
		}
		if st.PeakLive != st.ModelPeak {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := chol.Solve(b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-8*math.Max(1, float64(n))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSPDAt(t *testing.T) {
	g, err := sparse.Grid2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := laplacianOf(t, g)
	if got := a.at(0, 0); got != 3 { // corner: degree 2 + 1
		t.Fatalf("at(0,0) = %g, want 3", got)
	}
	if got := a.at(1, 0); got != -1 {
		t.Fatalf("at(1,0) = %g, want -1", got)
	}
	if got := a.at(3, 0); got != 0 {
		t.Fatalf("at(3,0) = %g, want 0", got)
	}
}
