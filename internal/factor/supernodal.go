package factor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
)

// SupernodalOptions tunes the supernodal factorization.
type SupernodalOptions struct {
	// Order is the bottom-up traversal of the assembly tree to follow
	// (assembly-node indices, children before parents). Empty selects the
	// assembly-tree postorder.
	Order []int
}

// SupernodalStats extends Stats with supernode shape information.
type SupernodalStats struct {
	Stats
	// Supernodes is the number of fronts (assembly-tree nodes).
	Supernodes int
	// MaxFront is the largest frontal dimension η + µ − 1.
	MaxFront int
}

// SupernodalMultifrontal factors the SPD matrix with one dense front per
// assembly-tree node, using perfect amalgamation only (fundamental
// supernodes). Each front covers the η chained columns of its supernode
// plus the µ−1 rows below them — exactly the (η+µ−1)² dense matrix whose
// pieces the paper's weights n = η²+2η(µ−1) and f = (µ−1)² describe — so
// the measured peak of live dense entries again equals the model
// prediction on the weighted assembly tree, now with η > 1.
func SupernodalMultifrontal(a *SPD, opt SupernodalOptions) (*Cholesky, *SupernodalStats, error) {
	n := a.Pattern.N()
	parent, err := symbolic.EliminationTree(a.Pattern)
	if err != nil {
		return nil, nil, err
	}
	counts, err := symbolic.ColumnCounts(a.Pattern, parent)
	if err != nil {
		return nil, nil, err
	}
	asm, err := symbolic.Amalgamate(parent, counts, symbolic.AssemblyOptions{Relax: 0})
	if err != nil {
		return nil, nil, err
	}
	at := asm.Tree
	if len(asm.Nodes) > 0 && asm.Nodes[len(asm.Nodes)-1].Top == -1 {
		return nil, nil, fmt.Errorf("factor: supernodal factorization needs a connected matrix")
	}
	// Row structure of every supernode's top column (the below-supernode
	// rows shared, by the fundamental-supernode property, with every member
	// column).
	topStruct, err := columnStructs(a.Pattern, parent, counts)
	if err != nil {
		return nil, nil, err
	}
	order := opt.Order
	if len(order) == 0 {
		order = tree.ReverseOrder(at.TopDown())
	}
	if err := at.IsBottomUpOrder(order); err != nil {
		return nil, nil, err
	}
	valBase := make([]int, n+1)
	for j := 0; j < n; j++ {
		valBase[j+1] = valBase[j] + len(a.Pattern.Col(j))
	}
	chol := &Cholesky{n: n, colRow: make([][]int32, n), colVal: make([][]float64, n)}
	nodeCB := make([][]float64, at.Len())
	nodeCBIdx := make([][]int32, at.Len())
	var live, peak int64
	maxFront := 0
	var kidsBuf []int
	for _, node := range order {
		cols := asm.Columns[node]
		eta := len(cols)
		top := asm.Nodes[node].Top
		// Frontal index set: the η member columns (an ascending etree
		// chain) followed by the top column's below-diagonal structure.
		below := topStruct[top][1:] // struct(top) minus the pivot itself
		sz := eta + len(below)
		if sz > maxFront {
			maxFront = sz
		}
		idx := make([]int32, 0, sz)
		for _, c := range cols {
			idx = append(idx, int32(c))
		}
		idx = append(idx, below...)
		pos := make(map[int32]int, sz)
		for k, r := range idx {
			pos[r] = k
		}
		front := make([]float64, sz*sz)
		live += int64(sz * sz)
		if live > peak {
			peak = live
		}
		// Assemble original entries of the member columns (both triangles
		// of the symmetric front).
		for k, j := range cols {
			for e, ir := range a.Pattern.Col(j) {
				i := int(ir)
				if i < j {
					continue
				}
				fi, ok := pos[int32(i)]
				if !ok {
					return nil, nil, fmt.Errorf("factor: entry (%d,%d) outside front of supernode %d", i, j, node)
				}
				v := a.Values[valBase[j]+e]
				front[fi*sz+k] += v
				if fi != k {
					front[k*sz+fi] += v
				}
			}
		}
		// Extend-add children contribution blocks.
		kidsBuf = at.Children(node, kidsBuf[:0])
		for _, c := range kidsBuf {
			bidx := nodeCBIdx[c]
			block := nodeCB[c]
			m := len(bidx)
			for r := 0; r < m; r++ {
				fr, ok := pos[bidx[r]]
				if !ok {
					return nil, nil, fmt.Errorf("factor: child CB row %d outside front of supernode %d", bidx[r], node)
				}
				for q := 0; q < m; q++ {
					front[fr*sz+pos[bidx[q]]] += block[r*m+q]
				}
			}
			live -= int64(m * m)
			nodeCB[c], nodeCBIdx[c] = nil, nil
		}
		// Dense partial Cholesky: eliminate the η pivots.
		for k := 0; k < eta; k++ {
			d := front[k*sz+k]
			if d <= 0 {
				return nil, nil, fmt.Errorf("factor: non-positive pivot %g at column %d", d, cols[k])
			}
			l := math.Sqrt(d)
			front[k*sz+k] = l
			for r := k + 1; r < sz; r++ {
				front[r*sz+k] /= l
			}
			for c2 := k + 1; c2 < sz; c2++ {
				lck := front[c2*sz+k]
				if lck == 0 {
					continue
				}
				for r := c2; r < sz; r++ {
					front[r*sz+c2] -= front[r*sz+k] * lck
				}
			}
		}
		// Harvest the factor columns: column cols[k] has rows idx[k:] by the
		// fundamental-supernode property (counts decrease by one along the
		// chain); verify against the symbolic counts.
		for k, j := range cols {
			if int64(sz-k) != counts[j] {
				return nil, nil, fmt.Errorf("factor: supernode %d column %d has %d rows, counts say %d", node, j, sz-k, counts[j])
			}
			rows := make([]int32, sz-k)
			vals := make([]float64, sz-k)
			copy(rows, idx[k:])
			for r := k; r < sz; r++ {
				vals[r-k] = front[r*sz+k]
			}
			chol.colRow[j] = rows
			chol.colVal[j] = vals
		}
		// Contribution block: the trailing (µ−1)² Schur complement.
		if len(below) > 0 && at.Parent(node) != tree.NoParent {
			m := len(below)
			block := make([]float64, m*m)
			for r := 0; r < m; r++ {
				for q := 0; q <= r; q++ {
					v := front[(eta+r)*sz+(eta+q)]
					block[r*m+q] = v
					block[q*m+r] = v
				}
			}
			nodeCB[node] = block
			nodeCBIdx[node] = below
			live += int64(m * m)
		}
		live -= int64(sz * sz)
		if live > peak {
			peak = live
		}
	}
	if live != 0 {
		return nil, nil, fmt.Errorf("factor: %d dense entries leaked", live)
	}
	model, err := peakBottomUp(at, order)
	if err != nil {
		return nil, nil, err
	}
	st := &SupernodalStats{
		Stats: Stats{
			PeakLive:  peak,
			FactorNNZ: symbolic.FactorNNZ(counts),
			Fronts:    at.Len(),
			ModelPeak: model,
		},
		Supernodes: at.Len(),
		MaxFront:   maxFront,
	}
	return chol, st, nil
}

// columnStructs returns the sorted row structure of every L column
// (diagonal first), via row-subtree traversals.
func columnStructs(pattern *sparse.Matrix, parent []int, counts []int64) ([][]int32, error) {
	n := pattern.N()
	structs := make([][]int32, n)
	for j := 0; j < n; j++ {
		structs[j] = append(structs[j], int32(j))
	}
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = i
		for _, jr := range pattern.Col(i) {
			j := int(jr)
			if j >= i {
				continue
			}
			for k := j; k != symbolic.NoParent && mark[k] != i; k = parent[k] {
				structs[k] = append(structs[k], int32(i))
				mark[k] = i
			}
		}
	}
	for j := 0; j < n; j++ {
		s := structs[j]
		sort.Slice(s[1:], func(a, b int) bool { return s[1+a] < s[1+b] })
		if int64(len(s)) != counts[j] {
			return nil, fmt.Errorf("factor: structure/count mismatch at column %d", j)
		}
	}
	return structs, nil
}
