// Package factor implements a numeric multifrontal Cholesky factorization —
// the computation whose memory behaviour the paper models. Each elimination
// tree node assembles the contribution blocks of its children with the
// original matrix entries into a dense frontal matrix, eliminates its pivot,
// and passes the Schur complement (contribution block) to its parent.
//
// The factorization instruments its memory use: the peak number of live
// dense entries (frontal matrix plus resident contribution blocks) is
// reported and — by construction — equals the paper's model exactly, with
// per-column weights f_j = (µ_j−1)² and n_j = µ_j² − (µ_j−1)². The tests
// verify this equality against traversal.PeakBottomUp, closing the loop
// between the abstract tree model and a real factorization.
package factor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
)

// SPD couples a symmetric pattern with numeric values: Values[k] is the
// value of the entry at pattern position k (column-major, aligned with
// Matrix.Col slices).
type SPD struct {
	Pattern *sparse.Matrix
	Values  []float64
}

// NewSPD validates dimensions and symmetry of values.
func NewSPD(pattern *sparse.Matrix, values []float64) (*SPD, error) {
	if pattern == nil {
		return nil, fmt.Errorf("factor: nil pattern")
	}
	if !pattern.IsSymmetric() || !pattern.HasFullDiagonal() {
		return nil, fmt.Errorf("factor: pattern must be symmetric with full diagonal")
	}
	if len(values) != pattern.NNZ() {
		return nil, fmt.Errorf("factor: %d values for %d entries", len(values), pattern.NNZ())
	}
	return &SPD{Pattern: pattern, Values: values}, nil
}

// Laplacian builds a symmetric positive definite matrix on the given
// pattern: off-diagonal entries are −1 and each diagonal entry is the
// off-diagonal count plus one (a shifted graph Laplacian, strictly
// diagonally dominant and hence SPD).
func Laplacian(pattern *sparse.Matrix) (*SPD, error) {
	if !pattern.IsSymmetric() || !pattern.HasFullDiagonal() {
		return nil, fmt.Errorf("factor: pattern must be symmetric with full diagonal")
	}
	values := make([]float64, 0, pattern.NNZ())
	for j := 0; j < pattern.N(); j++ {
		col := pattern.Col(j)
		deg := float64(len(col) - 1)
		for _, i := range col {
			if int(i) == j {
				values = append(values, deg+1)
			} else {
				values = append(values, -1)
			}
		}
	}
	return &SPD{Pattern: pattern, Values: values}, nil
}

// at returns A[i][j] if present (0 otherwise).
func (a *SPD) at(i, j int) float64 {
	col := a.Pattern.Col(j)
	k := sort.Search(len(col), func(x int) bool { return col[x] >= int32(i) })
	if k < len(col) && col[k] == int32(i) {
		base := 0
		for c := 0; c < j; c++ {
			base += len(a.Pattern.Col(c))
		}
		return a.Values[base+k]
	}
	return 0
}

// Cholesky is the computed sparse factor L (A = LLᵀ), stored column-wise
// with the diagonal first in each column.
type Cholesky struct {
	n      int
	colRow [][]int32   // row indices per column, sorted, diagonal first
	colVal [][]float64 // matching values
	// Perm is the fill-reducing permutation used (new-to-old); the factor is
	// of PAPᵀ.
	Perm []int
}

// Stats reports the instrumentation of one factorization run.
type Stats struct {
	// PeakLive is the maximum number of live dense entries: current frontal
	// matrix plus all resident contribution blocks.
	PeakLive int64
	// FactorNNZ is Σ column counts of L.
	FactorNNZ int64
	// Fronts is the number of frontal matrices processed (= n).
	Fronts int
	// ModelPeak is the paper-model prediction for the traversal used:
	// PeakBottomUp on the weighted elimination tree. It always equals
	// PeakLive.
	ModelPeak int64
}

// Options tunes the factorization.
type Options struct {
	// Order is the bottom-up traversal of the elimination tree to follow
	// (children before parents). Empty selects the etree postorder.
	Order []int
}

// Multifrontal factors the (already permuted) SPD matrix column by column
// along its elimination tree and reports memory instrumentation.
func Multifrontal(a *SPD, opt Options) (*Cholesky, *Stats, error) {
	n := a.Pattern.N()
	parent, err := symbolic.EliminationTree(a.Pattern)
	if err != nil {
		return nil, nil, err
	}
	counts, err := symbolic.ColumnCounts(a.Pattern, parent)
	if err != nil {
		return nil, nil, err
	}
	// Row structure of every L column via row-subtree traversals.
	structs, err := columnStructs(a.Pattern, parent, counts)
	if err != nil {
		return nil, nil, err
	}
	order := opt.Order
	if len(order) == 0 {
		order = symbolic.EtreePostorder(parent)
	}
	if err := validBottomUp(parent, order, n); err != nil {
		return nil, nil, err
	}
	// Numeric sweep.
	chol := &Cholesky{n: n, colRow: make([][]int32, n), colVal: make([][]float64, n)}
	cb := make([][]float64, n)  // contribution block of each processed column
	cbIdx := make([][]int32, n) // its index set (struct minus the pivot)
	kids := make([][]int32, n)
	for j, p := range parent {
		if p != symbolic.NoParent {
			kids[p] = append(kids[p], int32(j))
		}
	}
	var live, peak int64
	valBase := make([]int, n+1)
	for j := 0; j < n; j++ {
		valBase[j+1] = valBase[j] + len(a.Pattern.Col(j))
	}
	for _, j := range order {
		s := structs[j]
		sz := len(s)
		front := make([]float64, sz*sz)
		live += int64(sz * sz)
		if live > peak {
			peak = live
		}
		pos := make(map[int32]int, sz)
		for k, r := range s {
			pos[r] = k
		}
		// Assemble original entries of column j (lower part).
		for k, ir := range a.Pattern.Col(j) {
			i := int(ir)
			if i < j {
				continue
			}
			fi := pos[int32(i)]
			front[fi*sz+0] = a.Values[valBase[j]+k]
			if i != j {
				front[0*sz+fi] = a.Values[valBase[j]+k]
			}
		}
		// Extend-add the children contribution blocks, then free them.
		for _, c := range kids[j] {
			idx := cbIdx[c]
			block := cb[c]
			m := len(idx)
			for r := 0; r < m; r++ {
				fr := pos[idx[r]]
				for q := 0; q < m; q++ {
					front[fr*sz+pos[idx[q]]] += block[r*m+q]
				}
			}
			live -= int64(m * m)
			cb[c], cbIdx[c] = nil, nil
		}
		// Eliminate the pivot.
		d := front[0]
		if d <= 0 {
			return nil, nil, fmt.Errorf("factor: non-positive pivot %g at column %d", d, j)
		}
		ljj := math.Sqrt(d)
		colv := make([]float64, sz)
		colv[0] = ljj
		for r := 1; r < sz; r++ {
			colv[r] = front[r*sz] / ljj
		}
		chol.colRow[j] = s
		chol.colVal[j] = colv
		// Schur complement → contribution block for the parent.
		if sz > 1 && parent[j] != symbolic.NoParent {
			m := sz - 1
			block := make([]float64, m*m)
			for r := 0; r < m; r++ {
				for q := 0; q < m; q++ {
					block[r*m+q] = front[(r+1)*sz+(q+1)] - colv[r+1]*colv[q+1]
				}
			}
			cb[j] = block
			cbIdx[j] = s[1:]
			live += int64(m * m)
		}
		live -= int64(sz * sz)
		if live > peak {
			peak = live
		}
	}
	if live != 0 {
		return nil, nil, fmt.Errorf("factor: %d dense entries leaked", live)
	}
	st := &Stats{PeakLive: peak, FactorNNZ: symbolic.FactorNNZ(counts), Fronts: n}
	st.ModelPeak, err = modelPeak(parent, counts, order)
	if err != nil {
		return nil, nil, err
	}
	return chol, st, nil
}

// modelPeak evaluates the paper's model on the weighted elimination tree for
// the given bottom-up traversal: f_j = (µ_j−1)², n_j = µ_j² − (µ_j−1)².
func modelPeak(parent []int, counts []int64, order []int) (int64, error) {
	n := len(parent)
	f := make([]int64, n)
	nn := make([]int64, n)
	for j := 0; j < n; j++ {
		mu := counts[j]
		f[j] = (mu - 1) * (mu - 1)
		nn[j] = mu*mu - (mu-1)*(mu-1)
	}
	// Root contribution blocks leave the system: zero them like the
	// factorization does (no CB is produced at roots).
	adjParent := make([]int, n)
	roots := 0
	for j, p := range parent {
		adjParent[j] = p
		if p == symbolic.NoParent {
			roots++
			f[j] = 0
		}
	}
	if roots != 1 {
		return 0, fmt.Errorf("factor: model peak needs a single etree root, got %d", roots)
	}
	t, err := tree.New(adjParent, f, nn)
	if err != nil {
		return 0, err
	}
	return peakBottomUp(t, order)
}

// peakBottomUp mirrors traversal.PeakBottomUp without importing the package
// (factor sits below traversal in the dependency order used by the tests).
func peakBottomUp(t *tree.Tree, order []int) (int64, error) {
	if err := t.IsBottomUpOrder(order); err != nil {
		return 0, err
	}
	var resident, peak int64
	for _, i := range order {
		need := resident + t.F(i) + t.N(i)
		if need > peak {
			peak = need
		}
		resident += t.F(i) - t.ChildFileSum(i)
	}
	return peak, nil
}

func validBottomUp(parent []int, order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("factor: order has %d entries, want %d", len(order), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for step, v := range order {
		if v < 0 || v >= n || pos[v] != -1 {
			return fmt.Errorf("factor: invalid order entry %d", v)
		}
		pos[v] = step
	}
	for j, p := range parent {
		if p != symbolic.NoParent && pos[j] > pos[p] {
			return fmt.Errorf("factor: column %d ordered after its parent %d", j, p)
		}
	}
	return nil
}

// Solve computes x with (PAPᵀ)x = b via forward and backward substitution
// on the factor. b has length n and is not modified.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("factor: rhs has %d entries, want %d", len(b), c.n)
	}
	y := make([]float64, c.n)
	copy(y, b)
	// Forward: Ly = b, column-oriented.
	for j := 0; j < c.n; j++ {
		rows, vals := c.colRow[j], c.colVal[j]
		if len(rows) == 0 {
			return nil, fmt.Errorf("factor: column %d missing", j)
		}
		y[j] /= vals[0]
		for k := 1; k < len(rows); k++ {
			y[rows[k]] -= vals[k] * y[j]
		}
	}
	// Backward: Lᵀx = y, row-oriented over columns in reverse.
	x := y
	for j := c.n - 1; j >= 0; j-- {
		rows, vals := c.colRow[j], c.colVal[j]
		s := x[j]
		for k := 1; k < len(rows); k++ {
			s -= vals[k] * x[rows[k]]
		}
		x[j] = s / vals[0]
	}
	return x, nil
}

// Residual returns ‖Ax − b‖∞ for the (permuted) system.
func Residual(a *SPD, x, b []float64) float64 {
	n := a.Pattern.N()
	r := make([]float64, n)
	copy(r, b)
	base := 0
	for j := 0; j < n; j++ {
		col := a.Pattern.Col(j)
		for k, ir := range col {
			r[ir] -= a.Values[base+k] * x[j]
		}
		base += len(col)
	}
	worst := 0.0
	for _, v := range r {
		if math.Abs(v) > worst {
			worst = math.Abs(v)
		}
	}
	return worst
}
