package factor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/traversal"
	"repro/internal/tree"
)

func TestSupernodalSolvesGrid(t *testing.T) {
	g, err := sparse.Grid2D(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	md, err := ordering.MinimumDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := g.Permute(md)
	if err != nil {
		t.Fatal(err)
	}
	a := laplacianOf(t, pg)
	chol, st, err := SupernodalMultifrontal(a, SupernodalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Supernodes >= pg.N() {
		t.Fatalf("no amalgamation happened: %d supernodes for n=%d", st.Supernodes, pg.N())
	}
	if st.MaxFront < 2 {
		t.Fatalf("implausible max front %d", st.MaxFront)
	}
	b := make([]float64, pg.N())
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x, err := chol.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if res := Residual(a, x, b); res > 1e-9 {
		t.Fatalf("residual %g too large", res)
	}
}

// Supernodal and column-wise factorizations must produce the same factor.
func TestSupernodalMatchesColumnwise(t *testing.T) {
	g, err := sparse.Grid2D(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := laplacianOf(t, g)
	colChol, _, err := Multifrontal(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	supChol, _, err := SupernodalMultifrontal(a, SupernodalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < g.N(); j++ {
		cr, sr := colChol.colRow[j], supChol.colRow[j]
		if len(cr) != len(sr) {
			t.Fatalf("column %d: %d vs %d rows", j, len(cr), len(sr))
		}
		for k := range cr {
			if cr[k] != sr[k] {
				t.Fatalf("column %d row %d: index %d vs %d", j, k, cr[k], sr[k])
			}
			if math.Abs(colChol.colVal[j][k]-supChol.colVal[j][k]) > 1e-10 {
				t.Fatalf("column %d row %d: value %g vs %g", j, k,
					colChol.colVal[j][k], supChol.colVal[j][k])
			}
		}
	}
}

// The measured peak equals the model on the weighted assembly tree — now
// with supernodes of η > 1 — for the default and the MinMem traversals.
func TestSupernodalPeakEqualsAssemblyModel(t *testing.T) {
	g, err := sparse.Grid3D(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := ordering.NestedDissection(g, ordering.NestedDissectionOptions{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := g.Permute(nd)
	if err != nil {
		t.Fatal(err)
	}
	a := laplacianOf(t, pg)
	// Default postorder traversal.
	_, st, err := SupernodalMultifrontal(a, SupernodalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakLive != st.ModelPeak {
		t.Fatalf("default: measured %d != model %d", st.PeakLive, st.ModelPeak)
	}
	// MinMem-optimal traversal of the assembly tree.
	asm, err := symbolic.AssemblyTree(pg, symbolic.AssemblyOptions{Relax: 0})
	if err != nil {
		t.Fatal(err)
	}
	opt := traversal.MinMem(asm.Tree)
	order := tree.ReverseOrder(opt.Order)
	_, st2, err := SupernodalMultifrontal(a, SupernodalOptions{Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PeakLive != st2.ModelPeak {
		t.Fatalf("minmem: measured %d != model %d", st2.PeakLive, st2.ModelPeak)
	}
	if st2.PeakLive != opt.Memory {
		t.Fatalf("minmem: measured %d != promised optimum %d", st2.PeakLive, opt.Memory)
	}
	if st2.PeakLive > st.PeakLive {
		t.Fatalf("optimal traversal used more memory (%d) than postorder (%d)", st2.PeakLive, st.PeakLive)
	}
	t.Logf("supernodal peaks: postorder %d, minmem %d (supernodes %d, max front %d)",
		st.PeakLive, st2.PeakLive, st.Supernodes, st.MaxFront)
}

func TestSupernodalErrors(t *testing.T) {
	// Disconnected matrix: rejected (needs a single etree root).
	m, err := sparse.New(2, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Laplacian(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SupernodalMultifrontal(a, SupernodalOptions{}); err == nil {
		t.Fatal("disconnected matrix accepted")
	}
	// Bad order.
	g, err := sparse.Grid2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	ga := laplacianOf(t, g)
	if _, _, err := SupernodalMultifrontal(ga, SupernodalOptions{Order: []int{0}}); err == nil {
		t.Fatal("short order accepted")
	}
	// Indefinite.
	bad := &SPD{Pattern: ga.Pattern, Values: append([]float64(nil), ga.Values...)}
	bad.Values[0] = -1 // first stored entry of column 0 is the diagonal? ensure indefiniteness
	for k := range bad.Values {
		bad.Values[k] = -math.Abs(bad.Values[k])
	}
	if _, _, err := SupernodalMultifrontal(bad, SupernodalOptions{}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

// Property: supernodal factorization is accurate and model-exact on random
// connected SPD systems.
func TestQuickSupernodalAccuracy(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(67))}
	prop := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw%40)
		rng := rand.New(rand.NewSource(seed))
		raw, err := sparse.RandomSymmetric(rng, n, 2)
		if err != nil {
			return false
		}
		a, err := Laplacian(raw.Symmetrize())
		if err != nil {
			return false
		}
		chol, st, err := SupernodalMultifrontal(a, SupernodalOptions{})
		if err != nil {
			return false
		}
		if st.PeakLive != st.ModelPeak {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := chol.Solve(b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-8*math.Max(1, float64(n))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
