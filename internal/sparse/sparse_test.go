package sparse

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDedupAndSort(t *testing.T) {
	m, err := New(3, [][]int{{2, 0, 0, 1}, {1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5 (dedup failed)", m.NNZ())
	}
	if got := m.Col(0); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Fatalf("Col(0) = %v", got)
	}
	if !m.Has(2, 2) || m.Has(0, 2) {
		t.Fatal("Has broken")
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(2, [][]int{{0}}); err == nil {
		t.Fatal("short cols accepted")
	}
	if _, err := New(2, [][]int{{0}, {5}}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := RandomSymmetric(rng, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	tt := m.Transpose().Transpose()
	if !reflect.DeepEqual(tt.colPtr, m.colPtr) || !reflect.DeepEqual(tt.rowIdx, m.rowIdx) {
		t.Fatal("transpose is not an involution")
	}
}

func TestSymmetrize(t *testing.T) {
	// Asymmetric pattern.
	m, err := New(3, [][]int{{0}, {0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Symmetrize()
	if !s.IsSymmetric() {
		t.Fatal("Symmetrize result not symmetric")
	}
	if !s.HasFullDiagonal() {
		t.Fatal("Symmetrize result lacks diagonal")
	}
	if !s.Has(1, 0) || !s.Has(0, 1) {
		t.Fatal("Symmetrize lost mirrored entry")
	}
}

func TestGrid2D(t *testing.T) {
	g, err := Grid2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	if !g.IsSymmetric() || !g.HasFullDiagonal() {
		t.Fatal("grid must be symmetric with diagonal")
	}
	// Interior node has 5 entries (self + 4 neighbours): node (1,1) = 4.
	if got := len(g.Col(4)); got != 5 {
		t.Fatalf("interior column has %d entries, want 5", got)
	}
	// Corner has 3.
	if got := len(g.Col(0)); got != 3 {
		t.Fatalf("corner column has %d entries, want 3", got)
	}
	if _, err := Grid2D(0, 3); err == nil {
		t.Fatal("bad dims accepted")
	}
}

func TestGrid3D(t *testing.T) {
	g, err := Grid3D(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 27 {
		t.Fatalf("N = %d, want 27", g.N())
	}
	if !g.IsSymmetric() || !g.HasFullDiagonal() {
		t.Fatal("grid must be symmetric with diagonal")
	}
	// Center node 13 has 7 entries.
	if got := len(g.Col(13)); got != 7 {
		t.Fatalf("center column has %d entries, want 7", got)
	}
	if _, err := Grid3D(1, 0, 1); err == nil {
		t.Fatal("bad dims accepted")
	}
}

func TestRandomSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := RandomSymmetric(rng, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric() || !m.HasFullDiagonal() {
		t.Fatal("random symmetric matrix malformed")
	}
	if m.AverageDegree() < 3 {
		t.Fatalf("average degree %f too low", m.AverageDegree())
	}
	if _, err := RandomSymmetric(rng, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RandomSymmetric(rng, 5, -1); err == nil {
		t.Fatal("negative degree accepted")
	}
}

func TestBandMatrix(t *testing.T) {
	b, err := BandMatrix(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsSymmetric() || !b.HasFullDiagonal() {
		t.Fatal("band matrix malformed")
	}
	if b.Has(3, 0) {
		t.Fatal("entry outside band present")
	}
	if !b.Has(2, 0) {
		t.Fatal("entry inside band missing")
	}
	if _, err := BandMatrix(0, 1); err == nil {
		t.Fatal("bad n accepted")
	}
}

func TestPermute(t *testing.T) {
	g, err := Grid2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{3, 1, 2, 0}
	pg, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if !pg.IsSymmetric() || pg.NNZ() != g.NNZ() {
		t.Fatal("permutation broke pattern")
	}
	// (i,j) in PAPᵀ iff (perm[i], perm[j]) in A.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if pg.Has(i, j) != g.Has(perm[i], perm[j]) {
				t.Fatalf("Permute mismatch at (%d,%d)", i, j)
			}
		}
	}
	if _, err := g.Permute([]int{0, 1}); err == nil {
		t.Fatal("short perm accepted")
	}
	if _, err := g.Permute([]int{0, 0, 1, 2}); err == nil {
		t.Fatal("repeating perm accepted")
	}
	if _, err := g.Permute([]int{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range perm accepted")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := RandomSymmetric(rng, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.colPtr, m.colPtr) || !reflect.DeepEqual(back.rowIdx, m.rowIdx) {
		t.Fatal("MatrixMarket round trip mismatch")
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% lower triangle only
3 3 4
1 1 1.0
2 1 -2.0
3 2 0.5
3 3 7
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(0, 1) && !m.Has(1, 0) {
		t.Fatal("symmetric expansion missing")
	}
	if !m.Has(1, 0) || !m.Has(0, 1) {
		t.Fatal("both triangles expected")
	}
	if m.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", m.NNZ())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 0 0\n",
		"%%MatrixMarket matrix coordinate real hermitian\n2 2 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n", // non-square
		"%%MatrixMarket matrix coordinate pattern general\nx 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n", // missing entry
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n9 1\n", // out of range
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\nz 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n",
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Fatalf("ReadMatrixMarket(%q) succeeded, want error", c)
		}
	}
}

// Property: symmetrization is idempotent and always yields a symmetric
// pattern with full diagonal.
func TestQuickSymmetrizeIdempotent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%50)
		rng := rand.New(rand.NewSource(seed))
		cols := make([][]int, n)
		for j := range cols {
			deg := rng.Intn(4)
			for k := 0; k < deg; k++ {
				cols[j] = append(cols[j], rng.Intn(n))
			}
		}
		m, err := New(n, cols)
		if err != nil {
			return false
		}
		s := m.Symmetrize()
		if !s.IsSymmetric() || !s.HasFullDiagonal() {
			return false
		}
		s2 := s.Symmetrize()
		return s2.NNZ() == s.NNZ()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: MatrixMarket round trip on arbitrary random patterns.
func TestQuickMatrixMarketRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(6))}
	prop := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%30)
		rng := rand.New(rand.NewSource(seed))
		cols := make([][]int, n)
		for j := range cols {
			deg := rng.Intn(5)
			for k := 0; k < deg; k++ {
				cols[j] = append(cols[j], rng.Intn(n))
			}
		}
		m, err := New(n, cols)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := m.WriteMatrixMarket(&buf); err != nil {
			return false
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.colPtr, m.colPtr) && reflect.DeepEqual(back.rowIdx, m.rowIdx)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := ScaleFree(rng, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 300 {
		t.Fatalf("N = %d", m.N())
	}
	if !m.IsSymmetric() || !m.HasFullDiagonal() {
		t.Fatal("scale-free pattern malformed")
	}
	// Hub structure: the max degree should far exceed the mean.
	maxDeg, sumDeg := 0, 0
	for j := 0; j < m.N(); j++ {
		d := len(m.Col(j))
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sumDeg) / float64(m.N())
	if float64(maxDeg) < 3*mean {
		t.Fatalf("no hubs: max degree %d vs mean %.1f", maxDeg, mean)
	}
	// Connectivity: BFS from 0 reaches everything.
	seen := make([]bool, m.N())
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range m.Col(v) {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, int(w))
			}
		}
	}
	if count != m.N() {
		t.Fatalf("scale-free graph disconnected: reached %d of %d", count, m.N())
	}
	if _, err := ScaleFree(rng, 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ScaleFree(rng, 5, 0); err == nil {
		t.Fatal("epn=0 accepted")
	}
	// Determinism.
	a, _ := ScaleFree(rand.New(rand.NewSource(9)), 50, 2)
	b, _ := ScaleFree(rand.New(rand.NewSource(9)), 50, 2)
	if a.NNZ() != b.NNZ() {
		t.Fatal("scale-free generation not deterministic")
	}
}

func TestAverageDegree(t *testing.T) {
	g, err := Grid2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.AverageDegree(); got < 3 || got > 5 {
		t.Fatalf("grid average degree %f implausible", got)
	}
}
