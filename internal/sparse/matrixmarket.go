package sparse

import (
	"bufio"
	"fmt"
	"io"
	"slices"
)

// WriteMatrixMarket serializes the pattern in MatrixMarket coordinate
// format ("%%MatrixMarket matrix coordinate pattern general"), 1-based.
func (m *Matrix) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n%d %d %d\n", m.n, m.n, m.NNZ()); err != nil {
		return err
	}
	for j := 0; j < m.n; j++ {
		for _, i := range m.Col(j) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i+1, j+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file. Real, integer and
// pattern fields are accepted (values are discarded); "symmetric" and
// "skew-symmetric" storage is expanded to both triangles (skew-symmetric
// files must not carry explicit diagonal entries). Only square matrices are
// accepted, since the downstream pipeline symmetrizes and factorizes. Any
// non-comment content after the declared number of entries is rejected.
//
// The returned matrix owns its storage. For repeated ingest without
// per-call allocation, use a Parser.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	var p Parser
	m, err := p.Parse(r)
	if err != nil {
		return nil, err
	}
	// Detach from the parser so the matrix survives parser reuse.
	out := &Matrix{n: m.n}
	out.colPtr = append(out.colPtr, m.colPtr...)
	out.rowIdx = append(out.rowIdx, m.rowIdx...)
	return out, nil
}

// Parser is a reusable MatrixMarket coordinate reader. It tokenizes the
// raw bytes directly (no Scanner, no Fields, no Atoi), builds CSC with a
// counting pass plus bucket fill, and reuses every internal buffer, so
// steady-state parsing performs zero heap allocations. The matrix returned
// by Parse/ParseBytes aliases the parser's buffers and is valid only until
// the next call; use ReadMatrixMarket for an owning copy.
type Parser struct {
	buf    []byte  // raw input for the io.Reader path
	pairs  []int32 // tokenized (row, col) pairs, 0-based, interleaved
	colPtr []int32
	next   []int32
	rowIdx []int32
	m      Matrix
}

// Parse reads all of r and parses it as a MatrixMarket coordinate file.
func (p *Parser) Parse(r io.Reader) (*Matrix, error) {
	p.buf = p.buf[:0]
	if cap(p.buf) == 0 {
		p.buf = make([]byte, 0, 1<<16)
	}
	for {
		if len(p.buf) == cap(p.buf) {
			p.buf = append(p.buf, 0)[:len(p.buf)]
		}
		nr, err := r.Read(p.buf[len(p.buf):cap(p.buf)])
		p.buf = p.buf[:len(p.buf)+nr]
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return p.ParseBytes(p.buf)
}

// ParseBytes parses an in-memory MatrixMarket coordinate file.
func (p *Parser) ParseBytes(data []byte) (*Matrix, error) {
	pos := 0
	line, pos := mmLine(data, pos)
	if pos < 0 {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	symmetric, skew, err := parseMMHeader(line)
	if err != nil {
		return nil, err
	}

	// Skip comments and blank lines, then read the size line.
	var n, nnz int64
	for {
		line, pos = mmLine(data, pos)
		if pos < 0 {
			return nil, fmt.Errorf("sparse: missing size line")
		}
		if mmBlankOrComment(line) {
			continue
		}
		var lp int
		var rows, cols int64
		var ok bool
		if rows, lp, ok = mmInt(line, 0); ok {
			if cols, lp, ok = mmInt(line, lp); ok {
				nnz, lp, ok = mmInt(line, lp)
				ok = ok && mmRest(line, lp)
			}
		}
		if !ok {
			return nil, fmt.Errorf("sparse: malformed size line %q", line)
		}
		if rows != cols {
			return nil, fmt.Errorf("sparse: matrix is %d×%d; only square supported", rows, cols)
		}
		n = rows
		break
	}
	if n <= 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: invalid size %d×%d with %d entries", n, n, nnz)
	}
	// Guard allocations against corrupt headers: every entry needs at
	// least 4 bytes ("i j\n"), and a file describing an n-column matrix
	// cannot plausibly be orders of magnitude smaller than n.
	rest := int64(len(data) - pos)
	if nnz > 0 && nnz*3 > rest {
		return nil, fmt.Errorf("sparse: declared %d entries but only %d bytes remain", nnz, rest)
	}
	if n > 4+8*int64(len(data)) {
		return nil, fmt.Errorf("sparse: declared dimension %d implausible for %d-byte input", n, len(data))
	}

	// Pass 1: tokenize entries into pairs, counting entries per column.
	if cap(p.colPtr) < int(n)+1 {
		p.colPtr = make([]int32, n+1)
		p.next = make([]int32, n)
	} else {
		p.colPtr = p.colPtr[:n+1]
		p.next = p.next[:n]
		clear(p.colPtr)
	}
	p.pairs = p.pairs[:0]
	var read int64
	for read < nnz {
		line, pos = mmLine(data, pos)
		if pos < 0 {
			break
		}
		if mmBlankOrComment(line) {
			continue
		}
		i, lp, ok := mmInt(line, 0)
		var j int64
		if ok {
			j, _, ok = mmInt(line, lp)
		}
		if !ok {
			return nil, fmt.Errorf("sparse: malformed entry %q", line)
		}
		if i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for n=%d", i, j, n)
		}
		if skew && i == j {
			return nil, fmt.Errorf("sparse: explicit diagonal entry (%d,%d) in skew-symmetric file", i, j)
		}
		p.pairs = append(p.pairs, int32(i-1), int32(j-1))
		p.colPtr[j]++
		if symmetric && i != j {
			p.colPtr[i]++
		}
		read++
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
	}
	// Anything after the declared entries must be comments or blanks.
	for {
		line, pos = mmLine(data, pos)
		if pos < 0 {
			break
		}
		if !mmBlankOrComment(line) {
			return nil, fmt.Errorf("sparse: trailing garbage after %d entries: %q", nnz, line)
		}
	}

	// Pass 2: prefix sums, then bucket fill.
	var total int32
	for j := int64(1); j <= n; j++ {
		total += p.colPtr[j]
		p.colPtr[j] = total
	}
	copy(p.next, p.colPtr[:n])
	if cap(p.rowIdx) < int(total) {
		p.rowIdx = make([]int32, total)
	} else {
		p.rowIdx = p.rowIdx[:total]
	}
	for k := 0; k < len(p.pairs); k += 2 {
		i, j := p.pairs[k], p.pairs[k+1]
		p.rowIdx[p.next[j]] = i
		p.next[j]++
		if symmetric && i != j {
			p.rowIdx[p.next[i]] = j
			p.next[i]++
		}
	}
	// Pass 3: sort each column and deduplicate in place, compacting.
	var w int32
	for j := int64(0); j < n; j++ {
		lo, hi := p.colPtr[j], p.colPtr[j+1]
		slices.Sort(p.rowIdx[lo:hi])
		newLo := w
		for r := lo; r < hi; r++ {
			if w == newLo || p.rowIdx[r] != p.rowIdx[w-1] {
				p.rowIdx[w] = p.rowIdx[r]
				w++
			}
		}
		p.colPtr[j] = newLo
	}
	p.colPtr[n] = w
	p.m = Matrix{n: int(n), colPtr: p.colPtr, rowIdx: p.rowIdx[:w]}
	return &p.m, nil
}

// mmLine returns the next line of data starting at pos and the offset just
// past its terminator, stripping a trailing \r. next is -1 at end of input.
func mmLine(data []byte, pos int) (line []byte, next int) {
	if pos >= len(data) {
		return nil, -1
	}
	end := pos
	for end < len(data) && data[end] != '\n' {
		end++
	}
	line = data[pos:end]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, end + 1
}

// mmBlankOrComment reports whether the line carries no data.
func mmBlankOrComment(line []byte) bool {
	for _, c := range line {
		switch c {
		case ' ', '\t':
			continue
		case '%':
			return true
		default:
			return false
		}
	}
	return true
}

// mmInt parses the next whitespace-delimited decimal integer of line at or
// after pos, returning the value and the offset past it.
func mmInt(line []byte, pos int) (val int64, next int, ok bool) {
	for pos < len(line) && (line[pos] == ' ' || line[pos] == '\t') {
		pos++
	}
	neg := false
	if pos < len(line) && (line[pos] == '-' || line[pos] == '+') {
		neg = line[pos] == '-'
		pos++
	}
	start := pos
	for pos < len(line) && line[pos] >= '0' && line[pos] <= '9' {
		if val > (1<<62)/10 {
			return 0, pos, false // overflow
		}
		val = val*10 + int64(line[pos]-'0')
		pos++
	}
	if pos == start {
		return 0, pos, false
	}
	if pos < len(line) && line[pos] != ' ' && line[pos] != '\t' {
		return 0, pos, false // e.g. "1x" or a float where an index belongs
	}
	if neg {
		val = -val
	}
	return val, pos, true
}

// mmRest reports whether only whitespace remains on the line after pos.
func mmRest(line []byte, pos int) bool {
	for ; pos < len(line); pos++ {
		if line[pos] != ' ' && line[pos] != '\t' {
			return false
		}
	}
	return true
}

// parseMMHeader validates the banner line and classifies the storage.
func parseMMHeader(line []byte) (symmetric, skew bool, err error) {
	var toks [6][]byte
	ntok := 0
	pos := 0
	for ntok < 6 {
		for pos < len(line) && (line[pos] == ' ' || line[pos] == '\t') {
			pos++
		}
		if pos >= len(line) {
			break
		}
		start := pos
		for pos < len(line) && line[pos] != ' ' && line[pos] != '\t' {
			pos++
		}
		toks[ntok] = line[start:pos]
		ntok++
	}
	if ntok < 5 || !mmFold(toks[0], "%%matrixmarket") || !mmFold(toks[1], "matrix") || !mmFold(toks[2], "coordinate") {
		return false, false, fmt.Errorf("sparse: unsupported MatrixMarket header %q", line)
	}
	switch {
	case mmFold(toks[3], "pattern"), mmFold(toks[3], "real"), mmFold(toks[3], "integer"):
	default:
		return false, false, fmt.Errorf("sparse: unsupported field type %q", toks[3])
	}
	switch {
	case mmFold(toks[4], "general"):
	case mmFold(toks[4], "symmetric"):
		symmetric = true
	case mmFold(toks[4], "skew-symmetric"):
		symmetric, skew = true, true
	default:
		return false, false, fmt.Errorf("sparse: unsupported storage %q", toks[4])
	}
	return symmetric, skew, nil
}

// mmFold compares b to the lower-case ASCII string s case-insensitively.
func mmFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}
