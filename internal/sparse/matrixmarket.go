package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket serializes the pattern in MatrixMarket coordinate
// format ("%%MatrixMarket matrix coordinate pattern general"), 1-based.
func (m *Matrix) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n%d %d %d\n", m.n, m.n, m.NNZ()); err != nil {
		return err
	}
	for j := 0; j < m.n; j++ {
		for _, i := range m.Col(j) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i+1, j+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file. Real, integer and
// pattern fields are accepted (values are discarded); "symmetric" and
// "skew-symmetric" storage is expanded to both triangles. Only square
// matrices are accepted, since the downstream pipeline symmetrizes and
// factorizes.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	field, storage := header[3], header[4]
	switch field {
	case "pattern", "real", "integer":
	default:
		return nil, fmt.Errorf("sparse: unsupported field type %q", field)
	}
	symmetric := false
	switch storage {
	case "general":
	case "symmetric", "skew-symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("sparse: unsupported storage %q", storage)
	}
	// Skip comments, read the size line.
	var n, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("sparse: malformed size line %q", line)
		}
		rows, err1 := strconv.Atoi(fields[0])
		colsN, err2 := strconv.Atoi(fields[1])
		cnt, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sparse: malformed size line %q", line)
		}
		if rows != colsN {
			return nil, fmt.Errorf("sparse: matrix is %d×%d; only square supported", rows, colsN)
		}
		n, nnz = rows, cnt
		break
	}
	if n == 0 {
		return nil, fmt.Errorf("sparse: missing size line")
	}
	cols := make([][]int, n)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: malformed entry %q", line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("sparse: malformed entry %q", line)
		}
		if i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for n=%d", i, j, n)
		}
		cols[j-1] = append(cols[j-1], i-1)
		if symmetric && i != j {
			cols[i-1] = append(cols[i-1], j-1)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
	}
	return New(n, cols)
}
