package sparse

import (
	"fmt"
	"math/rand"
)

// Grid2D returns the 5-point Laplacian pattern of an nx×ny grid (symmetric,
// full diagonal): the model problem dominating sparse-factorization
// collections. Vertices are numbered row-major; the result has
// n = nx·ny columns.
func Grid2D(nx, ny int) (*Matrix, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("sparse: grid dimensions must be positive, got %d×%d", nx, ny)
	}
	n := nx * ny
	cols := make([][]int, n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			j := id(x, y)
			col := []int{j}
			if x > 0 {
				col = append(col, id(x-1, y))
			}
			if x < nx-1 {
				col = append(col, id(x+1, y))
			}
			if y > 0 {
				col = append(col, id(x, y-1))
			}
			if y < ny-1 {
				col = append(col, id(x, y+1))
			}
			cols[j] = col
		}
	}
	return New(n, cols)
}

// Grid3D returns the 7-point Laplacian pattern of an nx×ny×nz grid.
func Grid3D(nx, ny, nz int) (*Matrix, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("sparse: grid dimensions must be positive, got %d×%d×%d", nx, ny, nz)
	}
	n := nx * ny * nz
	cols := make([][]int, n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				j := id(x, y, z)
				col := []int{j}
				if x > 0 {
					col = append(col, id(x-1, y, z))
				}
				if x < nx-1 {
					col = append(col, id(x+1, y, z))
				}
				if y > 0 {
					col = append(col, id(x, y-1, z))
				}
				if y < ny-1 {
					col = append(col, id(x, y+1, z))
				}
				if z > 0 {
					col = append(col, id(x, y, z-1))
				}
				if z < nz-1 {
					col = append(col, id(x, y, z+1))
				}
				cols[j] = col
			}
		}
	}
	return New(n, cols)
}

// RandomSymmetric returns a random symmetric pattern with full diagonal and
// roughly avgDeg off-diagonal entries per column (matching the paper's
// matrix-selection criterion "at least 2.5 nonzeros per row"). A spanning
// chain is always included so the graph — and hence the elimination tree —
// is connected.
func RandomSymmetric(rng *rand.Rand, n int, avgDeg float64) (*Matrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("sparse: need n ≥ 1, got %d", n)
	}
	if avgDeg < 0 {
		return nil, fmt.Errorf("sparse: need avgDeg ≥ 0, got %f", avgDeg)
	}
	cols := make([][]int, n)
	for j := 0; j < n; j++ {
		cols[j] = append(cols[j], j)
	}
	// Spanning chain for connectivity.
	for j := 1; j < n; j++ {
		cols[j] = append(cols[j], j-1)
		cols[j-1] = append(cols[j-1], j)
	}
	// Random off-diagonal pairs. Each accepted pair adds 2 entries, so draw
	// n·avgDeg/2 pairs.
	pairs := int(float64(n) * avgDeg / 2)
	for k := 0; k < pairs; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		cols[j] = append(cols[j], i)
		cols[i] = append(cols[i], j)
	}
	return New(n, cols)
}

// ScaleFree returns a random symmetric pattern grown by preferential
// attachment (Barabási–Albert style): each new vertex connects to
// edgesPerNode existing vertices chosen proportionally to their degree,
// plus the full diagonal. The hub-dominated structure mimics the irregular
// matrices (circuit, optimization) of real collections, whose assembly
// trees are the ones where postorder traversals lose to optimal ones.
func ScaleFree(rng *rand.Rand, n, edgesPerNode int) (*Matrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("sparse: need n ≥ 1, got %d", n)
	}
	if edgesPerNode < 1 {
		return nil, fmt.Errorf("sparse: need ≥ 1 edge per node, got %d", edgesPerNode)
	}
	cols := make([][]int, n)
	for j := 0; j < n; j++ {
		cols[j] = append(cols[j], j)
	}
	// targets holds one entry per edge endpoint, so sampling uniformly from
	// it is degree-proportional sampling.
	targets := []int{0}
	for v := 1; v < n; v++ {
		added := map[int]bool{}
		for e := 0; e < edgesPerNode && len(added) < v; e++ {
			u := targets[rng.Intn(len(targets))]
			if u == v || added[u] {
				continue
			}
			added[u] = true
			cols[v] = append(cols[v], u)
			cols[u] = append(cols[u], v)
			targets = append(targets, u)
		}
		if len(added) == 0 && v > 0 {
			// Guarantee connectivity.
			u := rng.Intn(v)
			cols[v] = append(cols[v], u)
			cols[u] = append(cols[u], v)
			targets = append(targets, u)
		}
		targets = append(targets, v)
	}
	return New(n, cols)
}

// BandMatrix returns a symmetric banded pattern with the given half
// bandwidth (diagonal included), a stand-in for structured engineering
// matrices.
func BandMatrix(n, halfBand int) (*Matrix, error) {
	if n < 1 || halfBand < 0 {
		return nil, fmt.Errorf("sparse: bad band parameters n=%d b=%d", n, halfBand)
	}
	cols := make([][]int, n)
	for j := 0; j < n; j++ {
		lo := j - halfBand
		if lo < 0 {
			lo = 0
		}
		hi := j + halfBand
		if hi > n-1 {
			hi = n - 1
		}
		for i := lo; i <= hi; i++ {
			cols[j] = append(cols[j], i)
		}
	}
	return New(n, cols)
}

// RMAT returns a symmetric power-law pattern from the recursive R-MAT
// quadrant process (Chakrabarti, Zhan, Faloutsos) with the standard
// (0.57, 0.19, 0.19, 0.05) partition, symmetrized with a full diagonal and
// a spanning chain for connectivity. Compared to ScaleFree's preferential
// attachment it produces community-like block structure, the other common
// shape of irregular real-world matrices.
func RMAT(rng *rand.Rand, n, edgesPerNode int) (*Matrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("sparse: need n ≥ 1, got %d", n)
	}
	if edgesPerNode < 0 {
		return nil, fmt.Errorf("sparse: need ≥ 0 edges per node, got %d", edgesPerNode)
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	cols := make([][]int, n)
	for j := 0; j < n; j++ {
		cols[j] = append(cols[j], j)
		if j > 0 {
			cols[j] = append(cols[j], j-1)
			cols[j-1] = append(cols[j-1], j)
		}
	}
	for e := 0; e < n*edgesPerNode; e++ {
		i, j := 0, 0
		for bit := levels - 1; bit >= 0; bit-- {
			switch r := rng.Float64(); {
			case r < 0.57: // top-left
			case r < 0.76: // top-right
				j |= 1 << bit
			case r < 0.95: // bottom-left
				i |= 1 << bit
			default: // bottom-right
				i |= 1 << bit
				j |= 1 << bit
			}
		}
		if i >= n || j >= n || i == j {
			continue
		}
		cols[j] = append(cols[j], i)
		cols[i] = append(cols[i], j)
	}
	return New(n, cols)
}
