// Package sparse provides the sparse-matrix substrate of the reproduction:
// compressed sparse column (CSC) patterns, the symmetrization |A|+|Aᵀ|+I
// used by the paper's experimental setup, model-problem generators (2D/3D
// grid Laplacians, random symmetric patterns) standing in for the
// University of Florida collection, and Matrix Market I/O.
//
// Only the nonzero pattern matters for elimination trees and assembly
// trees, so matrices are stored pattern-only.
package sparse

import (
	"fmt"
	"sort"
)

// Matrix is an n×n sparse pattern in CSC form. Row indices within a column
// are strictly increasing. The zero value is not usable; use New or a
// generator.
type Matrix struct {
	n      int
	colPtr []int32
	rowIdx []int32
}

// New builds a CSC pattern from per-column row indices. Duplicate entries
// within a column are merged; indices are sorted.
func New(n int, cols [][]int) (*Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sparse: need n > 0, got %d", n)
	}
	if len(cols) != n {
		return nil, fmt.Errorf("sparse: got %d columns, want %d", len(cols), n)
	}
	m := &Matrix{n: n, colPtr: make([]int32, n+1)}
	var buf []int32
	for j, col := range cols {
		start := len(buf)
		for _, i := range col {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("sparse: entry (%d,%d) out of range", i, j)
			}
			buf = append(buf, int32(i))
		}
		seg := buf[start:]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
		// Deduplicate in place.
		w := start
		for r := start; r < len(buf); r++ {
			if w == start || buf[r] != buf[w-1] {
				buf[w] = buf[r]
				w++
			}
		}
		buf = buf[:w]
		m.colPtr[j+1] = int32(len(buf))
	}
	m.rowIdx = buf
	return m, nil
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.rowIdx) }

// Col returns the sorted row indices of column j. The returned slice is
// owned by the matrix; do not mutate.
func (m *Matrix) Col(j int) []int32 {
	return m.rowIdx[m.colPtr[j]:m.colPtr[j+1]]
}

// Has reports whether entry (i, j) is present.
func (m *Matrix) Has(i, j int) bool {
	col := m.Col(j)
	k := sort.Search(len(col), func(x int) bool { return col[x] >= int32(i) })
	return k < len(col) && col[k] == int32(i)
}

// Transpose returns the pattern of Aᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := &Matrix{n: m.n, colPtr: make([]int32, m.n+1), rowIdx: make([]int32, len(m.rowIdx))}
	for _, i := range m.rowIdx {
		out.colPtr[i+1]++
	}
	for j := 1; j <= m.n; j++ {
		out.colPtr[j] += out.colPtr[j-1]
	}
	next := make([]int32, m.n)
	copy(next, out.colPtr[:m.n])
	for j := 0; j < m.n; j++ {
		for _, i := range m.Col(j) {
			out.rowIdx[next[i]] = int32(j)
			next[i]++
		}
	}
	return out
}

// Symmetrize returns the pattern of |A| + |Aᵀ| + I, the form the paper
// feeds to the ordering and symbolic-factorization steps. Columns of A and
// Aᵀ are already sorted, so each output column is a deduplicating 3-way
// merge — no per-column scratch, no re-sort.
func (m *Matrix) Symmetrize() *Matrix {
	at := m.Transpose()
	out := &Matrix{n: m.n, colPtr: make([]int32, m.n+1)}
	out.rowIdx = make([]int32, 0, len(m.rowIdx)+len(at.rowIdx)+m.n)
	for j := 0; j < m.n; j++ {
		a, b := m.Col(j), at.Col(j)
		dj := int32(j)
		diagDone := false
		last := int32(-1)
		x, y := 0, 0
		for x < len(a) || y < len(b) {
			var v int32
			if x < len(a) && (y >= len(b) || a[x] <= b[y]) {
				v = a[x]
				x++
			} else {
				v = b[y]
				y++
			}
			if !diagDone && v > dj {
				out.rowIdx = append(out.rowIdx, dj)
				last = dj
				diagDone = true
			}
			if v >= dj {
				diagDone = true
			}
			if v != last {
				out.rowIdx = append(out.rowIdx, v)
				last = v
			}
		}
		if !diagDone {
			out.rowIdx = append(out.rowIdx, dj)
		}
		out.colPtr[j+1] = int32(len(out.rowIdx))
	}
	return out
}

// IsSymmetric reports whether the pattern equals its transpose.
func (m *Matrix) IsSymmetric() bool {
	at := m.Transpose()
	if len(at.rowIdx) != len(m.rowIdx) {
		return false
	}
	for k := range m.rowIdx {
		if m.rowIdx[k] != at.rowIdx[k] {
			return false
		}
	}
	for j := 0; j <= m.n; j++ {
		if m.colPtr[j] != at.colPtr[j] {
			return false
		}
	}
	return true
}

// HasFullDiagonal reports whether every diagonal entry is present.
func (m *Matrix) HasFullDiagonal() bool {
	for j := 0; j < m.n; j++ {
		if !m.Has(j, j) {
			return false
		}
	}
	return true
}

// Permute returns the pattern of PAPᵀ where perm is the new-to-old
// permutation: row/column perm[k] of A becomes row/column k of the result.
func (m *Matrix) Permute(perm []int) (*Matrix, error) {
	if len(perm) != m.n {
		return nil, fmt.Errorf("sparse: permutation has %d entries, want %d", len(perm), m.n)
	}
	inv := make([]int, m.n)
	for k := range inv {
		inv[k] = -1
	}
	for k, old := range perm {
		if old < 0 || old >= m.n {
			return nil, fmt.Errorf("sparse: permutation entry %d out of range", old)
		}
		if inv[old] != -1 {
			return nil, fmt.Errorf("sparse: permutation repeats %d", old)
		}
		inv[old] = k
	}
	cols := make([][]int, m.n)
	for k, old := range perm {
		src := m.Col(old)
		col := make([]int, len(src))
		for x, i := range src {
			col[x] = inv[i]
		}
		cols[k] = col
	}
	return New(m.n, cols)
}

// AverageDegree returns NNZ / n, the mean number of entries per column.
func (m *Matrix) AverageDegree() float64 {
	return float64(m.NNZ()) / float64(m.n)
}
