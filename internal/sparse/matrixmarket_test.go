package sparse

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestMatrixMarketRejectsTrailingGarbage(t *testing.T) {
	cases := []string{
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n2 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\nwat\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n1 2 4.0\n",
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Fatalf("ReadMatrixMarket(%q) succeeded, want trailing-garbage error", c)
		}
	}
	// Trailing comments and blank lines stay legal.
	ok := "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n% done\n\n  \n"
	if _, err := ReadMatrixMarket(strings.NewReader(ok)); err != nil {
		t.Fatalf("trailing comments rejected: %v", err)
	}
}

func TestMatrixMarketRejectsSkewDiagonal(t *testing.T) {
	bad := "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 2\n2 1 1.0\n3 3 2.0\n"
	if _, err := ReadMatrixMarket(strings.NewReader(bad)); err == nil {
		t.Fatal("explicit diagonal in skew-symmetric file accepted, want error")
	}
	good := "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 2\n2 1 1.0\n3 2 2.0\n"
	m, err := ReadMatrixMarket(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (both triangles)", m.NNZ())
	}
}

func TestMatrixMarketHeaderCaseAndCR(t *testing.T) {
	in := "%%matrixmarket MATRIX Coordinate Pattern SYMMETRIC\r\n% c\r\n3 3 2\r\n2 1\r\n3 1\r\n"
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 || m.NNZ() != 4 {
		t.Fatalf("got n=%d nnz=%d, want 3/4", m.N(), m.NNZ())
	}
}

func TestMatrixMarketImplausibleHeader(t *testing.T) {
	cases := []string{
		"%%MatrixMarket matrix coordinate pattern general\n2000000000 2000000000 0\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1000000\n1 1\n",
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Fatalf("ReadMatrixMarket(%q) succeeded, want plausibility error", c)
		}
	}
}

// TestParserReuseZeroAlloc pins the tentpole property: steady-state parsing
// with a reused Parser performs no heap allocations.
func TestParserReuseZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := RandomSymmetric(rng, 400, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	var p Parser
	if _, err := p.ParseBytes(data); err != nil {
		t.Fatal(err) // warm the buffers
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := p.ParseBytes(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseBytes allocates %.1f times per op in steady state, want 0", allocs)
	}
}

func TestParserMatchesReadMatrixMarket(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var p Parser
	for trial := 0; trial < 20; trial++ {
		m, err := RandomSymmetric(rng, 1+rng.Intn(80), 1+4*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteMatrixMarket(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := p.ParseBytes(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != m.N() || !reflect.DeepEqual(got.rowIdx, m.rowIdx) || !reflect.DeepEqual(got.colPtr, m.colPtr) {
			t.Fatalf("trial %d: parser mismatch", trial)
		}
	}
}

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 0.5\n3 2 -1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer skew-symmetric\n3 3 1\n3 1 4\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n% c\n\n4 4 0\n"))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parser
		m, err := p.ParseBytes(data)
		if err != nil {
			return // must not panic; any error is acceptable on junk
		}
		// Round trip: write what we parsed, reparse, compare exactly.
		var buf bytes.Buffer
		if err := m.WriteMatrixMarket(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		var p2 Parser
		back, err := p2.ParseBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("reparse of own output failed: %v", err)
		}
		if back.N() != m.N() || !reflect.DeepEqual(back.colPtr, m.colPtr) || !reflect.DeepEqual(back.rowIdx, m.rowIdx) {
			t.Fatal("round trip mismatch")
		}
	})
}
