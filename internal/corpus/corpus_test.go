package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestManifestGeneratorsWork exercises every fallback generator in both
// manifests and sanity-checks the symmetrized pattern feeding the pipeline.
func TestManifestGeneratorsWork(t *testing.T) {
	for _, e := range append(DefaultManifest(), SmokeManifest()...) {
		m, source, err := e.Load("")
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if source != "generator" {
			t.Fatalf("%s: want generator provenance with empty dir, got %q", e.Name, source)
		}
		if m.N() < 2 {
			t.Fatalf("%s: implausibly small matrix n=%d", e.Name, m.N())
		}
		s := m.Symmetrize()
		if s.N() != m.N() {
			t.Fatalf("%s: symmetrize changed n", e.Name)
		}
	}
}

// TestManifestNamesUniqueAndFamilied pins the invariants the matrices
// experiment relies on: unique names and a family per entry.
func TestManifestNamesUniqueAndFamilied(t *testing.T) {
	for _, entries := range [][]Entry{DefaultManifest(), SmokeManifest()} {
		fam := Families(entries)
		if len(fam) != len(entries) {
			t.Fatalf("duplicate manifest names: %d entries, %d unique", len(entries), len(fam))
		}
		for _, e := range entries {
			switch e.Family {
			case FamilyGrid2D, FamilyGrid3D, FamilyPowerLaw, FamilyBanded:
			default:
				t.Fatalf("%s: unknown family %q", e.Name, e.Family)
			}
		}
	}
}

// TestLoadPrefersMirroredFile writes a tiny MatrixMarket file into a corpus
// dir and checks Load picks it over the generator.
func TestLoadPrefersMirroredFile(t *testing.T) {
	dir := t.TempDir()
	mtx := "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 4\n1 1\n2 2\n3 3\n3 1\n"
	if err := os.WriteFile(filepath.Join(dir, "smoke-band.mtx"), []byte(mtx), 0o644); err != nil {
		t.Fatal(err)
	}
	e := SmokeManifest()[3]
	if e.Name != "smoke-band" {
		t.Fatalf("manifest layout changed: got %q", e.Name)
	}
	m, source, err := e.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if source != "file" || m.N() != 3 {
		t.Fatalf("want mirrored 3×3 file, got source=%q n=%d", source, m.N())
	}
	if _, source, err = e.Load(""); err != nil || source != "generator" {
		t.Fatalf("empty dir should fall back to generator: %q %v", source, err)
	}
}

// TestPipelineOrderAndShape streams the smoke manifest and checks instance
// names arrive in deterministic manifest × ordering × relax order with
// sensible trees, despite concurrent per-matrix workers.
func TestPipelineOrderAndShape(t *testing.T) {
	entries := SmokeManifest()
	p, err := NewPipeline(entries, PipelineOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var want []string
	for _, e := range entries {
		for _, ord := range OrderingNames() {
			for _, r := range []int{1, 4} {
				want = append(want, fmt.Sprintf("%s/%s/r%d", e.Name, ord, r))
			}
		}
	}
	fam := Families(entries)
	for i, name := range want {
		inst, ok, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stream ended early at %d/%d", i, len(want))
		}
		if inst.Name != name {
			t.Fatalf("instance %d: got %q, want %q", i, inst.Name, name)
		}
		if inst.Tree == nil || inst.Tree.Len() < 1 {
			t.Fatalf("%s: empty tree", name)
		}
		if inst.Family != fam[inst.Matrix] || inst.Source != "generator" {
			t.Fatalf("%s: bad provenance family=%q source=%q", name, inst.Family, inst.Source)
		}
	}
	if _, ok, err := p.Next(); ok || err != nil {
		t.Fatalf("want clean exhaustion, got ok=%v err=%v", ok, err)
	}
}

// TestPipelineSubsetOptions checks ordering/relax subsetting and option
// validation.
func TestPipelineSubsetOptions(t *testing.T) {
	p, err := NewPipeline(SmokeManifest()[:1], PipelineOptions{Orderings: []string{"amd"}, Relax: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	inst, ok, err := p.Next()
	if err != nil || !ok {
		t.Fatalf("next: ok=%v err=%v", ok, err)
	}
	if inst.Name != "smoke-grid2d/amd/r2" {
		t.Fatalf("got %q", inst.Name)
	}
	if _, ok, _ := p.Next(); ok {
		t.Fatal("want single instance")
	}
	if _, err := NewPipeline(SmokeManifest(), PipelineOptions{Orderings: []string{"bogus"}}); err == nil {
		t.Fatal("want unknown-ordering error")
	}
	if _, err := NewPipeline(SmokeManifest(), PipelineOptions{Relax: []int{-1}}); err == nil {
		t.Fatal("want negative-relax error")
	}
}

// TestPipelineEarlyClose abandons a stream mid-way; Close must let the
// dispatcher and workers wind down without the consumer draining.
func TestPipelineEarlyClose(t *testing.T) {
	p, err := NewPipeline(DefaultManifest(), PipelineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := p.Next(); !ok || err != nil {
		t.Fatalf("next: ok=%v err=%v", ok, err)
	}
	p.Close()
	p.Close() // idempotent
}

// TestPipelineLatchesError checks a failing entry poisons the stream.
func TestPipelineLatchesError(t *testing.T) {
	entries := []Entry{{Name: "bad", Family: FamilyBanded, Gen: GenSpec{Kind: "nope"}}}
	p, err := NewPipeline(entries, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, ok, err := p.Next(); ok || err == nil {
		t.Fatalf("want latched error, got ok=%v err=%v", ok, err)
	}
	if _, ok, err := p.Next(); ok || err == nil {
		t.Fatal("error must stay latched")
	}
}
