// Package corpus is the real-matrix front door of the evaluation spine: a
// compiled-in manifest of sparse matrices (SuiteSparse download URLs with
// deterministic generator fallbacks per matrix family, so CI never touches
// the network), and a streaming pipeline that turns each matrix into
// assembly-tree instances — symmetrize, order with {natural, RCM, AMD,
// nested dissection}, amalgamate at each relax level — ready to feed any
// schedule backend as a job stream. Per-matrix pipeline stages run
// concurrently; instances are delivered in deterministic manifest order.
package corpus

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/sparse"
)

// Family classifies a matrix by structure; the matrices experiment reports
// the winning ordering per family.
type Family string

// The manifest's matrix families: regular 2D/3D grid discretizations,
// power-law graphs (circuit/optimization-like irregularity), and banded
// engineering matrices.
const (
	FamilyGrid2D   Family = "grid2d"
	FamilyGrid3D   Family = "grid3d"
	FamilyPowerLaw Family = "powerlaw"
	FamilyBanded   Family = "banded"
)

// GenSpec is a deterministic generator fallback: the matrix produced when
// the real file is not mirrored locally.
type GenSpec struct {
	// Kind selects the generator: grid2d | grid3d | rmat | band.
	Kind string
	// N and Arg parameterize it: grid2d N×N, grid3d N×N×N, rmat N nodes
	// with Arg edges per node, band N rows with half-bandwidth Arg.
	N, Arg int
	// Seed drives the random generators; structured kinds ignore it.
	Seed int64
}

// Entry is one manifest matrix: a real downloadable file plus the
// deterministic stand-in used when the file is absent.
type Entry struct {
	// Name is the instance-name prefix and the expected local file name
	// (<Name>.mtx inside the corpus directory).
	Name string
	// Family classifies the matrix for the winner-per-family report.
	Family Family
	// URL is the SuiteSparse collection archive holding the real matrix;
	// empty for generator-only entries. The pipeline never fetches it —
	// mirroring the corpus is an operator step (see the runbook).
	URL string
	// Gen is the deterministic fallback.
	Gen GenSpec
}

// Generate builds the entry's fallback matrix.
func (e Entry) Generate() (*sparse.Matrix, error) {
	switch e.Gen.Kind {
	case "grid2d":
		return sparse.Grid2D(e.Gen.N, e.Gen.N)
	case "grid3d":
		return sparse.Grid3D(e.Gen.N, e.Gen.N, e.Gen.N)
	case "rmat":
		return sparse.RMAT(rand.New(rand.NewSource(e.Gen.Seed)), e.Gen.N, e.Gen.Arg)
	case "band":
		return sparse.BandMatrix(e.Gen.N, e.Gen.Arg)
	default:
		return nil, fmt.Errorf("corpus: %s: unknown generator kind %q", e.Name, e.Gen.Kind)
	}
}

// Load returns the entry's matrix and its provenance: the MatrixMarket
// file <dir>/<Name>.mtx when present ("file"), the deterministic generator
// otherwise ("generator"). An empty dir skips the file lookup entirely.
func (e Entry) Load(dir string) (*sparse.Matrix, string, error) {
	if dir != "" {
		path := filepath.Join(dir, e.Name+".mtx")
		if data, err := os.ReadFile(path); err == nil {
			// A one-shot parser is never reused, so the returned matrix
			// can keep aliasing its buffers.
			var p sparse.Parser
			m, err := p.ParseBytes(data)
			if err != nil {
				return nil, "", fmt.Errorf("corpus: %s: %w", path, err)
			}
			return m, "file", nil
		}
	}
	m, err := e.Generate()
	if err != nil {
		return nil, "", err
	}
	return m, "generator", nil
}

const suiteSparse = "https://suitesparse-collection-website.herokuapp.com/MM/"

// DefaultManifest is the compiled-in corpus: two matrices per family, each
// with a real SuiteSparse source and a same-family generator fallback sized
// to keep a full pipeline run in seconds.
func DefaultManifest() []Entry {
	return []Entry{
		{Name: "nos4", Family: FamilyGrid2D, URL: suiteSparse + "HB/nos4.tar.gz",
			Gen: GenSpec{Kind: "grid2d", N: 10}},
		{Name: "gridgen-48", Family: FamilyGrid2D,
			Gen: GenSpec{Kind: "grid2d", N: 48}},
		{Name: "bcsstk10", Family: FamilyGrid3D, URL: suiteSparse + "HB/bcsstk10.tar.gz",
			Gen: GenSpec{Kind: "grid3d", N: 11}},
		{Name: "grid3gen-10", Family: FamilyGrid3D,
			Gen: GenSpec{Kind: "grid3d", N: 10}},
		{Name: "ca-GrQc", Family: FamilyPowerLaw, URL: suiteSparse + "SNAP/ca-GrQc.tar.gz",
			Gen: GenSpec{Kind: "rmat", N: 2048, Arg: 4, Seed: 7001}},
		{Name: "rmatgen-1500", Family: FamilyPowerLaw,
			Gen: GenSpec{Kind: "rmat", N: 1500, Arg: 3, Seed: 7002}},
		{Name: "bcsstk08", Family: FamilyBanded, URL: suiteSparse + "HB/bcsstk08.tar.gz",
			Gen: GenSpec{Kind: "band", N: 1074, Arg: 6}},
		{Name: "bandgen-1200", Family: FamilyBanded,
			Gen: GenSpec{Kind: "band", N: 1200, Arg: 10}},
	}
}

// SmokeManifest is the CI-sized corpus: one small generator entry per
// family, fast enough for smoke jobs yet exercising every family branch.
func SmokeManifest() []Entry {
	return []Entry{
		{Name: "smoke-grid2d", Family: FamilyGrid2D, Gen: GenSpec{Kind: "grid2d", N: 9}},
		{Name: "smoke-grid3d", Family: FamilyGrid3D, Gen: GenSpec{Kind: "grid3d", N: 4}},
		{Name: "smoke-rmat", Family: FamilyPowerLaw, Gen: GenSpec{Kind: "rmat", N: 160, Arg: 3, Seed: 7100}},
		{Name: "smoke-band", Family: FamilyBanded, Gen: GenSpec{Kind: "band", N: 150, Arg: 4}},
	}
}

// Families returns the matrix-name → family map of a manifest, for report
// aggregation.
func Families(entries []Entry) map[string]Family {
	out := make(map[string]Family, len(entries))
	for _, e := range entries {
		out[e.Name] = e.Family
	}
	return out
}
