package corpus

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
)

// OrderingNames lists the pipeline's fill-reducing orderings in their
// canonical order: the identity baseline, reverse Cuthill–McKee, the AMD
// approximate minimum degree, and nested dissection.
func OrderingNames() []string { return []string{"natural", "rcm", "amd", "nd"} }

// applyOrdering computes the named permutation of a symmetric pattern.
func applyOrdering(name string, m *sparse.Matrix) ([]int, error) {
	switch name {
	case "natural":
		return ordering.Natural(m), nil
	case "rcm":
		return ordering.ReverseCuthillMcKee(m)
	case "amd":
		return ordering.MinimumDegree(m)
	case "nd":
		return ordering.NestedDissection(m, ordering.NestedDissectionOptions{LeafSize: 32})
	default:
		return nil, fmt.Errorf("corpus: unknown ordering %q (want one of %v)", name, OrderingNames())
	}
}

// Instance is one assembly tree produced by the pipeline, with provenance.
type Instance struct {
	// Name is "matrix/ordering/rN", mirroring the dataset package.
	Name string
	// Matrix, Family and Source describe the input pattern; Source is
	// "file" for a mirrored real matrix, "generator" for the fallback.
	Matrix string
	Family Family
	Source string
	// Ordering and Relax are the pipeline parameters of this instance.
	Ordering string
	Relax    int
	// Tree is the weighted assembly tree.
	Tree *tree.Tree
}

// PipelineOptions configures a Pipeline.
type PipelineOptions struct {
	// Dir is the local corpus mirror; empty uses generator fallbacks only.
	Dir string
	// Orderings defaults to OrderingNames().
	Orderings []string
	// Relax lists the amalgamation levels; defaults to {1, 4}.
	Relax []int
	// Workers bounds the per-matrix pipeline workers running concurrently
	// (≤ 0 selects GOMAXPROCS).
	Workers int
}

// Pipeline streams manifest entries through load → symmetrize →
// ordering × relax → assembly tree. Per-matrix workers run concurrently;
// Next delivers instances in deterministic manifest order regardless.
type Pipeline struct {
	order chan chan entryOut
	stop  chan struct{}
	once  sync.Once
	cur   []Instance
	err   error
}

type entryOut struct {
	recs []Instance
	err  error
}

// NewPipeline validates the options and starts the workers.
func NewPipeline(entries []Entry, opt PipelineOptions) (*Pipeline, error) {
	ords := opt.Orderings
	if len(ords) == 0 {
		ords = OrderingNames()
	}
	known := map[string]bool{}
	for _, o := range OrderingNames() {
		known[o] = true
	}
	for _, o := range ords {
		if !known[o] {
			return nil, fmt.Errorf("corpus: unknown ordering %q (want one of %v)", o, OrderingNames())
		}
	}
	relax := opt.Relax
	if len(relax) == 0 {
		relax = []int{1, 4}
	}
	for _, r := range relax {
		if r < 0 {
			return nil, fmt.Errorf("corpus: negative relax %d", r)
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pipeline{
		order: make(chan chan entryOut, workers),
		stop:  make(chan struct{}),
	}
	sem := make(chan struct{}, workers)
	go func() {
		defer close(p.order)
		for _, e := range entries {
			select {
			case sem <- struct{}{}:
			case <-p.stop:
				return
			}
			rc := make(chan entryOut, 1)
			go func(e Entry) {
				defer func() { <-sem }()
				recs, err := buildEntry(e, opt.Dir, ords, relax)
				rc <- entryOut{recs: recs, err: err}
			}(e)
			select {
			case p.order <- rc:
			case <-p.stop:
				return
			}
		}
	}()
	return p, nil
}

// buildEntry runs the full per-matrix pipeline for one manifest entry.
func buildEntry(e Entry, dir string, ords []string, relax []int) ([]Instance, error) {
	m, source, err := e.Load(dir)
	if err != nil {
		return nil, err
	}
	s := m.Symmetrize()
	recs := make([]Instance, 0, len(ords)*len(relax))
	for _, ord := range ords {
		perm, err := applyOrdering(ord, s)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", e.Name, err)
		}
		pm, err := s.Permute(perm)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s/%s: %w", e.Name, ord, err)
		}
		for _, r := range relax {
			res, err := symbolic.AssemblyTree(pm, symbolic.AssemblyOptions{Relax: r})
			if err != nil {
				return nil, fmt.Errorf("corpus: %s/%s/r%d: %w", e.Name, ord, r, err)
			}
			recs = append(recs, Instance{
				Name:     fmt.Sprintf("%s/%s/r%d", e.Name, ord, r),
				Matrix:   e.Name,
				Family:   e.Family,
				Source:   source,
				Ordering: ord,
				Relax:    r,
				Tree:     res.Tree,
			})
		}
	}
	return recs, nil
}

// Next returns the next instance in manifest order; ok is false once the
// stream is exhausted. After an error the stream stays failed.
func (p *Pipeline) Next() (Instance, bool, error) {
	if p.err != nil {
		return Instance{}, false, p.err
	}
	for len(p.cur) == 0 {
		rc, ok := <-p.order
		if !ok {
			return Instance{}, false, nil
		}
		out := <-rc
		if out.err != nil {
			p.err = out.err
			p.Close()
			return Instance{}, false, out.err
		}
		p.cur = out.recs
	}
	rec := p.cur[0]
	p.cur = p.cur[1:]
	return rec, true, nil
}

// Close stops the dispatcher; in-flight workers finish and are dropped.
// Safe to call more than once and concurrently with Next's consumer
// winding down.
func (p *Pipeline) Close() {
	p.once.Do(func() { close(p.stop) })
}
