package hillvalley

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tree"
)

func randomTree(tb testing.TB, seed int64, nodes int) *tree.Tree {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tree.RandomOptions{
		Nodes: nodes, MaxF: 15, MaxN: 6, Attach: tree.AttachKind(seed % 3),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// The kernel must be bit-identical to the seed implementation — same
// profile segments, same minimum memory, same traversal node-for-node —
// on a large randomized corpus covering all three attachment shapes.
func TestKernelMatchesReference(t *testing.T) {
	var k Kernel // one kernel across all trees: buffer reuse must not leak state
	trees := 0
	for seed := int64(0); seed < 40; seed++ {
		for _, nodes := range []int{1, 2, 3, 7, 25, 60} {
			tr := randomTree(t, seed*997+int64(nodes), nodes)
			trees++
			wantProf := refProfile(tr)
			gotProf := k.Profile(tr, nil)
			if !reflect.DeepEqual(gotProf, wantProf) {
				t.Fatalf("seed %d nodes %d: profile %v != reference %v", seed, nodes, gotProf, wantProf)
			}
			wantMem, wantOrder := refExact(tr)
			gotMem, gotOrder := k.Exact(tr, nil)
			if gotMem != wantMem {
				t.Fatalf("seed %d nodes %d: memory %d != reference %d", seed, nodes, gotMem, wantMem)
			}
			if !reflect.DeepEqual(gotOrder, wantOrder) {
				t.Fatalf("seed %d nodes %d: order %v != reference %v", seed, nodes, gotOrder, wantOrder)
			}
		}
	}
	if trees < 100 {
		t.Fatalf("differential corpus has %d trees, want ≥ 100", trees)
	}
}

// The pooled package functions agree with a private kernel.
func TestPooledEntryPoints(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := randomTree(t, seed, 30)
		var k Kernel
		if got, want := Profile(tr), k.Profile(tr, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("pooled profile %v != kernel %v", got, want)
		}
		gm, go_ := Exact(tr)
		km, ko := k.Exact(tr, nil)
		if gm != km || !reflect.DeepEqual(go_, ko) {
			t.Fatalf("pooled exact (%d, %v) != kernel (%d, %v)", gm, go_, km, ko)
		}
	}
}

// The exact order is a valid bottom-up traversal whose naively replayed
// peak equals the reported minimum memory, and no valid traversal found by
// the kernel can beat the profile's first hill.
func TestExactOrderIsOptimalCertificate(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tr := randomTree(t, seed, 4+int(seed%40))
		mem, order := Exact(tr)
		if err := tr.IsBottomUpOrder(order); err != nil {
			t.Fatalf("seed %d: invalid order: %v", seed, err)
		}
		if peak := refPeakBottomUp(tr, order); peak != mem {
			t.Fatalf("seed %d: replayed peak %d != reported memory %d", seed, peak, mem)
		}
		prof := Profile(tr)
		if prof[0].Hill != mem {
			t.Fatalf("seed %d: first hill %d != memory %d", seed, prof[0].Hill, mem)
		}
	}
}

// Profile invariants: hills non-increasing, valleys non-decreasing, every
// hill at least its valley, last valley = the root's retained file.
func TestProfileInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		tr := randomTree(t, seed, 1+int(seed*7%90))
		prof := Profile(tr)
		if len(prof) == 0 {
			t.Fatalf("seed %d: empty profile", seed)
		}
		if last := prof[len(prof)-1].Valley; last != tr.F(tr.Root()) {
			t.Fatalf("seed %d: last valley %d != root file %d", seed, last, tr.F(tr.Root()))
		}
		for i, s := range prof {
			if s.Hill < s.Valley {
				t.Fatalf("seed %d: segment %d hill %d < valley %d", seed, i, s.Hill, s.Valley)
			}
			if i > 0 && (s.Hill > prof[i-1].Hill || s.Valley < prof[i-1].Valley) {
				t.Fatalf("seed %d: profile not canonical at %d: %v", seed, i, prof)
			}
		}
	}
}

func TestCanonicalize(t *testing.T) {
	cases := []struct {
		name string
		raw  []Segment
		want []Segment
	}{
		{"empty", nil, nil},
		{"single", []Segment{{7, 4}}, []Segment{{7, 4}}},
		{"collapse", []Segment{{5, 3}, {9, 2}, {4, 4}}, []Segment{{9, 2}, {4, 4}}},
		{"already-canonical", []Segment{{9, 1}, {7, 2}, {5, 3}}, []Segment{{9, 1}, {7, 2}, {5, 3}}},
		{"rising-hills", []Segment{{3, 1}, {5, 2}, {8, 0}}, []Segment{{8, 0}}},
		{"plateau", []Segment{{6, 2}, {6, 2}}, []Segment{{6, 2}, {6, 2}}},
	}
	for _, c := range cases {
		if got := Canonicalize(c.raw, nil); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: Canonicalize(%v) = %v, want %v", c.name, c.raw, got, c.want)
		}
	}
	// Appending to a non-nil dst keeps the prefix.
	dst := []Segment{{1, 1}}
	out := Canonicalize([]Segment{{5, 2}}, dst)
	if !reflect.DeepEqual(out, []Segment{{1, 1}, {5, 2}}) {
		t.Fatalf("append semantics broken: %v", out)
	}
}

// Canonicalize agrees with the kernel's internal canonicalization on the
// per-step memory curve of the kernel's own optimal traversal: replaying
// the exact order and canonicalizing the step curve reproduces the root
// profile (Liu's certificate property).
func TestCanonicalizeOfOptimalReplayIsProfile(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		tr := randomTree(t, seed, 1+int(seed*13%70))
		_, order := Exact(tr)
		var resident int64
		curve := make([]Segment, 0, len(order))
		for _, i := range order {
			peak := resident + tr.F(i) + tr.N(i)
			resident += tr.F(i) - tr.ChildFileSum(i)
			curve = append(curve, Segment{Hill: peak, Valley: resident})
		}
		got := Canonicalize(curve, nil)
		want := Profile(tr)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: canonicalized replay %v != profile %v", seed, got, want)
		}
	}
}
