package hillvalley

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tree"
)

// kernelDisagrees reports whether the kernel disagrees with the seed
// reference or with the naive replay simulator on tr, with a description
// of the first disagreement found.
func kernelDisagrees(tr *tree.Tree) (string, bool) {
	var k Kernel
	gotProf := k.Profile(tr, nil)
	if wantProf := refProfile(tr); !reflect.DeepEqual(gotProf, wantProf) {
		return fmt.Sprintf("profile %v != reference %v", gotProf, wantProf), true
	}
	gotMem, gotOrder := k.Exact(tr, nil)
	wantMem, wantOrder := refExact(tr)
	if gotMem != wantMem {
		return fmt.Sprintf("memory %d != reference %d", gotMem, wantMem), true
	}
	if !reflect.DeepEqual(gotOrder, wantOrder) {
		return fmt.Sprintf("order %v != reference %v", gotOrder, wantOrder), true
	}
	if err := tr.IsBottomUpOrder(gotOrder); err != nil {
		return fmt.Sprintf("invalid order: %v", err), true
	}
	// Naive reference simulator: the replayed peak must equal the claimed
	// optimum, and the profile's first hill must agree.
	if peak := refPeakBottomUp(tr, gotOrder); peak != gotMem {
		return fmt.Sprintf("replayed peak %d != memory %d", peak, gotMem), true
	}
	if gotProf[0].Hill != gotMem {
		return fmt.Sprintf("first hill %d != memory %d", gotProf[0].Hill, gotMem), true
	}
	return "", false
}

// shrinkTree greedily minimizes a disagreeing tree: repeatedly try
// deleting a leaf and shrinking weights toward (f=1, n=0), keeping any
// mutation under which the disagreement persists, until a fixpoint.
func shrinkTree(tr *tree.Tree, disagrees func(*tree.Tree) bool) *tree.Tree {
	for changed := true; changed; {
		changed = false
		// Leaf deletion: drop node v, renumbering the survivors.
		for v := 0; v < tr.Len() && tr.Len() > 1; v++ {
			if !tr.IsLeaf(v) {
				continue
			}
			parent, f, n := tr.ParentVector(), tr.FVector(), tr.NVector()
			np := append(parent[:v], parent[v+1:]...)
			nf := append(f[:v], f[v+1:]...)
			nn := append(n[:v], n[v+1:]...)
			for i, p := range np {
				if p > v {
					np[i] = p - 1
				}
			}
			cand, err := tree.New(np, nf, nn)
			if err == nil && disagrees(cand) {
				tr = cand
				changed = true
				v--
			}
		}
		// Weight shrinking: halve f toward 1 and n toward 0.
		for v := 0; v < tr.Len(); v++ {
			f, n := tr.FVector(), tr.NVector()
			if next := f[v] / 2; next >= 1 && next != f[v] {
				f[v] = next
				if cand, err := tr.WithWeights(f, n); err == nil && disagrees(cand) {
					tr, changed = cand, true
				} else {
					f = tr.FVector()
				}
			}
			if next := n[v] / 2; next != n[v] {
				n[v] = next
				if cand, err := tr.WithWeights(f, n); err == nil && disagrees(cand) {
					tr, changed = cand, true
				}
			}
		}
	}
	return tr
}

// FuzzKernelVsReference generates a random tree from the fuzzed seed,
// runs the refactored kernel against the seed reference implementation
// and the naive replay simulator, and on any disagreement shrinks the
// tree to a minimal reproducer before failing.
func FuzzKernelVsReference(f *testing.F) {
	f.Add(int64(1), uint16(12), uint8(0))
	f.Add(int64(7), uint16(40), uint8(1))
	f.Add(int64(42), uint16(90), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nodes uint16, kind uint8) {
		rng := rand.New(rand.NewSource(seed))
		tr, err := tree.Random(rng, tree.RandomOptions{
			Nodes:  1 + int(nodes%200),
			MaxF:   15,
			MaxN:   6,
			Attach: tree.AttachKind(kind % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, bad := kernelDisagrees(tr); !bad {
			return
		}
		min := shrinkTree(tr, func(c *tree.Tree) bool {
			_, b := kernelDisagrees(c)
			return b
		})
		msg, _ := kernelDisagrees(min)
		t.Fatalf("kernel disagrees with reference: %s\nminimal tree (p=%d):\n  parent=%v\n  f=%v\n  n=%v",
			msg, min.Len(), min.ParentVector(), min.FVector(), min.NVector())
	})
}

// The shrinker itself must preserve disagreement-free trees and terminate;
// exercise it on a synthetic "disagreement" so a real failure report is
// minimal. (A size-based pseudo-bug: trees with ≥ 4 nodes "disagree".)
func TestShrinkerFindsMinimalTree(t *testing.T) {
	tr := randomTree(t, 5, 40)
	min := shrinkTree(tr, func(c *tree.Tree) bool { return c.Len() >= 4 })
	if min.Len() != 4 {
		t.Fatalf("shrinker stopped at %d nodes, want 4", min.Len())
	}
	for v := 0; v < min.Len(); v++ {
		if min.F(v) != 1 || min.N(v) != 0 {
			t.Fatalf("shrinker left weights f=%d n=%d at node %d", min.F(v), min.N(v), v)
		}
	}
}
