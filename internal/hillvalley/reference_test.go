package hillvalley

import (
	"sort"

	"repro/internal/tree"
)

// This file preserves the seed implementation of Liu's profile machinery
// (internal/traversal/liu.go before the kernel extraction) verbatim, as
// the reference the differential and fuzz tests pin the kernel against:
// stable-sort multi-way merge, per-node valley map, pointer ropes.

// refSegment is the seed segment: a hill–valley pair plus the nodes
// executed during it (as a pointer rope).
type refSegment struct {
	hill   int64
	valley int64
	nodes  *refRope
}

// refProfile is the seed LiuProfile: the root profile of the seed combine.
func refProfile(t *tree.Tree) []Segment {
	root := refRun(t)
	out := make([]Segment, len(root))
	for i, s := range root {
		out[i] = Segment{Hill: s.hill, Valley: s.valley}
	}
	return out
}

// refExact is the seed LiuExact, returning the minimum memory and the
// bottom-up traversal (before the top-down reversal the traversal package
// applies).
func refExact(t *tree.Tree) (int64, []int) {
	root := refRun(t)
	mem := root[0].hill
	order := make([]int, 0, t.Len())
	for _, s := range root {
		order = s.nodes.appendTo(order)
	}
	return mem, order
}

func refRun(t *tree.Tree) []refSegment {
	profiles := make([][]refSegment, t.Len())
	for _, v := range t.Postorder() {
		profiles[v] = refCombine(t, v, profiles)
	}
	return profiles[t.Root()]
}

// refCombine is the seed liuCombine: stable sort on decreasing (h−v) over
// the children segments gathered in child order, replayed with a
// per-child valley map.
func refCombine(t *tree.Tree, v int, profiles [][]refSegment) []refSegment {
	nc := t.NumChildren(v)
	if nc == 0 {
		return []refSegment{{hill: t.MemReq(v), valley: t.F(v), nodes: refLeaf(v)}}
	}
	type tagged struct {
		seg   refSegment
		child int32
	}
	var all []tagged
	for k := 0; k < nc; k++ {
		c := t.Child(v, k)
		for _, s := range profiles[c] {
			all = append(all, tagged{s, int32(c)})
		}
		profiles[c] = nil
	}
	sort.SliceStable(all, func(a, b int) bool {
		sa, sb := all[a].seg, all[b].seg
		return sa.hill-sa.valley > sb.hill-sb.valley
	})
	cur := make(map[int32]int64, nc)
	var base int64
	raw := make([]refSegment, 0, len(all)+1)
	for _, ts := range all {
		prev := cur[ts.child]
		peakAbs := base - prev + ts.seg.hill
		base += ts.seg.valley - prev
		cur[ts.child] = ts.seg.valley
		raw = append(raw, refSegment{hill: peakAbs, valley: base, nodes: ts.seg.nodes})
	}
	raw = append(raw, refSegment{hill: base + t.F(v) + t.N(v), valley: t.F(v), nodes: refLeaf(v)})
	return refCanonicalize(raw)
}

// refCanonicalize is the seed canonicalize.
func refCanonicalize(raw []refSegment) []refSegment {
	m := len(raw)
	hillIdx := make([]int32, m)
	valIdx := make([]int32, m)
	hillIdx[m-1], valIdx[m-1] = int32(m-1), int32(m-1)
	for i := m - 2; i >= 0; i-- {
		if raw[i].hill >= raw[hillIdx[i+1]].hill {
			hillIdx[i] = int32(i)
		} else {
			hillIdx[i] = hillIdx[i+1]
		}
		if raw[i].valley <= raw[valIdx[i+1]].valley {
			valIdx[i] = int32(i)
		} else {
			valIdx[i] = valIdx[i+1]
		}
	}
	out := make([]refSegment, 0, 4)
	i := 0
	for i < m {
		a := int(hillIdx[i])
		b := int(valIdx[a])
		nodes := raw[i].nodes
		for j := i + 1; j <= b; j++ {
			nodes = refConcat(nodes, raw[j].nodes)
		}
		out = append(out, refSegment{hill: raw[a].hill, valley: raw[b].valley, nodes: nodes})
		i = b + 1
	}
	return out
}

// refRope is the seed pointer rope.
type refRope struct {
	leafVal     int32
	isLeaf      bool
	left, right *refRope
}

func refLeaf(v int) *refRope { return &refRope{leafVal: int32(v), isLeaf: true} }

func refConcat(a, b *refRope) *refRope {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &refRope{left: a, right: b}
}

func (r *refRope) appendTo(dst []int) []int {
	if r == nil {
		return dst
	}
	stack := []*refRope{r}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.isLeaf {
			dst = append(dst, int(cur.leafVal))
			continue
		}
		if cur.right != nil {
			stack = append(stack, cur.right)
		}
		if cur.left != nil {
			stack = append(stack, cur.left)
		}
	}
	return dst
}

// refPeakBottomUp is the naive bottom-up replay: the memory high-water
// mark of an in-tree traversal, as a from-first-principles loop
// independent of the schedule simulator.
func refPeakBottomUp(t *tree.Tree, order []int) int64 {
	var resident, peak int64
	for _, i := range order {
		if need := resident + t.F(i) + t.N(i); need > peak {
			peak = need
		}
		resident += t.F(i) - t.ChildFileSum(i)
	}
	return peak
}
