package hillvalley

import (
	"sync"

	"repro/internal/tree"
)

// seg is the internal segment representation: a hill–valley pair plus the
// rope of nodes executed during the segment (an index into the kernel's
// rope arena, or noRope when order tracking is off).
type seg struct {
	hill, valley int64
	rope         int32
}

// hillValley implements hillValleyer for the shared suffix-index pass.
func (s seg) hillValley() (int64, int64) { return s.hill, s.valley }

// ropeNode is one node of the arena-allocated rope: a leaf holds one tree
// node, an inner node concatenates two ropes. Indices into the arena slice
// replace pointers so the whole rope store is reusable across runs.
type ropeNode struct {
	left, right int32 // child rope indices; noRope on leaves
	leaf        int32 // tree node on leaves; -1 on inner nodes
}

const noRope = int32(-1)

// heapEntry is one child of the current combine in the k-way merge heap,
// keyed by the (hill − valley) of the child's next unmerged segment.
type heapEntry struct {
	diff  int64
	child int32
}

// mergesBefore orders the heap: larger (hill − valley) first, ties broken
// toward the smaller child ordinal. Within one child (hill − valley) is
// non-increasing by canonical construction, so this pop order is exactly
// the stable sort on decreasing (hill − valley) over the segments gathered
// in child order — the merge is bit-identical to the original
// sort.SliceStable implementation.
func mergesBefore(a, b heapEntry) bool {
	return a.diff > b.diff || (a.diff == b.diff && a.child < b.child)
}

// frame is one level of the iterative postorder walk.
type frame struct {
	node int32
	next int32 // next child ordinal to descend into
}

// Kernel computes canonical hill–valley profiles and Liu-optimal
// traversals with reusable internal buffers: after a warm-up run, Profile
// performs no steady-state allocations beyond its result. The zero Kernel
// is ready to use. A Kernel is not safe for concurrent use; the
// package-level Profile and Exact draw from a pool and are.
type Kernel struct {
	segs   []seg   // stack of live subtree profiles, postorder-aligned
	off    []int32 // per node: start of its profile in segs
	cnt    []int32 // per node: segment count of its profile
	raw    []seg   // merge scratch, execution order
	heap   []heapEntry
	pos    []int32 // per child ordinal: cursor into segs
	end    []int32 // per child ordinal: end of the child's profile
	parked []int64 // per child ordinal: current parked valley

	hillIdx []int32 // canonicalization scratch (suffix maxima indices)
	valIdx  []int32 // canonicalization scratch (suffix minima indices)

	ropes  []ropeNode
	frames []frame // postorder walk scratch
	flat   []int32 // rope flattening stack
}

// Profile appends the canonical hill–valley profile of the whole tree
// (bottom-up view) to dst and returns it: hills are non-increasing,
// valleys non-decreasing, the first hill is the tree's minimum memory and
// the last valley is the root's retained file.
func (k *Kernel) Profile(t *tree.Tree, dst []Segment) []Segment {
	k.run(t, false)
	for _, s := range k.rootSegs(t) {
		dst = append(dst, Segment{Hill: s.hill, Valley: s.valley})
	}
	return dst
}

// Exact runs Liu's exact MinMemory algorithm: it returns the minimum
// memory over all traversals of t and appends to order a bottom-up
// (in-tree) traversal achieving it. Reverse the order with
// tree.ReverseOrder for the top-down view.
func (k *Kernel) Exact(t *tree.Tree, order []int) (int64, []int) {
	k.run(t, true)
	segs := k.rootSegs(t)
	// Hill of the first canonical segment is the tree's minimum memory.
	mem := segs[0].hill
	for _, s := range segs {
		order = k.appendRope(s.rope, order)
	}
	return mem, order
}

// rootSegs returns the root profile region of the segment stack.
func (k *Kernel) rootSegs(t *tree.Tree) []seg {
	root := t.Root()
	return k.segs[k.off[root] : k.off[root]+int32(k.cnt[root])]
}

// run computes the profile of every subtree bottom-up. Live profiles form
// a stack aligned with the postorder walk: when a node is combined, its
// children's profiles sit contiguously on top in child order, and the
// combine replaces them in place by the node's own profile.
func (k *Kernel) run(t *tree.Tree, track bool) {
	p := t.Len()
	k.segs = k.segs[:0]
	k.ropes = k.ropes[:0]
	if cap(k.off) < p {
		k.off = make([]int32, p)
		k.cnt = make([]int32, p)
	}
	k.off, k.cnt = k.off[:p], k.cnt[:p]
	k.frames = append(k.frames[:0], frame{node: int32(t.Root())})
	for len(k.frames) > 0 {
		fr := &k.frames[len(k.frames)-1]
		v := int(fr.node)
		if int(fr.next) < t.NumChildren(v) {
			c := t.Child(v, int(fr.next))
			fr.next++
			k.frames = append(k.frames, frame{node: int32(c)})
			continue
		}
		k.frames = k.frames[:len(k.frames)-1]
		k.combine(t, v, track)
	}
}

// combine builds the canonical profile of the subtree rooted at v from the
// children profiles on top of the segment stack, releasing them.
func (k *Kernel) combine(t *tree.Tree, v int, track bool) {
	nc := t.NumChildren(v)
	if nc == 0 {
		k.off[v] = int32(len(k.segs))
		k.cnt[v] = 1
		k.segs = append(k.segs, seg{hill: t.MemReq(v), valley: t.F(v), rope: k.leafRope(v, track)})
		return
	}
	if nc > cap(k.pos) {
		k.pos = make([]int32, nc)
		k.end = make([]int32, nc)
		k.parked = make([]int64, nc)
	}
	k.pos, k.end, k.parked = k.pos[:nc], k.end[:nc], k.parked[:nc]
	base := int(k.off[t.Child(v, 0)])
	k.heap = k.heap[:0]
	for c := 0; c < nc; c++ {
		child := t.Child(v, c)
		k.pos[c] = k.off[child]
		k.end[c] = k.off[child] + k.cnt[child]
		k.parked[c] = 0
		head := &k.segs[k.pos[c]]
		k.heapPush(heapEntry{diff: head.hill - head.valley, child: int32(c)})
	}
	// Replay the k-way merge, turning each child's subtree-local hills into
	// absolute peaks over sum, the Σ of the children's current valleys.
	k.raw = k.raw[:0]
	var sum int64
	for len(k.heap) > 0 {
		c := int(k.heapPop().child)
		s := k.segs[k.pos[c]]
		prev := k.parked[c]
		peak := sum - prev + s.hill
		sum += s.valley - prev
		k.parked[c] = s.valley
		k.raw = append(k.raw, seg{hill: peak, valley: sum, rope: s.rope})
		if k.pos[c]++; k.pos[c] < k.end[c] {
			head := &k.segs[k.pos[c]]
			k.heapPush(heapEntry{diff: head.hill - head.valley, child: int32(c)})
		}
	}
	// The node's own step: all children files resident (sum = Σ f_c), plus
	// f(v) and n(v); afterwards only f(v) remains.
	k.raw = append(k.raw, seg{hill: sum + t.F(v) + t.N(v), valley: t.F(v), rope: k.leafRope(v, track)})
	// Re-canonicalize in place of the released children profiles.
	k.segs = k.segs[:base]
	k.off[v] = int32(base)
	k.canonAppend(track)
	k.cnt[v] = int32(len(k.segs) - base)
}

// canonAppend canonicalizes the raw scratch onto the segment stack,
// concatenating segment ropes when order tracking is on.
func (k *Kernel) canonAppend(track bool) {
	m := len(k.raw)
	if cap(k.hillIdx) < m {
		k.hillIdx = make([]int32, m)
		k.valIdx = make([]int32, m)
	}
	hillIdx, valIdx := k.hillIdx[:m], k.valIdx[:m]
	fillSuffixIndices(k.raw, hillIdx, valIdx)
	i := 0
	for i < m {
		a := int(hillIdx[i])
		b := int(valIdx[a])
		r := k.raw[i].rope
		if track {
			for j := i + 1; j <= b; j++ {
				r = k.concatRopes(r, k.raw[j].rope)
			}
		}
		k.segs = append(k.segs, seg{hill: k.raw[a].hill, valley: k.raw[b].valley, rope: r})
		i = b + 1
	}
}

// leafRope allocates a single-node rope in the arena, or noRope when order
// tracking is off.
func (k *Kernel) leafRope(v int, track bool) int32 {
	if !track {
		return noRope
	}
	k.ropes = append(k.ropes, ropeNode{left: noRope, right: noRope, leaf: int32(v)})
	return int32(len(k.ropes) - 1)
}

// concatRopes allocates the concatenation of two ropes in the arena.
func (k *Kernel) concatRopes(a, b int32) int32 {
	k.ropes = append(k.ropes, ropeNode{left: a, right: b, leaf: -1})
	return int32(len(k.ropes) - 1)
}

// appendRope flattens rope r into dst in left-to-right order using an
// explicit stack: ropes can be deep on chain-like trees.
func (k *Kernel) appendRope(r int32, dst []int) []int {
	k.flat = append(k.flat[:0], r)
	for len(k.flat) > 0 {
		cur := k.ropes[k.flat[len(k.flat)-1]]
		k.flat = k.flat[:len(k.flat)-1]
		if cur.leaf >= 0 {
			dst = append(dst, int(cur.leaf))
			continue
		}
		// Push right first so left is emitted first.
		k.flat = append(k.flat, cur.right, cur.left)
	}
	return dst
}

// heapPush inserts e into the merge heap.
func (k *Kernel) heapPush(e heapEntry) {
	k.heap = append(k.heap, e)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !mergesBefore(k.heap[i], k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

// heapPop removes and returns the next entry in merge order.
func (k *Kernel) heapPop() heapEntry {
	top := k.heap[0]
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	i := 0
	for {
		l, r, best := 2*i+1, 2*i+2, i
		if l < last && mergesBefore(k.heap[l], k.heap[best]) {
			best = l
		}
		if r < last && mergesBefore(k.heap[r], k.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		k.heap[i], k.heap[best] = k.heap[best], k.heap[i]
		i = best
	}
	return top
}

// kernels pools Kernel instances for the package-level entry points, so
// concurrent batch evaluation reuses warm buffers instead of reallocating
// per run.
var kernels = sync.Pool{New: func() any { return new(Kernel) }}

// Profile computes the canonical hill–valley profile of the whole tree
// (bottom-up view) using a pooled kernel. Safe for concurrent use.
func Profile(t *tree.Tree) []Segment {
	k := kernels.Get().(*Kernel)
	out := k.Profile(t, make([]Segment, 0, 4))
	kernels.Put(k)
	return out
}

// Exact runs Liu's exact MinMemory algorithm using a pooled kernel: the
// minimum memory over all traversals and a bottom-up (in-tree) traversal
// achieving it. Safe for concurrent use.
func Exact(t *tree.Tree) (int64, []int) {
	k := kernels.Get().(*Kernel)
	mem, order := k.Exact(t, make([]int, 0, t.Len()))
	kernels.Put(k)
	return mem, order
}
