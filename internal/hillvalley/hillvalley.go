// Package hillvalley is the solver kernel shared by the MinMemory and
// MinIO sides of the reproduction: Liu's canonical hill–valley profile
// machinery (Liu, "An application of generalized tree pebbling to sparse
// matrix factorization", SIAM J. Algebraic Discrete Methods 8(3), 1987),
// extracted from internal/traversal so that both the exact Liu solver and
// the schedule simulator's peak accounting consume one implementation.
//
// A memory curve — the resident memory of a traversal sampled at every
// step — canonicalizes into segments (h₁,v₁),…,(h_k,v_k) with
// non-increasing hills h and non-decreasing valleys v: memory rises to
// h_i during segment i and can be parked at v_i when it ends. Two
// operations make this a solver kernel:
//
//   - Canonicalize turns any execution-ordered (peak, end-valley) curve
//     into its canonical form. The schedule simulator uses it to report
//     the hill–valley decomposition of a replay.
//   - Kernel computes the canonical profile of every subtree bottom-up
//     and, from the root profile, Liu's exact MinMemory value and an
//     optimal traversal. Children profiles are combined by a true k-way
//     heap merge of their segments in non-increasing (hill−valley) order —
//     Liu's theorem shows this interleaving is optimal — followed by the
//     node's own assembly step and re-canonicalization.
//
// The Kernel recycles every internal buffer (segment stack, merge heap,
// rope arena, canonicalization scratch) across runs, so a steady-state
// Profile pass performs no per-node allocations: the whole combine runs in
// O(S log c) time for S segments and maximum fan-out c, with the per-node
// map and per-node sort of the original implementation gone. The package
// functions Profile and Exact draw kernels from an internal pool and are
// safe for concurrent use.
package hillvalley

// Segment is one canonical hill–valley segment: memory rises to Hill
// during the segment and can be parked at Valley when it ends.
type Segment struct {
	Hill   int64
	Valley int64
}

// Canonicalize turns an execution-ordered list of (peak, end-valley)
// segments into the canonical hill–valley form: hills are suffix maxima,
// valleys the suffix minima that follow them, so the result has
// non-increasing hills and non-decreasing valleys. The input is read only;
// the result is appended to dst (pass nil to allocate). Canonicalize of an
// empty curve is empty.
func Canonicalize(raw []Segment, dst []Segment) []Segment {
	m := len(raw)
	if m == 0 {
		return dst
	}
	// First index of the suffix maximum hill and of the suffix minimum
	// valley, computed right to left so the whole pass is O(m).
	hillIdx := make([]int32, m)
	valIdx := make([]int32, m)
	fillSuffixIndices(raw, hillIdx, valIdx)
	i := 0
	for i < m {
		// Canonical hill: the max peak over the suffix, at its first
		// occurrence a. Canonical valley: the min end-valley at or after a,
		// at its first occurrence b. Segments [i, b] collapse into one.
		a := int(hillIdx[i])
		b := int(valIdx[a])
		dst = append(dst, Segment{Hill: raw[a].Hill, Valley: raw[b].Valley})
		i = b + 1
	}
	return dst
}

// hillValleyer abstracts the two segment representations — the exported
// Segment and the kernel's internal seg — over one shared suffix-index
// pass, so the first-occurrence rules cannot drift between them.
type hillValleyer interface {
	hillValley() (hill, valley int64)
}

// hillValley implements hillValleyer.
func (s Segment) hillValley() (int64, int64) { return s.Hill, s.Valley }

// fillSuffixIndices computes, for every position of raw, the first index of
// the suffix maximum hill and of the suffix minimum valley.
func fillSuffixIndices[S hillValleyer](raw []S, hillIdx, valIdx []int32) {
	m := len(raw)
	hillIdx[m-1], valIdx[m-1] = int32(m-1), int32(m-1)
	for i := m - 2; i >= 0; i-- {
		hi, vi := raw[i].hillValley()
		hNext, _ := raw[hillIdx[i+1]].hillValley()
		_, vNext := raw[valIdx[i+1]].hillValley()
		if hi >= hNext {
			hillIdx[i] = int32(i)
		} else {
			hillIdx[i] = hillIdx[i+1]
		}
		if vi <= vNext {
			valIdx[i] = int32(i)
		} else {
			valIdx[i] = valIdx[i+1]
		}
	}
}
