package hillvalley

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func benchTree(b *testing.B, nodes int) *tree.Tree {
	b.Helper()
	rng := rand.New(rand.NewSource(2011))
	tr, err := tree.Random(rng, tree.RandomOptions{
		Nodes: nodes, MaxF: 100, MaxN: 40, Attach: tree.AttachPreferential,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkLiuProfile tracks the kernel's profile pass against the seed
// implementation it replaced: the Kernel variant reuses arena buffers and
// the heap merge (no per-node map, no per-node sort allocation), so its
// allocs/op must stay far below the Reference variant.
func BenchmarkLiuProfile(b *testing.B) {
	tr := benchTree(b, 20_000)
	b.Run("Kernel", func(b *testing.B) {
		var k Kernel
		var dst []Segment
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = k.Profile(tr, dst[:0])
		}
	})
	b.Run("Pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Profile(tr)
		}
	})
	b.Run("Reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = refProfile(tr)
		}
	})
}

// BenchmarkLiuExact times the full exact solve (profile + order ropes).
func BenchmarkLiuExact(b *testing.B) {
	tr := benchTree(b, 20_000)
	b.Run("Kernel", func(b *testing.B) {
		var k Kernel
		var order []int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, order = k.Exact(tr, order[:0])
		}
	})
	b.Run("Reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = refExact(tr)
		}
	})
}
