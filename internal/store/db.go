package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
)

// Options configures a DB. The zero value selects the defaults.
type Options struct {
	// PageSize is the data page size in bytes, fixed at creation and read
	// back from the file afterwards. 0 selects DefaultPageSize.
	PageSize int
	// MaxCachedPages bounds the clean-page cache — the resident footprint
	// of the index and of recently read records. 0 selects 512 pages
	// (2 MiB at the default page size).
	MaxCachedPages int
	// AutoCommitPages bounds the open transaction: beyond this many dirty
	// pages the store commits on its own, so an unbounded ingest keeps a
	// bounded memory footprint and a bounded crash-rollback window. 0
	// selects 512 pages.
	AutoCommitPages int
}

func (o Options) withDefaults() Options {
	if o.MaxCachedPages == 0 {
		o.MaxCachedPages = 512
	}
	if o.AutoCommitPages == 0 {
		o.AutoCommitPages = 512
	}
	return o
}

// Stats is a point-in-time snapshot of the engine's counters, for tests
// and operability.
type Stats struct {
	// PagesRead counts checksum-verified page fetches from the backing.
	PagesRead int64
	// PagesWritten counts pages written out by commits.
	PagesWritten int64
	// Commits counts durable commit records written.
	Commits int64
	// CachedPages is the current clean-page cache population.
	CachedPages int
	// DirtyPages is the open transaction's page count.
	DirtyPages int
	// FilePages is the committed file extent in pages.
	FilePages int
	// FreePages is the number of pages currently awaiting reuse.
	FreePages int
	// Entries is the record count.
	Entries int64
}

// DB is a paged key→value store. It is not safe for concurrent use;
// callers serialize (the schedule adapter holds a mutex).
type DB struct {
	pg        *pager
	opt       Options
	active    uint32 // open shared data page being appended to (0 = none)
	activeOff int
	scratch   []byte
	closed    bool
}

// Open opens (creating if absent) the paged store at path.
func Open(path string, opt Options) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	db, err := OpenBacking(fileBacking{f: f}, opt)
	if err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// OpenBacking opens a paged store over an arbitrary Backing.
func OpenBacking(b Backing, opt Options) (*DB, error) {
	opt = opt.withDefaults()
	pg, err := openPager(b, opt)
	if err != nil {
		return nil, err
	}
	return &DB{pg: pg, opt: opt}, nil
}

func (db *DB) usable() error {
	if db.closed {
		return fmt.Errorf("store: use of closed store")
	}
	return db.pg.err
}

func hashKey(key []byte) key32 { return sha256.Sum256(key) }

// appendRecord encodes a record (length-prefixed key, length-prefixed
// value) into dst.
func appendRecord(dst, key, val []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	return append(dst, val...)
}

// decodeRecord splits a record back into key and value (views into rec).
func decodeRecord(rec []byte) (key, val []byte, err error) {
	fail := func() ([]byte, []byte, error) { return nil, nil, fmt.Errorf("store: malformed record") }
	kl, n := binary.Uvarint(rec)
	if n <= 0 || kl > uint64(len(rec)-n) {
		return fail()
	}
	key, rec = rec[n:n+int(kl)], rec[n+int(kl):]
	vl, n := binary.Uvarint(rec)
	if n <= 0 || vl != uint64(len(rec)-n) {
		return fail()
	}
	return key, rec[n:], nil
}

// Put maps key to val, replacing any previous value. The write is durable
// after the next Sync, Close, or automatic commit.
func (db *DB) Put(key, val []byte) error {
	if err := db.usable(); err != nil {
		return err
	}
	db.scratch = appendRecord(db.scratch[:0], key, val)
	var (
		l   loc
		err error
	)
	if len(db.scratch) <= db.pg.payloadCap() {
		l, err = db.placeInline(db.scratch)
	} else {
		l, err = db.placeOverflow(db.scratch)
	}
	if err != nil {
		return err
	}
	old, replaced, err := db.pg.btreePut(hashKey(key), l)
	if err != nil {
		return err
	}
	if replaced {
		db.freeRecord(old)
	} else {
		db.pg.cur.entryCount++
	}
	if len(db.pg.dirty) >= db.opt.AutoCommitPages {
		return db.commit()
	}
	return nil
}

// placeInline appends the record to the open shared data page, sealing it
// and starting a fresh one when the record does not fit the remainder.
func (db *DB) placeInline(rec []byte) (loc, error) {
	if db.active == 0 || db.activeOff+len(rec) > db.pg.payloadCap() {
		p := db.pg.alloc(pageData)
		db.active, db.activeOff = p.no, 0
	}
	p, err := db.pg.read(db.active, pageData)
	if err != nil {
		return loc{}, err
	}
	off := db.activeOff
	copy(p.payload()[off:], rec)
	db.activeOff += len(rec)
	p.setCount(db.activeOff)
	db.pg.live[db.active]++
	return loc{page: db.active, off: uint16(off), length: uint32(len(rec))}, nil
}

// placeOverflow writes a record too large for a data page into its own
// page chain.
func (db *DB) placeOverflow(rec []byte) (loc, error) {
	capacity := db.pg.payloadCap()
	var head uint32
	var prev *page
	total := len(rec)
	for len(rec) > 0 {
		n := len(rec)
		if n > capacity {
			n = capacity
		}
		p := db.pg.alloc(pageOverflow)
		copy(p.payload(), rec[:n])
		p.setCount(n)
		rec = rec[n:]
		if prev == nil {
			head = p.no
		} else {
			prev.setNext(p.no)
		}
		prev = p
	}
	return loc{page: head, off: overflowOff, length: uint32(total)}, nil
}

// readRecord fetches a record's bytes by location. The returned slice
// aliases cache pages for inline records; callers copy what they keep.
func (db *DB) readRecord(l loc) ([]byte, error) {
	if l.off != overflowOff {
		p, err := db.pg.read(l.page, pageData)
		if err != nil {
			return nil, err
		}
		end := int(l.off) + int(l.length)
		if end > len(p.payload()) {
			return nil, errCorrupt(l.page, "record overruns the page")
		}
		return p.payload()[l.off:end], nil
	}
	out := make([]byte, 0, l.length)
	no := l.page
	for no != 0 && len(out) < int(l.length) {
		p, err := db.pg.read(no, pageOverflow)
		if err != nil {
			return nil, err
		}
		n := p.count()
		if n > len(p.payload()) {
			return nil, errCorrupt(no, "overflow chunk overruns the page")
		}
		out = append(out, p.payload()[:n]...)
		no = p.next()
	}
	if len(out) != int(l.length) {
		return nil, errCorrupt(l.page, "overflow chain shorter than the record")
	}
	return out, nil
}

// freeRecord retires a record's storage: an overflow chain is freed page
// by page; an inline record decrements its page's live count, and the page
// itself is freed when the last record on it dies — deletion reclaims
// space in place, no rewrite of anything else.
func (db *DB) freeRecord(l loc) {
	if l.off == overflowOff {
		for no := l.page; no != 0; {
			p, err := db.pg.read(no, pageOverflow)
			if err != nil {
				return // best effort: damage costs leaked pages, never data
			}
			next := p.next()
			db.pg.free(no)
			no = next
		}
		return
	}
	if n := db.pg.live[l.page]; n > 1 {
		db.pg.live[l.page] = n - 1
		return
	}
	delete(db.pg.live, l.page)
	if l.page == db.active {
		db.active, db.activeOff = 0, 0
	}
	db.pg.free(l.page)
}

// Get returns the value stored under key. A page that cannot be read or
// verified surfaces as an error, never as another record's bytes.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	if err := db.usable(); err != nil {
		return nil, false, err
	}
	l, found, err := db.pg.btreeGet(hashKey(key))
	if err != nil || !found {
		return nil, false, err
	}
	rec, err := db.readRecord(l)
	if err != nil {
		return nil, false, err
	}
	k, v, err := decodeRecord(rec)
	if err != nil {
		return nil, false, err
	}
	if !bytes.Equal(k, key) {
		return nil, false, nil // hash collision: not this key
	}
	return append([]byte(nil), v...), true, nil
}

// Delete removes key, reporting whether it was present.
func (db *DB) Delete(key []byte) (bool, error) {
	if err := db.usable(); err != nil {
		return false, err
	}
	old, found, err := db.pg.btreeDelete(hashKey(key))
	if err != nil || !found {
		return false, err
	}
	db.freeRecord(old)
	db.pg.cur.entryCount--
	if len(db.pg.dirty) >= db.opt.AutoCommitPages {
		return true, db.commit()
	}
	return true, nil
}

// Scan visits every record in index (hash) order. The key and value slices
// are only valid during the callback.
func (db *DB) Scan(fn func(key, val []byte) error) error {
	if err := db.usable(); err != nil {
		return err
	}
	return db.pg.btreeWalk(func(h key32, l loc) error {
		rec, err := db.readRecord(l)
		if err != nil {
			return err
		}
		k, v, err := decodeRecord(rec)
		if err != nil {
			return err
		}
		return fn(k, v)
	})
}

// Len returns the record count (including uncommitted writes).
func (db *DB) Len() int64 { return int64(db.pg.cur.entryCount) }

// UserMeta returns the caller-owned 64-bit slot carried by every commit
// record (the schedule adapter keeps its recency clock there).
func (db *DB) UserMeta() uint64 { return db.pg.cur.userMeta }

// SetUserMeta updates the caller-owned slot; durable at the next commit.
func (db *DB) SetUserMeta(v uint64) { db.pg.cur.userMeta = v }

// commit seals the open data page and makes the transaction durable.
func (db *DB) commit() error {
	db.active, db.activeOff = 0, 0
	return db.pg.commit()
}

// Sync commits the open transaction; after it returns, every completed Put
// and Delete is durable.
func (db *DB) Sync() error {
	if err := db.usable(); err != nil {
		return err
	}
	return db.commit()
}

// Close commits and releases the backing. Closing twice is an error-free
// no-op only for the backing state; use Sync for mid-life durability.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.pg.err; err != nil {
		db.pg.b.Close()
		return err
	}
	if err := db.commit(); err != nil {
		db.pg.b.Close()
		return err
	}
	return db.pg.b.Close()
}

// Stats snapshots the engine counters.
func (db *DB) Stats() Stats {
	s := db.pg.stats
	s.CachedPages = len(db.pg.clean)
	s.DirtyPages = len(db.pg.dirty)
	s.FilePages = int(db.pg.cur.pageCount)
	s.FreePages = len(db.pg.reusable) + len(db.pg.pending)
	s.Entries = int64(db.pg.cur.entryCount)
	return s
}

// PageSize returns the store's page size in bytes.
func (db *DB) PageSize() int { return db.pg.pageSize }
