//go:build race

package store

// raceEnabled reports whether the race detector is instrumenting this test
// binary; its shadow memory would fail the footprint pins.
const raceEnabled = true
