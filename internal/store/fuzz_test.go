package store

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzPagedStoreOps drives a random put/get/delete/sync/reopen schedule
// against the paged store and a plain map model, requiring identical
// results at every step and after a final full scan. The key space is kept
// small so overwrites, deletes of live keys and page churn dominate.
func FuzzPagedStoreOps(f *testing.F) {
	f.Add([]byte{0, 8, 16, 2, 3, 4})
	f.Add([]byte{1, 1, 1, 4, 1, 2, 2, 2, 4, 0})
	f.Add(bytes.Repeat([]byte{0, 5, 2, 5, 4}, 8))
	f.Add([]byte{253, 7, 130, 64, 201, 4, 4, 33, 17, 90, 255, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		b := NewMemBacking()
		opt := Options{PageSize: MinPageSize, MaxCachedPages: 4, AutoCommitPages: 4}
		db, err := OpenBacking(b, opt)
		if err != nil {
			t.Fatal(err)
		}
		model := map[string]string{}
		key := func(op byte) string { return fmt.Sprintf("k%d", (op>>3)%16) }
		for i, op := range ops {
			k := key(op)
			switch op % 5 {
			case 0: // small inline record
				v := fmt.Sprintf("v%d-%d", i, op)
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			case 1: // record large enough to overflow a page
				v := string(bytes.Repeat([]byte{op}, MinPageSize/2+int(op)*5))
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			case 2:
				ok, err := db.Delete([]byte(k))
				if err != nil {
					t.Fatal(err)
				}
				_, want := model[k]
				if ok != want {
					t.Fatalf("op %d: delete %q = %v, model says %v", i, k, ok, want)
				}
				delete(model, k)
			case 3:
				v, ok, err := db.Get([]byte(k))
				if err != nil {
					t.Fatal(err)
				}
				want, inModel := model[k]
				if ok != inModel || (ok && string(v) != want) {
					t.Fatalf("op %d: get %q = %q, %v; model has %q, %v", i, k, v, ok, want, inModel)
				}
			case 4: // close (commits) and reopen over the same bytes
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}
				if db, err = OpenBacking(b, opt); err != nil {
					t.Fatal(err)
				}
			}
		}
		if int(db.Len()) != len(model) {
			t.Fatalf("Len = %d, model has %d", db.Len(), len(model))
		}
		seen := map[string]string{}
		if err := db.Scan(func(k, v []byte) error {
			seen[string(k)] = string(v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(model) {
			t.Fatalf("scan saw %d rows, model has %d", len(seen), len(model))
		}
		for k, want := range model {
			if seen[k] != want {
				t.Fatalf("scan %q = %q, want %q", k, seen[k], want)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
