// Package store is the out-of-core key→value engine behind the paged row
// store: a single file of fixed-size checksummed pages holding binary
// records in shared data pages, indexed by an on-disk copy-on-write B-tree
// keyed on the SHA-256 of the record key. Both the index and the data page
// in on demand through a bounded page cache, so a store holding hundreds of
// millions of records keeps a small constant resident footprint — the
// out-of-core discipline the source paper applies to tree traversals,
// applied to our own result cache.
//
// Crash safety follows the classic dual-meta design: every mutation goes to
// freshly allocated pages (committed pages are never overwritten in place),
// writes are ordered data pages before index pages before a fsync, and the
// transaction becomes visible only when one of the two alternating meta
// slots — the commit record — lands with a valid checksum. A crash at any
// byte rolls the file back to the previous commit; pages freed by a
// transaction re-enter circulation through the free list only after that
// transaction's commit record is durable, so the rollback state is always
// intact. Deleting a record never rewrites the file: the record's bytes are
// accounted dead in the space map and its data page returns to the free
// list once every record on it has died.
//
// The engine is deliberately generic — keys and values are byte strings —
// so the schedule package can layer its row codec (and the cache's LRU
// bound) on top without an import cycle.
package store
