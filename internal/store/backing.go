package store

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Backing is the I/O surface a paged store runs on: a flat addressable byte
// array with explicit durability points. The real implementation is a file
// (Open); tests inject a MemBacking to run the store in memory and to
// simulate crashes at arbitrary write boundaries.
type Backing interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes every completed WriteAt durable before returning.
	Sync() error
	// Size returns the current extent in bytes.
	Size() (int64, error)
	Close() error
}

// fileBacking adapts an os.File to Backing.
type fileBacking struct{ f *os.File }

func (b fileBacking) ReadAt(p []byte, off int64) (int, error)  { return b.f.ReadAt(p, off) }
func (b fileBacking) WriteAt(p []byte, off int64) (int, error) { return b.f.WriteAt(p, off) }
func (b fileBacking) Sync() error                              { return b.f.Sync() }
func (b fileBacking) Close() error                             { return b.f.Close() }

func (b fileBacking) Size() (int64, error) {
	st, err := b.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// writeOp is one journaled WriteAt, kept so MemBacking can replay any byte
// prefix of the write history — the failpoint behind the crash tests.
type writeOp struct {
	off  int64
	data []byte
}

// MemBacking is an in-memory Backing that journals every write. Beyond
// serving reads and writes like a file, it can reconstruct the exact byte
// image the backing had after any prefix of the journaled write bytes
// (Snapshot), so a crash-recovery test can "kill" the store at every byte
// boundary of a commit without forking processes.
type MemBacking struct {
	mu      sync.Mutex
	data    []byte
	journal []writeOp
	syncs   []int64 // journal byte totals at each Sync call
	total   int64   // journal bytes written so far
}

// NewMemBacking returns an empty in-memory backing.
func NewMemBacking() *MemBacking { return &MemBacking{} }

// ReadAt implements Backing.
func (m *MemBacking) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements Backing, journaling the write.
func (m *MemBacking) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if grow := off + int64(len(p)); grow > int64(len(m.data)) {
		m.data = append(m.data, make([]byte, grow-int64(len(m.data)))...)
	}
	copy(m.data[off:], p)
	m.journal = append(m.journal, writeOp{off: off, data: append([]byte(nil), p...)})
	m.total += int64(len(p))
	return len(p), nil
}

// Sync implements Backing, recording a durability point in the journal.
func (m *MemBacking) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncs = append(m.syncs, m.total)
	return nil
}

// Size implements Backing.
func (m *MemBacking) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.data)), nil
}

// Close implements Backing; the contents survive so the backing can be
// reopened, as a file would be.
func (m *MemBacking) Close() error { return nil }

// JournalBytes returns the total bytes written so far, the upper bound for
// Snapshot prefixes.
func (m *MemBacking) JournalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// SyncPoints returns the journal byte totals at which Sync was called: a
// crash after SyncPoints()[i] bytes is a crash after the i-th durability
// point.
func (m *MemBacking) SyncPoints() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int64(nil), m.syncs...)
}

// Snapshot replays the write journal from an empty backing through exactly
// prefix bytes — a write straddling the cut is applied partially, torn
// mid-page like a real crash — and returns the resulting image as a fresh
// MemBacking. The receiver is unchanged.
func (m *MemBacking) Snapshot(prefix int64) *MemBacking {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prefix > m.total {
		panic(fmt.Sprintf("store: snapshot prefix %d beyond the %d journaled bytes", prefix, m.total))
	}
	out := &MemBacking{}
	remaining := prefix
	for _, op := range m.journal {
		if remaining <= 0 {
			break
		}
		data := op.data
		if int64(len(data)) > remaining {
			data = data[:remaining]
		}
		if grow := op.off + int64(len(data)); grow > int64(len(out.data)) {
			out.data = append(out.data, make([]byte, grow-int64(len(out.data)))...)
		}
		copy(out.data[op.off:], data)
		remaining -= int64(len(data))
	}
	return out
}
