package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sort"
)

// meta is the commit record: the complete durable root state of the file.
// Two alternating page slots (pages zero and one) hold the two most recent
// commits; the valid slot with the higher sequence wins on open, so a crash
// anywhere — including mid-way through writing a meta slot — rolls the file
// back to the previous commit.
type meta struct {
	seq        uint64
	root       uint32 // B-tree root page (0 = empty tree)
	pageCount  uint32 // committed file extent, in pages
	freeHead   uint32 // free-list chain head (0 = none)
	spaceHead  uint32 // space-map chain head (0 = none)
	entryCount uint64
	userMeta   uint64
}

// metaMagic opens every meta payload; the first byte matches the repo-wide
// binary convention (non-ASCII, so the file can never be mistaken for text).
var metaMagic = [4]byte{0xAB, 'P', 'G', 1}

// metaPayloadLen is the encoded meta size inside the page payload.
const metaPayloadLen = 4 + 4 + 8 + 4 + 4 + 4 + 4 + 8 + 8

func encodeMeta(p *page, pageSize int, m meta) {
	pl := p.payload()
	copy(pl, metaMagic[:])
	binary.LittleEndian.PutUint32(pl[4:], uint32(pageSize))
	binary.LittleEndian.PutUint64(pl[8:], m.seq)
	binary.LittleEndian.PutUint32(pl[16:], m.root)
	binary.LittleEndian.PutUint32(pl[20:], m.pageCount)
	binary.LittleEndian.PutUint32(pl[24:], m.freeHead)
	binary.LittleEndian.PutUint32(pl[28:], m.spaceHead)
	binary.LittleEndian.PutUint64(pl[32:], m.entryCount)
	binary.LittleEndian.PutUint64(pl[40:], m.userMeta)
}

func decodeMeta(p *page) (meta, int, error) {
	if p.typ() != pageMeta {
		return meta{}, 0, fmt.Errorf("store: page %d is not a meta page", p.no)
	}
	pl := p.payload()
	if len(pl) < metaPayloadLen || [4]byte(pl[:4]) != metaMagic {
		return meta{}, 0, fmt.Errorf("store: meta slot %d has no magic", p.no)
	}
	pageSize := int(binary.LittleEndian.Uint32(pl[4:]))
	m := meta{
		seq:        binary.LittleEndian.Uint64(pl[8:]),
		root:       binary.LittleEndian.Uint32(pl[16:]),
		pageCount:  binary.LittleEndian.Uint32(pl[20:]),
		freeHead:   binary.LittleEndian.Uint32(pl[24:]),
		spaceHead:  binary.LittleEndian.Uint32(pl[28:]),
		entryCount: binary.LittleEndian.Uint64(pl[32:]),
		userMeta:   binary.LittleEndian.Uint64(pl[40:]),
	}
	return m, pageSize, nil
}

// pager owns the page-level machinery: the backing, the bounded clean-page
// cache, the dirty set of the open transaction, allocation (free-list reuse
// plus file extension), the copy-on-write discipline and the dual-meta
// commit protocol. It is not safe for concurrent use; DB serializes.
type pager struct {
	b        Backing
	pageSize int
	maxClean int

	clean map[uint32]*list.Element // committed pages cached in memory
	order *list.List               // front = most recently used clean page

	dirty map[uint32]*page // pages written by the open transaction
	txNew map[uint32]bool  // page numbers allocated by the open transaction

	committed meta // state of the last durable commit
	cur       meta // working state (root, pageCount, entryCount, userMeta)

	reusable []uint32 // free pages that may be allocated this transaction
	pending  []uint32 // pages freed this transaction (reusable next one)

	// live tracks surviving records per shared data page; a page drops to
	// the free list when its count reaches zero. Persisted as the space-map
	// chain at each commit.
	live map[uint32]uint16

	freeChain  []uint32 // pages of the currently committed free-list chain
	spaceChain []uint32 // pages of the currently committed space-map chain

	stats Stats
	err   error // sticky: a failed commit poisons the pager
}

// payloadCap is the usable bytes per page.
func (pg *pager) payloadCap() int { return pg.pageSize - pageHeaderSize }

func newPage(no uint32, pageSize int) *page {
	return &page{no: no, buf: make([]byte, pageSize)}
}

// openPager reads (or initializes) the backing and loads the free list and
// space map of the winning commit.
func openPager(b Backing, opt Options) (*pager, error) {
	pg := &pager{
		b:        b,
		pageSize: opt.PageSize,
		maxClean: opt.MaxCachedPages,
		clean:    map[uint32]*list.Element{},
		order:    list.New(),
		dirty:    map[uint32]*page{},
		txNew:    map[uint32]bool{},
		live:     map[uint32]uint16{},
	}
	size, err := b.Size()
	if err != nil {
		return nil, fmt.Errorf("store: size backing: %w", err)
	}
	if size == 0 {
		return pg, pg.init()
	}
	if size < int64(MinPageSize) {
		return nil, fmt.Errorf("store: %d-byte file is not a paged store", size)
	}
	best := -1
	var bestMeta meta
	for slot := 0; slot < 2; slot++ {
		m, ps, err := readMetaSlot(b, slot)
		if err != nil {
			continue
		}
		if best == -1 || m.seq > bestMeta.seq {
			best, bestMeta, pg.pageSize = slot, m, ps
		}
	}
	if best == -1 {
		return nil, fmt.Errorf("store: no valid commit record (not a paged store, or both meta slots damaged)")
	}
	pg.committed, pg.cur = bestMeta, bestMeta
	pg.loadChains()
	return pg, nil
}

// Meta slots are MinPageSize-sized page images at the fixed offsets 0 and
// MinPageSize, whatever the data page size — so a torn slot can never hide
// the other one. Data pages zero and one stay reserved to cover the slots'
// extent.
func metaSlotOffset(slot int) int64 { return int64(slot) * MinPageSize }

// readMetaSlot decodes and verifies one fixed-offset meta slot.
func readMetaSlot(b Backing, slot int) (meta, int, error) {
	p := newPage(uint32(slot), MinPageSize)
	if _, err := b.ReadAt(p.buf, metaSlotOffset(slot)); err != nil {
		return meta{}, 0, err
	}
	if err := p.verify(); err != nil {
		return meta{}, 0, err
	}
	m, ps, err := decodeMeta(p)
	if err != nil {
		return meta{}, 0, err
	}
	if ps < MinPageSize || ps > MaxPageSize {
		return meta{}, 0, fmt.Errorf("store: implausible page size %d", ps)
	}
	return m, ps, nil
}

// writeMetaSlot seals and writes a commit record into its slot.
func (pg *pager) writeMetaSlot(m meta) error {
	slot := int(m.seq % 2)
	p := newPage(uint32(slot), MinPageSize)
	p.setTyp(pageMeta)
	encodeMeta(p, pg.pageSize, m)
	p.seal()
	_, err := pg.b.WriteAt(p.buf, metaSlotOffset(slot))
	return err
}

// init lays down a fresh empty store: one valid meta slot, two-page extent.
func (pg *pager) init() error {
	if pg.pageSize == 0 {
		pg.pageSize = DefaultPageSize
	}
	if pg.pageSize < MinPageSize || pg.pageSize > MaxPageSize {
		return fmt.Errorf("store: page size %d outside [%d, %d]", pg.pageSize, MinPageSize, MaxPageSize)
	}
	pg.cur = meta{pageCount: 2}
	if err := pg.writeMetaSlot(pg.cur); err != nil {
		return fmt.Errorf("store: initialize: %w", err)
	}
	if err := pg.b.Sync(); err != nil {
		return fmt.Errorf("store: initialize: %w", err)
	}
	pg.committed = pg.cur
	return nil
}

// loadChains reads the committed free list and space map. Damage here is
// degraded, not fatal: an unreadable chain costs reclaimed space (pages
// leak, deletes stop freeing), never serves wrong data.
func (pg *pager) loadChains() {
	if raw, pages, err := pg.readChain(pg.committed.freeHead, pageFree, 4); err == nil {
		pg.freeChain = pages
		for off := 0; off+4 <= len(raw); off += 4 {
			pg.reusable = append(pg.reusable, binary.LittleEndian.Uint32(raw[off:]))
		}
	}
	if raw, pages, err := pg.readChain(pg.committed.spaceHead, pageSpace, 6); err == nil {
		pg.spaceChain = pages
		for off := 0; off+6 <= len(raw); off += 6 {
			pg.live[binary.LittleEndian.Uint32(raw[off:])] = binary.LittleEndian.Uint16(raw[off+4:])
		}
	}
}

// read returns a page, preferring the transaction's dirty copy, then the
// clean cache, then the backing (checksum-verified). want, when non-zero,
// asserts the page type — a mismatch is corruption, not a value.
func (pg *pager) read(no uint32, want byte) (*page, error) {
	if p, ok := pg.dirty[no]; ok {
		return pg.checkTyp(p, want)
	}
	if e, ok := pg.clean[no]; ok {
		pg.order.MoveToFront(e)
		return pg.checkTyp(e.Value.(*page), want)
	}
	p := newPage(no, pg.pageSize)
	if _, err := pg.b.ReadAt(p.buf, int64(no)*int64(pg.pageSize)); err != nil {
		return nil, fmt.Errorf("store: read page %d: %w", no, err)
	}
	if err := p.verify(); err != nil {
		return nil, err
	}
	pg.stats.PagesRead++
	pg.cacheInsert(p)
	return pg.checkTyp(p, want)
}

func (pg *pager) checkTyp(p *page, want byte) (*page, error) {
	if want != 0 && p.typ() != want {
		return nil, fmt.Errorf("store: page %d has type %d, want %d", p.no, p.typ(), want)
	}
	return p, nil
}

// cacheInsert adds (or replaces) a clean page, evicting least-recently-used
// pages beyond the bound — the knob that keeps the resident index footprint
// constant as the file grows.
func (pg *pager) cacheInsert(p *page) {
	if e, ok := pg.clean[p.no]; ok {
		e.Value = p
		pg.order.MoveToFront(e)
		return
	}
	pg.clean[p.no] = pg.order.PushFront(p)
	for pg.maxClean > 0 && len(pg.clean) > pg.maxClean {
		oldest := pg.order.Back()
		delete(pg.clean, oldest.Value.(*page).no)
		pg.order.Remove(oldest)
	}
}

func (pg *pager) cacheDrop(no uint32) {
	if e, ok := pg.clean[no]; ok {
		delete(pg.clean, no)
		pg.order.Remove(e)
	}
}

// alloc returns a fresh writable page of the given type, reusing a free
// page when one is available and extending the file otherwise.
func (pg *pager) alloc(typ byte) *page {
	var no uint32
	if n := len(pg.reusable); n > 0 {
		no = pg.reusable[n-1]
		pg.reusable = pg.reusable[:n-1]
		pg.cacheDrop(no)
	} else {
		no = pg.cur.pageCount
		pg.cur.pageCount++
	}
	p := newPage(no, pg.pageSize)
	p.setTyp(typ)
	pg.dirty[no] = p
	pg.txNew[no] = true
	return p
}

// allocExtend allocates strictly by extending the file — used for the
// free-list and space-map chains, whose contents must not change while they
// are being serialized.
func (pg *pager) allocExtend(typ byte) *page {
	no := pg.cur.pageCount
	pg.cur.pageCount++
	p := newPage(no, pg.pageSize)
	p.setTyp(typ)
	pg.txNew[no] = true
	return p
}

// free retires a page. A page allocated by this very transaction was never
// committed, so it can be reused immediately; a committed page enters the
// pending set and becomes reusable only after the next commit record is
// durable — before that, a crash rolls back to a state that still
// references it.
func (pg *pager) free(no uint32) {
	if pg.txNew[no] {
		delete(pg.txNew, no)
		delete(pg.dirty, no)
		pg.reusable = append(pg.reusable, no)
		return
	}
	pg.pending = append(pg.pending, no)
	pg.cacheDrop(no)
}

// shadow applies copy-on-write: it returns a writable copy of the page,
// relocated to a freshly allocated number when the original is committed.
// The caller must re-point every reference at the returned page's number.
func (pg *pager) shadow(no uint32, want byte) (*page, error) {
	if pg.txNew[no] {
		return pg.read(no, want)
	}
	orig, err := pg.read(no, want)
	if err != nil {
		return nil, err
	}
	p := pg.alloc(orig.typ())
	copy(p.buf, orig.buf)
	pg.free(no)
	return p, nil
}

// mutated reports whether the open transaction changed anything worth a
// commit record.
func (pg *pager) mutated() bool {
	return len(pg.dirty) > 0 || len(pg.pending) > 0 || pg.cur != pg.committed
}

// commit makes the open transaction durable: data and overflow pages are
// written first, then the B-tree pages, then the free-list and space-map
// chains, then one fsync; only then is the commit record written to the
// alternate meta slot and fsynced. A crash at any byte boundary leaves the
// previous commit record intact and pointing exclusively at pages this
// transaction never touched.
func (pg *pager) commit() error {
	if pg.err != nil {
		return pg.err
	}
	if !pg.mutated() {
		return nil
	}
	// Retire the previous commit's chains; their pages join the free set
	// being published by this commit.
	for _, no := range pg.freeChain {
		pg.free(no)
	}
	for _, no := range pg.spaceChain {
		pg.free(no)
	}
	pg.freeChain, pg.spaceChain = nil, nil

	// Size and allocate the chain pages before computing the published
	// free set, taking them out of the reusable set first so steady-state
	// churn cycles a constant set of pages instead of compounding the file
	// extent and the free list at every commit. The free-list page count
	// is an upper bound — allocation can only shrink the set it records.
	spaceN := pg.chainPages(6, len(pg.live))
	freeN := pg.chainPages(4, len(pg.reusable)+len(pg.pending))
	pool := make([]*page, spaceN+freeN)
	for i := range pool {
		typ := byte(pageSpace)
		if i >= spaceN {
			typ = pageFree
		}
		pool[i] = pg.allocChain(typ)
	}
	spacePages, freePages := pool[:spaceN], pool[spaceN:]

	// The free set as of this commit: everything still reusable plus
	// everything freed during the transaction, deduplicated and sorted so
	// the chain (and therefore reuse order) is deterministic.
	seen := make(map[uint32]bool, len(pg.reusable)+len(pg.pending))
	newFree := make([]uint32, 0, len(pg.reusable)+len(pg.pending))
	for _, s := range [][]uint32{pg.reusable, pg.pending} {
		for _, no := range s {
			if !seen[no] {
				seen[no] = true
				newFree = append(newFree, no)
			}
		}
	}
	sort.Slice(newFree, func(i, j int) bool { return newFree[i] < newFree[j] })

	// Serialize the space map (sorted for determinism) and the free list.
	livePages := make([]uint32, 0, len(pg.live))
	for no := range pg.live {
		livePages = append(livePages, no)
	}
	sort.Slice(livePages, func(i, j int) bool { return livePages[i] < livePages[j] })
	spaceHead := pg.fillChain(spacePages, 6, len(livePages), func(i int, dst []byte) {
		binary.LittleEndian.PutUint32(dst, livePages[i])
		binary.LittleEndian.PutUint16(dst[4:], pg.live[livePages[i]])
	})
	freeHead := pg.fillChain(freePages, 4, len(newFree), func(i int, dst []byte) {
		binary.LittleEndian.PutUint32(dst, newFree[i])
	})

	// Write order: records before index before chains, one durability
	// point, then the commit record.
	fail := func(err error) error {
		pg.err = fmt.Errorf("store: commit failed, store is read-back-only: %w", err)
		return pg.err
	}
	for _, pass := range [][]byte{{pageData, pageOverflow}, {pageLeaf, pageBranch}} {
		for no, p := range pg.dirty {
			match := false
			for _, t := range pass {
				match = match || p.typ() == t
			}
			if !match {
				continue
			}
			p.seal()
			if _, err := pg.b.WriteAt(p.buf, int64(no)*int64(pg.pageSize)); err != nil {
				return fail(err)
			}
			pg.stats.PagesWritten++
		}
	}
	for _, p := range spacePages {
		p.seal()
		if _, err := pg.b.WriteAt(p.buf, int64(p.no)*int64(pg.pageSize)); err != nil {
			return fail(err)
		}
		pg.stats.PagesWritten++
	}
	for _, p := range freePages {
		p.seal()
		if _, err := pg.b.WriteAt(p.buf, int64(p.no)*int64(pg.pageSize)); err != nil {
			return fail(err)
		}
		pg.stats.PagesWritten++
	}
	if err := pg.b.Sync(); err != nil {
		return fail(err)
	}
	next := pg.cur
	next.seq = pg.committed.seq + 1
	next.freeHead, next.spaceHead = freeHead, spaceHead
	if err := pg.writeMetaSlot(next); err != nil {
		return fail(err)
	}
	if err := pg.b.Sync(); err != nil {
		return fail(err)
	}

	// The transaction is durable: publish it in memory.
	pg.committed, pg.cur = next, next
	for _, p := range spacePages {
		pg.cacheInsert(p)
	}
	for _, p := range freePages {
		pg.cacheInsert(p)
	}
	for _, p := range pg.dirty {
		pg.cacheInsert(p)
	}
	pg.dirty = map[uint32]*page{}
	pg.txNew = map[uint32]bool{}
	pg.reusable = newFree
	pg.pending = nil
	pg.freeChain = pageNos(freePages)
	pg.spaceChain = pageNos(spacePages)
	pg.stats.Commits++
	return nil
}

func pageNos(pages []*page) []uint32 {
	nos := make([]uint32, len(pages))
	for i, p := range pages {
		nos[i] = p.no
	}
	return nos
}
