package store

import (
	"bytes"
	"fmt"
	"testing"
)

// crashState is a point-in-time image of the store contents plus the
// journal byte count at which that image became durable (acknowledged).
type crashState struct {
	rows  map[string]string
	acked int64
}

func cloneRows(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sameRowMaps(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestCrashRecoveryEveryByte kills the store at every byte boundary of its
// write history — including mid-page and mid-meta-slot tears — reopens the
// torn image, and requires that (a) once any commit was acknowledged the
// file always reopens, (b) every acknowledged write survives, and (c) the
// visible contents equal exactly one committed state, never a torn blend.
func TestCrashRecoveryEveryByte(t *testing.T) {
	b := NewMemBacking()
	// Commits happen only at explicit Sync calls so each recorded state
	// matches one commit record.
	opt := Options{PageSize: MinPageSize, MaxCachedPages: 8, AutoCommitPages: 1 << 20}
	db, err := OpenBacking(b, opt)
	if err != nil {
		t.Fatal(err)
	}

	cur := map[string]string{}
	var states []crashState
	record := func() {
		t.Helper()
		if err := db.Sync(); err != nil {
			t.Fatal(err)
		}
		states = append(states, crashState{rows: cloneRows(cur), acked: b.JournalBytes()})
	}
	put := func(k, v string) {
		t.Helper()
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		cur[k] = v
	}
	del := func(k string) {
		t.Helper()
		if _, err := db.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(cur, k)
	}

	// The empty store after initialization is the first durable state.
	states = append(states, crashState{rows: map[string]string{}, acked: b.JournalBytes()})

	// Commit 1: a handful of rows.
	for i := 0; i < 12; i++ {
		put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	record()
	// Commit 2: overwrites, deletes, and an overflow record.
	for i := 0; i < 12; i += 2 {
		put(fmt.Sprintf("k%02d", i), fmt.Sprintf("V%02d!", i))
	}
	del("k03")
	del("k09")
	put("big", string(bytes.Repeat([]byte("x"), 3*MinPageSize)))
	record()
	// Commit 3: churn the overflow record and add more rows.
	put("big", string(bytes.Repeat([]byte("y"), 2*MinPageSize)))
	for i := 12; i < 20; i++ {
		put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	record()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	total := b.JournalBytes()
	if total == 0 || len(states) < 4 {
		t.Fatalf("workload journaled %d bytes across %d states", total, len(states))
	}
	for cut := int64(0); cut <= total; cut++ {
		img := b.Snapshot(cut)
		acked := -1
		for i := range states {
			if states[i].acked <= cut {
				acked = i
			}
		}
		re, err := OpenBacking(img, opt)
		if err != nil {
			if acked >= 0 {
				t.Fatalf("cut %d: reopen failed after commit %d was acknowledged: %v", cut, acked, err)
			}
			continue // nothing acknowledged yet: an unopenable torn file is allowed
		}
		got := map[string]string{}
		if err := re.Scan(func(k, v []byte) error {
			got[string(k)] = string(v)
			return nil
		}); err != nil {
			t.Fatalf("cut %d: scan of reopened store served damage: %v", cut, err)
		}
		if int(re.Len()) != len(got) {
			t.Fatalf("cut %d: Len = %d but scan saw %d rows", cut, re.Len(), len(got))
		}
		match := -1
		lo := acked
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < len(states); j++ {
			if sameRowMaps(states[j].rows, got) {
				match = j
				break
			}
		}
		if match < 0 {
			t.Fatalf("cut %d: visible contents (%d rows) match no committed state at or after acknowledged commit %d", cut, len(got), acked)
		}
		// Point reads agree with the scan: the index serves the same state.
		for k, want := range states[match].rows {
			v, ok, err := re.Get([]byte(k))
			if err != nil || !ok || string(v) != want {
				t.Fatalf("cut %d: get %q = %q, %v, %v; want %q", cut, k, v, ok, err, want)
			}
		}
		re.pg.b.Close()
	}
}
