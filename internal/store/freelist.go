package store

// The free list and the space map persist as chains of fixed-entry-size
// pages linked through the header's next pointer. Both chains are rewritten
// from scratch at every commit (their old pages join the free set being
// published), so chain contents never mutate in place and the commit
// ordering guarantees hold for them like for any other page. Chain pages
// are allocated — from the reusable set first — before the free set is
// serialized, so the set cannot change mid-serialization.

// chainCap returns entries per chain page for the given entry size.
func (pg *pager) chainCap(entrySize int) int { return pg.payloadCap() / entrySize }

// chainPages returns how many chain pages n entries of entrySize need.
func (pg *pager) chainPages(entrySize, n int) int {
	per := pg.chainCap(entrySize)
	return (n + per - 1) / per
}

// allocChain takes a chain page from the reusable set when possible —
// pages free as of the previous durable commit are safe to overwrite, the
// surviving commit record lists them only as free — and extends the file
// otherwise. Pending pages are never taken: the previous commit record
// still references their contents.
func (pg *pager) allocChain(typ byte) *page {
	if n := len(pg.reusable); n > 0 {
		no := pg.reusable[n-1]
		pg.reusable = pg.reusable[:n-1]
		pg.cacheDrop(no)
		p := newPage(no, pg.pageSize)
		p.setTyp(typ)
		pg.txNew[no] = true
		return p
	}
	return pg.allocExtend(typ)
}

// fillChain serializes n fixed-size entries into the pre-allocated pages,
// linking them in order, and returns the head page number (zero for an
// empty pool). Surplus pages ride the chain tail empty — the pool is sized
// from an upper bound — and are retired with the rest of the chain at the
// next commit, so nothing leaks.
func (pg *pager) fillChain(pages []*page, entrySize, n int, fill func(i int, dst []byte)) uint32 {
	if len(pages) == 0 {
		return 0
	}
	per := pg.chainCap(entrySize)
	for pi, p := range pages {
		start := pi * per
		count := n - start
		if count < 0 {
			count = 0
		}
		if count > per {
			count = per
		}
		p.setCount(count)
		pl := p.payload()
		for i := 0; i < count; i++ {
			fill(start+i, pl[i*entrySize:(i+1)*entrySize])
		}
		if pi > 0 {
			pages[pi-1].setNext(p.no)
		}
	}
	return pages[0].no
}

// readChain walks a chain from head, returning the concatenated entry
// bytes and the chain's page numbers.
func (pg *pager) readChain(head uint32, typ byte, entrySize int) ([]byte, []uint32, error) {
	var (
		raw   []byte
		pages []uint32
	)
	for no := head; no != 0; {
		p, err := pg.read(no, typ)
		if err != nil {
			return nil, nil, err
		}
		pages = append(pages, no)
		n := p.count() * entrySize
		if n > len(p.payload()) {
			return nil, nil, errCorrupt(no, "chain page entry count overflows the payload")
		}
		raw = append(raw, p.payload()[:n]...)
		no = p.next()
		if len(pages) > int(pg.cur.pageCount) {
			return nil, nil, errCorrupt(head, "chain cycle")
		}
	}
	return raw, pages, nil
}
