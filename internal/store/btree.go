package store

import (
	"bytes"
	"encoding/binary"
	"sort"
)

// The index is a copy-on-write B-tree keyed on the 32-byte SHA-256 of the
// record key, mapping to the record's location. Leaf entries are 42 bytes
// (hash, data page, offset, length), branch entries 36 (hash, child page);
// both are kept sorted, so a 4 KiB page fans out to ~97 leaf or ~113 branch
// entries and four levels cover hundreds of millions of records. A branch
// entry's hash is a lower bound for its subtree (the leftmost entry of a
// new root uses the zero hash), so deleting or inserting a subtree minimum
// never needs a separator rewrite: lookups descend into the last child
// whose bound does not exceed the target, clamped to the first.
//
// Every mutated page on the root-to-leaf path is shadowed to a fresh page
// (pager.shadow), never updated in place, which is what lets the commit
// record flip atomically between tree versions. Underfull pages are left
// alone — a page is reclaimed when its last entry goes — which trades some
// occupancy for never having to merge; LRU churn deletes cluster in old
// pages, so dead pages drain on their own.

// key32 is the fixed-size B-tree key: SHA-256 of the record key.
type key32 = [32]byte

// loc addresses one record: its data page, payload offset (overflowOff for
// an overflow chain head) and total encoded length.
type loc struct {
	page   uint32
	off    uint16
	length uint32
}

const (
	leafEntrySize   = 32 + 4 + 2 + 4
	branchEntrySize = 32 + 4
)

func (pg *pager) maxLeaf() int   { return pg.payloadCap() / leafEntrySize }
func (pg *pager) maxBranch() int { return pg.payloadCap() / branchEntrySize }

func leafEntry(p *page, i int) (key32, loc) {
	e := p.payload()[i*leafEntrySize:]
	var h key32
	copy(h[:], e)
	return h, loc{
		page:   binary.LittleEndian.Uint32(e[32:]),
		off:    binary.LittleEndian.Uint16(e[36:]),
		length: binary.LittleEndian.Uint32(e[38:]),
	}
}

func leafWrite(p *page, i int, h key32, l loc) {
	e := p.payload()[i*leafEntrySize:]
	copy(e, h[:])
	binary.LittleEndian.PutUint32(e[32:], l.page)
	binary.LittleEndian.PutUint16(e[36:], l.off)
	binary.LittleEndian.PutUint32(e[38:], l.length)
}

func branchEntry(p *page, i int) (key32, uint32) {
	e := p.payload()[i*branchEntrySize:]
	var h key32
	copy(h[:], e)
	return h, binary.LittleEndian.Uint32(e[32:])
}

func branchWrite(p *page, i int, h key32, child uint32) {
	e := p.payload()[i*branchEntrySize:]
	copy(e, h[:])
	binary.LittleEndian.PutUint32(e[32:], child)
}

// entryKey returns entry i's hash without decoding the value part.
func entryKey(p *page, i, entrySize int) []byte {
	return p.payload()[i*entrySize : i*entrySize+32]
}

// searchLeaf returns the position of h (found) or its insertion point.
func searchLeaf(p *page, h key32) (int, bool) {
	n := p.count()
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(entryKey(p, i, leafEntrySize), h[:]) >= 0
	})
	return i, i < n && bytes.Equal(entryKey(p, i, leafEntrySize), h[:])
}

// childIndex returns the branch slot to descend into: the last entry whose
// bound does not exceed h, clamped to the first.
func childIndex(p *page, h key32) int {
	n := p.count()
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(entryKey(p, i, branchEntrySize), h[:]) > 0
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

// insertAtSlot shifts entries right and writes the new one at idx.
func insertAtSlot(p *page, idx, entrySize int, write func(*page, int)) {
	pl := p.payload()
	n := p.count()
	copy(pl[(idx+1)*entrySize:(n+1)*entrySize], pl[idx*entrySize:n*entrySize])
	write(p, idx)
	p.setCount(n + 1)
}

// removeSlot shifts entries left over idx.
func removeSlot(p *page, idx, entrySize int) {
	pl := p.payload()
	n := p.count()
	copy(pl[idx*entrySize:], pl[(idx+1)*entrySize:n*entrySize])
	p.setCount(n - 1)
}

// splitResult reports an insert that overflowed a page: a new right sibling
// and the lower bound of its keys, for the parent to index.
type splitResult struct {
	key  key32
	page uint32
}

// btreeGet looks h up in the committed-or-working tree.
func (pg *pager) btreeGet(h key32) (loc, bool, error) {
	no := pg.cur.root
	for no != 0 {
		p, err := pg.read(no, 0)
		if err != nil {
			return loc{}, false, err
		}
		switch p.typ() {
		case pageLeaf:
			if i, found := searchLeaf(p, h); found {
				_, l := leafEntry(p, i)
				return l, true, nil
			}
			return loc{}, false, nil
		case pageBranch:
			if p.count() == 0 {
				return loc{}, false, errCorrupt(no, "empty branch")
			}
			_, no = branchEntry(p, childIndex(p, h))
		default:
			return loc{}, false, errCorrupt(no, "not an index page")
		}
	}
	return loc{}, false, nil
}

// btreePut maps h to l, returning the location it replaced, if any.
func (pg *pager) btreePut(h key32, l loc) (loc, bool, error) {
	if pg.cur.root == 0 {
		leaf := pg.alloc(pageLeaf)
		leafWrite(leaf, 0, h, l)
		leaf.setCount(1)
		pg.cur.root = leaf.no
		return loc{}, false, nil
	}
	newRoot, split, old, replaced, err := pg.insertAt(pg.cur.root, h, l)
	if err != nil {
		return loc{}, false, err
	}
	pg.cur.root = newRoot
	if split != nil {
		root := pg.alloc(pageBranch)
		branchWrite(root, 0, key32{}, newRoot)
		branchWrite(root, 1, split.key, split.page)
		root.setCount(2)
		pg.cur.root = root.no
	}
	return old, replaced, nil
}

func (pg *pager) insertAt(no uint32, h key32, l loc) (uint32, *splitResult, loc, bool, error) {
	p, err := pg.read(no, 0)
	if err != nil {
		return 0, nil, loc{}, false, err
	}
	switch p.typ() {
	case pageLeaf:
		i, found := searchLeaf(p, h)
		sp, err := pg.shadow(no, pageLeaf)
		if err != nil {
			return 0, nil, loc{}, false, err
		}
		if found {
			_, old := leafEntry(sp, i)
			leafWrite(sp, i, h, l)
			return sp.no, nil, old, true, nil
		}
		if sp.count() < pg.maxLeaf() {
			insertAtSlot(sp, i, leafEntrySize, func(p *page, at int) { leafWrite(p, at, h, l) })
			return sp.no, nil, loc{}, false, nil
		}
		split := pg.splitInsert(sp, i, leafEntrySize, func(p *page, at int) { leafWrite(p, at, h, l) })
		return sp.no, split, loc{}, false, nil
	case pageBranch:
		if p.count() == 0 {
			return 0, nil, loc{}, false, errCorrupt(no, "empty branch")
		}
		idx := childIndex(p, h)
		_, child := branchEntry(p, idx)
		newChild, childSplit, old, replaced, err := pg.insertAt(child, h, l)
		if err != nil {
			return 0, nil, loc{}, false, err
		}
		if newChild == child && childSplit == nil {
			return no, nil, old, replaced, nil
		}
		sp, err := pg.shadow(no, pageBranch)
		if err != nil {
			return 0, nil, loc{}, false, err
		}
		key, _ := branchEntry(sp, idx)
		branchWrite(sp, idx, key, newChild)
		if childSplit == nil {
			return sp.no, nil, old, replaced, nil
		}
		if sp.count() < pg.maxBranch() {
			insertAtSlot(sp, idx+1, branchEntrySize, func(p *page, at int) {
				branchWrite(p, at, childSplit.key, childSplit.page)
			})
			return sp.no, nil, old, replaced, nil
		}
		split := pg.splitInsert(sp, idx+1, branchEntrySize, func(p *page, at int) {
			branchWrite(p, at, childSplit.key, childSplit.page)
		})
		return sp.no, split, old, replaced, nil
	default:
		return 0, nil, loc{}, false, errCorrupt(no, "not an index page")
	}
}

// splitInsert splits a full shadowed page around an insert at idx: the
// merged entry sequence is halved between the page and a fresh right
// sibling, and the sibling's lower bound is returned for the parent.
func (pg *pager) splitInsert(sp *page, idx, entrySize int, write func(*page, int)) *splitResult {
	n := sp.count()
	merged := make([]byte, (n+1)*entrySize)
	pl := sp.payload()
	copy(merged, pl[:idx*entrySize])
	copy(merged[(idx+1)*entrySize:], pl[idx*entrySize:n*entrySize])
	// Write the new entry into its slot of the merged sequence via a
	// throwaway page view sharing the merged buffer.
	view := &page{no: sp.no, buf: append(make([]byte, pageHeaderSize), merged...)}
	write(view, idx)
	merged = view.payload()

	total := n + 1
	left := total / 2
	right := pg.alloc(sp.typ())
	copy(pl, merged[:left*entrySize])
	sp.setCount(left)
	copy(right.payload(), merged[left*entrySize:total*entrySize])
	right.setCount(total - left)
	var sep key32
	copy(sep[:], right.payload()[:32])
	return &splitResult{key: sep, page: right.no}
}

// btreeDelete removes h, returning the location it occupied.
func (pg *pager) btreeDelete(h key32) (loc, bool, error) {
	if pg.cur.root == 0 {
		return loc{}, false, nil
	}
	newRoot, emptied, old, found, err := pg.deleteAt(pg.cur.root, h)
	if err != nil || !found {
		return loc{}, false, err
	}
	if emptied {
		pg.cur.root = 0
		return old, true, nil
	}
	pg.cur.root = newRoot
	// Collapse single-child branch roots so the depth tracks the live
	// entry count back down.
	for {
		p, err := pg.read(pg.cur.root, 0)
		if err != nil {
			return loc{}, false, err
		}
		if p.typ() != pageBranch || p.count() != 1 {
			break
		}
		_, child := branchEntry(p, 0)
		pg.free(pg.cur.root)
		pg.cur.root = child
	}
	return old, true, nil
}

func (pg *pager) deleteAt(no uint32, h key32) (uint32, bool, loc, bool, error) {
	p, err := pg.read(no, 0)
	if err != nil {
		return 0, false, loc{}, false, err
	}
	switch p.typ() {
	case pageLeaf:
		i, found := searchLeaf(p, h)
		if !found {
			return no, false, loc{}, false, nil
		}
		_, old := leafEntry(p, i)
		if p.count() == 1 {
			pg.free(no)
			return 0, true, old, true, nil
		}
		sp, err := pg.shadow(no, pageLeaf)
		if err != nil {
			return 0, false, loc{}, false, err
		}
		removeSlot(sp, i, leafEntrySize)
		return sp.no, false, old, true, nil
	case pageBranch:
		if p.count() == 0 {
			return 0, false, loc{}, false, errCorrupt(no, "empty branch")
		}
		idx := childIndex(p, h)
		_, child := branchEntry(p, idx)
		newChild, emptied, old, found, err := pg.deleteAt(child, h)
		if err != nil || !found {
			return no, false, loc{}, false, err
		}
		if !emptied && newChild == child {
			return no, false, old, true, nil
		}
		sp, err := pg.shadow(no, pageBranch)
		if err != nil {
			return 0, false, loc{}, false, err
		}
		if emptied {
			removeSlot(sp, idx, branchEntrySize)
			if sp.count() == 0 {
				pg.free(sp.no)
				return 0, true, old, true, nil
			}
			return sp.no, false, old, true, nil
		}
		key, _ := branchEntry(sp, idx)
		branchWrite(sp, idx, key, newChild)
		return sp.no, false, old, true, nil
	default:
		return 0, false, loc{}, false, errCorrupt(no, "not an index page")
	}
}

// btreeWalk visits every entry in hash order.
func (pg *pager) btreeWalk(fn func(h key32, l loc) error) error {
	return pg.walkAt(pg.cur.root, fn)
}

func (pg *pager) walkAt(no uint32, fn func(h key32, l loc) error) error {
	if no == 0 {
		return nil
	}
	p, err := pg.read(no, 0)
	if err != nil {
		return err
	}
	switch p.typ() {
	case pageLeaf:
		for i := 0; i < p.count(); i++ {
			h, l := leafEntry(p, i)
			if err := fn(h, l); err != nil {
				return err
			}
		}
		return nil
	case pageBranch:
		for i := 0; i < p.count(); i++ {
			_, child := branchEntry(p, i)
			if err := pg.walkAt(child, fn); err != nil {
				return err
			}
		}
		return nil
	default:
		return errCorrupt(no, "not an index page")
	}
}
