package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// small returns options that force deep trees and frequent page turnover,
// so a few hundred records exercise splits, chains and the free list.
func small() Options {
	return Options{PageSize: MinPageSize, MaxCachedPages: 16, AutoCommitPages: 8}
}

func mustPut(t *testing.T, db *DB, k, v string) {
	t.Helper()
	if err := db.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("put %q: %v", k, err)
	}
}

func mustGet(t *testing.T, db *DB, k, want string) {
	t.Helper()
	v, ok, err := db.Get([]byte(k))
	if err != nil || !ok || string(v) != want {
		t.Fatalf("get %q = %q, %v, %v; want %q", k, v, ok, err, want)
	}
}

func mustMiss(t *testing.T, db *DB, k string) {
	t.Helper()
	if v, ok, err := db.Get([]byte(k)); err != nil || ok {
		t.Fatalf("get %q = %q, %v, %v; want a miss", k, v, ok, err)
	}
}

// Basic life cycle on a real file: put, overwrite, delete, reopen.
func TestPutGetDeleteReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.paged")
	db, err := Open(path, small())
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i))
	}
	if db.Len() != n {
		t.Fatalf("Len = %d, want %d", db.Len(), n)
	}
	// Overwrite half.
	for i := 0; i < n; i += 2 {
		mustPut(t, db, fmt.Sprintf("key-%03d", i), fmt.Sprintf("VAL-%03d", i))
	}
	if db.Len() != n {
		t.Fatalf("Len after overwrites = %d, want %d", db.Len(), n)
	}
	// Delete a third.
	deleted := map[int]bool{}
	for i := 0; i < n; i += 3 {
		ok, err := db.Delete([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v, %v", i, ok, err)
		}
		deleted[i] = true
	}
	if ok, err := db.Delete([]byte("absent")); err != nil || ok {
		t.Fatalf("delete absent = %v, %v", ok, err)
	}
	db.SetUserMeta(0xBEEF)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(path, small())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.UserMeta() != 0xBEEF {
		t.Fatalf("UserMeta = %#x, want 0xBEEF", db.UserMeta())
	}
	if int(db.Len()) != n-len(deleted) {
		t.Fatalf("reopened Len = %d, want %d", db.Len(), n-len(deleted))
	}
	seen := 0
	if err := db.Scan(func(k, v []byte) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != n-len(deleted) {
		t.Fatalf("Scan visited %d records, want %d", seen, n-len(deleted))
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		switch {
		case deleted[i]:
			mustMiss(t, db, k)
		case i%2 == 0:
			mustGet(t, db, k, fmt.Sprintf("VAL-%03d", i))
		default:
			mustGet(t, db, k, fmt.Sprintf("val-%03d", i))
		}
	}
}

// Records larger than a page round-trip through overflow chains, and
// deleting them returns the whole chain to the free list.
func TestOverflowRecords(t *testing.T) {
	db, err := OpenBacking(NewMemBacking(), small())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	vals := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("big-%d", i)
		v := make([]byte, MinPageSize/2+rng.Intn(5*MinPageSize))
		rng.Read(v)
		vals[k] = v
		if err := db.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	for k, want := range vals {
		got, ok, err := db.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("get %q: ok=%v err=%v, %d bytes vs %d", k, ok, err, len(got), len(want))
		}
	}
	filePages := db.Stats().FilePages
	for k := range vals {
		if ok, err := db.Delete([]byte(k)); err != nil || !ok {
			t.Fatalf("delete %q: %v, %v", k, ok, err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Entries != 0 {
		t.Fatalf("entries after deleting all = %d", s.Entries)
	}
	if s.FreePages == 0 {
		t.Fatal("deleting every overflow record freed no pages")
	}
	if s.FilePages > filePages+4 {
		t.Fatalf("file grew from %d to %d pages while only deleting", filePages, s.FilePages)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// Steady-state churn over a bounded key set must not grow the file: dead
// pages cycle through the free list back into use instead of extending.
func TestFreeListBoundsFileGrowth(t *testing.T) {
	db, err := OpenBacking(NewMemBacking(), small())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	key := func(i int) []byte { return []byte(fmt.Sprintf("churn-%03d", i%64)) }
	val := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 40) }
	for i := 0; i < 64; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	warm := db.Stats().FilePages
	for i := 64; i < 64*40; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	grown := db.Stats().FilePages
	// 39 more full passes over the same 64 keys: without free-list reuse
	// the file would grow ~40x; with it, it must plateau within a small
	// constant factor of the warm size.
	if grown > warm*4 {
		t.Fatalf("file grew from %d to %d pages under steady-state churn", warm, grown)
	}
}

// A file that is not a paged store is rejected, not "healed" away.
func TestOpenRejectsForeignFile(t *testing.T) {
	b := NewMemBacking()
	if _, err := b.WriteAt(bytes.Repeat([]byte(`{"key":"x"}`+"\n"), 200), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBacking(b, Options{}); err == nil {
		t.Fatal("foreign file opened as a paged store")
	}
	small := NewMemBacking()
	if _, err := small.WriteAt([]byte("short"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBacking(small, Options{}); err == nil {
		t.Fatal("short foreign file opened as a paged store")
	}
}

// The page size is fixed at creation and read back from the file: an open
// with a different requested size keeps the original.
func TestPageSizeSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.paged")
	db, err := Open(path, Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, db, "k", "v")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(path, Options{PageSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.PageSize() != 1024 {
		t.Fatalf("page size = %d, want the original 1024", db.PageSize())
	}
	mustGet(t, db, "k", "v")
}

// Out-of-range page sizes are rejected at creation.
func TestPageSizeValidated(t *testing.T) {
	for _, ps := range []int{-1, 1, MinPageSize - 1, MaxPageSize + 1} {
		if _, err := OpenBacking(NewMemBacking(), Options{PageSize: ps}); err == nil {
			t.Errorf("page size %d accepted", ps)
		}
	}
}

// Empty keys and empty values are legal records.
func TestEmptyKeyAndValue(t *testing.T) {
	db, err := OpenBacking(NewMemBacking(), small())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustPut(t, db, "", "empty-key")
	mustPut(t, db, "empty-val", "")
	mustGet(t, db, "", "empty-key")
	mustGet(t, db, "empty-val", "")
}
