package store

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
)

func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestResidentFootprintBounded pins the out-of-core property: as the file
// grows 4x, the store's resident memory stays within the clean-page cache
// bound instead of tracking the data. This is what lets a result cache far
// larger than RAM stay usable.
func TestResidentFootprintBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("heap pins are meaningless under the race detector")
	}
	path := filepath.Join(t.TempDir(), "kv.paged")
	opt := Options{PageSize: 1024, MaxCachedPages: 32, AutoCommitPages: 64}
	db, err := Open(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	val := make([]byte, 200)
	insert := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			for j := range val {
				val[j] = byte(i + j)
			}
			if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	readPass := func(n int) {
		t.Helper()
		for i := 0; i < n; i += 7 {
			if _, ok, err := db.Get([]byte(fmt.Sprintf("key-%06d", i))); err != nil || !ok {
				t.Fatalf("get %d: %v, %v", i, ok, err)
			}
		}
	}

	const base = 3000
	insert(0, base)
	readPass(base)
	before := heapInUse()
	smallPages := db.Stats().FilePages

	insert(base, 4*base)
	readPass(4 * base)
	after := heapInUse()

	s := db.Stats()
	if s.CachedPages > opt.MaxCachedPages {
		t.Fatalf("clean cache holds %d pages, bound is %d", s.CachedPages, opt.MaxCachedPages)
	}
	if s.FilePages < 3*smallPages {
		t.Fatalf("file only grew from %d to %d pages; the pin would prove nothing", smallPages, s.FilePages)
	}
	// The file quadrupled (~2.5 MiB of new records); resident memory may
	// wiggle with GC timing but must stay far below the data growth.
	grownBytes := uint64(s.FilePages-smallPages) * uint64(opt.PageSize)
	var growth uint64
	if after > before {
		growth = after - before
	}
	if growth > grownBytes/4 {
		t.Fatalf("heap grew %d bytes while the file grew %d: resident footprint tracks the data", growth, grownBytes)
	}
}
