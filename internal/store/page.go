package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Every page starts with a fixed header:
//
//	off 0      type byte (pageMeta … pageOverflow)
//	off 1      reserved (zero)
//	off 2..3   count — entries in an index/free/space page, bytes used in a
//	           data or overflow page
//	off 4..7   next — chain pointer (overflow, free-list and space-map
//	           pages; zero elsewhere)
//	off 8..11  CRC-32C over the whole page with this field zeroed
//
// and the payload fills the rest. Page numbers are uint32 file offsets in
// page units; page zero and one are the two meta slots, so zero doubles as
// the nil page pointer everywhere else.

// The page types.
const (
	pageMeta     = 1 // commit record (slots 0 and 1)
	pageData     = 2 // shared record storage
	pageLeaf     = 3 // B-tree leaf
	pageBranch   = 4 // B-tree interior node
	pageFree     = 5 // free-list chain
	pageSpace    = 6 // space-map chain (live records per data page)
	pageOverflow = 7 // single-record overflow chain
)

// pageHeaderSize is the number of header bytes before the payload.
const pageHeaderSize = 12

// Page size bounds: the offset field of an index entry is a uint16 with
// 0xFFFF reserved as the overflow sentinel, so payloads must stay below it.
const (
	// MinPageSize is the smallest accepted page size.
	MinPageSize = 256
	// MaxPageSize is the largest accepted page size.
	MaxPageSize = 32768
	// DefaultPageSize is the page size used when Options leaves it zero.
	DefaultPageSize = 4096
)

// overflowOff is the index-entry offset sentinel marking a record stored in
// its own overflow page chain rather than inside a shared data page.
const overflowOff = 0xFFFF

// castagnoli is the CRC-32C table shared by every checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// page is one in-memory page image (header plus payload).
type page struct {
	no  uint32
	buf []byte
}

func (p *page) typ() byte        { return p.buf[0] }
func (p *page) setTyp(t byte)    { p.buf[0] = t }
func (p *page) count() int       { return int(binary.LittleEndian.Uint16(p.buf[2:])) }
func (p *page) setCount(n int)   { binary.LittleEndian.PutUint16(p.buf[2:], uint16(n)) }
func (p *page) next() uint32     { return binary.LittleEndian.Uint32(p.buf[4:]) }
func (p *page) setNext(n uint32) { binary.LittleEndian.PutUint32(p.buf[4:], n) }
func (p *page) payload() []byte  { return p.buf[pageHeaderSize:] }

// seal computes and stores the page checksum; call before writing out.
func (p *page) seal() {
	binary.LittleEndian.PutUint32(p.buf[8:], 0)
	binary.LittleEndian.PutUint32(p.buf[8:], crc32.Checksum(p.buf, castagnoli))
}

// verify checks the stored checksum against the contents.
func (p *page) verify() error {
	want := binary.LittleEndian.Uint32(p.buf[8:])
	var save [4]byte
	copy(save[:], p.buf[8:12])
	binary.LittleEndian.PutUint32(p.buf[8:], 0)
	got := crc32.Checksum(p.buf, castagnoli)
	copy(p.buf[8:12], save[:])
	if got != want {
		return fmt.Errorf("store: page %d checksum mismatch", p.no)
	}
	return nil
}

// errCorrupt reports structural damage anchored to a page.
func errCorrupt(no uint32, msg string) error {
	return fmt.Errorf("store: page %d corrupt: %s", no, msg)
}
