package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4), hand-rolled so the server
// exports its counters without a metrics dependency. Families:
//
//	scheduled_batches_total{outcome="ok"|"failed"|"rejected"}
//	scheduled_rows_streamed_total
//	scheduled_trees_uploaded_total{outcome="added"|"deduped"}
//	scheduled_cache_hits_total, scheduled_cache_misses_total
//	scheduled_store_rows, scheduled_store_evictions_total
//	scheduled_tenant_accepted_jobs_total{tenant}
//	scheduled_tenant_rejected_jobs_total{tenant,reason="rate"|"queue"|"overload"}
//	scheduled_tenant_queued_jobs{tenant}, scheduled_tenant_trees{tenant}
//	scheduled_shard_{resubmissions,quarantines,readmissions,load_sheds,
//	                 warmed_rows,warm_errors,hedges,hedge_wins}_total
//	scheduled_shard_child_{chunks,rows,failures}_total{child},
//	scheduled_shard_child_{quarantined,rows_per_sec}{child}
//	scheduled_gossip_batches_total{outcome="enqueued"|"dropped"}
//	scheduled_gossip_rows_sent_total, scheduled_gossip_errors_total
//
// Cache, store, shard and gossip families appear only when the server was
// built with the matching ServerOptions source; tenant families appear per
// tenant the server has seen. Zero-valued samples are still exported so a
// scrape can tell "counter at zero" from "family absent".

// metricsContentType is the Prometheus text exposition content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates one exposition: HELP/TYPE headers are emitted
// once per family, samples in the order written.
type promWriter struct {
	sb     strings.Builder
	opened map[string]bool
}

func newPromWriter() *promWriter {
	return &promWriter{opened: map[string]bool{}}
}

// family emits the HELP/TYPE header once; kind is "counter" or "gauge".
func (p *promWriter) family(name, kind, help string) {
	if p.opened[name] {
		return
	}
	p.opened[name] = true
	fmt.Fprintf(&p.sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// sample emits one sample line. Labels alternate key, value; values are
// escaped per the exposition format. The numeric value prints as an
// integer when it is one (counters), %g otherwise (gauges like
// rows_per_sec).
func (p *promWriter) sample(name string, value float64, labels ...string) {
	p.sb.WriteString(name)
	if len(labels) > 0 {
		p.sb.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.sb.WriteByte(',')
			}
			// %q quotes and escapes backslash, double quote and newline —
			// exactly the label-value escaping the exposition format wants.
			fmt.Fprintf(&p.sb, "%s=%q", labels[i], labels[i+1])
		}
		p.sb.WriteByte('}')
	}
	if value == float64(int64(value)) {
		fmt.Fprintf(&p.sb, " %d\n", int64(value))
	} else {
		fmt.Fprintf(&p.sb, " %g\n", value)
	}
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: the server's own batch/row/tree counters, the cache, row-store
// and shard counters it was configured with, and one sample set per
// tenant the registry has seen.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	p := newPromWriter()

	p.family("scheduled_batches_total", "counter", "Batch submissions by outcome (ok, failed, rejected).")
	p.sample("scheduled_batches_total", float64(s.batchesOK.Load()), "outcome", "ok")
	p.sample("scheduled_batches_total", float64(s.batchesFailed.Load()), "outcome", "failed")
	p.sample("scheduled_batches_total", float64(s.batchesRejected.Load()), "outcome", "rejected")
	p.family("scheduled_rows_streamed_total", "counter", "Rows streamed to batch clients.")
	p.sample("scheduled_rows_streamed_total", float64(s.rowsStreamed.Load()))
	p.family("scheduled_trees_uploaded_total", "counter", "Corpus uploads by outcome (added, deduped).")
	p.sample("scheduled_trees_uploaded_total", float64(s.treesAdded.Load()), "outcome", "added")
	p.sample("scheduled_trees_uploaded_total", float64(s.treesDeduped.Load()), "outcome", "deduped")

	if s.cache != nil {
		hits, misses := s.cache.Counters()
		p.family("scheduled_cache_hits_total", "counter", "Content-addressed cache hits.")
		p.sample("scheduled_cache_hits_total", float64(hits))
		p.family("scheduled_cache_misses_total", "counter", "Content-addressed cache misses.")
		p.sample("scheduled_cache_misses_total", float64(misses))
	}
	if s.rows != nil {
		p.family("scheduled_store_rows", "gauge", "Rows resident in the row store.")
		p.sample("scheduled_store_rows", float64(s.rows.Len()))
		p.family("scheduled_store_evictions_total", "counter", "Rows evicted by the store's MaxEntries bound.")
		p.sample("scheduled_store_evictions_total", float64(s.rows.Evictions()))
	}

	for _, st := range s.tenants.Snapshot() {
		p.family("scheduled_tenant_accepted_jobs_total", "counter", "Jobs admitted per tenant.")
		p.sample("scheduled_tenant_accepted_jobs_total", float64(st.Accepted), "tenant", st.Name)
		p.family("scheduled_tenant_rejected_jobs_total", "counter", "Jobs rejected per tenant by reason (rate, queue, overload).")
		p.sample("scheduled_tenant_rejected_jobs_total", float64(st.RejectedRate), "tenant", st.Name, "reason", "rate")
		p.sample("scheduled_tenant_rejected_jobs_total", float64(st.RejectedQueue), "tenant", st.Name, "reason", "queue")
		p.sample("scheduled_tenant_rejected_jobs_total", float64(st.RejectedOverload), "tenant", st.Name, "reason", "overload")
		p.family("scheduled_tenant_queued_jobs", "gauge", "Jobs admitted but not yet finished, per tenant.")
		p.sample("scheduled_tenant_queued_jobs", float64(st.Queued), "tenant", st.Name)
		p.family("scheduled_tenant_trees", "gauge", "Distinct trees in the tenant's corpus.")
		p.sample("scheduled_tenant_trees", float64(st.Trees), "tenant", st.Name)
	}

	if s.shard != nil {
		c := s.shard.Counters()
		for _, m := range []struct {
			name string
			v    int64
			help string
		}{
			{"scheduled_shard_resubmissions_total", c.Resubmissions, "Chunk dispatches beyond the first attempt."},
			{"scheduled_shard_quarantines_total", c.Quarantines, "Child quarantine entries."},
			{"scheduled_shard_readmissions_total", c.Readmissions, "Child quarantine exits."},
			{"scheduled_shard_load_sheds_total", c.LoadSheds, "Batches shed by admission control."},
			{"scheduled_shard_warmed_rows_total", c.WarmedRows, "Rows accepted by sibling caches through warming."},
			{"scheduled_shard_warm_errors_total", c.WarmErrors, "Failed best-effort warm forwards."},
			{"scheduled_shard_hedges_total", c.Hedges, "Speculative re-dispatches of straggler chunks."},
			{"scheduled_shard_hedge_wins_total", c.HedgeWins, "Hedged dispatches that beat the straggler."},
		} {
			p.family(m.name, "counter", m.help)
			p.sample(m.name, float64(m.v))
		}
		stats := s.shard.ChildStats()
		sort.SliceStable(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
		for _, cs := range stats {
			p.family("scheduled_shard_child_chunks_total", "counter", "Chunks completed per child.")
			p.sample("scheduled_shard_child_chunks_total", float64(cs.Chunks), "child", cs.Name)
			p.family("scheduled_shard_child_rows_total", "counter", "Rows computed per child.")
			p.sample("scheduled_shard_child_rows_total", float64(cs.Rows), "child", cs.Name)
			p.family("scheduled_shard_child_failures_total", "counter", "Failed chunk dispatches per child.")
			p.sample("scheduled_shard_child_failures_total", float64(cs.Failures), "child", cs.Name)
			p.family("scheduled_shard_child_quarantined", "gauge", "Whether the child is benched right now (0 or 1).")
			quarantined := 0.0
			if cs.Quarantined {
				quarantined = 1
			}
			p.sample("scheduled_shard_child_quarantined", quarantined, "child", cs.Name)
			p.family("scheduled_shard_child_rows_per_sec", "gauge", "Windowed observed throughput per child.")
			p.sample("scheduled_shard_child_rows_per_sec", cs.RowsPerSec, "child", cs.Name)
		}
	}

	if s.gossip != nil {
		g := s.gossip.Stats()
		p.family("scheduled_gossip_batches_total", "counter", "Warm batches offered to peer queues by outcome (enqueued, dropped).")
		p.sample("scheduled_gossip_batches_total", float64(g.EnqueuedBatches), "outcome", "enqueued")
		p.sample("scheduled_gossip_batches_total", float64(g.DroppedBatches), "outcome", "dropped")
		p.family("scheduled_gossip_rows_sent_total", "counter", "Rows peers acknowledged storing from warm pushes.")
		p.sample("scheduled_gossip_rows_sent_total", float64(g.SentRows))
		p.family("scheduled_gossip_errors_total", "counter", "Failed warm pushes to peers.")
		p.sample("scheduled_gossip_errors_total", float64(g.Errors))
	}

	w.Header().Set("Content-Type", metricsContentType)
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, p.sb.String())
}
