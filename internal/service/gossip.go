package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/schedule"
)

// Gossip tuning: the per-peer queue bound and the per-push time budget.
const (
	// DefaultGossipQueue is the per-peer bound on queued warm batches when
	// GossiperOptions.QueueBound is unset. A peer that falls further behind
	// drops batches (counted) instead of queueing them.
	DefaultGossipQueue = 16
	// gossipPushTimeout bounds one warm push to one peer, so a black-holed
	// peer cannot pin its push worker (and with it the peer's whole queue)
	// forever.
	gossipPushTimeout = 30 * time.Second
)

// Gossiper pushes freshly computed rows to peer servers' /v1/warm
// endpoints — push gossip, so a fleet's caches converge on one warm
// working set without a shard in the loop. Offer never blocks: each peer
// has a bounded queue drained by its own push worker, and a batch that
// finds a peer's queue full is dropped for that peer and counted, never
// waited on. A dead or slow peer therefore costs dropped warm batches,
// not serving latency.
//
// Construct with NewGossiper; Close stops the workers after draining what
// was already queued.
type Gossiper struct {
	peers []*gossipPeer
	wg    sync.WaitGroup

	mu     sync.RWMutex // guards closed vs concurrent Offer
	closed bool

	enqueued atomic.Int64
	dropped  atomic.Int64
	sentRows atomic.Int64
	errors   atomic.Int64
}

// gossipPeer is one peer's bounded queue and the warmer that drains it.
type gossipPeer struct {
	warmer schedule.RowWarmer
	queue  chan []schedule.WarmEntry
}

// GossiperOptions configures NewGossiper.
type GossiperOptions struct {
	// QueueBound is the per-peer bound on queued warm batches (≤ 0 selects
	// DefaultGossipQueue).
	QueueBound int
}

// NewGossiper builds a gossiper pushing to the peers — normally
// service.Clients for the sibling servers — each behind its own bounded
// queue and push worker.
func NewGossiper(opt GossiperOptions, peers ...schedule.RowWarmer) *Gossiper {
	bound := opt.QueueBound
	if bound <= 0 {
		bound = DefaultGossipQueue
	}
	g := &Gossiper{}
	for _, p := range peers {
		gp := &gossipPeer{warmer: p, queue: make(chan []schedule.WarmEntry, bound)}
		g.peers = append(g.peers, gp)
		g.wg.Add(1)
		go g.push(gp)
	}
	return g
}

// push is one peer's worker: it drains the queue, one bounded WarmRows
// round-trip per batch. Push failures count; the worker keeps going —
// gossip is best-effort and the peer may recover.
func (g *Gossiper) push(p *gossipPeer) {
	defer g.wg.Done()
	for entries := range p.queue {
		ctx, cancel := context.WithTimeout(context.Background(), gossipPushTimeout)
		n, err := p.warmer.WarmRows(ctx, entries)
		cancel()
		if err != nil {
			g.errors.Add(1)
			continue
		}
		g.sentRows.Add(int64(n))
	}
}

// Offer enqueues one warm batch toward every peer, without ever blocking:
// a peer whose queue is full just doesn't get this batch (dropped and
// counted). Safe for concurrent use; a closed gossiper ignores offers.
func (g *Gossiper) Offer(entries []schedule.WarmEntry) {
	if len(entries) == 0 {
		return
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return
	}
	for _, p := range g.peers {
		select {
		case p.queue <- entries:
			g.enqueued.Add(1)
		default:
			g.dropped.Add(1)
		}
	}
}

// Close stops accepting offers, lets the workers drain what was already
// queued (each push still bounded by the push timeout), and waits for them
// to exit. Safe to call more than once.
func (g *Gossiper) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	for _, p := range g.peers {
		close(p.queue)
	}
	g.mu.Unlock()
	g.wg.Wait()
}

// GossipStats is a snapshot of a Gossiper's cumulative counters.
type GossipStats struct {
	// EnqueuedBatches counts batches accepted into a peer queue (one batch
	// offered to three peers counts up to three).
	EnqueuedBatches int64
	// DroppedBatches counts batches dropped because a peer's queue was
	// full — the backpressure outcome.
	DroppedBatches int64
	// SentRows counts rows peers acknowledged storing.
	SentRows int64
	// Errors counts failed pushes (the whole batch, not per row).
	Errors int64
}

// Stats returns a snapshot of the gossiper's counters.
func (g *Gossiper) Stats() GossipStats {
	return GossipStats{
		EnqueuedBatches: g.enqueued.Load(),
		DroppedBatches:  g.dropped.Load(),
		SentRows:        g.sentRows.Load(),
		Errors:          g.errors.Load(),
	}
}
