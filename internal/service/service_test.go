package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/tree"

	// The server side evaluates against the registry: register everything.
	_ "repro/internal/minio"
	_ "repro/internal/traversal"
)

func testInstances(t *testing.T) []schedule.Instance {
	t.Helper()
	var out []schedule.Instance
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr, err := tree.Random(rng, tree.RandomOptions{Nodes: 30 + int(seed)*7, MaxF: 15, MaxN: 6, Attach: tree.AttachKind(seed % 3)})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, schedule.Instance{Name: fmt.Sprintf("rand-%d", seed), Tree: tr})
	}
	return out
}

func testJobs(t *testing.T) []schedule.Job {
	t.Helper()
	insts := testInstances(t)
	jobs := schedule.MinMemoryGrid(insts, []string{"postorder", "liu", "minmem"})
	memories := func(tr *tree.Tree, out schedule.Outcome) ([]int64, error) {
		return []int64{tr.MaxMemReq()}, nil
	}
	polJobs, err := schedule.MinIOGrid(context.Background(), insts, "minmem", schedule.EvictionPolicyNames(), memories, 0)
	if err != nil {
		t.Fatal(err)
	}
	return append(jobs, polJobs...)
}

func startServer(t *testing.T, backend schedule.Backend) *service.Client {
	t.Helper()
	srv := httptest.NewServer(service.NewServer(backend, 0).Handler())
	t.Cleanup(srv.Close)
	return service.NewClient(srv.URL+"/", srv.Client()) // trailing slash must be tolerated
}

// A remote grid must return the rows of a local run bit-identically (the
// Seconds column aside — it is measured on the server).
func TestRemoteMatchesLocal(t *testing.T) {
	jobs := testJobs(t)
	local, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	client := startServer(t, nil)
	if caps := client.Capabilities(); !caps.Remote {
		t.Fatalf("client capabilities %+v not remote", caps)
	}
	streamed := 0
	indexed := map[int]bool{}
	remote, err := client.Run(context.Background(), jobs, schedule.BatchOptions{
		Workers: 4,
		OnRow:   func(schedule.Row) { streamed++ },
		OnRowIndexed: func(i int, r schedule.Row) {
			if indexed[i] {
				t.Fatalf("row %d streamed twice", i)
			}
			indexed[i] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(jobs) || len(indexed) != len(jobs) {
		t.Fatalf("streamed %d rows (%d indexed), want %d", streamed, len(indexed), len(jobs))
	}
	if len(remote) != len(local) {
		t.Fatalf("remote returned %d rows, want %d", len(remote), len(local))
	}
	for i := range local {
		a, b := local[i], remote[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("row %d differs remote vs local: %+v vs %+v", i, remote[i], local[i])
		}
	}
}

// The service composes with the cache: a server over a Cached backend
// answers a repeated batch from the store.
func TestRemoteOverCachedBackend(t *testing.T) {
	jobs := testJobs(t)
	cached := schedule.NewCached(schedule.Local{}, nil)
	client := startServer(t, cached)
	first, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("warm remote row %d not bit-identical: %+v vs %+v", i, first[i], second[i])
		}
	}
	if hits, misses := cached.Counters(); hits != int64(len(jobs)) || misses != int64(len(jobs)) {
		t.Fatalf("server cache counters hits=%d misses=%d, want %d/%d", hits, misses, len(jobs), len(jobs))
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	client := startServer(t, nil)
	infos, err := client.Algorithms(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(schedule.Names()) {
		t.Fatalf("server lists %d algorithms, registry has %d", len(infos), len(schedule.Names()))
	}
	byName := map[string]service.AlgorithmInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if got := byName["minmem"].Kind; got != "minmemory" {
		t.Fatalf("minmem kind %q", got)
	}
	if got := byName["first-fit"].Display; got != "First Fit" {
		t.Fatalf("first-fit display %q", got)
	}
}

func TestRemoteErrors(t *testing.T) {
	insts := testInstances(t)[:1]
	client := startServer(t, nil)

	// A failing job surfaces as a trailing error line → client error.
	bad := []schedule.Job{{Instance: insts[0].Name, Tree: insts[0].Tree, Algorithm: "no-such-solver"}}
	if _, err := client.Run(context.Background(), bad, schedule.BatchOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no-such-solver") {
		t.Fatalf("unknown algorithm: got %v", err)
	}

	// A nil tree is rejected client-side before anything hits the wire.
	if _, err := client.Run(context.Background(), []schedule.Job{{Algorithm: "minmem"}}, schedule.BatchOptions{}); err == nil {
		t.Fatal("nil tree accepted")
	}

	// Malformed request bodies and unknown tree references are 400s.
	srv := httptest.NewServer(service.NewServer(nil, 0).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"trees":{},"jobs":[{"instance":"x","tree":"missing","algorithm":"minmem"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tree ref: status %d, want 400", resp.StatusCode)
	}

	// A stream that ends without a done line is reported as truncated.
	trunc := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK) // no lines at all
	}))
	defer trunc.Close()
	tclient := service.NewClient(trunc.URL, nil)
	if _, err := tclient.Run(context.Background(), bad[:0], schedule.BatchOptions{}); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream: got %v", err)
	}
}
