package service_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/tree"

	// The server side evaluates against the registry: register everything.
	_ "repro/internal/minio"
	_ "repro/internal/traversal"
)

func testInstances(t *testing.T) []schedule.Instance {
	t.Helper()
	var out []schedule.Instance
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr, err := tree.Random(rng, tree.RandomOptions{Nodes: 30 + int(seed)*7, MaxF: 15, MaxN: 6, Attach: tree.AttachKind(seed % 3)})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, schedule.Instance{Name: fmt.Sprintf("rand-%d", seed), Tree: tr})
	}
	return out
}

func testJobs(t *testing.T) []schedule.Job {
	t.Helper()
	insts := testInstances(t)
	jobs := schedule.MinMemoryGrid(insts, []string{"postorder", "liu", "minmem"})
	memories := func(tr *tree.Tree, out schedule.Outcome) ([]int64, error) {
		return []int64{tr.MaxMemReq()}, nil
	}
	polJobs, err := schedule.MinIOGrid(context.Background(), insts, "minmem", schedule.EvictionPolicyNames(), memories, 0)
	if err != nil {
		t.Fatal(err)
	}
	return append(jobs, polJobs...)
}

func startServer(t *testing.T, backend schedule.Backend) *service.Client {
	t.Helper()
	srv := httptest.NewServer(service.NewServer(backend, 0).Handler())
	t.Cleanup(srv.Close)
	return service.NewClient(srv.URL+"/", srv.Client()) // trailing slash must be tolerated
}

// A remote grid must return the rows of a local run bit-identically (the
// Seconds column aside — it is measured on the server).
func TestRemoteMatchesLocal(t *testing.T) {
	jobs := testJobs(t)
	local, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	client := startServer(t, nil)
	if caps := client.Capabilities(); !caps.Remote {
		t.Fatalf("client capabilities %+v not remote", caps)
	}
	streamed := 0
	indexed := map[int]bool{}
	remote, err := client.Run(context.Background(), jobs, schedule.BatchOptions{
		Workers: 4,
		OnRow:   func(schedule.Row) { streamed++ },
		OnRowIndexed: func(i int, r schedule.Row) {
			if indexed[i] {
				t.Fatalf("row %d streamed twice", i)
			}
			indexed[i] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(jobs) || len(indexed) != len(jobs) {
		t.Fatalf("streamed %d rows (%d indexed), want %d", streamed, len(indexed), len(jobs))
	}
	if len(remote) != len(local) {
		t.Fatalf("remote returned %d rows, want %d", len(remote), len(local))
	}
	for i := range local {
		a, b := local[i], remote[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("row %d differs remote vs local: %+v vs %+v", i, remote[i], local[i])
		}
	}
}

// The service composes with the cache: a server over a Cached backend
// answers a repeated batch from the store.
func TestRemoteOverCachedBackend(t *testing.T) {
	jobs := testJobs(t)
	cached := schedule.NewCached(schedule.Local{}, nil)
	client := startServer(t, cached)
	first, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("warm remote row %d not bit-identical: %+v vs %+v", i, first[i], second[i])
		}
	}
	if hits, misses := cached.Counters(); hits != int64(len(jobs)) || misses != int64(len(jobs)) {
		t.Fatalf("server cache counters hits=%d misses=%d, want %d/%d", hits, misses, len(jobs), len(jobs))
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	client := startServer(t, nil)
	infos, err := client.Algorithms(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(schedule.Names()) {
		t.Fatalf("server lists %d algorithms, registry has %d", len(infos), len(schedule.Names()))
	}
	byName := map[string]service.AlgorithmInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if got := byName["minmem"].Kind; got != "minmemory" {
		t.Fatalf("minmem kind %q", got)
	}
	if got := byName["first-fit"].Display; got != "First Fit" {
		t.Fatalf("first-fit display %q", got)
	}
}

func TestRemoteErrors(t *testing.T) {
	insts := testInstances(t)[:1]
	client := startServer(t, nil)

	// A failing job surfaces as a trailing error line → client error.
	bad := []schedule.Job{{Instance: insts[0].Name, Tree: insts[0].Tree, Algorithm: "no-such-solver"}}
	if _, err := client.Run(context.Background(), bad, schedule.BatchOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no-such-solver") {
		t.Fatalf("unknown algorithm: got %v", err)
	}

	// A nil tree is rejected client-side before anything hits the wire.
	if _, err := client.Run(context.Background(), []schedule.Job{{Algorithm: "minmem"}}, schedule.BatchOptions{}); err == nil {
		t.Fatal("nil tree accepted")
	}

	// Malformed request bodies and unknown tree references are 400s.
	srv := httptest.NewServer(service.NewServer(nil, 0).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"trees":{},"jobs":[{"instance":"x","tree":"missing","algorithm":"minmem"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tree ref: status %d, want 400", resp.StatusCode)
	}

	// A stream that ends without a done line is reported as truncated.
	trunc := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK) // no lines at all
	}))
	defer trunc.Close()
	tclient := service.NewClient(trunc.URL, nil)
	if _, err := tclient.Run(context.Background(), bad[:0], schedule.BatchOptions{}); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream: got %v", err)
	}
}

// flakyHandler fails the first failN /v1/batch POSTs with the given status
// (or cuts the stream after a prefix when truncate is set), then serves
// normally. It counts batch calls.
type flakyHandler struct {
	inner    http.Handler
	failN    atomic.Int64
	status   int
	truncate bool
	batches  atomic.Int64
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/batch" {
		h.batches.Add(1)
		if h.failN.Add(-1) >= 0 {
			if h.truncate {
				// A committed 200 stream cut off after one genuine row and
				// before the done line: the client must treat it as
				// truncated, retry, and not re-announce the row it already
				// delivered.
				body, _ := io.ReadAll(r.Body)
				replay := r.Clone(r.Context())
				replay.Body = io.NopCloser(bytes.NewReader(body))
				rec := httptest.NewRecorder()
				h.inner.ServeHTTP(rec, replay)
				first, _, _ := strings.Cut(rec.Body.String(), "\n")
				w.WriteHeader(http.StatusOK)
				fmt.Fprintln(w, first)
				return
			}
			http.Error(w, "server warming up", h.status)
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

// A client with Retries resubmits past transient failures — 5xx statuses
// and streams cut off before the done line — and announces every row
// exactly once across attempts; without Retries the first failure is fatal.
func TestClientRetries(t *testing.T) {
	jobs := testJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, wrap := range map[string]*flakyHandler{
		"5xx":      {status: http.StatusServiceUnavailable},
		"truncate": {truncate: true},
	} {
		wrap.inner = service.NewServer(nil, 0).Handler()
		wrap.failN.Store(2)
		srv := httptest.NewServer(wrap)
		client := service.NewClient(srv.URL, srv.Client())
		client.Retries = 3
		client.RetryBackoff = time.Millisecond
		indexed := map[int]int{}
		rows, err := client.Run(context.Background(), jobs, schedule.BatchOptions{
			OnRowIndexed: func(i int, r schedule.Row) { indexed[i]++ },
		})
		if err != nil {
			t.Fatalf("%s: retried run failed: %v", name, err)
		}
		for i := range want {
			a, b := want[i], rows[i]
			a.Seconds, b.Seconds = 0, 0
			if a != b {
				t.Fatalf("%s: row %d differs after retries: %+v vs %+v", name, i, rows[i], want[i])
			}
		}
		for i, n := range indexed {
			if n != 1 {
				t.Fatalf("%s: row %d announced %d times across attempts", name, i, n)
			}
		}
		if got := wrap.batches.Load(); got != 3 {
			t.Fatalf("%s: server saw %d batch calls, want 3", name, got)
		}
		srv.Close()
	}

	// Without retries the transient failure surfaces.
	wrap := &flakyHandler{inner: service.NewServer(nil, 0).Handler(), status: http.StatusServiceUnavailable}
	wrap.failN.Store(1)
	srv := httptest.NewServer(wrap)
	defer srv.Close()
	if _, err := service.NewClient(srv.URL, srv.Client()).Run(context.Background(), jobs, schedule.BatchOptions{}); err == nil {
		t.Fatal("transient failure swallowed without Retries")
	}

	// Deterministic failures are not retried: a bad request burns no
	// attempts against the server.
	bad := &flakyHandler{inner: service.NewServer(nil, 0).Handler()}
	bsrv := httptest.NewServer(bad)
	defer bsrv.Close()
	bclient := service.NewClient(bsrv.URL, bsrv.Client())
	bclient.Retries = 5
	bclient.RetryBackoff = time.Millisecond
	badJobs := []schedule.Job{{Instance: "x", Tree: testInstances(t)[0].Tree, Algorithm: "no-such-solver"}}
	if _, err := bclient.Run(context.Background(), badJobs, schedule.BatchOptions{}); err == nil {
		t.Fatal("job error swallowed")
	}
	if got := bad.batches.Load(); got != 1 {
		t.Fatalf("deterministic failure was retried: %d batch calls", got)
	}
}

// slowHandler delays every /v1/batch POST by delay before delegating — the
// stand-in for an overloaded server.
type slowHandler struct {
	inner http.Handler
	delay time.Duration
}

func (h *slowHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/batch" {
		time.Sleep(h.delay)
	}
	h.inner.ServeHTTP(w, r)
}

// The ISSUE's differential pin: an adaptively-scheduled, readmitting Shard
// over two scheduled servers — one slow, one flapping — is bit-identical
// (modulo Seconds) to Local for the same grid. The flapping server's
// batch failures quarantine it; its algorithm-list endpoint keeps
// answering, so the health probe readmits it and it serves again, and both
// lifecycle counters end up nonzero.
func TestShardOverTwoServersMatchesLocal(t *testing.T) {
	jobs := testJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Server 1 is healthy but slow; server 2 flaps: it fails its first two
	// batch calls mid-grid style (chunked dispatch spreads calls across
	// both), while its list endpoint — the health probe — keeps working.
	slow := httptest.NewServer(&slowHandler{inner: service.NewServer(nil, 0).Handler(), delay: 10 * time.Millisecond})
	defer slow.Close()
	wrap := &flakyHandler{inner: service.NewServer(nil, 0).Handler(), status: http.StatusBadGateway}
	wrap.failN.Store(2)
	flaky := httptest.NewServer(wrap)
	defer flaky.Close()

	c1 := service.NewClient(slow.URL, slow.Client())
	c2 := service.NewClient(flaky.URL, flaky.Client())
	shard, err := schedule.NewShardWith(schedule.ShardOptions{
		Policy:         schedule.PolicyAdaptive,
		QuarantineBase: time.Millisecond,
	}, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if caps := shard.Capabilities(); !caps.Remote {
		t.Fatalf("shard of remotes not remote: %+v", caps)
	}

	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	rows := sank.Rows()
	if len(rows) != len(want) {
		t.Fatalf("shard streamed %d rows, want %d", len(rows), len(want))
	}
	for i := range want {
		a, b := want[i], rows[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("row %d differs sharded vs local: %+v vs %+v", i, rows[i], want[i])
		}
	}
	c := shard.Counters()
	if c.Resubmissions < 2 {
		t.Fatalf("failed chunks were not resubmitted: counters %+v", c)
	}
	if c.Quarantines < 1 {
		t.Fatalf("flapping server never quarantined: counters %+v", c)
	}
	if c.Readmissions < 1 {
		t.Fatalf("flapping server never readmitted: counters %+v", c)
	}
	if wrap.batches.Load() <= 2 {
		t.Fatal("flaky server never served after recovering")
	}
}

// Health is the readmission probe: nil against a serving server, an error
// against one whose registry endpoint fails.
func TestClientHealth(t *testing.T) {
	client := startServer(t, nil)
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("healthy server probed unhealthy: %v", err)
	}
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "restarting", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	if err := service.NewClient(down.URL, down.Client()).Health(context.Background()); err == nil {
		t.Fatal("down server probed healthy")
	}
}

// /v1/warm stores pushed rows in the server's store, so a later batch over
// the same jobs is answered without recomputation; a cacheless server
// accepts the push as a no-op.
func TestWarmEndpoint(t *testing.T) {
	jobs := testJobs(t)
	rows, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]schedule.WarmEntry, len(jobs))
	for i, j := range jobs {
		entries[i] = schedule.WarmEntry{Key: schedule.CacheKey(j), Row: rows[i]}
	}

	store := schedule.NewMemStore()
	cached := schedule.NewCached(schedule.Local{}, store)
	srv := httptest.NewServer(service.NewServerWith(service.ServerOptions{Backend: cached, Store: store}).Handler())
	defer srv.Close()
	client := service.NewClient(srv.URL, srv.Client())
	stored, err := client.WarmRows(context.Background(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if stored != len(entries) || store.Len() != len(entries) {
		t.Fatalf("warm stored %d entries (store holds %d), want %d", stored, store.Len(), len(entries))
	}
	// The warmed server answers the whole batch from its store.
	if _, err := client.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cached.Counters(); misses != 0 || hits != int64(len(jobs)) {
		t.Fatalf("warmed server recomputed: %d hits, %d misses", hits, misses)
	}

	// A cacheless server accepts and stores nothing.
	plain := startServer(t, nil)
	if stored, err := plain.WarmRows(context.Background(), entries[:3]); err != nil || stored != 0 {
		t.Fatalf("cacheless warm: stored %d, err %v", stored, err)
	}

	// Empty keys are rejected as malformed.
	if _, err := client.WarmRows(context.Background(), []schedule.WarmEntry{{}}); err == nil {
		t.Fatal("empty warm key accepted")
	}
}

// The tentpole end to end: a warming shard over two cached servers leaves
// every row in both servers' stores after one stream, so a re-run anywhere
// in the fleet is answered without recomputation.
func TestShardWarmsServerCaches(t *testing.T) {
	jobs := testJobs(t)
	newCachedServer := func() (*httptest.Server, *schedule.MemStore) {
		store := schedule.NewMemStore()
		srv := httptest.NewServer(service.NewServerWith(service.ServerOptions{
			Backend: schedule.NewCached(schedule.Local{}, store),
			Store:   store,
		}).Handler())
		t.Cleanup(srv.Close)
		return srv, store
	}
	srv1, store1 := newCachedServer()
	srv2, store2 := newCachedServer()
	shard, err := schedule.NewShardWith(schedule.ShardOptions{Warm: true},
		service.NewClient(srv1.URL, srv1.Client()),
		service.NewClient(srv2.URL, srv2.Client()))
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	if len(sank.Rows()) != len(jobs) {
		t.Fatalf("streamed %d rows, want %d", len(sank.Rows()), len(jobs))
	}
	if store1.Len() != len(jobs) || store2.Len() != len(jobs) {
		t.Fatalf("warming left server stores at %d and %d rows, want %d each", store1.Len(), store2.Len(), len(jobs))
	}
	if c := shard.Counters(); c.WarmedRows != int64(len(jobs)) || c.WarmErrors != 0 {
		t.Fatalf("warm counters %+v, want %d warmed rows and no errors", c, len(jobs))
	}
}

// Client.Stream ships the grid as bounded chunk submissions: the server
// sees ⌈jobs/ChunkSize⌉ batch calls, no call carries the whole grid, and
// the merged rows equal a Local run.
func TestClientStreamChunked(t *testing.T) {
	jobs := testJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	counter := &flakyHandler{inner: service.NewServer(nil, 0).Handler()}
	srv := httptest.NewServer(counter)
	defer srv.Close()
	client := service.NewClient(srv.URL, srv.Client())

	const chunk = 4
	var sank schedule.Collector
	if err := client.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: chunk}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		a, b := want[i], sank.Rows()[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("row %d differs streamed vs local: %+v vs %+v", i, sank.Rows()[i], want[i])
		}
	}
	wantCalls := int64((len(jobs) + chunk - 1) / chunk)
	if got := counter.batches.Load(); got != wantCalls {
		t.Fatalf("server saw %d batch calls for %d jobs, want %d chunks of %d", got, len(jobs), wantCalls, chunk)
	}
}

// concurrencyBackend records the peak number of concurrent Run calls.
type concurrencyBackend struct {
	inner  schedule.Backend
	active atomic.Int64
	peak   atomic.Int64
}

func (b *concurrencyBackend) Capabilities() schedule.Capabilities { return b.inner.Capabilities() }

func (b *concurrencyBackend) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	n := b.active.Add(1)
	defer b.active.Add(-1)
	for {
		p := b.peak.Load()
		if n <= p || b.peak.CompareAndSwap(p, n) {
			break
		}
	}
	time.Sleep(5 * time.Millisecond) // widen the overlap window
	return b.inner.Run(ctx, jobs, opt)
}

func (b *concurrencyBackend) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, b.Run, src, sink, opt)
}

// The server's workers bound is global: concurrent batch submissions —
// several clients, or one client streaming chunks in flight — evaluate one
// at a time instead of each spinning up its own worker pool.
func TestServerSerializesBatchEvaluations(t *testing.T) {
	probe := &concurrencyBackend{inner: schedule.Local{}}
	srv := httptest.NewServer(service.NewServer(probe, 1).Handler())
	defer srv.Close()
	client := service.NewClient(srv.URL, srv.Client())
	jobs := testJobs(t)

	var sank schedule.Collector
	if err := client.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 3, InFlight: 4}); err != nil {
		t.Fatal(err)
	}
	if len(sank.Rows()) != len(jobs) {
		t.Fatalf("streamed %d rows, want %d", len(sank.Rows()), len(jobs))
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Run(context.Background(), jobs[:4], schedule.BatchOptions{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := probe.peak.Load(); p != 1 {
		t.Fatalf("server evaluated %d batches concurrently, want 1", p)
	}
}
