package service_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/schedule"
	"repro/internal/service"
)

// startPagedServer starts a server whose backend caches into a paged row
// store, wired as the /v1/warm sink like cmd/scheduled does.
func startPagedServer(t *testing.T, path string) (*service.Client, schedule.RowStore) {
	t.Helper()
	rs, err := schedule.OpenRowStore(path, schedule.StoreOptions{Format: schedule.FormatPaged})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	srv := httptest.NewServer(service.NewServerWith(service.ServerOptions{
		Backend: schedule.NewCached(schedule.Local{}, rs),
		Store:   rs,
	}).Handler())
	t.Cleanup(srv.Close)
	return service.NewClient(srv.URL, srv.Client()), rs
}

// A shard mixing a paged-store-cached child with a plain child returns the
// rows of a local run bit-identically: the on-disk cache format is
// invisible above the Backend interface, exactly like the transport.
func TestShardMixesPagedAndPlainChildren(t *testing.T) {
	jobs := testJobs(t)
	local, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pagedChild, rs := startPagedServer(t, filepath.Join(t.TempDir(), "rows.paged"))
	plainChild := startServer(t, nil)
	shard, err := schedule.NewShard(pagedChild, plainChild)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := shard.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualNoTime(t, "mixed paged shard vs local", rows, local)
	if rs.Len() == 0 {
		t.Fatal("the paged child's share of the batch banked no rows")
	}
	// A second pass over the same jobs is bit-identical again — the paged
	// child now answers its share from disk.
	again, err := shard.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualNoTime(t, "warm mixed paged shard vs local", again, local)
}

// /v1/warm lands rows in the paged store: entries pushed over the wire are
// served back bit-identically, so cross-shard gossip works unchanged when a
// child keeps its cache out of core.
func TestWarmIntoPagedStore(t *testing.T) {
	jobs := testJobs(t)
	local, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]schedule.WarmEntry, len(jobs))
	for i, j := range jobs {
		entries[i] = schedule.WarmEntry{Key: schedule.CacheKey(j), Row: local[i]}
	}
	client, rs := startPagedServer(t, filepath.Join(t.TempDir(), "rows.paged"))
	n, err := client.WarmRows(context.Background(), entries)
	if err != nil || n != len(entries) {
		t.Fatalf("WarmRows stored %d entries, %v; want %d", n, err, len(entries))
	}
	if rs.Len() != len(entries) {
		t.Fatalf("paged store holds %d rows after warm, want %d", rs.Len(), len(entries))
	}
	for i, e := range entries {
		got, ok := rs.Get(e.Key)
		if !ok || got != local[i] {
			t.Fatalf("warmed row %d served %+v, %v; want %+v", i, got, ok, local[i])
		}
	}
}

// Concurrent /v1/warm pushes into one paged store are safe (this test is
// in CI's race-detector package list): every writer replays the whole
// entry set in a rotated order, so each key sees racing duplicate stores,
// and the store still serves every row back bit-identically.
func TestConcurrentWarmIntoPagedStore(t *testing.T) {
	jobs := testJobs(t)
	local, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]schedule.WarmEntry, len(jobs))
	for i, j := range jobs {
		entries[i] = schedule.WarmEntry{Key: schedule.CacheKey(j), Row: local[i]}
	}
	client, rs := startPagedServer(t, filepath.Join(t.TempDir(), "rows.paged"))

	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		pivot := w * len(entries) / writers
		rot := append(append([]schedule.WarmEntry{}, entries[pivot:]...), entries[:pivot]...)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if n, err := client.WarmRows(context.Background(), rot); err != nil || n != len(rot) {
				t.Errorf("concurrent WarmRows stored %d entries, %v; want %d", n, err, len(rot))
			}
		}()
	}
	wg.Wait()
	if rs.Len() != len(entries) {
		t.Fatalf("store holds %d rows after %d racing warm pushes, want %d", rs.Len(), writers, len(entries))
	}
	for i, e := range entries {
		got, ok := rs.Get(e.Key)
		if !ok || got != local[i] {
			t.Fatalf("row %d after racing warms: %+v, %v; want %+v", i, got, ok, local[i])
		}
	}
}
