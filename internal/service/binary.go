package service

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"mime"
	"strings"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// The binary batch transport is the allocation-light sibling of the JSON
// protocol: the same POST /v1/batch endpoint, negotiated per side by media
// type. The request body replaces the JSON envelope (Content-Type
// ContentTypeBinaryBatch) and the response stream replaces JSON Lines
// (Accept ContentTypeBinaryRows); the two are independent, so a shard may
// mix JSON and binary children mid-upgrade. Both bodies open with
// schedule.WireMagic, a kind byte and a version byte, like every other
// binary schedule stream.
//
// Request ('B', version 1):
//
//	uvarint workers
//	uvarint tree count, then each tree in tree.AppendBinary form
//	uvarint order count, then each order as uvarint length + varint nodes
//	uvarint job count, then per job: uvarint tree index,
//	    uvarint order index + 1 (0 = no order), instance and algorithm as
//	    uvarint length + bytes, memory and window as varints
//
// Orders are deduplicated by slice identity, so the thousands of jobs a
// minimum-IO grid derives from one traversal share a single order table
// entry — and the decoded jobs share a single []int, like the originals.
//
// Response ('b', version 1): a stream of uvarint-length-prefixed frames,
// each opening with a type byte —
//
//	1 (row):   uvarint job index, then the row in schedule.AppendRow form
//	2 (done):  uvarint row count; terminates a successful stream
//	3 (error): the error message bytes; terminates a failed stream
//
// mirroring the JSON Lines contract: rows stream in completion order and a
// stream without a terminator frame is truncated, not short.

// ContentTypeBinaryBatch is the media type of a binary batch request body.
const ContentTypeBinaryBatch = "application/x-schedule-batch"

// ContentTypeBinaryRows is the media type of a binary batch response
// stream, requested via the Accept header.
const ContentTypeBinaryRows = "application/x-schedule-rows"

const (
	batchRequestKind   = 'B'
	batchResponseKind  = 'b'
	binaryBatchVersion = 1
)

// Binary response frame types.
const (
	frameRow   = 1
	frameDone  = 2
	frameError = 3
)

// maxResponseFrame bounds one response frame; a longer prefix is corruption.
const maxResponseFrame = 1 << 20

// encodeBatchBinary serializes a batch in the binary request form: each
// distinct tree once, each distinct order slice once.
func encodeBatchBinary(jobs []schedule.Job, workers int) ([]byte, error) {
	if workers < 0 {
		workers = 0
	}
	buf := []byte{schedule.WireMagic, batchRequestKind, binaryBatchVersion}
	buf = binary.AppendUvarint(buf, uint64(workers))
	type orderKey struct {
		head *int
		n    int
	}
	treeIdx := map[*tree.Tree]int{}
	var trees []*tree.Tree
	orderIdx := map[orderKey]int{}
	var orders [][]int
	for i := range jobs {
		j := &jobs[i]
		if j.Tree == nil {
			return nil, fmt.Errorf("service: job %d has a nil tree", i)
		}
		if _, ok := treeIdx[j.Tree]; !ok {
			treeIdx[j.Tree] = len(trees)
			trees = append(trees, j.Tree)
		}
		if len(j.Order) > 0 {
			k := orderKey{&j.Order[0], len(j.Order)}
			if _, ok := orderIdx[k]; !ok {
				orderIdx[k] = len(orders)
				orders = append(orders, j.Order)
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(trees)))
	for _, t := range trees {
		buf = t.AppendBinary(buf)
	}
	buf = binary.AppendUvarint(buf, uint64(len(orders)))
	for _, o := range orders {
		buf = binary.AppendUvarint(buf, uint64(len(o)))
		for _, v := range o {
			buf = binary.AppendVarint(buf, int64(v))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(jobs)))
	for i := range jobs {
		j := &jobs[i]
		buf = binary.AppendUvarint(buf, uint64(treeIdx[j.Tree]))
		oi := 0
		if len(j.Order) > 0 {
			oi = orderIdx[orderKey{&j.Order[0], len(j.Order)}] + 1
		}
		buf = binary.AppendUvarint(buf, uint64(oi))
		buf = binary.AppendUvarint(buf, uint64(len(j.Instance)))
		buf = append(buf, j.Instance...)
		buf = binary.AppendUvarint(buf, uint64(len(j.Algorithm)))
		buf = append(buf, j.Algorithm...)
		buf = binary.AppendVarint(buf, j.Memory)
		buf = binary.AppendVarint(buf, int64(j.Window))
	}
	return buf, nil
}

// decodeBatchBinary parses a binary batch request body into jobs sharing
// one *tree.Tree per table entry and one []int per order table entry.
func decodeBatchBinary(data []byte) (jobs []schedule.Job, workers int, err error) {
	if len(data) < 3 {
		return nil, 0, fmt.Errorf("service: binary batch request too short")
	}
	if data[0] != schedule.WireMagic || data[1] != batchRequestKind {
		return nil, 0, fmt.Errorf("service: bad binary batch header % X", data[:3])
	}
	if data[2] != binaryBatchVersion {
		return nil, 0, fmt.Errorf("service: unsupported binary batch version %d (want %d)", data[2], binaryBatchVersion)
	}
	data = data[3:]
	uv := func(field string) uint64 {
		if err != nil {
			return 0
		}
		v, n := binary.Uvarint(data)
		if n <= 0 {
			err = fmt.Errorf("service: binary batch has a malformed %s", field)
			return 0
		}
		data = data[n:]
		return v
	}
	sv := func(field string) int64 {
		if err != nil {
			return 0
		}
		v, n := binary.Varint(data)
		if n <= 0 {
			err = fmt.Errorf("service: binary batch has a malformed %s", field)
			return 0
		}
		data = data[n:]
		return v
	}
	str := func(field string) string {
		n := uv(field)
		if err != nil {
			return ""
		}
		if n > uint64(len(data)) {
			err = fmt.Errorf("service: binary batch has a truncated %s", field)
			return ""
		}
		s := string(data[:n])
		data = data[n:]
		return s
	}
	w := uv("workers count")
	treeCount := uv("tree count")
	if err != nil {
		return nil, 0, err
	}
	if treeCount > uint64(len(data)) {
		return nil, 0, fmt.Errorf("service: binary batch claims %d trees in %d bytes", treeCount, len(data))
	}
	trees := make([]*tree.Tree, treeCount)
	for i := range trees {
		var t *tree.Tree
		t, data, err = tree.DecodeBinary(data)
		if err != nil {
			return nil, 0, fmt.Errorf("service: binary batch tree %d: %w", i, err)
		}
		trees[i] = t
	}
	orderCount := uv("order count")
	if err != nil {
		return nil, 0, err
	}
	if orderCount > uint64(len(data)) {
		return nil, 0, fmt.Errorf("service: binary batch claims %d orders in %d bytes", orderCount, len(data))
	}
	orders := make([][]int, orderCount)
	for i := range orders {
		n := uv("order length")
		if err != nil {
			return nil, 0, err
		}
		if n > uint64(len(data)) {
			return nil, 0, fmt.Errorf("service: binary batch order %d claims %d nodes in %d bytes", i, n, len(data))
		}
		o := make([]int, n)
		for k := range o {
			o[k] = int(sv("order node"))
		}
		if err != nil {
			return nil, 0, err
		}
		orders[i] = o
	}
	jobCount := uv("job count")
	if err != nil {
		return nil, 0, err
	}
	if jobCount > uint64(len(data)) {
		return nil, 0, fmt.Errorf("service: binary batch claims %d jobs in %d bytes", jobCount, len(data))
	}
	jobs = make([]schedule.Job, jobCount)
	for i := range jobs {
		ti := uv("tree index")
		oi := uv("order index")
		inst := str("instance")
		alg := str("algorithm")
		mem := sv("memory")
		win := sv("window")
		if err != nil {
			return nil, 0, err
		}
		if ti >= uint64(len(trees)) {
			return nil, 0, fmt.Errorf("service: job %d references tree %d of %d", i, ti, len(trees))
		}
		var order []int
		if oi > 0 {
			if oi > uint64(len(orders)) {
				return nil, 0, fmt.Errorf("service: job %d references order %d of %d", i, oi-1, len(orders))
			}
			order = orders[oi-1]
		}
		jobs[i] = schedule.Job{
			Instance:  inst,
			Tree:      trees[ti],
			Algorithm: alg,
			Order:     order,
			Memory:    mem,
			Window:    int(win),
		}
	}
	if len(data) != 0 {
		return nil, 0, fmt.Errorf("service: binary batch has %d trailing bytes", len(data))
	}
	return jobs, int(w), nil
}

// isBinaryBatch reports whether a request Content-Type selects the binary
// batch request form.
func isBinaryBatch(contentType string) bool {
	mt, _, err := mime.ParseMediaType(contentType)
	return err == nil && mt == ContentTypeBinaryBatch
}

// isBinaryRows reports whether a response Content-Type is the framed
// binary row stream.
func isBinaryRows(contentType string) bool {
	mt, _, err := mime.ParseMediaType(contentType)
	return err == nil && mt == ContentTypeBinaryRows
}

// acceptsBinaryRows reports whether an Accept header asks for the binary
// response stream. Absent or wildcard Accept keeps the JSON Lines default.
func acceptsBinaryRows(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err == nil && mt == ContentTypeBinaryRows {
			return true
		}
	}
	return false
}

// batchResponder abstracts the two response stream forms so handleBatch
// evaluates once regardless of negotiation.
type batchResponder interface {
	row(i int, r schedule.Row)
	fail(msg string)
	done(count int)
}

// jsonResponder streams the JSON Lines response form.
type jsonResponder struct {
	enc     interface{ Encode(any) error }
	flusher interface{ Flush() }
}

func (j *jsonResponder) flush() {
	if j.flusher != nil {
		j.flusher.Flush()
	}
}

func (j *jsonResponder) row(i int, r schedule.Row) {
	j.enc.Encode(BatchLine{Index: i, Row: &r})
	j.flush()
}

func (j *jsonResponder) fail(msg string) { j.enc.Encode(BatchLine{Error: msg}); j.flush() }

func (j *jsonResponder) done(count int) { j.enc.Encode(BatchLine{Done: true, Count: count}); j.flush() }

// binaryResponder streams the framed binary response form, reusing one
// scratch buffer across frames.
type binaryResponder struct {
	w       io.Writer
	flusher interface{ Flush() }
	scratch []byte
	header  bool
}

func (b *binaryResponder) frame() {
	if !b.header {
		b.header = true
		b.w.Write([]byte{schedule.WireMagic, batchResponseKind, binaryBatchVersion})
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(b.scratch)))
	b.w.Write(lenBuf[:n])
	b.w.Write(b.scratch)
	if b.flusher != nil {
		b.flusher.Flush()
	}
}

func (b *binaryResponder) row(i int, r schedule.Row) {
	b.scratch = append(b.scratch[:0], frameRow)
	b.scratch = binary.AppendUvarint(b.scratch, uint64(i))
	b.scratch = schedule.AppendRow(b.scratch, r)
	b.frame()
}

func (b *binaryResponder) fail(msg string) {
	b.scratch = append(b.scratch[:0], frameError)
	b.scratch = append(b.scratch, msg...)
	b.frame()
}

func (b *binaryResponder) done(count int) {
	b.scratch = append(b.scratch[:0], frameDone)
	b.scratch = binary.AppendUvarint(b.scratch, uint64(count))
	b.frame()
}

// readBinaryResponse consumes a binary batch response stream, filling
// rows/got exactly like the JSON Lines reader: duplicate indices (replays
// from an earlier attempt) are dropped, an error frame is a deterministic
// failure, and a stream that ends without a terminator frame is transient.
func readBinaryResponse(body io.Reader, jobs []schedule.Job, opt schedule.BatchOptions, rows []schedule.Row, got []bool) error {
	br := bufio.NewReader(body)
	var hdr [3]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return transientError{fmt.Errorf("service: binary response header: %w", err)}
	}
	if hdr[0] != schedule.WireMagic || hdr[1] != batchResponseKind {
		return fmt.Errorf("service: bad binary response header % X", hdr[:])
	}
	if hdr[2] != binaryBatchVersion {
		return fmt.Errorf("service: unsupported binary response version %d (want %d)", hdr[2], binaryBatchVersion)
	}
	var buf []byte
	for {
		frameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return transientError{fmt.Errorf("service: binary response stream truncated (no terminator frame)")}
		}
		if frameLen == 0 || frameLen > maxResponseFrame {
			return fmt.Errorf("service: binary response frame of %d bytes is out of range", frameLen)
		}
		if uint64(cap(buf)) < frameLen {
			buf = make([]byte, frameLen)
		}
		buf = buf[:frameLen]
		if _, err := io.ReadFull(br, buf); err != nil {
			return transientError{fmt.Errorf("service: binary response stream truncated mid-frame: %w", err)}
		}
		switch buf[0] {
		case frameError:
			return fmt.Errorf("service: remote batch failed: %s", buf[1:])
		case frameDone:
			count, n := binary.Uvarint(buf[1:])
			if n <= 0 {
				return fmt.Errorf("service: binary response has a malformed done frame")
			}
			if count != uint64(len(jobs)) {
				return fmt.Errorf("service: server reports %d rows, want %d", count, len(jobs))
			}
			for i, ok := range got {
				if !ok {
					return fmt.Errorf("service: no row received for job %d", i)
				}
			}
			return nil
		case frameRow:
			idx, n := binary.Uvarint(buf[1:])
			if n <= 0 {
				return fmt.Errorf("service: binary response has a malformed row index")
			}
			row, rest, err := schedule.DecodeRow(buf[1+n:])
			if err != nil {
				return err
			}
			if len(rest) != 0 {
				return fmt.Errorf("service: binary row frame has %d trailing bytes", len(rest))
			}
			if idx >= uint64(len(jobs)) {
				return fmt.Errorf("service: row index %d out of range [0,%d)", idx, len(jobs))
			}
			if got[idx] {
				continue // replay of a row an earlier attempt delivered
			}
			rows[idx] = row
			got[idx] = true
			if opt.OnRow != nil {
				opt.OnRow(row)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(int(idx), row)
			}
		default:
			return fmt.Errorf("service: unrecognized binary response frame type %d", buf[0])
		}
	}
}
