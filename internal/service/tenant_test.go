package service_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/tenant"
	"repro/internal/tree"
)

// startServerWith is startServer for tests that need ServerOptions —
// quota registries, metrics sources, concurrency — and the raw base URL
// for endpoints the Client does not wrap (GET /v1/trees, /metrics).
func startServerWith(t *testing.T, opt service.ServerOptions) (*service.Client, string) {
	t.Helper()
	srv := httptest.NewServer(service.NewServerWith(opt).Handler())
	t.Cleanup(srv.Close)
	return service.NewClient(srv.URL, srv.Client()), srv.URL
}

func httpGet(t *testing.T, url, tenantName string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenantName != "" {
		req.Header.Set(service.TenantHeader, tenantName)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// metricValue finds the sample whose name{labels} exactly equals prefix in
// a /metrics exposition and returns its value.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", prefix, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", prefix, body)
	return 0
}

func sameRowsModuloSeconds(t *testing.T, got, want []schedule.Row, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s returned %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("%s row %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// Uploaded trees land in the caller's corpus, dedup by digest, and a
// by-digest batch returns rows bit-identical to the inlined batch. The
// corpus is namespaced: another tenant's digest reference is a 400 miss.
func TestTreeUploadDedupAndByDigestBatch(t *testing.T) {
	jobs := testJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	client, base := startServerWith(t, service.ServerOptions{})
	client.Tenant = "acme"

	var trees []*tree.Tree
	for _, inst := range testInstances(t) {
		trees = append(trees, inst.Tree)
	}
	digests, err := client.UploadTrees(context.Background(), trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != len(trees) {
		t.Fatalf("upload returned %d digests, want %d", len(digests), len(trees))
	}
	for i, tr := range trees {
		if digests[i] != tr.Digest() {
			t.Fatalf("tree %d: digest %s from server, want %s", i, digests[i], tr.Digest())
		}
	}
	again, err := client.UploadTrees(context.Background(), trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(trees) {
		t.Fatalf("re-upload returned %d digests, want %d", len(again), len(trees))
	}
	code, body := httpGet(t, base+"/v1/trees", "acme")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/trees: %d %s", code, body)
	}
	for _, d := range digests {
		if !strings.Contains(body, d.String()) {
			t.Fatalf("corpus listing misses digest %s: %s", d, body)
		}
	}

	client.ByDigest = true
	got, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsModuloSeconds(t, got, want, "by-digest batch")

	// The same digests under a different tenant name are a corpus miss.
	stranger := service.NewClient(base, nil)
	stranger.Tenant = "stranger"
	stranger.ByDigest = true
	_, err = stranger.Run(context.Background(), jobs, schedule.BatchOptions{})
	var se *service.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("foreign tenant's digest batch: err %v, want a 400", err)
	}
	if !strings.Contains(se.Msg, "corpus") {
		t.Fatalf("corpus miss should point at /v1/trees: %q", se.Msg)
	}
}

// ByDigest rides the JSON transport's id namespace; the binary wire form
// always inlines trees, so the combination is a client-side error.
func TestByDigestRequiresJSONTransport(t *testing.T) {
	client, _ := startServerWith(t, service.ServerOptions{})
	client.Binary = true
	client.ByDigest = true
	if _, err := client.Run(context.Background(), testJobs(t)[:1], schedule.BatchOptions{}); err == nil {
		t.Fatal("Binary+ByDigest batch must be rejected client-side")
	}
}

// An over-rate batch is rejected with 429 and a Retry-After the client's
// retry loop honors: the resubmission waits at least that long and then
// completes with rows bit-identical to a local run.
func TestRateLimitRejectsWithRetryAfterAndClientBackoff(t *testing.T) {
	jobs := testJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry(tenant.Limits{RatePerSec: 50, Burst: 4})
	client, base := startServerWith(t, service.ServerOptions{Tenants: reg})
	client.Tenant = "acme"

	// The full bucket admits even an oversized batch, charging it in full.
	got, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsModuloSeconds(t, got, want, "first admitted batch")

	// The bucket is now deep in debt: an immediate resubmission is a 429
	// carrying Retry-After (the header floor is one second).
	bare := service.NewClient(base, nil)
	bare.Tenant = "acme"
	_, err = bare.Run(context.Background(), jobs, schedule.BatchOptions{})
	var se *service.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate batch: err %v, want a 429", err)
	}
	if se.RetryAfter < time.Second {
		t.Fatalf("429 must carry Retry-After ≥ 1s, got %v", se.RetryAfter)
	}

	// A retrying client backs off for the advertised delay and succeeds.
	var throttles atomic.Int64
	retrier := service.NewClient(base, nil)
	retrier.Tenant = "acme"
	retrier.Retries = 4
	retrier.RetryBackoff = 10 * time.Millisecond
	retrier.OnThrottle = func(after time.Duration) {
		if after < time.Second {
			t.Errorf("OnThrottle delay %v, want ≥ 1s", after)
		}
		throttles.Add(1)
	}
	start := time.Now()
	got, err = retrier.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsModuloSeconds(t, got, want, "throttled-then-admitted batch")
	if throttles.Load() < 1 {
		t.Fatal("retrying client never observed a throttle")
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("client retried after %v, want a back-off near Retry-After", elapsed)
	}
}

// The queue quota bounds admitted-but-unfinished jobs: a batch that alone
// exceeds it is rejected deterministically, while one inside the bound
// runs — and runs again, proving completed batches release their slots.
func TestQueueQuotaRejectsOversizedBatch(t *testing.T) {
	jobs := testJobs(t)
	reg := tenant.NewRegistry(tenant.Limits{MaxQueued: 2})
	client, _ := startServerWith(t, service.ServerOptions{Tenants: reg})
	client.Tenant = "acme"

	_, err := client.Run(context.Background(), jobs, schedule.BatchOptions{})
	var se *service.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch: err %v, want a 429", err)
	}
	if !strings.Contains(se.Msg, "queue") {
		t.Fatalf("rejection should name the queue quota: %q", se.Msg)
	}
	for round := 0; round < 2; round++ {
		if _, err := client.Run(context.Background(), jobs[:2], schedule.BatchOptions{}); err != nil {
			t.Fatalf("round %d within the quota: %v", round, err)
		}
	}
}

// A corpus past its MaxTrees bound refuses new uploads with 413 — a
// deterministic rejection, not a retryable throttle.
func TestUploadRejectedWhenCorpusFull(t *testing.T) {
	insts := testInstances(t)
	reg := tenant.NewRegistry(tenant.Limits{MaxTrees: 1})
	client, _ := startServerWith(t, service.ServerOptions{Tenants: reg})
	client.Tenant = "acme"
	_, err := client.UploadTrees(context.Background(), []*tree.Tree{insts[0].Tree, insts[1].Tree})
	var se *service.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("upload past MaxTrees: err %v, want a 413", err)
	}
	// The resident tree re-uploads fine (dedup, not growth).
	if _, err := client.UploadTrees(context.Background(), []*tree.Tree{insts[0].Tree}); err != nil {
		t.Fatalf("re-upload of the resident tree: %v", err)
	}
}

// /metrics exposes the server's batch/tree counters, the cache and shard
// counters it was configured with, and per-tenant admission stats, in the
// Prometheus text exposition format.
func TestMetricsEndpoint(t *testing.T) {
	jobs := testJobs(t)
	n := len(jobs)
	shard, err := schedule.NewShard(schedule.Local{})
	if err != nil {
		t.Fatal(err)
	}
	cached := schedule.NewCached(shard, nil)
	reg := tenant.NewRegistry(tenant.Limits{RatePerSec: 0.5, Burst: n})
	client, base := startServerWith(t, service.ServerOptions{
		Backend: cached,
		Tenants: reg,
		Cache:   cached,
		Shard:   shard,
	})
	client.Tenant = "acme"

	var trees []*tree.Tree
	for _, inst := range testInstances(t) {
		trees = append(trees, inst.Tree)
	}
	for i := 0; i < 2; i++ { // second round dedups every tree
		if _, err := client.UploadTrees(context.Background(), trees); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	// The bucket is drained and refills at 0.5/s: this rejection is sure.
	if _, err := client.Run(context.Background(), jobs, schedule.BatchOptions{}); err == nil {
		t.Fatal("second immediate batch must be throttled")
	}

	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("exposition content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for prefix, want := range map[string]float64{
		`scheduled_batches_total{outcome="ok"}`:                              1,
		`scheduled_batches_total{outcome="rejected"}`:                        1,
		`scheduled_batches_total{outcome="failed"}`:                          0,
		`scheduled_rows_streamed_total`:                                      float64(n),
		`scheduled_trees_uploaded_total{outcome="added"}`:                    float64(len(trees)),
		`scheduled_trees_uploaded_total{outcome="deduped"}`:                  float64(len(trees)),
		`scheduled_tenant_accepted_jobs_total{tenant="acme"}`:                float64(n),
		`scheduled_tenant_rejected_jobs_total{tenant="acme",reason="rate"}`:  float64(n),
		`scheduled_tenant_rejected_jobs_total{tenant="acme",reason="queue"}`: 0,
		`scheduled_tenant_queued_jobs{tenant="acme"}`:                        0,
		`scheduled_tenant_trees{tenant="acme"}`:                              float64(len(trees)),
		`scheduled_cache_misses_total`:                                       float64(n),
		`scheduled_shard_resubmissions_total`:                                0,
		`scheduled_shard_load_sheds_total`:                                   0,
		fmt.Sprintf(`scheduled_shard_child_rows_total{child=%q}`, "local"):   float64(n),
	} {
		if got := metricValue(t, body, prefix); got != want {
			t.Fatalf("%s = %g, want %g", prefix, got, want)
		}
	}
	if hits := metricValue(t, body, "scheduled_cache_hits_total"); hits != 0 {
		t.Fatalf("cold cache reported %g hits", hits)
	}
}

// Satellite pin: a chunk rejected with 429 by one child is resubmitted by
// the shard to another, and the merged stream announces every row exactly
// once — no duplicates from the failed dispatch.
func TestShardResubmitsRejectedChunkWithoutDuplicates(t *testing.T) {
	jobs := testJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Child A rejects every chunk: its queue quota (1 job) is below any
	// chunk size, a deterministic 429. Child B is unlimited.
	rejecting := tenant.NewRegistry(tenant.Limits{MaxQueued: 1})
	ca, baseA := startServerWith(t, service.ServerOptions{Tenants: rejecting})
	cb, _ := startServerWith(t, service.ServerOptions{})
	// No client-side retries: the 429 surfaces to the shard immediately.
	shard, err := schedule.NewShardWith(schedule.ShardOptions{
		QuarantineBase: time.Millisecond,
	}, ca, cb)
	if err != nil {
		t.Fatal(err)
	}

	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	sameRowsModuloSeconds(t, sank.Rows(), want, "shard over a rejecting child")
	if c := shard.Counters(); c.Resubmissions < 1 {
		t.Fatalf("rejected chunks were not resubmitted: counters %+v", c)
	}
	_, body := httpGet(t, baseA+"/metrics", "")
	if v := metricValue(t, body, `scheduled_tenant_rejected_jobs_total{tenant="default",reason="queue"}`); v < 4 {
		t.Fatalf("rejecting child counted %g rejected jobs, want ≥ one chunk", v)
	}
}

// Acceptance pin: a quota-limited sharded export stays bit-identical to a
// local run for the admitted work — throttled chunks back off per the
// servers' Retry-After and land eventually, never duplicated or dropped.
func TestQuotaLimitedShardMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("backs off for whole seconds on 429s")
	}
	jobs := testJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var throttles atomic.Int64
	children := make([]schedule.Backend, 2)
	for i := range children {
		reg := tenant.NewRegistry(tenant.Limits{RatePerSec: 4, Burst: 8})
		c, _ := startServerWith(t, service.ServerOptions{Tenants: reg})
		c.Tenant = "load"
		c.Retries = 8
		c.RetryBackoff = 10 * time.Millisecond
		c.OnThrottle = func(time.Duration) { throttles.Add(1) }
		children[i] = c
	}
	shard, err := schedule.NewShard(children...)
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	sameRowsModuloSeconds(t, sank.Rows(), want, "quota-limited shard")
	if throttles.Load() < 1 {
		t.Fatal("the quota never throttled a chunk — tighten the limits")
	}
}

// ServerOptions.Concurrency lifts the historical one-batch-at-a-time
// bound: concurrent submissions overlap on the backend.
func TestServerConcurrencyOption(t *testing.T) {
	probe := &concurrencyBackend{inner: schedule.Local{}}
	client, _ := startServerWith(t, service.ServerOptions{Backend: probe, Concurrency: 3})
	jobs := testJobs(t)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Run(context.Background(), jobs[:4], schedule.BatchOptions{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := probe.peak.Load(); p < 2 {
		t.Fatalf("Concurrency 3 never overlapped batches (peak %d)", p)
	}
}

// Satellite pin: Health probes /healthz, not the algorithm registry — a
// server whose discovery endpoint is broken still reads as healthy.
func TestHealthIndependentOfAlgorithmsEndpoint(t *testing.T) {
	inner := service.NewServer(nil, 0).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/algorithms" {
			http.Error(w, "discovery down", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	client := service.NewClient(srv.URL, srv.Client())
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("health must not depend on /v1/algorithms: %v", err)
	}
	if _, err := client.Algorithms(context.Background()); err == nil {
		t.Fatal("discovery is down; Algorithms must error")
	}
}
