package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/schedule"
	"repro/internal/service"
)

// rowsEqualNoTime fails the test unless the two row sets are bit-identical
// modulo the Seconds column.
func rowsEqualNoTime(t *testing.T, label string, got, want []schedule.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("%s: row %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// The binary transport returns the rows of a JSON run bit-identically (the
// Seconds column aside), with the same streaming callback contract.
func TestBinaryTransportMatchesJSON(t *testing.T) {
	jobs := testJobs(t)
	jsonClient := startServer(t, nil)
	jsonRows, err := jsonClient.Run(context.Background(), jobs, schedule.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	binClient := startServer(t, nil)
	binClient.Binary = true
	streamed := 0
	indexed := map[int]bool{}
	binRows, err := binClient.Run(context.Background(), jobs, schedule.BatchOptions{
		Workers: 4,
		OnRow:   func(schedule.Row) { streamed++ },
		OnRowIndexed: func(i int, r schedule.Row) {
			if indexed[i] {
				t.Fatalf("row %d streamed twice", i)
			}
			indexed[i] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(jobs) || len(indexed) != len(jobs) {
		t.Fatalf("streamed %d rows (%d indexed), want %d", streamed, len(indexed), len(jobs))
	}
	rowsEqualNoTime(t, "binary vs json", binRows, jsonRows)
}

// A server predating the binary protocol answers a binary POST with a
// deterministic 400: the client must fail immediately, not retry.
func TestBinaryAgainstLegacyServerFailsFast(t *testing.T) {
	var hits atomic.Int32
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		// A pre-binary server JSON-decodes every batch body; the wire magic
		// is not valid JSON, so the request dies with a 400.
		var req service.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
			return
		}
		t.Error("legacy server decoded a binary body as JSON")
	}))
	t.Cleanup(legacy.Close)
	client := service.NewClient(legacy.URL, legacy.Client())
	client.Binary = true
	client.Retries = 3
	if _, err := client.Run(context.Background(), testJobs(t)[:2], schedule.BatchOptions{}); err == nil {
		t.Fatal("binary batch against a legacy server succeeded")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("legacy server hit %d times, want exactly 1 (400 must not be retried)", n)
	}
}

// A shard mixing one JSON child and one binary child returns the rows of a
// local run bit-identically: transport negotiation is invisible above the
// Backend interface.
func TestShardMixesJSONAndBinaryChildren(t *testing.T) {
	jobs := testJobs(t)
	local, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jsonChild := startServer(t, nil)
	binChild := startServer(t, nil)
	binChild.Binary = true
	shard, err := schedule.NewShard(jsonChild, binChild)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := shard.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqualNoTime(t, "mixed shard vs local", rows, local)
}
