// Package service exposes the schedule algorithm registry as a long-running
// HTTP/JSON evaluation service, plus the client that speaks to it. The
// server side is a plain http.Handler (cmd/scheduled serves it); the Client
// implements schedule.Backend, so a remote server slots into any code that
// evaluates grids through the Backend interface.
//
// Wire protocol (versioned under /v1):
//
//	GET  /healthz        → {"status":"ok","algorithms":N}
//	GET  /v1/algorithms  → JSON array of {name, kind, display}
//	POST /v1/batch       → request: {"trees": {id: <.tree text>},
//	                                 "jobs": [{instance, tree, algorithm,
//	                                           order?, memory?, window?}],
//	                                 "workers"?: N}
//	                       response: JSON Lines, one line per completed job
//	                       in completion order — {"index": i, "row": {…}} —
//	                       terminated by {"done": true, "count": N} on
//	                       success or {"error": "…"} on failure.
//	POST /v1/warm        → request: {"entries": [{key, row}, …]}
//	                       response: {"stored": N}
//
// Trees travel in the .tree wire form of internal/tree (text, one node per
// line) and are referenced by id from jobs, so a grid of J jobs over T
// trees serializes each tree once, not J times. The trailing done/error
// line is mandatory: rows stream as they complete, so the HTTP status is
// already committed when a late job fails, and a client must treat a stream
// without a terminator as truncated.
//
// /v1/warm is the cache-warming sink of cross-shard gossip: a shard (or a
// sibling server) pushes rows it computed, keyed by schedule.CacheKey, and
// a server configured with a row store (ServerOptions.Store, cmd/scheduled
// -cache) stores them so a resubmitted or re-run chunk is answered without
// recomputation. A server without a store accepts the push and stores
// nothing ({"stored": 0}) — warming a cacheless server is a no-op, not an
// error.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// AlgorithmInfo describes one registry entry on the wire.
type AlgorithmInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Display string `json:"display"`
}

// JobSpec is one job on the wire: schedule.Job with the tree replaced by a
// reference into BatchRequest.Trees.
type JobSpec struct {
	Instance  string `json:"instance"`
	Tree      string `json:"tree"`
	Algorithm string `json:"algorithm"`
	Order     []int  `json:"order,omitempty"`
	Memory    int64  `json:"memory,omitempty"`
	Window    int    `json:"window,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Trees maps tree ids to .tree wire-form text.
	Trees map[string]string `json:"trees"`
	Jobs  []JobSpec         `json:"jobs"`
	// Workers bounds the server-side worker pool (≤ 0: server default).
	Workers int `json:"workers,omitempty"`
}

// BatchLine is one line of the POST /v1/batch response stream.
type BatchLine struct {
	Index int           `json:"index,omitempty"`
	Row   *schedule.Row `json:"row,omitempty"`
	Error string        `json:"error,omitempty"`
	Done  bool          `json:"done,omitempty"`
	Count int           `json:"count,omitempty"`
}

// WarmRequest is the body of POST /v1/warm: rows computed elsewhere, keyed
// by schedule.CacheKey, offered to this server's row store.
type WarmRequest struct {
	Entries []schedule.WarmEntry `json:"entries"`
}

// WarmResponse is the body of the POST /v1/warm response.
type WarmResponse struct {
	// Stored is the number of entries accepted into the store (0 when the
	// server has no store).
	Stored int `json:"stored"`
}

// maxBatchBytes bounds a batch request body (64 MiB — a full-scale grid
// over the dataset suite is well under 10 MiB on the wire).
const maxBatchBytes = 64 << 20

// Server answers the evaluation API over a schedule.Backend.
type Server struct {
	backend schedule.Backend
	workers int
	store   schedule.Store
	// evalSem serializes batch evaluations: the workers bound is per
	// server, not per request, so concurrent submissions (several clients,
	// or one client streaming chunks in flight) queue instead of each
	// spinning up their own worker pool. The wait is context-aware, so a
	// client that disconnects while queued releases its slot.
	evalSem chan struct{}
}

// ServerOptions configures NewServerWith.
type ServerOptions struct {
	// Backend evaluates the batches (nil selects schedule.Local).
	Backend schedule.Backend
	// Workers bounds each batch's worker pool unless the request asks for
	// fewer (≤ 0: GOMAXPROCS). The bound is global: batches evaluate one at
	// a time, so concurrent submissions cannot multiply the pool.
	Workers int
	// Store, when non-nil, receives rows pushed to /v1/warm — normally the
	// same row store the backend's cache reads, so warmed rows answer later
	// batches. A nil store keeps /v1/warm a no-op.
	Store schedule.Store
}

// NewServer builds a server over backend (nil selects schedule.Local) with
// workers bounding each batch's pool unless the request asks for fewer
// (≤ 0: GOMAXPROCS). The bound is global: batches evaluate one at a time,
// so concurrent submissions cannot multiply the pool. Warm pushes are
// dropped; use NewServerWith to accept them into a store.
func NewServer(backend schedule.Backend, workers int) *Server {
	return NewServerWith(ServerOptions{Backend: backend, Workers: workers})
}

// NewServerWith builds a server from the options.
func NewServerWith(opt ServerOptions) *Server {
	if opt.Backend == nil {
		opt.Backend = schedule.Local{}
	}
	return &Server{backend: opt.Backend, workers: opt.Workers, store: opt.Store, evalSem: make(chan struct{}, 1)}
}

// Handler returns the routed http.Handler for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/warm", s.handleWarm)
	return mux
}

// handleWarm accepts rows computed elsewhere into the server's row store.
// Entries with empty keys are rejected as malformed; a server without a
// store accepts the push and stores nothing.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req WarmRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad warm request: "+err.Error(), http.StatusBadRequest)
		return
	}
	for i, e := range req.Entries {
		if e.Key == "" {
			http.Error(w, fmt.Sprintf("warm entry %d has an empty key", i), http.StatusBadRequest)
			return
		}
	}
	stored := 0
	if s.store != nil {
		for _, e := range req.Entries {
			if err := s.store.Put(e.Key, e.Row); err != nil {
				http.Error(w, "store warm entry: "+err.Error(), http.StatusInternalServerError)
				return
			}
			stored++
		}
	}
	writeJSON(w, http.StatusOK, WarmResponse{Stored: stored})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"backend":    s.backend.Capabilities().Name,
		"algorithms": len(schedule.Names()),
	})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var infos []AlgorithmInfo
	for _, name := range schedule.Names() {
		alg, err := schedule.Lookup(name)
		if err != nil {
			continue // unregistered between Names and Lookup: impossible today
		}
		infos = append(infos, AlgorithmInfo{Name: name, Kind: alg.Kind().String(), Display: schedule.DisplayName(name)})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	var (
		jobs       []schedule.Job
		reqWorkers int
	)
	if isBinaryBatch(r.Header.Get("Content-Type")) {
		data, err := io.ReadAll(body)
		if err != nil {
			http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
			return
		}
		jobs, reqWorkers, err = decodeBatchBinary(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		var req BatchRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		if jobs, err = decodeJobs(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reqWorkers = req.Workers
	}
	// The request can narrow the server's worker bound, never widen it: a
	// remote client must not be able to oversubscribe the server.
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if reqWorkers > 0 && reqWorkers < workers {
		workers = reqWorkers
	}

	// From here on the response is a committed 200 stream; failures travel
	// as a trailing error/terminator frame, not a status code. The stream
	// form follows the Accept header, independently of the request form.
	flusher, _ := w.(http.Flusher)
	var resp batchResponder
	if acceptsBinaryRows(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", ContentTypeBinaryRows)
		w.WriteHeader(http.StatusOK)
		resp = &binaryResponder{w: w, flusher: flusher}
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
		w.WriteHeader(http.StatusOK)
		resp = &jsonResponder{enc: json.NewEncoder(w), flusher: flusher}
	}
	if flusher != nil {
		flusher.Flush() // commit the stream while (possibly) queued
	}
	select {
	case s.evalSem <- struct{}{}:
		defer func() { <-s.evalSem }()
	case <-r.Context().Done():
		resp.fail(r.Context().Err().Error())
		return
	}
	rows, err := s.backend.Run(r.Context(), jobs, schedule.BatchOptions{
		Workers:      workers,
		OnRowIndexed: resp.row,
	})
	if err != nil {
		resp.fail(err.Error())
		return
	}
	resp.done(len(rows))
}

// decodeJobs parses the request's trees once each and resolves job specs
// against them.
func decodeJobs(req BatchRequest) ([]schedule.Job, error) {
	trees := make(map[string]*tree.Tree, len(req.Trees))
	for id, text := range req.Trees {
		t, err := tree.Read(strings.NewReader(text))
		if err != nil {
			return nil, fmt.Errorf("service: tree %q: %w", id, err)
		}
		trees[id] = t
	}
	jobs := make([]schedule.Job, len(req.Jobs))
	for i, spec := range req.Jobs {
		t, ok := trees[spec.Tree]
		if !ok {
			return nil, fmt.Errorf("service: job %d references unknown tree %q", i, spec.Tree)
		}
		jobs[i] = schedule.Job{
			Instance:  spec.Instance,
			Tree:      t,
			Algorithm: spec.Algorithm,
			Order:     spec.Order,
			Memory:    spec.Memory,
			Window:    spec.Window,
		}
	}
	return jobs, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
