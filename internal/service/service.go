// Package service exposes the schedule algorithm registry as a long-running
// HTTP/JSON evaluation service, plus the client that speaks to it. The
// server side is a plain http.Handler (cmd/scheduled serves it); the Client
// implements schedule.Backend, so a remote server slots into any code that
// evaluates grids through the Backend interface.
//
// Wire protocol (versioned under /v1):
//
//	GET  /healthz        → {"status":"ok","algorithms":N}
//	GET  /v1/algorithms  → JSON array of {name, kind, display}
//	POST /v1/batch       → request: {"trees": {id: <.tree text>},
//	                                 "jobs": [{instance, tree, algorithm,
//	                                           order?, memory?, window?}],
//	                                 "workers"?: N}
//	                       response: JSON Lines, one line per completed job
//	                       in completion order — {"index": i, "row": {…}} —
//	                       terminated by {"done": true, "count": N} on
//	                       success or {"error": "…"} on failure.
//	POST /v1/warm        → request: {"entries": [{key, row}, …]}
//	                       response: {"stored": N}
//	POST /v1/trees       → request: {"trees": [<.tree text>, …]}
//	                       response: {"digests": [hex…], "added": N,
//	                                  "deduped": M}
//	GET  /v1/trees       → {"digests": [hex…]} (the tenant's corpus)
//	GET  /metrics        → Prometheus text exposition of the server's
//	                       counters (see metrics.go)
//
// Trees travel in the .tree wire form of internal/tree (text, one node per
// line) and are referenced by id from jobs, so a grid of J jobs over T
// trees serializes each tree once, not J times. The trailing done/error
// line is mandatory: rows stream as they complete, so the HTTP status is
// already committed when a late job fails, and a client must treat a stream
// without a terminator as truncated.
//
// # Tenancy and admission control
//
// Every request may carry an X-Tenant header naming the caller's tenant
// (empty means "default"). Each tenant owns an isolated tree corpus:
// POST /v1/trees uploads .tree instances once, deduplicated by
// tree.Digest, and a JSON batch job may then reference a corpus tree by
// its 64-hex digest in the "tree" field instead of an id into the
// request's inline map (the inline map wins when an id is present in
// both). The binary batch transport always inlines trees, so digest
// references are a JSON-transport feature.
//
// Before a batch commits its response stream the server runs admission
// control: first the backend's verdict (schedule.Admitter — a shard sheds
// load when every healthy child's queue is deep), then the tenant's token
// bucket and queue-depth quota (internal/tenant). Over-limit work is
// rejected with 429 and a Retry-After header (integer seconds) before any
// response bytes stream, so a rejected batch is cheap for both sides;
// Client honors the header by delaying its retry at least that long. A
// corpus at its tree bound rejects uploads with 413, which is
// deterministic and must not be retried.
//
// /v1/warm is the cache-warming sink of cross-shard gossip: a shard (or a
// sibling server) pushes rows it computed, keyed by schedule.CacheKey, and
// a server configured with a row store (ServerOptions.Store, cmd/scheduled
// -cache) stores them so a resubmitted or re-run chunk is answered without
// recomputation. A server without a store accepts the push and stores
// nothing ({"stored": 0}) — warming a cacheless server is a no-op, not an
// error. The row cache is content-addressed and therefore shared across
// tenants by design — equal trees produce equal rows, so there is nothing
// tenant-specific to leak — and /v1/warm is likewise tenant-unscoped.
//
// With ServerOptions.Gossip (cmd/scheduled -peers) the server is also a
// warm-push source: after each successful batch it offers the batch's
// keyed rows to its peers' /v1/warm endpoints through the Gossiper's
// bounded, drop-on-backpressure queues, so caches heat fleet-wide without
// a shard in the loop. Rows received on /v1/warm are stored but never
// re-gossiped, so a warm push cannot circulate forever between peers.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/schedule"
	"repro/internal/tenant"
	"repro/internal/tree"
)

// TenantHeader is the HTTP header naming the caller's tenant. An absent
// or empty header selects the "default" tenant.
const TenantHeader = "X-Tenant"

// AlgorithmInfo describes one registry entry on the wire.
type AlgorithmInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Display string `json:"display"`
}

// JobSpec is one job on the wire: schedule.Job with the tree replaced by a
// reference — an id into BatchRequest.Trees, or (when absent there) the
// 64-hex digest of a tree the tenant uploaded to /v1/trees.
type JobSpec struct {
	Instance  string `json:"instance"`
	Tree      string `json:"tree"`
	Algorithm string `json:"algorithm"`
	Order     []int  `json:"order,omitempty"`
	Memory    int64  `json:"memory,omitempty"`
	Window    int    `json:"window,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Trees maps tree ids to .tree wire-form text.
	Trees map[string]string `json:"trees"`
	Jobs  []JobSpec         `json:"jobs"`
	// Workers bounds the server-side worker pool (≤ 0: server default).
	Workers int `json:"workers,omitempty"`
}

// BatchLine is one line of the POST /v1/batch response stream.
type BatchLine struct {
	Index int           `json:"index,omitempty"`
	Row   *schedule.Row `json:"row,omitempty"`
	Error string        `json:"error,omitempty"`
	Done  bool          `json:"done,omitempty"`
	Count int           `json:"count,omitempty"`
}

// WarmRequest is the body of POST /v1/warm: rows computed elsewhere, keyed
// by schedule.CacheKey, offered to this server's row store.
type WarmRequest struct {
	Entries []schedule.WarmEntry `json:"entries"`
}

// WarmResponse is the body of the POST /v1/warm response.
type WarmResponse struct {
	// Stored is the number of entries accepted into the store (0 when the
	// server has no store).
	Stored int `json:"stored"`
}

// TreeUploadRequest is the body of POST /v1/trees: .tree wire-form texts
// to add to the calling tenant's corpus.
type TreeUploadRequest struct {
	// Trees holds the instances in .tree text form, one string each.
	Trees []string `json:"trees"`
}

// TreeUploadResponse is the body of the POST /v1/trees response.
type TreeUploadResponse struct {
	// Digests names each uploaded tree (hex, request order); a batch job
	// may reference a corpus tree by this string in its "tree" field.
	Digests []string `json:"digests"`
	// Added and Deduped split the upload: trees stored now vs trees the
	// corpus already held (acknowledged, stored once).
	Added   int `json:"added"`
	Deduped int `json:"deduped"`
}

// TreeListResponse is the body of GET /v1/trees: the tenant's corpus
// digests in sorted hex order.
type TreeListResponse struct {
	// Digests lists the corpus, sorted.
	Digests []string `json:"digests"`
}

// maxBatchBytes bounds a batch request body (64 MiB — a full-scale grid
// over the dataset suite is well under 10 MiB on the wire).
const maxBatchBytes = 64 << 20

// Server answers the evaluation API over a schedule.Backend.
type Server struct {
	backend schedule.Backend
	workers int
	store   schedule.Store
	tenants *tenant.Registry
	// Metrics sources beyond the backend: set from ServerOptions so
	// /metrics can export the cache, row-store and shard counters without
	// unwrapping backend decorators.
	cache  *schedule.Cached
	rows   schedule.RowStore
	shard  *schedule.Shard
	gossip *Gossiper
	// evalSem bounds concurrent batch evaluations (ServerOptions.
	// Concurrency, default 1 — strictly serialized): the workers bound is
	// per server, not per request, so concurrent submissions (several
	// clients, or one client streaming chunks in flight) queue instead of
	// each spinning up their own worker pool. The wait is context-aware,
	// so a client that disconnects while queued releases its slot.
	evalSem chan struct{}

	batchesOK       atomic.Int64
	batchesFailed   atomic.Int64
	batchesRejected atomic.Int64
	rowsStreamed    atomic.Int64
	treesAdded      atomic.Int64
	treesDeduped    atomic.Int64
}

// ServerOptions configures NewServerWith.
type ServerOptions struct {
	// Backend evaluates the batches (nil selects schedule.Local).
	Backend schedule.Backend
	// Workers bounds each batch's worker pool unless the request asks for
	// fewer (≤ 0: GOMAXPROCS). The bound is per evaluation slot, so with
	// Concurrency 1 (the default) concurrent submissions cannot multiply
	// the pool.
	Workers int
	// Store, when non-nil, receives rows pushed to /v1/warm — normally the
	// same row store the backend's cache reads, so warmed rows answer later
	// batches. A nil store keeps /v1/warm a no-op.
	Store schedule.Store
	// Tenants is the admission registry: every batch is charged against
	// its tenant's token bucket and queue quota, and /v1/trees uploads
	// land in its tenant's corpus. Nil selects a fresh unlimited registry,
	// so tenancy endpoints work (namespaced, never rejected) on servers
	// that configure no quotas.
	Tenants *tenant.Registry
	// Concurrency is the number of batches evaluated at once (≤ 0: 1,
	// strict serialization — the historical behavior). Raising it trades
	// the single-batch worker bound for cross-batch parallelism; Workers
	// still bounds each batch's own pool.
	Concurrency int
	// Cache, when non-nil, exposes the cached backend's hit/miss counters
	// on /metrics; it should be the Cached decorator inside Backend.
	Cache *schedule.Cached
	// Rows, when non-nil, exposes the row store's size and eviction count
	// on /metrics; normally the RowStore behind both Store and Cache.
	Rows schedule.RowStore
	// Shard, when non-nil, exposes the shard's scheduling counters and
	// per-child stats on /metrics; it should be the Shard inside Backend
	// (a front-door server fanning out to children).
	Shard *schedule.Shard
	// Gossip, when non-nil, receives each successful batch's keyed rows
	// (schedule.NewWarmEntries) for push-warming peer caches. The offer is
	// non-blocking — a slow peer drops batches, it never slows a batch
	// response — and its counters appear on /metrics. The server does not
	// own the gossiper: the caller Closes it on shutdown.
	Gossip *Gossiper
}

// NewServer builds a server over backend (nil selects schedule.Local) with
// workers bounding each batch's pool unless the request asks for fewer
// (≤ 0: GOMAXPROCS). The bound is global: batches evaluate one at a time,
// so concurrent submissions cannot multiply the pool. Warm pushes are
// dropped; use NewServerWith to accept them into a store.
func NewServer(backend schedule.Backend, workers int) *Server {
	return NewServerWith(ServerOptions{Backend: backend, Workers: workers})
}

// NewServerWith builds a server from the options.
func NewServerWith(opt ServerOptions) *Server {
	if opt.Backend == nil {
		opt.Backend = schedule.Local{}
	}
	if opt.Tenants == nil {
		opt.Tenants = tenant.NewRegistry(tenant.Limits{})
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 1
	}
	return &Server{
		backend: opt.Backend,
		workers: opt.Workers,
		store:   opt.Store,
		tenants: opt.Tenants,
		cache:   opt.Cache,
		rows:    opt.Rows,
		shard:   opt.Shard,
		gossip:  opt.Gossip,
		evalSem: make(chan struct{}, opt.Concurrency),
	}
}

// Handler returns the routed http.Handler for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/warm", s.handleWarm)
	mux.HandleFunc("/v1/trees", s.handleTrees)
	return mux
}

// tenantFor resolves the request's tenant from the X-Tenant header.
func (s *Server) tenantFor(r *http.Request) *tenant.Tenant {
	return s.tenants.Tenant(r.Header.Get(TenantHeader))
}

// writeRetryAfter rejects a request with 429 and a Retry-After header of
// ceil(after) whole seconds (at least 1 — the header has one-second
// granularity and 0 would read as "retry immediately").
func writeRetryAfter(w http.ResponseWriter, after time.Duration, msg string) {
	secs := int(math.Ceil(after.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, msg, http.StatusTooManyRequests)
}

// handleTrees serves the tenant corpus: POST uploads .tree texts
// (deduplicated by digest), GET lists the corpus digests.
func (s *Server) handleTrees(w http.ResponseWriter, r *http.Request) {
	ten := s.tenantFor(r)
	switch r.Method {
	case http.MethodGet:
		digests := ten.Digests()
		resp := TreeListResponse{Digests: make([]string, len(digests))}
		for i, d := range digests {
			resp.Digests[i] = d.String()
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		var req TreeUploadRequest
		body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			http.Error(w, "bad tree upload: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp := TreeUploadResponse{Digests: make([]string, 0, len(req.Trees))}
		for i, text := range req.Trees {
			t, err := tree.Read(strings.NewReader(text))
			if err != nil {
				http.Error(w, fmt.Sprintf("tree %d: %v", i, err), http.StatusBadRequest)
				return
			}
			d, added, err := ten.AddTree(t)
			if errors.Is(err, tenant.ErrCorpusFull) {
				// Deterministic: retrying cannot succeed, so 413, not 429.
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
				return
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			resp.Digests = append(resp.Digests, d.String())
			if added {
				resp.Added++
				s.treesAdded.Add(1)
			} else {
				resp.Deduped++
				s.treesDeduped.Add(1)
			}
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleWarm accepts rows computed elsewhere into the server's row store.
// Entries with empty keys are rejected as malformed; a server without a
// store accepts the push and stores nothing.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req WarmRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad warm request: "+err.Error(), http.StatusBadRequest)
		return
	}
	for i, e := range req.Entries {
		if e.Key == "" {
			http.Error(w, fmt.Sprintf("warm entry %d has an empty key", i), http.StatusBadRequest)
			return
		}
	}
	stored := 0
	if s.store != nil {
		for _, e := range req.Entries {
			if err := s.store.Put(e.Key, e.Row); err != nil {
				http.Error(w, "store warm entry: "+err.Error(), http.StatusInternalServerError)
				return
			}
			stored++
		}
	}
	writeJSON(w, http.StatusOK, WarmResponse{Stored: stored})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"backend":    s.backend.Capabilities().Name,
		"algorithms": len(schedule.Names()),
	})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var infos []AlgorithmInfo
	for _, name := range schedule.Names() {
		alg, err := schedule.Lookup(name)
		if err != nil {
			continue // unregistered between Names and Lookup: impossible today
		}
		infos = append(infos, AlgorithmInfo{Name: name, Kind: alg.Kind().String(), Display: schedule.DisplayName(name)})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	var (
		jobs       []schedule.Job
		reqWorkers int
	)
	if isBinaryBatch(r.Header.Get("Content-Type")) {
		data, err := io.ReadAll(body)
		if err != nil {
			http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
			return
		}
		jobs, reqWorkers, err = decodeBatchBinary(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		var req BatchRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		if jobs, err = decodeJobs(req, s.tenantFor(r)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reqWorkers = req.Workers
	}
	// The request can narrow the server's worker bound, never widen it: a
	// remote client must not be able to oversubscribe the server.
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if reqWorkers > 0 && reqWorkers < workers {
		workers = reqWorkers
	}

	// Admission control, before the 200 stream commits: a rejected batch
	// costs a status line, not an evaluation. The backend's verdict runs
	// first — when the whole fleet is backed up, the batch is shed without
	// charging the tenant's token bucket for work that cannot run.
	ten := s.tenantFor(r)
	if a, ok := s.backend.(schedule.Admitter); ok {
		if err := a.Admit(len(jobs)); err != nil {
			var oe *schedule.OverloadError
			after := time.Second
			if errors.As(err, &oe) {
				after = oe.RetryAfter
			}
			ten.RecordOverload(len(jobs))
			s.batchesRejected.Add(1)
			writeRetryAfter(w, after, err.Error())
			return
		}
	}
	release, err := ten.Admit(len(jobs))
	if err != nil {
		var re *tenant.RetryError
		after := time.Second
		if errors.As(err, &re) {
			after = re.After
		}
		s.batchesRejected.Add(1)
		writeRetryAfter(w, after, err.Error())
		return
	}
	defer release()

	// From here on the response is a committed 200 stream; failures travel
	// as a trailing error/terminator frame, not a status code. The stream
	// form follows the Accept header, independently of the request form.
	flusher, _ := w.(http.Flusher)
	var resp batchResponder
	if acceptsBinaryRows(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", ContentTypeBinaryRows)
		w.WriteHeader(http.StatusOK)
		resp = &binaryResponder{w: w, flusher: flusher}
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
		w.WriteHeader(http.StatusOK)
		resp = &jsonResponder{enc: json.NewEncoder(w), flusher: flusher}
	}
	if flusher != nil {
		flusher.Flush() // commit the stream while (possibly) queued
	}
	select {
	case s.evalSem <- struct{}{}:
		defer func() { <-s.evalSem }()
	case <-r.Context().Done():
		resp.fail(r.Context().Err().Error())
		return
	}
	rows, err := s.backend.Run(r.Context(), jobs, schedule.BatchOptions{
		Workers:      workers,
		OnRowIndexed: resp.row,
	})
	if err != nil {
		s.batchesFailed.Add(1)
		resp.fail(err.Error())
		return
	}
	s.batchesOK.Add(1)
	s.rowsStreamed.Add(int64(len(rows)))
	resp.done(len(rows))
	if s.gossip != nil {
		// After the terminator: keying the rows costs tree digests, and the
		// client should not wait on them. The offer itself never blocks.
		s.gossip.Offer(schedule.NewWarmEntries(jobs, rows))
	}
}

// decodeJobs parses the request's trees once each and resolves job specs
// against them. A spec's tree reference resolves first against the
// request's inline map; a reference absent there that parses as a digest
// resolves against the tenant's uploaded corpus, so a tenant that has
// POSTed its trees to /v1/trees batches by digest without re-sending the
// tree text.
func decodeJobs(req BatchRequest, ten *tenant.Tenant) ([]schedule.Job, error) {
	trees := make(map[string]*tree.Tree, len(req.Trees))
	for id, text := range req.Trees {
		t, err := tree.Read(strings.NewReader(text))
		if err != nil {
			return nil, fmt.Errorf("service: tree %q: %w", id, err)
		}
		trees[id] = t
	}
	jobs := make([]schedule.Job, len(req.Jobs))
	for i, spec := range req.Jobs {
		t, ok := trees[spec.Tree]
		if !ok {
			if d, err := tree.ParseDigest(spec.Tree); err == nil {
				if t, ok = ten.LookupTree(d); ok {
					trees[spec.Tree] = t // memoize the corpus hit for later jobs
				} else {
					return nil, fmt.Errorf("service: job %d references digest %s, not in tenant %q's corpus (upload via /v1/trees first)", i, spec.Tree, ten.Name())
				}
			} else {
				return nil, fmt.Errorf("service: job %d references unknown tree %q", i, spec.Tree)
			}
		}
		jobs[i] = schedule.Job{
			Instance:  spec.Instance,
			Tree:      t,
			Algorithm: spec.Algorithm,
			Order:     spec.Order,
			Memory:    spec.Memory,
			Window:    spec.Window,
		}
	}
	return jobs, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
