package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// Client is the remote evaluation backend: a schedule.Backend that ships
// job batches to a service server over HTTP and reassembles the streamed
// rows in job order. Construct with NewClient.
//
// Batch submissions can be retried: with Retries > 0, transient failures —
// connection errors, 5xx/429 statuses, a response stream cut off before its
// done line — are resubmitted after an exponential backoff, while
// deterministic failures (4xx rejections, a job the server reports as
// failed) are not. Rows already streamed to the BatchOptions callbacks are
// not re-announced on a retry: the attempt replays the whole batch (the
// wire protocol is idempotent), but only rows for indices not yet seen fire
// the callbacks, so callers observe each row exactly once.
type Client struct {
	base string
	http *http.Client

	// Retries is the number of times a failed batch submission is retried
	// (0 = fail on the first error).
	Retries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// subsequent one; ≤ 0 selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Binary opts the client into the binary batch transport: requests are
	// posted in the binary request form (ContentTypeBinaryBatch) and the
	// framed binary response stream is requested via Accept. The rows are
	// bit-identical to the JSON transport's — binary additionally preserves
	// non-finite Seconds values exactly. A server predating the binary
	// protocol rejects the request with a deterministic 400 (never retried),
	// so during a rolling upgrade clients stay on JSON until every server
	// understands both; servers negotiate per request and a shard may mix
	// JSON and binary children freely.
	Binary bool
	// Tenant names the tenant every request runs as (the X-Tenant header);
	// empty selects the server's "default" tenant. Quotas, rejection
	// counters and the uploaded-tree corpus are all per tenant.
	Tenant string
	// ByDigest makes Run reference each job's tree by digest instead of
	// inlining its .tree text: the trees must have been uploaded to the
	// tenant's corpus first (UploadTrees), and the batch then carries 64
	// bytes per distinct tree instead of the full text. Incompatible with
	// Binary, whose wire form always inlines trees — Run rejects the
	// combination.
	ByDigest bool
	// OnThrottle, when set, is called once per 429 (over-quota) response
	// with the server's Retry-After delay, before any retry sleep — load
	// harnesses count rejections with it, and operators can log or meter
	// backpressure. Called from Run's goroutine; keep it fast.
	OnThrottle func(retryAfter time.Duration)
}

// StatusError is a non-200 response from the server: the probed path, the
// status code and the (truncated) body. Batch rejections carry the
// server's Retry-After hint, which Run's retry loop honors.
type StatusError struct {
	// Path is the request path that failed.
	Path string
	// Code is the HTTP status code.
	Code int
	// Msg is the response body, truncated.
	Msg string
	// RetryAfter is the parsed Retry-After header (0 when absent) — how
	// long the server asked the client to back off.
	RetryAfter time.Duration
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("service: %s: %s", e.Path, e.Msg)
}

// DefaultRetryBackoff is the initial retry delay when Client.RetryBackoff
// is unset.
const DefaultRetryBackoff = 100 * time.Millisecond

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"; a trailing slash is tolerated). A nil
// httpClient selects http.DefaultClient, whose zero timeout suits the
// long-lived streaming batch call.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Capabilities implements schedule.Backend.
func (c *Client) Capabilities() schedule.Capabilities {
	return schedule.Capabilities{Name: "http(" + c.base + ")", Remote: true}
}

// Algorithms lists the algorithms registered on the server.
func (c *Client) Algorithms(ctx context.Context) ([]AlgorithmInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/algorithms", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var infos []AlgorithmInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("service: decode algorithms: %w", err)
	}
	return infos, nil
}

// Health implements schedule.HealthChecker: it probes the server's
// /healthz endpoint — a fixed-cost status report, unlike /v1/algorithms,
// which allocates and serializes the full registry on every call — and
// returns nil when the server answers 200 with a decodable status body.
// The Shard scheduler uses it to decide whether a quarantined server has
// recovered and can be readmitted; Algorithms remains the capability-
// discovery call.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	var status struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return fmt.Errorf("service: decode healthz: %w", err)
	}
	if status.Status != "ok" {
		return fmt.Errorf("service: %s reports status %q", c.base, status.Status)
	}
	return nil
}

// UploadTrees adds the trees to the tenant's corpus on the server
// (POST /v1/trees), deduplicated by digest, and returns each tree's
// digest in argument order. Jobs may then reference the trees by digest —
// see ByDigest — so a corpus is shipped once, not once per batch.
func (c *Client) UploadTrees(ctx context.Context, trees []*tree.Tree) ([]tree.Digest, error) {
	req := TreeUploadRequest{Trees: make([]string, len(trees))}
	for i, t := range trees {
		var sb strings.Builder
		if err := t.Write(&sb); err != nil {
			return nil, fmt.Errorf("service: serialize tree %d: %w", i, err)
		}
		req.Trees[i] = sb.String()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/trees", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.setTenant(hreq)
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var ur TreeUploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		return nil, fmt.Errorf("service: decode tree upload response: %w", err)
	}
	if len(ur.Digests) != len(trees) {
		return nil, fmt.Errorf("service: server acknowledged %d trees, want %d", len(ur.Digests), len(trees))
	}
	digests := make([]tree.Digest, len(ur.Digests))
	for i, s := range ur.Digests {
		if digests[i], err = tree.ParseDigest(s); err != nil {
			return nil, err
		}
	}
	return digests, nil
}

// setTenant stamps the client's tenant onto a request.
func (c *Client) setTenant(req *http.Request) {
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
}

// WarmRows implements schedule.RowWarmer: the keyed rows are pushed to the
// server's /v1/warm endpoint, landing in its row store (if it has one) so a
// later batch over the same jobs is answered without recomputation. The
// returned count is how many entries the server stored — 0 for a cacheless
// server, which accepts the push as a no-op.
func (c *Client) WarmRows(ctx context.Context, entries []schedule.WarmEntry) (int, error) {
	body, err := json.Marshal(WarmRequest{Entries: entries})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/warm", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.setTenant(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, httpError(resp)
	}
	var wr WarmResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return 0, fmt.Errorf("service: decode warm response: %w", err)
	}
	return wr.Stored, nil
}

// transientError marks a failure worth resubmitting: the server may simply
// have been unreachable or restarting, and the batch protocol is
// idempotent.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// Run implements schedule.Backend: it serializes each distinct tree once
// (in .tree wire form), posts the batch, streams rows back and returns them
// in job order. Rows are exactly what the server computed — the remote grid
// is bit-identical to a local run up to the Seconds column. Transient
// submission failures are retried per the Retries/RetryBackoff fields.
func (c *Client) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	var body []byte
	if c.Binary {
		if c.ByDigest {
			return nil, fmt.Errorf("service: ByDigest needs the JSON transport (the binary batch form inlines trees)")
		}
		var err error
		if body, err = encodeBatchBinary(jobs, opt.Workers); err != nil {
			return nil, err
		}
	} else {
		req, err := encodeBatch(jobs, opt.Workers, c.ByDigest)
		if err != nil {
			return nil, err
		}
		if body, err = json.Marshal(req); err != nil {
			return nil, err
		}
	}
	// rows/got persist across attempts: a retry replays the whole batch,
	// but rows already received keep their first-seen values and do not
	// re-fire the callbacks.
	rows := make([]schedule.Row, len(jobs))
	got := make([]bool, len(jobs))
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	for attempt := 0; ; attempt++ {
		err := c.runAttempt(ctx, body, jobs, opt, rows, got)
		if err == nil {
			return rows, nil
		}
		_, transient := err.(transientError)
		if transient && ctx.Err() != nil {
			// The attempt died because the context did: the request was
			// built with the context, so cancelling it aborts the in-flight
			// HTTP call (the server's handler sees its request context
			// cancelled and stops evaluating — a hedge loser stops burning
			// child capacity). Surface the cancellation itself, not the
			// transport error it manifested as.
			return nil, ctx.Err()
		}
		if attempt >= c.Retries || !transient {
			return nil, err
		}
		// A 429's Retry-After extends the backoff: the server said when
		// admission can succeed, so retrying sooner only burns an attempt.
		wait := backoff
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > wait {
			wait = se.RetryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		backoff *= 2
	}
}

// runAttempt posts the encoded batch once, filling rows/got for every index
// streamed back. A batch is complete when the done line arrives and every
// index was received (this attempt or an earlier one).
func (c *Client) runAttempt(ctx context.Context, body []byte, jobs []schedule.Job, opt schedule.BatchOptions, rows []schedule.Row, got []bool) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if c.Binary {
		hreq.Header.Set("Content-Type", ContentTypeBinaryBatch)
		hreq.Header.Set("Accept", ContentTypeBinaryRows)
	} else {
		hreq.Header.Set("Content-Type", "application/json")
	}
	c.setTenant(hreq)
	resp, err := c.http.Do(hreq)
	if err != nil {
		return transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := httpError(resp)
		if resp.StatusCode == http.StatusTooManyRequests {
			if c.OnThrottle != nil {
				var se *StatusError
				var after time.Duration
				if errors.As(err, &se) {
					after = se.RetryAfter
				}
				c.OnThrottle(after)
			}
			return transientError{err}
		}
		if resp.StatusCode >= 500 {
			return transientError{err}
		}
		return err
	}
	// The response form follows the server's Content-Type, so a JSON Lines
	// answer to a binary-accepting client still parses.
	if isBinaryRows(resp.Header.Get("Content-Type")) {
		return readBinaryResponse(resp.Body, jobs, opt, rows, got)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("service: bad response line %q: %w", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			return fmt.Errorf("service: remote batch failed: %s", line.Error)
		case line.Done:
			if line.Count != len(jobs) {
				return fmt.Errorf("service: server reports %d rows, want %d", line.Count, len(jobs))
			}
			for i, ok := range got {
				if !ok {
					return fmt.Errorf("service: no row received for job %d", i)
				}
			}
			return nil
		case line.Row != nil:
			if line.Index < 0 || line.Index >= len(jobs) {
				return fmt.Errorf("service: row index %d out of range [0,%d)", line.Index, len(jobs))
			}
			if got[line.Index] {
				break // replay of a row an earlier attempt delivered
			}
			rows[line.Index] = *line.Row
			got[line.Index] = true
			if opt.OnRow != nil {
				opt.OnRow(*line.Row)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(line.Index, *line.Row)
			}
		default:
			return fmt.Errorf("service: unrecognized response line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return transientError{fmt.Errorf("service: read response: %w", err)}
	}
	return transientError{fmt.Errorf("service: response stream truncated (no done line)")}
}

// Stream implements schedule.Backend: the job stream is cut into chunks,
// each chunk travels as one POST /v1/batch call (with per-chunk retry per
// the Retries field), and the rows merge into the sink in job order. Neither
// side ever holds more than ChunkSize × InFlight jobs or rows, so a grid
// larger than either process's memory can flow through the service.
func (c *Client) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, c.Run, src, sink, opt)
}

// encodeBatch builds the wire request: each distinct *tree.Tree serialized
// once under a generated id — or, with byDigest, referenced by its content
// digest with no inline text at all (the server resolves digests against
// the tenant's uploaded corpus).
func encodeBatch(jobs []schedule.Job, workers int, byDigest bool) (BatchRequest, error) {
	req := BatchRequest{Trees: map[string]string{}, Jobs: make([]JobSpec, len(jobs)), Workers: workers}
	ids := map[*tree.Tree]string{}
	for i, j := range jobs {
		if j.Tree == nil {
			return BatchRequest{}, fmt.Errorf("service: job %d has a nil tree", i)
		}
		id, ok := ids[j.Tree]
		if !ok {
			if byDigest {
				id = j.Tree.Digest().String()
				ids[j.Tree] = id
			} else {
				id = "t" + strconv.Itoa(len(ids))
				ids[j.Tree] = id
				var sb strings.Builder
				if err := j.Tree.Write(&sb); err != nil {
					return BatchRequest{}, fmt.Errorf("service: serialize tree of job %d: %w", i, err)
				}
				req.Trees[id] = sb.String()
			}
		}
		req.Jobs[i] = JobSpec{
			Instance:  j.Instance,
			Tree:      id,
			Algorithm: j.Algorithm,
			Order:     j.Order,
			Memory:    j.Memory,
			Window:    j.Window,
		}
	}
	return req, nil
}

// httpError reads a non-200 response into a *StatusError, keeping the
// body short and parsing the Retry-After header (integer seconds or HTTP
// date) when present.
func httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		msg = resp.Status
	}
	se := &StatusError{Path: resp.Request.URL.Path, Code: resp.StatusCode, Msg: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		} else if t, err := http.ParseTime(ra); err == nil {
			if d := time.Until(t); d > 0 {
				se.RetryAfter = d
			}
		}
	}
	return se
}
