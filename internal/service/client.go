package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// Client is the remote evaluation backend: a schedule.Backend that ships
// job batches to a service server over HTTP and reassembles the streamed
// rows in job order. Construct with NewClient.
//
// Batch submissions can be retried: with Retries > 0, transient failures —
// connection errors, 5xx/429 statuses, a response stream cut off before its
// done line — are resubmitted after an exponential backoff, while
// deterministic failures (4xx rejections, a job the server reports as
// failed) are not. Rows already streamed to the BatchOptions callbacks are
// not re-announced on a retry: the attempt replays the whole batch (the
// wire protocol is idempotent), but only rows for indices not yet seen fire
// the callbacks, so callers observe each row exactly once.
type Client struct {
	base string
	http *http.Client

	// Retries is the number of times a failed batch submission is retried
	// (0 = fail on the first error).
	Retries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// subsequent one; ≤ 0 selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Binary opts the client into the binary batch transport: requests are
	// posted in the binary request form (ContentTypeBinaryBatch) and the
	// framed binary response stream is requested via Accept. The rows are
	// bit-identical to the JSON transport's — binary additionally preserves
	// non-finite Seconds values exactly. A server predating the binary
	// protocol rejects the request with a deterministic 400 (never retried),
	// so during a rolling upgrade clients stay on JSON until every server
	// understands both; servers negotiate per request and a shard may mix
	// JSON and binary children freely.
	Binary bool
}

// DefaultRetryBackoff is the initial retry delay when Client.RetryBackoff
// is unset.
const DefaultRetryBackoff = 100 * time.Millisecond

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"; a trailing slash is tolerated). A nil
// httpClient selects http.DefaultClient, whose zero timeout suits the
// long-lived streaming batch call.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Capabilities implements schedule.Backend.
func (c *Client) Capabilities() schedule.Capabilities {
	return schedule.Capabilities{Name: "http(" + c.base + ")", Remote: true}
}

// Algorithms lists the algorithms registered on the server.
func (c *Client) Algorithms(ctx context.Context) ([]AlgorithmInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/algorithms", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var infos []AlgorithmInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("service: decode algorithms: %w", err)
	}
	return infos, nil
}

// Health implements schedule.HealthChecker: it probes the server's
// algorithm-list endpoint — the cheapest call that proves the registry is
// actually serving, not just that a socket accepts — and returns nil when
// the server responds with a decodable algorithm list. The Shard scheduler
// uses it to decide whether a quarantined server has recovered and can be
// readmitted.
func (c *Client) Health(ctx context.Context) error {
	infos, err := c.Algorithms(ctx)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		return fmt.Errorf("service: %s lists no algorithms", c.base)
	}
	return nil
}

// WarmRows implements schedule.RowWarmer: the keyed rows are pushed to the
// server's /v1/warm endpoint, landing in its row store (if it has one) so a
// later batch over the same jobs is answered without recomputation. The
// returned count is how many entries the server stored — 0 for a cacheless
// server, which accepts the push as a no-op.
func (c *Client) WarmRows(ctx context.Context, entries []schedule.WarmEntry) (int, error) {
	body, err := json.Marshal(WarmRequest{Entries: entries})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/warm", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, httpError(resp)
	}
	var wr WarmResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return 0, fmt.Errorf("service: decode warm response: %w", err)
	}
	return wr.Stored, nil
}

// transientError marks a failure worth resubmitting: the server may simply
// have been unreachable or restarting, and the batch protocol is
// idempotent.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// Run implements schedule.Backend: it serializes each distinct tree once
// (in .tree wire form), posts the batch, streams rows back and returns them
// in job order. Rows are exactly what the server computed — the remote grid
// is bit-identical to a local run up to the Seconds column. Transient
// submission failures are retried per the Retries/RetryBackoff fields.
func (c *Client) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	var body []byte
	if c.Binary {
		var err error
		if body, err = encodeBatchBinary(jobs, opt.Workers); err != nil {
			return nil, err
		}
	} else {
		req, err := encodeBatch(jobs, opt.Workers)
		if err != nil {
			return nil, err
		}
		if body, err = json.Marshal(req); err != nil {
			return nil, err
		}
	}
	// rows/got persist across attempts: a retry replays the whole batch,
	// but rows already received keep their first-seen values and do not
	// re-fire the callbacks.
	rows := make([]schedule.Row, len(jobs))
	got := make([]bool, len(jobs))
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	for attempt := 0; ; attempt++ {
		err := c.runAttempt(ctx, body, jobs, opt, rows, got)
		if err == nil {
			return rows, nil
		}
		if _, transient := err.(transientError); attempt >= c.Retries || !transient || ctx.Err() != nil {
			return nil, err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		backoff *= 2
	}
}

// runAttempt posts the encoded batch once, filling rows/got for every index
// streamed back. A batch is complete when the done line arrives and every
// index was received (this attempt or an earlier one).
func (c *Client) runAttempt(ctx context.Context, body []byte, jobs []schedule.Job, opt schedule.BatchOptions, rows []schedule.Row, got []bool) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if c.Binary {
		hreq.Header.Set("Content-Type", ContentTypeBinaryBatch)
		hreq.Header.Set("Accept", ContentTypeBinaryRows)
	} else {
		hreq.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := httpError(resp)
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return transientError{err}
		}
		return err
	}
	// The response form follows the server's Content-Type, so a JSON Lines
	// answer to a binary-accepting client still parses.
	if isBinaryRows(resp.Header.Get("Content-Type")) {
		return readBinaryResponse(resp.Body, jobs, opt, rows, got)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("service: bad response line %q: %w", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			return fmt.Errorf("service: remote batch failed: %s", line.Error)
		case line.Done:
			if line.Count != len(jobs) {
				return fmt.Errorf("service: server reports %d rows, want %d", line.Count, len(jobs))
			}
			for i, ok := range got {
				if !ok {
					return fmt.Errorf("service: no row received for job %d", i)
				}
			}
			return nil
		case line.Row != nil:
			if line.Index < 0 || line.Index >= len(jobs) {
				return fmt.Errorf("service: row index %d out of range [0,%d)", line.Index, len(jobs))
			}
			if got[line.Index] {
				break // replay of a row an earlier attempt delivered
			}
			rows[line.Index] = *line.Row
			got[line.Index] = true
			if opt.OnRow != nil {
				opt.OnRow(*line.Row)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(line.Index, *line.Row)
			}
		default:
			return fmt.Errorf("service: unrecognized response line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return transientError{fmt.Errorf("service: read response: %w", err)}
	}
	return transientError{fmt.Errorf("service: response stream truncated (no done line)")}
}

// Stream implements schedule.Backend: the job stream is cut into chunks,
// each chunk travels as one POST /v1/batch call (with per-chunk retry per
// the Retries field), and the rows merge into the sink in job order. Neither
// side ever holds more than ChunkSize × InFlight jobs or rows, so a grid
// larger than either process's memory can flow through the service.
func (c *Client) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, c.Run, src, sink, opt)
}

// encodeBatch builds the wire request: each distinct *tree.Tree serialized
// once under a generated id.
func encodeBatch(jobs []schedule.Job, workers int) (BatchRequest, error) {
	req := BatchRequest{Trees: map[string]string{}, Jobs: make([]JobSpec, len(jobs)), Workers: workers}
	ids := map[*tree.Tree]string{}
	for i, j := range jobs {
		if j.Tree == nil {
			return BatchRequest{}, fmt.Errorf("service: job %d has a nil tree", i)
		}
		id, ok := ids[j.Tree]
		if !ok {
			id = "t" + strconv.Itoa(len(ids))
			ids[j.Tree] = id
			var sb strings.Builder
			if err := j.Tree.Write(&sb); err != nil {
				return BatchRequest{}, fmt.Errorf("service: serialize tree of job %d: %w", i, err)
			}
			req.Trees[id] = sb.String()
		}
		req.Jobs[i] = JobSpec{
			Instance:  j.Instance,
			Tree:      id,
			Algorithm: j.Algorithm,
			Order:     j.Order,
			Memory:    j.Memory,
			Window:    j.Window,
		}
	}
	return req, nil
}

// httpError reads a non-200 response into an error, keeping the body short.
func httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("service: %s: %s", resp.Request.URL.Path, msg)
}
