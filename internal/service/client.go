package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// Client is the remote evaluation backend: a schedule.Backend that ships
// job batches to a service server over HTTP and reassembles the streamed
// rows in job order. Construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"; a trailing slash is tolerated). A nil
// httpClient selects http.DefaultClient, whose zero timeout suits the
// long-lived streaming batch call.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Capabilities implements schedule.Backend.
func (c *Client) Capabilities() schedule.Capabilities {
	return schedule.Capabilities{Name: "http(" + c.base + ")", Remote: true}
}

// Algorithms lists the algorithms registered on the server.
func (c *Client) Algorithms(ctx context.Context) ([]AlgorithmInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/algorithms", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var infos []AlgorithmInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("service: decode algorithms: %w", err)
	}
	return infos, nil
}

// Run implements schedule.Backend: it serializes each distinct tree once
// (in .tree wire form), posts the batch, streams rows back and returns them
// in job order. Rows are exactly what the server computed — the remote grid
// is bit-identical to a local run up to the Seconds column.
func (c *Client) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	req, err := encodeBatch(jobs, opt.Workers)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	rows := make([]schedule.Row, len(jobs))
	got := make([]bool, len(jobs))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("service: bad response line %q: %w", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			return nil, fmt.Errorf("service: remote batch failed: %s", line.Error)
		case line.Done:
			if line.Count != len(jobs) {
				return nil, fmt.Errorf("service: server reports %d rows, want %d", line.Count, len(jobs))
			}
			for i, ok := range got {
				if !ok {
					return nil, fmt.Errorf("service: no row received for job %d", i)
				}
			}
			return rows, nil
		case line.Row != nil:
			if line.Index < 0 || line.Index >= len(jobs) {
				return nil, fmt.Errorf("service: row index %d out of range [0,%d)", line.Index, len(jobs))
			}
			rows[line.Index] = *line.Row
			got[line.Index] = true
			if opt.OnRow != nil {
				opt.OnRow(*line.Row)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(line.Index, *line.Row)
			}
		default:
			return nil, fmt.Errorf("service: unrecognized response line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: read response: %w", err)
	}
	return nil, fmt.Errorf("service: response stream truncated (no done line)")
}

// encodeBatch builds the wire request: each distinct *tree.Tree serialized
// once under a generated id.
func encodeBatch(jobs []schedule.Job, workers int) (BatchRequest, error) {
	req := BatchRequest{Trees: map[string]string{}, Jobs: make([]JobSpec, len(jobs)), Workers: workers}
	ids := map[*tree.Tree]string{}
	for i, j := range jobs {
		if j.Tree == nil {
			return BatchRequest{}, fmt.Errorf("service: job %d has a nil tree", i)
		}
		id, ok := ids[j.Tree]
		if !ok {
			id = "t" + strconv.Itoa(len(ids))
			ids[j.Tree] = id
			var sb strings.Builder
			if err := j.Tree.Write(&sb); err != nil {
				return BatchRequest{}, fmt.Errorf("service: serialize tree of job %d: %w", i, err)
			}
			req.Trees[id] = sb.String()
		}
		req.Jobs[i] = JobSpec{
			Instance:  j.Instance,
			Tree:      id,
			Algorithm: j.Algorithm,
			Order:     j.Order,
			Memory:    j.Memory,
			Window:    j.Window,
		}
	}
	return req, nil
}

// httpError reads a non-200 response into an error, keeping the body short.
func httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("service: %s: %s", resp.Request.URL.Path, msg)
}
