package service_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/service"
)

// Push gossip end to end: a server that computes a batch forwards the rows
// to its peer's /v1/warm, so the peer answers the same grid entirely from
// its store — nonzero cache hits with no shard in the loop — and the
// origin's /metrics account for the pushed rows.
func TestGossipWarmsPeerCache(t *testing.T) {
	jobs := testJobs(t)

	peerStore := schedule.NewMemStore()
	peerCached := schedule.NewCached(schedule.Local{}, peerStore)
	peerSrv := httptest.NewServer(service.NewServerWith(service.ServerOptions{
		Backend: peerCached,
		Store:   peerStore,
	}).Handler())
	defer peerSrv.Close()

	gossip := service.NewGossiper(service.GossiperOptions{},
		service.NewClient(peerSrv.URL, peerSrv.Client()))
	defer gossip.Close()
	origin := httptest.NewServer(service.NewServerWith(service.ServerOptions{Gossip: gossip}).Handler())
	defer origin.Close()

	if _, err := service.NewClient(origin.URL, origin.Client()).
		Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	// Close drains the queue and waits for the push workers, so the warm
	// push is complete — no polling.
	gossip.Close()
	if peerStore.Len() != len(jobs) {
		t.Fatalf("peer store holds %d rows after gossip, want %d", peerStore.Len(), len(jobs))
	}
	g := gossip.Stats()
	if g.SentRows != int64(len(jobs)) || g.Errors != 0 || g.DroppedBatches != 0 {
		t.Fatalf("gossip stats %+v, want %d rows sent cleanly", g, len(jobs))
	}

	// The warmed peer serves the whole grid from its store.
	if _, err := service.NewClient(peerSrv.URL, peerSrv.Client()).
		Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := peerCached.Counters(); misses != 0 || hits != int64(len(jobs)) {
		t.Fatalf("gossip-warmed peer recomputed: %d hits, %d misses", hits, misses)
	}

	// The origin's exposition carries the gossip families.
	resp, err := http.Get(origin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("scheduled_gossip_rows_sent_total %d", len(jobs)),
		`scheduled_gossip_batches_total{outcome="enqueued"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

// gateWarmer is a peer whose WarmRows calls block until the gate opens —
// the "slow peer" in the backpressure test. started closes when the push
// worker is committed to the first (dequeued) batch.
type gateWarmer struct {
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
	rows    atomic.Int64
}

func (w *gateWarmer) WarmRows(ctx context.Context, entries []schedule.WarmEntry) (int, error) {
	w.once.Do(func() { close(w.started) })
	<-w.gate
	w.rows.Add(int64(len(entries)))
	return len(entries), nil
}

// errWarmer is a dead peer: every push fails.
type errWarmer struct{}

func (errWarmer) WarmRows(context.Context, []schedule.WarmEntry) (int, error) {
	return 0, errors.New("peer down")
}

// Backpressure: a stalled peer costs dropped batches, never a blocked
// Offer. With the worker pinned on one batch and the queue bound at two,
// exactly two more offers enqueue and everything beyond that drops — all
// counted deterministically — and what was queued still lands once the
// peer recovers.
func TestGossipBackpressureDropsInsteadOfBlocking(t *testing.T) {
	jobs := testJobs(t)[:1]
	rows, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch := schedule.NewWarmEntries(jobs, rows)

	peer := &gateWarmer{started: make(chan struct{}), gate: make(chan struct{})}
	gossip := service.NewGossiper(service.GossiperOptions{QueueBound: 2}, peer)

	gossip.Offer(batch)
	select {
	case <-peer.started:
	case <-time.After(5 * time.Second):
		t.Fatal("push worker never dequeued the first batch")
	}
	// Worker pinned, queue empty: two offers fill the queue, three drop.
	for i := 0; i < 5; i++ {
		gossip.Offer(batch)
	}
	g := gossip.Stats()
	if g.EnqueuedBatches != 3 || g.DroppedBatches != 3 {
		t.Fatalf("gossip stats %+v, want 3 enqueued and 3 dropped", g)
	}

	// The peer recovers; Close drains the two queued batches and the pinned
	// one, so 3 batches × 1 row land.
	close(peer.gate)
	gossip.Close()
	if got := peer.rows.Load(); got != 3 {
		t.Fatalf("recovered peer received %d rows, want 3", got)
	}
	if g := gossip.Stats(); g.SentRows != 3 {
		t.Fatalf("gossip stats after drain %+v, want 3 rows sent", g)
	}

	// A dead peer costs counted errors, nothing else: offers still return
	// immediately and Close still terminates.
	dead := service.NewGossiper(service.GossiperOptions{}, errWarmer{})
	dead.Offer(batch)
	dead.Close()
	if g := dead.Stats(); g.Errors != 1 || g.SentRows != 0 {
		t.Fatalf("dead-peer stats %+v, want exactly 1 error", g)
	}
	// Offers after Close are ignored, not sent and not dropped.
	dead.Offer(batch)
	if g := dead.Stats(); g.EnqueuedBatches != 1 || g.DroppedBatches != 0 {
		t.Fatalf("post-Close offer leaked into stats %+v", g)
	}
}

// Cancelling the client's context must reach the server mid-request: the
// in-flight HTTP batch aborts, the handler's request context dies, and the
// backend under it observes the cancellation — the mechanism a hedged
// shard relies on to release the losing child. Client.Run itself must
// surface the cancellation, not a transport error.
func TestClientCancellationReachesServerBackend(t *testing.T) {
	jobs := testJobs(t)[:3]
	fault := schedule.NewFaultBackend(schedule.Local{})
	fault.SetDelay(10 * time.Second)
	observed := make(chan int, 1)
	fault.OnCancel(func(call int) { observed <- call })
	client := startServer(t, fault)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := client.Run(ctx, jobs, schedule.BatchOptions{})
		done <- err
	}()
	// Cancel only once the batch is stalled inside the server's backend.
	deadline := time.Now().Add(5 * time.Second)
	for fault.Runs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never reached the server backend")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client.Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client.Run did not return after cancellation")
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("server backend never observed the client's cancellation")
	}
	if fault.Cancellations() != 1 {
		t.Fatalf("server backend counted %d cancellations, want 1", fault.Cancellations())
	}
}

// The hedge race over real HTTP: a server that turns slow mid-grid loses
// every later chunk to a hedged re-dispatch, its handler observes the
// loser's cancellation server-side, and the merged rows stay bit-identical
// to Local.
func TestHedgedShardOverHTTPCancelsLoser(t *testing.T) {
	jobs := testJobs(t)
	local, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slowFault := schedule.NewFaultBackend(schedule.Local{})
	slowFault.SlowAfter(1, 400*time.Millisecond)
	slowSrv := httptest.NewServer(service.NewServer(slowFault, 0).Handler())
	defer slowSrv.Close()
	fastSrv := httptest.NewServer(service.NewServer(nil, 0).Handler())
	defer fastSrv.Close()

	shard, err := schedule.NewShardWith(schedule.ShardOptions{
		Policy:         schedule.PolicyRoundRobin,
		HedgeAfter:     20 * time.Millisecond,
		QuarantineBase: time.Millisecond,
	},
		service.NewClient(slowSrv.URL, slowSrv.Client()),
		service.NewClient(fastSrv.URL, fastSrv.Client()))
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	rowsEqualNoTime(t, "hedged HTTP shard vs local", sank.Rows(), local)
	c := shard.Counters()
	if c.HedgeWins < 1 {
		t.Fatalf("slow server was never beaten: counters %+v", c)
	}
	if slowFault.Cancellations() < 1 {
		t.Fatal("the losing server's handler never observed the cancellation")
	}
}

// Hedged dispatch and gossip warming running together, concurrently, with
// the gossip landing in a paged (on-disk) store — the composition CI's
// race-detector job pins: two grids stream at once through a hedged shard
// whose fast child gossips every computed chunk to an out-of-core peer.
func TestHedgedShardGossipsIntoPagedStore(t *testing.T) {
	jobs := testJobs(t)
	local, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	peerClient, peerStore := startPagedServer(t, filepath.Join(t.TempDir(), "rows.paged"))
	_ = peerClient
	gossip := service.NewGossiper(service.GossiperOptions{}, peerClient)
	defer gossip.Close()

	fastSrv := httptest.NewServer(service.NewServerWith(service.ServerOptions{Gossip: gossip}).Handler())
	defer fastSrv.Close()
	slowFault := schedule.NewFaultBackend(schedule.Local{})
	slowFault.SlowAfter(1, 60*time.Millisecond)
	slowSrv := httptest.NewServer(service.NewServer(slowFault, 0).Handler())
	defer slowSrv.Close()

	shard, err := schedule.NewShardWith(schedule.ShardOptions{
		Policy:         schedule.PolicyRoundRobin,
		HedgeAfter:     10 * time.Millisecond,
		QuarantineBase: time.Millisecond,
	},
		service.NewClient(slowSrv.URL, slowSrv.Client()),
		service.NewClient(fastSrv.URL, fastSrv.Client()))
	if err != nil {
		t.Fatal(err)
	}

	const streams = 2
	sinks := make([]schedule.Collector, streams)
	errs := make([]error, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = shard.Stream(context.Background(), schedule.SliceSource(jobs), &sinks[i],
				schedule.StreamOptions{ChunkSize: 3})
		}(i)
	}
	wg.Wait()
	for i := 0; i < streams; i++ {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		rowsEqualNoTime(t, fmt.Sprintf("hedged gossiping stream %d vs local", i), sinks[i].Rows(), local)
	}
	gossip.Close()
	if peerStore.Len() == 0 {
		t.Fatal("gossip landed no rows in the paged peer store")
	}
	if g := gossip.Stats(); g.Errors != 0 {
		t.Fatalf("gossip stats %+v, want no push errors", g)
	}
}
