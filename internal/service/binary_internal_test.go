package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/schedule"
	"repro/internal/tree"

	// The server side evaluates against the registry: register everything.
	_ "repro/internal/minio"
	_ "repro/internal/traversal"
)

func binaryFixtureJobs(t *testing.T) []schedule.Job {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	t1, err := tree.Random(rng, tree.RandomOptions{Nodes: 25, MaxF: 9, MaxN: 5})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := tree.Random(rng, tree.RandomOptions{Nodes: 40, MaxF: 12, MaxN: 7, Attach: tree.AttachKind(1)})
	if err != nil {
		t.Fatal(err)
	}
	order := t1.TopDown()
	return []schedule.Job{
		{Instance: "a", Tree: t1, Algorithm: "postorder"},
		{Instance: "a", Tree: t1, Algorithm: "minmem", Order: order, Memory: 123, Window: 4},
		{Instance: "b", Tree: t2, Algorithm: "liu", Memory: math.MaxInt64},
		{Instance: "a-again", Tree: t1, Algorithm: "minio", Order: order, Memory: -7},
	}
}

// The binary request round-trips jobs exactly, deduplicating trees and
// order slices: jobs that shared an order before encoding share one []int
// after decoding too.
func TestBatchBinaryRoundTrip(t *testing.T) {
	jobs := binaryFixtureJobs(t)
	data, err := encodeBatchBinary(jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	decoded, workers, err := decodeBatchBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if workers != 3 {
		t.Fatalf("workers %d, want 3", workers)
	}
	if len(decoded) != len(jobs) {
		t.Fatalf("%d jobs, want %d", len(decoded), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], decoded[i]
		if a.Instance != b.Instance || a.Algorithm != b.Algorithm || a.Memory != b.Memory || a.Window != b.Window {
			t.Fatalf("job %d scalar fields differ: %+v vs %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.Order, b.Order) {
			t.Fatalf("job %d order differs: %v vs %v", i, a.Order, b.Order)
		}
		var sb1, sb2 strings.Builder
		if err := a.Tree.Write(&sb1); err != nil {
			t.Fatal(err)
		}
		if err := b.Tree.Write(&sb2); err != nil {
			t.Fatal(err)
		}
		if sb1.String() != sb2.String() {
			t.Fatalf("job %d tree differs after round trip", i)
		}
	}
	if decoded[0].Tree != decoded[1].Tree || decoded[0].Tree != decoded[3].Tree {
		t.Fatal("jobs over one tree decoded to distinct *tree.Tree values")
	}
	if decoded[1].Tree == decoded[2].Tree {
		t.Fatal("jobs over distinct trees decoded to one *tree.Tree")
	}
	if &decoded[1].Order[0] != &decoded[3].Order[0] {
		t.Fatal("jobs sharing an order slice decoded to distinct slices")
	}
	// Deterministic encoding: re-encoding the decoded jobs reproduces the
	// bytes (tree and order tables rebuild in first-reference order).
	again, err := encodeBatchBinary(decoded, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding decoded jobs changed the bytes")
	}
}

// Corrupt binary requests are rejected with an error, never a panic or a
// silent partial batch.
func TestBatchBinaryRejectsCorruption(t *testing.T) {
	jobs := binaryFixtureJobs(t)
	data, err := encodeBatchBinary(jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short":         data[:2],
		"bad magic":     append([]byte{0x7B}, data[1:]...),
		"bad kind":      append([]byte{data[0], 'R'}, data[2:]...),
		"bad version":   append([]byte{data[0], data[1], 99}, data[3:]...),
		"trailing junk": append(append([]byte{}, data...), 0x00),
	}
	for i := 3; i < len(data); i += 7 {
		cases["truncated@"+string(rune('0'+i%10))] = data[:i]
	}
	for name, c := range cases {
		if _, _, err := decodeBatchBinary(c); err == nil {
			t.Errorf("%s: corrupt request decoded without error", name)
		}
	}
}

// Content negotiation is per header and independent: the binary request
// form and the binary response stream each switch on their own header, and
// parameters or lists in the header values are tolerated.
func TestContentNegotiation(t *testing.T) {
	if !isBinaryBatch(ContentTypeBinaryBatch) || !isBinaryBatch(ContentTypeBinaryBatch+"; charset=x") {
		t.Fatal("binary batch media type not recognized")
	}
	if isBinaryBatch("application/json") || isBinaryBatch("") {
		t.Fatal("JSON request misrecognized as binary")
	}
	if !acceptsBinaryRows(ContentTypeBinaryRows) || !acceptsBinaryRows("application/jsonl, "+ContentTypeBinaryRows+";q=0.9") {
		t.Fatal("binary rows Accept not recognized")
	}
	if acceptsBinaryRows("") || acceptsBinaryRows("*/*") || acceptsBinaryRows("application/jsonl") {
		t.Fatal("JSON-only Accept misrecognized as binary")
	}
}

// A JSON request that accepts the binary stream gets binary frames back —
// the reader reassembles rows identical to a JSON Lines exchange.
func TestBinaryResponseToJSONRequest(t *testing.T) {
	fixture := binaryFixtureJobs(t)
	jobs := []schedule.Job{
		{Instance: "a", Tree: fixture[0].Tree, Algorithm: "postorder"},
		{Instance: "a", Tree: fixture[0].Tree, Algorithm: "liu"},
	}
	srv := httptest.NewServer(NewServer(nil, 0).Handler())
	t.Cleanup(srv.Close)

	jsonClient := NewClient(srv.URL, srv.Client())
	want, err := jsonClient.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	req, err := encodeBatch(jobs, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequestWithContext(context.Background(), http.MethodPost, srv.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", ContentTypeBinaryRows)
	resp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !isBinaryRows(ct) {
		t.Fatalf("response Content-Type %q, want %q", ct, ContentTypeBinaryRows)
	}
	rows := make([]schedule.Row, len(jobs))
	got := make([]bool, len(jobs))
	if err := readBinaryResponse(resp.Body, jobs, schedule.BatchOptions{}, rows, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		a, b := rows[i], want[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("row %d differs binary vs json: %+v vs %+v", i, rows[i], want[i])
		}
	}
}
