package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachRunsAll(t *testing.T) {
	var hits [100]atomic.Int32
	err := ForEach(context.Background(), 100, 8, func(i int) error {
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error { return nil }); err != nil {
		t.Fatal("n=0 should be a no-op")
	}
	if err := ForEach(context.Background(), -1, 4, func(int) error { return nil }); err == nil {
		t.Fatal("negative n accepted")
	}
	if err := ForEach(context.Background(), 5, 4, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	// workers ≤ 0 defaults to GOMAXPROCS; workers > n is clamped.
	if err := ForEach(context.Background(), 3, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(context.Background(), 2, 50, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), 1000, 4, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ran.Load() == 1000 {
		t.Log("cancellation did not short-circuit (legal but unexpected on 1 core)")
	}
}

func TestForEachHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 100, 4, func(int) error { return nil })
	if err == nil {
		t.Fatal("cancelled context not reported")
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(context.Background(), 50, 7, func(i int) (string, error) {
		return fmt.Sprintf("v%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(context.Background(), 10, 2, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
}

// Property: Map output matches the sequential computation for any size and
// worker count.
func TestQuickMapMatchesSequential(t *testing.T) {
	prop := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 64)
		w := int(wRaw%8) + 1
		out, err := Map(context.Background(), n, w, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			return false
		}
		for i, v := range out {
			if v != i*i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
