// Package runner provides the small parallel-execution substrate used to
// evaluate instance suites: a bounded worker pool with deterministic result
// placement, first-error propagation and context cancellation. The
// algorithms themselves are sequential (as in the paper); parallelism is
// across independent instances, so results are bit-identical to a
// sequential run.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers ≤ 0 selects GOMAXPROCS). The first error cancels the remaining
// work and is returned; fn must be safe for concurrent invocation on
// distinct indices.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n < 0 {
		return fmt.Errorf("runner: negative count %d", n)
	}
	if n == 0 {
		return nil
	}
	if fn == nil {
		return fmt.Errorf("runner: nil function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return ctx.Err()
}

// Map applies fn to every index and collects results in order. Like
// ForEach, the first error wins and cancels the rest; the partial results
// of failed runs are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
