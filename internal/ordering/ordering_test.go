package ordering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func grid(t *testing.T, nx, ny int) *sparse.Matrix {
	t.Helper()
	g, err := sparse.Grid2D(nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMinimumDegreeIsPermutation(t *testing.T) {
	g := grid(t, 9, 7)
	perm, err := MinimumDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsPermutation(perm, g.N()); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumDegreeStar(t *testing.T) {
	// Star graph: center 0, leaves 1..5. MD must eliminate all leaves
	// (degree 1) before the center (degree 5).
	n := 6
	cols := make([][]int, n)
	cols[0] = []int{0}
	for i := 1; i < n; i++ {
		cols[0] = append(cols[0], i)
		cols[i] = []int{i, 0}
	}
	m, err := sparse.New(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := MinimumDegree(m)
	if err != nil {
		t.Fatal(err)
	}
	// The center has degree 5 and every leaf degree 1, so the center cannot
	// be eliminated while more than one leaf remains (after four leaves its
	// degree drops to 1 and it may tie with the last leaf).
	for k := 0; k < 4; k++ {
		if perm[k] == 0 {
			t.Fatalf("center eliminated at position %d of %v, want after the leaves", k, perm)
		}
	}
}

func TestMinimumDegreeChainNoFill(t *testing.T) {
	// A path graph has a perfect elimination order (ends first); MD should
	// find one: every eliminated vertex has degree ≤ 1 at elimination time,
	// which we verify by checking the element boundary sizes via symbolic
	// reasoning: eliminating interior vertices first would create fill.
	m, err := sparse.BandMatrix(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := MinimumDegree(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsPermutation(perm, 12); err != nil {
		t.Fatal(err)
	}
	// First eliminated must be an endpoint (degree 1).
	if perm[0] != 0 && perm[0] != 11 {
		t.Fatalf("first eliminated %d is not a path endpoint", perm[0])
	}
}

func TestMinimumDegreeRejectsAsymmetric(t *testing.T) {
	m, err := sparse.New(2, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinimumDegree(m); err == nil {
		t.Fatal("asymmetric pattern accepted")
	}
	if _, err := ReverseCuthillMcKee(m); err == nil {
		t.Fatal("asymmetric pattern accepted by RCM")
	}
	if _, err := NestedDissection(m, NestedDissectionOptions{}); err == nil {
		t.Fatal("asymmetric pattern accepted by ND")
	}
}

func TestRCMIsPermutationAndReducesBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, err := sparse.RandomSymmetric(rng, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := ReverseCuthillMcKee(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsPermutation(perm, m.N()); err != nil {
		t.Fatal(err)
	}
	bandwidth := func(a *sparse.Matrix) int {
		bw := 0
		for j := 0; j < a.N(); j++ {
			for _, i := range a.Col(j) {
				if d := int(i) - j; d > bw {
					bw = d
				}
			}
		}
		return bw
	}
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	// A scrambled version of the same matrix for comparison.
	scramble := rng.Perm(m.N())
	sm, err := m.Permute(scramble)
	if err != nil {
		t.Fatal(err)
	}
	if bandwidth(pm) > bandwidth(sm) {
		t.Fatalf("RCM bandwidth %d worse than random %d", bandwidth(pm), bandwidth(sm))
	}
}

func TestRCMDisconnected(t *testing.T) {
	// Two disjoint edges + an isolated vertex.
	m, err := sparse.New(5, [][]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	perm, err := ReverseCuthillMcKee(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsPermutation(perm, 5); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDissectionGrid(t *testing.T) {
	g := grid(t, 16, 16)
	perm, err := NestedDissection(g, NestedDissectionOptions{LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := IsPermutation(perm, g.N()); err != nil {
		t.Fatal(err)
	}
	// The last eliminated vertices form the top separator; on a 16×16 grid a
	// level-set separator has far fewer than 256 vertices.
	// Sanity: natural order is a valid permutation too.
	if err := IsPermutation(Natural(g), g.N()); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDissectionDisconnected(t *testing.T) {
	// Two disjoint 3×3 grids glued into one matrix.
	g, err := sparse.Grid2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := 18
	cols := make([][]int, n)
	for j := 0; j < 9; j++ {
		for _, i := range g.Col(j) {
			cols[j] = append(cols[j], int(i))
			cols[j+9] = append(cols[j+9], int(i)+9)
		}
	}
	m, err := sparse.New(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := NestedDissection(m, NestedDissectionOptions{LeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := IsPermutation(perm, n); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDissectionClique(t *testing.T) {
	// A clique cannot be split; ND must fall back gracefully.
	n := 20
	cols := make([][]int, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			cols[j] = append(cols[j], i)
		}
	}
	m, err := sparse.New(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := NestedDissection(m, NestedDissectionOptions{LeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := IsPermutation(perm, n); err != nil {
		t.Fatal(err)
	}
}

func TestIsPermutation(t *testing.T) {
	if err := IsPermutation([]int{0, 2, 1}, 3); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{0, 1}, {0, 1, 1}, {0, 1, 5}, {0, -1, 2}} {
		if err := IsPermutation(bad, 3); err == nil {
			t.Fatalf("IsPermutation(%v, 3) accepted", bad)
		}
	}
}

// Property: all three orderings yield valid permutations on random
// connected symmetric matrices.
func TestQuickOrderingsValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(14))}
	prop := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%80)
		rng := rand.New(rand.NewSource(seed))
		m, err := sparse.RandomSymmetric(rng, n, 2.5)
		if err != nil {
			return false
		}
		md, err := MinimumDegree(m)
		if err != nil || IsPermutation(md, n) != nil {
			return false
		}
		rcm, err := ReverseCuthillMcKee(m)
		if err != nil || IsPermutation(rcm, n) != nil {
			return false
		}
		nd, err := NestedDissection(m, NestedDissectionOptions{LeafSize: 8})
		if err != nil || IsPermutation(nd, n) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
