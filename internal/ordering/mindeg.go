// Package ordering provides fill-reducing orderings for symmetric sparse
// patterns: approximate minimum degree on a quotient graph (the role played
// by Matlab's amd in the paper's setup), reverse Cuthill–McKee, and nested
// dissection via level-set bisection (the role played by MeTiS). All
// functions return a new-to-old permutation: perm[k] is the original index
// eliminated at step k. Feeding sparse.Matrix.Permute with it yields the
// reordered pattern.
package ordering

import (
	"container/heap"
	"fmt"

	"repro/internal/sparse"
)

// MinimumDegreeOptions selects the minimum-degree variant.
type MinimumDegreeOptions struct {
	// Exact selects the exact-external-degree path: Liu's MMD framework
	// without supervariable compression, recomputing every updated
	// variable's degree by a full reach scan. It is the reference
	// implementation the AMD path is differentially tested against;
	// worst-case quadratic, so only suitable for small patterns.
	Exact bool
}

// MinimumDegree computes a fill-reducing minimum-degree ordering with the
// AMD algorithm (approximate external degrees of Amestoy, Davis and Duff,
// with supervariable compression and aggressive element absorption). The
// matrix must be symmetric; the diagonal is ignored. See AMD for the
// algorithm, MinimumDegreeWith for the exact-degree reference path.
func MinimumDegree(m *sparse.Matrix) ([]int, error) {
	return AMD(m)
}

// MinimumDegreeWith computes a minimum-degree ordering with the selected
// variant: the AMD hot path by default, the exact-degree reference path
// with opt.Exact.
func MinimumDegreeWith(m *sparse.Matrix, opt MinimumDegreeOptions) ([]int, error) {
	if opt.Exact {
		return exactMinimumDegree(m)
	}
	return AMD(m)
}

// exactMinimumDegree is the seed implementation: a quotient graph with
// element absorption where every update recomputes the variable's exact
// external degree by scanning its full reach (Liu's MMD framework, without
// supervariable compression). At every step the variable of smallest exact
// external degree (ties broken by smallest index) is eliminated; its
// adjacent elements are absorbed into the newly formed element, so storage
// never exceeds the input pattern. Kept as the differential reference for
// the AMD path.
func exactMinimumDegree(m *sparse.Matrix) ([]int, error) {
	if !m.IsSymmetric() {
		return nil, fmt.Errorf("ordering: minimum degree needs a symmetric pattern")
	}
	n := m.N()
	adjVar := make([][]int32, n) // variable–variable adjacency (original edges)
	adjEl := make([][]int32, n)  // variable–element adjacency
	for j := 0; j < n; j++ {
		col := m.Col(j)
		vars := make([]int32, 0, len(col))
		for _, i := range col {
			if int(i) != j {
				vars = append(vars, i)
			}
		}
		adjVar[j] = vars
	}
	var (
		eliminated = make([]bool, n)
		absorbed   = make([]bool, n)
		elemVars   = make([][]int32, n)
		degree     = make([]int, n)
		marker     = make([]int32, n)
		stamp      = int32(0)
	)
	pq := make(degHeap, 0, n)
	for v := 0; v < n; v++ {
		degree[v] = len(adjVar[v])
		pq = append(pq, degNode{degree[v], int32(v)})
	}
	heap.Init(&pq)
	perm := make([]int, 0, n)
	lv := make([]int32, 0, 64)
	for len(perm) < n {
		top := heap.Pop(&pq).(degNode)
		v := int(top.node)
		if eliminated[v] || top.deg != degree[v] {
			continue // stale heap entry
		}
		// Form the new element's variable list Lv = reach(v).
		stamp++
		marker[v] = stamp
		lv = lv[:0]
		for _, u := range adjVar[v] {
			if !eliminated[u] && marker[u] != stamp {
				marker[u] = stamp
				lv = append(lv, u)
			}
		}
		for _, e := range adjEl[v] {
			if absorbed[e] {
				continue
			}
			for _, u := range elemVars[e] {
				if !eliminated[u] && marker[u] != stamp {
					marker[u] = stamp
					lv = append(lv, u)
				}
			}
			absorbed[e] = true
			elemVars[e] = nil
		}
		eliminated[v] = true
		elemVars[v] = append([]int32(nil), lv...)
		adjVar[v], adjEl[v] = nil, nil
		perm = append(perm, v)
		// Update every variable in Lv: prune its lists, attach the new
		// element, recompute its exact external degree.
		for _, u := range lv {
			// Prune eliminated variables (their connectivity is now carried
			// by elements).
			vu := adjVar[u][:0]
			for _, w := range adjVar[u] {
				if !eliminated[w] {
					vu = append(vu, w)
				}
			}
			adjVar[u] = vu
			// Prune absorbed elements, attach v.
			eu := adjEl[u][:0]
			for _, e := range adjEl[u] {
				if !absorbed[e] {
					eu = append(eu, e)
				}
			}
			adjEl[u] = append(eu, int32(v))
			// Exact external degree: |vars(u) ∪ ∪ vars(elements of u)| − u.
			stamp++
			marker[u] = stamp
			d := 0
			for _, w := range adjVar[u] {
				if marker[w] != stamp {
					marker[w] = stamp
					d++
				}
			}
			for _, e := range adjEl[u] {
				for _, w := range elemVars[e] {
					if !eliminated[w] && marker[w] != stamp {
						marker[w] = stamp
						d++
					}
				}
			}
			degree[int(u)] = d
			heap.Push(&pq, degNode{d, u})
		}
	}
	return perm, nil
}

type degNode struct {
	deg  int
	node int32
}

type degHeap []degNode

func (h degHeap) Len() int { return len(h) }
func (h degHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].node < h[j].node
}
func (h degHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *degHeap) Push(x interface{}) { *h = append(*h, x.(degNode)) }
func (h *degHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
