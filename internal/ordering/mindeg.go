// Package ordering provides fill-reducing orderings for symmetric sparse
// patterns: minimum degree on a quotient graph (the role played by Matlab's
// amd in the paper's setup), reverse Cuthill–McKee, and nested dissection
// via level-set bisection (the role played by MeTiS). All functions return
// a new-to-old permutation: perm[k] is the original index eliminated at
// step k. Feeding sparse.Matrix.Permute with it yields the reordered
// pattern.
package ordering

import (
	"container/heap"
	"fmt"

	"repro/internal/sparse"
)

// MinimumDegree computes a minimum-degree ordering using a quotient graph
// with element absorption (Liu's MMD framework, without supervariable
// compression). The matrix must be symmetric; the diagonal is ignored.
//
// At every step the variable of smallest exact external degree (ties broken
// by smallest index) is eliminated; its adjacent elements are absorbed into
// the newly formed element, so storage never exceeds the input pattern.
func MinimumDegree(m *sparse.Matrix) ([]int, error) {
	if !m.IsSymmetric() {
		return nil, fmt.Errorf("ordering: minimum degree needs a symmetric pattern")
	}
	n := m.N()
	adjVar := make([][]int32, n) // variable–variable adjacency (original edges)
	adjEl := make([][]int32, n)  // variable–element adjacency
	for j := 0; j < n; j++ {
		col := m.Col(j)
		vars := make([]int32, 0, len(col))
		for _, i := range col {
			if int(i) != j {
				vars = append(vars, i)
			}
		}
		adjVar[j] = vars
	}
	var (
		eliminated = make([]bool, n)
		absorbed   = make([]bool, n)
		elemVars   = make([][]int32, n)
		degree     = make([]int, n)
		marker     = make([]int32, n)
		stamp      = int32(0)
	)
	pq := make(degHeap, 0, n)
	for v := 0; v < n; v++ {
		degree[v] = len(adjVar[v])
		pq = append(pq, degNode{degree[v], int32(v)})
	}
	heap.Init(&pq)
	perm := make([]int, 0, n)
	lv := make([]int32, 0, 64)
	for len(perm) < n {
		top := heap.Pop(&pq).(degNode)
		v := int(top.node)
		if eliminated[v] || top.deg != degree[v] {
			continue // stale heap entry
		}
		// Form the new element's variable list Lv = reach(v).
		stamp++
		marker[v] = stamp
		lv = lv[:0]
		for _, u := range adjVar[v] {
			if !eliminated[u] && marker[u] != stamp {
				marker[u] = stamp
				lv = append(lv, u)
			}
		}
		for _, e := range adjEl[v] {
			if absorbed[e] {
				continue
			}
			for _, u := range elemVars[e] {
				if !eliminated[u] && marker[u] != stamp {
					marker[u] = stamp
					lv = append(lv, u)
				}
			}
			absorbed[e] = true
			elemVars[e] = nil
		}
		eliminated[v] = true
		elemVars[v] = append([]int32(nil), lv...)
		adjVar[v], adjEl[v] = nil, nil
		perm = append(perm, v)
		// Update every variable in Lv: prune its lists, attach the new
		// element, recompute its exact external degree.
		for _, u := range lv {
			// Prune eliminated variables (their connectivity is now carried
			// by elements).
			vu := adjVar[u][:0]
			for _, w := range adjVar[u] {
				if !eliminated[w] {
					vu = append(vu, w)
				}
			}
			adjVar[u] = vu
			// Prune absorbed elements, attach v.
			eu := adjEl[u][:0]
			for _, e := range adjEl[u] {
				if !absorbed[e] {
					eu = append(eu, e)
				}
			}
			adjEl[u] = append(eu, int32(v))
			// Exact external degree: |vars(u) ∪ ∪ vars(elements of u)| − u.
			stamp++
			marker[u] = stamp
			d := 0
			for _, w := range adjVar[u] {
				if marker[w] != stamp {
					marker[w] = stamp
					d++
				}
			}
			for _, e := range adjEl[u] {
				for _, w := range elemVars[e] {
					if !eliminated[w] && marker[w] != stamp {
						marker[w] = stamp
						d++
					}
				}
			}
			degree[int(u)] = d
			heap.Push(&pq, degNode{d, u})
		}
	}
	return perm, nil
}

type degNode struct {
	deg  int
	node int32
}

type degHeap []degNode

func (h degHeap) Len() int { return len(h) }
func (h degHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].node < h[j].node
}
func (h degHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *degHeap) Push(x interface{}) { *h = append(*h, x.(degNode)) }
func (h *degHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
