package ordering

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// ReverseCuthillMcKee computes the RCM ordering: BFS from a
// pseudo-peripheral vertex visiting neighbours by increasing degree, then
// reversed. It reduces bandwidth/profile — a classic baseline ordering.
func ReverseCuthillMcKee(m *sparse.Matrix) ([]int, error) {
	if !m.IsSymmetric() {
		return nil, fmt.Errorf("ordering: RCM needs a symmetric pattern")
	}
	n := m.N()
	visited := make([]bool, n)
	deg := func(v int) int { return len(m.Col(v)) }
	order := make([]int, 0, n)
	var queue []int
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(m, start)
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			var next []int
			for _, w := range m.Col(v) {
				if int(w) != v && !visited[w] {
					visited[w] = true
					next = append(next, int(w))
				}
			}
			sort.Slice(next, func(a, b int) bool {
				if deg(next[a]) != deg(next[b]) {
					return deg(next[a]) < deg(next[b])
				}
				return next[a] < next[b]
			})
			queue = append(queue, next...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// pseudoPeripheral finds an approximately eccentric vertex of the connected
// component containing start via repeated BFS (the George–Liu heuristic).
func pseudoPeripheral(m *sparse.Matrix, start int) int {
	n := m.N()
	level := make([]int32, n)
	cur := start
	curEcc := -1
	for iter := 0; iter < 8; iter++ {
		last, ecc := bfsFarthest(m, cur, level)
		if ecc <= curEcc {
			break
		}
		curEcc = ecc
		cur = last
	}
	return cur
}

// bfsFarthest runs a BFS from root, filling level (−1 = unreached), and
// returns a farthest vertex of smallest degree and the eccentricity.
func bfsFarthest(m *sparse.Matrix, root int, level []int32) (far int, ecc int) {
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	queue := []int{root}
	far, ecc = root, 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if int(level[v]) > ecc || (int(level[v]) == ecc && len(m.Col(v)) < len(m.Col(far))) {
			far, ecc = v, int(level[v])
		}
		for _, w := range m.Col(v) {
			if level[w] == -1 {
				level[w] = level[v] + 1
				queue = append(queue, int(w))
			}
		}
	}
	return far, ecc
}

// Natural returns the identity ordering, the "no reordering" baseline.
func Natural(m *sparse.Matrix) []int {
	perm := make([]int, m.N())
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// IsPermutation validates that perm is a permutation of 0..n−1.
func IsPermutation(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("ordering: permutation has %d entries, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n {
			return fmt.Errorf("ordering: entry %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("ordering: entry %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}
