package ordering

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
	"repro/internal/symbolic"
)

// checkPerm fails unless perm is a permutation of 0..n-1.
func checkPerm(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm has %d entries, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("perm is not a permutation: %v", perm)
		}
		seen[v] = true
	}
}

// fill computes the Cholesky factor size of m reordered by perm.
func fill(t *testing.T, m *sparse.Matrix, perm []int) int64 {
	t.Helper()
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatalf("permute: %v", err)
	}
	parent, err := symbolic.EliminationTree(pm)
	if err != nil {
		t.Fatalf("etree: %v", err)
	}
	counts, err := symbolic.ColumnCounts(pm, parent)
	if err != nil {
		t.Fatalf("counts: %v", err)
	}
	return symbolic.FactorNNZ(counts)
}

func TestAMDIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mats := map[string]*sparse.Matrix{}
	add := func(name string, m *sparse.Matrix, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mats[name] = m
	}
	g2, err := sparse.Grid2D(17, 23)
	add("grid2d", g2, err)
	g3, err := sparse.Grid3D(7, 6, 5)
	add("grid3d", g3, err)
	rs, err := sparse.RandomSymmetric(rng, 200, 6)
	add("random", rs, err)
	sf, err := sparse.ScaleFree(rng, 150, 3)
	add("scalefree", sf, err)
	bm, err := sparse.BandMatrix(120, 9)
	add("band", bm, err)
	for name, m := range mats {
		perm, err := AMD(m)
		if err != nil {
			t.Fatalf("%s: AMD: %v", name, err)
		}
		checkPerm(t, perm, m.N())
	}
}

func TestAMDTinyAndEmpty(t *testing.T) {
	for n := 1; n <= 3; n++ {
		cols := make([][]int, n)
		for j := range cols {
			cols[j] = []int{j}
		}
		m, err := sparse.New(n, cols)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := AMD(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkPerm(t, perm, n)
	}
}

func TestAMDStarOrdersLeavesFirst(t *testing.T) {
	// Star graph: center 0 has degree n-1, every leaf degree 1. All leaves
	// must be eliminated before the center.
	const n = 12
	cols := make([][]int, n)
	cols[0] = []int{0}
	for i := 1; i < n; i++ {
		cols[0] = append(cols[0], i)
		cols[i] = []int{0, i}
	}
	m, err := sparse.New(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := AMD(m)
	if err != nil {
		t.Fatal(err)
	}
	checkPerm(t, perm, n)
	// The center cannot be eliminated while more than one leaf remains
	// (once a single leaf is left the two tie at degree 1).
	for k := 0; k < n-2; k++ {
		if perm[k] == 0 {
			t.Fatalf("center eliminated at position %d of %v", k, perm)
		}
	}
}

func TestAMDChainNoFill(t *testing.T) {
	// A path graph has a zero-fill minimum-degree ordering; AMD must find
	// one (fill == input nnz of the lower triangle).
	const n = 64
	cols := make([][]int, n)
	for i := 0; i < n; i++ {
		cols[i] = append(cols[i], i)
		if i > 0 {
			cols[i] = append(cols[i], i-1)
		}
		if i < n-1 {
			cols[i] = append(cols[i], i+1)
		}
	}
	m, err := sparse.New(n, cols)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := AMD(m)
	if err != nil {
		t.Fatal(err)
	}
	checkPerm(t, perm, n)
	if got := fill(t, m, perm); got != 2*n-1 {
		t.Fatalf("chain fill = %d, want %d (zero fill)", got, 2*n-1)
	}
}

func TestAMDMatchesExactFillQuality(t *testing.T) {
	// On structured and random patterns, AMD's fill must stay within a
	// modest factor of the exact-degree reference (both are heuristics, so
	// exact equality is not expected — AMD can win or lose slightly).
	rng := rand.New(rand.NewSource(42))
	check := func(name string, m *sparse.Matrix) {
		t.Helper()
		amdPerm, err := AMD(m)
		if err != nil {
			t.Fatalf("%s: AMD: %v", name, err)
		}
		checkPerm(t, amdPerm, m.N())
		exactPerm, err := MinimumDegreeWith(m, MinimumDegreeOptions{Exact: true})
		if err != nil {
			t.Fatalf("%s: exact: %v", name, err)
		}
		fa, fe := fill(t, m, amdPerm), fill(t, m, exactPerm)
		if float64(fa) > 1.3*float64(fe)+float64(m.N()) {
			t.Errorf("%s: AMD fill %d vs exact %d exceeds tolerance", name, fa, fe)
		}
	}
	g2, err := sparse.Grid2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	check("grid2d", g2)
	bm, err := sparse.BandMatrix(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	check("band", bm)
	for trial := 0; trial < 10; trial++ {
		rs, err := sparse.RandomSymmetric(rng, 60, 4)
		if err != nil {
			t.Fatal(err)
		}
		check("random", rs)
	}
}

func TestAMDRejectsAsymmetric(t *testing.T) {
	m, err := sparse.New(3, [][]int{{0, 1}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AMD(m); err == nil {
		t.Fatal("want error for asymmetric pattern")
	}
}

// fuzzPattern decodes fuzz bytes into a small symmetric pattern with a full
// diagonal: byte k toggles edge k of the strict upper triangle of an n×n
// pattern, row-major.
func fuzzPattern(data []byte) *sparse.Matrix {
	n := 2 + int(len(data)%63)
	if n > 64 {
		n = 64
	}
	cols := make([][]int, n)
	for j := range cols {
		cols[j] = []int{j}
	}
	k := 0
	for i := 0; i < n && k < len(data); i++ {
		for j := i + 1; j < n && k < len(data); j++ {
			if data[k]&1 == 1 {
				cols[j] = append(cols[j], i)
				cols[i] = append(cols[i], j)
			}
			k++
		}
	}
	m, err := sparse.New(n, cols)
	if err != nil {
		panic(err) // construction above is always valid
	}
	return m
}

func FuzzAMDVsExact(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1})
	f.Add(make([]byte, 64))
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		m := fuzzPattern(data)
		amdPerm, err := AMD(m)
		if err != nil {
			t.Fatalf("AMD: %v", err)
		}
		checkPerm(t, amdPerm, m.N())
		exactPerm, err := MinimumDegreeWith(m, MinimumDegreeOptions{Exact: true})
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		checkPerm(t, exactPerm, m.N())
		fa, fe := fill(t, m, amdPerm), fill(t, m, exactPerm)
		// Approximate degrees may lose to exact degrees, but never wildly
		// on patterns this small.
		if float64(fa) > 1.5*float64(fe)+float64(m.N()) {
			t.Errorf("AMD fill %d vs exact %d exceeds tolerance (n=%d)", fa, fe, m.N())
		}
	})
}
