package ordering

import (
	"fmt"

	"repro/internal/sparse"
)

// AMD computes an approximate-minimum-degree ordering of a symmetric
// pattern (the diagonal is ignored), following Amestoy, Davis and Duff:
// the quotient graph lives in one flat int32 arena, pivots are picked from
// degree-bucket lists (no heap, no stale entries), adjacent elements are
// absorbed aggressively, indistinguishable variables are detected by
// adjacency-list hashing and merged into supervariables, and updated
// degrees are the ADD approximate external degree bound
//
//	d̄ᵢ = min(n − |eliminated|, d̄ᵢ + |Lme\i|, |Aᵢ live| + |Lme\i| + Σₑ |Lₑ\Lme|)
//
// rather than an exact reach scan. The returned new-to-old permutation
// lists every original column in elimination order (members of a merged
// supervariable are emitted together, which is exactly how minimum degree
// with supervariables eliminates them).
func AMD(m *sparse.Matrix) ([]int, error) {
	if !m.IsSymmetric() {
		return nil, fmt.Errorf("ordering: minimum degree needs a symmetric pattern")
	}
	a := newAMDState(m)
	a.eliminate()
	return a.perm, nil
}

// amdState is the quotient graph. Node i is, over its lifetime, a variable
// (a not-yet-eliminated column, possibly a supervariable standing for
// several indistinguishable columns), then either an element (the pivot's
// clique, named after the pivot) or dead (absorbed into a supervariable or
// an element).
type amdState struct {
	n int

	// iw is the flat arena. A variable i's list is
	// iw[pe[i] : pe[i]+len[i]]: first elen[i] adjacent elements, then
	// len[i]−elen[i] adjacent variables. An element e's list is its
	// variables Le, iw[pe[e] : pe[e]+len[e]]. Lists may contain dead
	// entries (nv == 0), skipped on read; pe[i] < 0 means i has no list.
	iw    []int32
	pe    []int32
	ln    []int32 // len is a builtin; ln[i] is the list length
	elen  []int32
	pfree int32 // arena high-water mark; [pfree:] is free

	// nv[i] is the supervariable size (original columns represented).
	// While a pivot is being processed, members of its Lme are flagged by
	// negating nv. nv[i] == 0 marks a dead node.
	nv []int32
	// degree[i] is the ADD approximate external degree of a variable (in
	// original-column units), or |Le| (same units) for an element.
	degree []int32
	// state distinguishes the three node lifetimes.
	state []uint8

	// Degree buckets: head[d] is the first variable of degree d, linked by
	// dnext/dprev; mindeg is a lower bound on the smallest occupied bucket.
	head   []int32
	dnext  []int32
	dprev  []int32
	mindeg int32

	// w is the element workspace of AMD's two-scan set-difference trick:
	// after scan 1, w[e]−wflg = |Le \ Lme| for every element e adjacent to
	// Lme. int64 so wflg never wraps.
	w    []int64
	wflg int64

	// Supervariable detection: hash buckets over the just-updated
	// variables, plus each variable's hash value.
	hhead []int32
	hnext []int32
	hash  []uint32

	// Member lists: the original columns a supervariable stands for, in
	// merge order. memberNext chains originals; head/tail live per node.
	mhead, mtail, mnext []int32

	// scratch degree accumulated during scan 2, finalized after mass
	// eliminations settle.
	scratch []int32

	perm []int
	nel  int32 // original columns eliminated so far
}

const (
	amdVariable uint8 = iota
	amdElement
	amdDead
)

const amdEmpty = int32(-1)

func newAMDState(m *sparse.Matrix) *amdState {
	n := m.N()
	a := &amdState{n: n}
	// Count off-diagonal entries to size the arena: the initial lists plus
	// slack for new element lists before the first garbage collection.
	nz := 0
	for j := 0; j < n; j++ {
		col := m.Col(j)
		nz += len(col)
		for _, i := range col {
			if int(i) == j {
				nz--
			}
		}
	}
	a.iw = make([]int32, nz+nz/5+n+1)
	a.pe = make([]int32, n)
	a.ln = make([]int32, n)
	a.elen = make([]int32, n)
	a.nv = make([]int32, n)
	a.degree = make([]int32, n)
	a.state = make([]uint8, n)
	a.head = make([]int32, n+1)
	a.dnext = make([]int32, n)
	a.dprev = make([]int32, n)
	a.w = make([]int64, n)
	a.wflg = 2
	a.hhead = make([]int32, n)
	a.hnext = make([]int32, n)
	a.hash = make([]uint32, n)
	a.mhead = make([]int32, n)
	a.mtail = make([]int32, n)
	a.mnext = make([]int32, n)
	a.scratch = make([]int32, n)
	a.perm = make([]int, 0, n)

	for d := range a.head {
		a.head[d] = amdEmpty
	}
	for i := range a.hhead {
		a.hhead[i] = amdEmpty
	}
	p := int32(0)
	for j := 0; j < n; j++ {
		a.pe[j] = p
		for _, i := range m.Col(j) {
			if int(i) != j {
				a.iw[p] = i
				p++
			}
		}
		a.ln[j] = p - a.pe[j]
		a.elen[j] = 0
		a.nv[j] = 1
		a.degree[j] = a.ln[j]
		a.mhead[j], a.mtail[j] = int32(j), int32(j)
		a.mnext[j] = amdEmpty
		a.dlistInsert(int32(j), a.degree[j])
	}
	a.pfree = p
	a.mindeg = 0
	return a
}

// dlistInsert puts variable i at the head of degree bucket d.
func (a *amdState) dlistInsert(i, d int32) {
	a.dprev[i] = amdEmpty
	a.dnext[i] = a.head[d]
	if a.head[d] != amdEmpty {
		a.dprev[a.head[d]] = int32(i)
	}
	a.head[d] = i
	if d < a.mindeg {
		a.mindeg = d
	}
}

// dlistRemove unlinks variable i from degree bucket d.
func (a *amdState) dlistRemove(i, d int32) {
	if a.dprev[i] != amdEmpty {
		a.dnext[a.dprev[i]] = a.dnext[i]
	} else {
		a.head[d] = a.dnext[i]
	}
	if a.dnext[i] != amdEmpty {
		a.dprev[a.dnext[i]] = a.dprev[i]
	}
}

// emit appends node i's member columns to the permutation.
func (a *amdState) emit(i int32) {
	for c := a.mhead[i]; c != amdEmpty; c = a.mnext[c] {
		a.perm = append(a.perm, int(c))
	}
	a.mhead[i] = amdEmpty
}

// appendMembers moves j's member list onto i's.
func (a *amdState) appendMembers(i, j int32) {
	if a.mhead[j] == amdEmpty {
		return
	}
	if a.mhead[i] == amdEmpty {
		a.mhead[i] = a.mhead[j]
	} else {
		a.mnext[a.mtail[i]] = a.mhead[j]
	}
	a.mtail[i] = a.mtail[j]
	a.mhead[j] = amdEmpty
}

// need ensures the arena has room for count more entries at pfree,
// garbage-collecting the live lists (and growing the arena if compaction
// alone is not enough).
func (a *amdState) need(count int32) {
	if int(a.pfree)+int(count) <= len(a.iw) {
		return
	}
	a.collect()
	if int(a.pfree)+int(count) > len(a.iw) {
		grown := make([]int32, int(a.pfree)+int(count)+len(a.iw)/2)
		copy(grown, a.iw[:a.pfree])
		a.iw = grown
	}
}

// collect compacts every live list to the front of the arena. Lists are
// already ordered by pe (lists are only ever written at the top of the
// arena, and rewrites happen in place), so one sweep in pe order suffices.
func (a *amdState) collect() {
	// Gather live nodes with lists, in pe order. Since every list was
	// allocated at a then-current top of arena and only shrinks in place,
	// pe order is allocation order; an insertion sort over mostly-sorted
	// input would be O(n²) in the worst case, so do a proper sort of the
	// indices by pe.
	live := make([]int32, 0, a.n)
	for i := int32(0); i < int32(a.n); i++ {
		if a.state[i] != amdDead && a.pe[i] >= 0 && a.ln[i] > 0 {
			live = append(live, i)
		}
	}
	// Counting-free sort by pe via a simple merge-friendly approach: pe
	// values are unique per live list, so sort indices by pe.
	sortByPe(live, a.pe)
	var top int32
	for _, i := range live {
		src := a.pe[i]
		n := a.ln[i]
		copy(a.iw[top:top+n], a.iw[src:src+n])
		a.pe[i] = top
		top += n
	}
	a.pfree = top
}

// sortByPe sorts node indices by their pe offsets (insertionless pdq-style
// three-way quicksort is overkill; lists are near-sorted, so use shell
// sort, which is O(n log n)-ish on this input and allocation-free).
func sortByPe(idx []int32, pe []int32) {
	for gap := len(idx) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(idx); i++ {
			v := idx[i]
			j := i
			for j >= gap && pe[idx[j-gap]] > pe[v] {
				idx[j] = idx[j-gap]
				j -= gap
			}
			idx[j] = v
		}
	}
}

// pickPivot pops a variable from the lowest occupied degree bucket.
func (a *amdState) pickPivot() int32 {
	for {
		if a.head[a.mindeg] == amdEmpty {
			a.mindeg++
			continue
		}
		me := a.head[a.mindeg]
		a.dlistRemove(me, a.mindeg)
		return me
	}
}

// eliminate runs the main AMD loop.
func (a *amdState) eliminate() {
	n := int32(a.n)
	for a.nel < n {
		me := a.pickPivot()
		a.eliminatePivot(me)
	}
}

// eliminatePivot eliminates supervariable me: forms the new element Lme,
// updates the approximate degrees of its members, absorbs contained
// elements, merges indistinguishable members, and emits the eliminated
// columns.
func (a *amdState) eliminatePivot(me int32) {
	nvpiv := a.nv[me]
	a.emit(me)
	a.nel += nvpiv
	a.nv[me] = -nvpiv // flagged for the duration of the pivot

	// --- Form Lme = (Ame ∪ ⋃ Le for e ∈ Eme) \ {me} -------------------
	// Upper-bound the space Lme can need and reserve it before writing.
	var bound int32
	{
		p, ln, el := a.pe[me], a.ln[me], a.elen[me]
		bound = ln - el
		for k := int32(0); k < el; k++ {
			e := a.iw[p+k]
			if a.state[e] == amdElement {
				bound += a.ln[e]
			}
		}
	}
	a.need(bound)

	pme1 := a.pfree
	degme := int32(0) // |Lme| in original-column units
	{
		p := a.pe[me]
		el := a.elen[me]
		ln := a.ln[me]
		// Direct variable neighbours.
		for k := el; k < ln; k++ {
			i := a.iw[p+k]
			if a.nv[i] > 0 { // live, not yet in Lme
				degme += a.nv[i]
				a.nv[i] = -a.nv[i]
				a.iw[a.pfree] = i
				a.pfree++
				a.dlistRemove(i, a.degree[i])
			}
		}
		// Members of adjacent elements; the elements are absorbed into me.
		for k := int32(0); k < el; k++ {
			e := a.iw[p+k]
			if a.state[e] != amdElement {
				continue // already absorbed
			}
			pe, le := a.pe[e], a.ln[e]
			for q := int32(0); q < le; q++ {
				i := a.iw[pe+q]
				if a.nv[i] > 0 {
					degme += a.nv[i]
					a.nv[i] = -a.nv[i]
					a.iw[a.pfree] = i
					a.pfree++
					a.dlistRemove(i, a.degree[i])
				}
			}
			a.state[e] = amdDead
			a.pe[e] = amdEmpty
			a.w[e] = 0
		}
	}
	pme2 := a.pfree // Lme = iw[pme1:pme2]

	// me's old list is dead space; me becomes the element with list Lme.
	a.pe[me] = pme1
	a.ln[me] = pme2 - pme1
	a.elen[me] = 0
	a.state[me] = amdElement
	a.degree[me] = degme

	if degme == 0 {
		// Isolated (super)variable: no element to create.
		a.state[me] = amdDead
		a.pe[me] = amdEmpty
		a.nv[me] = nvpiv
		return
	}

	// --- Scan 1: set differences |Le \ Lme| via the w trick ------------
	// After this scan, w[e] − wflg = |Le \ Lme| for every element e
	// adjacent to a member of Lme (in original-column units).
	wflg := a.wflg
	for pm := pme1; pm < pme2; pm++ {
		i := a.iw[pm]
		nvi := -a.nv[i] // flagged negative
		if a.elen[i] <= 0 {
			continue
		}
		wnvi := wflg - int64(nvi)
		p := a.pe[i]
		for k := int32(0); k < a.elen[i]; k++ {
			e := a.iw[p+k]
			if a.state[e] != amdElement {
				continue
			}
			if a.w[e] >= wflg {
				a.w[e] -= int64(nvi)
			} else {
				// First touch this pivot: |Le| minus nvi.
				a.w[e] = int64(a.degree[e]) + wnvi
			}
		}
	}

	// --- Scan 2: prune lists, absorb elements, compute degrees ---------
	for pm := pme1; pm < pme2; pm++ {
		i := a.iw[pm]
		if a.nv[i] >= 0 {
			continue // mass-eliminated earlier in this scan
		}
		nvi := -a.nv[i]
		p1 := a.pe[i]
		pn := p1
		var h uint32
		var deg int32
		// Element list: keep elements with a nonempty external part,
		// aggressively absorb the rest into me.
		for k := int32(0); k < a.elen[i]; k++ {
			e := a.iw[p1+k]
			if a.state[e] != amdElement {
				continue
			}
			if a.w[e] != 0 {
				dext := a.w[e] - wflg
				if dext > 0 {
					deg += int32(dext)
					a.iw[pn] = e
					pn++
					h += uint32(e)
					continue
				}
			}
			// Le ⊆ Lme ∪ {me}: e is redundant, absorb it.
			a.state[e] = amdDead
			a.pe[e] = amdEmpty
			a.w[e] = 0
		}
		nel := pn - p1 // kept elements (me appended below)
		// Variable list: drop dead variables and Lme members (their
		// adjacency is now carried by me).
		for k := a.elen[i]; k < a.ln[i]; k++ {
			j := a.iw[p1+k]
			if a.nv[j] <= 0 {
				continue
			}
			deg += a.nv[j]
			a.iw[pn] = j
			pn++
			h += uint32(j)
		}
		if deg == 0 {
			// Mass elimination: i's entire adjacency is inside Lme ∪ {me},
			// so i can be eliminated right along with me.
			a.nv[i] = nvi // unflag before emitting
			a.emit(i)
			a.nel += nvi
			degme -= nvi
			a.nv[i] = 0
			a.state[i] = amdDead
			a.pe[i] = amdEmpty
			continue
		}
		a.scratch[i] = deg
		// Rebuild as [kept elements, me, kept variables]: shift the kept
		// variables up one slot to make room for me in the element part.
		for q := pn; q > p1+nel; q-- {
			a.iw[q] = a.iw[q-1]
		}
		a.iw[p1+nel] = me
		a.elen[i] = nel + 1
		a.ln[i] = pn + 1 - p1
		h += uint32(me)
		a.hash[i] = h % uint32(a.n)
		a.hnext[i] = a.hhead[a.hash[i]]
		a.hhead[a.hash[i]] = i
	}
	a.degree[me] = degme
	// Scan-1 values reach wflg + |Le| − 1 ≤ wflg + n − 1; advancing past
	// that keeps every stale w below the next pivot's threshold (and below
	// the supervariable-comparison stamps issued next).
	a.wflg = wflg + int64(a.n) + 1

	// --- Supervariable detection ---------------------------------------
	// Variables in Lme that hashed to the same bucket are compared; those
	// with identical quotient adjacency are merged.
	for pm := pme1; pm < pme2; pm++ {
		i := a.iw[pm]
		if a.nv[i] >= 0 || a.hhead[a.hash[i]] == amdEmpty {
			continue // dead, or bucket already processed
		}
		b := a.hash[i]
		x := a.hhead[b]
		a.hhead[b] = amdEmpty // process each bucket once
		for ; x != amdEmpty; x = a.hnext[x] {
			if a.nv[x] >= 0 {
				continue
			}
			for y := a.hnext[x]; y != amdEmpty; y = a.hnext[y] {
				if a.nv[y] >= 0 || a.hash[y] != a.hash[x] {
					continue
				}
				if a.sameAdjacency(x, y) {
					// Merge y into x: x now stands for y's columns too.
					a.nv[x] += a.nv[y] // both negative
					a.appendMembers(x, y)
					a.nv[y] = 0
					a.state[y] = amdDead
					a.pe[y] = amdEmpty
					a.elen[y] = 0
					a.ln[y] = 0
				}
			}
		}
	}

	// --- Finalize: restore flags, set degrees, refill buckets ----------
	nLeft := int32(a.n) - a.nel
	for pm := pme1; pm < pme2; pm++ {
		i := a.iw[pm]
		if a.nv[i] >= 0 {
			continue // dead (mass-eliminated or merged)
		}
		nvi := -a.nv[i]
		a.nv[i] = nvi
		// ADD approximate external degree.
		d := a.scratch[i] + degme - nvi
		if old := a.degree[i] + degme - nvi; old < d {
			d = old
		}
		if lim := nLeft - nvi; lim < d {
			d = lim
		}
		if d < 1 {
			d = 1 // degme > 0, so i still touches me
		}
		a.degree[i] = d
		a.dlistInsert(i, d)
	}
	a.nv[me] = nvpiv
	if degme > 0 {
		// Prune dead entries out of Lme so the element list only carries
		// live supervariables (keeps later scans and pivots linear).
		w := a.pe[me]
		for pm := pme1; pm < pme2; pm++ {
			i := a.iw[pm]
			if a.nv[i] > 0 {
				a.iw[w] = i
				w++
			}
		}
		a.ln[me] = w - a.pe[me]
		a.pfree = w
	} else {
		// Every member was mass-eliminated with the pivot: the element is
		// empty, so it dies immediately and its arena space is reclaimed.
		a.state[me] = amdDead
		a.pe[me] = amdEmpty
		a.ln[me] = 0
		a.w[me] = 0
		a.pfree = pme1
	}
}

// sameAdjacency reports whether live variables x and y have identical
// quotient-graph adjacency (same elements, same variables — both lists
// include me, so membership in the current pivot is part of the
// comparison). Lists are unsorted; the comparison marks x's entries with
// a w stamp and verifies y's against it.
func (a *amdState) sameAdjacency(x, y int32) bool {
	if a.ln[x] != a.ln[y] || a.elen[x] != a.elen[y] {
		return false
	}
	stamp := a.wflg
	a.wflg++
	px, py := a.pe[x], a.pe[y]
	n := a.ln[x]
	for k := int32(0); k < n; k++ {
		a.w[a.iw[px+k]] = stamp
	}
	// x must not appear in y's list nor vice versa (they are adjacent to
	// the same nodes, not to each other — indistinguishable columns are
	// connected through me, which both lists contain).
	for k := int32(0); k < n; k++ {
		v := a.iw[py+k]
		if v == x || a.w[v] != stamp {
			return false
		}
	}
	return true
}
