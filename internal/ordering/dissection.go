package ordering

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// NestedDissectionOptions tunes the dissection recursion.
type NestedDissectionOptions struct {
	// LeafSize stops the recursion: parts at most this large are ordered
	// with minimum degree. Default 64.
	LeafSize int
}

// NestedDissection computes a nested-dissection ordering: the graph is
// recursively bisected by level-set separators (BFS from a
// pseudo-peripheral vertex, cutting at the median level); parts are ordered
// first, separators last, and small parts fall back to minimum degree.
// It is the substitute for MeTiS in the paper's pipeline and produces the
// same wide, balanced assembly trees that make traversal order matter.
func NestedDissection(m *sparse.Matrix, opt NestedDissectionOptions) ([]int, error) {
	if !m.IsSymmetric() {
		return nil, fmt.Errorf("ordering: nested dissection needs a symmetric pattern")
	}
	if opt.LeafSize <= 0 {
		opt.LeafSize = 64
	}
	n := m.N()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	perm := make([]int, 0, n)
	var rec func(vertices []int)
	rec = func(vertices []int) {
		if len(vertices) == 0 {
			return
		}
		if len(vertices) <= opt.LeafSize {
			sub, back, err := inducedSubgraph(m, vertices)
			if err != nil {
				panic(err) // vertices come from valid recursion
			}
			sp, err := MinimumDegree(sub)
			if err != nil {
				panic(err)
			}
			for _, v := range sp {
				perm = append(perm, back[v])
			}
			return
		}
		parts, sep := bisect(m, vertices)
		if len(sep) == 0 || len(parts) < 2 {
			// Could not split (e.g. a clique): order directly.
			sub, back, err := inducedSubgraph(m, vertices)
			if err != nil {
				panic(err)
			}
			sp, err := MinimumDegree(sub)
			if err != nil {
				panic(err)
			}
			for _, v := range sp {
				perm = append(perm, back[v])
			}
			return
		}
		for _, part := range parts {
			rec(part)
		}
		perm = append(perm, sep...)
	}
	rec(all)
	if err := IsPermutation(perm, n); err != nil {
		return nil, fmt.Errorf("ordering: internal error: %w", err)
	}
	return perm, nil
}

// bisect splits the vertex set into connected parts and a separator using
// BFS level sets inside the induced subgraph.
func bisect(m *sparse.Matrix, vertices []int) (parts [][]int, sep []int) {
	n := m.N()
	inSet := make([]int32, n)
	for i := range inSet {
		inSet[i] = -1
	}
	for k, v := range vertices {
		inSet[v] = int32(k)
	}
	// BFS from a pseudo-peripheral vertex of the first component.
	level := make(map[int]int, len(vertices))
	root := subgraphPeripheral(m, vertices, inSet)
	queue := []int{root}
	level[root] = 0
	count := 1
	maxLevel := 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range m.Col(v) {
			wi := int(w)
			if wi == v || inSet[wi] < 0 {
				continue
			}
			if _, ok := level[wi]; !ok {
				level[wi] = level[v] + 1
				if level[wi] > maxLevel {
					maxLevel = level[wi]
				}
				queue = append(queue, wi)
				count++
			}
		}
	}
	if count < len(vertices) {
		// Disconnected: unreached vertices form their own part; recurse on
		// the reached component without a separator by treating the
		// unreached side as a part.
		var reached, unreached []int
		for _, v := range vertices {
			if _, ok := level[v]; ok {
				reached = append(reached, v)
			} else {
				unreached = append(unreached, v)
			}
		}
		return [][]int{reached, unreached}, nil
	}
	if maxLevel < 2 {
		return nil, nil // too shallow to split (dense blob)
	}
	// Cut at the median level by vertex count.
	target := count / 2
	acc := 0
	cut := 0
	byLevel := make([][]int, maxLevel+1)
	for _, v := range vertices {
		byLevel[level[v]] = append(byLevel[level[v]], v)
	}
	for l := 0; l <= maxLevel; l++ {
		acc += len(byLevel[l])
		if acc >= target {
			cut = l
			break
		}
	}
	if cut == 0 {
		cut = 1
	}
	if cut == maxLevel {
		cut = maxLevel - 1
	}
	var below, above []int
	for l := 0; l < cut; l++ {
		below = append(below, byLevel[l]...)
	}
	for l := cut + 1; l <= maxLevel; l++ {
		above = append(above, byLevel[l]...)
	}
	sep = append(sep, byLevel[cut]...)
	sort.Ints(sep)
	parts = [][]int{}
	if len(below) > 0 {
		parts = append(parts, below)
	}
	if len(above) > 0 {
		parts = append(parts, above)
	}
	return parts, sep
}

// subgraphPeripheral finds an approximately eccentric vertex of the induced
// subgraph component containing vertices[0].
func subgraphPeripheral(m *sparse.Matrix, vertices []int, inSet []int32) int {
	cur := vertices[0]
	curEcc := -1
	dist := make(map[int]int, len(vertices))
	for iter := 0; iter < 6; iter++ {
		for k := range dist {
			delete(dist, k)
		}
		queue := []int{cur}
		dist[cur] = 0
		far, ecc := cur, 0
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if dist[v] > ecc {
				far, ecc = v, dist[v]
			}
			for _, w := range m.Col(v) {
				wi := int(w)
				if wi == v || inSet[wi] < 0 {
					continue
				}
				if _, ok := dist[wi]; !ok {
					dist[wi] = dist[v] + 1
					queue = append(queue, wi)
				}
			}
		}
		if ecc <= curEcc {
			break
		}
		curEcc, cur = ecc, far
	}
	return cur
}

// inducedSubgraph extracts the pattern induced by vertices and the mapping
// back to original indices.
func inducedSubgraph(m *sparse.Matrix, vertices []int) (*sparse.Matrix, []int, error) {
	local := make(map[int]int, len(vertices))
	for k, v := range vertices {
		local[v] = k
	}
	cols := make([][]int, len(vertices))
	for k, v := range vertices {
		col := []int{k}
		for _, w := range m.Col(v) {
			if lw, ok := local[int(w)]; ok && lw != k {
				col = append(col, lw)
			}
		}
		cols[k] = col
	}
	sub, err := sparse.New(len(vertices), cols)
	if err != nil {
		return nil, nil, err
	}
	back := make([]int, len(vertices))
	copy(back, vertices)
	return sub, back, nil
}
