package minio

import (
	"testing"

	"repro/internal/tree"
)

// policyScenario builds a star workflow engineered so that, at the moment
// node X executes, the resident set S (ordered latest-consumer-first) is
// exactly `files` and the policy must free exactly `need` units.
//
//	root(f=0) ── children: C_k (f = files[k]), X (f = fx)
//	X ── child Y (f = fy)
//
// The traversal is root, X, Y, C_{len-1}, …, C_0, so S = files in order.
// Memory is chosen as Σfiles + fx + fy − need.
type policyScenario struct {
	files []int64
	need  int64
	fx    int64
	fy    int64
}

func (sc policyScenario) run(t *testing.T, pol Policy) int64 {
	t.Helper()
	var sum int64
	for _, f := range sc.files {
		sum += f
	}
	parent := []int{tree.NoParent}
	f := []int64{0}
	n := []int64{0}
	for _, size := range sc.files {
		parent = append(parent, 0)
		f = append(f, size)
		n = append(n, 0)
	}
	x := len(parent)
	parent = append(parent, 0)
	f = append(f, sc.fx)
	n = append(n, 0)
	y := len(parent)
	parent = append(parent, x)
	f = append(f, sc.fy)
	n = append(n, 0)
	tr, err := tree.New(parent, f, n)
	if err != nil {
		t.Fatal(err)
	}
	m := sum + sc.fx + sc.fy - sc.need
	if req := tr.MaxMemReq(); req > m {
		t.Fatalf("scenario infeasible: MaxMemReq %d > M %d", req, m)
	}
	order := []int{0, x, y}
	for k := len(sc.files); k >= 1; k-- {
		order = append(order, k)
	}
	sim, err := Simulate(tr, order, m, pol)
	if err != nil {
		t.Fatalf("%v: %v", pol, err)
	}
	// Cross-check against the Algorithm 2 checker.
	io, err := CheckOutOfCore(tr, order, sim.Tau(tr.Len()), m)
	if err != nil || io != sim.IO {
		t.Fatalf("%v: checker disagrees (io=%d err=%v)", pol, io, err)
	}
	return sim.IO
}

// S = [3, 7, 10], need 7: the fit policies find the exact file, the fill
// policies waste.
func TestPoliciesExactFitScenario(t *testing.T) {
	sc := policyScenario{files: []int64{3, 7, 10}, need: 7, fx: 2, fy: 11}
	want := map[Policy]int64{
		LSNF:             10, // 3 then 7
		FirstFit:         7,
		BestFit:          7,
		FirstFill:        10, // 3, stuck, LSNF tail evicts 7
		BestFill:         10,
		BestKCombination: 7,
	}
	for pol, w := range want {
		if got := sc.run(t, pol); got != w {
			t.Errorf("%v: IO = %d, want %d", pol, got, w)
		}
	}
}

// S = [8, 5, 4], need 4: only the "closest" policies pick the small file.
func TestPoliciesBestFitWinsScenario(t *testing.T) {
	sc := policyScenario{files: []int64{8, 5, 4}, need: 4, fx: 2, fy: 9}
	want := map[Policy]int64{
		LSNF:             8,
		FirstFit:         8, // first file ≥ 4 in S order
		BestFit:          4,
		FirstFill:        8, // nothing < 4: LSNF fallback
		BestFill:         8,
		BestKCombination: 4,
	}
	for pol, w := range want {
		if got := sc.run(t, pol); got != w {
			t.Errorf("%v: IO = %d, want %d", pol, got, w)
		}
	}
}

// S = [2, 6, 5], need 6: First Fill and Best Fill part ways.
func TestPoliciesFillScenario(t *testing.T) {
	sc := policyScenario{files: []int64{2, 6, 5}, need: 6, fx: 1, fy: 10}
	want := map[Policy]int64{
		LSNF:             8, // 2 then 6
		FirstFit:         6,
		BestFit:          6,
		FirstFill:        8, // 2, stuck, LSNF evicts 6
		BestFill:         7, // 5, stuck, LSNF evicts 2
		BestKCombination: 6,
	}
	for pol, w := range want {
		if got := sc.run(t, pol); got != w {
			t.Errorf("%v: IO = %d, want %d", pol, got, w)
		}
	}
}

// S = [5, 4, 7], need 9: only the subset policy finds the exact pair.
func TestPoliciesCombinationScenario(t *testing.T) {
	sc := policyScenario{files: []int64{5, 4, 7}, need: 9, fx: 2, fy: 12}
	want := map[Policy]int64{
		LSNF:             9,  // 5 + 4
		FirstFit:         9,  // nothing ≥ 9: LSNF fallback
		BestFit:          11, // 7 then 4
		FirstFill:        9,  // 5 then 4
		BestFill:         12, // 7, stuck (nothing < 2), LSNF evicts 5
		BestKCombination: 9,  // the exact pair {5, 4}
	}
	for pol, w := range want {
		if got := sc.run(t, pol); got != w {
			t.Errorf("%v: IO = %d, want %d", pol, got, w)
		}
	}
}

// Zero-size files are never evicted and never block the policies.
func TestPoliciesIgnoreZeroFiles(t *testing.T) {
	sc := policyScenario{files: []int64{0, 6, 0, 5}, need: 5, fx: 1, fy: 9}
	for _, pol := range Policies {
		got := sc.run(t, pol)
		if got < 5 {
			t.Errorf("%v: IO = %d below the requirement", pol, got)
		}
		if got > 11 {
			t.Errorf("%v: IO = %d exceeds both positive files", pol, got)
		}
	}
}

// The Best-K window: with more than K resident files the subset search
// only sees the first K, so a perfect fit beyond the window is missed.
func TestBestKWindowLimitsSearch(t *testing.T) {
	// Six distractor files of size 2 occupy the window; the exact fit 9 is
	// the 7th entry in S.
	files := []int64{2, 2, 2, 2, 2, 2, 9}
	sc := policyScenario{files: files, need: 9, fx: 1, fy: 20}
	got := sc.run(t, BestKCombination)
	// Window sees five 2s: best subset {2,2,2,2} (total 8 < 9, diff 1) vs
	// {2,2,2,2,2}=10 (diff 1, covers) → prefers the covering subset, IO 10.
	if got != 10 {
		t.Fatalf("BestK with window: IO = %d, want 10 (exact fit outside window)", got)
	}
}
