package minio

import (
	"container/heap"
	"fmt"
	"math/bits"

	"repro/internal/tree"
)

// BruteForceLimit bounds the tree size accepted by the exact solvers:
// states encode the frontier and the on-disk subset as bit masks.
const BruteForceLimit = 24

// ioState is a search state: the frontier (scheduled, unprocessed nodes)
// and which of their files currently live on disk.
type ioState struct {
	frontier uint64
	onDisk   uint64
}

type ioItem struct {
	st   ioState
	cost int64
}

type ioHeap []ioItem

func (h ioHeap) Len() int            { return len(h) }
func (h ioHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h ioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ioHeap) Push(x interface{}) { *h = append(*h, x.(ioItem)) }
func (h *ioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BruteForceMinIO solves MinIO exactly over all traversals and all I/O
// schedules by a Dijkstra search: writing a file costs its size, executing
// a ready node costs nothing and is allowed when memory suffices. It is the
// ground-truth oracle for the NP-hard problem on small trees; it returns an
// error when the tree is too large or when even full eviction cannot
// execute some node (m < MaxMemReq).
func BruteForceMinIO(t *tree.Tree, m int64) (int64, error) {
	p := t.Len()
	if p > BruteForceLimit {
		return 0, fmt.Errorf("minio: brute force limited to %d nodes, got %d", BruteForceLimit, p)
	}
	if req := t.MaxMemReq(); req > m {
		return 0, fmt.Errorf("minio: no schedule exists, MaxMemReq %d > M %d", req, m)
	}
	childMask := make([]uint64, p)
	childSum := make([]int64, p)
	for i := 0; i < p; i++ {
		for k := 0; k < t.NumChildren(i); k++ {
			c := t.Child(i, k)
			childMask[i] |= uint64(1) << uint(c)
			childSum[i] += t.F(c)
		}
	}
	residentSum := func(st ioState) int64 {
		var s int64
		rem := st.frontier &^ st.onDisk
		for rem != 0 {
			i := bits.TrailingZeros64(rem)
			rem &= rem - 1
			s += t.F(i)
		}
		return s
	}
	start := ioState{frontier: uint64(1) << uint(t.Root())}
	best := map[ioState]int64{start: 0}
	pq := &ioHeap{{start, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(ioItem)
		if it.cost > best[it.st] {
			continue
		}
		if it.st.frontier == 0 {
			return it.cost, nil
		}
		res := residentSum(it.st)
		relax := func(ns ioState, nc int64) {
			if old, ok := best[ns]; !ok || nc < old {
				best[ns] = nc
				heap.Push(pq, ioItem{ns, nc})
			}
		}
		// Transition 1: write a resident file to disk.
		rem := it.st.frontier &^ it.st.onDisk
		for rem != 0 {
			i := bits.TrailingZeros64(rem)
			rem &= rem - 1
			if t.F(i) == 0 {
				continue // free to write but also useless
			}
			ns := it.st
			ns.onDisk |= uint64(1) << uint(i)
			relax(ns, it.cost+t.F(i))
		}
		// Transition 2: execute a frontier node (reading its file back
		// first if needed). Memory during execution: the other resident
		// files plus MemReq(i).
		rem = it.st.frontier
		for rem != 0 {
			i := bits.TrailingZeros64(rem)
			rem &= rem - 1
			bit := uint64(1) << uint(i)
			others := res
			if it.st.onDisk&bit == 0 {
				others -= t.F(i)
			}
			if others+t.MemReq(i) > m {
				continue
			}
			ns := ioState{
				frontier: it.st.frontier&^bit | childMask[i],
				onDisk:   it.st.onDisk &^ bit,
			}
			relax(ns, it.cost)
		}
	}
	return 0, fmt.Errorf("minio: exhausted search without completing (unreachable)")
}

// BruteForceMinIOFixedOrder solves problem (i) of Theorem 2 exactly: given
// a fixed traversal, find the minimum I/O volume over all write schedules.
// The search is over (step, on-disk subset) states.
func BruteForceMinIOFixedOrder(t *tree.Tree, order []int, m int64) (int64, error) {
	p := t.Len()
	if p > BruteForceLimit {
		return 0, fmt.Errorf("minio: brute force limited to %d nodes, got %d", BruteForceLimit, p)
	}
	if err := t.IsTopDownOrder(order); err != nil {
		return 0, err
	}
	if req := t.MaxMemReq(); req > m {
		return 0, fmt.Errorf("minio: no schedule exists, MaxMemReq %d > M %d", req, m)
	}
	childMask := make([]uint64, p)
	for i := 0; i < p; i++ {
		for k := 0; k < t.NumChildren(i); k++ {
			childMask[i] |= uint64(1) << uint(t.Child(i, k))
		}
	}
	// frontierAt[s]: frontier before executing order[s].
	frontierAt := make([]uint64, p+1)
	frontierAt[0] = uint64(1) << uint(t.Root())
	for s, v := range order {
		frontierAt[s+1] = frontierAt[s]&^(uint64(1)<<uint(v)) | childMask[v]
	}
	sumMask := func(mask uint64) int64 {
		var s int64
		for mask != 0 {
			i := bits.TrailingZeros64(mask)
			mask &= mask - 1
			s += t.F(i)
		}
		return s
	}
	start := fixedState{0, 0}
	best := map[fixedState]int64{start: 0}
	var pq fixedHeap
	heap.Push(&pq, fixedItem{start, 0})
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(fixedItem)
		if it.cost > best[it.st] {
			continue
		}
		if it.st.step == p {
			return it.cost, nil
		}
		j := order[it.st.step]
		bit := uint64(1) << uint(j)
		resident := frontierAt[it.st.step] &^ it.st.onDisk
		res := sumMask(resident)
		relax := func(ns fixedState, nc int64) {
			if old, ok := best[ns]; !ok || nc < old {
				best[ns] = nc
				heap.Push(&pq, fixedItem{ns, nc})
			}
		}
		// Write any resident file.
		rem := resident
		for rem != 0 {
			i := bits.TrailingZeros64(rem)
			rem &= rem - 1
			if t.F(i) == 0 {
				continue
			}
			ns := it.st
			ns.onDisk |= uint64(1) << uint(i)
			relax(ns, it.cost+t.F(i))
		}
		// Execute order[step].
		others := res
		if it.st.onDisk&bit == 0 {
			others -= t.F(j)
		}
		if others+t.MemReq(j) <= m {
			relax(fixedState{it.st.step + 1, it.st.onDisk &^ bit}, it.cost)
		}
	}
	return 0, fmt.Errorf("minio: fixed-order search exhausted (unreachable for M ≥ MaxMemReq)")
}

// fixedState is a (step, on-disk subset) state of the fixed-order search.
type fixedState struct {
	step   int
	onDisk uint64
}

type fixedItem struct {
	st   fixedState
	cost int64
}

type fixedHeap []fixedItem

func (h fixedHeap) Len() int            { return len(h) }
func (h fixedHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h fixedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fixedHeap) Push(x interface{}) { *h = append(*h, x.(fixedItem)) }
func (h *fixedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
