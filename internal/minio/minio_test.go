package minio

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schedule"
	"repro/internal/traversal"
	"repro/internal/tree"
)

func randomTree(seed int64, nodes int, kind tree.AttachKind) *tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tree.RandomOptions{Nodes: nodes, MaxF: 12, MaxN: 4, Attach: kind})
	if err != nil {
		panic(err)
	}
	return tr
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		LSNF: "LSNF", FirstFit: "First Fit", BestFit: "Best Fit",
		FirstFill: "First Fill", BestFill: "Best Fill", BestKCombination: "Best K Comb.",
	}
	for p, w := range want {
		if p.String() != w {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), w)
		}
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy has empty name")
	}
	if len(Policies) != 6 {
		t.Fatalf("Policies has %d entries, want 6", len(Policies))
	}
}

// With memory equal to the in-core optimum, no policy performs any I/O.
func TestNoIOAtOptimalMemory(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		tr := randomTree(seed, 4+int(seed%20), tree.AttachKind(seed%3))
		res := traversal.MinMem(tr)
		for _, pol := range Policies {
			sim, err := Simulate(tr, res.Order, res.Memory, pol)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, pol, err)
			}
			if sim.IO != 0 {
				t.Fatalf("seed %d %v: IO=%d at optimal memory", seed, pol, sim.IO)
			}
		}
	}
}

// Every simulated schedule must pass the Algorithm 2 checker with the same
// I/O volume.
func TestSimulateAgainstChecker(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		tr := randomTree(seed, 5+int(seed%16), tree.AttachKind(seed%3))
		order := traversal.BestPostOrder(tr).Order
		maxReq := tr.MaxMemReq()
		opt := traversal.MinMem(tr).Memory
		for _, m := range []int64{maxReq, (maxReq + opt) / 2} {
			for _, pol := range Policies {
				sim, err := Simulate(tr, order, m, pol)
				if err != nil {
					t.Fatalf("seed %d %v M=%d: %v", seed, pol, m, err)
				}
				io, err := CheckOutOfCore(tr, order, sim.Tau(tr.Len()), m)
				if err != nil {
					t.Fatalf("seed %d %v M=%d: checker rejected: %v", seed, pol, m, err)
				}
				if io != sim.IO {
					t.Fatalf("seed %d %v M=%d: checker IO %d != simulated %d", seed, pol, m, io, sim.IO)
				}
			}
		}
	}
}

// Heuristic I/O is sandwiched between the divisible lower bound (same
// traversal) and the trivial upper bound Σ f.
func TestHeuristicsBounded(t *testing.T) {
	for seed := int64(50); seed < 80; seed++ {
		tr := randomTree(seed, 6+int(seed%14), tree.AttachKind(seed%3))
		order := traversal.MinMem(tr).Order
		m := tr.MaxMemReq()
		lb, err := LowerBoundDivisible(tr, order, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range Policies {
			sim, err := Simulate(tr, order, m, pol)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, pol, err)
			}
			if sim.IO < lb {
				t.Fatalf("seed %d %v: IO %d below divisible bound %d", seed, pol, sim.IO, lb)
			}
			if sim.IO > tr.TotalF() {
				t.Fatalf("seed %d %v: IO %d above total file volume %d", seed, pol, sim.IO, tr.TotalF())
			}
		}
	}
}

// The exact fixed-order solver is at most the heuristics and at least the
// divisible bound; the free-order solver is at most the fixed-order one.
func TestBruteForceOrdering(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		tr := randomTree(seed, 4+int(seed%7), tree.AttachKind(seed%3))
		order := traversal.BestPostOrder(tr).Order
		m := tr.MaxMemReq()
		exactFixed, err := BruteForceMinIOFixedOrder(tr, order, m)
		if err != nil {
			t.Fatal(err)
		}
		exactFree, err := BruteForceMinIO(tr, m)
		if err != nil {
			t.Fatal(err)
		}
		if exactFree > exactFixed {
			t.Fatalf("seed %d: free-order optimum %d worse than fixed-order %d", seed, exactFree, exactFixed)
		}
		lb, err := LowerBoundDivisible(tr, order, m)
		if err != nil {
			t.Fatal(err)
		}
		if exactFixed < lb {
			t.Fatalf("seed %d: exact %d below divisible bound %d", seed, exactFixed, lb)
		}
		for _, pol := range Policies {
			sim, err := Simulate(tr, order, m, pol)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, pol, err)
			}
			if sim.IO < exactFixed {
				t.Fatalf("seed %d %v: heuristic IO %d beats exact fixed-order %d", seed, pol, sim.IO, exactFixed)
			}
		}
	}
}

// Theorem 2: the reduction instance has MinIO ≤ S/2 iff 2-Partition is
// solvable. Verified with the exact solver on random small instances.
func TestTheorem2Reduction(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := 0
	yes, no := 0, 0
	for cases < 40 {
		n := 2 + rng.Intn(4)
		a := make([]int64, n)
		var sum int64
		for i := range a {
			a[i] = 1 + rng.Int63n(9)
			sum += a[i]
		}
		if sum%2 != 0 {
			continue
		}
		cases++
		inst, err := tree.NewTwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		io, err := BruteForceMinIO(inst.Tree, inst.Memory)
		if err != nil {
			t.Fatal(err)
		}
		solvable := SolveTwoPartition(a)
		if solvable {
			yes++
			if io > inst.IOBound {
				t.Fatalf("a=%v solvable but MinIO=%d > bound %d", a, io, inst.IOBound)
			}
		} else {
			no++
			if io <= inst.IOBound {
				t.Fatalf("a=%v unsolvable but MinIO=%d ≤ bound %d", a, io, inst.IOBound)
			}
		}
	}
	if yes == 0 || no == 0 {
		t.Fatalf("degenerate test distribution: yes=%d no=%d", yes, no)
	}
}

// On the reduction gadget, executing T_big right after the root with exactly
// the right eviction set achieves IO = S/2 when a partition exists.
func TestTheorem2WitnessSchedule(t *testing.T) {
	a := []int64{3, 1, 4, 2, 6} // sum 16, half 8 = 6+2 = 4+3+1
	if !SolveTwoPartition(a) {
		t.Fatal("test instance should be solvable")
	}
	inst, err := tree.NewTwoPartition(a)
	if err != nil {
		t.Fatal(err)
	}
	io, err := BruteForceMinIO(inst.Tree, inst.Memory)
	if err != nil {
		t.Fatal(err)
	}
	if io != inst.IOBound {
		t.Fatalf("optimal IO = %d, want exactly %d", io, inst.IOBound)
	}
}

func TestSolveTwoPartition(t *testing.T) {
	cases := []struct {
		a    []int64
		want bool
	}{
		{[]int64{1, 1}, true},
		{[]int64{3, 1}, false},
		{[]int64{1, 2, 3}, true},
		{[]int64{2, 2, 3}, false}, // odd sum
		{[]int64{5, 5, 4, 3, 2, 1}, true},
		{[]int64{8, 1, 1}, false},
		{[]int64{0, 2}, false}, // non-positive rejected
	}
	for _, c := range cases {
		if got := SolveTwoPartition(c.a); got != c.want {
			t.Fatalf("SolveTwoPartition(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestCheckOutOfCoreRejects(t *testing.T) {
	tr := randomTree(3, 8, tree.AttachUniform)
	order := traversal.BestPostOrder(tr).Order
	m := tr.MaxMemReq()
	tau := make([]int, tr.Len())
	for i := range tau {
		tau[i] = -1
	}
	// Writing a file before it is produced must fail.
	var leaf int
	for i := 0; i < tr.Len(); i++ {
		if tr.IsLeaf(i) && i != tr.Root() {
			leaf = i
			break
		}
	}
	tau[leaf] = 0 // parent cannot have executed before step 0 unless it is the root
	if tr.Parent(leaf) != tr.Root() {
		if _, err := CheckOutOfCore(tr, order, tau, m); err == nil {
			t.Fatal("premature write accepted")
		}
	}
	// Writing after consumption must fail.
	tau[leaf] = tr.Len() - 1
	sigma := make([]int, tr.Len())
	for s, v := range order {
		sigma[v] = s
	}
	if sigma[leaf] < tr.Len()-1 {
		if _, err := CheckOutOfCore(tr, order, tau, m); err == nil {
			t.Fatal("write after consumption accepted")
		}
	}
	// Bad tau length.
	if _, err := CheckOutOfCore(tr, order, []int{-1}, m); err == nil {
		t.Fatal("short tau accepted")
	}
	// Bad order.
	if _, err := CheckOutOfCore(tr, order[1:], make([]int, tr.Len()), m); err == nil {
		t.Fatal("short order accepted")
	}
	// Memory too small with no writes scheduled must fail.
	for i := range tau {
		tau[i] = -1
	}
	opt := traversal.MinMem(tr).Memory
	if opt > m {
		if _, err := CheckOutOfCore(tr, order, tau, m); err == nil {
			t.Fatal("overflowing schedule accepted")
		}
	}
}

func TestSimulateRejects(t *testing.T) {
	tr := randomTree(5, 10, tree.AttachPreferential)
	order := traversal.MinMem(tr).Order
	// Invalid order.
	if _, err := Simulate(tr, order[1:], tr.MaxMemReq(), LSNF); err == nil {
		t.Fatal("short order accepted")
	}
	// Memory below MaxMemReq is infeasible for any policy.
	for _, pol := range Policies {
		if _, err := Simulate(tr, order, tr.MaxMemReq()-1, pol); err == nil {
			t.Fatalf("%v accepted M below MaxMemReq", pol)
		}
	}
	// Unknown policy.
	if _, err := Simulate(tr, order, tr.TotalF()*2, Policy(42)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestBruteForceLimits(t *testing.T) {
	tr := randomTree(9, BruteForceLimit+1, tree.AttachUniform)
	if _, err := BruteForceMinIO(tr, tr.TotalF()); err == nil {
		t.Fatal("oversized tree accepted")
	}
	if _, err := BruteForceMinIOFixedOrder(tr, tr.TopDown(), tr.TotalF()); err == nil {
		t.Fatal("oversized tree accepted (fixed order)")
	}
	small := randomTree(9, 6, tree.AttachUniform)
	if _, err := BruteForceMinIO(small, small.MaxMemReq()-1); err == nil {
		t.Fatal("infeasible memory accepted")
	}
	if _, err := BruteForceMinIOFixedOrder(small, small.TopDown(), small.MaxMemReq()-1); err == nil {
		t.Fatal("infeasible memory accepted (fixed order)")
	}
	if _, err := BruteForceMinIOFixedOrder(small, small.TopDown()[1:], small.TotalF()); err == nil {
		t.Fatal("bad order accepted (fixed order)")
	}
}

// Property: on unit-size files MinIO is "polynomial" in the sense that the
// divisible bound matches the exact fixed-order optimum (files cannot be
// split any further).
func TestQuickUnitFilesDivisibleTight(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(31))}
	prop := func(seed int64, p uint8) bool {
		nodes := 3 + int(p%8)
		rng := rand.New(rand.NewSource(seed))
		tr, err := tree.Random(rng, tree.RandomOptions{Nodes: nodes, MaxF: 1, MaxN: 0})
		if err != nil {
			return false
		}
		order := traversal.BestPostOrder(tr).Order
		m := tr.MaxMemReq()
		lb, err1 := LowerBoundDivisible(tr, order, m)
		ex, err2 := BruteForceMinIOFixedOrder(tr, order, m)
		return err1 == nil && err2 == nil && lb == ex
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: more memory never increases the exact MinIO volume, and the
// simulated LSNF volume equals the divisible bound when all files have the
// same size.
func TestQuickMonotoneInMemory(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(37))}
	prop := func(seed int64, p uint8) bool {
		nodes := 3 + int(p%7)
		tr := randomTree(seed, nodes, tree.AttachUniform)
		m0 := tr.MaxMemReq()
		io0, err0 := BruteForceMinIO(tr, m0)
		io1, err1 := BruteForceMinIO(tr, m0+5)
		return err0 == nil && err1 == nil && io1 <= io0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Tau round-trips write events.
func TestTauRoundTrip(t *testing.T) {
	tr := randomTree(11, 12, tree.AttachChainy)
	order := traversal.BestPostOrder(tr).Order
	sim, err := Simulate(tr, order, tr.MaxMemReq(), LSNF)
	if err != nil {
		t.Fatal(err)
	}
	tau := sim.Tau(tr.Len())
	cnt := 0
	for _, ti := range tau {
		if ti >= 0 {
			cnt++
		}
	}
	if cnt != len(sim.Writes) {
		t.Fatalf("tau has %d writes, events %d", cnt, len(sim.Writes))
	}
}

// SimulateWithWindow takes the window literally: an explicit 0 (or any
// out-of-range value) is rejected with the schedule package's typed
// error rather than silently mapped to the default, and the window is
// ignored for the non-subset policies.
func TestSimulateWithWindowValidation(t *testing.T) {
	tr, err := tree.Harpoon(3, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	order := tr.TopDown()
	m := tr.MaxMemReq()
	for _, window := range []int{0, -2, schedule.MaxBestKWindow + 1} {
		_, err := SimulateWithWindow(tr, order, m, BestKCombination, window)
		var wre *schedule.WindowRangeError
		if !errors.As(err, &wre) || wre.Window != window {
			t.Fatalf("window %d: error %v, want *schedule.WindowRangeError", window, err)
		}
	}
	// Non-subset policies ignore the window entirely.
	if _, err := SimulateWithWindow(tr, order, m, LSNF, 0); err != nil {
		t.Fatalf("LSNF with window 0: %v", err)
	}
}
