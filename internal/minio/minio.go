// Package minio implements the MinIO side of the paper: out-of-core
// traversals (Section V). Given a fixed main memory M smaller than what an
// in-core traversal needs, files must temporarily be written to secondary
// memory; the I/O volume is the total size of files written (each written
// file is read back exactly once, so reads mirror writes).
//
// MinIO is NP-hard — Theorem 2 proves it via a reduction from 2-Partition,
// reproduced here by tree.NewTwoPartition and verified in the tests against
// the exact solver — so the package provides the paper's six greedy
// eviction heuristics (Section V-B) plus exact brute-force oracles for
// small instances and a divisible-case lower bound.
package minio

import (
	"fmt"
	"sort"

	"repro/internal/tree"
)

// Policy selects the greedy eviction heuristic of Section V-B. All policies
// examine the set S of produced, still-resident files ordered by the time
// their consumer is scheduled, latest first.
type Policy int

const (
	// LSNF (Last Scheduled Node First) evicts files in S order until enough
	// space is freed. Optimal for the divisible relaxation of MinIO.
	LSNF Policy = iota
	// FirstFit evicts the first file in S at least as large as the
	// requirement; if none exists it falls back to LSNF.
	FirstFit
	// BestFit repeatedly evicts the file whose size is closest to the
	// remaining requirement (above or below).
	BestFit
	// FirstFill repeatedly evicts the first file in S smaller than the
	// remaining requirement; if none exists it falls back to LSNF.
	FirstFill
	// BestFill repeatedly evicts the largest file strictly smaller than the
	// remaining requirement; if none exists it falls back to LSNF.
	BestFill
	// BestKCombination considers the first K files of S (K = 5, as in the
	// paper) and evicts the non-empty subset whose total size is closest to
	// the remaining requirement, repeating until enough space is freed.
	BestKCombination
)

// BestKWindow is the K of BestKCombination.
const BestKWindow = 5

// Policies lists all heuristics in display order.
var Policies = []Policy{LSNF, FirstFit, BestFit, FirstFill, BestFill, BestKCombination}

// String returns the paper's name for the policy.
func (p Policy) String() string {
	switch p {
	case LSNF:
		return "LSNF"
	case FirstFit:
		return "First Fit"
	case BestFit:
		return "Best Fit"
	case FirstFill:
		return "First Fill"
	case BestFill:
		return "Best Fill"
	case BestKCombination:
		return "Best K Comb."
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// WriteEvent records one eviction: before executing order[Step], the input
// file of Node (size Size) was written to secondary memory.
type WriteEvent struct {
	Step int
	Node int
	Size int64
}

// Result is the outcome of an out-of-core simulation.
type Result struct {
	// IO is the total volume written to secondary memory (= volume read
	// back), the objective of MinIO.
	IO int64
	// Writes lists the evictions in execution order; Tau() converts them to
	// the τ function of Definition 3.
	Writes []WriteEvent
}

// Tau converts the write schedule into the τ function of Definition 3:
// tau[i] is the step before which file i is written, or -1 (∞) if file i is
// never written. p is the number of nodes.
func (r Result) Tau(p int) []int {
	tau := make([]int, p)
	for i := range tau {
		tau[i] = -1
	}
	for _, w := range r.Writes {
		tau[w.Node] = w.Step
	}
	return tau
}

// Simulate replays the top-down traversal `order` of t with main memory m,
// invoking the eviction policy whenever the next node does not fit. It
// returns the resulting I/O volume and write schedule.
//
// Simulation follows Section V-B: when node j is next, its input file is
// first staged back if it was evicted, and the policy must free
// IOReq(j) = (MemReq(j) − f_j) − M_avail units by writing resident files.
// Zero-size files are never evicted (they free nothing and cost nothing).
//
// Simulate fails if order is not a valid top-down traversal or if m is too
// small even with maximal eviction (m < MaxMemReq).
func Simulate(t *tree.Tree, order []int, m int64, pol Policy) (Result, error) {
	return SimulateWithWindow(t, order, m, pol, BestKWindow)
}

// SimulateWithWindow is Simulate with an explicit Best-K subset window
// (only meaningful for BestKCombination; the paper fixes K = 5). The
// ablation benchmarks sweep the window to show the quality/cost trade-off.
func SimulateWithWindow(t *tree.Tree, order []int, m int64, pol Policy, window int) (Result, error) {
	if pol < LSNF || pol > BestKCombination {
		return Result{}, fmt.Errorf("minio: unknown eviction policy %d", int(pol))
	}
	if window < 1 || window > 20 {
		return Result{}, fmt.Errorf("minio: Best-K window %d out of range [1,20]", window)
	}
	if err := t.IsTopDownOrder(order); err != nil {
		return Result{}, err
	}
	p := t.Len()
	pos := make([]int, p) // consumer step of each node's input file
	for step, v := range order {
		pos[v] = step
	}
	// resident holds produced, unconsumed, in-memory files sorted by
	// consumer step descending (S of Section V-B: latest consumer first).
	resident := newFileSet(pos)
	resident.add(t.Root())
	residentSum := t.F(t.Root())
	onDisk := make([]bool, p)
	var res Result
	for step, j := range order {
		if !onDisk[j] {
			// The input file of j is resident; it is about to be consumed,
			// so it is not an eviction candidate.
			resident.remove(j)
			residentSum -= t.F(j)
		}
		// Memory while executing j: the other resident files plus
		// MemReq(j) = f(j) + n(j) + Σ children files (the input is staged
		// back first when it was evicted, which needs the same room).
		ioReq := residentSum + t.MemReq(j) - m
		if ioReq > 0 {
			victims, err := selectVictims(t, resident, ioReq, pol, window)
			if err != nil {
				return Result{}, fmt.Errorf("minio: step %d (node %d): %w", step, j, err)
			}
			for _, v := range victims {
				resident.remove(v)
				residentSum -= t.F(v)
				onDisk[v] = true
				res.IO += t.F(v)
				res.Writes = append(res.Writes, WriteEvent{Step: step, Node: v, Size: t.F(v)})
			}
		}
		if onDisk[j] {
			onDisk[j] = false // read back, then consumed by executing j
		}
		// Execute j: n(j) and f(j) vanish, children files appear.
		residentSum += t.ChildFileSum(j)
		for k := 0; k < t.NumChildren(j); k++ {
			resident.add(t.Child(j, k))
		}
		if residentSum > m {
			return Result{}, fmt.Errorf("minio: internal accounting error at step %d", step)
		}
	}
	return res, nil
}

// fileSet maintains resident files ordered by consumer step descending.
type fileSet struct {
	pos   []int // consumer step per node
	nodes []int // sorted: pos[nodes[0]] > pos[nodes[1]] > …
}

func newFileSet(pos []int) *fileSet { return &fileSet{pos: pos} }

func (s *fileSet) add(node int) {
	i := sort.Search(len(s.nodes), func(k int) bool { return s.pos[s.nodes[k]] < s.pos[node] })
	s.nodes = append(s.nodes, 0)
	copy(s.nodes[i+1:], s.nodes[i:])
	s.nodes[i] = node
}

func (s *fileSet) remove(node int) {
	i := sort.Search(len(s.nodes), func(k int) bool { return s.pos[s.nodes[k]] <= s.pos[node] })
	if i == len(s.nodes) || s.nodes[i] != node {
		panic("minio: removing absent file")
	}
	s.nodes = append(s.nodes[:i], s.nodes[i+1:]...)
}

// ordered returns the current S (latest consumer first). The returned slice
// is owned by the fileSet; do not mutate.
func (s *fileSet) ordered() []int { return s.nodes }
