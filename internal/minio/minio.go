// Package minio implements the MinIO side of the paper: out-of-core
// traversals (Section V). Given a fixed main memory M smaller than what an
// in-core traversal needs, files must temporarily be written to secondary
// memory; the I/O volume is the total size of files written (each written
// file is read back exactly once, so reads mirror writes).
//
// MinIO is NP-hard — Theorem 2 proves it via a reduction from 2-Partition,
// reproduced here by tree.NewTwoPartition and verified in the tests against
// the exact solver — so the package provides the paper's six greedy
// eviction heuristics (Section V-B) plus exact brute-force oracles for
// small instances and a divisible-case lower bound.
//
// The eviction simulation itself lives in the schedule package — the single
// traversal simulator shared with the in-core side — and the six policies
// are schedule Evictors; this package keeps the Policy enum as the paper's
// nomenclature, the exact oracles, and the Algorithm 2 checker.
package minio

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// Policy selects the greedy eviction heuristic of Section V-B. All policies
// examine the set S of produced, still-resident files ordered by the time
// their consumer is scheduled, latest first.
type Policy int

const (
	// LSNF (Last Scheduled Node First) evicts files in S order until enough
	// space is freed. Optimal for the divisible relaxation of MinIO.
	LSNF Policy = iota
	// FirstFit evicts the first file in S at least as large as the
	// requirement; if none exists it falls back to LSNF.
	FirstFit
	// BestFit repeatedly evicts the file whose size is closest to the
	// remaining requirement (above or below).
	BestFit
	// FirstFill repeatedly evicts the first file in S smaller than the
	// remaining requirement; if none exists it falls back to LSNF.
	FirstFill
	// BestFill repeatedly evicts the largest file strictly smaller than the
	// remaining requirement; if none exists it falls back to LSNF.
	BestFill
	// BestKCombination considers the first K files of S (K = 5, as in the
	// paper) and evicts the non-empty subset whose total size is closest to
	// the remaining requirement, repeating until enough space is freed.
	BestKCombination
)

// BestKWindow is the K of BestKCombination.
const BestKWindow = schedule.BestKWindow

// Policies lists all heuristics in display order.
var Policies = []Policy{LSNF, FirstFit, BestFit, FirstFill, BestFill, BestKCombination}

// policyKeys maps each Policy to its schedule-registry name.
var policyKeys = [...]string{
	LSNF:             "lsnf",
	FirstFit:         "first-fit",
	BestFit:          "best-fit",
	FirstFill:        "first-fill",
	BestFill:         "best-fill",
	BestKCombination: "best-k",
}

// RegistryName returns the schedule-registry name of the policy ("first-fit"
// for FirstFit), or "" for an unknown policy.
func (p Policy) RegistryName() string {
	if p < LSNF || p > BestKCombination {
		return ""
	}
	return policyKeys[p]
}

// String returns the paper's name for the policy.
func (p Policy) String() string {
	if p < LSNF || p > BestKCombination {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return schedule.DisplayName(policyKeys[p])
}

// WriteEvent records one eviction: before executing order[Step], the input
// file of Node (size Size) was written to secondary memory. It is the
// schedule package's event type.
type WriteEvent = schedule.WriteEvent

// Result is the outcome of an out-of-core simulation.
type Result struct {
	// IO is the total volume written to secondary memory (= volume read
	// back), the objective of MinIO.
	IO int64
	// Writes lists the evictions in execution order; Tau() converts them to
	// the τ function of Definition 3.
	Writes []WriteEvent
}

// Tau converts the write schedule into the τ function of Definition 3:
// tau[i] is the step before which file i is written, or -1 (∞) if file i is
// never written. p is the number of nodes.
func (r Result) Tau(p int) []int {
	tau := make([]int, p)
	for i := range tau {
		tau[i] = -1
	}
	for _, w := range r.Writes {
		tau[w.Node] = w.Step
	}
	return tau
}

// Simulate replays the top-down traversal `order` of t with main memory m,
// invoking the eviction policy whenever the next node does not fit. It
// returns the resulting I/O volume and write schedule.
//
// Simulation follows Section V-B: when node j is next, its input file is
// first staged back if it was evicted, and the policy must free
// IOReq(j) = (MemReq(j) − f_j) − M_avail units by writing resident files.
// Zero-size files are never evicted (they free nothing and cost nothing).
//
// Simulate fails if order is not a valid top-down traversal or if m is too
// small even with maximal eviction (m < MaxMemReq).
func Simulate(t *tree.Tree, order []int, m int64, pol Policy) (Result, error) {
	return SimulateWithWindow(t, order, m, pol, BestKWindow)
}

// SimulateWithWindow is Simulate with an explicit Best-K subset window
// (ignored by every policy but BestKCombination; the paper fixes K = 5).
// The ablation benchmarks sweep the window to show the quality/cost
// trade-off. The replay itself is schedule.Simulate, the unified traversal
// simulator; window validation lives in the schedule.BestK constructor,
// which rejects values outside [1, schedule.MaxBestKWindow] — including
// an explicit 0, which EvictorByName would otherwise map to the default —
// with a typed *schedule.WindowRangeError.
func SimulateWithWindow(t *tree.Tree, order []int, m int64, pol Policy, window int) (Result, error) {
	if pol < LSNF || pol > BestKCombination {
		return Result{}, fmt.Errorf("minio: unknown eviction policy %d", int(pol))
	}
	var ev schedule.Evictor
	var err error
	if pol == BestKCombination {
		ev, err = schedule.BestK(window)
	} else {
		ev, err = schedule.EvictorByName(policyKeys[pol], 0)
	}
	if err != nil {
		return Result{}, err
	}
	sim, err := schedule.Simulate(t, order, schedule.Config{Memory: m, Evict: ev})
	if err != nil {
		return Result{}, err
	}
	return Result{IO: sim.IO, Writes: sim.Writes}, nil
}
