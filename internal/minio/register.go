package minio

import (
	"repro/internal/schedule"
)

// The exact MinIO oracles and the divisible lower bound register themselves
// with the schedule engine next to the six greedy policies (which the
// schedule package registers itself), so every solver of the paper is
// reachable by name.
func init() {
	schedule.RegisterMinIO("minio-brute", "BruteForceMinIO", func(req schedule.Request) (schedule.Outcome, error) {
		io, err := BruteForceMinIO(req.Tree, req.Memory)
		if err != nil {
			return schedule.Outcome{}, err
		}
		return schedule.Outcome{IO: io}, nil // free order: no fixed traversal replayed
	})
	schedule.RegisterMinIO("minio-brute-fixed", "BruteForceMinIOFixedOrder", func(req schedule.Request) (schedule.Outcome, error) {
		io, err := BruteForceMinIOFixedOrder(req.Tree, req.Order, req.Memory)
		if err != nil {
			return schedule.Outcome{}, err
		}
		return schedule.Outcome{IO: io, Order: req.Order}, nil
	})
	schedule.RegisterMinIO("divisible-bound", "DivisibleLowerBound", func(req schedule.Request) (schedule.Outcome, error) {
		io, err := LowerBoundDivisible(req.Tree, req.Order, req.Memory)
		if err != nil {
			return schedule.Outcome{}, err
		}
		return schedule.Outcome{IO: io, Order: req.Order}, nil
	})
}
