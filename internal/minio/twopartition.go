package minio

// SolveTwoPartition decides whether the positive integers a can be split
// into two halves of equal sum, using a subset-sum bitset sweep. It is the
// independent oracle against which the Theorem 2 reduction is verified.
func SolveTwoPartition(a []int64) bool {
	var sum int64
	for _, v := range a {
		if v <= 0 {
			return false
		}
		sum += v
	}
	if sum%2 != 0 {
		return false
	}
	target := sum / 2
	// reachable[s] after processing a prefix: some subset sums to s.
	reachable := make([]bool, target+1)
	reachable[0] = true
	for _, v := range a {
		if v > target {
			continue
		}
		for s := target; s >= v; s-- {
			if reachable[s-v] {
				reachable[s] = true
			}
		}
	}
	return reachable[target]
}
