package minio

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// CheckOutOfCore is Algorithm 2 of the paper: it validates an out-of-core
// traversal given by the execution order σ and the I/O schedule τ, and
// returns the I/O volume.
//
// tau[i] is the step (0-based index into order) before which the input file
// of node i is written to secondary memory, or -1 for ∞ (never written).
// Following Definition 3, a valid schedule satisfies, for every non-root i,
// σ(parent(i)) < τ(i) < σ(i) when τ(i) ≠ ∞, and memory never overflows.
// (The pseudocode of Algorithm 2 tests "σ(i) ≥ step"; per Equations (5)–(6)
// that is a typo for the consumption-order test implemented here.)
func CheckOutOfCore(t *tree.Tree, order []int, tau []int, m int64) (int64, error) {
	if err := t.IsTopDownOrder(order); err != nil {
		return 0, err
	}
	p := t.Len()
	if len(tau) != p {
		return 0, fmt.Errorf("minio: tau has %d entries, want %d", len(tau), p)
	}
	sigma := make([]int, p)
	for step, v := range order {
		sigma[v] = step
	}
	// Writes grouped by step.
	writesAt := make([][]int, p+1)
	for i, ti := range tau {
		if ti < 0 {
			continue
		}
		if ti > p {
			return 0, fmt.Errorf("minio: tau[%d]=%d out of range", i, ti)
		}
		if i == t.Root() {
			// The root's input arrives from the outside world; writing it
			// out before step 0 is possible but useless. Validate bounds
			// like any other file.
			if ti >= sigma[i] {
				return 0, fmt.Errorf("minio: root file written at %d but consumed at %d", ti, sigma[i])
			}
		} else {
			if sigma[t.Parent(i)] >= ti {
				return 0, fmt.Errorf("minio: file %d written at step %d before being produced at %d", i, ti, sigma[t.Parent(i)])
			}
			if ti >= sigma[i] {
				return 0, fmt.Errorf("minio: file %d written at step %d but consumed at %d", i, ti, sigma[i])
			}
		}
		writesAt[ti] = append(writesAt[ti], i)
	}
	// Simulate.
	written := make([]bool, p)
	mavail := m - t.F(t.Root())
	var io int64
	for step, j := range order {
		for _, w := range writesAt[step] {
			if written[w] {
				return 0, fmt.Errorf("minio: file %d written twice", w)
			}
			written[w] = true
			mavail += t.F(w)
			io += t.F(w)
		}
		if written[j] {
			written[j] = false
			mavail -= t.F(j)
		}
		if t.MemReq(j) > mavail+t.F(j) {
			return 0, fmt.Errorf("minio: step %d: MemReq(%d)=%d exceeds available %d", step, j, t.MemReq(j), mavail+t.F(j))
		}
		mavail += t.F(j) - t.ChildFileSum(j)
	}
	return io, nil
}

// LowerBoundDivisible computes, for a fixed traversal, the I/O volume of the
// optimal *divisible* schedule, in which fractions of files may be written
// out. LSNF with fractional eviction is optimal for that relaxation
// (Section V-B), and its volume lower-bounds every integral schedule for
// the same traversal.
func LowerBoundDivisible(t *tree.Tree, order []int, m int64) (int64, error) {
	if err := t.IsTopDownOrder(order); err != nil {
		return 0, err
	}
	p := t.Len()
	pos := make([]int, p)
	for step, v := range order {
		pos[v] = step
	}
	resident := schedule.NewResidentSet(pos)
	residentSum := t.F(t.Root())
	// inMem[i]: bytes of file i still in memory (rest is on disk).
	inMem := make([]int64, p)
	if t.F(t.Root()) > 0 {
		resident.Add(t.Root())
		inMem[t.Root()] = t.F(t.Root())
	}
	var io int64
	for _, j := range order {
		if inMem[j] > 0 {
			// Fully evicted or zero-size files are not in the set.
			resident.Remove(j)
			residentSum -= inMem[j]
		}
		need := residentSum + t.MemReq(j) - m
		// Evict fractional bytes from the latest-consumed files first.
		for need > 0 {
			s := resident.Ordered()
			if len(s) == 0 {
				return 0, fmt.Errorf("minio: divisible bound infeasible (M below MemReq)")
			}
			v := s[0]
			amt := inMem[v]
			if amt > need {
				amt = need
			}
			inMem[v] -= amt
			residentSum -= amt
			io += amt
			need -= amt
			if inMem[v] == 0 {
				resident.Remove(v)
			}
		}
		inMem[j] = 0
		for k := 0; k < t.NumChildren(j); k++ {
			c := t.Child(j, k)
			if t.F(c) > 0 {
				inMem[c] = t.F(c)
				resident.Add(c)
				residentSum += t.F(c)
			}
		}
	}
	return io, nil
}
