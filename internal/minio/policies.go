package minio

import (
	"errors"

	"repro/internal/tree"
)

// errNoSpace reports that the policy could not free the required space: the
// memory is smaller than the node's own requirement.
var errNoSpace = errors.New("cannot free enough memory (M below MemReq of the node)")

// selectVictims applies the eviction policy to the ordered resident set and
// returns the files to write out, freeing at least ioReq units. Zero-size
// files are ignored throughout: writing them frees nothing.
func selectVictims(t *tree.Tree, resident *fileSet, ioReq int64, pol Policy, window int) ([]int, error) {
	// Snapshot S with zero-size files dropped.
	s := make([]int, 0, len(resident.ordered()))
	for _, v := range resident.ordered() {
		if t.F(v) > 0 {
			s = append(s, v)
		}
	}
	var victims []int
	take := func(idx int) {
		victims = append(victims, s[idx])
		ioReq -= t.F(s[idx])
		s = append(s[:idx], s[idx+1:]...)
	}
	lsnf := func() error {
		for ioReq > 0 {
			if len(s) == 0 {
				return errNoSpace
			}
			take(0)
		}
		return nil
	}
	switch pol {
	case LSNF:
		if err := lsnf(); err != nil {
			return nil, err
		}

	case FirstFit:
		// One file covering the whole requirement, searched latest-consumer
		// first; LSNF when no single file is big enough.
		found := false
		for i, v := range s {
			if t.F(v) >= ioReq {
				take(i)
				found = true
				break
			}
		}
		if !found {
			if err := lsnf(); err != nil {
				return nil, err
			}
		}

	case BestFit:
		// Repeatedly the file closest in size to the remaining requirement,
		// above or below; ties go to the latest consumer.
		for ioReq > 0 {
			if len(s) == 0 {
				return nil, errNoSpace
			}
			bi := 0
			bd := absDiff(t.F(s[0]), ioReq)
			for i := 1; i < len(s); i++ {
				if d := absDiff(t.F(s[i]), ioReq); d < bd {
					bi, bd = i, d
				}
			}
			take(bi)
		}

	case FirstFill:
		// Fill the requirement with the first files strictly smaller than
		// it; once none is smaller, fall back to LSNF for the remainder.
		for ioReq > 0 {
			found := false
			for i, v := range s {
				if t.F(v) < ioReq {
					take(i)
					found = true
					break
				}
			}
			if !found {
				if err := lsnf(); err != nil {
					return nil, err
				}
			}
		}

	case BestFill:
		// Fill with the largest file strictly smaller than the requirement
		// (the best "from below"); LSNF when none fits below.
		for ioReq > 0 {
			bi := -1
			var bf int64 = -1
			for i, v := range s {
				if t.F(v) < ioReq && t.F(v) > bf {
					bi, bf = i, t.F(v)
				}
			}
			if bi < 0 {
				if err := lsnf(); err != nil {
					return nil, err
				}
				continue
			}
			take(bi)
		}

	case BestKCombination:
		// Among the first K files of S, the non-empty subset whose total is
		// closest to the requirement (ties prefer covering subsets, then
		// fewer files); repeat until the requirement is met.
		for ioReq > 0 {
			if len(s) == 0 {
				return nil, errNoSpace
			}
			k := len(s)
			if k > window {
				k = window
			}
			bestMask, bestTotal := 0, int64(0)
			var bestDiff int64 = 1 << 62
			for mask := 1; mask < 1<<k; mask++ {
				var total int64
				for i := 0; i < k; i++ {
					if mask&(1<<i) != 0 {
						total += t.F(s[i])
					}
				}
				d := absDiff(total, ioReq)
				better := d < bestDiff
				if d == bestDiff {
					cover, bestCover := total >= ioReq, bestTotal >= ioReq
					if cover != bestCover {
						better = cover
					} else if popcount(mask) < popcount(bestMask) {
						better = true
					}
				}
				if better {
					bestMask, bestTotal, bestDiff = mask, total, d
				}
			}
			// Take from the highest index down so earlier removals do not
			// shift pending ones.
			for i := k - 1; i >= 0; i-- {
				if bestMask&(1<<i) != 0 {
					take(i)
				}
			}
		}

	default:
		return nil, errors.New("unknown eviction policy")
	}
	return victims, nil
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

func popcount(m int) int {
	c := 0
	for m != 0 {
		m &= m - 1
		c++
	}
	return c
}
