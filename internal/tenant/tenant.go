// Package tenant is the multi-tenant admission layer of the evaluation
// service: named tenants with isolated tree corpora (uploaded once,
// deduplicated by content digest), token-bucket rate limits and
// queue-depth quotas.
//
// A Registry holds the tenants, creating each on first use with the
// registry-wide Limits. Every batch a server accepts for a tenant first
// passes Admit, which charges the tenant's token bucket and queue quota;
// over-limit work is rejected with a *RetryError carrying the time after
// which a retry can succeed, which the HTTP layer surfaces as
// 429 + Retry-After. The corpus side lets a tenant upload .tree instances
// once (AddTree dedups by tree.Digest) and then reference them from batch
// requests by digest instead of re-inlining the text, so a tenant
// submitting many grids over one corpus pays the tree bytes once.
//
// The package deliberately knows nothing about HTTP or the schedule
// engine: it depends only on internal/tree, and the service layer maps
// its verdicts onto status codes.
package tenant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/tree"
)

// DefaultBurst is the token-bucket capacity used when Limits.Burst is
// unset and the rate alone does not imply a larger one. 64 matches the
// evaluation engine's default chunk size (schedule.DefaultChunkSize), so a
// default-chunked stream is never rejected merely for arriving as one
// chunk; the value is a literal because this package must not depend on
// the schedule engine.
const DefaultBurst = 64

// ErrCorpusFull reports an AddTree against a tenant whose corpus already
// holds Limits.MaxTrees distinct trees. It is deterministic — retrying
// cannot succeed until trees are deleted — so the service layer maps it to
// a non-retryable status, not a 429.
var ErrCorpusFull = errors.New("tenant: corpus is full")

// Limits is the per-tenant quota configuration, applied uniformly to
// every tenant of a Registry. The zero value disables all limits.
type Limits struct {
	// RatePerSec is the token-bucket refill rate in jobs per second;
	// ≤ 0 disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket capacity in jobs. ≤ 0 selects
	// max(RatePerSec, DefaultBurst). A batch larger than the burst is
	// admitted once the bucket is full and charged in full (the bucket
	// goes negative), so oversized batches are delayed, not starved.
	Burst int
	// MaxQueued bounds the jobs a tenant may have admitted-but-unfinished
	// at once; ≤ 0 is unbounded. Work beyond the bound is rejected until
	// earlier batches release their slots.
	MaxQueued int
	// MaxTrees bounds the tenant's corpus (distinct trees by digest);
	// ≤ 0 is unbounded. AddTree beyond the bound returns ErrCorpusFull.
	MaxTrees int

	// now is the test hook for the bucket clock; nil selects time.Now.
	now func() time.Time
}

// burst resolves the effective bucket capacity.
func (l Limits) burst() float64 {
	if l.Burst > 0 {
		return float64(l.Burst)
	}
	return math.Max(l.RatePerSec, DefaultBurst)
}

// RetryError is the admission verdict for over-limit work: the request
// was rejected, and a retry after After may succeed. The service layer
// maps it to HTTP 429 with a Retry-After header.
type RetryError struct {
	// After is the duration after which a retry can succeed: the bucket
	// refill time for rate rejections, a fixed estimate for queue ones.
	After time.Duration
	// Reason is "rate" (token bucket empty) or "queue" (queue-depth quota
	// reached); it labels the per-tenant rejection counters.
	Reason string
}

// Error implements error.
func (e *RetryError) Error() string {
	return fmt.Sprintf("tenant: over %s limit, retry after %s", e.Reason, e.After)
}

// queueRetryAfter is the Retry-After estimate for queue-quota rejections:
// the tenant's queue drains at the backend's pace, which the limiter
// cannot observe, so it advertises a modest fixed delay.
const queueRetryAfter = time.Second

// Stats is a point-in-time snapshot of one tenant's admission counters
// and corpus size, the source of the per-tenant /metrics families.
type Stats struct {
	// Name is the tenant's name ("default" for the anonymous tenant).
	Name string
	// Accepted is the cumulative count of admitted jobs.
	Accepted int64
	// RejectedRate and RejectedQueue count jobs rejected by the token
	// bucket and the queue-depth quota; RejectedOverload counts jobs the
	// backend shed (every healthy shard child's queue deep) — recorded
	// via RecordOverload, since backend admission happens outside this
	// package.
	RejectedRate     int64
	RejectedQueue    int64
	RejectedOverload int64
	// Queued is the jobs currently admitted but not yet released.
	Queued int
	// Trees is the number of distinct trees in the tenant's corpus.
	Trees int
}

// Registry holds the tenants of one server, creating each on first use
// with the registry's Limits. Construct with NewRegistry; all methods are
// safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	limits  Limits
	tenants map[string]*Tenant
}

// NewRegistry builds an empty registry whose tenants share the limits.
func NewRegistry(limits Limits) *Registry {
	if limits.now == nil {
		limits.now = time.Now
	}
	return &Registry{limits: limits, tenants: map[string]*Tenant{}}
}

// Tenant returns the named tenant, creating it on first use. The empty
// name aliases "default", so unauthenticated single-tenant callers share
// one namespace instead of each empty header minting a tenant.
func (r *Registry) Tenant(name string) *Tenant {
	if name == "" {
		name = "default"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if !ok {
		t = &Tenant{
			name:   name,
			limits: r.limits,
			tokens: r.limits.burst(),
			last:   r.limits.now(),
			trees:  map[tree.Digest]*tree.Tree{},
		}
		r.tenants[name] = t
	}
	return t
}

// Snapshot returns every tenant's Stats, sorted by name, for metrics
// export and operator reporting.
func (r *Registry) Snapshot() []Stats {
	r.mu.Lock()
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.Unlock()
	stats := make([]Stats, len(tenants))
	for i, t := range tenants {
		stats[i] = t.Stats()
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}

// Tenant is one namespace: a tree corpus plus admission state. Obtain
// from Registry.Tenant; all methods are safe for concurrent use.
type Tenant struct {
	name   string
	limits Limits

	mu     sync.Mutex
	tokens float64
	last   time.Time
	queued int

	accepted         int64
	rejectedRate     int64
	rejectedQueue    int64
	rejectedOverload int64

	trees map[tree.Digest]*tree.Tree
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Admit charges jobs against the tenant's quotas. On success it returns a
// release func the caller must invoke when the work finishes (it frees
// the queue slots; calling it more than once is a no-op) and a nil error.
// On rejection it returns a *RetryError saying when a retry can succeed.
// The queue quota is checked before the bucket is charged, so a rejected
// batch never burns tokens.
func (t *Tenant) Admit(jobs int) (release func(), err error) {
	if jobs <= 0 {
		return func() {}, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limits.MaxQueued > 0 && t.queued+jobs > t.limits.MaxQueued {
		t.rejectedQueue += int64(jobs)
		return nil, &RetryError{After: queueRetryAfter, Reason: "queue"}
	}
	if t.limits.RatePerSec > 0 {
		now := t.limits.now()
		burst := t.limits.burst()
		t.tokens = math.Min(burst, t.tokens+now.Sub(t.last).Seconds()*t.limits.RatePerSec)
		t.last = now
		// A batch larger than the burst can never hold a full n tokens;
		// it is admitted at a full bucket and charged in full, so
		// oversized batches are delayed (the deficit refills first), not
		// starved.
		need := math.Min(float64(jobs), burst)
		if t.tokens < need {
			after := time.Duration((need - t.tokens) / t.limits.RatePerSec * float64(time.Second))
			t.rejectedRate += int64(jobs)
			return nil, &RetryError{After: after, Reason: "rate"}
		}
		t.tokens -= float64(jobs)
	}
	t.queued += jobs
	t.accepted += int64(jobs)
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.queued -= jobs
			t.mu.Unlock()
		})
	}, nil
}

// RecordOverload counts jobs rejected by backend admission control (the
// shard shedding load), which happens outside this package but belongs in
// the tenant's rejection ledger.
func (t *Tenant) RecordOverload(jobs int) {
	t.mu.Lock()
	t.rejectedOverload += int64(jobs)
	t.mu.Unlock()
}

// AddTree stores tr in the tenant's corpus, deduplicating by content
// digest: the returned added is false when an identical tree was already
// present (the upload is acknowledged, nothing is stored twice). A corpus
// at the MaxTrees bound rejects new trees with ErrCorpusFull.
func (t *Tenant) AddTree(tr *tree.Tree) (tree.Digest, bool, error) {
	d := tr.Digest()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.trees[d]; ok {
		return d, false, nil
	}
	if t.limits.MaxTrees > 0 && len(t.trees) >= t.limits.MaxTrees {
		return tree.Digest{}, false, fmt.Errorf("%w (%d trees, limit %d)", ErrCorpusFull, len(t.trees), t.limits.MaxTrees)
	}
	t.trees[d] = tr
	return d, true, nil
}

// LookupTree resolves a corpus tree by digest.
func (t *Tenant) LookupTree(d tree.Digest) (*tree.Tree, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.trees[d]
	return tr, ok
}

// Digests lists the corpus's tree digests in sorted (hex) order.
func (t *Tenant) Digests() []tree.Digest {
	t.mu.Lock()
	out := make([]tree.Digest, 0, len(t.trees))
	for d := range t.trees {
		out = append(out, d)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Stats snapshots the tenant's counters and corpus size.
func (t *Tenant) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Name:             t.name,
		Accepted:         t.accepted,
		RejectedRate:     t.rejectedRate,
		RejectedQueue:    t.rejectedQueue,
		RejectedOverload: t.rejectedOverload,
		Queued:           t.queued,
		Trees:            len(t.trees),
	}
}
