package tenant

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/tree"
)

// fakeClock is a manually advanced time source for the token bucket.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestRegistry(l Limits) (*Registry, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	l.now = clk.Now
	return NewRegistry(l), clk
}

func TestTokenBucketRefill(t *testing.T) {
	r, clk := newTestRegistry(Limits{RatePerSec: 10, Burst: 20})
	ten := r.Tenant("a")
	// The bucket starts full: 20 tokens admit two batches of 10.
	for i := 0; i < 2; i++ {
		release, err := ten.Admit(10)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	// Empty bucket: a batch of 5 needs 0.5s of refill.
	_, err := ten.Admit(5)
	var re *RetryError
	if !errors.As(err, &re) || re.Reason != "rate" {
		t.Fatalf("want rate RetryError, got %v", err)
	}
	if re.After <= 0 || re.After > 500*time.Millisecond {
		t.Fatalf("retry-after %v outside (0, 500ms]", re.After)
	}
	clk.Advance(re.After)
	release, err := ten.Admit(5)
	if err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	release()
	st := ten.Stats()
	if st.Accepted != 25 || st.RejectedRate != 5 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOversizedBatchDelayedNotStarved(t *testing.T) {
	r, clk := newTestRegistry(Limits{RatePerSec: 100, Burst: 10})
	ten := r.Tenant("a")
	// 30 jobs > burst 10: admitted at a full bucket, charged in full.
	release, err := ten.Admit(30)
	if err != nil {
		t.Fatalf("oversized admit: %v", err)
	}
	release()
	// Deficit of 20 plus the 10-token need: 0.3s to admit again.
	if _, err := ten.Admit(30); err == nil {
		t.Fatal("second oversized admit should hit the deficit")
	}
	clk.Advance(300 * time.Millisecond)
	if release, err = ten.Admit(30); err != nil {
		t.Fatalf("admit after deficit refill: %v", err)
	}
	release()
}

func TestQueueQuota(t *testing.T) {
	r, _ := newTestRegistry(Limits{MaxQueued: 10})
	ten := r.Tenant("a")
	rel1, err := ten.Admit(6)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := ten.Admit(4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ten.Admit(1)
	var re *RetryError
	if !errors.As(err, &re) || re.Reason != "queue" {
		t.Fatalf("want queue RetryError, got %v", err)
	}
	if st := ten.Stats(); st.Queued != 10 || st.RejectedQueue != 1 {
		t.Fatalf("stats: %+v", st)
	}
	rel1()
	rel1() // double release must not free extra slots
	if st := ten.Stats(); st.Queued != 4 {
		t.Fatalf("queued after release: %+v", st)
	}
	rel3, err := ten.Admit(6)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
	rel3()
	if st := ten.Stats(); st.Queued != 0 {
		t.Fatalf("queued after all releases: %+v", st)
	}
}

func TestCorpusDedupAndBound(t *testing.T) {
	r, _ := newTestRegistry(Limits{MaxTrees: 2})
	ten := r.Tenant("a")
	t1, err := tree.NestedHarpoon(2, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := tree.NestedHarpoon(3, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	d1, added, err := ten.AddTree(t1)
	if err != nil || !added {
		t.Fatalf("first add: added=%v err=%v", added, err)
	}
	// A second copy of the same instance dedups by digest.
	t1b, err := tree.NestedHarpoon(2, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	d1b, added, err := ten.AddTree(t1b)
	if err != nil || added || d1b != d1 {
		t.Fatalf("dedup add: digest=%v added=%v err=%v", d1b, added, err)
	}
	if _, added, err = ten.AddTree(t2); err != nil || !added {
		t.Fatalf("second add: added=%v err=%v", added, err)
	}
	t3, err := tree.NestedHarpoon(5, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err = ten.AddTree(t3); !errors.Is(err, ErrCorpusFull) {
		t.Fatalf("want ErrCorpusFull, got %v", err)
	}
	// Re-adding a resident tree still succeeds at the bound.
	if _, added, err = ten.AddTree(t1); err != nil || added {
		t.Fatalf("resident re-add at bound: added=%v err=%v", added, err)
	}
	got, ok := ten.LookupTree(d1)
	if !ok || got.Len() != t1.Len() {
		t.Fatalf("lookup %v: ok=%v", d1, ok)
	}
	if ds := ten.Digests(); len(ds) != 2 {
		t.Fatalf("digests: %v", ds)
	}
}

func TestRegistryNamespacesAndSnapshot(t *testing.T) {
	r, _ := newTestRegistry(Limits{})
	if r.Tenant("") != r.Tenant("default") {
		t.Fatal("empty name must alias the default tenant")
	}
	if r.Tenant("a") == r.Tenant("b") {
		t.Fatal("distinct names must be distinct tenants")
	}
	r.Tenant("b").RecordOverload(7)
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a" || snap[1].Name != "b" || snap[2].Name != "default" {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap[1].RejectedOverload != 7 {
		t.Fatalf("overload ledger: %+v", snap[1])
	}
}

func TestConcurrentAdmitAndCorpus(t *testing.T) {
	r, _ := newTestRegistry(Limits{MaxQueued: 1000, MaxTrees: 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ten := r.Tenant("shared")
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				if release, err := ten.Admit(rng.Intn(5) + 1); err == nil {
					release()
				}
				tr, err := tree.NestedHarpoon([]int{2, 3, 5}[g%3], 2, 30, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if _, _, err := ten.AddTree(tr); err != nil {
					t.Error(err)
					return
				}
				ten.Stats()
			}
		}(g)
	}
	wg.Wait()
	st := r.Tenant("shared").Stats()
	if st.Queued != 0 {
		t.Fatalf("queued after quiesce: %+v", st)
	}
	if st.Trees != 3 { // three distinct harpoon shapes across the goroutines
		t.Fatalf("trees: %+v", st)
	}
}
