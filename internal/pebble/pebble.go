// Package pebble connects the paper's model to the classical pebble games
// of Section II-B: the Sethi–Ullman register count (the unit-cost pebble
// game with replacement, the simplest MinMemory instance) and the unit-size
// I/O pebble game of Hong and Kung (the polynomial special case of MinIO).
package pebble

import (
	"fmt"
	"sort"

	"repro/internal/minio"
	"repro/internal/traversal"
	"repro/internal/tree"
)

// SethiUllmanNumber computes the minimum number of registers (pebbles with
// replacement) needed to evaluate the expression tree given by the parent
// vector: the classic Sethi–Ullman labeling generalized to arbitrary arity.
//
// label(leaf) = 1; for an internal node with children labels l₁ ≥ l₂ ≥ …,
// label = max(k, max_i (l_i + i)) with i counting 0-based earlier-held
// results and k the number of children (all operand registers are live at
// the combining step; the result then reuses one of them).
//
// It equals MinMem on the unit-file replacement-model transform of the same
// tree (tree.FromReplacementModel), which the tests verify.
func SethiUllmanNumber(parent []int) (int64, error) {
	shape, err := tree.New(parent, unitVector(len(parent)), make([]int64, len(parent)))
	if err != nil {
		return 0, err
	}
	labels := make([]int64, shape.Len())
	var kids []int
	for _, v := range shape.Postorder() {
		kids = shape.Children(v, kids[:0])
		if len(kids) == 0 {
			labels[v] = 1
			continue
		}
		ls := make([]int64, len(kids))
		for i, c := range kids {
			ls[i] = labels[c]
		}
		sort.Slice(ls, func(a, b int) bool { return ls[a] > ls[b] })
		need := int64(len(kids))
		for i, l := range ls {
			if cand := l + int64(i); cand > need {
				need = cand
			}
		}
		labels[v] = need
	}
	return labels[shape.Root()], nil
}

func unitVector(n int) []int64 {
	f := make([]int64, n)
	for i := range f {
		f[i] = 1
	}
	return f
}

// UnitTree builds the paper-model tree equivalent to the unit pebble game
// with replacement on the given shape (Figure 1's transformation with
// f ≡ 1).
func UnitTree(parent []int) (*tree.Tree, error) {
	return tree.FromReplacementModel(parent, unitVector(len(parent)))
}

// UnitMinIO plays the unit-size I/O pebble game: with m pebbles (registers)
// available, it returns the number of stores needed by the Sethi–Ullman
// strategy — evaluate subtrees in decreasing label order, spilling the
// values that will be consumed furthest in the future when registers run
// out. For unit files the divisible relaxation is integral, so LSNF
// eviction is optimal for the traversal it is given; the tests compare the
// whole strategy against the exponential exact search.
func UnitMinIO(parent []int, m int64) (int64, error) {
	t, err := UnitTree(parent)
	if err != nil {
		return 0, err
	}
	if req := t.MaxMemReq(); req > m {
		return 0, fmt.Errorf("pebble: need at least %d pebbles, got %d", req, m)
	}
	// The Sethi–Ullman order is exactly the best postorder of the
	// transformed tree (children by decreasing label = decreasing peak−f).
	order := traversal.BestPostOrder(t).Order
	res, err := minio.Simulate(t, order, m, minio.LSNF)
	if err != nil {
		return 0, err
	}
	return res.IO, nil
}
