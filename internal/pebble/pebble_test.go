package pebble

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/minio"
	"repro/internal/traversal"
	"repro/internal/tree"
)

func TestSethiUllmanKnownShapes(t *testing.T) {
	// Single node: 1 register.
	if n, err := SethiUllmanNumber([]int{tree.NoParent}); err != nil || n != 1 {
		t.Fatalf("single node: %d, %v", n, err)
	}
	// Chain: always 1 register (result replaces operand)? In our k-ary
	// labeling a one-child node needs max(1, l₁+0) = l₁, so chains stay 1.
	if n, err := SethiUllmanNumber([]int{tree.NoParent, 0, 1, 2}); err != nil || n != 1 {
		t.Fatalf("chain: %d, %v", n, err)
	}
	// Balanced binary tree of depth d needs d+1 registers.
	// Depth 1: root with two leaves → 2.
	if n, err := SethiUllmanNumber([]int{tree.NoParent, 0, 0}); err != nil || n != 2 {
		t.Fatalf("cherry: %d, %v", n, err)
	}
	// Depth 2: 7 nodes → 3.
	parent := []int{tree.NoParent, 0, 0, 1, 1, 2, 2}
	if n, err := SethiUllmanNumber(parent); err != nil || n != 3 {
		t.Fatalf("balanced depth 2: %d, %v", n, err)
	}
	// Unbalanced: root(a, leaf) with a = cherry → max(2, l_a+0, 1+1) = 2.
	parent = []int{tree.NoParent, 0, 0, 1, 1}
	if n, err := SethiUllmanNumber(parent); err != nil || n != 2 {
		t.Fatalf("unbalanced: %d, %v", n, err)
	}
	// Errors propagate.
	if _, err := SethiUllmanNumber([]int{0}); err == nil {
		t.Fatal("cyclic parent accepted")
	}
}

// The central connection claimed in Section II-B and Figure 1: the
// Sethi–Ullman number equals MinMemory on the unit replacement-model tree.
func TestQuickSethiUllmanEqualsMinMem(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(41))}
	prop := func(seed int64, p uint8, kind uint8) bool {
		nodes := 1 + int(p%40)
		rng := rand.New(rand.NewSource(seed))
		shape, err := tree.Random(rng, tree.RandomOptions{
			Nodes: nodes, MaxF: 1, MaxN: 0, Attach: tree.AttachKind(kind % 3),
		})
		if err != nil {
			return false
		}
		su, err := SethiUllmanNumber(shape.ParentVector())
		if err != nil {
			return false
		}
		ut, err := UnitTree(shape.ParentVector())
		if err != nil {
			return false
		}
		return traversal.MinMem(ut).Memory == su
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnitMinIOZeroWhenEnoughRegisters(t *testing.T) {
	parent := []int{tree.NoParent, 0, 0, 1, 1, 2, 2}
	su, err := SethiUllmanNumber(parent)
	if err != nil {
		t.Fatal(err)
	}
	io, err := UnitMinIO(parent, su)
	if err != nil {
		t.Fatal(err)
	}
	if io != 0 {
		t.Fatalf("IO = %d with SU-many registers, want 0", io)
	}
	// One register less forces spills.
	io2, err := UnitMinIO(parent, su-1)
	if err != nil {
		t.Fatal(err)
	}
	if io2 <= 0 {
		t.Fatalf("IO = %d below SU registers, want > 0", io2)
	}
	// Below the absolute minimum it must fail.
	ut, err := UnitTree(parent)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnitMinIO(parent, ut.MaxMemReq()-1); err == nil {
		t.Fatal("infeasible register count accepted")
	}
	if _, err := UnitMinIO([]int{0}, 5); err == nil {
		t.Fatal("cyclic parent accepted")
	}
}

// The Sethi–Ullman strategy is compared against the exact exponential MinIO
// search on small unit trees: it must never be better than the optimum and
// is expected to match it on trees (the polynomial case of Section II-B).
func TestUnitMinIOMatchesExactOnSmallTrees(t *testing.T) {
	mismatches := 0
	total := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shape, err := tree.Random(rng, tree.RandomOptions{
			Nodes: 2 + int(seed%9), MaxF: 1, MaxN: 0, Attach: tree.AttachKind(seed % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		ut, err := UnitTree(shape.ParentVector())
		if err != nil {
			t.Fatal(err)
		}
		low := ut.MaxMemReq()
		high := traversal.MinMem(ut).Memory
		for m := low; m <= high; m++ {
			exact, err := minio.BruteForceMinIO(ut, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnitMinIO(shape.ParentVector(), m)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if got < exact {
				t.Fatalf("seed %d m=%d: strategy IO %d beats exact %d", seed, m, got, exact)
			}
			if got != exact {
				mismatches++
			}
		}
	}
	if total == 0 {
		t.Fatal("no cases exercised")
	}
	// The strategy should be exact on the overwhelming majority of unit
	// trees; allow a tiny slack in case a pathological interleaving exists.
	if float64(mismatches) > 0.05*float64(total) {
		t.Fatalf("strategy suboptimal on %d of %d cases", mismatches, total)
	}
	t.Logf("unit MinIO strategy exact on %d/%d cases", total-mismatches, total)
}
