// Command benchgate fails when a freshly measured benchmark regresses too
// far below its committed record. It is the perf-regression gate of the CI
// bench job:
//
//	go run ./internal/tools/benchgate BENCH_solver.json /tmp/BENCH_solver.json batch-local/minmemory-grid 2
//
// The arguments are the committed record file, the fresh record file, the
// benchmark name and the maximum allowed slowdown ratio: the gate fails if
// the fresh rows_per_sec drops below committed/ratio. Only a drop fails —
// a faster fresh run always passes, so the committed file ratchets forward
// when someone re-records it. A benchmark missing from either file is an
// error: silently skipping the comparison would let a renamed or deleted
// entry disable the gate.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

// record mirrors the BENCH_solver.json entries benchgate reads.
type record struct {
	Name       string  `json:"name"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// report mirrors the top-level BENCH_solver.json document.
type report struct {
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("usage: benchgate <committed.json> <fresh.json> <benchmark-name> <max-ratio>")
	}
	committedPath, freshPath, name := args[0], args[1], args[2]
	ratio, err := strconv.ParseFloat(args[3], 64)
	if err != nil || ratio < 1 {
		return fmt.Errorf("max-ratio %q must be a number >= 1", args[3])
	}
	committed, err := lookup(committedPath, name)
	if err != nil {
		return err
	}
	fresh, err := lookup(freshPath, name)
	if err != nil {
		return err
	}
	floor := committed / ratio
	if fresh < floor {
		return fmt.Errorf("%s: fresh %.0f rows/sec is below the committed %.0f / %.1f = %.0f floor",
			name, fresh, committed, ratio, floor)
	}
	fmt.Printf("benchgate: %s ok — fresh %.0f rows/sec vs committed %.0f (floor %.0f)\n", name, fresh, committed, floor)
	return nil
}

// lookup reads one benchmark's rows_per_sec out of a record file.
func lookup(path, name string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, b := range rep.Benchmarks {
		if b.Name == name {
			if b.RowsPerSec <= 0 {
				return 0, fmt.Errorf("%s: benchmark %q records no rows_per_sec", path, name)
			}
			return b.RowsPerSec, nil
		}
	}
	return 0, fmt.Errorf("%s: benchmark %q not found", path, name)
}
