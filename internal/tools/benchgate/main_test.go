package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name string, rowsPerSec float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	doc := `{"benchmarks": [{"name": "` + name + `", "rows_per_sec": ` +
		strconv.FormatFloat(rowsPerSec, 'f', -1, 64) + `}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinRatio(t *testing.T) {
	committed := writeReport(t, "batch-local/minmemory-grid", 20000)
	fresh := writeReport(t, "batch-local/minmemory-grid", 11000)
	if err := run([]string{committed, fresh, "batch-local/minmemory-grid", "2"}); err != nil {
		t.Fatalf("fresh within 2x of committed rejected: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	committed := writeReport(t, "batch-local/minmemory-grid", 20000)
	fresh := writeReport(t, "batch-local/minmemory-grid", 9000)
	err := run([]string{committed, fresh, "batch-local/minmemory-grid", "2"})
	if err == nil || !strings.Contains(err.Error(), "below the committed") {
		t.Fatalf("2.2x regression passed the 2x gate: %v", err)
	}
}

func TestGateErrors(t *testing.T) {
	committed := writeReport(t, "a", 100)
	fresh := writeReport(t, "b", 100)
	if err := run([]string{committed, fresh, "a", "2"}); err == nil {
		t.Fatal("benchmark missing from the fresh file was skipped silently")
	}
	if err := run([]string{committed, fresh, "c", "2"}); err == nil {
		t.Fatal("benchmark missing from both files was skipped silently")
	}
	if err := run([]string{committed, committed, "a", "0.5"}); err == nil {
		t.Fatal("ratio below 1 accepted")
	}
	if err := run([]string{committed, committed, "a"}); err == nil {
		t.Fatal("missing argument accepted")
	}
	zero := writeReport(t, "a", 0)
	if err := run([]string{zero, zero, "a", "2"}); err == nil {
		t.Fatal("zero rows_per_sec accepted")
	}
}
