// Command doccheck fails when an exported top-level identifier in the
// given package directories lacks a doc comment. It is the documentation
// gate of the CI docs job:
//
//	go run ./internal/tools/doccheck ./internal/schedule ./internal/service
//
// Checked declarations: exported functions and methods (methods count when
// their receiver's base type is exported), and exported types, constants
// and variables. A grouped const/var/type block is satisfied by a doc
// comment on the group or on the individual spec; _test.go files are
// skipped. Every offender is reported as file:line: name, and the exit
// status is nonzero if any were found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := check(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		bad += len(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// check parses every non-test Go file of dir and returns "file:line: name"
// for each exported identifier without a doc comment.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), funcName(d))
					}
				case *ast.GenDecl:
					if d.Doc != nil {
						continue // group doc covers the block
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// receiverExported reports whether a declaration is package-level API: a
// plain function, or a method whose receiver base type is exported (an
// exported method on an unexported type is unreachable API and exempt).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return true
		}
	}
}

// funcName renders Func or (Recv).Func for reporting.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	var sb strings.Builder
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		sb.WriteString(id.Name)
		sb.WriteByte('.')
	}
	sb.WriteString(d.Name.Name)
	return sb.String()
}
