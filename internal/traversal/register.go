package traversal

import (
	"repro/internal/schedule"
	"repro/internal/tree"
)

// The MinMemory solvers register themselves with the schedule engine, so
// binaries and experiments select them by name instead of hard-wiring
// dispatch switches (the database/sql driver pattern).
func init() {
	exact := func(f func(*tree.Tree) Result) func(*tree.Tree) (int64, []int, error) {
		return func(t *tree.Tree) (int64, []int, error) {
			r := f(t)
			return r.Memory, r.Order, nil
		}
	}
	schedule.RegisterMinMemory("postorder", "PostOrder", exact(BestPostOrder))
	schedule.RegisterMinMemory("natural-postorder", "NaturalPostOrder", exact(NaturalPostOrder))
	schedule.RegisterMinMemory("liu", "Liu", exact(LiuExact))
	schedule.RegisterMinMemory("minmem", "MinMem", exact(MinMem))
	schedule.RegisterMinMemory("minmem-noreuse", "MinMem (no frontier reuse)", exact(MinMemNoReuse))
	schedule.RegisterMinMemory("brute", "BruteForce", func(t *tree.Tree) (int64, []int, error) {
		r, err := BruteForce(t)
		if err != nil {
			return 0, nil, err
		}
		return r.Memory, r.Order, nil
	})
	schedule.RegisterMinMemory("enumerate", "Enumerate", func(t *tree.Tree) (int64, []int, error) {
		m, err := EnumerateMinMemory(t)
		return m, nil, err // proves the value without exhibiting an order
	})
}
