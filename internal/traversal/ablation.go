package traversal

import "repro/internal/tree"

// MinMemNoReuse is an ablation of MinMem: like Algorithm 4 it lifts the
// available memory to the reported peak after every stalled sweep, but it
// discards the saved frontier and traversal prefix and restarts Explore
// from the root each time. It returns the same optimal memory as MinMem —
// the lift sequence does not depend on the reuse — at a higher cost; the
// ablation benchmark quantifies how much the frontier reuse of the
// published algorithm saves.
func MinMemNoReuse(t *tree.Tree) Result {
	var (
		avail int64
		st    = exploreState{t: t}
		out   exploreResult
	)
	peak := t.MaxMemReq()
	for peak != Infinite {
		avail = peak
		out = st.explore(t.Root(), avail, nil, nil)
		peak = out.peak
	}
	order := make([]int, len(out.order))
	for i, v := range out.order {
		order[i] = int(v)
	}
	return Result{Memory: avail, Order: order}
}

// ExploreCalls counts the recursive Explore invocations performed by a full
// MinMem run, the cost measure behind the O(p²) analysis. reuse selects the
// published algorithm (true) or the restart ablation (false).
func ExploreCalls(t *tree.Tree, reuse bool) int64 {
	st := exploreState{t: t, countCalls: true}
	var out exploreResult
	peak := t.MaxMemReq()
	for peak != Infinite {
		if reuse {
			out = st.explore(t.Root(), peak, out.cut, out.order)
		} else {
			out = st.explore(t.Root(), peak, nil, nil)
		}
		peak = out.peak
	}
	return st.calls
}
