package traversal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// Profile invariants: hills non-increasing, valleys non-decreasing, every
// hill at least its valley, first hill = optimal memory, last valley =
// the root's file.
func TestQuickLiuProfileInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(51))}
	prop := func(seed int64, p uint8, kind uint8) bool {
		tr := randomTree(seed, 1+int(p%100), tree.AttachKind(kind%3))
		prof := LiuProfile(tr)
		if len(prof) == 0 {
			return false
		}
		if prof[0].Hill != LiuExact(tr).Memory {
			return false
		}
		if prof[len(prof)-1].Valley != tr.F(tr.Root()) {
			return false
		}
		for i, s := range prof {
			if s.Hill < s.Valley {
				return false
			}
			if i > 0 {
				if s.Hill > prof[i-1].Hill || s.Valley < prof[i-1].Valley {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// The harpoon has a known two-stage profile per branch; the root profile's
// first hill must equal the closed-form optimum.
func TestLiuProfileHarpoon(t *testing.T) {
	h, err := tree.Harpoon(3, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := LiuProfile(h)
	if prof[0].Hill != tree.HarpoonOptimalMemory(3, 1, 30, 1) {
		t.Fatalf("first hill %d, want %d", prof[0].Hill, tree.HarpoonOptimalMemory(3, 1, 30, 1))
	}
	if prof[len(prof)-1].Valley != 0 {
		t.Fatalf("last valley %d, want 0 (root file)", prof[len(prof)-1].Valley)
	}
}

// A single node has a single segment (MemReq, f).
func TestLiuProfileSingleNode(t *testing.T) {
	tr := tree.MustNew([]int{tree.NoParent}, []int64{4}, []int64{3})
	prof := LiuProfile(tr)
	if len(prof) != 1 || prof[0].Hill != 7 || prof[0].Valley != 4 {
		t.Fatalf("profile = %+v", prof)
	}
}

// Deep chains stress the iterative traversal code paths: no recursion blowup
// and consistent results at 200k nodes.
func TestDeepChainStress(t *testing.T) {
	if testing.Short() {
		t.Skip("deep chain in -short mode")
	}
	const n = 30_000
	f := make([]int64, n)
	nn := make([]int64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range f {
		f[i] = 1 + rng.Int63n(50)
		nn[i] = rng.Int63n(10)
	}
	ch, err := tree.Chain(f, nn)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < n-1; i++ {
		want = maxInt64(want, f[i]+nn[i]+f[i+1])
	}
	want = maxInt64(want, f[n-1]+nn[n-1])
	if got := LiuExact(ch).Memory; got != want {
		t.Fatalf("Liu on deep chain: %d, want %d", got, want)
	}
	if got := MinMem(ch).Memory; got != want {
		t.Fatalf("MinMem on deep chain: %d, want %d", got, want)
	}
	if got := BestPostOrder(ch).Memory; got != want {
		t.Fatalf("PostOrder on deep chain: %d, want %d", got, want)
	}
}

// Wide star stress: one node with 100k children.
func TestWideStarStress(t *testing.T) {
	if testing.Short() {
		t.Skip("wide star in -short mode")
	}
	const n = 100_000
	parent := make([]int, n+1)
	f := make([]int64, n+1)
	nn := make([]int64, n+1)
	parent[0] = tree.NoParent
	f[0] = 1
	var sum int64
	rng := rand.New(rand.NewSource(4))
	for i := 1; i <= n; i++ {
		parent[i] = 0
		f[i] = 1 + rng.Int63n(9)
		sum += f[i]
	}
	star, err := tree.New(parent, f, nn)
	if err != nil {
		t.Fatal(err)
	}
	// Every traversal must hold all children files at once after the root.
	want := sum + 1
	for name, got := range map[string]int64{
		"liu":       LiuExact(star).Memory,
		"minmem":    MinMem(star).Memory,
		"postorder": BestPostOrder(star).Memory,
	} {
		if got != want {
			t.Fatalf("%s on star: %d, want %d", name, got, want)
		}
	}
}

// MinMemNoReuse returns the same optimum as MinMem everywhere.
func TestQuickMinMemNoReuseAgrees(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(57))}
	prop := func(seed int64, p uint8, kind uint8) bool {
		tr := randomTree(seed, 1+int(p%80), tree.AttachKind(kind%3))
		a := MinMem(tr)
		b := MinMemNoReuse(tr)
		if a.Memory != b.Memory {
			return false
		}
		peak, err := Peak(tr, b.Order)
		return err == nil && peak == b.Memory
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// ExploreCalls with reuse never exceeds the restart variant.
func TestExploreCallsAccounting(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := randomTree(seed, 50+int(seed)*13, tree.AttachKind(seed%3))
		withR := ExploreCalls(tr, true)
		withoutR := ExploreCalls(tr, false)
		if withR <= 0 || withoutR <= 0 {
			t.Fatalf("seed %d: no calls counted", seed)
		}
		if withR > withoutR {
			t.Fatalf("seed %d: reuse cost %d > restart %d", seed, withR, withoutR)
		}
	}
}

func TestTraversalWithin(t *testing.T) {
	tr := sample(t)
	opt := MinMem(tr).Memory
	order, err := TraversalWithin(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInCore(tr, order, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := TraversalWithin(tr, opt-1); err == nil {
		t.Fatal("insufficient memory accepted")
	}
	// A generous budget also works and stays feasible at that budget.
	order2, err := TraversalWithin(tr, opt*10)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInCore(tr, order2, opt*10); err != nil {
		t.Fatal(err)
	}
}
