package traversal

import (
	"sort"

	"repro/internal/tree"
)

// BestPostOrder computes Liu's optimal postorder traversal (Liu 1986, and
// the PostOrder algorithm of the paper): among all traversals in which every
// subtree is processed contiguously, it finds one of minimum peak memory in
// O(p log p) time.
//
// The returned order is top-down (each subtree contiguous, its root first);
// its reverse is the familiar bottom-up multifrontal postorder. The rule:
// at every node, child subtrees are processed in non-increasing order of
// (subtree peak − retained file size), which an exchange argument shows is
// optimal among postorders.
func BestPostOrder(t *tree.Tree) Result {
	p := t.Len()
	peak := make([]int64, p) // peak[i]: best postorder peak of subtree i
	// Process bottom-up so children peaks are known at the parent.
	post := t.Postorder()
	// childOrder[i] holds i's children sorted for the optimal postorder.
	childOrder := make([][]int32, p)
	var kidsBuf []int
	for _, v := range post {
		kidsBuf = t.Children(v, kidsBuf[:0])
		if len(kidsBuf) == 0 {
			peak[v] = t.MemReq(v)
			continue
		}
		kids := make([]int32, len(kidsBuf))
		for k, c := range kidsBuf {
			kids[k] = int32(c)
		}
		sort.SliceStable(kids, func(a, b int) bool {
			ca, cb := kids[a], kids[b]
			return peak[ca]-t.F(int(ca)) > peak[cb]-t.F(int(cb))
		})
		childOrder[v] = kids
		// Bottom-up peak: while processing the j-th subtree, the files of
		// the j−1 finished subtrees are resident; the node's own assembly
		// MemReq(v) comes last with all children files resident.
		var resident, best int64
		for _, c := range kids {
			if cand := resident + peak[c]; cand > best {
				best = cand
			}
			resident += t.F(int(c))
		}
		best = maxInt64(best, t.MemReq(v))
		peak[v] = best
	}
	// Emit the bottom-up postorder following childOrder, then reverse it to
	// the top-down orientation.
	order := make([]int, 0, p)
	type frame struct {
		node int32
		next int32
	}
	stack := []frame{{int32(t.Root()), 0}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		kids := childOrder[fr.node]
		if int(fr.next) < len(kids) {
			c := kids[fr.next]
			fr.next++
			stack = append(stack, frame{c, 0})
			continue
		}
		order = append(order, int(fr.node))
		stack = stack[:len(stack)-1]
	}
	return Result{Memory: peak[t.Root()], Order: tree.ReverseOrder(order)}
}

// NaturalPostOrder returns the peak memory of the postorder that follows the
// stored child order of the tree (no reordering). It is the baseline a
// solver would get without Liu's child-sorting rule.
func NaturalPostOrder(t *tree.Tree) Result {
	order := t.Postorder()
	topDown := tree.ReverseOrder(order)
	peak, err := Peak(t, topDown)
	if err != nil {
		// t.Postorder always yields a valid traversal.
		panic(err)
	}
	return Result{Memory: peak, Order: topDown}
}
