package traversal

import (
	"fmt"

	"repro/internal/tree"
)

// MinMem implements Algorithm 4 of the paper: the new exact MinMemory
// algorithm. It starts from the trivial lower bound max_i MemReq(i) and
// repeatedly sweeps the tree top-down with Explore; whenever the sweep
// stalls, Explore reports the smallest memory that would let it visit one
// more node, and MinMem lifts the available memory exactly to that value and
// resumes from the saved frontier. The last lift is the optimal memory.
// Worst-case complexity O(p²), but in practice only a few sweeps are needed.
func MinMem(t *tree.Tree) Result {
	var (
		avail int64
		st    = exploreState{t: t}
		out   exploreResult
	)
	peak := t.MaxMemReq()
	for peak != Infinite {
		avail = peak
		out = st.explore(t.Root(), avail, out.cut, out.order)
		peak = out.peak
	}
	order := make([]int, len(out.order))
	for i, v := range out.order {
		order[i] = int(v)
	}
	return Result{Memory: avail, Order: order}
}

// TraversalWithin returns a feasible top-down traversal of t using at most
// m units of memory, or an error naming the smallest memory that would
// allow further progress. It is the practical entry point for a solver that
// knows its memory budget: Explore either completes within the budget or
// certifies the budget is too small.
func TraversalWithin(t *tree.Tree, m int64) ([]int, error) {
	_, _, order, peak := Explore(t, m)
	if peak != Infinite {
		return nil, fmt.Errorf("traversal: memory %d is insufficient; visiting one more node needs %d (optimal is %d)",
			m, peak, MinMem(t).Memory)
	}
	return order, nil
}

// Explore implements Algorithm 3 of the paper as a standalone entry point:
// starting from the root with the given available memory, it explores the
// tree and returns the minimum reachable frontier memory, the frontier
// itself, a traversal reaching it, and the minimal memory needed to visit
// one more node (Infinite if the whole tree was processed).
func Explore(t *tree.Tree, avail int64) (minMemory int64, frontier []int, order []int, peak int64) {
	st := exploreState{t: t}
	out := st.explore(t.Root(), avail, nil, nil)
	frontier = make([]int, len(out.cut))
	for i, e := range out.cut {
		frontier[i] = int(e.node)
	}
	order = make([]int, len(out.order))
	for i, v := range out.order {
		order[i] = int(v)
	}
	return out.min, frontier, order, out.peak
}

// cutEntry is one frontier node together with the last known threshold:
// exploring its subtree with a (subtree-local) budget ≥ peak is guaranteed
// to visit at least one node not visited by the previous attempt.
type cutEntry struct {
	node int32
	peak int64
}

// exploreResult mirrors the tuple ⟨M_i, L_i, Tr_i, M_i^peak⟩ of Algorithm 3.
type exploreResult struct {
	min   int64      // Σ files on the frontier at the reached state
	cut   []cutEntry // the frontier itself
	order []int32    // traversal from the subtree root to the frontier
	peak  int64      // minimal memory to visit one more node (Infinite if done)
}

type exploreState struct {
	t *tree.Tree
	// countCalls enables the instrumentation used by ExploreCalls.
	countCalls bool
	calls      int64
}

// explore is Algorithm 3. The budget avail accounts for the whole subtree
// rooted at i, input file included. When init is non-empty, exploration
// resumes from that saved frontier (only used at the tree root by MinMem)
// and initOrder is the traversal that reached it.
func (st *exploreState) explore(i int, avail int64, init []cutEntry, initOrder []int32) exploreResult {
	if st.countCalls {
		st.calls++
	}
	t := st.t
	fi, ni := t.F(i), t.N(i)
	if len(init) == 0 {
		if t.IsLeaf(i) {
			if ni+fi <= avail {
				return exploreResult{min: 0, order: []int32{int32(i)}, peak: Infinite}
			}
			return exploreResult{min: Infinite, peak: ni + fi}
		}
		if req := t.MemReq(i); req > avail {
			return exploreResult{min: Infinite, peak: req}
		}
	}
	var (
		cut   []cutEntry
		order []int32
		sumL  int64
	)
	if len(init) > 0 {
		cut = init
		order = initOrder
		for _, e := range cut {
			sumL += t.F(int(e.node))
		}
	} else {
		nc := t.NumChildren(i)
		cut = make([]cutEntry, nc)
		for k := 0; k < nc; k++ {
			c := t.Child(i, k)
			// Never explored: peak −1 marks it as an immediate candidate.
			cut[k] = cutEntry{node: int32(c), peak: -1}
			sumL += t.F(c)
		}
		order = append(order, int32(i))
	}
	// Iterate: explore every candidate; commits shrink the frontier memory,
	// which can turn other entries back into candidates.
	for {
		progressed := false
		for k := 0; k < len(cut); k++ {
			e := cut[k]
			budget := avail - (sumL - t.F(int(e.node)))
			if e.peak >= 0 && budget < e.peak {
				continue // not a candidate: re-exploring cannot reach a new node
			}
			sub := st.explore(int(e.node), budget, nil, nil)
			if sub.min <= t.F(int(e.node)) {
				// Process e.node: replace it by the cut found in its subtree
				// (line 17) and append the sub-traversal (line 18). The cut
				// is a set, so a swap-remove plus append keeps the commit
				// O(|sub-cut|) instead of O(|cut|).
				sumL += sub.min - t.F(int(e.node))
				cut[k] = cut[len(cut)-1]
				cut = cut[:len(cut)-1]
				cut = append(cut, sub.cut...)
				k-- // revisit the slot that now holds the swapped-in entry
				order = append(order, sub.order...)
				progressed = true
			} else {
				cut[k].peak = sub.peak
			}
		}
		if !progressed {
			break
		}
	}
	if len(cut) == 0 {
		return exploreResult{min: 0, cut: nil, order: order, peak: Infinite}
	}
	peak := int64(Infinite)
	for _, e := range cut {
		if cand := e.peak + (sumL - t.F(int(e.node))); cand < peak {
			peak = cand
		}
	}
	return exploreResult{min: sumL, cut: cut, order: order, peak: peak}
}
