// Package traversal implements the MinMemory algorithms of Jacquelin,
// Marchal, Robert and Uçar (IPDPS 2011): the in-core feasibility checker
// (Algorithm 1), Liu's optimal postorder (1986), Liu's exact algorithm via
// generalized tree pebbling (1987), the paper's new exact MinMem/Explore
// algorithm (Algorithms 3–4), and brute-force oracles for small trees.
//
// All exported functions speak the out-tree (top-down) orientation: a
// traversal is a permutation of the nodes scheduling every node after its
// parent. The in-tree (bottom-up, multifrontal) orientation is obtained by
// reversing an order with tree.ReverseOrder; Section III-C of the paper
// shows the two views need exactly the same memory.
package traversal

import (
	"fmt"
	"math"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// Infinite is the sentinel memory value meaning "not reachable with any
// finite memory" (used for peaks of fully explored subtrees).
const Infinite = math.MaxInt64

// Result is the outcome of a MinMemory algorithm: the minimum main memory
// the algorithm certifies and a top-down traversal achieving it.
type Result struct {
	// Memory is the smallest memory for which Order is feasible (and, for
	// the exact algorithms, for which any traversal is feasible).
	Memory int64
	// Order is a top-down traversal whose peak memory is exactly Memory.
	Order []int
}

// CheckInCore is Algorithm 1 of the paper: it verifies that order is a
// feasible top-down traversal of t within memory M, i.e. that precedence
// constraints hold and that memory never overflows. It returns nil on
// success and a descriptive error otherwise.
func CheckInCore(t *tree.Tree, order []int, m int64) error {
	peak, err := Peak(t, order)
	if err != nil {
		return err
	}
	if peak > m {
		return fmt.Errorf("traversal: peak memory %d exceeds M=%d", peak, m)
	}
	return nil
}

// Peak computes the exact memory high-water mark of a top-down traversal:
// the smallest M for which CheckInCore succeeds. It errors if order is not a
// valid top-down traversal (wrong length, duplicates, or a node scheduled
// before its parent). The accounting is the unified simulator of the
// schedule package, shared with the out-of-core side.
func Peak(t *tree.Tree, order []int) (int64, error) {
	sim, err := schedule.Simulate(t, order, schedule.Config{})
	if err != nil {
		return 0, err
	}
	return sim.Peak, nil
}

// PeakBottomUp computes the memory high-water mark of a bottom-up (in-tree)
// traversal: children files are resident until their parent executes,
// which replaces them by the parent's file. It errors if order is not a
// valid bottom-up traversal. By the reversal lemma of Section III-C,
// PeakBottomUp(t, order) == Peak(t, tree.ReverseOrder(order)).
func PeakBottomUp(t *tree.Tree, order []int) (int64, error) {
	sim, err := schedule.Simulate(t, order, schedule.Config{Direction: schedule.BottomUp})
	if err != nil {
		return 0, err
	}
	return sim.Peak, nil
}

// maxInt64 returns the larger of a and b.
func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
