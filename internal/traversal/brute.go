package traversal

import (
	"container/heap"
	"fmt"
	"math/bits"

	"repro/internal/tree"
)

// BruteForceLimit is the largest tree BruteForce accepts: frontier states
// are encoded as 64-bit masks.
const BruteForceLimit = 63

// qitem is a prioritized frontier state for BruteForce.
type qitem struct {
	state uint64
	cost  int64
}

type bottleneckHeap []qitem

func (h bottleneckHeap) Len() int           { return len(h) }
func (h bottleneckHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h bottleneckHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *bottleneckHeap) Push(x interface{}) {
	*h = append(*h, x.(qitem))
}
func (h *bottleneckHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BruteForce computes the exact MinMemory value by a bottleneck-shortest-
// path search over frontier states (the set of scheduled-but-unprocessed
// nodes). It is exponential in the worst case and restricted to trees with
// at most BruteForceLimit nodes; use it as a ground-truth oracle in tests.
func BruteForce(t *tree.Tree) (Result, error) {
	p := t.Len()
	if p > BruteForceLimit {
		return Result{}, fmt.Errorf("traversal: brute force limited to %d nodes, got %d", BruteForceLimit, p)
	}
	// State: bitmask of frontier nodes. Start: {root}. Goal: empty set.
	// Transition: process node i in the frontier; the peak of the step is
	// Σ_{frontier} f + n_i + Σ_{children(i)} f. Minimize the maximum peak
	// along the path (bottleneck Dijkstra).
	start := uint64(1) << uint(t.Root())
	childMask := make([]uint64, p)
	childSum := make([]int64, p)
	for i := 0; i < p; i++ {
		for k := 0; k < t.NumChildren(i); k++ {
			c := t.Child(i, k)
			childMask[i] |= uint64(1) << uint(c)
			childSum[i] += t.F(c)
		}
	}
	best := map[uint64]int64{start: 0}
	frontSum := map[uint64]int64{start: t.F(t.Root())}
	prev := map[uint64]uint64{}
	prevNode := map[uint64]int{}
	pq := &bottleneckHeap{{start, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(qitem)
		if it.cost > best[it.state] {
			continue
		}
		if it.state == 0 {
			// Walk predecessor links back to the start state; each link
			// undoes exactly one node execution, so p steps suffice.
			order := make([]int, 0, p)
			s := uint64(0)
			for len(order) < p {
				order = append(order, prevNode[s])
				s = prev[s]
			}
			return Result{Memory: it.cost, Order: tree.ReverseOrder(order)}, nil
		}
		fs := frontSum[it.state]
		rem := it.state
		for rem != 0 {
			i := bits.TrailingZeros64(rem)
			rem &= rem - 1
			peak := fs + t.N(i) + childSum[i]
			nc := maxInt64(it.cost, peak)
			ns := it.state&^(uint64(1)<<uint(i)) | childMask[i]
			if old, ok := best[ns]; !ok || nc < old {
				best[ns] = nc
				frontSum[ns] = fs - t.F(i) + childSum[i]
				prev[ns] = it.state
				prevNode[ns] = i
				heap.Push(pq, qitem{ns, nc})
			}
		}
	}
	return Result{}, fmt.Errorf("traversal: brute force found no traversal (unreachable)")
}

// EnumerateMinMemory exhaustively enumerates every topological (top-down)
// traversal of t and returns the minimum peak. Only intended for very small
// trees (≤ 12 nodes) as an independent oracle for BruteForce itself.
func EnumerateMinMemory(t *tree.Tree) (int64, error) {
	const limit = 12
	if t.Len() > limit {
		return 0, fmt.Errorf("traversal: enumeration limited to %d nodes, got %d", limit, t.Len())
	}
	best := int64(Infinite)
	frontier := []int{t.Root()}
	readySum := t.F(t.Root())
	var rec func(done int, cur int64)
	rec = func(done int, cur int64) {
		if cur >= best {
			return // prune: the bottleneck cannot improve along this branch
		}
		if done == t.Len() {
			best = cur
			return
		}
		for idx := 0; idx < len(frontier); idx++ {
			i := frontier[idx]
			peak := readySum + t.N(i) + t.ChildFileSum(i)
			savedFrontier := make([]int, len(frontier))
			copy(savedFrontier, frontier)
			savedSum := readySum
			frontier = append(frontier[:idx], frontier[idx+1:]...)
			frontier = t.Children(i, frontier)
			readySum += t.ChildFileSum(i) - t.F(i)
			rec(done+1, maxInt64(cur, peak))
			frontier = savedFrontier
			readySum = savedSum
		}
	}
	rec(0, 0)
	return best, nil
}
