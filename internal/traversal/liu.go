package traversal

import (
	"repro/internal/hillvalley"
	"repro/internal/tree"
)

// LiuExact implements Liu's exact MinMemory algorithm (Liu, "An application
// of generalized tree pebbling to sparse matrix factorization", SIAM
// J. Algebraic Discrete Methods 8(3), 1987), the reference algorithm the
// paper compares MinMem against.
//
// Every subtree is summarized by its hill–valley profile: the canonical
// decomposition of the optimal traversal's memory curve into segments
// (h₁,v₁),…,(h_k,v_k) with non-increasing hills h and non-decreasing
// valleys v. Children profiles are combined by a multi-way merge of their
// segments in non-increasing (h−v) order — Liu's theorem shows this
// interleaving is optimal — followed by the node's own assembly step and
// re-canonicalization. The minimum memory of the whole tree is the first
// hill of the root profile. Worst-case complexity O(p²).
//
// The profile machinery lives in the shared internal/hillvalley kernel
// (heap-based k-way merge over pooled arenas); this function adapts it to
// the package's Result type. The computation runs in the bottom-up
// (in-tree) view and the resulting traversal is reversed, so the returned
// Result is top-down like the other algorithms.
func LiuExact(t *tree.Tree) Result {
	mem, order := hillvalley.Exact(t)
	return Result{Memory: mem, Order: tree.ReverseOrder(order)}
}

// ProfileSegment is one canonical hill–valley segment of a subtree's memory
// profile under an optimal traversal: memory rises to Hill during the
// segment and can be parked at Valley when it ends. It is the kernel's
// segment type.
type ProfileSegment = hillvalley.Segment

// LiuProfile exposes Liu's canonical hill–valley decomposition for the
// whole tree (bottom-up view): hills are non-increasing, valleys
// non-decreasing, the first hill is the tree's minimum memory and the last
// valley is the root's retained file. It is the certificate structure
// behind LiuExact.
func LiuProfile(t *tree.Tree) []ProfileSegment {
	return hillvalley.Profile(t)
}
