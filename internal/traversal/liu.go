package traversal

import (
	"sort"

	"repro/internal/tree"
)

// LiuExact implements Liu's exact MinMemory algorithm (Liu, "An application
// of generalized tree pebbling to sparse matrix factorization", SIAM
// J. Algebraic Discrete Methods 8(3), 1987), the reference algorithm the
// paper compares MinMem against.
//
// Every subtree is summarized by its hill–valley profile: the canonical
// decomposition of the optimal traversal's memory curve into segments
// (h₁,v₁),…,(h_k,v_k) with non-increasing hills h and non-decreasing
// valleys v. Children profiles are combined by a multi-way merge of their
// segments in non-increasing (h−v) order — Liu's theorem shows this
// interleaving is optimal — followed by the node's own assembly step and
// re-canonicalization. The minimum memory of the whole tree is the first
// hill of the root profile. Worst-case complexity O(p²).
//
// The computation runs in the bottom-up (in-tree) view and the resulting
// traversal is reversed, so the returned Result is top-down like the other
// algorithms.
func LiuExact(t *tree.Tree) Result {
	p := t.Len()
	profiles := make([][]segment, p)
	for _, v := range t.Postorder() {
		profiles[v] = liuCombine(t, v, profiles)
	}
	root := profiles[t.Root()]
	// Hill of the first canonical segment is the subtree's minimum memory.
	mem := root[0].hill
	order := make([]int, 0, p)
	for _, s := range root {
		order = s.nodes.appendTo(order)
	}
	return Result{Memory: mem, Order: tree.ReverseOrder(order)}
}

// ProfileSegment is one canonical hill–valley segment of a subtree's memory
// profile under an optimal traversal: memory rises to Hill during the
// segment and can be parked at Valley when it ends.
type ProfileSegment struct {
	Hill   int64
	Valley int64
}

// LiuProfile exposes Liu's canonical hill–valley decomposition for the
// whole tree (bottom-up view): hills are non-increasing, valleys
// non-decreasing, the first hill is the tree's minimum memory and the last
// valley is the root's retained file. It is the certificate structure
// behind LiuExact.
func LiuProfile(t *tree.Tree) []ProfileSegment {
	profiles := make([][]segment, t.Len())
	for _, v := range t.Postorder() {
		profiles[v] = liuCombine(t, v, profiles)
	}
	root := profiles[t.Root()]
	out := make([]ProfileSegment, len(root))
	for i, s := range root {
		out[i] = ProfileSegment{Hill: s.hill, Valley: s.valley}
	}
	return out
}

// segment is one hill–valley segment of a memory profile, together with the
// nodes executed during it (as a rope, to keep concatenation cheap).
type segment struct {
	hill   int64
	valley int64
	nodes  *rope
}

// liuCombine builds the canonical profile of the subtree rooted at v given
// the profiles of its children, releasing the children profiles.
func liuCombine(t *tree.Tree, v int, profiles [][]segment) []segment {
	nc := t.NumChildren(v)
	if nc == 0 {
		return []segment{{hill: t.MemReq(v), valley: t.F(v), nodes: leafRope(v)}}
	}
	// Gather all children segments, tagged with their child of origin, in
	// child order. Within one child, (h−v) is non-increasing by canonical
	// construction, so a stable sort on decreasing (h−v) preserves each
	// child's internal order — this is the multi-way merge.
	type tagged struct {
		seg   segment
		child int32
	}
	var all []tagged
	for k := 0; k < nc; k++ {
		c := t.Child(v, k)
		for _, s := range profiles[c] {
			all = append(all, tagged{s, int32(c)})
		}
		profiles[c] = nil // release
	}
	sort.SliceStable(all, func(a, b int) bool {
		sa, sb := all[a].seg, all[b].seg
		return sa.hill-sa.valley > sb.hill-sb.valley
	})
	// Replay the merged segments, tracking each child's current valley to
	// turn subtree-local hills into absolute peaks.
	cur := make(map[int32]int64, nc)
	var base int64 // Σ current valleys over all children
	raw := make([]segment, 0, len(all)+1)
	for _, ts := range all {
		prev := cur[ts.child]
		peakAbs := base - prev + ts.seg.hill
		base += ts.seg.valley - prev
		cur[ts.child] = ts.seg.valley
		raw = append(raw, segment{hill: peakAbs, valley: base, nodes: ts.seg.nodes})
	}
	// The node's own step: all children files resident (base = Σ f_c), plus
	// f(v) and n(v); afterwards only f(v) remains.
	raw = append(raw, segment{hill: base + t.F(v) + t.N(v), valley: t.F(v), nodes: leafRope(v)})
	return canonicalize(raw)
}

// canonicalize turns an execution-ordered list of (peak, end-valley)
// segments into the canonical hill–valley form: hills are suffix maxima,
// valleys the suffix minima that follow them. Segment node lists are
// concatenated accordingly.
func canonicalize(raw []segment) []segment {
	m := len(raw)
	// First index of the suffix maximum hill and of the suffix minimum
	// valley, computed right to left so the whole pass is O(m).
	hillIdx := make([]int32, m)
	valIdx := make([]int32, m)
	hillIdx[m-1], valIdx[m-1] = int32(m-1), int32(m-1)
	for i := m - 2; i >= 0; i-- {
		if raw[i].hill >= raw[hillIdx[i+1]].hill {
			hillIdx[i] = int32(i)
		} else {
			hillIdx[i] = hillIdx[i+1]
		}
		if raw[i].valley <= raw[valIdx[i+1]].valley {
			valIdx[i] = int32(i)
		} else {
			valIdx[i] = valIdx[i+1]
		}
	}
	out := make([]segment, 0, 4)
	i := 0
	for i < m {
		// Canonical hill: max peak over the suffix, at its first occurrence
		// a. Canonical valley: min end-valley at or after a, at its first
		// occurrence b. Segments [i, b] collapse into one canonical segment.
		a := int(hillIdx[i])
		b := int(valIdx[a])
		nodes := raw[i].nodes
		for j := i + 1; j <= b; j++ {
			nodes = concatRopes(nodes, raw[j].nodes)
		}
		out = append(out, segment{hill: raw[a].hill, valley: raw[b].valley, nodes: nodes})
		i = b + 1
	}
	return out
}

// rope is an immutable concatenation tree over node IDs; it makes profile
// merging O(1) per concatenation and flattening O(total nodes).
type rope struct {
	leafVal     int32
	isLeaf      bool
	left, right *rope
}

func leafRope(v int) *rope { return &rope{leafVal: int32(v), isLeaf: true} }

func concatRopes(a, b *rope) *rope {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &rope{left: a, right: b}
}

// appendTo flattens the rope into dst in left-to-right order.
func (r *rope) appendTo(dst []int) []int {
	if r == nil {
		return dst
	}
	// Explicit stack: ropes can be deep on chain-like trees.
	stack := []*rope{r}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.isLeaf {
			dst = append(dst, int(cur.leafVal))
			continue
		}
		// Push right first so left is emitted first.
		if cur.right != nil {
			stack = append(stack, cur.right)
		}
		if cur.left != nil {
			stack = append(stack, cur.left)
		}
	}
	return dst
}
