package traversal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// sample is a small tree with a known optimal traversal.
func sample(t *testing.T) *tree.Tree {
	t.Helper()
	parent := []int{tree.NoParent, 0, 0, 1, 1, 2, 3, 5}
	f := []int64{0, 4, 2, 3, 1, 5, 2, 6}
	n := []int64{1, 2, 0, 1, 3, 2, 1, 0}
	return tree.MustNew(parent, f, n)
}

func randomTree(seed int64, nodes int, kind tree.AttachKind) *tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tree.RandomOptions{Nodes: nodes, MaxF: 20, MaxN: 8, Attach: kind})
	if err != nil {
		panic(err)
	}
	return tr
}

func TestPeakSimple(t *testing.T) {
	// Chain 0→1→2 with f = 1,2,3 and n = 0: top-down steps:
	// step 0: f0 resident (1), creates f1: peak = 1+0+2 = 3
	// step 1: f1 resident (2), creates f2: peak = 2+0+3 = 5
	// step 2: f2 resident (3): peak = 3
	ch, err := tree.Chain([]int64{1, 2, 3}, []int64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	peak, err := Peak(ch, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if peak != 5 {
		t.Fatalf("Peak = %d, want 5", peak)
	}
	// Bottom-up view: process 2 (3), then 1 (3+2), then 0 (2+1).
	bu, err := PeakBottomUp(ch, []int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if bu != 5 {
		t.Fatalf("PeakBottomUp = %d, want 5", bu)
	}
}

func TestPeakRejectsBadOrders(t *testing.T) {
	tr := sample(t)
	if _, err := Peak(tr, []int{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := Peak(tr, []int{1, 0, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Fatal("precedence violation accepted")
	}
	if _, err := PeakBottomUp(tr, tr.TopDown()); err == nil {
		t.Fatal("top-down order accepted as bottom-up")
	}
}

func TestCheckInCore(t *testing.T) {
	tr := sample(t)
	res := MinMem(tr)
	if err := CheckInCore(tr, res.Order, res.Memory); err != nil {
		t.Fatalf("MinMem order infeasible at its own memory: %v", err)
	}
	if err := CheckInCore(tr, res.Order, res.Memory-1); err == nil {
		t.Fatal("order feasible below optimal memory")
	}
}

// All four algorithms agree on the optimum, and PostOrder is an upper bound.
func TestAlgorithmsAgreeSample(t *testing.T) {
	tr := sample(t)
	bf, err := BruteForce(tr)
	if err != nil {
		t.Fatal(err)
	}
	en, err := EnumerateMinMemory(tr)
	if err != nil {
		t.Fatal(err)
	}
	mm := MinMem(tr)
	liu := LiuExact(tr)
	po := BestPostOrder(tr)
	if bf.Memory != en {
		t.Fatalf("BruteForce %d != Enumerate %d", bf.Memory, en)
	}
	if mm.Memory != bf.Memory {
		t.Fatalf("MinMem %d != optimal %d", mm.Memory, bf.Memory)
	}
	if liu.Memory != bf.Memory {
		t.Fatalf("Liu %d != optimal %d", liu.Memory, bf.Memory)
	}
	if po.Memory < bf.Memory {
		t.Fatalf("PostOrder %d below optimal %d", po.Memory, bf.Memory)
	}
	for name, r := range map[string]Result{"minmem": mm, "liu": liu, "postorder": po, "brute": bf} {
		peak, err := Peak(tr, r.Order)
		if err != nil {
			t.Fatalf("%s: invalid order: %v", name, err)
		}
		if peak != r.Memory {
			t.Fatalf("%s: order peak %d != claimed %d", name, peak, r.Memory)
		}
	}
}

func TestSingleNode(t *testing.T) {
	tr := tree.MustNew([]int{tree.NoParent}, []int64{5}, []int64{3})
	for name, got := range map[string]int64{
		"minmem":    MinMem(tr).Memory,
		"liu":       LiuExact(tr).Memory,
		"postorder": BestPostOrder(tr).Memory,
	} {
		if got != 8 {
			t.Fatalf("%s on single node = %d, want 8", name, got)
		}
	}
}

func TestChainTrees(t *testing.T) {
	// On a chain the only traversal is the chain itself; optimal memory is
	// max over consecutive pairs of f_i + n_i + f_{i+1}.
	f := []int64{2, 7, 1, 9, 4}
	n := []int64{1, 0, 3, 0, 2}
	ch, err := tree.Chain(f, n)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 4; i++ {
		want = maxInt64(want, f[i]+n[i]+f[i+1])
	}
	want = maxInt64(want, f[4]+n[4])
	for name, got := range map[string]int64{
		"minmem":    MinMem(ch).Memory,
		"liu":       LiuExact(ch).Memory,
		"postorder": BestPostOrder(ch).Memory,
	} {
		if got != want {
			t.Fatalf("%s on chain = %d, want %d", name, got, want)
		}
	}
}

// The harpoon trees of Theorem 1 have closed-form optimal and postorder
// memory; the implementations must match them exactly.
func TestTheorem1Harpoons(t *testing.T) {
	for _, tc := range []struct {
		b, l   int
		m, eps int64
	}{
		{2, 1, 8, 1}, {3, 1, 30, 1}, {4, 1, 40, 2},
		{2, 2, 16, 1}, {3, 2, 30, 1}, {2, 3, 32, 1}, {3, 3, 60, 2},
	} {
		h, err := tree.NestedHarpoon(tc.b, tc.l, tc.m, tc.eps)
		if err != nil {
			t.Fatal(err)
		}
		wantOpt := tree.HarpoonOptimalMemory(tc.b, tc.l, tc.m, tc.eps)
		wantPO := tree.HarpoonPostOrderMemory(tc.b, tc.l, tc.m, tc.eps)
		mm := MinMem(h)
		liu := LiuExact(h)
		po := BestPostOrder(h)
		if mm.Memory != wantOpt {
			t.Errorf("b=%d L=%d: MinMem=%d want %d", tc.b, tc.l, mm.Memory, wantOpt)
		}
		if liu.Memory != wantOpt {
			t.Errorf("b=%d L=%d: Liu=%d want %d", tc.b, tc.l, liu.Memory, wantOpt)
		}
		if po.Memory != wantPO {
			t.Errorf("b=%d L=%d: PostOrder=%d want %d", tc.b, tc.l, po.Memory, wantPO)
		}
	}
}

// Theorem 1: the postorder-to-optimal ratio is unbounded in L.
func TestTheorem1RatioGrows(t *testing.T) {
	prev := 0.0
	for l := 1; l <= 5; l++ {
		h, err := tree.NestedHarpoon(4, l, 400, 1)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(BestPostOrder(h).Memory) / float64(MinMem(h).Memory)
		if ratio <= prev {
			t.Fatalf("ratio did not grow at L=%d: %f ≤ %f", l, ratio, prev)
		}
		prev = ratio
	}
	if prev < 2.5 {
		t.Fatalf("ratio at L=5 only %f; expected well above 2.5", prev)
	}
}

// Cross-validation of all algorithms on random trees against brute force.
func TestAlgorithmsAgreeRandom(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		nodes := 2 + int(seed%14)
		kind := tree.AttachKind(seed % 3)
		tr := randomTree(seed, nodes, kind)
		bf, err := BruteForce(tr)
		if err != nil {
			t.Fatal(err)
		}
		mm := MinMem(tr)
		liu := LiuExact(tr)
		po := BestPostOrder(tr)
		np := NaturalPostOrder(tr)
		if mm.Memory != bf.Memory {
			t.Fatalf("seed %d: MinMem=%d optimal=%d", seed, mm.Memory, bf.Memory)
		}
		if liu.Memory != bf.Memory {
			t.Fatalf("seed %d: Liu=%d optimal=%d", seed, liu.Memory, bf.Memory)
		}
		if po.Memory < bf.Memory {
			t.Fatalf("seed %d: PostOrder=%d below optimal=%d", seed, po.Memory, bf.Memory)
		}
		if np.Memory < po.Memory {
			t.Fatalf("seed %d: natural postorder %d beats best postorder %d", seed, np.Memory, po.Memory)
		}
		for name, r := range map[string]Result{"minmem": mm, "liu": liu, "postorder": po} {
			peak, err := Peak(tr, r.Order)
			if err != nil {
				t.Fatalf("seed %d %s: invalid order: %v", seed, name, err)
			}
			if peak != r.Memory {
				t.Fatalf("seed %d %s: peak %d != claimed %d", seed, name, peak, r.Memory)
			}
		}
	}
}

// Larger random trees: exact algorithms agree with each other (no brute
// force available) and their traversals achieve the claimed memory.
func TestExactAlgorithmsAgreeLarge(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		nodes := 300 + int(seed)*137
		tr := randomTree(seed+1000, nodes, tree.AttachKind(seed%3))
		mm := MinMem(tr)
		liu := LiuExact(tr)
		po := BestPostOrder(tr)
		if mm.Memory != liu.Memory {
			t.Fatalf("seed %d: MinMem=%d Liu=%d", seed, mm.Memory, liu.Memory)
		}
		if po.Memory < mm.Memory {
			t.Fatalf("seed %d: postorder below optimal", seed)
		}
		for name, r := range map[string]Result{"minmem": mm, "liu": liu, "postorder": po} {
			peak, err := Peak(tr, r.Order)
			if err != nil || peak != r.Memory {
				t.Fatalf("seed %d %s: peak=%d claimed=%d err=%v", seed, name, peak, r.Memory, err)
			}
		}
	}
}

// Property: the reversal lemma of Section III-C — peak of a bottom-up order
// equals the peak of its reversed top-down order.
func TestQuickReversalLemma(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(9))}
	prop := func(seed int64, p uint8, kind uint8) bool {
		tr := randomTree(seed, 1+int(p%80), tree.AttachKind(kind%3))
		bu := tr.Postorder()
		a, err1 := PeakBottomUp(tr, bu)
		b, err2 := Peak(tr, tree.ReverseOrder(bu))
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: MinMem == Liu on random trees, and postorder sandwiched between
// optimal and natural postorder.
func TestQuickExactEquality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}
	prop := func(seed int64, p uint8, kind uint8) bool {
		tr := randomTree(seed, 1+int(p%120), tree.AttachKind(kind%3))
		mm := MinMem(tr)
		liu := LiuExact(tr)
		po := BestPostOrder(tr)
		np := NaturalPostOrder(tr)
		return mm.Memory == liu.Memory && po.Memory >= mm.Memory && np.Memory >= po.Memory
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: MinMem on the replacement-model transform matches brute force
// (exercises negative execution files).
func TestQuickReplacementModel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}
	prop := func(seed int64, p uint8) bool {
		base := randomTree(seed, 2+int(p%10), tree.AttachUniform)
		tr, err := tree.FromReplacementModel(base.ParentVector(), base.FVector())
		if err != nil {
			return false
		}
		bf, err := BruteForce(tr)
		if err != nil {
			return false
		}
		return MinMem(tr).Memory == bf.Memory && LiuExact(tr).Memory == bf.Memory
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExploreReportsPartialState(t *testing.T) {
	tr := sample(t)
	opt := MinMem(tr).Memory
	// Explore with insufficient memory must stall with a finite peak and a
	// frontier strictly inside the tree.
	minMem, frontier, order, peak := Explore(tr, tr.MaxMemReq())
	if opt > tr.MaxMemReq() {
		if peak == Infinite {
			t.Fatal("Explore claims completion below optimal memory")
		}
		if len(frontier) == 0 {
			t.Fatal("stalled Explore returned empty frontier")
		}
		if minMem <= 0 {
			t.Fatal("stalled Explore returned nonpositive frontier memory")
		}
	}
	// Explore with the optimal memory must finish.
	minMem2, frontier2, order2, peak2 := Explore(tr, opt)
	if peak2 != Infinite || len(frontier2) != 0 || minMem2 != 0 {
		t.Fatalf("Explore(opt) did not finish: min=%d cut=%v peak=%d", minMem2, frontier2, peak2)
	}
	if len(order2) != tr.Len() {
		t.Fatalf("Explore(opt) traversal has %d nodes, want %d", len(order2), tr.Len())
	}
	_ = order
}

func TestBruteForceRejectsLargeTrees(t *testing.T) {
	tr := randomTree(1, BruteForceLimit+1, tree.AttachUniform)
	if _, err := BruteForce(tr); err == nil {
		t.Fatal("BruteForce accepted oversized tree")
	}
	if _, err := EnumerateMinMemory(tr); err == nil {
		t.Fatal("EnumerateMinMemory accepted oversized tree")
	}
}

// BruteForce against full enumeration on tiny trees.
func TestBruteForceMatchesEnumeration(t *testing.T) {
	for seed := int64(200); seed < 240; seed++ {
		tr := randomTree(seed, 2+int(seed%8), tree.AttachKind(seed%3))
		bf, err := BruteForce(tr)
		if err != nil {
			t.Fatal(err)
		}
		en, err := EnumerateMinMemory(tr)
		if err != nil {
			t.Fatal(err)
		}
		if bf.Memory != en {
			t.Fatalf("seed %d: BruteForce=%d Enumerate=%d", seed, bf.Memory, en)
		}
	}
}

// The PostOrder lower bound: on trees where every node has at most one
// child (chains), all algorithms coincide.
func TestQuickChainCoincidence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(23))}
	prop := func(seed int64, p uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + int(p%40)
		f := make([]int64, nodes)
		n := make([]int64, nodes)
		for i := range f {
			f[i] = 1 + rng.Int63n(30)
			n[i] = rng.Int63n(10)
		}
		ch, err := tree.Chain(f, n)
		if err != nil {
			return false
		}
		mm := MinMem(ch)
		return mm.Memory == LiuExact(ch).Memory && mm.Memory == BestPostOrder(ch).Memory
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
