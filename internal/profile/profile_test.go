package profile

import (
	"math"
	"strings"
	"testing"
)

func TestComputeBasic(t *testing.T) {
	tbl := Table{
		Methods: []string{"a", "b"},
		Costs: [][]float64{
			{1, 2, 4},
			{2, 2, 2},
		},
	}
	curves, err := Compute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Best costs: 1, 2, 2.
	// a ratios: 1, 1, 2 — b ratios: 2, 1, 1.
	a, b := curves[0], curves[1]
	if got := a.Fraction(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("a.Fraction(1) = %f", got)
	}
	if got := b.Fraction(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("b.Fraction(1) = %f", got)
	}
	if got := a.Fraction(2); got != 1 {
		t.Fatalf("a.Fraction(2) = %f", got)
	}
	if got := a.Fraction(1.5); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("a.Fraction(1.5) = %f", got)
	}
	if a.MaxRatio() != 2 {
		t.Fatalf("a.MaxRatio = %f", a.MaxRatio())
	}
}

func TestComputeZerosAndFailures(t *testing.T) {
	inf := math.Inf(1)
	tbl := Table{
		Methods: []string{"a", "b"},
		Costs: [][]float64{
			{0, 0, inf},
			{0, 5, 1},
		},
	}
	curves, err := Compute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	a, b := curves[0], curves[1]
	// a: instance 0 ratio 1, instance 1 ratio 1 (0 vs best 0), instance 2
	// failure → excluded. Fraction at any tau tops out at 2/3.
	if got := a.Fraction(1e9); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("a.Fraction(∞) = %f", got)
	}
	// b: instance 0 ratio 1, instance 1 positive vs zero best → excluded,
	// instance 2 ratio 1.
	if got := b.Fraction(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("b.Fraction(1) = %f", got)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(Table{}); err == nil {
		t.Fatal("empty table accepted")
	}
	if _, err := Compute(Table{Methods: []string{"a"}, Costs: [][]float64{{}}}); err == nil {
		t.Fatal("zero instances accepted")
	}
	if _, err := Compute(Table{Methods: []string{"a", "b"}, Costs: [][]float64{{1}, {1, 2}}}); err == nil {
		t.Fatal("ragged costs accepted")
	}
	if _, err := Compute(Table{Methods: []string{"a"}, Costs: [][]float64{{-1}}}); err == nil {
		t.Fatal("negative cost accepted")
	}
	if _, err := Compute(Table{Methods: []string{"a"}, Costs: [][]float64{{math.NaN()}}}); err == nil {
		t.Fatal("NaN cost accepted")
	}
}

func TestSummarize(t *testing.T) {
	tbl := Table{
		Methods: []string{"a", "b"},
		Costs: [][]float64{
			{1, 1, 1, 1},
			{1, 1, 1.5, 2},
		},
	}
	curves, err := Compute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	sa := Summarize(curves[0])
	if sa.FractionBest != 1 || sa.Max != 1 || sa.Mean != 1 || sa.StdDev != 0 {
		t.Fatalf("stats a = %+v", sa)
	}
	sb := Summarize(curves[1])
	if math.Abs(sb.FractionBest-0.5) > 1e-12 {
		t.Fatalf("b fraction best = %f", sb.FractionBest)
	}
	if sb.Max != 2 {
		t.Fatalf("b max = %f", sb.Max)
	}
	if math.Abs(sb.Mean-1.375) > 1e-12 {
		t.Fatalf("b mean = %f", sb.Mean)
	}
	empty := Summarize(Curve{Method: "x", N: 3})
	if empty.Max != 0 || empty.FractionBest != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestRender(t *testing.T) {
	tbl := Table{
		Methods: []string{"fast", "slow"},
		Costs:   [][]float64{{1, 1, 1}, {3, 2, 1}},
	}
	curves, err := Compute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(curves, 40, 10, 3)
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "fraction of test cases") {
		t.Fatal("axis label missing")
	}
	// Degenerate sizes are clamped, not panicking.
	_ = Render(curves, 1, 1, 0.5)
}

func TestWriteCSV(t *testing.T) {
	tbl := Table{
		Methods: []string{"a,comma", "b"},
		Costs:   [][]float64{{1, 2}, {2, 2}},
	}
	curves, err := Compute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, curves, []float64{1, 1.5, 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "tau,a;comma,b") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[3], "2,1.0000,1.0000") {
		t.Fatalf("bad last row %q", lines[3])
	}
}
