// Package profile implements Dolan–Moré performance profiles, the
// evaluation tool used throughout Section VI of the paper. A profile plots,
// for each method, the fraction of test cases on which the method's cost is
// within a factor τ of the best cost achieved by any method.
package profile

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table collects the raw costs: Costs[m][i] is the cost of method m on
// instance i. Use math.Inf(1) for failures. Lower is better. Costs of zero
// are allowed: an instance where every method scores zero counts as ratio 1
// for all; a method scoring positive where the best is zero gets ratio +Inf.
type Table struct {
	Methods []string
	Costs   [][]float64
}

// Curve is the cumulative profile of one method: Ratios are sorted
// per-instance ratios to the best method (failures excluded), N the total
// instance count.
type Curve struct {
	Method string
	Ratios []float64
	N      int
}

// Compute builds one curve per method. It errors on ragged or empty input,
// or on negative costs.
func Compute(tbl Table) ([]Curve, error) {
	if len(tbl.Methods) == 0 || len(tbl.Costs) != len(tbl.Methods) {
		return nil, fmt.Errorf("profile: need one cost row per method (%d methods, %d rows)", len(tbl.Methods), len(tbl.Costs))
	}
	n := len(tbl.Costs[0])
	if n == 0 {
		return nil, fmt.Errorf("profile: no instances")
	}
	for m := range tbl.Costs {
		if len(tbl.Costs[m]) != n {
			return nil, fmt.Errorf("profile: method %q has %d costs, want %d", tbl.Methods[m], len(tbl.Costs[m]), n)
		}
		for i, c := range tbl.Costs[m] {
			if c < 0 || math.IsNaN(c) {
				return nil, fmt.Errorf("profile: method %q instance %d has invalid cost %v", tbl.Methods[m], i, c)
			}
		}
	}
	best := make([]float64, n)
	for i := 0; i < n; i++ {
		best[i] = math.Inf(1)
		for m := range tbl.Costs {
			if tbl.Costs[m][i] < best[i] {
				best[i] = tbl.Costs[m][i]
			}
		}
	}
	curves := make([]Curve, len(tbl.Methods))
	for m := range tbl.Costs {
		ratios := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			c := tbl.Costs[m][i]
			var r float64
			switch {
			case math.IsInf(c, 1):
				continue // failure: never within any τ
			case best[i] == 0 && c == 0:
				r = 1
			case best[i] == 0:
				continue // positive vs zero best: unbounded ratio
			default:
				r = c / best[i]
			}
			ratios = append(ratios, r)
		}
		sort.Float64s(ratios)
		curves[m] = Curve{Method: tbl.Methods[m], Ratios: ratios, N: n}
	}
	return curves, nil
}

// Fraction returns the fraction of instances whose ratio is ≤ tau.
func (c Curve) Fraction(tau float64) float64 {
	k := sort.SearchFloat64s(c.Ratios, math.Nextafter(tau, math.Inf(1)))
	return float64(k) / float64(c.N)
}

// MaxRatio returns the largest finite ratio of the curve (1 if empty).
func (c Curve) MaxRatio() float64 {
	if len(c.Ratios) == 0 {
		return 1
	}
	return c.Ratios[len(c.Ratios)-1]
}

// Stats summarizes a curve the way Tables I and II of the paper do.
type Stats struct {
	// FractionBest is the fraction of instances where the method achieved
	// the best cost (ratio 1).
	FractionBest float64
	// Max, Mean and StdDev describe the ratio distribution over instances
	// the method completed.
	Max, Mean, StdDev float64
}

// Summarize computes Table-style statistics from a curve.
func Summarize(c Curve) Stats {
	st := Stats{FractionBest: c.Fraction(1)}
	if len(c.Ratios) == 0 {
		return st
	}
	var sum float64
	for _, r := range c.Ratios {
		sum += r
		if r > st.Max {
			st.Max = r
		}
	}
	st.Mean = sum / float64(len(c.Ratios))
	var v float64
	for _, r := range c.Ratios {
		v += (r - st.Mean) * (r - st.Mean)
	}
	st.StdDev = math.Sqrt(v / float64(len(c.Ratios)))
	return st
}

// Render draws the profiles as an ASCII chart over τ ∈ [1, maxTau] — the
// closest a terminal gets to Figures 5–9. Each method is assigned a marker
// character; overlapping points show the later method.
func Render(curves []Curve, width, height int, maxTau float64) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	if maxTau <= 1 {
		maxTau = 2
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range curves {
		mk := markers[ci%len(markers)]
		for col := 0; col < width; col++ {
			tau := 1 + (maxTau-1)*float64(col)/float64(width-1)
			frac := c.Fraction(tau)
			row := int(math.Round(float64(height-1) * (1 - frac)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mk
		}
	}
	var b strings.Builder
	b.WriteString("fraction of test cases\n")
	for r := 0; r < height; r++ {
		frac := 1 - float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", frac, string(grid[r]))
	}
	fmt.Fprintf(&b, "      +%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "      τ=1%sτ=%.2f\n", strings.Repeat(" ", width-10+1), maxTau)
	for ci, c := range curves {
		fmt.Fprintf(&b, "      %c %s\n", markers[ci%len(markers)], c.Method)
	}
	return b.String()
}

// WriteCSV emits "tau,method1,method2,…" rows for external plotting.
func WriteCSV(w io.Writer, curves []Curve, taus []float64) error {
	var b strings.Builder
	b.WriteString("tau")
	for _, c := range curves {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(c.Method, ",", ";"))
	}
	b.WriteString("\n")
	for _, tau := range taus {
		fmt.Fprintf(&b, "%g", tau)
		for _, c := range curves {
			fmt.Fprintf(&b, ",%.4f", c.Fraction(tau))
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
