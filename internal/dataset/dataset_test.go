package dataset

import (
	"strings"
	"testing"

	"repro/internal/traversal"
)

func TestAssemblySuiteSmall(t *testing.T) {
	insts, err := AssemblySuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	// 3 matrices × 2 orderings × 4 relax levels.
	if len(insts) != 3*2*len(RelaxLevels) {
		t.Fatalf("suite has %d instances, want %d", len(insts), 3*2*len(RelaxLevels))
	}
	seen := map[string]bool{}
	for _, inst := range insts {
		if seen[inst.Name] {
			t.Fatalf("duplicate instance name %s", inst.Name)
		}
		seen[inst.Name] = true
		if inst.Tree.Len() < 1 || inst.Tree.Len() > inst.N+1 {
			t.Fatalf("%s: tree has %d nodes for n=%d", inst.Name, inst.Tree.Len(), inst.N)
		}
		if !strings.Contains(inst.Name, inst.Ordering) {
			t.Fatalf("%s: name/ordering mismatch", inst.Name)
		}
		// Every tree must be traversable: the three algorithms agree.
		mm := traversal.MinMem(inst.Tree)
		liu := traversal.LiuExact(inst.Tree)
		po := traversal.BestPostOrder(inst.Tree)
		if mm.Memory != liu.Memory {
			t.Fatalf("%s: MinMem %d != Liu %d", inst.Name, mm.Memory, liu.Memory)
		}
		if po.Memory < mm.Memory {
			t.Fatalf("%s: postorder below optimal", inst.Name)
		}
	}
	// Determinism: a second call yields identical trees.
	again, err := AssemblySuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if insts[i].Name != again[i].Name || insts[i].Tree.Len() != again[i].Tree.Len() {
			t.Fatal("suite generation is not deterministic")
		}
		a, b := insts[i].Tree.FVector(), again[i].Tree.FVector()
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("%s: nondeterministic weights", insts[i].Name)
			}
		}
	}
}

func TestRelaxMonotonicallyCoarsens(t *testing.T) {
	insts, err := AssemblySuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Group by matrix/ordering; tree size must not grow with relax.
	size := map[string]int{}
	for _, inst := range insts {
		key := inst.MatrixName + "/" + inst.Ordering
		if prev, ok := size[key]; ok && inst.Tree.Len() > prev {
			t.Fatalf("%s: relax=%d grew the tree (%d > %d)", inst.Name, inst.Relax, inst.Tree.Len(), prev)
		}
		size[key] = inst.Tree.Len()
	}
}

func TestRandomWeightSuite(t *testing.T) {
	insts, err := AssemblySuite(Small)
	if err != nil {
		t.Fatal(err)
	}
	rw := RandomWeightSuite(insts[:4], 3)
	if len(rw) != 12 {
		t.Fatalf("random suite has %d instances, want 12", len(rw))
	}
	for i, inst := range rw {
		base := insts[i/3]
		if inst.Tree.Len() != base.Tree.Len() {
			t.Fatalf("%s: shape changed", inst.Name)
		}
		p := inst.Tree.Len()
		for k := 0; k < p; k++ {
			if inst.Tree.F(k) < 1 || inst.Tree.F(k) > int64(p) {
				t.Fatalf("%s: f out of range", inst.Name)
			}
		}
	}
	// Determinism.
	rw2 := RandomWeightSuite(insts[:4], 3)
	for i := range rw {
		a, b := rw[i].Tree.FVector(), rw2[i].Tree.FVector()
		for k := range a {
			if a[k] != b[k] {
				t.Fatal("random weight suite not deterministic")
			}
		}
	}
}

func TestMediumSuiteGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("medium suite in -short mode")
	}
	insts, err := AssemblySuite(Medium)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 8*2*len(RelaxLevels) {
		t.Fatalf("medium suite has %d instances", len(insts))
	}
}

func TestFullSuiteGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	insts, err := AssemblySuite(Full)
	if err != nil {
		t.Fatal(err)
	}
	// 28 matrices × 2 orderings × 4 relax levels.
	if len(insts) != 28*2*len(RelaxLevels) {
		t.Fatalf("full suite has %d instances, want %d", len(insts), 28*2*len(RelaxLevels))
	}
	// Sizes span the intended range and every family is present.
	families := map[string]bool{}
	maxN := 0
	for _, inst := range insts {
		for _, prefix := range []string{"grid2d", "grid3d", "rand", "band", "scalefree"} {
			if strings.HasPrefix(inst.MatrixName, prefix) {
				families[prefix] = true
			}
		}
		if inst.N > maxN {
			maxN = inst.N
		}
	}
	if len(families) != 5 {
		t.Fatalf("families missing: %v", families)
	}
	if maxN < 10000 {
		t.Fatalf("largest matrix only n=%d", maxN)
	}
}
