// Package dataset builds the benchmark instances of Section VI. The paper
// uses 291 University of Florida matrices ordered with MeTiS and amd, then
// amalgamated with 1, 2, 4 and 16 relaxations per node; this package
// substitutes a deterministic generator suite (grid Laplacians, banded and
// random symmetric patterns) ordered with the from-scratch minimum-degree
// and nested-dissection codes — see DESIGN.md for why the substitution
// preserves the experimental behaviour. All generation is deterministic.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/ordering"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/tree"
)

// Scale selects the suite size.
type Scale int

const (
	// Small is a seconds-fast suite for unit tests.
	Small Scale = iota
	// Medium is the default suite for benchmarks: a few minutes end to end.
	Medium
	// Full is the complete suite for regenerating the paper's figures.
	Full
)

// RelaxLevels are the amalgamation parameters of Section VI-B.
var RelaxLevels = []int{1, 2, 4, 16}

// Instance is one assembly tree with its provenance.
type Instance struct {
	// Name is "matrix/ordering/rN".
	Name string
	// MatrixName and N describe the source pattern.
	MatrixName string
	N          int
	// Ordering is "md" or "nd".
	Ordering string
	// Relax is the amalgamation level.
	Relax int
	// Tree is the weighted assembly tree.
	Tree *tree.Tree
}

// matrixSpec is a lazily generated source pattern.
type matrixSpec struct {
	name string
	gen  func() (*sparse.Matrix, error)
}

func matrixSuite(scale Scale) []matrixSpec {
	grid2 := func(k int) matrixSpec {
		return matrixSpec{fmt.Sprintf("grid2d-%d", k), func() (*sparse.Matrix, error) { return sparse.Grid2D(k, k) }}
	}
	grid3 := func(k int) matrixSpec {
		return matrixSpec{fmt.Sprintf("grid3d-%d", k), func() (*sparse.Matrix, error) { return sparse.Grid3D(k, k, k) }}
	}
	rnd := func(n int, deg float64, seed int64) matrixSpec {
		return matrixSpec{fmt.Sprintf("rand-%d-d%.1f", n, deg), func() (*sparse.Matrix, error) {
			m, err := sparse.RandomSymmetric(rand.New(rand.NewSource(seed)), n, deg)
			if err != nil {
				return nil, err
			}
			return m.Symmetrize(), nil
		}}
	}
	band := func(n, hb int) matrixSpec {
		return matrixSpec{fmt.Sprintf("band-%d-b%d", n, hb), func() (*sparse.Matrix, error) { return sparse.BandMatrix(n, hb) }}
	}
	sf := func(n, epn int, seed int64) matrixSpec {
		return matrixSpec{fmt.Sprintf("scalefree-%d-e%d", n, epn), func() (*sparse.Matrix, error) {
			return sparse.ScaleFree(rand.New(rand.NewSource(seed)), n, epn)
		}}
	}
	switch scale {
	case Small:
		return []matrixSpec{grid2(8), grid3(4), rnd(80, 2.5, 101)}
	case Medium:
		return []matrixSpec{
			grid2(16), grid2(24), grid2(32),
			grid3(6), grid3(8),
			rnd(400, 2.5, 101), rnd(800, 3, 102),
			band(600, 4),
		}
	default: // Full
		return []matrixSpec{
			grid2(20), grid2(28), grid2(36), grid2(44), grid2(52), grid2(64),
			grid2(80), grid2(96), grid2(112),
			grid3(6), grid3(8), grid3(10), grid3(12), grid3(14), grid3(16),
			rnd(500, 2.5, 101), rnd(1000, 2.5, 102), rnd(1500, 3, 103),
			rnd(2500, 3, 104), rnd(4000, 2.5, 105),
			band(1000, 5), band(2000, 8), band(3000, 16), band(5000, 24),
			sf(1000, 2, 201), sf(2000, 2, 202), sf(3000, 3, 203), sf(5000, 2, 204),
		}
	}
}

// AssemblySuite generates the assembly-tree instances: every matrix of the
// scale's suite, ordered with minimum degree and nested dissection, then
// amalgamated at every relax level.
func AssemblySuite(scale Scale) ([]Instance, error) {
	var out []Instance
	for _, spec := range matrixSuite(scale) {
		m, err := spec.gen()
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", spec.name, err)
		}
		orderings := []struct {
			name string
			perm func() ([]int, error)
		}{
			{"md", func() ([]int, error) { return ordering.MinimumDegree(m) }},
			{"nd", func() ([]int, error) {
				return ordering.NestedDissection(m, ordering.NestedDissectionOptions{LeafSize: 32})
			}},
		}
		for _, ord := range orderings {
			perm, err := ord.perm()
			if err != nil {
				return nil, fmt.Errorf("dataset: %s/%s: %w", spec.name, ord.name, err)
			}
			pm, err := m.Permute(perm)
			if err != nil {
				return nil, fmt.Errorf("dataset: %s/%s: %w", spec.name, ord.name, err)
			}
			for _, relax := range RelaxLevels {
				res, err := symbolic.AssemblyTree(pm, symbolic.AssemblyOptions{Relax: relax})
				if err != nil {
					return nil, fmt.Errorf("dataset: %s/%s/r%d: %w", spec.name, ord.name, relax, err)
				}
				out = append(out, Instance{
					Name:       fmt.Sprintf("%s/%s/r%d", spec.name, ord.name, relax),
					MatrixName: spec.name,
					N:          m.N(),
					Ordering:   ord.name,
					Relax:      relax,
					Tree:       res.Tree,
				})
			}
		}
	}
	return out, nil
}

// RandomWeightSuite implements Section VI-E: it keeps the shape of every
// assembly tree but draws execution files uniformly from [1, N/500] and
// input files from [1, N], where N is the node count, producing
// seedsPerTree randomized copies of each instance.
func RandomWeightSuite(base []Instance, seedsPerTree int) []Instance {
	var out []Instance
	for bi, inst := range base {
		for s := 0; s < seedsPerTree; s++ {
			rng := rand.New(rand.NewSource(int64(bi)*1000 + int64(s) + 1))
			out = append(out, Instance{
				Name:       fmt.Sprintf("%s/w%d", inst.Name, s),
				MatrixName: inst.MatrixName,
				N:          inst.N,
				Ordering:   inst.Ordering,
				Relax:      inst.Relax,
				Tree:       tree.RandomizeWeights(inst.Tree, rng),
			})
		}
	}
	return out
}
