package schedule

import (
	"errors"
	"fmt"

	"repro/internal/tree"
)

// ErrNoSpace reports that an eviction policy could not free the required
// space: the memory budget is below the node's own requirement.
var ErrNoSpace = errors.New("cannot free enough memory (budget below MemReq of the node)")

// Evictor selects resident files to write to secondary memory when the next
// node does not fit. SelectVictims receives S — the produced, still-resident
// files ordered by consumer step, latest first, zero-size files excluded —
// and must return files from S whose sizes sum to at least need, or
// ErrNoSpace. It may mutate s freely; the simulator passes a fresh snapshot.
type Evictor interface {
	// Name returns the paper's display name for the policy.
	Name() string
	SelectVictims(t *tree.Tree, s []int, need int64) ([]int, error)
}

// BestKWindow is the default subset window of the Best-K policy (K = 5, as
// in the paper).
const BestKWindow = 5

// The six greedy eviction policies of Section V-B.
type policyKind int

const (
	kindLSNF policyKind = iota
	kindFirstFit
	kindBestFit
	kindFirstFill
	kindBestFill
	kindBestK
)

// greedyPolicy implements all six paper policies over one shared helper set.
type greedyPolicy struct {
	kind    policyKind
	display string
	window  int // Best-K only
}

// LSNF (Last Scheduled Node First) evicts files in S order until enough
// space is freed. Optimal for the divisible relaxation of MinIO.
func LSNF() Evictor { return greedyPolicy{kind: kindLSNF, display: "LSNF"} }

// FirstFit evicts the first file in S at least as large as the requirement;
// if none exists it falls back to LSNF.
func FirstFit() Evictor { return greedyPolicy{kind: kindFirstFit, display: "First Fit"} }

// BestFit repeatedly evicts the file whose size is closest to the remaining
// requirement (above or below).
func BestFit() Evictor { return greedyPolicy{kind: kindBestFit, display: "Best Fit"} }

// FirstFill repeatedly evicts the first file in S smaller than the remaining
// requirement; if none exists it falls back to LSNF.
func FirstFill() Evictor { return greedyPolicy{kind: kindFirstFill, display: "First Fill"} }

// BestFill repeatedly evicts the largest file strictly smaller than the
// remaining requirement; if none exists it falls back to LSNF.
func BestFill() Evictor { return greedyPolicy{kind: kindBestFill, display: "Best Fill"} }

// BestK considers the first window files of S and evicts the non-empty
// subset whose total size is closest to the remaining requirement, repeating
// until enough space is freed. The paper fixes window = BestKWindow.
func BestK(window int) Evictor {
	return greedyPolicy{kind: kindBestK, display: "Best K Comb.", window: window}
}

func (g greedyPolicy) Name() string { return g.display }

func (g greedyPolicy) SelectVictims(t *tree.Tree, s []int, need int64) ([]int, error) {
	if g.kind == kindBestK && (g.window < 1 || g.window > 20) {
		// A non-positive window would make the subset search vacuous and
		// the fill loop spin, an oversized one enumerates 2^window subsets
		// per eviction; reject both (EvictorByName validates up front, but
		// BestK is constructible directly).
		return nil, fmt.Errorf("best-K window %d out of range [1,20]", g.window)
	}
	var victims []int
	take := func(idx int) {
		victims = append(victims, s[idx])
		need -= t.F(s[idx])
		s = append(s[:idx], s[idx+1:]...)
	}
	lsnf := func() error {
		for need > 0 {
			if len(s) == 0 {
				return ErrNoSpace
			}
			take(0)
		}
		return nil
	}
	switch g.kind {
	case kindLSNF:
		if err := lsnf(); err != nil {
			return nil, err
		}

	case kindFirstFit:
		// One file covering the whole requirement, searched latest-consumer
		// first; LSNF when no single file is big enough.
		found := false
		for i, v := range s {
			if t.F(v) >= need {
				take(i)
				found = true
				break
			}
		}
		if !found {
			if err := lsnf(); err != nil {
				return nil, err
			}
		}

	case kindBestFit:
		// Repeatedly the file closest in size to the remaining requirement,
		// above or below; ties go to the latest consumer.
		for need > 0 {
			if len(s) == 0 {
				return nil, ErrNoSpace
			}
			bi := 0
			bd := absDiff(t.F(s[0]), need)
			for i := 1; i < len(s); i++ {
				if d := absDiff(t.F(s[i]), need); d < bd {
					bi, bd = i, d
				}
			}
			take(bi)
		}

	case kindFirstFill:
		// Fill the requirement with the first files strictly smaller than
		// it; once none is smaller, fall back to LSNF for the remainder.
		for need > 0 {
			found := false
			for i, v := range s {
				if t.F(v) < need {
					take(i)
					found = true
					break
				}
			}
			if !found {
				if err := lsnf(); err != nil {
					return nil, err
				}
			}
		}

	case kindBestFill:
		// Fill with the largest file strictly smaller than the requirement
		// (the best "from below"); LSNF when none fits below.
		for need > 0 {
			bi := -1
			var bf int64 = -1
			for i, v := range s {
				if t.F(v) < need && t.F(v) > bf {
					bi, bf = i, t.F(v)
				}
			}
			if bi < 0 {
				if err := lsnf(); err != nil {
					return nil, err
				}
				continue
			}
			take(bi)
		}

	case kindBestK:
		// Among the first K files of S, the non-empty subset whose total is
		// closest to the requirement (ties prefer covering subsets, then
		// fewer files); repeat until the requirement is met.
		for need > 0 {
			if len(s) == 0 {
				return nil, ErrNoSpace
			}
			k := len(s)
			if k > g.window {
				k = g.window
			}
			bestMask, bestTotal := 0, int64(0)
			var bestDiff int64 = 1 << 62
			for mask := 1; mask < 1<<k; mask++ {
				var total int64
				for i := 0; i < k; i++ {
					if mask&(1<<i) != 0 {
						total += t.F(s[i])
					}
				}
				d := absDiff(total, need)
				better := d < bestDiff
				if d == bestDiff {
					cover, bestCover := total >= need, bestTotal >= need
					if cover != bestCover {
						better = cover
					} else if popcount(mask) < popcount(bestMask) {
						better = true
					}
				}
				if better {
					bestMask, bestTotal, bestDiff = mask, total, d
				}
			}
			// Take from the highest index down so earlier removals do not
			// shift pending ones.
			for i := k - 1; i >= 0; i-- {
				if bestMask&(1<<i) != 0 {
					take(i)
				}
			}
		}

	default:
		return nil, errors.New("unknown eviction policy")
	}
	return victims, nil
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

func popcount(m int) int {
	c := 0
	for m != 0 {
		m &= m - 1
		c++
	}
	return c
}
