package schedule

import (
	"errors"
	"fmt"

	"repro/internal/tree"
)

// ErrNoSpace reports that an eviction policy could not free the required
// space: the memory budget is below the node's own requirement.
var ErrNoSpace = errors.New("cannot free enough memory (budget below MemReq of the node)")

// Evictor selects resident files to write to secondary memory when the next
// node does not fit. SelectVictims receives S — the produced, still-resident
// files ordered by consumer step, latest first, zero-size files excluded —
// and must return files from S whose sizes sum to at least need, or
// ErrNoSpace. It may mutate s freely; the simulator passes a fresh snapshot.
type Evictor interface {
	// Name returns the paper's display name for the policy.
	Name() string
	SelectVictims(t *tree.Tree, s []int, need int64) ([]int, error)
}

// BestKWindow is the default subset window of the Best-K policy (K = 5, as
// in the paper).
const BestKWindow = 5

// MaxBestKWindow caps the Best-K subset window: the branch-and-bound
// search is exact over at most 2^window subsets per eviction, so the cap
// bounds the worst case.
const MaxBestKWindow = 20

// WindowRangeError reports a Best-K subset window outside
// [1, MaxBestKWindow]. A non-positive window would make the subset search
// vacuous and the fill loop spin; an oversized one explodes the subset
// space. The window is validated once, when the evictor is constructed.
type WindowRangeError struct {
	// Window is the rejected value.
	Window int
}

// Error describes the rejected window and the accepted range.
func (e *WindowRangeError) Error() string {
	return fmt.Sprintf("schedule: Best-K window %d out of range [1,%d]", e.Window, MaxBestKWindow)
}

// The six greedy eviction policies of Section V-B.
type policyKind int

const (
	kindLSNF policyKind = iota
	kindFirstFit
	kindBestFit
	kindFirstFill
	kindBestFill
	kindBestK
)

// greedyPolicy implements all six paper policies over one shared helper set.
type greedyPolicy struct {
	kind    policyKind
	display string
	window  int // Best-K only
}

// LSNF (Last Scheduled Node First) evicts files in S order until enough
// space is freed. Optimal for the divisible relaxation of MinIO.
func LSNF() Evictor { return greedyPolicy{kind: kindLSNF, display: "LSNF"} }

// FirstFit evicts the first file in S at least as large as the requirement;
// if none exists it falls back to LSNF.
func FirstFit() Evictor { return greedyPolicy{kind: kindFirstFit, display: "First Fit"} }

// BestFit repeatedly evicts the file whose size is closest to the remaining
// requirement (above or below).
func BestFit() Evictor { return greedyPolicy{kind: kindBestFit, display: "Best Fit"} }

// FirstFill repeatedly evicts the first file in S smaller than the remaining
// requirement; if none exists it falls back to LSNF.
func FirstFill() Evictor { return greedyPolicy{kind: kindFirstFill, display: "First Fill"} }

// BestFill repeatedly evicts the largest file strictly smaller than the
// remaining requirement; if none exists it falls back to LSNF.
func BestFill() Evictor { return greedyPolicy{kind: kindBestFill, display: "Best Fill"} }

// BestK considers the first window files of S and evicts the non-empty
// subset whose total size is closest to the remaining requirement, repeating
// until enough space is freed. The paper fixes window = BestKWindow. The
// window is validated here, once: a *WindowRangeError is returned when it
// falls outside [1, MaxBestKWindow], and SelectVictims never re-checks.
func BestK(window int) (Evictor, error) {
	if window < 1 || window > MaxBestKWindow {
		return nil, &WindowRangeError{Window: window}
	}
	return greedyPolicy{kind: kindBestK, display: "Best K Comb.", window: window}, nil
}

func (g greedyPolicy) Name() string { return g.display }

func (g greedyPolicy) SelectVictims(t *tree.Tree, s []int, need int64) ([]int, error) {
	return g.selectVictimsAppend(t, s, need, nil)
}

// selectVictimsAppend is SelectVictims appending into dst, the simulator's
// fast path: with a pooled dst (and a pooled s) a steady-state eviction
// selects its victims without allocating.
func (g greedyPolicy) selectVictimsAppend(t *tree.Tree, s []int, need int64, dst []int) ([]int, error) {
	victims := dst
	take := func(idx int) {
		victims = append(victims, s[idx])
		need -= t.F(s[idx])
		s = append(s[:idx], s[idx+1:]...)
	}
	lsnf := func() error {
		for need > 0 {
			if len(s) == 0 {
				return ErrNoSpace
			}
			take(0)
		}
		return nil
	}
	switch g.kind {
	case kindLSNF:
		if err := lsnf(); err != nil {
			return nil, err
		}

	case kindFirstFit:
		// One file covering the whole requirement, searched latest-consumer
		// first; LSNF when no single file is big enough.
		found := false
		for i, v := range s {
			if t.F(v) >= need {
				take(i)
				found = true
				break
			}
		}
		if !found {
			if err := lsnf(); err != nil {
				return nil, err
			}
		}

	case kindBestFit:
		// Repeatedly the file closest in size to the remaining requirement,
		// above or below; ties go to the latest consumer.
		for need > 0 {
			if len(s) == 0 {
				return nil, ErrNoSpace
			}
			bi := 0
			bd := absDiff(t.F(s[0]), need)
			for i := 1; i < len(s); i++ {
				if d := absDiff(t.F(s[i]), need); d < bd {
					bi, bd = i, d
				}
			}
			take(bi)
		}

	case kindFirstFill:
		// Fill the requirement with the first files strictly smaller than
		// it; once none is smaller, fall back to LSNF for the remainder.
		for need > 0 {
			found := false
			for i, v := range s {
				if t.F(v) < need {
					take(i)
					found = true
					break
				}
			}
			if !found {
				if err := lsnf(); err != nil {
					return nil, err
				}
			}
		}

	case kindBestFill:
		// Fill with the largest file strictly smaller than the requirement
		// (the best "from below"); LSNF when none fits below.
		for need > 0 {
			bi := -1
			var bf int64 = -1
			for i, v := range s {
				if t.F(v) < need && t.F(v) > bf {
					bi, bf = i, t.F(v)
				}
			}
			if bi < 0 {
				if err := lsnf(); err != nil {
					return nil, err
				}
				continue
			}
			take(bi)
		}

	case kindBestK:
		// Among the first K files of S, the non-empty subset whose total is
		// closest to the requirement (ties prefer covering subsets, then
		// fewer files); repeat until the requirement is met. The subset
		// search is branch-and-bound, exact and bit-identical to a full
		// 2^K enumeration.
		for need > 0 {
			if len(s) == 0 {
				return nil, ErrNoSpace
			}
			k := len(s)
			if k > g.window {
				k = g.window
			}
			bestMask := bestKSubset(t, s[:k], need)
			// Take from the highest index down so earlier removals do not
			// shift pending ones.
			for i := k - 1; i >= 0; i-- {
				if bestMask&(1<<i) != 0 {
					take(i)
				}
			}
		}

	default:
		return nil, errors.New("unknown eviction policy")
	}
	return victims, nil
}

// bestKSearch is the branch-and-bound state of one Best-K subset search:
// the window file sizes, their suffix sums, and the incumbent subset under
// the policy's total order — smaller |total − need| first, then covering
// subsets (total ≥ need), then fewer files, then the smaller bitmask. The
// final tie-break makes the search order irrelevant: the winner is the
// unique minimum of the total order, exactly the subset a full ascending
// 2^K enumeration with strict-improvement updates would keep.
type bestKSearch struct {
	sizes  [MaxBestKWindow]int64
	suffix [MaxBestKWindow + 1]int64 // suffix[i] = Σ sizes[i:]
	need   int64
	k      int

	bestMask  int
	bestTotal int64
	bestDiff  int64
	bestCount int
}

// bestKSubset returns the bitmask over window (≤ MaxBestKWindow files of
// S) of the non-empty subset whose total size is closest to need, with the
// deterministic tie-break described on bestKSearch.
func bestKSubset(t *tree.Tree, window []int, need int64) int {
	var b bestKSearch
	b.k = len(window)
	b.need = need
	for i := b.k - 1; i >= 0; i-- {
		b.sizes[i] = t.F(window[i])
		b.suffix[i] = b.suffix[i+1] + b.sizes[i]
	}
	b.bestDiff = 1 << 62
	b.search(0, 0, 0, 0)
	return b.bestMask
}

// search explores include/exclude decisions for file i given the partial
// subset (total, count, mask) over files [0, i). Subtrees are pruned when
// even the closest reachable total — anywhere in [total, total+suffix[i]]
// — is strictly farther from need than the incumbent; equality is never
// pruned, because a tying subset can still win on the cover/count/mask
// tie-breaks.
func (b *bestKSearch) search(i int, total int64, count, mask int) {
	if i == b.k {
		if count == 0 {
			return
		}
		d := absDiff(total, b.need)
		better := d < b.bestDiff
		if d == b.bestDiff {
			cover, bestCover := total >= b.need, b.bestTotal >= b.need
			switch {
			case cover != bestCover:
				better = cover
			case count != b.bestCount:
				better = count < b.bestCount
			default:
				better = mask < b.bestMask
			}
		}
		if better {
			b.bestMask, b.bestTotal, b.bestDiff, b.bestCount = mask, total, d, count
		}
		return
	}
	lo, hi := total, total+b.suffix[i]
	var bound int64
	switch {
	case b.need < lo:
		bound = lo - b.need
	case b.need > hi:
		bound = b.need - hi
	}
	if bound > b.bestDiff {
		return
	}
	b.search(i+1, total+b.sizes[i], count+1, mask|1<<i)
	b.search(i+1, total, count, mask)
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
