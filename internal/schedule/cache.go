package schedule

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/tree"
)

// CacheKey derives the content-addressed key of a job: the canonical tree
// digest, the algorithm name, the memory budget, the Best-K window and a
// digest of the replay order (orders are long, so they are hashed rather
// than inlined). Jobs with equal keys are guaranteed to produce equal rows
// up to the Seconds column, because every field an algorithm's Run can
// observe is part of the key. The instance name is deliberately excluded —
// it is reporting identity, not algorithm input — and the cached backend
// restamps it on every hit, so the same tree cached under one name is
// shared by all names.
func CacheKey(j Job) string {
	return cacheKey(j, j.Tree.Digest())
}

func cacheKey(j Job, td tree.Digest) string {
	var sb strings.Builder
	sb.WriteString(td.String())
	sb.WriteByte('/')
	sb.WriteString(j.Algorithm)
	sb.WriteString("/m")
	sb.WriteString(strconv.FormatInt(j.Memory, 10))
	sb.WriteString("/w")
	sb.WriteString(strconv.Itoa(j.Window))
	sb.WriteString("/o")
	if j.Order == nil {
		sb.WriteByte('-')
	} else {
		h := sha256.New()
		buf := make([]byte, 0, 12)
		for _, v := range j.Order {
			buf = strconv.AppendInt(buf[:0], int64(v), 10)
			buf = append(buf, ',')
			h.Write(buf)
		}
		sb.WriteString(hex.EncodeToString(h.Sum(nil)))
	}
	return sb.String()
}

// Store is a content-addressed row store for the cached backend. Get and
// Put must be safe for concurrent use.
type Store interface {
	Get(key string) (Row, bool)
	Put(key string, row Row) error
}

// MemStore is an in-memory Store. The zero value is not usable; construct
// with NewMemStore.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]Row
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[string]Row{}} }

// Get implements Store.
func (s *MemStore) Get(key string) (Row, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.m[key]
	return r, ok
}

// Put implements Store.
func (s *MemStore) Put(key string, row Row) error {
	s.mu.Lock()
	s.m[key] = row
	s.mu.Unlock()
	return nil
}

// Len returns the number of cached rows.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// jsonlEntry is one line of the on-disk store.
type jsonlEntry struct {
	Key string `json:"key"`
	Row Row    `json:"row"`
}

// JSONLStore is a Store persisted as an append-only JSON Lines file: one
// {"key": …, "row": …} object per line. Construct with OpenJSONLStore.
type JSONLStore struct {
	mu     sync.Mutex
	m      map[string]Row
	f      *os.File
	w      *bufio.Writer
	closed bool
}

// OpenJSONLStore opens (creating if absent) the store at path and loads
// every entry into memory. Corrupt content — a truncated tail after a
// crash, or bytes that are not store entries at all — is not fatal: the
// surviving entries are kept, the damaged rows read as misses, and the
// file is compacted (rewritten atomically from the surviving entries) so
// the damage does not glue onto future appends or resurface on the next
// open. The whole file is held in memory either way, which is fine for a
// result cache of small rows.
func OpenJSONLStore(path string) (*JSONLStore, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("schedule: read row store: %w", err)
	}
	m := map[string]Row{}
	damaged := len(data) > 0 && data[len(data)-1] != '\n'
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil // partial tail, already flagged damaged above
		}
		var e jsonlEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			damaged = true
			continue
		}
		m[e.Key] = e.Row
	}
	if damaged {
		if err := rewriteJSONL(path, m); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("schedule: open row store: %w", err)
	}
	return &JSONLStore{m: m, f: f, w: bufio.NewWriter(f)}, nil
}

// rewriteJSONL atomically replaces the store file with the given entries.
func rewriteJSONL(path string, m map[string]Row) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	enc := json.NewEncoder(f)
	for key, row := range m {
		if err := enc.Encode(jsonlEntry{Key: key, Row: row}); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("schedule: compact row store: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *JSONLStore) Get(key string) (Row, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r, ok
}

// Put implements Store: the entry is recorded in memory and appended to the
// file (flushed on Close).
func (s *JSONLStore) Put(key string, row Row) error {
	b, err := json.Marshal(jsonlEntry{Key: key, Row: row})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = row
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("schedule: append row store: %w", err)
	}
	return nil
}

// Len returns the number of cached rows.
func (s *JSONLStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Close flushes pending appends and closes the file. Closing an already
// closed store is a no-op, so Close can be both deferred and error-checked.
func (s *JSONLStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Cached decorates a Backend with a content-addressed result cache: jobs
// whose CacheKey is in the store are answered with the stored row
// (bit-identical replay, original Seconds included); only the misses reach
// the inner backend, and their rows are stored as they complete, so a batch
// that fails half-way still banks the finished work. Construct with
// NewCached.
type Cached struct {
	inner  Backend
	store  Store
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCached wraps inner with the store. A nil store selects a fresh
// MemStore; a nil inner selects Local.
func NewCached(inner Backend, store Store) *Cached {
	if inner == nil {
		inner = Local{}
	}
	if store == nil {
		store = NewMemStore()
	}
	return &Cached{inner: inner, store: store}
}

// Capabilities implements Backend.
func (c *Cached) Capabilities() Capabilities {
	in := c.inner.Capabilities()
	return Capabilities{Name: "cached(" + in.Name + ")", Remote: in.Remote, Cached: true}
}

// Counters returns the cumulative hit and miss counts across Run calls.
func (c *Cached) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Run implements Backend. Hit rows are streamed to OnRow first (in job
// order), then the misses stream as the inner backend completes them. Miss
// rows are stored as they complete (not after the batch), so one failing
// job does not discard the rows that did finish — the rerun only pays for
// what is genuinely missing.
func (c *Cached) Run(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error) {
	// Memoize digests per Run by tree pointer: a grid reuses the same
	// *tree.Tree across many jobs. The map is Run-local so a long-running
	// server does not pin every tree it ever decoded.
	digests := map[*tree.Tree]tree.Digest{}
	digest := func(t *tree.Tree) tree.Digest {
		d, ok := digests[t]
		if !ok {
			d = t.Digest()
			digests[t] = d
		}
		return d
	}
	rows := make([]Row, len(jobs))
	keys := make([]string, len(jobs))
	var missIdx []int
	for i, j := range jobs {
		keys[i] = cacheKey(j, digest(j.Tree))
		if row, ok := c.store.Get(keys[i]); ok {
			// The instance name is reporting identity, not algorithm input,
			// so it is not part of the key: restamp the stored row with this
			// job's name to keep the replay indistinguishable from a run.
			row.Instance = j.Instance
			rows[i] = row
			c.hits.Add(1)
			if opt.OnRow != nil {
				opt.OnRow(row)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(i, row)
			}
		} else {
			c.misses.Add(1)
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) == 0 {
		return rows, nil
	}
	missJobs := make([]Job, len(missIdx))
	for k, i := range missIdx {
		missJobs[k] = jobs[i]
	}
	var putErr error // OnRowIndexed calls are serialized by the Backend contract
	missOpt := BatchOptions{
		Workers: opt.Workers,
		OnRowIndexed: func(k int, r Row) {
			if err := c.store.Put(keys[missIdx[k]], r); err != nil && putErr == nil {
				putErr = err
			}
			if opt.OnRow != nil {
				opt.OnRow(r)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(missIdx[k], r)
			}
		},
	}
	missRows, err := c.inner.Run(ctx, missJobs, missOpt)
	if err != nil {
		return nil, err
	}
	if putErr != nil {
		return nil, putErr
	}
	for k, i := range missIdx {
		rows[i] = missRows[k]
	}
	return rows, nil
}
