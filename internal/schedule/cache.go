package schedule

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/tree"
)

// CacheKey derives the content-addressed key of a job: the canonical tree
// digest, the algorithm name, the memory budget, the Best-K window and a
// digest of the replay order (orders are long, so they are hashed rather
// than inlined). Jobs with equal keys are guaranteed to produce equal rows
// up to the Seconds column, because every field an algorithm's Run can
// observe is part of the key. The instance name is deliberately excluded —
// it is reporting identity, not algorithm input — and the cached backend
// restamps it on every hit, so the same tree cached under one name is
// shared by all names.
func CacheKey(j Job) string {
	return cacheKey(j, j.Tree.Digest())
}

func cacheKey(j Job, td tree.Digest) string {
	var sb strings.Builder
	sb.WriteString(td.String())
	sb.WriteByte('/')
	sb.WriteString(j.Algorithm)
	sb.WriteString("/m")
	sb.WriteString(strconv.FormatInt(j.Memory, 10))
	sb.WriteString("/w")
	sb.WriteString(strconv.Itoa(j.Window))
	sb.WriteString("/o")
	if j.Order == nil {
		sb.WriteByte('-')
	} else {
		h := sha256.New()
		buf := make([]byte, 0, 12)
		for _, v := range j.Order {
			buf = strconv.AppendInt(buf[:0], int64(v), 10)
			buf = append(buf, ',')
			h.Write(buf)
		}
		sb.WriteString(hex.EncodeToString(h.Sum(nil)))
	}
	return sb.String()
}

// Store is a content-addressed row store for the cached backend. Get and
// Put must be safe for concurrent use.
type Store interface {
	Get(key string) (Row, bool)
	Put(key string, row Row) error
}

// StoreOptions configures a row store.
type StoreOptions struct {
	// MaxEntries bounds the number of rows held in memory; ≤ 0 means
	// unbounded. When a Put would exceed the bound, the least-recently-used
	// entry (Get counts as use) is evicted and the store's eviction counter
	// advances. The JSONL store additionally compacts its file down to the
	// bound on load.
	MaxEntries int
	// Format selects the on-disk encoding opened by OpenRowStore:
	// FormatJSONL (the default), FormatBinary or FormatPaged. In-memory
	// stores ignore it.
	Format StoreFormat
}

// StoreFormat names an on-disk row store encoding.
type StoreFormat int

// The on-disk row store encodings. The constant order matches
// StoreFormatNames, which ParseStoreFormat indexes into.
const (
	// FormatJSONL is the append-only JSON Lines store (JSONLStore), the
	// default: one {"key": …, "row": …} object per line, greppable and
	// line-healable.
	FormatJSONL StoreFormat = iota
	// FormatBinary is the length-prefixed binary store (BinaryStore): the
	// same entries in the binary row wire form, appended without per-row
	// json.Marshal.
	FormatBinary
	// FormatPaged is the out-of-core paged store (PagedStore): the same
	// entries in a paged block file with a B-tree index (internal/store),
	// served from disk with a bounded resident cache instead of being
	// loaded into memory on open.
	FormatPaged
)

// StoreFormatNames returns the accepted -cache-format spellings, indexed by
// StoreFormat value. Flag help text and parse errors both derive from this
// list, so every surface that enumerates the formats stays in step.
func StoreFormatNames() []string { return []string{"jsonl", "binary", "paged"} }

// String returns the format's flag spelling ("jsonl", "binary" or "paged").
func (f StoreFormat) String() string {
	names := StoreFormatNames()
	if int(f) < 0 || int(f) >= len(names) {
		return fmt.Sprintf("StoreFormat(%d)", int(f))
	}
	return names[f]
}

// ParseStoreFormat parses a -cache-format flag value; the empty string
// selects the default FormatJSONL.
func ParseStoreFormat(s string) (StoreFormat, error) {
	if s == "" {
		return FormatJSONL, nil
	}
	for i, name := range StoreFormatNames() {
		if s == name {
			return StoreFormat(i), nil
		}
	}
	return 0, fmt.Errorf("schedule: unknown store format %q (want %s)", s, strings.Join(StoreFormatNames(), ", "))
}

// RowStore is the interface of the file-backed row stores (JSONLStore,
// BinaryStore and PagedStore): a Store that must be closed to flush and
// compact, plus the shared observability accessors.
type RowStore interface {
	Store
	Close() error
	Len() int
	Evictions() int64
}

// OpenRowStore opens (creating if absent) the file-backed store at path in
// the encoding selected by opt.Format. Every encoding serves bit-identical
// rows under the same bounding semantics; they differ in how entries sit on
// disk and in whether they are resident (the JSONL and binary stores load
// everything into memory, the paged store reads from disk on demand).
func OpenRowStore(path string, opt StoreOptions) (RowStore, error) {
	switch opt.Format {
	case FormatJSONL:
		return OpenJSONLStoreWith(path, opt)
	case FormatBinary:
		return OpenBinaryStoreWith(path, opt)
	case FormatPaged:
		return OpenPagedStoreWith(path, opt)
	default:
		return nil, fmt.Errorf("schedule: unknown store format %d", int(opt.Format))
	}
}

// lruRows is the shared bounded map behind both stores: a key→row map with
// a recency list, evicting least-recently-used entries beyond max. Not safe
// for concurrent use; the stores lock around it.
type lruRows struct {
	m       map[string]*list.Element
	order   *list.List // front = most recently used
	max     int
	evicted int64
}

type lruEntry struct {
	key string
	row Row
}

func newLRURows(max int) *lruRows {
	return &lruRows{m: map[string]*list.Element{}, order: list.New(), max: max}
}

func (l *lruRows) get(key string) (Row, bool) {
	e, ok := l.m[key]
	if !ok {
		return Row{}, false
	}
	l.order.MoveToFront(e)
	return e.Value.(*lruEntry).row, true
}

func (l *lruRows) put(key string, row Row) {
	if e, ok := l.m[key]; ok {
		e.Value.(*lruEntry).row = row
		l.order.MoveToFront(e)
		return
	}
	l.m[key] = l.order.PushFront(&lruEntry{key: key, row: row})
	l.trim()
}

// trim evicts least-recently-used entries until the bound holds.
func (l *lruRows) trim() {
	for l.max > 0 && len(l.m) > l.max {
		oldest := l.order.Back()
		delete(l.m, oldest.Value.(*lruEntry).key)
		l.order.Remove(oldest)
		l.evicted++
	}
}

// MemStore is an in-memory Store, optionally bounded (StoreOptions). The
// zero value is not usable; construct with NewMemStore or NewMemStoreWith.
type MemStore struct {
	mu  sync.Mutex
	lru *lruRows
}

// NewMemStore returns an empty unbounded in-memory store.
func NewMemStore() *MemStore { return NewMemStoreWith(StoreOptions{}) }

// NewMemStoreWith returns an empty in-memory store with the given options.
func NewMemStoreWith(opt StoreOptions) *MemStore {
	return &MemStore{lru: newLRURows(opt.MaxEntries)}
}

// Get implements Store.
func (s *MemStore) Get(key string) (Row, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.get(key)
}

// Put implements Store.
func (s *MemStore) Put(key string, row Row) error {
	s.mu.Lock()
	s.lru.put(key, row)
	s.mu.Unlock()
	return nil
}

// Len returns the number of cached rows.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lru.m)
}

// Evictions returns the number of rows evicted by the MaxEntries bound, the
// companion of the Cached backend's hit/miss counters.
func (s *MemStore) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.evicted
}

// jsonlEntry is one line of the on-disk store.
type jsonlEntry struct {
	Key string `json:"key"`
	Row Row    `json:"row"`
}

// JSONLStore is a Store persisted as an append-only JSON Lines file: one
// {"key": …, "row": …} object per line, optionally bounded (StoreOptions).
// Construct with OpenJSONLStore or OpenJSONLStoreWith.
type JSONLStore struct {
	mu     sync.Mutex
	lru    *lruRows
	path   string
	f      *os.File
	w      *bufio.Writer
	closed bool
}

// OpenJSONLStore opens (creating if absent) the unbounded store at path;
// see OpenJSONLStoreWith.
func OpenJSONLStore(path string) (*JSONLStore, error) {
	return OpenJSONLStoreWith(path, StoreOptions{})
}

// OpenJSONLStoreWith opens (creating if absent) the store at path and loads
// every entry into memory. Corrupt content — a truncated tail after a
// crash, or bytes that are not store entries at all — is not fatal: the
// surviving entries are kept, the damaged rows read as misses, and the
// file is compacted (rewritten atomically from the surviving entries) so
// the damage does not glue onto future appends or resurface on the next
// open. With MaxEntries set, a file over budget is likewise trimmed to the
// newest MaxEntries rows and compacted on load, so the on-disk store no
// longer grows without bound across runs; at run time evictions drop
// entries from memory only (the file compacts on Close, or at the next
// load after a crash), and Evictions counts them.
func OpenJSONLStoreWith(path string, opt StoreOptions) (*JSONLStore, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("schedule: read row store: %w", err)
	}
	lru := newLRURows(opt.MaxEntries)
	loaded := 0
	damaged := len(data) > 0 && data[len(data)-1] != '\n'
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil // partial tail, already flagged damaged above
		}
		var e jsonlEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			damaged = true
			continue
		}
		// File order approximates recency: appends and the recency-ordered
		// rewrite on Close both put newer (or more recently used) rows
		// later, so loading front-ward reconstructs it and the MaxEntries
		// trim inside put drops the stalest rows first.
		lru.put(e.Key, e.Row)
		loaded++
	}
	// Load-time trimming is compaction, not eviction: the counter reports
	// what this process dropped, starting from zero.
	compacted := lru.evicted > 0
	lru.evicted = 0
	if damaged || compacted || loaded > len(lru.m) {
		if err := rewriteJSONL(path, lru); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("schedule: open row store: %w", err)
	}
	return &JSONLStore{lru: lru, path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// rewriteJSONL atomically replaces the store file with the surviving
// entries, oldest first, so a reload sees the same recency order.
func rewriteJSONL(path string, lru *lruRows) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	enc := json.NewEncoder(f)
	for e := lru.order.Back(); e != nil; e = e.Prev() {
		entry := e.Value.(*lruEntry)
		if err := enc.Encode(jsonlEntry{Key: entry.key, Row: entry.row}); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("schedule: compact row store: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *JSONLStore) Get(key string) (Row, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.get(key)
}

// Put implements Store: the entry is recorded in memory (evicting the
// least-recently-used row when over MaxEntries) and appended to the file
// (flushed and, when bounded, compacted down to the bound on Close).
func (s *JSONLStore) Put(key string, row Row) error {
	b, err := json.Marshal(jsonlEntry{Key: key, Row: row})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lru.put(key, row)
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("schedule: append row store: %w", err)
	}
	return nil
}

// Len returns the number of cached rows resident in memory.
func (s *JSONLStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lru.m)
}

// Evictions returns the number of rows evicted by the MaxEntries bound
// since the store was opened, the companion of the Cached backend's
// hit/miss counters.
func (s *JSONLStore) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.evicted
}

// Close flushes pending appends and closes the file. A bounded store
// compacts on the way out — the file is rewritten in recency order, so the
// next load's MaxEntries trim drops genuinely least-recently-used rows
// (Get-bumps included) rather than oldest-inserted ones. Closing an already
// closed store is a no-op, so Close can be both deferred and error-checked.
func (s *JSONLStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	if s.lru.max > 0 {
		return rewriteJSONL(s.path, s.lru)
	}
	return nil
}

// Cached decorates a Backend with a content-addressed result cache: jobs
// whose CacheKey is in the store are answered with the stored row
// (bit-identical replay, original Seconds included); only the misses reach
// the inner backend, and their rows are stored as they complete, so a batch
// that fails half-way still banks the finished work. Construct with
// NewCached.
type Cached struct {
	inner  Backend
	store  Store
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCached wraps inner with the store. A nil store selects a fresh
// MemStore; a nil inner selects Local.
func NewCached(inner Backend, store Store) *Cached {
	if inner == nil {
		inner = Local{}
	}
	if store == nil {
		store = NewMemStore()
	}
	return &Cached{inner: inner, store: store}
}

// Capabilities implements Backend.
func (c *Cached) Capabilities() Capabilities {
	in := c.inner.Capabilities()
	return Capabilities{Name: "cached(" + in.Name + ")", Remote: in.Remote, Cached: true}
}

// Counters returns the cumulative hit and miss counts across Run calls.
func (c *Cached) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Run implements Backend. Hit rows are streamed to OnRow first (in job
// order), then the misses stream as the inner backend completes them. Miss
// rows are stored as they complete (not after the batch), so one failing
// job does not discard the rows that did finish — the rerun only pays for
// what is genuinely missing.
func (c *Cached) Run(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error) {
	// Memoize digests per Run by tree pointer: a grid reuses the same
	// *tree.Tree across many jobs. The map is Run-local so a long-running
	// server does not pin every tree it ever decoded.
	digests := map[*tree.Tree]tree.Digest{}
	digest := func(t *tree.Tree) tree.Digest {
		d, ok := digests[t]
		if !ok {
			d = t.Digest()
			digests[t] = d
		}
		return d
	}
	// Drawn from the stream engine's row pool, like Local.Run, so warmed
	// streaming chunks recycle their row slices through the merge loop.
	rows := getRowSlice(len(jobs))
	keys := make([]string, len(jobs))
	var missIdx []int
	for i, j := range jobs {
		keys[i] = cacheKey(j, digest(j.Tree))
		if row, ok := c.store.Get(keys[i]); ok {
			// The instance name is reporting identity, not algorithm input,
			// so it is not part of the key: restamp the stored row with this
			// job's name to keep the replay indistinguishable from a run.
			row.Instance = j.Instance
			rows[i] = row
			c.hits.Add(1)
			if opt.OnRow != nil {
				opt.OnRow(row)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(i, row)
			}
		} else {
			c.misses.Add(1)
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) == 0 {
		return rows, nil
	}
	missJobs := make([]Job, len(missIdx))
	for k, i := range missIdx {
		missJobs[k] = jobs[i]
	}
	var putErr error // OnRowIndexed calls are serialized by the Backend contract
	missOpt := BatchOptions{
		Workers: opt.Workers,
		OnRowIndexed: func(k int, r Row) {
			if err := c.store.Put(keys[missIdx[k]], r); err != nil && putErr == nil {
				putErr = err
			}
			if opt.OnRow != nil {
				opt.OnRow(r)
			}
			if opt.OnRowIndexed != nil {
				opt.OnRowIndexed(missIdx[k], r)
			}
		},
	}
	missRows, err := c.inner.Run(ctx, missJobs, missOpt)
	if err != nil {
		return nil, err
	}
	if putErr != nil {
		return nil, putErr
	}
	for k, i := range missIdx {
		rows[i] = missRows[k]
	}
	return rows, nil
}

// Admit implements Admitter by delegating to the inner backend when it is
// one: a cache in front of a shard must not hide the shard's admission
// verdict, since a shed batch would otherwise just queue behind the cache.
// An inner backend without admission control admits everything.
func (c *Cached) Admit(jobs int) error {
	if a, ok := c.inner.(Admitter); ok {
		return a.Admit(jobs)
	}
	return nil
}

// WarmRows implements RowWarmer: the entries land in the cache's store, so
// a Cached child of a Shard receives cross-shard cache warming — rows
// computed by a sibling answer later hits here without re-running anything.
// Entries with an empty key are skipped; the count of stored entries is
// returned.
func (c *Cached) WarmRows(_ context.Context, entries []WarmEntry) (int, error) {
	n := 0
	for _, e := range entries {
		if e.Key == "" {
			continue
		}
		if err := c.store.Put(e.Key, e.Row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Stream implements Backend by chunking the source through Run: within each
// chunk the hits are answered from the store without touching the inner
// backend — a fully warm chunk costs zero algorithm runs and its rows flow
// straight to the sink — while the misses batch up and run on the inner
// backend as one sub-batch. Chunks evaluate concurrently and merge into the
// sink in job order.
func (c *Cached) Stream(ctx context.Context, src JobSource, sink RowSink, opt StreamOptions) error {
	return StreamChunked(ctx, c.Run, src, sink, opt)
}
