package schedule_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// drain pulls every job out of a source.
func drain(t *testing.T, src schedule.JobSource) []schedule.Job {
	t.Helper()
	var jobs []schedule.Job
	for {
		j, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

func sameJobs(t *testing.T, got, want []schedule.Job, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d jobs vs %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Instance != w.Instance || g.Tree != w.Tree || g.Algorithm != w.Algorithm ||
			g.Memory != w.Memory || g.Window != w.Window || len(g.Order) != len(w.Order) {
			t.Fatalf("%s: job %d differs: %+v vs %+v", label, i, g, w)
		}
		for k := range w.Order {
			if g.Order[k] != w.Order[k] {
				t.Fatalf("%s: job %d order differs at %d", label, i, k)
			}
		}
	}
}

// Streaming a grid through Local.Stream must produce, in sink order, the
// bit-identical rows of a materialized Run (Seconds aside) — the
// order-preserving merge across concurrently evaluated chunks.
func TestLocalStreamMatchesRun(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []schedule.StreamOptions{
		{},
		{ChunkSize: 1, InFlight: 8},
		{ChunkSize: 3, InFlight: 2},
		{ChunkSize: len(jobs) + 10, InFlight: 1},
	} {
		var got schedule.Collector
		if err := (schedule.Local{}).Stream(context.Background(), schedule.SliceSource(jobs), &got, opt); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		sameRowsNoTime(t, want, got.Rows(), fmt.Sprintf("stream %+v vs run", opt))
	}
}

// The streaming path must hold at most ChunkSize × InFlight jobs between
// source and sink: a stream much longer than that bound completes without
// the engine ever materializing it.
func TestStreamBoundedResidency(t *testing.T) {
	tr := randomTree(t, 7, 25)
	const total, chunkSize, inFlight = 240, 8, 3
	outstanding, peak := 0, 0
	var mu sync.Mutex
	produced := 0
	src := schedule.SourceFunc(func() (schedule.Job, bool, error) {
		if produced >= total {
			return schedule.Job{}, false, nil
		}
		produced++
		mu.Lock()
		outstanding++
		if outstanding > peak {
			peak = outstanding
		}
		mu.Unlock()
		return schedule.Job{Instance: "s", Tree: tr, Algorithm: "postorder"}, true, nil
	})
	rows := 0
	sink := schedule.SinkFunc(func(schedule.Row) error {
		mu.Lock()
		outstanding--
		mu.Unlock()
		rows++
		return nil
	})
	err := schedule.Local{}.Stream(context.Background(), src, sink,
		schedule.StreamOptions{ChunkSize: chunkSize, InFlight: inFlight, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows != total {
		t.Fatalf("sank %d rows, want %d", rows, total)
	}
	if peak > chunkSize*inFlight {
		t.Fatalf("peak resident jobs %d exceeds ChunkSize×InFlight = %d", peak, chunkSize*inFlight)
	}
}

// Source and sink errors abort the stream and surface to the caller.
func TestStreamPropagatesErrors(t *testing.T) {
	tr := randomTree(t, 8, 20)
	boom := errors.New("boom")
	n := 0
	src := schedule.SourceFunc(func() (schedule.Job, bool, error) {
		if n >= 5 {
			return schedule.Job{}, false, boom
		}
		n++
		return schedule.Job{Instance: "s", Tree: tr, Algorithm: "postorder"}, true, nil
	})
	var sank schedule.Collector
	if err := (schedule.Local{}).Stream(context.Background(), src, &sank,
		schedule.StreamOptions{ChunkSize: 2}); !errors.Is(err, boom) {
		t.Fatalf("source error not surfaced: %v", err)
	}

	sinkErr := errors.New("sink full")
	if err := (schedule.Local{}).Stream(context.Background(),
		schedule.SliceSource(schedule.MinMemoryGrid(batchInstances(t), []string{"postorder"})),
		schedule.SinkFunc(func(schedule.Row) error { return sinkErr }),
		schedule.StreamOptions{ChunkSize: 2}); !errors.Is(err, sinkErr) {
		t.Fatalf("sink error not surfaced: %v", err)
	}

	// A failing job fails the stream, like a failing batch.
	bad := []schedule.Job{{Instance: "x", Tree: tr, Algorithm: "no-such-solver"}}
	if err := (schedule.Local{}).Stream(context.Background(), schedule.SliceSource(bad), &sank,
		schedule.StreamOptions{}); err == nil {
		t.Fatal("unknown algorithm streamed successfully")
	}
}

// RunViaStream is the Run shim over Stream: rows in job order, callbacks
// fired once per row.
func TestRunViaStream(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	indexed := map[int]bool{}
	got, err := schedule.RunViaStream(context.Background(), schedule.Local{}, jobs, schedule.BatchOptions{
		OnRow: func(schedule.Row) { streamed++ },
		OnRowIndexed: func(i int, r schedule.Row) {
			if indexed[i] {
				t.Fatalf("row %d announced twice", i)
			}
			indexed[i] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, got, "RunViaStream vs Run")
	if streamed != len(jobs) || len(indexed) != len(jobs) {
		t.Fatalf("callbacks saw %d/%d rows, want %d", streamed, len(indexed), len(jobs))
	}
}

// The lazy grid sources must yield exactly the jobs of their eager
// counterparts, in the same order.
func TestLazyGridSources(t *testing.T) {
	insts := batchInstances(t)
	algs := []string{"postorder", "minmem"}
	sameJobs(t, drain(t, schedule.MinMemoryGridSource(insts, algs)),
		schedule.MinMemoryGrid(insts, algs), "MinMemoryGridSource")

	memories := func(tr *tree.Tree, out schedule.Outcome) ([]int64, error) {
		return []int64{tr.MaxMemReq(), (tr.MaxMemReq() + out.Memory) / 2}, nil
	}
	eager, err := schedule.MinIOGrid(context.Background(), insts, "minmem", schedule.EvictionPolicyNames(), memories, 0)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := schedule.MinIOGridSource(insts, "minmem", schedule.EvictionPolicyNames(), memories)
	if err != nil {
		t.Fatal(err)
	}
	sameJobs(t, drain(t, lazy), eager, "MinIOGridSource")

	if _, err := schedule.MinIOGridSource(insts, "nope", algs, memories); err == nil {
		t.Fatal("unknown orderBy accepted")
	}
	if _, err := schedule.MinIOGridSource(insts, "lsnf", algs, memories); err == nil {
		t.Fatal("MinIO orderBy accepted")
	}

	// Chain concatenates: MinMemory grid then MinIO grid, like the eager
	// append in cmd/experiments.
	lazy2, err := schedule.MinIOGridSource(insts, "minmem", schedule.EvictionPolicyNames(), memories)
	if err != nil {
		t.Fatal(err)
	}
	chained := drain(t, schedule.Chain(schedule.MinMemoryGridSource(insts, algs), lazy2))
	sameJobs(t, chained, append(schedule.MinMemoryGrid(insts, algs), eager...), "Chain")
}

// A directory of .tree files streams as (file × algorithm) jobs in sorted
// file order; a reader of concatenated .tree documents streams in document
// order. Both must evaluate to the rows of the equivalent in-memory grid.
func TestTreeSources(t *testing.T) {
	dir := t.TempDir()
	var insts []schedule.Instance
	var concat strings.Builder
	for i := 0; i < 3; i++ {
		tr := randomTree(t, int64(20+i), 20+5*i)
		name := fmt.Sprintf("t%d", i)
		insts = append(insts, schedule.Instance{Name: name, Tree: tr})
		var sb strings.Builder
		if err := tr.Write(&sb); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".tree"), []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		concat.WriteString(sb.String())
	}
	os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("not a tree"), 0o644)
	algs := []string{"postorder", "minmem"}

	want, err := schedule.Local{}.Run(context.Background(),
		schedule.MinMemoryGrid(insts, algs), schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dirSrc, err := schedule.TreeDirSource(dir, algs)
	if err != nil {
		t.Fatal(err)
	}
	var dirRows schedule.Collector
	if err := (schedule.Local{}).Stream(context.Background(), dirSrc, &dirRows,
		schedule.StreamOptions{ChunkSize: 2}); err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, dirRows.Rows(), "TreeDirSource vs in-memory grid")

	streamSrc := schedule.TreeStreamSource(strings.NewReader(concat.String()), "stdin", algs)
	var streamRows schedule.Collector
	if err := (schedule.Local{}).Stream(context.Background(), streamSrc, &streamRows,
		schedule.StreamOptions{ChunkSize: 2}); err != nil {
		t.Fatal(err)
	}
	got := streamRows.Rows()
	if len(got) != len(want) {
		t.Fatalf("tree stream produced %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		if b.Instance != fmt.Sprintf("stdin-%d", i/len(algs)) {
			t.Fatalf("row %d instance %q, want stdin-%d", i, b.Instance, i/len(algs))
		}
		a.Instance, b.Instance = "", ""
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("row %d differs: %+v vs %+v", i, want[i], got[i])
		}
	}

	if _, err := schedule.TreeDirSource(filepath.Join(dir, "absent"), algs); err == nil {
		t.Fatal("missing directory accepted")
	}
}

// CSV and JSONL sinks must emit exactly the wire format — pinned against
// golden literals, since WriteRowsCSV/WriteRowsJSON are now thin wrappers
// over the sinks and can no longer serve as an independent expectation.
func TestRowSinksMatchWriters(t *testing.T) {
	rows := []schedule.Row{
		{Instance: "a", Algorithm: "minmem", Kind: "minmemory", Memory: 42, Seconds: 0.25},
		{Instance: "b", Algorithm: "lsnf", Kind: "minio", Budget: 10, Memory: 9, IO: 7, Writes: 2, Seconds: 0.5},
	}
	const goldenCSV = "instance,algorithm,kind,budget,memory,io,writes,seconds\n" +
		"a,minmem,minmemory,0,42,0,0,0.25\n" +
		"b,lsnf,minio,10,9,7,2,0.5\n"
	const goldenJSONL = `{"instance":"a","algorithm":"minmem","kind":"minmemory","budget":0,"memory":42,"io":0,"writes":0,"seconds":0.25}` + "\n" +
		`{"instance":"b","algorithm":"lsnf","kind":"minio","budget":10,"memory":9,"io":7,"writes":2,"seconds":0.5}` + "\n"

	var gotCSV, gotJSONL strings.Builder
	csvSink := schedule.NewCSVSink(&gotCSV)
	for _, r := range rows {
		if err := csvSink.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := csvSink.Flush(); err != nil {
		t.Fatal(err)
	}
	if gotCSV.String() != goldenCSV {
		t.Fatalf("CSV sink format drifted:\n%q\nwant\n%q", gotCSV.String(), goldenCSV)
	}
	jsonSink := schedule.NewJSONLSink(&gotJSONL)
	for _, r := range rows {
		if err := jsonSink.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if gotJSONL.String() != goldenJSONL {
		t.Fatalf("JSONL sink format drifted:\n%q\nwant\n%q", gotJSONL.String(), goldenJSONL)
	}

	// The slice writers are those same sinks, byte for byte.
	var wCSV, wJSONL strings.Builder
	if err := schedule.WriteRowsCSV(&wCSV, rows); err != nil {
		t.Fatal(err)
	}
	if err := schedule.WriteRowsJSON(&wJSONL, rows); err != nil {
		t.Fatal(err)
	}
	if wCSV.String() != goldenCSV || wJSONL.String() != goldenJSONL {
		t.Fatal("WriteRows* diverged from the sink format")
	}

	// An empty CSV stream still gets its header on Flush.
	var empty strings.Builder
	if err := schedule.NewCSVSink(&empty).Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(empty.String(), "instance,algorithm,") {
		t.Fatalf("empty CSV sink wrote %q", empty.String())
	}

	// MultiSink fans out in order.
	var c schedule.Collector
	multi := schedule.MultiSink(&c, schedule.SinkFunc(func(schedule.Row) error { return nil }))
	for _, r := range rows {
		if err := multi.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.Rows()) != len(rows) {
		t.Fatalf("MultiSink delivered %d rows, want %d", len(c.Rows()), len(rows))
	}
}

// Cached.Stream: a warm stream executes zero algorithm runs and its rows
// are the bit-identical replay; a cold stream equals a Local stream.
func TestCachedStream(t *testing.T) {
	jobs := gridJobs(t)
	counting := &countingBackend{inner: schedule.Local{}}
	cached := schedule.NewCached(counting, nil)

	var cold schedule.Collector
	if err := cached.Stream(context.Background(), schedule.SliceSource(jobs), &cold,
		schedule.StreamOptions{ChunkSize: 5}); err != nil {
		t.Fatal(err)
	}
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, cold.Rows(), "cold cached stream vs local")
	if got := counting.jobs.Load(); got != int64(len(jobs)) {
		t.Fatalf("cold stream reached inner with %d jobs, want %d", got, len(jobs))
	}

	var warm schedule.Collector
	if err := cached.Stream(context.Background(), schedule.SliceSource(jobs), &warm,
		schedule.StreamOptions{ChunkSize: 5}); err != nil {
		t.Fatal(err)
	}
	for i, r := range warm.Rows() {
		if r != cold.Rows()[i] {
			t.Fatalf("warm stream row %d not bit-identical: %+v vs %+v", i, r, cold.Rows()[i])
		}
	}
	if got := counting.jobs.Load(); got != int64(len(jobs)) {
		t.Fatalf("warm stream executed %d extra algorithm runs", got-int64(len(jobs)))
	}
}

// Cancelling the context must surface as a stream error, never as a clean
// return with a truncated prefix of rows.
func TestStreamReportsCancellation(t *testing.T) {
	tr := randomTree(t, 9, 20)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	src := schedule.SourceFunc(func() (schedule.Job, bool, error) {
		if n == 6 {
			cancel() // caller gives up between chunks
		}
		n++
		return schedule.Job{Instance: "s", Tree: tr, Algorithm: "postorder"}, true, nil
	})
	var sank schedule.Collector
	err := schedule.Local{}.Stream(ctx, src, &sank, schedule.StreamOptions{ChunkSize: 2, InFlight: 1})
	if err == nil {
		t.Fatalf("cancelled stream returned nil after %d rows", len(sank.Rows()))
	}
}

// An evaluation error must surface promptly even when the source is blocked
// waiting for input (a pipe with no data yet): the error returns, the
// blocked reader is abandoned to wind down on its own.
func TestStreamErrorWhileSourceBlocked(t *testing.T) {
	tr := randomTree(t, 10, 20)
	release := make(chan struct{})
	n := 0
	src := schedule.SourceFunc(func() (schedule.Job, bool, error) {
		if n >= 2 {
			<-release // simulates stdin with nothing more to read yet
			return schedule.Job{}, false, nil
		}
		n++
		// An unknown algorithm fails the first chunk's evaluation.
		return schedule.Job{Instance: "s", Tree: tr, Algorithm: "no-such-solver"}, true, nil
	})
	defer close(release)
	done := make(chan error, 1)
	var sank schedule.Collector
	go func() {
		done <- schedule.Local{}.Stream(context.Background(), src, &sank,
			schedule.StreamOptions{ChunkSize: 2, InFlight: 2})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "no-such-solver") {
			t.Fatalf("blocked-source stream: got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream error held hostage by a blocked source")
	}
}

// GridSource over an instance stream must equal, per instance, the
// MinMemory grid followed by the MinIO grid — the interleaving that lets
// streaming corpora overlap tree construction with evaluation.
func TestGridSource(t *testing.T) {
	insts := batchInstances(t)
	algs := []string{"postorder", "minmem"}
	policies := schedule.EvictionPolicyNames()
	memories := func(tr *tree.Tree, out schedule.Outcome) ([]int64, error) {
		return []int64{tr.MaxMemReq(), (tr.MaxMemReq() + out.Memory) / 2}, nil
	}

	var want []schedule.Job
	for _, inst := range insts {
		one := []schedule.Instance{inst}
		want = append(want, schedule.MinMemoryGrid(one, algs)...)
		eager, err := schedule.MinIOGrid(context.Background(), one, "minmem", policies, memories, 0)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, eager...)
	}

	src, err := schedule.GridSource(schedule.InstanceSliceSource(insts), algs, "minmem", policies, memories)
	if err != nil {
		t.Fatal(err)
	}
	sameJobs(t, drain(t, src), want, "GridSource")

	// No policies → pure MinMemory grid, orderBy never run.
	src, err = schedule.GridSource(schedule.InstanceSliceSource(insts), algs, "minmem", nil, memories)
	if err != nil {
		t.Fatal(err)
	}
	sameJobs(t, drain(t, src), schedule.MinMemoryGrid(insts, algs), "GridSource no policies")

	if _, err := schedule.GridSource(schedule.InstanceSliceSource(insts), algs, "nope", policies, memories); err == nil {
		t.Fatal("unknown orderBy accepted")
	}
	if _, err := schedule.GridSource(schedule.InstanceSliceSource(insts), algs, "lsnf", policies, memories); err == nil {
		t.Fatal("MinIO orderBy accepted")
	}
}
