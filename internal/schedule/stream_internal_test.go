package schedule

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// streamSpine runs one stream of the given jobs through streamChunks with a
// trivial allocation-free evaluator, isolating the engine's own cost from
// the solvers'.
func streamSpine(tb testing.TB, jobs []Job, chunkSize, inFlight int) {
	tb.Helper()
	rows := 0
	sink := SinkFunc(func(r Row) error { rows++; return nil })
	err := streamChunks(context.Background(), SliceSource(jobs), sink, chunkSize, inFlight,
		func(_ context.Context, _ int, chunk []Job) ([]Row, error) {
			out := getRowSlice(len(chunk))
			for i := range chunk {
				out[i] = Row{Instance: chunk[i].Instance, Algorithm: chunk[i].Algorithm, Memory: int64(i)}
			}
			return out, nil
		})
	if err != nil {
		tb.Fatal(err)
	}
	if rows != len(jobs) {
		tb.Fatalf("streamed %d rows for %d jobs", rows, len(jobs))
	}
}

func spineJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Instance: "inst", Algorithm: "alg"}
	}
	return jobs
}

// streamBytes measures the bytes allocated by one spine stream, minimized
// over a few attempts to shrug off unrelated background allocation.
func streamBytes(tb testing.TB, jobs []Job) uint64 {
	tb.Helper()
	best := ^uint64(0)
	var m0, m1 runtime.MemStats
	for attempt := 0; attempt < 5; attempt++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		streamSpine(tb, jobs, DefaultChunkSize, 2)
		runtime.ReadMemStats(&m1)
		if d := m1.TotalAlloc - m0.TotalAlloc; d < best {
			best = d
		}
	}
	return best
}

// Chunk residency must not scale allocations with grid size: the job and
// row buffers of a drained chunk go back to the pools, so an 8× longer
// stream allocates nowhere near 8× the bytes. Before the pools, every chunk
// paid a fresh []Job and []Row (~10KB per 64-job chunk) and this ratio sat
// at ~8.
func TestStreamChunkResidencyConstant(t *testing.T) {
	skipIfRace(t)
	const chunksSmall, chunksLarge = 8, 64
	small := spineJobs(chunksSmall * DefaultChunkSize)
	large := spineJobs(chunksLarge * DefaultChunkSize)
	streamSpine(t, large, DefaultChunkSize, 2) // warm the pools
	bytesSmall := streamBytes(t, small)
	bytesLarge := streamBytes(t, large)
	t.Logf("spine bytes: %d chunks → %dB, %d chunks → %dB", chunksSmall, bytesSmall, chunksLarge, bytesLarge)
	if bytesLarge > 3*bytesSmall+4096 {
		t.Fatalf("chunk residency still scales with grid size: %d chunks cost %dB, %d chunks cost %dB (want < 3× + slack)",
			chunksSmall, bytesSmall, chunksLarge, bytesLarge)
	}
}

// The engine recycles row slices through Run implementations too: a warmed
// Cached stream (the batch-local binary spine) must keep per-row costs flat.
func BenchmarkStreamSpine(b *testing.B) {
	for _, chunks := range []int{8, 64} {
		b.Run(fmt.Sprintf("chunks-%d", chunks), func(b *testing.B) {
			jobs := spineJobs(chunks * DefaultChunkSize)
			streamSpine(b, jobs, DefaultChunkSize, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				streamSpine(b, jobs, DefaultChunkSize, 2)
			}
		})
	}
}
