package schedule_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/schedule"
)

// flakyBackend fails its first failN Run calls, then delegates — the
// in-process stand-in for a scheduled server that drops out mid-grid.
type flakyBackend struct {
	inner schedule.Backend
	failN atomic.Int64
	runs  atomic.Int64
}

func (b *flakyBackend) Capabilities() schedule.Capabilities {
	c := b.inner.Capabilities()
	c.Name = "flaky(" + c.Name + ")"
	return c
}

func (b *flakyBackend) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	b.runs.Add(1)
	if b.failN.Add(-1) >= 0 {
		return nil, errors.New("flaky: connection reset")
	}
	return b.inner.Run(ctx, jobs, opt)
}

func (b *flakyBackend) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, b.Run, src, sink, opt)
}

func TestNewShardRejects(t *testing.T) {
	if _, err := schedule.NewShard(); err == nil {
		t.Fatal("empty shard accepted")
	}
	if _, err := schedule.NewShard(schedule.Local{}, nil); err == nil {
		t.Fatal("nil child accepted")
	}
	if _, err := schedule.NewShardWith(schedule.ShardOptions{Policy: "fastest"}, schedule.Local{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// A shard over healthy children returns the rows of a Local run
// bit-identically (Seconds aside), via Run and via Stream, under both
// dispatch policies.
func TestShardMatchesLocal(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []schedule.ShardPolicy{schedule.PolicyAdaptive, schedule.PolicyRoundRobin} {
		shard, err := schedule.NewShardWith(schedule.ShardOptions{Policy: policy},
			schedule.Local{}, schedule.Local{}, schedule.Local{})
		if err != nil {
			t.Fatal(err)
		}
		if caps := shard.Capabilities(); !strings.HasPrefix(caps.Name, "shard(") {
			t.Fatalf("capabilities %+v", caps)
		}
		got, err := shard.Run(context.Background(), jobs, schedule.BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameRowsNoTime(t, want, got, string(policy)+" shard run vs local")

		var sank schedule.Collector
		if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
			schedule.StreamOptions{ChunkSize: 3}); err != nil {
			t.Fatal(err)
		}
		sameRowsNoTime(t, want, sank.Rows(), string(policy)+" shard stream vs local")
		if c := shard.Counters(); c.Resubmissions != 0 || c.Quarantines != 0 || c.Readmissions != 0 ||
			c.Hedges != 0 || c.HedgeWins != 0 {
			t.Fatalf("healthy shard recorded counters %+v", c)
		}
		stats := shard.ChildStats()
		if len(stats) != 3 {
			t.Fatalf("child stats %+v", stats)
		}
		var chunks, rows int64
		for _, cs := range stats {
			chunks += cs.Chunks
			rows += cs.Rows
		}
		if rows != int64(2*len(jobs)) || chunks == 0 { // Run + Stream passes
			t.Fatalf("child stats account for %d rows in %d chunks, want %d rows", rows, chunks, 2*len(jobs))
		}
	}
}

// A child that fails mid-grid costs a resubmission and a quarantine, not
// the batch: the failed chunk lands on the other child and the merged rows
// stay bit-identical to a Local run.
func TestShardResubmitsFailedChunks(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyBackend{inner: schedule.Local{}}
	flaky.failN.Store(1)
	shard, err := schedule.NewShardWith(schedule.ShardOptions{QuarantineBase: time.Millisecond}, flaky, schedule.Local{})
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 2}); err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, sank.Rows(), "shard with flaky child vs local")
	c := shard.Counters()
	if c.Resubmissions < 1 {
		t.Fatalf("failed chunk not resubmitted: counters %+v", c)
	}
	if c.Quarantines < 1 {
		t.Fatalf("failing child not quarantined: counters %+v", c)
	}
	if flaky.runs.Load() == 0 {
		t.Fatal("flaky child never dispatched to")
	}
	if shard.Resubmissions() != c.Resubmissions {
		t.Fatal("Resubmissions() disagrees with Counters()")
	}
}

// Only when every child fails a chunk does the stream fail, with a typed
// ChunkError naming the chunk's job index range so the run can be resumed.
func TestShardFailsWhenAllChildrenFail(t *testing.T) {
	jobs := gridJobs(t)[:10]
	dead1, dead2 := &flakyBackend{inner: schedule.Local{}}, &flakyBackend{inner: schedule.Local{}}
	dead1.failN.Store(1 << 30)
	dead2.failN.Store(1 << 30)
	shard, err := schedule.NewShard(dead1, dead2)
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	err = shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4})
	if err == nil || !strings.Contains(err.Error(), "failed on all children") {
		t.Fatalf("all-dead shard: got %v", err)
	}
	var ce *schedule.ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *ChunkError: %v", err)
	}
	if ce.First != 0 || ce.Last != 4 {
		t.Fatalf("chunk error names jobs [%d,%d), want [0,4)", ce.First, ce.Last)
	}
	if !strings.Contains(ce.Error(), "flaky(local)") {
		t.Fatalf("chunk error does not name the children: %v", ce)
	}

	// A deterministic job error also fails — every child rejects it the
	// same way, and the index range points at the offending chunk.
	bad := []schedule.Job{{Instance: "x", Tree: jobs[0].Tree, Algorithm: "no-such-solver"}}
	healthy, err := schedule.NewShard(schedule.Local{}, schedule.Local{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = healthy.Run(context.Background(), bad, schedule.BatchOptions{})
	if err == nil || !strings.Contains(err.Error(), "no-such-solver") {
		t.Fatalf("job error not surfaced: %v", err)
	}
	if !errors.As(err, &ce) || ce.First != 0 || ce.Last != 1 {
		t.Fatalf("job error chunk range: %v", err)
	}
}
