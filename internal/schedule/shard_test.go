package schedule_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/schedule"
)

// flakyBackend fails its first failN Run calls, then delegates — the
// in-process stand-in for a scheduled server that drops out mid-grid.
type flakyBackend struct {
	inner schedule.Backend
	failN atomic.Int64
	runs  atomic.Int64
}

func (b *flakyBackend) Capabilities() schedule.Capabilities {
	c := b.inner.Capabilities()
	c.Name = "flaky(" + c.Name + ")"
	return c
}

func (b *flakyBackend) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	b.runs.Add(1)
	if b.failN.Add(-1) >= 0 {
		return nil, errors.New("flaky: connection reset")
	}
	return b.inner.Run(ctx, jobs, opt)
}

func (b *flakyBackend) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, b.Run, src, sink, opt)
}

func TestNewShardRejects(t *testing.T) {
	if _, err := schedule.NewShard(); err == nil {
		t.Fatal("empty shard accepted")
	}
	if _, err := schedule.NewShard(schedule.Local{}, nil); err == nil {
		t.Fatal("nil child accepted")
	}
}

// A shard over healthy children returns the rows of a Local run
// bit-identically (Seconds aside), via Run and via Stream.
func TestShardMatchesLocal(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shard, err := schedule.NewShard(schedule.Local{}, schedule.Local{}, schedule.Local{})
	if err != nil {
		t.Fatal(err)
	}
	if caps := shard.Capabilities(); !strings.HasPrefix(caps.Name, "shard(") {
		t.Fatalf("capabilities %+v", caps)
	}
	got, err := shard.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, got, "shard run vs local")

	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 3}); err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, sank.Rows(), "shard stream vs local")
	if n := shard.Resubmissions(); n != 0 {
		t.Fatalf("healthy shard recorded %d resubmissions", n)
	}
}

// A child that fails mid-grid costs resubmissions, not the batch: the
// failed chunks land on the other child and the merged rows stay
// bit-identical to a Local run.
func TestShardResubmitsFailedChunks(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyBackend{inner: schedule.Local{}}
	flaky.failN.Store(3) // drops its first three chunks, then recovers
	shard, err := schedule.NewShard(flaky, schedule.Local{})
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 2}); err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, sank.Rows(), "shard with flaky child vs local")
	if n := shard.Resubmissions(); n < 3 {
		t.Fatalf("expected ≥ 3 chunk resubmissions, counted %d", n)
	}
	if flaky.runs.Load() == 0 {
		t.Fatal("flaky child never dispatched to")
	}
}

// Only when every child fails a chunk does the stream fail, and the error
// names each child's failure.
func TestShardFailsWhenAllChildrenFail(t *testing.T) {
	jobs := gridJobs(t)[:4]
	dead1, dead2 := &flakyBackend{inner: schedule.Local{}}, &flakyBackend{inner: schedule.Local{}}
	dead1.failN.Store(1 << 30)
	dead2.failN.Store(1 << 30)
	shard, err := schedule.NewShard(dead1, dead2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = shard.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err == nil || !strings.Contains(err.Error(), "failed on all children") {
		t.Fatalf("all-dead shard: got %v", err)
	}

	// A deterministic job error also fails — after one round of children.
	bad := []schedule.Job{{Instance: "x", Tree: jobs[0].Tree, Algorithm: "no-such-solver"}}
	healthy, err := schedule.NewShard(schedule.Local{}, schedule.Local{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := healthy.Run(context.Background(), bad, schedule.BatchOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no-such-solver") {
		t.Fatalf("job error not surfaced: %v", err)
	}
}
