package schedule_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/minio"
	"repro/internal/ordering"
	"repro/internal/schedule"
	"repro/internal/sparse"
	"repro/internal/symbolic"
	"repro/internal/traversal"
	"repro/internal/tree"
)

// ---------------------------------------------------------------------------
// Legacy reference accounting, preserved verbatim from the seed revision of
// traversal.Peak / traversal.PeakBottomUp / minio.Simulate. The production
// code now delegates to schedule.Simulate; these copies keep the
// differential tests honest — the unified simulator must stay bit-identical
// to the original per-package loops.
// ---------------------------------------------------------------------------

// legacyPeak is the seed traversal.Peak accounting.
func legacyPeak(t *tree.Tree, order []int) int64 {
	readySum := t.F(t.Root())
	peak := int64(0)
	for _, i := range order {
		need := readySum + t.N(i) + t.ChildFileSum(i)
		if need > peak {
			peak = need
		}
		readySum += t.ChildFileSum(i) - t.F(i)
	}
	return peak
}

// legacyPeakBottomUp is the seed traversal.PeakBottomUp accounting.
func legacyPeakBottomUp(t *tree.Tree, order []int) int64 {
	var resident int64
	peak := int64(0)
	for _, i := range order {
		need := resident + t.F(i) + t.N(i)
		if need > peak {
			peak = need
		}
		resident += t.F(i) - t.ChildFileSum(i)
	}
	return peak
}

// legacySimulate is the seed minio.Simulate eviction accounting. Victim
// selection goes through the schedule Evictor (a verbatim port, itself
// pinned by the minio policy scenario tests); everything else — the
// resident-set bookkeeping, staging, I/O tally — is the original loop.
func legacySimulate(t *testing.T, tr *tree.Tree, order []int, m int64, ev schedule.Evictor) (int64, []schedule.WriteEvent) {
	t.Helper()
	p := tr.Len()
	pos := make([]int, p)
	for step, v := range order {
		pos[v] = step
	}
	// resident files ordered latest consumer first, as in the seed fileSet.
	var resident []int
	insert := func(node int) {
		i := 0
		for i < len(resident) && pos[resident[i]] > pos[node] {
			i++
		}
		resident = append(resident, 0)
		copy(resident[i+1:], resident[i:])
		resident[i] = node
	}
	removeNode := func(node int) {
		for i, v := range resident {
			if v == node {
				resident = append(resident[:i], resident[i+1:]...)
				return
			}
		}
		t.Fatalf("legacy: removing absent file %d", node)
	}
	insert(tr.Root())
	residentSum := tr.F(tr.Root())
	onDisk := make([]bool, p)
	var io int64
	var writes []schedule.WriteEvent
	for step, j := range order {
		if !onDisk[j] {
			removeNode(j)
			residentSum -= tr.F(j)
		}
		ioReq := residentSum + tr.MemReq(j) - m
		if ioReq > 0 {
			s := make([]int, 0, len(resident))
			for _, v := range resident {
				if tr.F(v) > 0 {
					s = append(s, v)
				}
			}
			victims, err := ev.SelectVictims(tr, s, ioReq)
			if err != nil {
				t.Fatalf("legacy: step %d: %v", step, err)
			}
			for _, v := range victims {
				removeNode(v)
				residentSum -= tr.F(v)
				onDisk[v] = true
				io += tr.F(v)
				writes = append(writes, schedule.WriteEvent{Step: step, Node: v, Size: tr.F(v)})
			}
		}
		if onDisk[j] {
			onDisk[j] = false
		}
		residentSum += tr.ChildFileSum(j)
		for k := 0; k < tr.NumChildren(j); k++ {
			insert(tr.Child(j, k))
		}
		if residentSum > m {
			t.Fatalf("legacy: accounting error at step %d", step)
		}
	}
	return io, writes
}

// ---------------------------------------------------------------------------
// Instance generators: random trees plus assembly trees built from the
// internal/sparse generators (the same pipeline the dataset uses).
// ---------------------------------------------------------------------------

func randomTree(t *testing.T, seed int64, nodes int) *tree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr, err := tree.Random(rng, tree.RandomOptions{Nodes: nodes, MaxF: 15, MaxN: 6, Attach: tree.AttachKind(seed % 3)})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// sparseTrees builds assembly trees from the internal/sparse generators:
// a 2D grid Laplacian and a random symmetric pattern, minimum-degree
// ordered and amalgamated.
func sparseTrees(t *testing.T) []*tree.Tree {
	t.Helper()
	var out []*tree.Tree
	specs := []func() (*sparse.Matrix, error){
		func() (*sparse.Matrix, error) { return sparse.Grid2D(7, 7) },
		func() (*sparse.Matrix, error) {
			m, err := sparse.RandomSymmetric(rand.New(rand.NewSource(11)), 60, 2.5)
			if err != nil {
				return nil, err
			}
			return m.Symmetrize(), nil
		},
	}
	for _, gen := range specs {
		m, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		perm, err := ordering.MinimumDegree(m)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := m.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := symbolic.AssemblyTree(pm, symbolic.AssemblyOptions{Relax: 2})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res.Tree)
	}
	return out
}

func testTrees(t *testing.T) []*tree.Tree {
	t.Helper()
	trees := sparseTrees(t)
	for seed := int64(0); seed < 25; seed++ {
		trees = append(trees, randomTree(t, seed, 4+int(seed%18)))
	}
	return trees
}

// ---------------------------------------------------------------------------
// Differential tests
// ---------------------------------------------------------------------------

// The unified simulator's peak must be bit-identical to the legacy in-core
// accounting, and to the delegating traversal.Peak, in both orientations.
func TestSimulateMatchesLegacyPeak(t *testing.T) {
	for _, tr := range testTrees(t) {
		order := tr.TopDown()
		sim, err := schedule.Simulate(tr, order, schedule.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if want := legacyPeak(tr, order); sim.Peak != want {
			t.Fatalf("peak %d != legacy %d (p=%d)", sim.Peak, want, tr.Len())
		}
		if sim.IO != 0 || sim.Writes != nil {
			t.Fatalf("in-core simulation produced I/O: %+v", sim)
		}
		got, err := traversal.Peak(tr, order)
		if err != nil {
			t.Fatal(err)
		}
		if got != sim.Peak {
			t.Fatalf("traversal.Peak %d != simulator %d", got, sim.Peak)
		}
		// Bottom-up orientation and the Section III-C reversal lemma.
		bu := tree.ReverseOrder(order)
		simBU, err := schedule.Simulate(tr, bu, schedule.Config{Direction: schedule.BottomUp})
		if err != nil {
			t.Fatal(err)
		}
		if want := legacyPeakBottomUp(tr, bu); simBU.Peak != want {
			t.Fatalf("bottom-up peak %d != legacy %d", simBU.Peak, want)
		}
	}
}

// The unified simulator's eviction replay must be bit-identical to the
// legacy minio accounting — same I/O volume and same write schedule — for
// every policy, and the delegating minio.Simulate must agree.
func TestSimulateMatchesLegacyEviction(t *testing.T) {
	for _, tr := range testTrees(t) {
		order := traversal.BestPostOrder(tr).Order
		opt := traversal.MinMem(tr).Memory
		lo := tr.MaxMemReq()
		for _, m := range []int64{lo, (lo + opt) / 2} {
			for i, name := range schedule.EvictionPolicyNames() {
				ev, err := schedule.EvictorByName(name, 0)
				if err != nil {
					t.Fatal(err)
				}
				sim, err := schedule.Simulate(tr, order, schedule.Config{Memory: m, Evict: ev})
				if err != nil {
					t.Fatalf("%s M=%d: %v", name, m, err)
				}
				wantIO, wantWrites := legacySimulate(t, tr, order, m, ev)
				if sim.IO != wantIO {
					t.Fatalf("%s M=%d: IO %d != legacy %d", name, m, sim.IO, wantIO)
				}
				if len(sim.Writes) != len(wantWrites) {
					t.Fatalf("%s M=%d: %d writes != legacy %d", name, m, len(sim.Writes), len(wantWrites))
				}
				for k := range wantWrites {
					if sim.Writes[k] != wantWrites[k] {
						t.Fatalf("%s M=%d: write %d = %+v != legacy %+v", name, m, k, sim.Writes[k], wantWrites[k])
					}
				}
				if sim.Peak > m {
					t.Fatalf("%s M=%d: peak %d exceeds budget", name, m, sim.Peak)
				}
				// The delegating minio.Simulate returns the same result.
				legacyAPI, err := minio.Simulate(tr, order, m, minio.Policies[i])
				if err != nil {
					t.Fatal(err)
				}
				if legacyAPI.IO != sim.IO || len(legacyAPI.Writes) != len(sim.Writes) {
					t.Fatalf("%s M=%d: minio.Simulate disagrees with simulator", name, m)
				}
			}
		}
	}
}

// Every simulated write schedule must pass the independent Algorithm 2
// checker (minio.CheckOutOfCore keeps its own accounting) with the same
// I/O volume.
func TestSimulateAgainstAlgorithm2Checker(t *testing.T) {
	for _, tr := range testTrees(t) {
		order := traversal.MinMem(tr).Order
		m := tr.MaxMemReq()
		for _, name := range schedule.EvictionPolicyNames() {
			ev, err := schedule.EvictorByName(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := schedule.Simulate(tr, order, schedule.Config{Memory: m, Evict: ev})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			res := minio.Result{IO: sim.IO, Writes: sim.Writes}
			io, err := minio.CheckOutOfCore(tr, order, res.Tau(tr.Len()), m)
			if err != nil {
				t.Fatalf("%s: checker rejected: %v", name, err)
			}
			if io != sim.IO {
				t.Fatalf("%s: checker IO %d != simulated %d", name, io, sim.IO)
			}
		}
	}
}

// Feasibility mode: a finite budget with no evictor accepts exactly the
// orders whose peak fits.
func TestSimulateFeasibility(t *testing.T) {
	tr := randomTree(t, 7, 12)
	order := traversal.MinMem(tr).Order
	peak, err := traversal.Peak(tr, order)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.Simulate(tr, order, schedule.Config{Memory: peak}); err != nil {
		t.Fatalf("feasible order rejected: %v", err)
	}
	if _, err := schedule.Simulate(tr, order, schedule.Config{Memory: peak - 1}); err == nil {
		t.Fatal("infeasible budget accepted")
	}
}

func TestSimulateRejects(t *testing.T) {
	tr := randomTree(t, 3, 9)
	order := tr.TopDown()
	if _, err := schedule.Simulate(tr, order[1:], schedule.Config{}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := schedule.Simulate(tr, order, schedule.Config{Direction: schedule.BottomUp}); err == nil {
		t.Fatal("top-down order accepted as bottom-up")
	}
	if _, err := schedule.Simulate(tr, tree.ReverseOrder(order), schedule.Config{Direction: schedule.BottomUp, Evict: schedule.LSNF()}); err == nil {
		t.Fatal("bottom-up eviction accepted")
	}
	// Budget below the largest MemReq: no policy can free enough.
	if _, err := schedule.Simulate(tr, order, schedule.Config{Memory: tr.MaxMemReq() - 1, Evict: schedule.LSNF()}); err == nil {
		t.Fatal("budget below MaxMemReq accepted")
	}
	// A vacuous Best-K window is rejected at construction time with the
	// typed error — it can no longer reach SelectVictims.
	for _, window := range []int{0, -1, schedule.MaxBestKWindow + 1} {
		_, err := schedule.BestK(window)
		var wre *schedule.WindowRangeError
		if !errors.As(err, &wre) || wre.Window != window {
			t.Fatalf("Best-K window %d: error %v, want *WindowRangeError", window, err)
		}
	}
	if _, err := schedule.EvictorByName("best-k", 21); err == nil {
		t.Fatal("Best-K window 21 accepted")
	}
}

// Config.Profile: the simulator's hill–valley decomposition (computed by
// the shared hillvalley kernel) is canonical, starts at the peak, and on
// the Liu-optimal bottom-up traversal reproduces Liu's certificate
// profile exactly.
func TestSimulateProfile(t *testing.T) {
	for _, tr := range testTrees(t) {
		res := traversal.LiuExact(tr)
		bu := tree.ReverseOrder(res.Order) // back to the in-tree view
		sim, err := schedule.Simulate(tr, bu, schedule.Config{Direction: schedule.BottomUp, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		if want := traversal.LiuProfile(tr); !reflect.DeepEqual(sim.Profile, want) {
			t.Fatalf("replay profile %v != Liu certificate %v", sim.Profile, want)
		}
		if sim.Profile[0].Hill != sim.Peak {
			t.Fatalf("first hill %d != peak %d", sim.Profile[0].Hill, sim.Peak)
		}
		// Top-down: the profile is canonical and anchored at the peak.
		td, err := schedule.Simulate(tr, res.Order, schedule.Config{Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		if td.Profile[0].Hill != td.Peak {
			t.Fatalf("top-down first hill %d != peak %d", td.Profile[0].Hill, td.Peak)
		}
		for i := 1; i < len(td.Profile); i++ {
			if td.Profile[i].Hill > td.Profile[i-1].Hill || td.Profile[i].Valley < td.Profile[i-1].Valley {
				t.Fatalf("top-down profile not canonical: %v", td.Profile)
			}
		}
		// Without the flag the profile stays nil.
		plain, err := schedule.Simulate(tr, res.Order, schedule.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Profile != nil {
			t.Fatalf("profile recorded without Config.Profile: %v", plain.Profile)
		}
	}
}
