package schedule

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/tree"
)

// JobSource is a pull iterator over jobs: the streaming half of the batch
// API. Next returns the next job of the stream; the boolean is false when
// the stream is exhausted (the job is the zero value and the error nil). A
// non-nil error aborts the stream. Sources are consumed by one goroutine at
// a time and need not be safe for concurrent use; after Stream returns an
// error, its winding-down reader may still complete one in-flight Next
// call, so an aborted source must not be handed to another consumer.
type JobSource interface {
	Next() (Job, bool, error)
}

// RowSink receives result rows. Backends deliver rows to the sink in job
// order (the order the source produced the jobs), one call at a time; a
// non-nil error aborts the stream.
type RowSink interface {
	Push(Row) error
}

// SourceFunc adapts a function to a JobSource.
type SourceFunc func() (Job, bool, error)

// Next implements JobSource.
func (f SourceFunc) Next() (Job, bool, error) { return f() }

// SinkFunc adapts a function to a RowSink.
type SinkFunc func(Row) error

// Push implements RowSink.
func (f SinkFunc) Push(r Row) error { return f(r) }

// SliceSource returns a JobSource over a materialized job slice.
func SliceSource(jobs []Job) JobSource {
	i := 0
	return SourceFunc(func() (Job, bool, error) {
		if i >= len(jobs) {
			return Job{}, false, nil
		}
		j := jobs[i]
		i++
		return j, true, nil
	})
}

// Chain concatenates sources: each is drained in turn.
func Chain(srcs ...JobSource) JobSource {
	k := 0
	return SourceFunc(func() (Job, bool, error) {
		for k < len(srcs) {
			j, ok, err := srcs[k].Next()
			if err != nil || ok {
				return j, ok, err
			}
			k++
		}
		return Job{}, false, nil
	})
}

// DefaultChunkSize is the job-chunk granularity of the streaming engine
// when StreamOptions.ChunkSize is unset: the unit of dispatch, retry and
// in-flight accounting.
const DefaultChunkSize = 64

// StreamOptions configures a Backend.Stream call.
type StreamOptions struct {
	// Workers bounds each chunk evaluation's worker pool, exactly like
	// BatchOptions.Workers (≤ 0 selects GOMAXPROCS).
	Workers int
	// ChunkSize is the number of jobs evaluated per dispatch unit
	// (≤ 0 selects DefaultChunkSize). Peak resident state on the streaming
	// path is bounded by ChunkSize × InFlight jobs and rows.
	ChunkSize int
	// InFlight bounds the number of chunks being evaluated (or awaiting
	// the ordered merge) at once. ≤ 0 selects a backend-specific default:
	// 2 for pipelined single backends, 2 × children for Shard.
	InFlight int
}

func (opt StreamOptions) chunking(defaultInFlight int) (chunkSize, inFlight int) {
	chunkSize = opt.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	inFlight = opt.InFlight
	if inFlight <= 0 {
		inFlight = defaultInFlight
	}
	if inFlight < 1 {
		inFlight = 1
	}
	return chunkSize, inFlight
}

// RunFunc is the batch-evaluation half of a Backend, the shape StreamChunked
// builds a streaming evaluator from.
type RunFunc func(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error)

// StreamChunked implements Backend.Stream for any batch evaluator: it cuts
// the source into chunks of opt.ChunkSize, evaluates up to opt.InFlight of
// them concurrently with run, and pushes the rows to sink in job order (an
// order-preserving merge, so the streamed rows are bit-identical, in
// sequence, to a single Run over the materialized jobs). At most InFlight
// chunks exist at any moment — read from the source but not yet drained into
// the sink — so peak resident jobs and rows are bounded by
// ChunkSize × InFlight regardless of the stream length.
//
// The engine recycles its chunk machinery: the job slice passed to run and
// the row slice run returns go back to internal pools once the chunk's rows
// reach the sink, so chunk residency costs a constant pool of buffers
// instead of fresh allocations per chunk. run must therefore not retain
// either slice past its return (every backend in the repository already
// behaves this way; rows and jobs are plain values, so sinks and stores
// keeping pushed rows are unaffected).
func StreamChunked(ctx context.Context, run RunFunc, src JobSource, sink RowSink, opt StreamOptions) error {
	chunkSize, inFlight := opt.chunking(2)
	return streamChunks(ctx, src, sink, chunkSize, inFlight, func(ctx context.Context, _ int, jobs []Job) ([]Row, error) {
		return run(ctx, jobs, BatchOptions{Workers: opt.Workers})
	})
}

// streamResult is one chunk's outcome, delivered on its pooled result
// channel.
type streamResult struct {
	jobs int
	rows []Row
	err  error
}

// streamWork is one dispatched chunk: its global job offset, the pooled job
// buffer, and the channel its result is owed on.
type streamWork struct {
	start int
	jobs  *[]Job
	rc    chan streamResult
}

// The streaming engine's pools: job chunk buffers, row slices and result
// channels, recycled across chunks and across streams (the generalization
// of the hillvalley kernel and simScratch arenas to the batch spine). Row
// slices circulate through Run implementations — Local and Cached draw
// their result slices from getRowSlice — and return to the pool in the
// merge loop once the sink has consumed the chunk.
var (
	jobChunks = sync.Pool{New: func() any {
		p := make([]Job, 0, DefaultChunkSize)
		return &p
	}}
	rowSlices   = sync.Pool{New: func() any { return new([]Row) }}
	resultChans = sync.Pool{New: func() any { return make(chan streamResult, 1) }}
)

// putJobChunk clears the buffer (dropping tree and order references) and
// returns it to the pool.
func putJobChunk(p *[]Job) {
	clear(*p)
	*p = (*p)[:0]
	jobChunks.Put(p)
}

// getRowSlice returns a length-n row slice from the stream engine's pool.
// The caller owns it; slices handed back via putRowSlice recirculate.
func getRowSlice(n int) []Row {
	p := rowSlices.Get().(*[]Row)
	s := *p
	if cap(s) < n {
		return make([]Row, n)
	}
	return s[:n]
}

// putRowSlice clears the slice (dropping its string references) and returns
// it to the pool. Only an owner that got the slice from a Run it fully
// consumed may call this.
func putRowSlice(rows []Row) {
	clear(rows)
	rows = rows[:0]
	rowSlices.Put(&rows)
}

// streamChunks is the shared streaming engine behind every Backend.Stream:
// an ordered fan-out/fan-in pipeline. The dispatcher acquires an in-flight
// slot before reading each chunk (bounding read-ahead) and hands chunks to
// a fixed pool of inFlight evaluation workers; the merge loop drains
// per-chunk result channels in dispatch order, releasing the slot only
// after the chunk's rows reach the sink — so ChunkSize × InFlight bounds
// everything resident at once, and the pooled job/row/channel buffers make
// that residency allocation-free in the steady state. eval receives each
// chunk's global job offset within the stream, so evaluators can report
// failures by source index (the Shard's ChunkError).
func streamChunks(ctx context.Context, src JobSource, sink RowSink, chunkSize, inFlight int, eval func(ctx context.Context, start int, jobs []Job) ([]Row, error)) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sem := make(chan struct{}, inFlight)
	order := make(chan chan streamResult, inFlight)
	work := make(chan streamWork)

	// Fixed worker pool, one goroutine per in-flight slot. A worker finishes
	// a chunk by sending on its buffered result channel (never blocking), so
	// every worker is reusable the moment its evaluation returns, and the
	// sem bound guarantees at most inFlight chunks are ever awaiting a
	// worker — the unbuffered work channel cannot deadlock the dispatcher.
	for i := 0; i < inFlight; i++ {
		go func() {
			for w := range work {
				rows, err := eval(ctx, w.start, *w.jobs)
				n := len(*w.jobs)
				putJobChunk(w.jobs)
				w.rc <- streamResult{jobs: n, rows: rows, err: err}
			}
		}()
	}

	go func() {
		defer close(order)
		defer close(work)
		offset := 0
		for {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			jp := jobChunks.Get().(*[]Job)
			jobs, err := readChunk(src, chunkSize, (*jp)[:0])
			*jp = jobs
			if err != nil {
				putJobChunk(jp)
				rc := resultChans.Get().(chan streamResult)
				rc <- streamResult{err: err}
				order <- rc
				return
			}
			if len(jobs) == 0 {
				putJobChunk(jp)
				return
			}
			start := offset
			offset += len(jobs)
			rc := resultChans.Get().(chan streamResult)
			select {
			case work <- streamWork{start: start, jobs: jp, rc: rc}:
			case <-ctx.Done():
				return
			}
			order <- rc
		}
	}()

	var firstErr error
	for rc := range order {
		res := <-rc
		// The channel's one send has been received, so it is empty and its
		// worker is done with it: safe to recirculate. Channels abandoned on
		// the abort path below are left to the garbage collector — a
		// straggler may still send on them.
		resultChans.Put(rc)
		switch {
		case res.err != nil:
			firstErr = res.err
		case len(res.rows) != res.jobs:
			firstErr = fmt.Errorf("schedule: stream chunk returned %d rows for %d jobs", len(res.rows), res.jobs)
		default:
			pushed := true
			for _, row := range res.rows {
				if err := sink.Push(row); err != nil {
					firstErr = err
					pushed = false
					break
				}
			}
			if pushed {
				putRowSlice(res.rows)
			}
		}
		<-sem
		if firstErr != nil {
			// Return without waiting for order to close: the dispatcher may
			// be blocked in src.Next() (a pipe source with no data yet) and
			// must not hold the error hostage. cancel() (deferred) winds it
			// and the workers down; nothing but this loop touches the sink,
			// and the bounded order/sem/work capacities mean no send ever
			// blocks forever, so the stragglers exit on their own.
			return firstErr
		}
	}
	// The dispatcher stops silently when the context is cancelled between
	// chunks; report that as the stream's error rather than letting a
	// truncated delivery read as success.
	return ctx.Err()
}

// readChunk pulls up to n jobs from src, appending into the pooled buffer.
// On a source error the partially filled buffer comes back with the error
// so the caller can still recycle it.
func readChunk(src JobSource, n int, jobs []Job) ([]Job, error) {
	for len(jobs) < n {
		j, ok, err := src.Next()
		if err != nil {
			return jobs, err
		}
		if !ok {
			break
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// RunViaStream implements Backend.Run on top of Backend.Stream: the jobs
// are streamed from a SliceSource and the rows collected in job order, with
// BatchOptions callbacks fired as each row is merged. It is the default
// adapter for stream-first backends (Shard implements Run this way),
// mirroring how RunBatch wraps Local.
func RunViaStream(ctx context.Context, b Backend, jobs []Job, opt BatchOptions) ([]Row, error) {
	rows := make([]Row, 0, len(jobs))
	sink := SinkFunc(func(r Row) error {
		i := len(rows)
		rows = append(rows, r)
		if opt.OnRow != nil {
			opt.OnRow(r)
		}
		if opt.OnRowIndexed != nil {
			opt.OnRowIndexed(i, r)
		}
		return nil
	})
	if err := b.Stream(ctx, SliceSource(jobs), sink, StreamOptions{Workers: opt.Workers}); err != nil {
		return nil, err
	}
	if len(rows) != len(jobs) {
		return nil, fmt.Errorf("schedule: stream produced %d rows for %d jobs", len(rows), len(jobs))
	}
	return rows, nil
}

// MinMemoryGridSource is the lazy MinMemoryGrid: it yields the same jobs in
// the same instance-major order without materializing the slice.
func MinMemoryGridSource(insts []Instance, algorithms []string) JobSource {
	i, k := 0, 0
	return SourceFunc(func() (Job, bool, error) {
		for i < len(insts) {
			if k < len(algorithms) {
				j := Job{Instance: insts[i].Name, Tree: insts[i].Tree, Algorithm: algorithms[k]}
				k++
				return j, true, nil
			}
			i, k = i+1, 0
		}
		return Job{}, false, nil
	})
}

// MinIOGridSource is the lazy MinIOGrid: jobs come out in the same
// instance-major (then budget, then algorithm) order, but the per-instance
// preparation — running the orderBy solver and expanding the budget sweep —
// happens on demand as the stream reaches each instance, so a corpus larger
// than memory can flow through without materializing every replay order at
// once. The orderBy name is validated eagerly.
func MinIOGridSource(insts []Instance, orderBy string, algorithms []string, memories func(*tree.Tree, Outcome) ([]int64, error)) (JobSource, error) {
	orderAlg, err := Lookup(orderBy)
	if err != nil {
		return nil, err
	}
	if orderAlg.Kind() != KindMinMemory {
		return nil, fmt.Errorf("schedule: orderBy algorithm %q is not a MinMemory solver", orderBy)
	}
	var (
		i       int
		order   []int
		mems    []int64
		mi, ki  int
		prepped bool
	)
	return SourceFunc(func() (Job, bool, error) {
		for i < len(insts) {
			if !prepped {
				out, err := orderAlg.Run(Request{Tree: insts[i].Tree})
				if err != nil {
					return Job{}, false, fmt.Errorf("schedule: %s: %s: %w", insts[i].Name, orderBy, err)
				}
				if out.Order == nil {
					return Job{}, false, fmt.Errorf("schedule: %s returns no traversal to replay", orderBy)
				}
				mems, err = memories(insts[i].Tree, out)
				if err != nil {
					return Job{}, false, fmt.Errorf("schedule: %s: %w", insts[i].Name, err)
				}
				order, mi, ki, prepped = out.Order, 0, 0, true
			}
			if mi < len(mems) {
				if ki < len(algorithms) {
					j := Job{Instance: insts[i].Name, Tree: insts[i].Tree, Algorithm: algorithms[ki], Order: order, Memory: mems[mi]}
					ki++
					return j, true, nil
				}
				mi, ki = mi+1, 0
				continue
			}
			i, prepped = i+1, false
		}
		return Job{}, false, nil
	}), nil
}

// InstanceSource is a pull iterator over named trees: the streaming
// counterpart of an []Instance, letting corpus pipelines feed grids
// without materializing every tree at once. Like JobSource, sources are
// consumed by one goroutine at a time.
type InstanceSource interface {
	NextInstance() (Instance, bool, error)
}

// InstanceSliceSource adapts a materialized instance list.
func InstanceSliceSource(insts []Instance) InstanceSource {
	i := 0
	return instanceSourceFunc(func() (Instance, bool, error) {
		if i >= len(insts) {
			return Instance{}, false, nil
		}
		inst := insts[i]
		i++
		return inst, true, nil
	})
}

type instanceSourceFunc func() (Instance, bool, error)

func (f instanceSourceFunc) NextInstance() (Instance, bool, error) { return f() }

// GridSource streams the full per-instance experiment grid over an
// instance stream: for each instance, every MinMemory algorithm, then the
// orderBy solver's traversal replayed under every eviction policy at each
// memory budget derived by memories — the streaming fusion of
// MinMemoryGridSource and MinIOGridSource, pulling instances one at a time
// so a corpus pipeline can overlap tree construction with evaluation. The
// orderBy name is validated eagerly; instances are prepared lazily.
func GridSource(src InstanceSource, algorithms []string, orderBy string, policies []string, memories func(*tree.Tree, Outcome) ([]int64, error)) (JobSource, error) {
	orderAlg, err := Lookup(orderBy)
	if err != nil {
		return nil, err
	}
	if orderAlg.Kind() != KindMinMemory {
		return nil, fmt.Errorf("schedule: orderBy algorithm %q is not a MinMemory solver", orderBy)
	}
	var (
		cur     Instance
		have    bool
		ai      int
		order   []int
		mems    []int64
		mi, ki  int
		prepped bool
	)
	return SourceFunc(func() (Job, bool, error) {
		for {
			if !have {
				inst, ok, err := src.NextInstance()
				if err != nil || !ok {
					return Job{}, false, err
				}
				cur, have, ai, prepped = inst, true, 0, false
			}
			if ai < len(algorithms) {
				j := Job{Instance: cur.Name, Tree: cur.Tree, Algorithm: algorithms[ai]}
				ai++
				return j, true, nil
			}
			if len(policies) > 0 {
				if !prepped {
					out, err := orderAlg.Run(Request{Tree: cur.Tree})
					if err != nil {
						return Job{}, false, fmt.Errorf("schedule: %s: %s: %w", cur.Name, orderBy, err)
					}
					if out.Order == nil {
						return Job{}, false, fmt.Errorf("schedule: %s returns no traversal to replay", orderBy)
					}
					mems, err = memories(cur.Tree, out)
					if err != nil {
						return Job{}, false, fmt.Errorf("schedule: %s: %w", cur.Name, err)
					}
					order, mi, ki, prepped = out.Order, 0, 0, true
				}
				if mi < len(mems) {
					if ki < len(policies) {
						j := Job{Instance: cur.Name, Tree: cur.Tree, Algorithm: policies[ki], Order: order, Memory: mems[mi]}
						ki++
						return j, true, nil
					}
					mi, ki = mi+1, 0
					continue
				}
			}
			have = false
		}
	}), nil
}

// TreeDirSource streams jobs from the .tree files of a directory: every
// file (sorted by name, so the stream is deterministic) crossed with the
// given algorithm names, instance-named after the file. Files are parsed
// lazily, one at a time, as the stream reaches them.
func TreeDirSource(dir string, algorithms []string) (JobSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("schedule: tree dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".tree" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var (
		i   int
		k   int
		cur *tree.Tree
	)
	return SourceFunc(func() (Job, bool, error) {
		for i < len(names) {
			if cur == nil {
				f, err := os.Open(filepath.Join(dir, names[i]))
				if err != nil {
					return Job{}, false, fmt.Errorf("schedule: tree dir: %w", err)
				}
				cur, err = tree.Read(f)
				f.Close()
				if err != nil {
					return Job{}, false, fmt.Errorf("schedule: %s: %w", names[i], err)
				}
				k = 0
			}
			if k < len(algorithms) {
				name := names[i][:len(names[i])-len(".tree")]
				j := Job{Instance: name, Tree: cur, Algorithm: algorithms[k]}
				k++
				return j, true, nil
			}
			i, cur = i+1, nil
		}
		return Job{}, false, nil
	}), nil
}

// TreeStreamSource streams jobs from consecutive .tree documents on r
// (e.g. a corpus piped to stdin): each decoded tree crossed with the given
// algorithm names, instances named prefix-0, prefix-1, … in stream order.
// Trees are decoded lazily, one document at a time, so a corpus larger than
// memory can flow through as long as rows drain.
func TreeStreamSource(r io.Reader, prefix string, algorithms []string) JobSource {
	dec := tree.NewDecoder(r)
	var (
		n    int
		k    int
		cur  *tree.Tree
		done bool
	)
	return SourceFunc(func() (Job, bool, error) {
		for !done {
			if cur == nil {
				t, err := dec.Decode()
				if err == io.EOF {
					done = true
					return Job{}, false, nil
				}
				if err != nil {
					return Job{}, false, fmt.Errorf("schedule: tree stream: %w", err)
				}
				cur, k = t, 0
			}
			if k < len(algorithms) {
				j := Job{Instance: prefix + "-" + strconv.Itoa(n), Tree: cur, Algorithm: algorithms[k]}
				k++
				return j, true, nil
			}
			n, cur = n+1, nil
		}
		return Job{}, false, nil
	})
}

// CSVSink is a RowSink streaming rows as CSV, header first. Flush must be
// called once the stream completes; Push is not safe for concurrent use
// (the RowSink contract already serializes it).
type CSVSink struct {
	cw     *csv.Writer
	header bool
}

// NewCSVSink returns a sink writing CSV to w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{cw: csv.NewWriter(w)} }

// Push implements RowSink.
func (s *CSVSink) Push(r Row) error {
	if !s.header {
		s.header = true
		if err := s.cw.Write(rowCSVHeader); err != nil {
			return err
		}
	}
	if err := s.cw.Write(rowCSVRecord(r)); err != nil {
		return err
	}
	return nil
}

// Flush writes the header (for an empty stream) and flushes buffered rows.
func (s *CSVSink) Flush() error {
	if !s.header {
		s.header = true
		if err := s.cw.Write(rowCSVHeader); err != nil {
			return err
		}
	}
	s.cw.Flush()
	return s.cw.Error()
}

// JSONLSink is a RowSink streaming rows as JSON Lines.
type JSONLSink struct{ enc *json.Encoder }

// NewJSONLSink returns a sink writing JSON Lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{enc: json.NewEncoder(w)} }

// Push implements RowSink.
func (s *JSONLSink) Push(r Row) error { return s.enc.Encode(r) }

// MultiSink fans one row stream out to several sinks, in order.
func MultiSink(sinks ...RowSink) RowSink {
	return SinkFunc(func(r Row) error {
		for _, s := range sinks {
			if err := s.Push(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// Collector is a RowSink accumulating rows in order, plus a mutex so
// callers that share it across streams stay race-free.
type Collector struct {
	mu   sync.Mutex
	rows []Row
}

// Push implements RowSink.
func (c *Collector) Push(r Row) error {
	c.mu.Lock()
	c.rows = append(c.rows, r)
	c.mu.Unlock()
	return nil
}

// Rows returns the collected rows.
func (c *Collector) Rows() []Row {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rows
}
