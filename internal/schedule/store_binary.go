package schedule

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// The binary row store is the FormatBinary sibling of JSONLStore: the same
// append-only key→row entries, but in the binary row wire form so a Put
// costs no json.Marshal. The file is
//
//	WireMagic, 'S', RowStoreVersion
//	per entry: uvarint payload length,
//	           payload = uvarint key length + key bytes + AppendRow(row)
//
// Unlike JSON Lines, a length-prefixed stream cannot resynchronize after a
// damaged entry, so healing keeps every entry before the first corruption
// and compacts the rest away (a truncated tail after a crash — the common
// damage — loses only the torn entry, exactly like the JSONL store).

// rowStoreKind is the stream-type byte of a binary row store file.
const rowStoreKind = 'S'

// RowStoreVersion is the current (and only) binary row store version.
const RowStoreVersion = 1

// BinaryStore is a Store persisted as an append-only length-prefixed binary
// file, optionally bounded (StoreOptions). It shares the JSONL store's
// load/heal/compact life cycle; construct with OpenBinaryStoreWith.
type BinaryStore struct {
	mu      sync.Mutex
	lru     *lruRows
	path    string
	f       *os.File
	w       *bufio.Writer
	scratch []byte
	closed  bool
}

// OpenBinaryStore opens (creating if absent) the unbounded binary store at
// path; see OpenBinaryStoreWith.
func OpenBinaryStore(path string) (*BinaryStore, error) {
	return OpenBinaryStoreWith(path, StoreOptions{})
}

// OpenBinaryStoreWith opens (creating if absent) the binary store at path
// and loads every entry into memory, with the same semantics as
// OpenJSONLStoreWith: a truncated or corrupt tail keeps the surviving
// entries and compacts the file, and MaxEntries trims an over-budget file
// to the newest rows on load. One deliberate difference: a non-empty file
// that is not a binary row store at all (wrong magic — say a JSONL store
// opened with the wrong -cache-format) is an error rather than healable
// damage, so a format mix-up cannot silently erase a good cache.
func OpenBinaryStoreWith(path string, opt StoreOptions) (*BinaryStore, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("schedule: read row store: %w", err)
	}
	lru := newLRURows(opt.MaxEntries)
	damaged := false
	if len(data) > 0 {
		if len(data) < 3 || data[0] != WireMagic || data[1] != rowStoreKind {
			return nil, fmt.Errorf("schedule: %s is not a binary row store (open it as jsonl, or remove it)", path)
		}
		if data[2] != RowStoreVersion {
			return nil, fmt.Errorf("schedule: unsupported binary row store version %d (want %d)", data[2], RowStoreVersion)
		}
		data = data[3:]
	} else {
		// A fresh or empty file gets its header on the first append.
		damaged = len(data) == 0 && err == nil
	}
	loaded := 0
	d := rowDecoder{intern: make(map[string]string)}
	for len(data) > 0 {
		key, row, rest, err := decodeStoreEntry(&d, data)
		if err != nil {
			// First damaged entry: keep the survivors, drop the rest — the
			// stream cannot resync past it.
			damaged = true
			break
		}
		data = rest
		lru.put(key, row)
		loaded++
	}
	// Load-time trimming is compaction, not eviction (see the JSONL store).
	compacted := lru.evicted > 0
	lru.evicted = 0
	if damaged || compacted || loaded > len(lru.m) {
		if err := rewriteBinary(path, lru); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("schedule: open row store: %w", err)
	}
	s := &BinaryStore{lru: lru, path: path, f: f, w: bufio.NewWriter(f)}
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		if _, err := s.w.Write([]byte{WireMagic, rowStoreKind, RowStoreVersion}); err != nil {
			f.Close()
			return nil, fmt.Errorf("schedule: open row store: %w", err)
		}
	}
	return s, nil
}

// appendStoreEntry serializes one key→row entry (length prefix included).
func appendStoreEntry(dst []byte, key string, row Row) []byte {
	// Encode the payload after a reserved gap, then fill the length in; the
	// payload length always fits MaxVarintLen64 bytes.
	start := len(dst)
	dst = append(dst, make([]byte, binary.MaxVarintLen64)...)
	dst = appendString(dst, key)
	dst = AppendRow(dst, row)
	payload := len(dst) - start - binary.MaxVarintLen64
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(payload))
	// Slide the payload onto the length prefix to close the gap.
	copy(dst[start+n:], dst[start+binary.MaxVarintLen64:])
	copy(dst[start:], lenBuf[:n])
	return dst[:start+n+payload]
}

// decodeStoreEntry parses one entry from the front of data.
func decodeStoreEntry(d *rowDecoder, data []byte) (string, Row, []byte, error) {
	payloadLen, data, err := decodeUvarint(data)
	if err != nil {
		return "", Row{}, nil, fmt.Errorf("schedule: binary row store entry has a malformed length")
	}
	if payloadLen > uint64(len(data)) || payloadLen > maxRowFrame {
		return "", Row{}, nil, fmt.Errorf("schedule: binary row store entry length %d does not fit", payloadLen)
	}
	payload, rest := data[:payloadLen], data[payloadLen:]
	keyBytes, payload, err := decodeBytes(payload)
	if err != nil || len(keyBytes) == 0 {
		return "", Row{}, nil, fmt.Errorf("schedule: binary row store entry has a malformed key")
	}
	row, payload, err := d.decode(payload)
	if err != nil {
		return "", Row{}, nil, err
	}
	if len(payload) != 0 {
		return "", Row{}, nil, fmt.Errorf("schedule: binary row store entry has %d trailing bytes", len(payload))
	}
	return d.str(keyBytes), row, rest, nil
}

// rewriteBinary atomically replaces the store file with the surviving
// entries, oldest first, so a reload sees the same recency order.
func rewriteBinary(path string, lru *lruRows) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	buf := []byte{WireMagic, rowStoreKind, RowStoreVersion}
	for e := lru.order.Back(); e != nil; e = e.Prev() {
		entry := e.Value.(*lruEntry)
		buf = appendStoreEntry(buf, entry.key, entry.row)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("schedule: compact row store: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *BinaryStore) Get(key string) (Row, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.get(key)
}

// Put implements Store: the entry is recorded in memory (evicting the
// least-recently-used row when over MaxEntries) and appended to the file in
// the binary wire form — no marshalling allocations on the steady state,
// the scratch buffer is reused across puts.
func (s *BinaryStore) Put(key string, row Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lru.put(key, row)
	s.scratch = appendStoreEntry(s.scratch[:0], key, row)
	if _, err := s.w.Write(s.scratch); err != nil {
		return fmt.Errorf("schedule: append row store: %w", err)
	}
	return nil
}

// Len returns the number of cached rows resident in memory.
func (s *BinaryStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lru.m)
}

// Evictions returns the number of rows evicted by the MaxEntries bound
// since the store was opened.
func (s *BinaryStore) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.evicted
}

// Close flushes pending appends and closes the file; a bounded store
// compacts on the way out, exactly like the JSONL store. Closing an already
// closed store is a no-op.
func (s *BinaryStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	if s.lru.max > 0 {
		return rewriteBinary(s.path, s.lru)
	}
	return nil
}
