package schedule_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// countingBackend wraps an inner backend and counts the jobs that actually
// reach it — the probe for "a warm rerun executes zero algorithm runs".
type countingBackend struct {
	inner schedule.Backend
	jobs  atomic.Int64
}

func (b *countingBackend) Capabilities() schedule.Capabilities {
	return b.inner.Capabilities()
}

func (b *countingBackend) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	b.jobs.Add(int64(len(jobs)))
	return b.inner.Run(ctx, jobs, opt)
}

func (b *countingBackend) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, b.Run, src, sink, opt)
}

func gridJobs(t *testing.T) []schedule.Job {
	t.Helper()
	insts := batchInstances(t)
	jobs := schedule.MinMemoryGrid(insts, []string{"postorder", "minmem"})
	memories := func(tr *tree.Tree, out schedule.Outcome) ([]int64, error) {
		return []int64{tr.MaxMemReq()}, nil
	}
	polJobs, err := schedule.MinIOGrid(context.Background(), insts, "minmem", schedule.EvictionPolicyNames(), memories, 0)
	if err != nil {
		t.Fatal(err)
	}
	return append(jobs, polJobs...)
}

func sameRowsNoTime(t *testing.T, a, b []schedule.Row, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d rows vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		x.Seconds, y.Seconds = 0, 0
		if x != y {
			t.Fatalf("%s: row %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// A cold cached grid must equal the uncached grid row for row (Seconds
// aside); a warm rerun must be answered entirely from the store, executing
// zero algorithm runs.
func TestCachedColdWarm(t *testing.T) {
	jobs := gridJobs(t)
	uncached, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	counting := &countingBackend{inner: schedule.Local{}}
	cached := schedule.NewCached(counting, nil)
	if caps := cached.Capabilities(); !caps.Cached || caps.Name != "cached(local)" {
		t.Fatalf("bad capabilities %+v", caps)
	}
	streamed := 0
	cold, err := cached.Run(context.Background(), jobs, schedule.BatchOptions{
		OnRow: func(schedule.Row) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, uncached, cold, "cold vs uncached")
	if streamed != len(jobs) {
		t.Fatalf("cold run streamed %d rows, want %d", streamed, len(jobs))
	}
	if hits, misses := cached.Counters(); hits != 0 || misses != int64(len(jobs)) {
		t.Fatalf("cold counters hits=%d misses=%d, want 0/%d", hits, misses, len(jobs))
	}
	if got := counting.jobs.Load(); got != int64(len(jobs)) {
		t.Fatalf("cold run reached inner backend with %d jobs, want %d", got, len(jobs))
	}

	streamed = 0
	indexed := 0
	warm, err := cached.Run(context.Background(), jobs, schedule.BatchOptions{
		OnRow: func(schedule.Row) { streamed++ },
		OnRowIndexed: func(i int, r schedule.Row) {
			if r != cold[i] {
				t.Fatalf("indexed row %d is not the bit-identical replay: %+v vs %+v", i, r, cold[i])
			}
			indexed++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm replay is bit-identical, Seconds included: the stored row comes
	// back exactly as computed.
	if len(warm) != len(cold) {
		t.Fatalf("warm has %d rows, want %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i] != cold[i] {
			t.Fatalf("warm row %d not bit-identical: %+v vs %+v", i, warm[i], cold[i])
		}
	}
	if streamed != len(jobs) || indexed != len(jobs) {
		t.Fatalf("warm run streamed %d/%d rows, want %d", streamed, indexed, len(jobs))
	}
	if hits, misses := cached.Counters(); hits != int64(len(jobs)) || misses != int64(len(jobs)) {
		t.Fatalf("warm counters hits=%d misses=%d, want %d/%d", hits, misses, len(jobs), len(jobs))
	}
	if got := counting.jobs.Load(); got != int64(len(jobs)) {
		t.Fatalf("warm run executed %d extra algorithm runs", got-int64(len(jobs)))
	}
}

// A partially warm store serves the overlap and runs only the new jobs.
func TestCachedPartialOverlap(t *testing.T) {
	jobs := gridJobs(t)
	half := jobs[:len(jobs)/2]
	counting := &countingBackend{inner: schedule.Local{}}
	cached := schedule.NewCached(counting, nil)
	if _, err := cached.Run(context.Background(), half, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	want := int64(len(jobs)) // half cold, then only the other half
	if got := counting.jobs.Load(); got != want {
		t.Fatalf("inner backend saw %d jobs, want %d", got, want)
	}
	hits, misses := cached.Counters()
	if hits != int64(len(half)) || misses != want {
		t.Fatalf("counters hits=%d misses=%d, want %d/%d", hits, misses, len(half), want)
	}
}

// The cache key must separate every dimension an algorithm can observe:
// tree content, algorithm name, budget, window and replay order.
func TestCacheKeyDimensions(t *testing.T) {
	tr := randomTree(t, 1, 30)
	other := randomTree(t, 2, 30)
	base := schedule.Job{Tree: tr, Algorithm: "lsnf", Order: tr.TopDown(), Memory: 100, Window: 5}
	reordered := base
	reordered.Order = append([]int(nil), base.Order...)
	reordered.Order[len(reordered.Order)-1], reordered.Order[len(reordered.Order)-2] =
		reordered.Order[len(reordered.Order)-2], reordered.Order[len(reordered.Order)-1]
	variants := map[string]schedule.Job{
		"tree":     {Tree: other, Algorithm: "lsnf", Order: base.Order, Memory: 100, Window: 5},
		"algo":     {Tree: tr, Algorithm: "best-fit", Order: base.Order, Memory: 100, Window: 5},
		"memory":   {Tree: tr, Algorithm: "lsnf", Order: base.Order, Memory: 101, Window: 5},
		"window":   {Tree: tr, Algorithm: "lsnf", Order: base.Order, Memory: 100, Window: 6},
		"order":    reordered,
		"no-order": {Tree: tr, Algorithm: "lsnf", Memory: 100, Window: 5},
	}
	baseKey := schedule.CacheKey(base)
	if baseKey != schedule.CacheKey(base) {
		t.Fatal("cache key not deterministic")
	}
	for name, v := range variants {
		if schedule.CacheKey(v) == baseKey {
			t.Fatalf("changing %s does not change the cache key", name)
		}
	}
}

// The JSONL store persists across processes (reopen), and a corrupted store
// degrades to misses instead of failing: damaged lines are skipped on load
// and re-written by the next run.
func TestJSONLStoreAndCorruptionRecovery(t *testing.T) {
	jobs := gridJobs(t)
	path := filepath.Join(t.TempDir(), "rows.jsonl")

	store, err := schedule.OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := schedule.NewCached(schedule.Local{}, store).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: fully warm, zero algorithm runs, bit-identical rows.
	store, err = schedule.OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(jobs) {
		t.Fatalf("reopened store holds %d rows, want %d", store.Len(), len(jobs))
	}
	counting := &countingBackend{inner: schedule.Local{}}
	warmBackend := schedule.NewCached(counting, store)
	warm, err := warmBackend.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if warm[i] != cold[i] {
			t.Fatalf("row %d not replayed bit-identically from disk: %+v vs %+v", i, warm[i], cold[i])
		}
	}
	if got := counting.jobs.Load(); got != 0 {
		t.Fatalf("warm disk run executed %d algorithm runs, want 0", got)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the store: truncate mid-line and splice garbage in front.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte("not json at all\n{\"key\": 12}\n"), data[:len(data)-len(data)/3]...)
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	store, err = schedule.OpenJSONLStore(path)
	if err != nil {
		t.Fatalf("corrupted store must open, got %v", err)
	}
	defer store.Close()
	if store.Len() >= len(jobs) || store.Len() == 0 {
		t.Fatalf("corrupted store holds %d rows, want a strict non-empty subset of %d", store.Len(), len(jobs))
	}
	counting = &countingBackend{inner: schedule.Local{}}
	recovered, err := schedule.NewCached(counting, store).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, cold, recovered, "recovered vs cold")
	if got := counting.jobs.Load(); got == 0 || got >= int64(len(jobs)) {
		t.Fatalf("recovery run executed %d algorithm runs, want only the damaged subset (0 < n < %d)", got, len(jobs))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// The recovery must stick: the corrupted region was compacted away, so
	// yet another open holds every row (the healed entries did not glue
	// onto the partial tail) and a rerun is fully warm.
	store, err = schedule.OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != len(jobs) {
		t.Fatalf("healed store holds %d rows after reopen, want %d", store.Len(), len(jobs))
	}
	counting = &countingBackend{inner: schedule.Local{}}
	if _, err := schedule.NewCached(counting, store).Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := counting.jobs.Load(); got != 0 {
		t.Fatalf("healed store still re-ran %d jobs", got)
	}
}

// The instance name is reporting identity, not algorithm input: a job whose
// tree content is already cached under another instance name hits, and the
// replayed row carries this job's name.
func TestCachedRestampsInstance(t *testing.T) {
	tr := randomTree(t, 3, 40)
	counting := &countingBackend{inner: schedule.Local{}}
	cached := schedule.NewCached(counting, nil)
	first, err := cached.Run(context.Background(),
		[]schedule.Job{{Instance: "alpha", Tree: tr, Algorithm: "minmem"}}, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []schedule.Row
	second, err := cached.Run(context.Background(),
		[]schedule.Job{{Instance: "beta", Tree: tr, Algorithm: "minmem"}}, schedule.BatchOptions{
			OnRow: func(r schedule.Row) { streamed = append(streamed, r) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := counting.jobs.Load(); got != 1 {
		t.Fatalf("same tree under a new name re-ran (%d algorithm runs, want 1)", got)
	}
	if second[0].Instance != "beta" || len(streamed) != 1 || streamed[0].Instance != "beta" {
		t.Fatalf("hit row not restamped: returned %+v, streamed %+v", second[0], streamed)
	}
	want := first[0]
	want.Instance = "beta"
	if second[0] != want {
		t.Fatalf("restamped row differs beyond the name: %+v vs %+v", second[0], want)
	}
}

// A batch that fails half-way still banks its completed rows: the rerun of
// the good jobs is fully warm.
func TestCachedBanksRowsOnFailure(t *testing.T) {
	insts := batchInstances(t)
	good := schedule.MinMemoryGrid(insts, []string{"postorder", "minmem"})
	bad := append(append([]schedule.Job(nil), good...),
		schedule.Job{Instance: "x", Tree: insts[0].Tree, Algorithm: "no-such-solver"})
	store := schedule.NewMemStore()
	cached := schedule.NewCached(schedule.Local{}, store)
	if _, err := cached.Run(context.Background(), bad, schedule.BatchOptions{Workers: 1}); err == nil {
		t.Fatal("failing batch reported success")
	}
	counting := &countingBackend{inner: schedule.Local{}}
	rerun := schedule.NewCached(counting, store)
	if _, err := rerun.Run(context.Background(), good, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := counting.jobs.Load(); got != 0 {
		t.Fatalf("rerun after partial failure re-ran %d jobs, want 0 (rows were banked)", got)
	}
}

// A bounded MemStore evicts least-recently-used rows (Get counts as use)
// and counts the evictions.
func TestMemStoreLRU(t *testing.T) {
	s := schedule.NewMemStoreWith(schedule.StoreOptions{MaxEntries: 2})
	row := func(n int) schedule.Row { return schedule.Row{Instance: "r", Memory: int64(n)} }
	s.Put("a", row(1))
	s.Put("b", row(2))
	if _, ok := s.Get("a"); !ok { // bump a: b is now the LRU entry
		t.Fatal("a missing before eviction")
	}
	s.Put("c", row(3))
	if s.Len() != 2 {
		t.Fatalf("bounded store holds %d rows, want 2", s.Len())
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("new entry c missing")
	}
	if ev := s.Evictions(); ev != 1 {
		t.Fatalf("eviction counter %d, want 1", ev)
	}
	// Overwriting an existing key is not an eviction.
	s.Put("c", row(4))
	if got, _ := s.Get("c"); got.Memory != 4 {
		t.Fatalf("overwrite lost: %+v", got)
	}
	if ev := s.Evictions(); ev != 1 {
		t.Fatalf("eviction counter %d after overwrite, want 1", ev)
	}
	// The unbounded store never evicts.
	u := schedule.NewMemStore()
	for i := 0; i < 100; i++ {
		u.Put(string(rune('a'+i)), row(i))
	}
	if u.Len() != 100 || u.Evictions() != 0 {
		t.Fatalf("unbounded store len=%d evictions=%d", u.Len(), u.Evictions())
	}
}

// A bounded JSONL store evicts at run time and compacts its file down to
// the bound on load, so the on-disk store stops growing without bound.
func TestJSONLStoreBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.jsonl")
	const max = 3
	s, err := schedule.OpenJSONLStoreWith(path, schedule.StoreOptions{MaxEntries: max})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), schedule.Row{Instance: "r", Memory: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != max {
		t.Fatalf("bounded store holds %d rows, want %d", s.Len(), max)
	}
	if ev := s.Evictions(); ev != 10-max {
		t.Fatalf("eviction counter %d, want %d", ev, 10-max)
	}
	for i := 0; i < 10-max; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("old entry k%d survived", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing a bounded store compacts the append-only file down to the
	// bound, in recency order.
	if data, err := os.ReadFile(path); err != nil || len(strings.Split(strings.TrimSpace(string(data)), "\n")) != max {
		t.Fatalf("file after bounded close: %v, %q", err, data)
	}
	s, err = schedule.OpenJSONLStoreWith(path, schedule.StoreOptions{MaxEntries: max})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != max || s.Evictions() != 0 {
		t.Fatalf("reopened store len=%d evictions=%d, want %d/0", s.Len(), s.Evictions(), max)
	}
	for i := 10 - max; i < 10; i++ {
		if got, ok := s.Get(fmt.Sprintf("k%d", i)); !ok || got.Memory != int64(i) {
			t.Fatalf("newest entry k%d lost across compaction (%+v, %v)", i, got, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != max {
		t.Fatalf("compacted file holds %d lines, want %d", len(lines), max)
	}
	// An unbounded reopen of the compacted file sees exactly the survivors.
	u, err := schedule.OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.Len() != max {
		t.Fatalf("unbounded reopen holds %d rows, want %d", u.Len(), max)
	}
}

// The cached backend stays correct over a store too small for the grid:
// every row is still bit-identical, evictions just turn into extra misses
// on the rerun.
func TestCachedOverBoundedStore(t *testing.T) {
	jobs := gridJobs(t)
	store := schedule.NewMemStoreWith(schedule.StoreOptions{MaxEntries: len(jobs) / 4})
	cached := schedule.NewCached(schedule.Local{}, store)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cached.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, cold, "cold over bounded store")
	warm, err := cached.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, warm, "warm over bounded store")
	if store.Evictions() == 0 {
		t.Fatal("undersized store never evicted")
	}
	hits, misses := cached.Counters()
	if hits == 0 || misses <= int64(len(jobs)) {
		t.Fatalf("counters hits=%d misses=%d: rerun of an undersized store should mix hits and extra misses", hits, misses)
	}
}

// Recency survives a bounded close/reopen: Get-bumps are persisted by the
// compacting Close, so the reload evicts the genuinely least-recently-used
// row, never resurrecting an evicted one or dropping a hot one.
func TestJSONLStoreRecencyAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.jsonl")
	opt := schedule.StoreOptions{MaxEntries: 2}
	s, err := schedule.OpenJSONLStoreWith(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	row := func(n int) schedule.Row { return schedule.Row{Instance: "r", Memory: int64(n)} }
	s.Put("a", row(1))
	s.Put("b", row(2))
	if _, ok := s.Get("a"); !ok { // bump a: b becomes the LRU entry
		t.Fatal("a missing")
	}
	s.Put("c", row(3)) // evicts b
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = schedule.OpenJSONLStoreWith(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently used row a lost across reopen")
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("newest row c lost across reopen")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("evicted row b resurrected by reopen")
	}
}
