package schedule_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/schedule"
)

func TestParseStoreFormat(t *testing.T) {
	for in, want := range map[string]schedule.StoreFormat{
		"":       schedule.FormatJSONL,
		"jsonl":  schedule.FormatJSONL,
		"binary": schedule.FormatBinary,
		"paged":  schedule.FormatPaged,
	} {
		got, err := schedule.ParseStoreFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseStoreFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	// Every name round-trips, so flag help derived from StoreFormatNames
	// always matches what ParseStoreFormat accepts.
	for i, name := range schedule.StoreFormatNames() {
		got, err := schedule.ParseStoreFormat(name)
		if err != nil || got != schedule.StoreFormat(i) || got.String() != name {
			t.Errorf("format name %q does not round-trip: %v, %v", name, got, err)
		}
	}
	if _, err := schedule.ParseStoreFormat("protobuf"); err == nil {
		t.Error("ParseStoreFormat accepted an unknown format")
	}
}

// The binary store is a drop-in JSONLStore sibling: the full cold/warm/
// corrupt/heal life cycle of TestJSONLStoreAndCorruptionRecovery holds,
// with the one binary-specific difference that healing keeps the entries
// before the damage (a length-prefixed stream cannot resynchronize past
// it).
func TestBinaryStoreAndCorruptionRecovery(t *testing.T) {
	jobs := gridJobs(t)
	path := filepath.Join(t.TempDir(), "rows.bin")
	opt := schedule.StoreOptions{Format: schedule.FormatBinary}

	store, err := schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := schedule.NewCached(schedule.Local{}, store).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: fully warm, zero algorithm runs, bit-identical rows.
	store, err = schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(jobs) {
		t.Fatalf("reopened store holds %d rows, want %d", store.Len(), len(jobs))
	}
	counting := &countingBackend{inner: schedule.Local{}}
	warm, err := schedule.NewCached(counting, store).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if warm[i] != cold[i] {
			t.Fatalf("row %d not replayed bit-identically from disk: %+v vs %+v", i, warm[i], cold[i])
		}
	}
	if got := counting.jobs.Load(); got != 0 {
		t.Fatalf("warm disk run executed %d algorithm runs, want 0", got)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the file mid-entry, as a crash during an append would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	store, err = schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatalf("torn store must open, got %v", err)
	}
	if store.Len() >= len(jobs) || store.Len() == 0 {
		t.Fatalf("torn store holds %d rows, want a strict non-empty subset of %d", store.Len(), len(jobs))
	}
	counting = &countingBackend{inner: schedule.Local{}}
	recovered, err := schedule.NewCached(counting, store).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, cold, recovered, "recovered vs cold")
	if got := counting.jobs.Load(); got == 0 || got >= int64(len(jobs)) {
		t.Fatalf("recovery run executed %d algorithm runs, want only the damaged subset (0 < n < %d)", got, len(jobs))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// The heal must stick: the torn tail was compacted away, so yet another
	// open holds every row and a rerun is fully warm.
	store, err = schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != len(jobs) {
		t.Fatalf("healed store holds %d rows after reopen, want %d", store.Len(), len(jobs))
	}
	counting = &countingBackend{inner: schedule.Local{}}
	if _, err := schedule.NewCached(counting, store).Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := counting.jobs.Load(); got != 0 {
		t.Fatalf("healed store still re-ran %d jobs", got)
	}
}

// A format mix-up must not erase a good cache: a JSONL file opened as
// binary is an error, not healable damage.
func TestBinaryStoreRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.jsonl")
	js, err := schedule.OpenJSONLStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := js.Put("k", schedule.Row{Instance: "i"}); err != nil {
		t.Fatal(err)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.OpenRowStore(path, schedule.StoreOptions{Format: schedule.FormatBinary}); err == nil {
		t.Fatal("binary open of a JSONL store must fail")
	}
	if data, err := os.ReadFile(path); err != nil || len(data) == 0 {
		t.Fatalf("rejected open damaged the JSONL file: %d bytes, %v", len(data), err)
	}
}

func TestBinaryStoreBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.bin")
	opt := schedule.StoreOptions{Format: schedule.FormatBinary, MaxEntries: 4}
	store, err := schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := store.Put(fmt.Sprintf("key-%d", i), schedule.Row{Instance: fmt.Sprintf("i%d", i), Memory: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 4 {
		t.Fatalf("bounded store holds %d rows, want 4", store.Len())
	}
	if store.Evictions() != 6 {
		t.Fatalf("bounded store evicted %d rows, want 6", store.Evictions())
	}
	// Bump key-6 so the close-time compaction keeps it over key-7.
	if _, ok := store.Get("key-6"); !ok {
		t.Fatal("key-6 missing before close")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store, err = schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 4 {
		t.Fatalf("reopened bounded store holds %d rows, want 4", store.Len())
	}
	// The compaction preserved recency order, so the next eviction drops
	// key-7 (oldest untouched), not the Get-bumped key-6.
	if err := store.Put("key-10", schedule.Row{Instance: "i10"}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"key-6", "key-8", "key-9", "key-10"} {
		if _, ok := store.Get(key); !ok {
			t.Errorf("%s missing after compacting reopen", key)
		}
	}
	if _, ok := store.Get("key-7"); ok {
		t.Error("key-7 survived although key-6 was more recently used")
	}
}

// Every on-disk format is the same store: identical puts produce identical
// gets, across a close/reopen cycle, for every row any of them can hold.
func TestRowStoreFormatsEquivalent(t *testing.T) {
	dir := t.TempDir()
	formats := []schedule.StoreFormat{schedule.FormatJSONL, schedule.FormatBinary, schedule.FormatPaged}
	rows := []schedule.Row{
		{Instance: "a", Algorithm: "minmem", Kind: "minmemory", Memory: 42, Seconds: 0.125},
		{Instance: "b", Algorithm: "evict-best-3", Kind: "minio", Budget: 9, IO: 17, Writes: 3, Seconds: 1e-9},
		{},
	}
	for _, format := range formats {
		s, err := schedule.OpenRowStore(filepath.Join(dir, "rows."+format.String()), schedule.StoreOptions{Format: format})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rows {
			if err := s.Put(fmt.Sprintf("key-%d", i), r); err != nil {
				t.Fatalf("%v: %v", format, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	reopened := map[schedule.StoreFormat]schedule.RowStore{}
	for _, format := range formats {
		s, err := schedule.OpenRowStore(filepath.Join(dir, "rows."+format.String()), schedule.StoreOptions{Format: format})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		reopened[format] = s
	}
	for i, want := range rows {
		key := fmt.Sprintf("key-%d", i)
		for _, format := range formats {
			got, ok := reopened[format].Get(key)
			if !ok {
				t.Fatalf("%s missing after reopen from the %v store", key, format)
			}
			if got != want {
				t.Fatalf("%s diverged in the %v store: %+v, want %+v", key, format, got, want)
			}
		}
	}
}
