package schedule

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/tree"
)

// ShardPolicy names a chunk-dispatch policy of the Shard backend.
type ShardPolicy string

// The two dispatch policies: adaptive expected-completion-time scheduling
// (the default) and the legacy round-robin rotation.
const (
	// PolicyAdaptive dispatches each chunk to the child with the lowest
	// expected completion time — (in-flight jobs + chunk jobs) divided by
	// the child's observed throughput over a sliding window — so a slow or
	// busy server naturally receives fewer chunks. Children with no
	// throughput samples yet are explored first (least-loaded, then lowest
	// index), so every child is measured before the weighting kicks in.
	PolicyAdaptive ShardPolicy = "adaptive"
	// PolicyRoundRobin rotates chunks across the children in index order,
	// skipping quarantined ones: every healthy child receives the same
	// number of chunks regardless of how fast it drains them.
	PolicyRoundRobin ShardPolicy = "roundrobin"
)

// Default tuning of ShardOptions: the throughput window length and the
// quarantine backoff ladder.
const (
	// DefaultThroughputWindow is the number of recent chunk completions the
	// adaptive policy averages a child's throughput over.
	DefaultThroughputWindow = 8
	// DefaultQuarantineBase is the first quarantine interval after a child
	// fails a chunk; each further failure doubles it up to
	// DefaultQuarantineMax, and a successful chunk resets the ladder.
	DefaultQuarantineBase = 250 * time.Millisecond
	// DefaultQuarantineMax caps the exponential quarantine backoff.
	DefaultQuarantineMax = 30 * time.Second
	// DefaultHedgeMultiple scales a child's predicted chunk completion time
	// into the hedge delay when ShardOptions.HedgeMultiple is unset: a chunk
	// may run this many times longer than predicted before a speculative
	// re-dispatch fires.
	DefaultHedgeMultiple = 3.0
)

// ShardOptions tunes the Shard scheduler. The zero value selects the
// adaptive policy with the default window and backoff ladder and no cache
// warming.
type ShardOptions struct {
	// Policy selects the dispatch policy; empty selects PolicyAdaptive.
	Policy ShardPolicy
	// ThroughputWindow is the number of recent chunk completions averaged
	// into a child's observed throughput (≤ 0 selects
	// DefaultThroughputWindow).
	ThroughputWindow int
	// QuarantineBase is the first quarantine interval after a chunk failure
	// (≤ 0 selects DefaultQuarantineBase). Each consecutive failure doubles
	// it; a successful chunk resets the ladder.
	QuarantineBase time.Duration
	// QuarantineMax caps the exponential backoff (≤ 0 selects
	// DefaultQuarantineMax).
	QuarantineMax time.Duration
	// Warm forwards each computed chunk's rows to every sibling child that
	// implements RowWarmer (keyed by CacheKey), so a resubmitted or re-run
	// chunk is warm on every cache in the fleet. Forwarding is best-effort:
	// failures advance the WarmErrors counter but never fail the chunk.
	Warm bool
	// MaxQueueDepth enables admission control (Shard.Admit): when every
	// healthy (non-quarantined) child already has at least this many jobs
	// in flight, new work is shed with an *OverloadError instead of
	// queueing behind the backlog. ≤ 0 disables admission control —
	// Admit always accepts. The bound applies to admission only; chunks
	// already inside a stream still dispatch normally.
	MaxQueueDepth int
	// HedgeAfter enables speculative (hedged) re-dispatch of straggler
	// chunks: when an in-flight chunk has run longer than its hedge delay —
	// max(HedgeAfter, HedgeMultiple × the dispatching child's predicted
	// completion time from its windowed throughput) — the chunk is also
	// dispatched to another healthy child. The first result wins; the loser
	// is cancelled via context and its rows never reach the sink, so the
	// merged stream stays bit-identical to a Local run. 0 (the default)
	// disables hedging. HedgeAfter is also the floor of the delay, and the
	// whole delay while a child is still unmeasured, so set it comfortably
	// above the fleet's healthy per-chunk latency.
	HedgeAfter time.Duration
	// HedgeMultiple scales the predicted completion time into the hedge
	// delay (≤ 0 selects DefaultHedgeMultiple). Meaningful only with
	// HedgeAfter > 0.
	HedgeMultiple float64
	// ChunkSize, when > 0, is the shard's default stream chunk size, used
	// by Stream calls that do not set StreamOptions.ChunkSize themselves
	// (the per-call option wins). A front-door server re-chunking one large
	// client batch sets this so adaptive dispatch and hedging get enough
	// chunks to schedule.
	ChunkSize int

	// now is the test hook for the scheduler clock; nil selects time.Now.
	now func() time.Time
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.Policy == "" {
		o.Policy = PolicyAdaptive
	}
	if o.ThroughputWindow <= 0 {
		o.ThroughputWindow = DefaultThroughputWindow
	}
	if o.QuarantineBase <= 0 {
		o.QuarantineBase = DefaultQuarantineBase
	}
	if o.QuarantineMax <= 0 {
		o.QuarantineMax = DefaultQuarantineMax
	}
	if o.HedgeMultiple <= 0 {
		o.HedgeMultiple = DefaultHedgeMultiple
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// HealthChecker is the optional probe interface of a shard child: a
// quarantined child whose backoff has expired is probed with Health and
// readmitted only when it returns nil. service.Client implements it over
// the server's cheap /healthz endpoint. Children without the interface are
// readmitted on backoff expiry alone.
type HealthChecker interface {
	Health(ctx context.Context) error
}

// Admitter is the optional admission-control interface of a backend: a
// server asks its backend whether a batch of the given size should be
// accepted before committing the response stream. Shard implements it
// (ShardOptions.MaxQueueDepth) by shedding load when every healthy
// child's queue is deep; Cached delegates to its inner backend. A non-nil
// error — normally an *OverloadError — means reject now and retry later.
type Admitter interface {
	Admit(jobs int) error
}

// OverloadError is the Admitter rejection: the backend's queues are deep
// everywhere and new work should back off rather than pile on. The
// service layer surfaces it as HTTP 429 with a Retry-After header.
type OverloadError struct {
	// RetryAfter estimates when admission can succeed: the time for the
	// shallowest healthy queue to drain below the bound at its observed
	// throughput, clamped to a sane range.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("schedule: backend overloaded, retry after %s", e.RetryAfter)
}

// WarmEntry is one row keyed for a content-addressed store, the unit of
// cross-shard cache warming: Key is CacheKey of the job that produced Row.
type WarmEntry struct {
	Key string `json:"key"`
	Row Row    `json:"row"`
}

// RowWarmer is the optional cache-warming interface of a shard child: the
// shard forwards each computed chunk's keyed rows to every sibling
// implementing it, so sibling caches answer a re-run of the chunk without
// recomputing. WarmRows reports how many entries were stored (a cacheless
// receiver may store none).
type RowWarmer interface {
	WarmRows(ctx context.Context, entries []WarmEntry) (int, error)
}

// NewWarmEntries keys a batch's rows by CacheKey for cache warming,
// memoizing tree digests across the batch (a grid references the same
// *tree.Tree from many jobs, and the digest is the expensive part of the
// key). jobs and rows must be parallel slices, as returned by a successful
// Backend.Run. Servers use it to build push-gossip payloads without a
// shard in the loop.
func NewWarmEntries(jobs []Job, rows []Row) []WarmEntry {
	entries := make([]WarmEntry, len(jobs))
	digests := make(map[*tree.Tree]tree.Digest, 1)
	for i, j := range jobs {
		d, ok := digests[j.Tree]
		if !ok {
			d = j.Tree.Digest()
			digests[j.Tree] = d
		}
		entries[i] = WarmEntry{Key: cacheKey(j, d), Row: rows[i]}
	}
	return entries
}

// ChunkError reports a chunk of the sharded stream that failed on every
// child: each was either tried and failed the chunk, or was quarantined and
// failed its readmission probe. Jobs[First:Last] of the stream (0-based,
// half-open, in source order) are the chunk's jobs, so an operator can
// resume a partially exported grid by re-running from job index First.
type ChunkError struct {
	// First and Last delimit the failed chunk's jobs within the stream:
	// global job indices [First, Last) in source order.
	First, Last int
	// Err joins the per-child failures.
	Err error
}

// Error implements error.
func (e *ChunkError) Error() string {
	return fmt.Sprintf("schedule: shard chunk jobs [%d,%d) failed on all children: %v", e.First, e.Last, e.Err)
}

// Unwrap exposes the joined per-child failures.
func (e *ChunkError) Unwrap() error { return e.Err }

// shardChild is the scheduler's per-child state, guarded by Shard.mu.
type shardChild struct {
	backend Backend
	name    string

	inFlightChunks int
	inFlightJobs   int

	// Sliding throughput window: the last ThroughputWindow completed
	// chunks' row counts and durations, with running sums.
	samples []tpSample
	sumRows float64
	sumSecs float64

	quarantined bool
	probing     bool
	until       time.Time
	backoff     time.Duration

	chunks       int64
	rows         int64
	failures     int64
	quarantines  int64
	readmissions int64
}

type tpSample struct {
	rows float64
	secs float64
}

// throughput returns the child's windowed rows/sec, or 0 with ok=false when
// no chunk has completed yet.
func (c *shardChild) throughput() (float64, bool) {
	if len(c.samples) == 0 {
		return 0, false
	}
	return c.sumRows / math.Max(c.sumSecs, 1e-9), true
}

func (c *shardChild) observe(rows int, secs float64, window int) {
	c.samples = append(c.samples, tpSample{rows: float64(rows), secs: secs})
	c.sumRows += float64(rows)
	c.sumSecs += secs
	if len(c.samples) > window {
		old := c.samples[0]
		c.samples = c.samples[1:]
		c.sumRows -= old.rows
		c.sumSecs -= old.secs
	}
}

// ShardCounters is a snapshot of the shard's cumulative scheduling
// counters, across all Run and Stream calls.
type ShardCounters struct {
	// Resubmissions counts chunk dispatches beyond each chunk's first
	// attempt: how many times a failed chunk was handed to another child.
	Resubmissions int64
	// Quarantines counts child quarantine entries: a child that fails a
	// chunk is benched for an exponentially growing interval.
	Quarantines int64
	// Readmissions counts quarantine exits: the child's backoff expired and
	// its health probe (if it has one) succeeded.
	Readmissions int64
	// WarmedRows counts rows accepted by sibling caches through cache
	// warming (ShardOptions.Warm).
	WarmedRows int64
	// WarmErrors counts failed warm forwards; warming is best-effort, so
	// these never fail a chunk.
	WarmErrors int64
	// LoadSheds counts Admit rejections: batches turned away because
	// every healthy child's queue held at least MaxQueueDepth jobs.
	LoadSheds int64
	// Hedges counts speculative re-dispatches: chunks additionally handed
	// to a second child because the first ran past its hedge delay
	// (ShardOptions.HedgeAfter).
	Hedges int64
	// HedgeWins counts hedges whose speculative attempt returned first —
	// chunks the fleet finished early because a straggler was raced and
	// lost. Hedges − HedgeWins is how often the original dispatch still
	// won.
	HedgeWins int64
}

// ShardChildStats is a snapshot of one child's scheduler state, for
// operator reporting.
type ShardChildStats struct {
	// Name is the child backend's Capabilities name.
	Name string
	// Chunks and Rows count the chunks the child completed successfully and
	// the rows they produced.
	Chunks int64
	Rows   int64
	// Failures counts chunk dispatches the child failed.
	Failures int64
	// Quarantines and Readmissions count the child's bench entries/exits.
	Quarantines  int64
	Readmissions int64
	// Quarantined reports whether the child is benched right now.
	Quarantined bool
	// RowsPerSec is the windowed observed throughput (0 until the child
	// completes its first chunk).
	RowsPerSec float64
}

// probeTimeout bounds one health probe, so a black-holed server cannot
// hold a readmission check (and with it a chunk waiting on the probe's
// outcome) hostage. warmTimeout likewise bounds one best-effort warm push,
// which carries a chunk of rows and so gets a more generous budget.
const (
	probeTimeout = 5 * time.Second
	warmTimeout  = 30 * time.Second
)

// pick selects and charges a child for a chunk of n jobs. Children in tried
// are excluded. Quarantined children whose backoff expired are probed — in
// the background when another child is available (dispatch never stalls on
// a probe), synchronously when the chunk has no one else to run on — and
// readmitted or re-benched by the outcome. When every untried child is
// benched with a future due time or mid-probe, pick waits. It returns -1
// once every child has been tried — run or probe — and failed, or the
// context is done.
func (s *Shard) pick(ctx context.Context, tried map[int]bool, n int) int {
	for {
		s.mu.Lock()
		now := s.opt.now()
		var avail, due []int
		probing := false
		var wait time.Time
		for i := range s.children {
			if tried[i] {
				continue
			}
			c := &s.children[i]
			switch {
			case !c.quarantined:
				avail = append(avail, i)
			case c.probing:
				probing = true
			case !now.Before(c.until):
				due = append(due, i)
			case wait.IsZero() || c.until.Before(wait):
				wait = c.until
			}
		}
		for _, i := range due {
			s.children[i].probing = true
		}
		if len(avail) > 0 {
			idx := s.choose(avail, n)
			s.children[idx].inFlightChunks++
			s.children[idx].inFlightJobs += n
			s.mu.Unlock()
			// Probes ride in the background: a due child's recovery must not
			// delay dispatching to a child that is ready right now. The probe
			// cannot mark tried (that map belongs to this chunk's loop);
			// failures just re-bench the child.
			for _, i := range due {
				go s.probeOne(ctx, i, nil)
			}
			return idx
		}
		s.mu.Unlock()
		switch {
		case len(due) > 0:
			// No one else to run on: probe synchronously — so a readmitted
			// child can take this chunk, and a failed probe marks the child
			// tried (probed at most once per chunk) — but concurrently, so
			// one black-holed child's probeTimeout doesn't delay dispatch to
			// a sibling an earlier probe would have readmitted. tried is
			// only written under s.mu and only read here after Wait.
			var wg sync.WaitGroup
			for _, i := range due {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					s.probeOne(ctx, i, tried)
				}(i)
			}
			wg.Wait()
		case probing:
			// Another goroutine's probe may readmit a child; poll briefly.
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
				return -1
			}
		case wait.IsZero():
			return -1 // every child tried and failed
		default:
			select {
			case <-time.After(wait.Sub(now)):
			case <-ctx.Done():
				return -1
			}
		}
		if ctx.Err() != nil {
			return -1
		}
	}
}

// tryPick is pick's non-blocking variant, used for hedge dispatch: it
// charges and returns an available untried child if one exists right now,
// kicking due-quarantined children's readmission probes off in the
// background, but never waits — a hedge is an optimization, and stalling
// the chunk's control loop to find a hedge target would defeat it. idx is
// -1 when no child is available; retry then reports whether any untried
// child exists at all (quarantined or mid-probe), i.e. whether re-arming
// the hedge timer could ever find one.
func (s *Shard) tryPick(ctx context.Context, tried map[int]bool, n int) (idx int, retry bool) {
	s.mu.Lock()
	now := s.opt.now()
	var avail, due []int
	remaining := false
	for i := range s.children {
		if tried[i] {
			continue
		}
		remaining = true
		c := &s.children[i]
		switch {
		case !c.quarantined:
			avail = append(avail, i)
		case !c.probing && !now.Before(c.until):
			due = append(due, i)
		}
	}
	for _, i := range due {
		s.children[i].probing = true
	}
	idx = -1
	if len(avail) > 0 {
		idx = s.choose(avail, n)
		s.children[idx].inFlightChunks++
		s.children[idx].inFlightJobs += n
	}
	s.mu.Unlock()
	for _, i := range due {
		go s.probeOne(ctx, i, nil)
	}
	return idx, remaining
}

// hedgeDelay returns how long child i may hold a chunk of n jobs before a
// hedge fires: HedgeMultiple × the completion time predicted from the
// child's windowed throughput, floored by HedgeAfter (which alone applies
// while the child is unmeasured).
func (s *Shard) hedgeDelay(i, n int) time.Duration {
	d := s.opt.HedgeAfter
	s.mu.Lock()
	if tp, ok := s.children[i].throughput(); ok && tp > 0 {
		if pred := time.Duration(s.opt.HedgeMultiple * float64(n) / tp * float64(time.Second)); pred > d {
			d = pred
		}
	}
	s.mu.Unlock()
	return d
}

// choose picks among the available (non-quarantined, untried) children,
// under s.mu. Round-robin rotates the cursor; adaptive minimizes expected
// completion time, exploring unmeasured children first.
func (s *Shard) choose(avail []int, n int) int {
	if s.opt.Policy == PolicyRoundRobin {
		start := s.rr
		best := avail[0]
		bestD := len(s.children)
		for _, i := range avail {
			if d := (i - start + len(s.children)) % len(s.children); d < bestD {
				best, bestD = i, d
			}
		}
		s.rr = (best + 1) % len(s.children)
		return best
	}
	best, bestScore := -1, math.Inf(1)
	for _, i := range avail {
		c := &s.children[i]
		var score float64
		if tp, ok := c.throughput(); ok {
			score = (float64(c.inFlightJobs) + float64(n)) / tp
		} else {
			// Unmeasured: explore before any measured child, least-loaded
			// first so concurrent chunks don't dogpile one unknown.
			score = -1 + float64(c.inFlightChunks)*1e-6
		}
		if score < bestScore || (score == bestScore && best >= 0 && c.inFlightChunks < s.children[best].inFlightChunks) {
			best, bestScore = i, score
		}
	}
	return best
}

// probeOne health-checks one quarantined child whose backoff expired
// (bounded by probeTimeout): a nil Health (or no HealthChecker interface)
// readmits the child; a failing probe re-benches it with a doubled backoff
// and, when tried is non-nil (synchronous probes owned by one chunk), marks
// it tried so a dead child is probed at most once per chunk. The caller
// must have set the child's probing flag under s.mu.
func (s *Shard) probeOne(ctx context.Context, i int, tried map[int]bool) {
	var err error
	if hc, ok := s.children[i].backend.(HealthChecker); ok {
		pctx, cancel := context.WithTimeout(ctx, probeTimeout)
		err = hc.Health(pctx)
		cancel()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &s.children[i]
	c.probing = false
	if err != nil && ctx.Err() != nil {
		// Stream teardown, not a verdict: the probe was cancelled, so leave
		// the child's bench state exactly as it was.
		return
	}
	if err == nil {
		if c.quarantined {
			c.quarantined = false
			c.readmissions++
			s.readmissions.Add(1)
		}
		return
	}
	s.bench(c)
	if tried != nil {
		tried[i] = true
	}
}

// bench advances a child one rung up the backoff ladder — QuarantineBase
// initially, doubling up to QuarantineMax — and sets its due time. Called
// with s.mu held, from both the chunk-failure and failed-probe paths.
func (s *Shard) bench(c *shardChild) {
	if c.backoff <= 0 {
		c.backoff = s.opt.QuarantineBase
	} else {
		c.backoff = minDuration(c.backoff*2, s.opt.QuarantineMax)
	}
	c.until = s.opt.now().Add(c.backoff)
}

// quarantine benches child i after a failed chunk, doubling its backoff up
// to QuarantineMax.
func (s *Shard) quarantine(i int) {
	s.mu.Lock()
	c := &s.children[i]
	c.failures++
	c.quarantined = true
	s.bench(c)
	c.quarantines++
	s.quarantines.Add(1)
	s.mu.Unlock()
}

// attemptOutcome classifies how one chunk dispatch ended, for complete's
// scheduler bookkeeping.
type attemptOutcome int

const (
	// attemptOK: the child returned the chunk's rows.
	attemptOK attemptOutcome = iota
	// attemptHedgeLoss: the attempt was cancelled because a hedged sibling
	// won the chunk — the child is healthy but slow.
	attemptHedgeLoss
	// attemptFailed: the child failed the chunk, or the stream was torn
	// down.
	attemptFailed
)

// complete releases child i's in-flight charge for a chunk of n jobs and
// updates the scheduler's view of the child. attemptOK records a throughput
// sample and resets the backoff ladder — unless the child is benched right
// now: a straggler chunk dispatched before the quarantine must not zero the
// ladder of a child that has since started failing. attemptHedgeLoss
// records a zero-row sample over the straggler's wall time: the chunk's
// rows were credited to the winner, and what the loser contributes is
// evidence of slowness, dragging its windowed throughput down so adaptive
// dispatch steers the next chunks away without benching a child that is
// merely slow. attemptFailed only releases the charge; quarantine handles
// the rest.
func (s *Shard) complete(i, n int, dur time.Duration, outcome attemptOutcome) {
	s.mu.Lock()
	c := &s.children[i]
	c.inFlightChunks--
	c.inFlightJobs -= n
	switch outcome {
	case attemptOK:
		c.chunks++
		c.rows += int64(n)
		if !c.quarantined {
			c.backoff = 0
		}
		c.observe(n, dur.Seconds(), s.opt.ThroughputWindow)
	case attemptHedgeLoss:
		c.observe(0, dur.Seconds(), s.opt.ThroughputWindow)
	}
	s.mu.Unlock()
}

// warmSiblings forwards a computed chunk's keyed rows to every sibling
// implementing RowWarmer, fanning the pushes out concurrently so the chunk
// pays at most one warm round-trip regardless of fleet size. Best-effort:
// failures count, the chunk succeeds regardless.
func (s *Shard) warmSiblings(ctx context.Context, from int, jobs []Job, rows []Row) {
	var warmers []RowWarmer
	for i := range s.children {
		if i == from {
			continue
		}
		if w, ok := s.children[i].backend.(RowWarmer); ok {
			warmers = append(warmers, w)
		}
	}
	if len(warmers) == 0 {
		return
	}
	entries := s.warmEntries(jobs, rows)
	wctx, cancel := context.WithTimeout(ctx, warmTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, w := range warmers {
		wg.Add(1)
		go func(w RowWarmer) {
			defer wg.Done()
			n, err := w.WarmRows(wctx, entries)
			if err != nil {
				s.warmErrors.Add(1)
				return
			}
			s.warmedRows.Add(int64(n))
		}(w)
	}
	wg.Wait()
}

// warmEntries keys a chunk's rows by CacheKey, memoizing tree digests
// across chunks (a grid reuses the same *tree.Tree for many jobs). The
// memo lives for the duration of the active streams (see releaseDigests),
// so a long-lived Shard does not pin every tree it ever warmed.
func (s *Shard) warmEntries(jobs []Job, rows []Row) []WarmEntry {
	entries := make([]WarmEntry, len(jobs))
	s.digestMu.Lock()
	defer s.digestMu.Unlock()
	// A straggler chunk can land here after the last stream released the
	// memo; compute without repopulating it so the cleared map stays empty.
	memoize := s.activeStreams > 0
	for i, j := range jobs {
		d, ok := s.digests[j.Tree]
		if !ok {
			d = j.Tree.Digest()
			if memoize {
				s.digests[j.Tree] = d
			}
		}
		entries[i] = WarmEntry{Key: cacheKey(j, d), Row: rows[i]}
	}
	return entries
}

// acquireDigests and releaseDigests scope the digest memo to the active
// Stream calls: when the last stream finishes, the memo is dropped so the
// trees it references can be collected.
func (s *Shard) acquireDigests() {
	s.digestMu.Lock()
	s.activeStreams++
	s.digestMu.Unlock()
}

func (s *Shard) releaseDigests() {
	s.digestMu.Lock()
	s.activeStreams--
	if s.activeStreams == 0 {
		s.digests = map[*tree.Tree]tree.Digest{}
	}
	s.digestMu.Unlock()
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
