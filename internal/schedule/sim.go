// Package schedule is the scheduling engine shared by the MinMemory and
// MinIO sides of the reproduction. The paper treats in-core traversals
// (Section IV) and out-of-core traversals (Section V) as two faces of the
// same simulation problem: replay an execution order over the tree while
// accounting for the set of resident files. This package implements that
// replay exactly once — Simulate — and everything else is layered on top:
//
//   - Simulate: the event-driven traversal simulator. With unlimited memory
//     it measures the peak (Algorithm 1's accounting, used by
//     traversal.Peak); with a finite budget and no Evictor it is a
//     feasibility checker; with an Evictor it is the out-of-core simulation
//     of Section V-B (used by minio.Simulate).
//   - Evictor and the six greedy eviction policies of Section V-B.
//   - Algorithm, Register and Lookup: a named registry over every solver in
//     the repository, so binaries and experiments select algorithms by
//     string instead of hard-wiring dispatch switches.
//   - Job/Row/RunBatch: a parallel batch evaluator over (instance ×
//     algorithm) grids built on runner.ForEach, streaming structured rows
//     for the experiment tables.
//
// The package depends only on tree and runner; the solver packages
// (traversal, minio) import it and register their algorithms in init, the
// same way database/sql drivers do.
package schedule

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/hillvalley"
	"repro/internal/tree"
)

// Unlimited is the memory budget meaning "never evict, never overflow".
const Unlimited = math.MaxInt64

// Direction selects the orientation of the simulated traversal.
type Direction int

const (
	// TopDown replays an out-tree order: a node's input file is resident
	// from the moment its parent executes until the node itself executes.
	TopDown Direction = iota
	// BottomUp replays an in-tree (multifrontal) order: a node's file is
	// resident from the moment the node executes until its parent does.
	BottomUp
)

// Config parameterizes one simulation.
type Config struct {
	// Memory is the main-memory budget. Zero or negative means Unlimited.
	Memory int64
	// Direction is the traversal orientation; eviction requires TopDown.
	Direction Direction
	// Evict, when non-nil, is invoked whenever the next node does not fit;
	// nil turns overflow into an error (feasibility checking).
	Evict Evictor
	// Profile, when set, records the replay's memory curve — one
	// (peak, end-valley) pair per executed node — and canonicalizes it
	// through the hillvalley kernel into Simulation.Profile.
	Profile bool
}

// WriteEvent records one eviction: before executing order[Step], the input
// file of Node (size Size) was written to secondary memory.
type WriteEvent struct {
	Step int   `json:"step"`
	Node int   `json:"node"`
	Size int64 `json:"size"`
}

// Simulation is the outcome of a replay.
type Simulation struct {
	// Peak is the memory high-water mark actually reached (post-eviction
	// when a policy runs, so always ≤ the budget in that case).
	Peak int64
	// IO is the total volume written to secondary memory.
	IO int64
	// Writes lists the evictions in execution order.
	Writes []WriteEvent
	// Profile is the canonical hill–valley decomposition of the replay's
	// memory curve (only recorded with Config.Profile): hills
	// non-increasing, valleys non-decreasing, first hill = Peak. For an
	// optimal bottom-up traversal it equals Liu's certificate profile.
	Profile []hillvalley.Segment
}

// simScratch is the pooled per-simulation arena (the schedule-side cousin
// of the hillvalley kernel pool): position buffer, resident set, eviction
// snapshot, victim list, write log and profile curve, all recycled across
// Simulate calls so a steady-state replay allocates nothing. Results that
// outlive the call (Writes, Profile) are sealed into exact-size copies
// before the scratch returns to the pool.
type simScratch struct {
	pos     []int
	onDisk  []bool
	set     ResidentSet
	snap    []int
	victims []int
	writes  []WriteEvent
	curve   []hillvalley.Segment
}

var simScratches = sync.Pool{New: func() any { return new(simScratch) }}

// positions validates order as a traversal of t in the given orientation
// and returns each node's schedule step, reusing the pooled buffer. On an
// invalid order it reports ok = false without building an error — the
// caller reproduces the canonical message via IsTopDownOrder/IsBottomUpOrder
// on that cold path.
func (scr *simScratch) positions(t *tree.Tree, order []int, bottomUp bool) (pos []int, ok bool) {
	p := t.Len()
	if len(order) != p {
		return nil, false
	}
	if cap(scr.pos) < p {
		scr.pos = make([]int, p)
	}
	pos = scr.pos[:p]
	for i := range pos {
		pos[i] = -1
	}
	for step, v := range order {
		if v < 0 || v >= p || pos[v] != -1 {
			return nil, false
		}
		pos[v] = step
	}
	for i := 0; i < p; i++ {
		if i == t.Root() {
			continue
		}
		if pp := pos[t.Parent(i)]; (bottomUp && pp < pos[i]) || (!bottomUp && pp > pos[i]) {
			return nil, false
		}
	}
	return pos, true
}

// Simulate replays order over t under cfg. It is the single source of truth
// for memory and I/O accounting: the traversal package's peak computation
// and feasibility checker and the minio package's policy simulation all
// delegate here.
//
// Simulate fails when order is not a valid traversal in cfg.Direction, when
// the budget overflows without an Evictor, or when the Evictor cannot free
// enough space (the budget is below the node's own requirement).
func Simulate(t *tree.Tree, order []int, cfg Config) (Simulation, error) {
	mem := cfg.Memory
	if mem <= 0 {
		mem = Unlimited
	}
	scr := simScratches.Get().(*simScratch)
	scr.writes = scr.writes[:0]
	scr.curve = scr.curve[:0]
	var (
		out Simulation
		err error
	)
	if cfg.Direction == BottomUp {
		out, err = simulateBottomUp(t, order, mem, cfg.Evict, cfg.Profile, scr)
	} else {
		out, err = simulateTopDown(t, order, mem, cfg, scr)
	}
	// Seal everything that outlives the call out of the recycled scratch.
	if len(scr.writes) > 0 {
		out.Writes = append([]WriteEvent(nil), scr.writes...)
	}
	if err == nil && cfg.Profile {
		out.Profile = hillvalley.Canonicalize(scr.curve, nil)
	}
	simScratches.Put(scr)
	return out, err
}

func simulateTopDown(t *tree.Tree, order []int, mem int64, cfg Config, scr *simScratch) (Simulation, error) {
	pos, ok := scr.positions(t, order, false)
	if !ok {
		return Simulation{}, t.IsTopDownOrder(order)
	}
	evicting := cfg.Evict != nil
	gp, fastEvict := cfg.Evict.(greedyPolicy)
	var (
		set    *ResidentSet
		onDisk []bool
	)
	if evicting {
		p := t.Len()
		scr.set = ResidentSet{pos: pos, nodes: scr.set.nodes[:0]}
		set = &scr.set
		set.Add(t.Root())
		if cap(scr.onDisk) < p {
			scr.onDisk = make([]bool, p)
		}
		onDisk = scr.onDisk[:p]
		clear(onDisk)
	}
	// residentSum tracks the input files of scheduled-but-unprocessed nodes
	// still held in memory. Initially the root's input file is resident.
	residentSum := t.F(t.Root())
	var out Simulation
	for step, j := range order {
		if !evicting || !onDisk[j] {
			// The input file of j is resident; it is about to be consumed,
			// so it leaves the eviction-candidate set.
			if evicting {
				set.Remove(j)
			}
			residentSum -= t.F(j)
		}
		// Memory while executing j: the other resident files plus
		// MemReq(j) = f(j) + n(j) + Σ children files (a previously evicted
		// input is staged back first, which needs the same room).
		need := residentSum + t.MemReq(j)
		if need > mem {
			if !evicting {
				return out, fmt.Errorf("schedule: step %d (node %d): needs %d, budget %d", step, j, need, mem)
			}
			scr.snap = set.appendPositive(t, scr.snap[:0])
			var (
				victims []int
				err     error
			)
			if fastEvict {
				victims, err = gp.selectVictimsAppend(t, scr.snap, need-mem, scr.victims[:0])
				scr.victims = victims[:0:cap(victims)]
			} else {
				victims, err = cfg.Evict.SelectVictims(t, scr.snap, need-mem)
			}
			if err != nil {
				return out, fmt.Errorf("schedule: step %d (node %d): %w", step, j, err)
			}
			for _, v := range victims {
				set.Remove(v)
				residentSum -= t.F(v)
				onDisk[v] = true
				out.IO += t.F(v)
				scr.writes = append(scr.writes, WriteEvent{Step: step, Node: v, Size: t.F(v)})
			}
			if residentSum+t.MemReq(j) > mem {
				return out, fmt.Errorf("schedule: step %d (node %d): policy %s freed too little", step, j, cfg.Evict.Name())
			}
		}
		used := residentSum + t.MemReq(j)
		if used > out.Peak {
			out.Peak = used
		}
		if evicting && onDisk[j] {
			onDisk[j] = false // read back, then consumed by executing j
		}
		// Execute j: n(j) and f(j) vanish, children files appear.
		residentSum += t.ChildFileSum(j)
		if evicting {
			for k := 0; k < t.NumChildren(j); k++ {
				set.Add(t.Child(j, k))
			}
			if residentSum > mem {
				return out, fmt.Errorf("schedule: internal accounting error at step %d", step)
			}
		}
		if cfg.Profile {
			scr.curve = append(scr.curve, hillvalley.Segment{Hill: used, Valley: residentSum})
		}
	}
	return out, nil
}

// simulateBottomUp replays an in-tree order: resident memory is the files
// produced and not yet consumed by their parents. Eviction is defined on the
// top-down view only (Section V); use tree.ReverseOrder to convert.
func simulateBottomUp(t *tree.Tree, order []int, mem int64, ev Evictor, profile bool, scr *simScratch) (Simulation, error) {
	if ev != nil {
		return Simulation{}, fmt.Errorf("schedule: eviction requires a top-down traversal")
	}
	if _, ok := scr.positions(t, order, true); !ok {
		return Simulation{}, t.IsBottomUpOrder(order)
	}
	var resident int64 // Σ files produced and not yet consumed
	var out Simulation
	for step, i := range order {
		// While processing i, the children files are still resident (part
		// of resident), and f(i) + n(i) come alive.
		need := resident + t.F(i) + t.N(i)
		if need > out.Peak {
			out.Peak = need
		}
		if need > mem {
			return out, fmt.Errorf("schedule: step %d (node %d): needs %d, budget %d", step, i, need, mem)
		}
		resident += t.F(i) - t.ChildFileSum(i)
		if profile {
			scr.curve = append(scr.curve, hillvalley.Segment{Hill: need, Valley: resident})
		}
	}
	return out, nil
}

// ResidentSet maintains resident files ordered by consumer step descending:
// the set S of Section V-B, latest consumer first. It is exported for the
// few callers (minio's divisible lower bound) that run their own accounting
// over the same ordering invariant.
type ResidentSet struct {
	pos   []int // consumer step per node
	nodes []int // sorted: pos[nodes[0]] > pos[nodes[1]] > …
}

// NewResidentSet builds an empty set over pos, the consumer step of each
// node's input file.
func NewResidentSet(pos []int) *ResidentSet { return &ResidentSet{pos: pos} }

// Add inserts node keeping S ordered latest consumer first.
func (s *ResidentSet) Add(node int) {
	i := sort.Search(len(s.nodes), func(k int) bool { return s.pos[s.nodes[k]] < s.pos[node] })
	s.nodes = append(s.nodes, 0)
	copy(s.nodes[i+1:], s.nodes[i:])
	s.nodes[i] = node
}

// Remove deletes node; it panics if node is absent (an accounting bug, not
// a runtime condition).
func (s *ResidentSet) Remove(node int) {
	i := sort.Search(len(s.nodes), func(k int) bool { return s.pos[s.nodes[k]] <= s.pos[node] })
	if i == len(s.nodes) || s.nodes[i] != node {
		panic("schedule: removing absent resident file")
	}
	s.nodes = append(s.nodes[:i], s.nodes[i+1:]...)
}

// Ordered returns the current S (latest consumer first). The returned slice
// is owned by the set; do not mutate.
func (s *ResidentSet) Ordered() []int { return s.nodes }

// snapshotPositive returns a fresh copy of S with zero-size files dropped:
// the eviction candidates (writing a zero-size file frees nothing).
func (s *ResidentSet) snapshotPositive(t *tree.Tree) []int {
	return s.appendPositive(t, make([]int, 0, len(s.nodes)))
}

// appendPositive is snapshotPositive appending into dst, so the simulator
// can reuse one snapshot buffer across evictions.
func (s *ResidentSet) appendPositive(t *tree.Tree, dst []int) []int {
	for _, v := range s.nodes {
		if t.F(v) > 0 {
			dst = append(dst, v)
		}
	}
	return dst
}
