package schedule_test

import (
	"math/rand"
	"testing"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// benchTree builds one large random assembly-shaped tree for the simulator
// hot path; the preferential attachment gives the wide, irregular shapes of
// real assembly trees.
func benchTree(b *testing.B, nodes int) (*tree.Tree, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(2011))
	tr, err := tree.Random(rng, tree.RandomOptions{Nodes: nodes, MaxF: 100, MaxN: 40, Attach: tree.AttachPreferential})
	if err != nil {
		b.Fatal(err)
	}
	return tr, tr.TopDown()
}

// BenchmarkSimulator tracks the unified simulator's hot paths so future PRs
// can spot regressions: the in-core peak accounting, the feasibility check,
// and the eviction replay under the cheapest and the most expensive policy.
func BenchmarkSimulator(b *testing.B) {
	const nodes = 50_000
	tr, order := benchTree(b, nodes)
	peak, err := schedule.Simulate(tr, order, schedule.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("InCorePeak", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := schedule.Simulate(tr, order, schedule.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Feasibility", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := schedule.Simulate(tr, order, schedule.Config{Memory: peak.Peak}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Eviction replay at a budget between the floor and this traversal's
	// in-core need, where the policies actually fire.
	budget := tr.MaxMemReq() + (peak.Peak-tr.MaxMemReq())/2
	for _, name := range []string{"lsnf", "best-k"} {
		ev, err := schedule.EvictorByName(name, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("Evict/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Simulate(tr, order, schedule.Config{Memory: budget, Evict: ev}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
