package schedule_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// wantMinMemory / wantMinIO are the complete rosters: every solver of the
// paper, registered exactly once. The traversal and minio imports in
// sim_test.go trigger the init registrations.
var wantMinMemory = []string{
	"brute", "enumerate", "liu", "minmem", "minmem-noreuse", "natural-postorder", "postorder",
}

var wantMinIO = []string{
	"best-fill", "best-fit", "best-k", "divisible-bound", "first-fill", "first-fit",
	"lsnf", "minio-brute", "minio-brute-fixed",
}

func TestRegistryCompleteness(t *testing.T) {
	if got := schedule.NamesByKind(schedule.KindMinMemory); !equalStrings(got, wantMinMemory) {
		t.Fatalf("MinMemory roster = %v, want %v", got, wantMinMemory)
	}
	if got := schedule.NamesByKind(schedule.KindMinIO); !equalStrings(got, wantMinIO) {
		t.Fatalf("MinIO roster = %v, want %v", got, wantMinIO)
	}
	// Names() is the sorted union of the kinds; since Register panics on a
	// duplicate name, matching rosters imply every solver is registered
	// exactly once.
	all := append(append([]string{}, wantMinMemory...), wantMinIO...)
	sort.Strings(all)
	if got := schedule.Names(); !equalStrings(got, all) {
		t.Fatalf("Names() = %v, want %v", got, all)
	}
	for _, name := range all {
		a, err := schedule.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, a.Name())
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := schedule.Lookup("no-such-solver")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	// The error teaches the valid names.
	if !strings.Contains(err.Error(), "minmem") || !strings.Contains(err.Error(), "lsnf") {
		t.Fatalf("unknown-name error does not list the registry: %v", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	// "minmem" is already registered by the traversal package.
	schedule.RegisterMinMemory("minmem", "MinMem", func(*tree.Tree) (int64, []int, error) {
		return 0, nil, nil
	})
}

func TestEvictionPolicyNamesRegistered(t *testing.T) {
	names := schedule.EvictionPolicyNames()
	if len(names) != 6 {
		t.Fatalf("%d policies, want 6", len(names))
	}
	wantDisplay := map[string]string{
		"lsnf": "LSNF", "first-fit": "First Fit", "best-fit": "Best Fit",
		"first-fill": "First Fill", "best-fill": "Best Fill", "best-k": "Best K Comb.",
	}
	for _, n := range names {
		a, err := schedule.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if a.Kind() != schedule.KindMinIO {
			t.Fatalf("policy %s has kind %v", n, a.Kind())
		}
		if d := schedule.DisplayName(n); d != wantDisplay[n] {
			t.Fatalf("DisplayName(%s) = %q, want %q", n, d, wantDisplay[n])
		}
	}
}

// A MinIO algorithm must reject a missing memory budget, and a MinMemory
// algorithm must reject a nil tree.
func TestRequestValidation(t *testing.T) {
	tr := randomTree(t, 1, 6)
	pol, err := schedule.Lookup("lsnf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pol.Run(schedule.Request{Tree: tr, Order: tr.TopDown()}); err == nil {
		t.Fatal("missing budget accepted")
	}
	mm, err := schedule.Lookup("minmem")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Run(schedule.Request{}); err == nil {
		t.Fatal("nil tree accepted")
	}
}

// The registered solvers agree on the sample optimum: the exact algorithms
// (and the brute oracle) coincide, the postorders upper-bound them.
func TestRegisteredSolversAgree(t *testing.T) {
	tr := randomTree(t, 5, 10)
	run := func(name string) schedule.Outcome {
		a, err := schedule.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := a.Run(schedule.Request{Tree: tr})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return out
	}
	opt := run("minmem").Memory
	for _, name := range []string{"liu", "minmem-noreuse", "brute", "enumerate"} {
		if got := run(name).Memory; got != opt {
			t.Fatalf("%s = %d, want %d", name, got, opt)
		}
	}
	for _, name := range []string{"postorder", "natural-postorder"} {
		if got := run(name).Memory; got < opt {
			t.Fatalf("%s = %d below optimum %d", name, got, opt)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
