package schedule_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/schedule"
	"repro/internal/store"
)

// The paged store is a drop-in RowStore sibling: cold fill, fully warm
// bit-identical replay across a reopen, zero algorithm runs when warm.
func TestPagedStoreColdWarm(t *testing.T) {
	jobs := gridJobs(t)
	path := filepath.Join(t.TempDir(), "rows.paged")
	opt := schedule.StoreOptions{Format: schedule.FormatPaged}

	rs, err := schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := schedule.NewCached(schedule.Local{}, rs).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}

	rs, err = schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Len() != len(jobs) {
		t.Fatalf("reopened store holds %d rows, want %d", rs.Len(), len(jobs))
	}
	counting := &countingBackend{inner: schedule.Local{}}
	warm, err := schedule.NewCached(counting, rs).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if warm[i] != cold[i] {
			t.Fatalf("row %d not replayed bit-identically from disk: %+v vs %+v", i, warm[i], cold[i])
		}
	}
	if got := counting.jobs.Load(); got != 0 {
		t.Fatalf("warm disk run executed %d algorithm runs, want 0", got)
	}
}

// Crash the paged store at sampled byte boundaries of its real write
// history (every engine sync point plus a stride of raw offsets): each torn
// image must reopen, replay what survived, recompute only the rest, and —
// once the close was acknowledged — be fully warm.
func TestPagedStoreCrashRecovery(t *testing.T) {
	jobs := gridJobs(t)
	b := store.NewMemBacking()
	opt := schedule.StoreOptions{Format: schedule.FormatPaged}
	ps, err := schedule.OpenPagedStoreBacking(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := schedule.NewCached(schedule.Local{}, ps).Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	total := b.JournalBytes()
	syncs := b.SyncPoints()
	if total == 0 || len(syncs) == 0 {
		t.Fatalf("workload journaled %d bytes, %d sync points", total, len(syncs))
	}
	cuts := map[int64]bool{0: true, total: true}
	for _, s := range syncs {
		cuts[s] = true
		if s > 0 {
			cuts[s-1] = true // one byte short of durable: previous commit wins
		}
	}
	for c := int64(0); c < total; c += 1 + total/40 {
		cuts[c] = true
	}
	for cut := range cuts {
		img := b.Snapshot(cut)
		re, err := schedule.OpenPagedStoreBacking(img, opt)
		if err != nil {
			if cut >= syncs[0] {
				t.Fatalf("cut %d: reopen failed after the store was initialized: %v", cut, err)
			}
			continue
		}
		counting := &countingBackend{inner: schedule.Local{}}
		rows, err := schedule.NewCached(counting, re).Run(context.Background(), jobs, schedule.BatchOptions{})
		if err != nil {
			t.Fatalf("cut %d: recovery run: %v", cut, err)
		}
		sameRowsNoTime(t, cold, rows, fmt.Sprintf("cut %d", cut))
		if cut >= total && counting.jobs.Load() != 0 {
			t.Fatalf("fully acknowledged image re-ran %d jobs, want 0", counting.jobs.Load())
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// A format mix-up must not erase a good cache: a JSONL file opened as paged
// is an error, not healable damage — and the reverse open is also refused.
func TestPagedStoreRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "rows.jsonl")
	js, err := schedule.OpenJSONLStore(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := js.Put("k", schedule.Row{Instance: "i"}); err != nil {
		t.Fatal(err)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.OpenRowStore(jsonlPath, schedule.StoreOptions{Format: schedule.FormatPaged}); err == nil {
		t.Fatal("paged open of a JSONL store must fail")
	}

	pagedPath := filepath.Join(dir, "rows.paged")
	ps, err := schedule.OpenRowStore(pagedPath, schedule.StoreOptions{Format: schedule.FormatPaged})
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Put("k", schedule.Row{Instance: "i"}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.OpenRowStore(pagedPath, schedule.StoreOptions{Format: schedule.FormatBinary}); err == nil {
		t.Fatal("binary open of a paged store must fail")
	}
}

// Bounded semantics match the resident stores exactly, including recency
// surviving a reopen — but here via in-place stamp rewrites, not a
// close-time file rewrite.
func TestPagedStoreBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.paged")
	opt := schedule.StoreOptions{Format: schedule.FormatPaged, MaxEntries: 4}
	rs, err := schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := rs.Put(fmt.Sprintf("key-%d", i), schedule.Row{Instance: fmt.Sprintf("i%d", i), Memory: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if rs.Len() != 4 {
		t.Fatalf("bounded store holds %d rows, want 4", rs.Len())
	}
	if rs.Evictions() != 6 {
		t.Fatalf("bounded store evicted %d rows, want 6", rs.Evictions())
	}
	// Bump key-6 so the next eviction after a reopen drops key-7 instead.
	if _, ok := rs.Get("key-6"); !ok {
		t.Fatal("key-6 missing before close")
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err = schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Len() != 4 {
		t.Fatalf("reopened bounded store holds %d rows, want 4", rs.Len())
	}
	if err := rs.Put("key-10", schedule.Row{Instance: "i10"}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"key-6", "key-8", "key-9", "key-10"} {
		if _, ok := rs.Get(key); !ok {
			t.Errorf("%s missing after reopen", key)
		}
	}
	if _, ok := rs.Get("key-7"); ok {
		t.Error("key-7 survived although key-6 was more recently used")
	}
}

// Eviction reclaims pages in place: churning far more rows than the bound
// through a bounded paged store must not grow the file, and the resident
// page cache stays within the engine's bound the whole time.
func TestPagedStoreEvictionBoundsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.paged")
	opt := schedule.StoreOptions{Format: schedule.FormatPaged, MaxEntries: 64}
	rs, err := schedule.OpenRowStore(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	ps := rs.(*schedule.PagedStore)
	row := schedule.Row{Instance: "inst", Algorithm: "minmem", Memory: 7, IO: 9}
	var warm int
	for i := 0; i < 64*20; i++ {
		row.Budget = int64(i)
		if err := rs.Put(fmt.Sprintf("key-%d", i), row); err != nil {
			t.Fatal(err)
		}
		if i == 64*2 {
			warm = ps.StoreStats().FilePages
		}
	}
	if rs.Len() != 64 {
		t.Fatalf("bounded store holds %d rows, want 64", rs.Len())
	}
	s := ps.StoreStats()
	if s.FilePages > warm*4 {
		t.Fatalf("file grew from %d to %d pages under eviction churn: eviction is not reclaiming in place", warm, s.FilePages)
	}
	if s.CachedPages > 512 {
		t.Fatalf("resident page cache holds %d pages, beyond the 512-page bound", s.CachedPages)
	}
}
