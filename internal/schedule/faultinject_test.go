package schedule_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/schedule"
)

// With no scripts set, the fault harness is a transparent wrapper: same
// rows as Local, named as the wrapper, calls counted.
func TestFaultBackendTransparent(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := schedule.NewFaultBackend(schedule.Local{})
	if name := fb.Capabilities().Name; name != "fault(local)" {
		t.Fatalf("capabilities name %q", name)
	}
	got, err := fb.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, got, "transparent fault backend vs local")
	var sank schedule.Collector
	if err := fb.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, sank.Rows(), "transparent fault backend stream vs local")
	if fb.Runs() == 0 || fb.Cancellations() != 0 {
		t.Fatalf("runs %d cancellations %d", fb.Runs(), fb.Cancellations())
	}
}

// The latency script sees deterministic call numbers: SlowAfter(n, d)
// stalls exactly the calls from n on, and the fail script fails the calls
// it names without running the inner backend.
func TestFaultBackendScripts(t *testing.T) {
	jobs := gridJobs(t)[:4]
	fb := schedule.NewFaultBackend(schedule.Local{})
	var delayed []int
	fb.SetDelayScript(func(call int, jobs []schedule.Job) time.Duration {
		if len(jobs) == 0 {
			t.Error("delay script saw an empty chunk")
		}
		delayed = append(delayed, call)
		return 0
	})
	for i := 0; i < 3; i++ {
		if _, err := fb.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(delayed) != 3 || delayed[0] != 0 || delayed[1] != 1 || delayed[2] != 2 {
		t.Fatalf("delay script saw calls %v, want [0 1 2]", delayed)
	}

	boom := errors.New("scripted failure")
	fb.SetDelayScript(nil)
	fb.SetFailScript(func(call int) error {
		if call == 4 {
			return boom
		}
		return nil
	})
	if _, err := fb.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatalf("call 3 should pass: %v", err)
	}
	if _, err := fb.Run(context.Background(), jobs, schedule.BatchOptions{}); !errors.Is(err, boom) {
		t.Fatalf("call 4 err %v, want the scripted failure", err)
	}
	if _, err := fb.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatalf("call 5 should pass: %v", err)
	}
}

// A cancelled injected wait returns ctx.Err() promptly — without running
// the inner backend — counts as a cancellation, and fires the OnCancel
// hook with the call number. This is what makes the harness a faithful
// stand-in for a server whose request context dies with its client.
func TestFaultBackendCancelledWait(t *testing.T) {
	jobs := gridJobs(t)[:2]
	inner := &countingBackend{inner: schedule.Local{}}
	fb := schedule.NewFaultBackend(inner)
	fb.SetDelay(time.Minute)
	observed := make(chan int, 1)
	fb.OnCancel(func(call int) { observed <- call })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := fb.Run(ctx, jobs, schedule.BatchOptions{})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled wait did not return")
	}
	select {
	case call := <-observed:
		if call != 0 {
			t.Fatalf("OnCancel saw call %d, want 0", call)
		}
	default:
		t.Fatal("OnCancel hook never fired")
	}
	if fb.Cancellations() != 1 {
		t.Fatalf("cancellations %d, want 1", fb.Cancellations())
	}
	if got := inner.jobs.Load(); got != 0 {
		t.Fatalf("inner backend saw %d jobs during a cancelled wait", got)
	}
}
