package schedule_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/schedule"
)

var wireRows = []schedule.Row{
	{},
	{Instance: "u400", Algorithm: "minmem", Kind: "minmemory", Budget: 0, Memory: 1234, IO: 0, Writes: 0, Seconds: 0.25},
	{Instance: "i-1", Algorithm: "evict-best-3", Kind: "minio", Budget: 900, Memory: 900, IO: 4217, Writes: 31, Seconds: 1e-9},
	{Instance: strings.Repeat("x", 300), Algorithm: "", Kind: "k", Budget: -5, Memory: math.MaxInt64, IO: math.MinInt64, Writes: -1, Seconds: math.Inf(-1)},
	{Instance: "nan", Algorithm: "a", Kind: "b", Seconds: math.NaN()},
}

func TestRowWireRoundTrip(t *testing.T) {
	var data []byte
	for _, r := range wireRows {
		data = schedule.AppendRow(data, r)
	}
	for i, want := range wireRows {
		var got schedule.Row
		var err error
		got, data, err = schedule.DecodeRow(data)
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if !rowsBitIdentical(got, want) {
			t.Fatalf("row %d: round trip changed the row: got %+v want %+v", i, got, want)
		}
	}
	if len(data) != 0 {
		t.Fatalf("%d trailing bytes", len(data))
	}
}

func TestRowWireRejectsCorruption(t *testing.T) {
	data := schedule.AppendRow(nil, wireRows[2])
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := schedule.DecodeRow(data[:cut]); err == nil {
			t.Fatalf("decode accepted a row truncated to %d of %d bytes", cut, len(data))
		}
	}
	// A field length pointing past the end of the buffer must fail, not read
	// out of bounds.
	if _, _, err := schedule.DecodeRow([]byte{0xFF, 0x7F}); err == nil {
		t.Fatal("decode accepted an oversized field length")
	}
}

func TestBinaryRowSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := schedule.NewBinaryRowSink(&buf)
	for _, r := range wireRows {
		if err := sink.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := schedule.ReadBinaryRows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(wireRows) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wireRows))
	}
	for i := range rows {
		if !rowsBitIdentical(rows[i], wireRows[i]) {
			t.Fatalf("row %d changed through the framed stream: got %+v want %+v", i, rows[i], wireRows[i])
		}
	}
}

func TestBinaryRowSinkEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	sink := schedule.NewBinaryRowSink(&buf)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := schedule.ReadBinaryRows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty stream decoded %d rows", len(rows))
	}
}

func TestBinaryRowStreamRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	sink := schedule.NewBinaryRowSink(&buf)
	for _, r := range wireRows[:3] {
		if err := sink.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, c := range [][]byte{
		{},
		data[:2],
		data[:len(data)-1],
		append([]byte{0x00}, data[1:]...),
		append([]byte{data[0], data[1], 99}, data[3:]...),
	} {
		if _, err := schedule.ReadBinaryRows(bytes.NewReader(c)); err == nil {
			t.Fatal("reader accepted a corrupt stream")
		}
	}
}

// rowsBitIdentical compares rows treating Seconds as raw bits, so NaN
// payloads count as equal when identical and different bit patterns do not.
func rowsBitIdentical(a, b schedule.Row) bool {
	return a.Instance == b.Instance && a.Algorithm == b.Algorithm && a.Kind == b.Kind &&
		a.Budget == b.Budget && a.Memory == b.Memory && a.IO == b.IO && a.Writes == b.Writes &&
		math.Float64bits(a.Seconds) == math.Float64bits(b.Seconds)
}

// FuzzRowWireRoundTrip pins the binary row codec against the JSON one: for
// arbitrary field values the binary round trip must be the identity, and —
// whenever JSON can carry the row at all (finite Seconds) — must agree with
// the JSON round trip field for field.
func FuzzRowWireRoundTrip(f *testing.F) {
	for _, r := range wireRows {
		f.Add(r.Instance, r.Algorithm, r.Kind, r.Budget, r.Memory, r.IO, r.Writes, r.Seconds)
	}
	f.Fuzz(func(t *testing.T, instance, algorithm, kind string, budget, memory, ioN int64, writes int, seconds float64) {
		want := schedule.Row{
			Instance: instance, Algorithm: algorithm, Kind: kind,
			Budget: budget, Memory: memory, IO: ioN, Writes: writes, Seconds: seconds,
		}
		got, rest, err := schedule.DecodeRow(schedule.AppendRow(nil, want))
		if err != nil {
			t.Fatalf("decode of a fresh encoding failed: %v", err)
		}
		if len(rest) != 0 || !rowsBitIdentical(got, want) {
			t.Fatalf("binary round trip changed the row: got %+v want %+v", got, want)
		}
		if math.IsNaN(seconds) || math.IsInf(seconds, 0) {
			return // json.Marshal rejects non-finite floats; binary is exact above
		}
		if !utf8.ValidString(instance) || !utf8.ValidString(algorithm) || !utf8.ValidString(kind) {
			return // json.Marshal coerces invalid UTF-8 to U+FFFD; binary is exact above
		}
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("json round trip failed: %v", err)
		}
		var viaJSON schedule.Row
		if err := json.Unmarshal(data, &viaJSON); err != nil {
			t.Fatalf("json round trip failed: %v", err)
		}
		if viaJSON != got {
			t.Fatalf("binary and JSON round trips disagree: %+v vs %+v", got, viaJSON)
		}
	})
}
