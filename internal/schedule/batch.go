package schedule

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/runner"
	"repro/internal/tree"
)

// Instance is one named workflow of an evaluation grid. It mirrors the
// dataset package's Instance without importing it, so any caller can feed
// trees from any source.
type Instance struct {
	Name string
	Tree *tree.Tree
}

// Job is one (instance, algorithm) cell of an evaluation grid.
type Job struct {
	// Instance names the workflow for reporting.
	Instance string
	// Tree is the workflow itself.
	Tree *tree.Tree
	// Algorithm is the registry name of the solver to run.
	Algorithm string
	// Order, Memory and Window fill the algorithm's Request.
	Order  []int
	Memory int64
	Window int
}

// Row is the structured result of one job, ready for CSV or JSON streaming.
// Budget is emitted unconditionally (no omitempty): MinMemory rows carry an
// explicit zero, keeping JSON objects in column parity with the CSV header.
type Row struct {
	Instance  string  `json:"instance"`
	Algorithm string  `json:"algorithm"`
	Kind      string  `json:"kind"`
	Budget    int64   `json:"budget"`
	Memory    int64   `json:"memory"`
	IO        int64   `json:"io"`
	Writes    int     `json:"writes"`
	Seconds   float64 `json:"seconds"`
}

// BatchOptions configures a Backend run.
type BatchOptions struct {
	// Workers bounds the worker pool; ≤ 0 selects GOMAXPROCS. Remote
	// backends forward it to the server, where the same convention applies.
	Workers int
	// OnRow, when non-nil, receives each row as its job completes
	// (completion order, serialized by the evaluator). The returned slice
	// is always in job order regardless.
	OnRow func(Row)
	// OnRowIndexed is OnRow plus the job index, for callers that need to
	// correlate streamed rows with jobs (the evaluation service streams
	// indexed rows over the wire). Serialized with OnRow.
	OnRowIndexed func(i int, r Row)
}

// RunBatch evaluates the jobs on the default Local backend. It is the
// compatibility shim over the Backend interface: existing callers keep the
// one-call API, while backend-aware callers pick Local, NewCached or the
// service client explicitly.
func RunBatch(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error) {
	return Local{}.Run(ctx, jobs, opt)
}

func runJob(j Job) (Row, error) {
	alg, err := Lookup(j.Algorithm)
	if err != nil {
		return Row{}, err
	}
	start := time.Now()
	out, err := alg.Run(Request{Tree: j.Tree, Order: j.Order, Memory: j.Memory, Window: j.Window})
	if err != nil {
		return Row{}, err
	}
	return Row{
		Instance:  j.Instance,
		Algorithm: j.Algorithm,
		Kind:      alg.Kind().String(),
		Budget:    j.Memory,
		Memory:    out.Memory,
		IO:        out.IO,
		Writes:    len(out.Writes),
		Seconds:   time.Since(start).Seconds(),
	}, nil
}

// MinMemoryGrid expands instances × MinMemory algorithm names into jobs,
// instance-major: jobs[i*len(algorithms)+k] is (instances[i], algorithms[k]).
func MinMemoryGrid(insts []Instance, algorithms []string) []Job {
	jobs := make([]Job, 0, len(insts)*len(algorithms))
	for _, inst := range insts {
		for _, a := range algorithms {
			jobs = append(jobs, Job{Instance: inst.Name, Tree: inst.Tree, Algorithm: a})
		}
	}
	return jobs
}

// MinIOGrid expands instances × memory budgets × MinIO algorithm names into
// jobs. The traversal replayed by every job of an instance is produced by
// the orderBy MinMemory algorithm (run concurrently, one per instance), and
// memories maps each tree to its budget sweep; it also receives the orderBy
// outcome so sweeps anchored on a solver's memory need not re-run it. Jobs
// are instance-major, then budget, then algorithm.
func MinIOGrid(ctx context.Context, insts []Instance, orderBy string, algorithms []string, memories func(*tree.Tree, Outcome) ([]int64, error), workers int) ([]Job, error) {
	orderAlg, err := Lookup(orderBy)
	if err != nil {
		return nil, err
	}
	if orderAlg.Kind() != KindMinMemory {
		return nil, fmt.Errorf("schedule: orderBy algorithm %q is not a MinMemory solver", orderBy)
	}
	type prep struct {
		order []int
		mems  []int64
	}
	preps, err := runner.Map(ctx, len(insts), workers, func(i int) (prep, error) {
		out, err := orderAlg.Run(Request{Tree: insts[i].Tree})
		if err != nil {
			return prep{}, fmt.Errorf("schedule: %s: %s: %w", insts[i].Name, orderBy, err)
		}
		if out.Order == nil {
			return prep{}, fmt.Errorf("schedule: %s returns no traversal to replay", orderBy)
		}
		mems, err := memories(insts[i].Tree, out)
		if err != nil {
			return prep{}, fmt.Errorf("schedule: %s: %w", insts[i].Name, err)
		}
		return prep{order: out.Order, mems: mems}, nil
	})
	if err != nil {
		return nil, err
	}
	var jobs []Job
	for i, inst := range insts {
		for _, m := range preps[i].mems {
			for _, a := range algorithms {
				jobs = append(jobs, Job{Instance: inst.Name, Tree: inst.Tree, Algorithm: a, Order: preps[i].order, Memory: m})
			}
		}
	}
	return jobs, nil
}

// rowCSVHeader is the CSV column set; Row's JSON field order matches it.
var rowCSVHeader = []string{"instance", "algorithm", "kind", "budget", "memory", "io", "writes", "seconds"}

func rowCSVRecord(r Row) []string {
	return []string{
		r.Instance, r.Algorithm, r.Kind,
		strconv.FormatInt(r.Budget, 10),
		strconv.FormatInt(r.Memory, 10),
		strconv.FormatInt(r.IO, 10),
		strconv.Itoa(r.Writes),
		strconv.FormatFloat(r.Seconds, 'g', -1, 64),
	}
}

// WriteRowsCSV writes rows as CSV with a header line (the slice form of
// NewCSVSink).
func WriteRowsCSV(w io.Writer, rows []Row) error {
	sink := NewCSVSink(w)
	for _, r := range rows {
		if err := sink.Push(r); err != nil {
			return err
		}
	}
	return sink.Flush()
}

// WriteRowsJSON writes rows as JSON Lines, one object per row (the slice
// form of NewJSONLSink).
func WriteRowsJSON(w io.Writer, rows []Row) error {
	sink := NewJSONLSink(w)
	for _, r := range rows {
		if err := sink.Push(r); err != nil {
			return err
		}
	}
	return nil
}
