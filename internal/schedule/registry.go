package schedule

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/tree"
)

// Kind classifies the two solver families of the paper.
type Kind int

const (
	// KindMinMemory solvers take a tree and return the minimum main memory
	// they certify, usually with a traversal achieving it (Section IV).
	KindMinMemory Kind = iota
	// KindMinIO solvers take a tree, a memory budget and (except for the
	// free-order oracle) a traversal, and return an I/O volume (Section V).
	KindMinIO
)

// String names the kind for reports and CSV rows.
func (k Kind) String() string {
	switch k {
	case KindMinMemory:
		return "minmemory"
	case KindMinIO:
		return "minio"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is the input of one algorithm run.
type Request struct {
	// Tree is the workflow instance; required.
	Tree *tree.Tree
	// Order is the top-down traversal to replay; required for KindMinIO
	// algorithms except the free-order oracle, ignored by KindMinMemory.
	Order []int
	// Memory is the main-memory budget; required (> 0) for KindMinIO.
	Memory int64
	// Window overrides the Best-K subset window; 0 selects BestKWindow.
	Window int
}

// Outcome is the result of one algorithm run.
type Outcome struct {
	// Memory is the certified minimum memory (KindMinMemory) or the peak
	// resident memory reached during the replay (KindMinIO).
	Memory int64
	// Order is the traversal produced or replayed; nil when the algorithm
	// proves a value without exhibiting a traversal.
	Order []int
	// IO is the I/O volume (KindMinIO only).
	IO int64
	// Writes lists the evictions (policy simulations only).
	Writes []WriteEvent
}

// Algorithm is one named solver. Implementations must be safe for concurrent
// Run calls on distinct requests: the batch evaluator fans them out.
type Algorithm interface {
	// Name is the registry key: lower-case, kebab-case.
	Name() string
	Kind() Kind
	Run(Request) (Outcome, error)
}

var registry = struct {
	sync.RWMutex
	m map[string]Algorithm
}{m: map[string]Algorithm{}}

// displayNames maps registry keys to the paper's display names.
var displayNames = struct {
	sync.RWMutex
	m map[string]string
}{m: map[string]string{}}

// Register adds an algorithm under its name. It panics on an empty name or a
// duplicate registration — solver packages register in init, so a collision
// is a programming error, not a runtime condition.
func Register(a Algorithm) {
	name := a.Name()
	if name == "" {
		panic("schedule: Register with empty algorithm name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("schedule: algorithm %q registered twice", name))
	}
	registry.m[name] = a
}

// Lookup returns the algorithm registered under name. The error of an
// unknown name lists what is available, so CLI typos are self-explaining.
func Lookup(name string) (Algorithm, error) {
	registry.RLock()
	a, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("schedule: unknown algorithm %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return a, nil
}

// Names returns every registered algorithm name, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesByKind returns the registered names of one kind, sorted.
func NamesByKind(k Kind) []string {
	registry.RLock()
	defer registry.RUnlock()
	var out []string
	for n, a := range registry.m {
		if a.Kind() == k {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// DisplayName returns the paper's name for a registered algorithm ("First
// Fit" for "first-fit"), or name itself when no display name was declared.
func DisplayName(name string) string {
	displayNames.RLock()
	defer displayNames.RUnlock()
	if d, ok := displayNames.m[name]; ok {
		return d
	}
	return name
}

func setDisplayName(name, display string) {
	displayNames.Lock()
	displayNames.m[name] = display
	displayNames.Unlock()
}

// funcAlgorithm adapts a function to the Algorithm interface.
type funcAlgorithm struct {
	name string
	kind Kind
	run  func(Request) (Outcome, error)
}

func (a funcAlgorithm) Name() string                   { return a.name }
func (a funcAlgorithm) Kind() Kind                     { return a.kind }
func (a funcAlgorithm) Run(r Request) (Outcome, error) { return a.run(r) }

// RegisterMinMemory registers a MinMemory solver under name. solve returns
// the certified memory and a top-down traversal achieving it (nil when the
// solver proves the value without exhibiting an order).
func RegisterMinMemory(name, display string, solve func(*tree.Tree) (int64, []int, error)) {
	setDisplayName(name, display)
	Register(funcAlgorithm{name: name, kind: KindMinMemory, run: func(req Request) (Outcome, error) {
		if req.Tree == nil {
			return Outcome{}, fmt.Errorf("schedule: %s: nil tree", name)
		}
		mem, order, err := solve(req.Tree)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Memory: mem, Order: order}, nil
	}})
}

// RegisterMinIO registers a MinIO solver under name. run receives the full
// request (tree, order, budget).
func RegisterMinIO(name, display string, run func(Request) (Outcome, error)) {
	setDisplayName(name, display)
	Register(funcAlgorithm{name: name, kind: KindMinIO, run: func(req Request) (Outcome, error) {
		if req.Tree == nil {
			return Outcome{}, fmt.Errorf("schedule: %s: nil tree", name)
		}
		if req.Memory <= 0 {
			return Outcome{}, fmt.Errorf("schedule: %s: a positive memory budget is required", name)
		}
		return run(req)
	}})
}

// evictionPolicyNames lists the six greedy policies in the paper's display
// order (Section V-B, Figure 7).
var evictionPolicyNames = []string{"lsnf", "first-fit", "best-fit", "first-fill", "best-fill", "best-k"}

// EvictionPolicyNames returns the registry names of the six greedy eviction
// policies in the paper's display order.
func EvictionPolicyNames() []string {
	out := make([]string, len(evictionPolicyNames))
	copy(out, evictionPolicyNames)
	return out
}

// EvictorByName builds the eviction policy registered under one of the six
// policy names; window applies to "best-k" only (0 selects BestKWindow).
// Window validation happens once, in the BestK constructor, which returns
// a *WindowRangeError for values outside [1, MaxBestKWindow].
func EvictorByName(name string, window int) (Evictor, error) {
	if window == 0 {
		window = BestKWindow
	}
	switch name {
	case "lsnf":
		return LSNF(), nil
	case "first-fit":
		return FirstFit(), nil
	case "best-fit":
		return BestFit(), nil
	case "first-fill":
		return FirstFill(), nil
	case "best-fill":
		return BestFill(), nil
	case "best-k":
		return BestK(window)
	default:
		return nil, fmt.Errorf("schedule: unknown eviction policy %q (known: %s)", name, strings.Join(evictionPolicyNames, ", "))
	}
}

// init registers the six eviction policies as MinIO algorithms: each one
// replays the request's traversal through the unified simulator.
func init() {
	for _, polName := range evictionPolicyNames {
		polName := polName
		ev, err := EvictorByName(polName, 0)
		if err != nil {
			panic(err)
		}
		RegisterMinIO(polName, ev.Name(), func(req Request) (Outcome, error) {
			pol, err := EvictorByName(polName, req.Window)
			if err != nil {
				return Outcome{}, err
			}
			sim, err := Simulate(req.Tree, req.Order, Config{Memory: req.Memory, Evict: pol})
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{Memory: sim.Peak, Order: req.Order, IO: sim.IO, Writes: sim.Writes}, nil
		})
	}
}
