package schedule

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tree"
)

// Shard fans one job stream out across several child backends — typically
// service.Client remotes speaking to distinct scheduled servers. The stream
// is cut into chunks (StreamOptions.ChunkSize); each chunk is dispatched to
// a child picked by the ShardOptions.Policy scheduler — by default the
// adaptive policy, which weights dispatch by each child's observed
// throughput and in-flight load so a slow or busy server naturally receives
// fewer chunks — with at most StreamOptions.InFlight chunks in flight
// (default 2 × children). Chunk results merge into the sink in job order,
// so a sharded grid is bit-identical to a Local run up to the Seconds
// column.
//
// A chunk whose child fails is resubmitted to another child, and the failed
// child is quarantined: benched for an exponentially growing interval
// (ShardOptions.QuarantineBase doubling up to QuarantineMax), then probed —
// via HealthChecker when the child implements it, on backoff expiry alone
// otherwise — and readmitted when it responds. Transient child failures (a
// server restarting, a dropped connection) therefore cost a resubmission
// and a quarantine, not the batch. Only when every child has either failed
// the chunk or failed its readmission probe does the stream fail, with a
// *ChunkError naming the chunk's job index range so the run can be resumed.
// Deterministic job errors still fail after one round, since every child
// rejects them the same way.
//
// With ShardOptions.Warm set, each computed chunk's rows are forwarded
// (keyed by CacheKey) to every sibling child implementing RowWarmer, so a
// resubmitted or re-run chunk is warm on every cache in the fleet.
//
// With ShardOptions.HedgeAfter set, a chunk held by a straggling child is
// speculatively re-dispatched: once the chunk runs past its hedge delay
// (the larger of HedgeAfter and HedgeMultiple × the child's predicted
// completion time), a second healthy child races it. The first result
// wins, the loser's context is cancelled, and only the winner's rows reach
// the sink — a child that silently degrades to 10× slow mid-grid costs one
// hedge delay, not a 10× chunk. Hedges and their wins are counted
// (Counters().Hedges / HedgeWins) separately from failure-driven
// resubmissions.
//
// Construct with NewShard (default options) or NewShardWith.
type Shard struct {
	mu       sync.Mutex
	children []shardChild
	rr       int // round-robin cursor, guarded by mu
	opt      ShardOptions

	resubmits    atomic.Int64
	quarantines  atomic.Int64
	readmissions atomic.Int64
	warmedRows   atomic.Int64
	warmErrors   atomic.Int64
	sheds        atomic.Int64
	hedges       atomic.Int64
	hedgeWins    atomic.Int64

	digestMu      sync.Mutex
	digests       map[*tree.Tree]tree.Digest
	activeStreams int
}

// NewShard builds a shard over the child backends with default options:
// the adaptive dispatch policy, the default quarantine ladder, no cache
// warming.
func NewShard(children ...Backend) (*Shard, error) {
	return NewShardWith(ShardOptions{}, children...)
}

// NewShardWith builds a shard over the child backends with the given
// scheduler options.
func NewShardWith(opt ShardOptions, children ...Backend) (*Shard, error) {
	if len(children) == 0 {
		return nil, errors.New("schedule: shard needs at least one child backend")
	}
	switch opt.Policy {
	case "", PolicyAdaptive, PolicyRoundRobin:
	default:
		return nil, fmt.Errorf("schedule: unknown shard policy %q", opt.Policy)
	}
	s := &Shard{opt: opt.withDefaults(), digests: map[*tree.Tree]tree.Digest{}}
	for i, c := range children {
		if c == nil {
			return nil, fmt.Errorf("schedule: shard child %d is nil", i)
		}
		s.children = append(s.children, shardChild{backend: c, name: c.Capabilities().Name})
	}
	return s, nil
}

// Capabilities implements Backend: the shard is remote or cached when any
// child is.
func (s *Shard) Capabilities() Capabilities {
	var names []string
	caps := Capabilities{}
	for i := range s.children {
		cc := s.children[i].backend.Capabilities()
		names = append(names, cc.Name)
		caps.Remote = caps.Remote || cc.Remote
		caps.Cached = caps.Cached || cc.Cached
	}
	caps.Name = "shard(" + strings.Join(names, ",") + ")"
	return caps
}

// Resubmissions returns the cumulative number of chunk retries: dispatches
// beyond the first attempt, across all Stream and Run calls. It is
// Counters().Resubmissions, kept as a method for existing callers.
func (s *Shard) Resubmissions() int64 { return s.resubmits.Load() }

// Counters returns a snapshot of the shard's cumulative scheduling
// counters.
func (s *Shard) Counters() ShardCounters {
	return ShardCounters{
		Resubmissions: s.resubmits.Load(),
		Quarantines:   s.quarantines.Load(),
		Readmissions:  s.readmissions.Load(),
		WarmedRows:    s.warmedRows.Load(),
		WarmErrors:    s.warmErrors.Load(),
		LoadSheds:     s.sheds.Load(),
		Hedges:        s.hedges.Load(),
		HedgeWins:     s.hedgeWins.Load(),
	}
}

// ChildStats returns a per-child snapshot of the scheduler state, in child
// order.
func (s *Shard) ChildStats() []ShardChildStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := make([]ShardChildStats, len(s.children))
	for i := range s.children {
		c := &s.children[i]
		tp, _ := c.throughput()
		stats[i] = ShardChildStats{
			Name:         c.name,
			Chunks:       c.chunks,
			Rows:         c.rows,
			Failures:     c.failures,
			Quarantines:  c.quarantines,
			Readmissions: c.readmissions,
			Quarantined:  c.quarantined,
			RowsPerSec:   tp,
		}
	}
	return stats
}

// Admission-control clamps on the OverloadError.RetryAfter estimate: the
// drain-time guess divides by a windowed throughput that may be tiny or
// absent early on, so the advertised backoff is kept within a range that
// neither hammers an overloaded fleet nor strands a recovering one.
const (
	minShedRetryAfter = time.Second
	maxShedRetryAfter = 30 * time.Second
)

// Admit implements Admitter when ShardOptions.MaxQueueDepth is set: the
// batch is accepted while any healthy (non-quarantined) child has fewer
// than MaxQueueDepth jobs in flight, and shed with an *OverloadError
// otherwise — including when every child is quarantined, since work
// admitted then could only queue behind the bench. The RetryAfter
// estimate is the shallowest healthy queue's drain time at its observed
// throughput. With MaxQueueDepth ≤ 0 every batch is admitted.
func (s *Shard) Admit(jobs int) error {
	if s.opt.MaxQueueDepth <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	drain := time.Duration(-1)
	for i := range s.children {
		c := &s.children[i]
		if c.quarantined {
			continue
		}
		if c.inFlightJobs < s.opt.MaxQueueDepth {
			return nil
		}
		// Excess over where admission reopens, drained at the child's pace.
		excess := float64(c.inFlightJobs - s.opt.MaxQueueDepth + 1)
		if tp, ok := c.throughput(); ok && tp > 0 {
			if d := time.Duration(excess / tp * float64(time.Second)); drain < 0 || d < drain {
				drain = d
			}
		}
	}
	if drain < minShedRetryAfter {
		drain = minShedRetryAfter
	}
	if drain > maxShedRetryAfter {
		drain = maxShedRetryAfter
	}
	s.sheds.Add(1)
	return &OverloadError{RetryAfter: drain}
}

// Stream implements Backend: chunks fan out across the children under the
// configured dispatch policy with bounded in-flight, failed chunks are
// resubmitted to other children (the failing child is quarantined and later
// readmitted), and the order-preserving merge keeps the sink bit-identical
// to a Local run.
func (s *Shard) Stream(ctx context.Context, src JobSource, sink RowSink, opt StreamOptions) error {
	if opt.ChunkSize <= 0 && s.opt.ChunkSize > 0 {
		opt.ChunkSize = s.opt.ChunkSize
	}
	chunkSize, inFlight := opt.chunking(2 * len(s.children))
	s.acquireDigests()
	defer s.releaseDigests()
	return streamChunks(ctx, src, sink, chunkSize, inFlight, func(ctx context.Context, start int, jobs []Job) ([]Row, error) {
		return s.runChunk(ctx, start, jobs, opt.Workers)
	})
}

// Run implements Backend as the shim over Stream (RunViaStream): the jobs
// slice streams through the sharded fan-out and the rows collect in job
// order.
func (s *Shard) Run(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error) {
	return RunViaStream(ctx, s, jobs, opt)
}

// attemptResult is one chunk dispatch's outcome, delivered to runChunk's
// control loop.
type attemptResult struct {
	idx   int
	rows  []Row
	err   error
	hedge bool
}

// runChunk evaluates one chunk (stream job indices [start, start+len(jobs))),
// dispatching to scheduler-picked children until one succeeds. Each child is
// tried at most once per chunk; a failing child is quarantined and the
// chunk resubmitted elsewhere. With hedging enabled (ShardOptions.
// HedgeAfter), an attempt that runs past its hedge delay is raced by a
// speculative dispatch to another healthy child: the first result wins and
// every other attempt is cancelled, so exactly one attempt's rows are
// returned — the merge never sees duplicates. When every child has been
// tried — run or readmission probe — and failed, the chunk fails with a
// *ChunkError naming the job index range.
func (s *Shard) runChunk(ctx context.Context, start int, jobs []Job, workers int) ([]Row, error) {
	tried := make(map[int]bool, len(s.children))
	var errs []error
	chunkErr := func() error {
		joined := errors.Join(errs...)
		if joined == nil {
			// Every child was exhausted by failed readmission probes rather
			// than by running this chunk; say so instead of wrapping nil.
			joined = errors.New("every child is quarantined and failed its readmission probe")
		}
		return &ChunkError{First: start, Last: start + len(jobs), Err: joined}
	}

	// Each child runs at most once per chunk, so the buffer guarantees no
	// attempt goroutine ever blocks sending its result — a straggler that
	// loses the race finishes and exits even after runChunk has returned.
	results := make(chan attemptResult, len(s.children))
	running, dispatches := 0, 0
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	launch := func(idx int, hedge bool) {
		tried[idx] = true
		if hedge {
			s.hedges.Add(1)
		} else if dispatches > 0 {
			s.resubmits.Add(1)
		}
		dispatches++
		running++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		child := s.children[idx].backend
		// The stream engine recycles the chunk's pooled jobs buffer the
		// moment runChunk returns, while a cancelled straggler may still be
		// reading it; every attempt therefore gets its own copy.
		jobsCopy := append([]Job(nil), jobs...)
		t0 := time.Now()
		go func() {
			rows, err := child.Run(actx, jobsCopy, BatchOptions{Workers: workers})
			outcome := attemptFailed
			switch {
			case err == nil:
				outcome = attemptOK
			case actx.Err() != nil && ctx.Err() == nil:
				outcome = attemptHedgeLoss
			}
			s.complete(idx, len(jobsCopy), time.Since(t0), outcome)
			results <- attemptResult{idx: idx, rows: rows, err: err, hedge: hedge}
		}()
	}
	// finish drains the still-running losers' results in the background so
	// their row slices recirculate through the stream engine's pool.
	finish := func(pending int) {
		if pending <= 0 {
			return
		}
		go func() {
			for i := 0; i < pending; i++ {
				if res := <-results; res.err == nil {
					putRowSlice(res.rows)
				}
			}
		}()
	}

	// The hedge timer is re-created per arm (never Reset) so a late fire
	// can't race a re-arm; hedgeC is nil — and the select case dormant —
	// while hedging is off or exhausted.
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	stopHedge := func() {
		if hedgeTimer != nil {
			hedgeTimer.Stop()
			hedgeTimer, hedgeC = nil, nil
		}
	}
	armHedge := func(d time.Duration) {
		stopHedge()
		hedgeTimer = time.NewTimer(d)
		hedgeC = hedgeTimer.C
	}
	defer stopHedge()

	for {
		if running == 0 {
			idx := s.pick(ctx, tried, len(jobs))
			if idx < 0 {
				if err := ctx.Err(); err != nil {
					// The stream is being torn down; this chunk was aborted,
					// not rejected fleet-wide, so surface the cancellation
					// rather than a misleading all-children ChunkError.
					return nil, err
				}
				return nil, chunkErr()
			}
			launch(idx, false)
			if s.opt.HedgeAfter > 0 {
				armHedge(s.hedgeDelay(idx, len(jobs)))
			}
		}
		select {
		case res := <-results:
			running--
			if res.err == nil {
				if res.hedge {
					s.hedgeWins.Add(1)
				}
				// Cancel the losers before warming so they stop burning
				// child capacity now, not after the warm round-trip (the
				// deferred cancels would be too late for that).
				for _, cancel := range cancels {
					cancel()
				}
				finish(running)
				if s.opt.Warm {
					s.warmSiblings(ctx, res.idx, jobs, res.rows)
				}
				return res.rows, nil
			}
			if ctx.Err() != nil {
				// The attempt's failure is (or is indistinguishable from)
				// the teardown: don't bench a possibly healthy child or
				// inflate its failure counters, and report the abort as
				// what it is.
				finish(running)
				return nil, ctx.Err()
			}
			errs = append(errs, fmt.Errorf("%s: %w", s.children[res.idx].name, res.err))
			s.quarantine(res.idx)
		case <-hedgeC:
			hedgeTimer, hedgeC = nil, nil
			idx, retry := s.tryPick(ctx, tried, len(jobs))
			if idx >= 0 {
				launch(idx, true)
				armHedge(s.hedgeDelay(idx, len(jobs)))
			} else if retry {
				// Untried children exist but are benched or mid-probe right
				// now; check back after another hedge interval.
				armHedge(s.opt.HedgeAfter)
			}
		}
	}
}
