package schedule

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// Shard fans one job stream out across several child backends — typically
// service.Client remotes speaking to distinct scheduled servers. The stream
// is cut into chunks (StreamOptions.ChunkSize); each chunk is dispatched
// round-robin to a child with at most StreamOptions.InFlight chunks in
// flight (default 2 × children), and the chunk results merge into the sink
// in job order, so a sharded grid is bit-identical to a Local run up to the
// Seconds column.
//
// A chunk whose child fails is resubmitted to the next child, trying each
// child at most once; only when every child has failed the chunk does the
// stream fail. Transient child failures (a server restarting, a dropped
// connection) therefore cost a resubmission, not the batch — deterministic
// job errors still fail after one round, since every child rejects them the
// same way. Construct with NewShard.
type Shard struct {
	children  []Backend
	rr        atomic.Int64
	resubmits atomic.Int64
}

// NewShard builds a shard over the child backends.
func NewShard(children ...Backend) (*Shard, error) {
	if len(children) == 0 {
		return nil, errors.New("schedule: shard needs at least one child backend")
	}
	for i, c := range children {
		if c == nil {
			return nil, fmt.Errorf("schedule: shard child %d is nil", i)
		}
	}
	return &Shard{children: append([]Backend(nil), children...)}, nil
}

// Capabilities implements Backend: the shard is remote or cached when any
// child is.
func (s *Shard) Capabilities() Capabilities {
	var names []string
	caps := Capabilities{}
	for _, c := range s.children {
		cc := c.Capabilities()
		names = append(names, cc.Name)
		caps.Remote = caps.Remote || cc.Remote
		caps.Cached = caps.Cached || cc.Cached
	}
	caps.Name = "shard(" + strings.Join(names, ",") + ")"
	return caps
}

// Resubmissions returns the cumulative number of chunk retries: dispatches
// beyond the first attempt, across all Stream and Run calls.
func (s *Shard) Resubmissions() int64 { return s.resubmits.Load() }

// Stream implements Backend: chunks fan out across the children with
// bounded in-flight, failed chunks are resubmitted to other children, and
// the order-preserving merge keeps the sink bit-identical to a Local run.
func (s *Shard) Stream(ctx context.Context, src JobSource, sink RowSink, opt StreamOptions) error {
	chunkSize, inFlight := opt.chunking(2 * len(s.children))
	return streamChunks(ctx, src, sink, chunkSize, inFlight, func(ctx context.Context, jobs []Job) ([]Row, error) {
		return s.runChunk(ctx, jobs, opt.Workers)
	})
}

// Run implements Backend as the shim over Stream (RunViaStream): the jobs
// slice streams through the sharded fan-out and the rows collect in job
// order.
func (s *Shard) Run(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error) {
	return RunViaStream(ctx, s, jobs, opt)
}

// runChunk evaluates one chunk, trying each child at most once, starting at
// the round-robin cursor so concurrent chunks spread across the children.
func (s *Shard) runChunk(ctx context.Context, jobs []Job, workers int) ([]Row, error) {
	start := int(s.rr.Add(1)-1) % len(s.children)
	var errs []error
	for k := 0; k < len(s.children); k++ {
		if k > 0 {
			s.resubmits.Add(1)
		}
		child := s.children[(start+k)%len(s.children)]
		rows, err := child.Run(ctx, jobs, BatchOptions{Workers: workers})
		if err == nil {
			return rows, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", child.Capabilities().Name, err))
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("schedule: shard chunk of %d jobs failed on all children: %w", len(jobs), errors.Join(errs...))
}
