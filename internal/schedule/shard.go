package schedule

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tree"
)

// Shard fans one job stream out across several child backends — typically
// service.Client remotes speaking to distinct scheduled servers. The stream
// is cut into chunks (StreamOptions.ChunkSize); each chunk is dispatched to
// a child picked by the ShardOptions.Policy scheduler — by default the
// adaptive policy, which weights dispatch by each child's observed
// throughput and in-flight load so a slow or busy server naturally receives
// fewer chunks — with at most StreamOptions.InFlight chunks in flight
// (default 2 × children). Chunk results merge into the sink in job order,
// so a sharded grid is bit-identical to a Local run up to the Seconds
// column.
//
// A chunk whose child fails is resubmitted to another child, and the failed
// child is quarantined: benched for an exponentially growing interval
// (ShardOptions.QuarantineBase doubling up to QuarantineMax), then probed —
// via HealthChecker when the child implements it, on backoff expiry alone
// otherwise — and readmitted when it responds. Transient child failures (a
// server restarting, a dropped connection) therefore cost a resubmission
// and a quarantine, not the batch. Only when every child has either failed
// the chunk or failed its readmission probe does the stream fail, with a
// *ChunkError naming the chunk's job index range so the run can be resumed.
// Deterministic job errors still fail after one round, since every child
// rejects them the same way.
//
// With ShardOptions.Warm set, each computed chunk's rows are forwarded
// (keyed by CacheKey) to every sibling child implementing RowWarmer, so a
// resubmitted or re-run chunk is warm on every cache in the fleet.
//
// Construct with NewShard (default options) or NewShardWith.
type Shard struct {
	mu       sync.Mutex
	children []shardChild
	rr       int // round-robin cursor, guarded by mu
	opt      ShardOptions

	resubmits    atomic.Int64
	quarantines  atomic.Int64
	readmissions atomic.Int64
	warmedRows   atomic.Int64
	warmErrors   atomic.Int64
	sheds        atomic.Int64

	digestMu      sync.Mutex
	digests       map[*tree.Tree]tree.Digest
	activeStreams int
}

// NewShard builds a shard over the child backends with default options:
// the adaptive dispatch policy, the default quarantine ladder, no cache
// warming.
func NewShard(children ...Backend) (*Shard, error) {
	return NewShardWith(ShardOptions{}, children...)
}

// NewShardWith builds a shard over the child backends with the given
// scheduler options.
func NewShardWith(opt ShardOptions, children ...Backend) (*Shard, error) {
	if len(children) == 0 {
		return nil, errors.New("schedule: shard needs at least one child backend")
	}
	switch opt.Policy {
	case "", PolicyAdaptive, PolicyRoundRobin:
	default:
		return nil, fmt.Errorf("schedule: unknown shard policy %q", opt.Policy)
	}
	s := &Shard{opt: opt.withDefaults(), digests: map[*tree.Tree]tree.Digest{}}
	for i, c := range children {
		if c == nil {
			return nil, fmt.Errorf("schedule: shard child %d is nil", i)
		}
		s.children = append(s.children, shardChild{backend: c, name: c.Capabilities().Name})
	}
	return s, nil
}

// Capabilities implements Backend: the shard is remote or cached when any
// child is.
func (s *Shard) Capabilities() Capabilities {
	var names []string
	caps := Capabilities{}
	for i := range s.children {
		cc := s.children[i].backend.Capabilities()
		names = append(names, cc.Name)
		caps.Remote = caps.Remote || cc.Remote
		caps.Cached = caps.Cached || cc.Cached
	}
	caps.Name = "shard(" + strings.Join(names, ",") + ")"
	return caps
}

// Resubmissions returns the cumulative number of chunk retries: dispatches
// beyond the first attempt, across all Stream and Run calls. It is
// Counters().Resubmissions, kept as a method for existing callers.
func (s *Shard) Resubmissions() int64 { return s.resubmits.Load() }

// Counters returns a snapshot of the shard's cumulative scheduling
// counters.
func (s *Shard) Counters() ShardCounters {
	return ShardCounters{
		Resubmissions: s.resubmits.Load(),
		Quarantines:   s.quarantines.Load(),
		Readmissions:  s.readmissions.Load(),
		WarmedRows:    s.warmedRows.Load(),
		WarmErrors:    s.warmErrors.Load(),
		LoadSheds:     s.sheds.Load(),
	}
}

// ChildStats returns a per-child snapshot of the scheduler state, in child
// order.
func (s *Shard) ChildStats() []ShardChildStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := make([]ShardChildStats, len(s.children))
	for i := range s.children {
		c := &s.children[i]
		tp, _ := c.throughput()
		stats[i] = ShardChildStats{
			Name:         c.name,
			Chunks:       c.chunks,
			Rows:         c.rows,
			Failures:     c.failures,
			Quarantines:  c.quarantines,
			Readmissions: c.readmissions,
			Quarantined:  c.quarantined,
			RowsPerSec:   tp,
		}
	}
	return stats
}

// Admission-control clamps on the OverloadError.RetryAfter estimate: the
// drain-time guess divides by a windowed throughput that may be tiny or
// absent early on, so the advertised backoff is kept within a range that
// neither hammers an overloaded fleet nor strands a recovering one.
const (
	minShedRetryAfter = time.Second
	maxShedRetryAfter = 30 * time.Second
)

// Admit implements Admitter when ShardOptions.MaxQueueDepth is set: the
// batch is accepted while any healthy (non-quarantined) child has fewer
// than MaxQueueDepth jobs in flight, and shed with an *OverloadError
// otherwise — including when every child is quarantined, since work
// admitted then could only queue behind the bench. The RetryAfter
// estimate is the shallowest healthy queue's drain time at its observed
// throughput. With MaxQueueDepth ≤ 0 every batch is admitted.
func (s *Shard) Admit(jobs int) error {
	if s.opt.MaxQueueDepth <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	drain := time.Duration(-1)
	for i := range s.children {
		c := &s.children[i]
		if c.quarantined {
			continue
		}
		if c.inFlightJobs < s.opt.MaxQueueDepth {
			return nil
		}
		// Excess over where admission reopens, drained at the child's pace.
		excess := float64(c.inFlightJobs - s.opt.MaxQueueDepth + 1)
		if tp, ok := c.throughput(); ok && tp > 0 {
			if d := time.Duration(excess / tp * float64(time.Second)); drain < 0 || d < drain {
				drain = d
			}
		}
	}
	if drain < minShedRetryAfter {
		drain = minShedRetryAfter
	}
	if drain > maxShedRetryAfter {
		drain = maxShedRetryAfter
	}
	s.sheds.Add(1)
	return &OverloadError{RetryAfter: drain}
}

// Stream implements Backend: chunks fan out across the children under the
// configured dispatch policy with bounded in-flight, failed chunks are
// resubmitted to other children (the failing child is quarantined and later
// readmitted), and the order-preserving merge keeps the sink bit-identical
// to a Local run.
func (s *Shard) Stream(ctx context.Context, src JobSource, sink RowSink, opt StreamOptions) error {
	chunkSize, inFlight := opt.chunking(2 * len(s.children))
	s.acquireDigests()
	defer s.releaseDigests()
	return streamChunks(ctx, src, sink, chunkSize, inFlight, func(ctx context.Context, start int, jobs []Job) ([]Row, error) {
		return s.runChunk(ctx, start, jobs, opt.Workers)
	})
}

// Run implements Backend as the shim over Stream (RunViaStream): the jobs
// slice streams through the sharded fan-out and the rows collect in job
// order.
func (s *Shard) Run(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error) {
	return RunViaStream(ctx, s, jobs, opt)
}

// runChunk evaluates one chunk (stream job indices [start, start+len(jobs))),
// dispatching to scheduler-picked children until one succeeds. Each child is
// tried at most once per chunk; a failing child is quarantined and the
// chunk resubmitted elsewhere. When every child has been tried — run or
// readmission probe — and failed, the chunk fails with a *ChunkError naming
// the job index range.
func (s *Shard) runChunk(ctx context.Context, start int, jobs []Job, workers int) ([]Row, error) {
	tried := make(map[int]bool, len(s.children))
	var errs []error
	chunkErr := func() error {
		joined := errors.Join(errs...)
		if joined == nil {
			// Every child was exhausted by failed readmission probes rather
			// than by running this chunk; say so instead of wrapping nil.
			joined = errors.New("every child is quarantined and failed its readmission probe")
		}
		return &ChunkError{First: start, Last: start + len(jobs), Err: joined}
	}
	for attempt := 0; ; attempt++ {
		idx := s.pick(ctx, tried, len(jobs))
		if idx < 0 {
			if err := ctx.Err(); err != nil {
				// The stream is being torn down; this chunk was aborted, not
				// rejected fleet-wide, so surface the cancellation rather
				// than a misleading all-children ChunkError.
				return nil, err
			}
			return nil, chunkErr()
		}
		if attempt > 0 {
			s.resubmits.Add(1)
		}
		child := s.children[idx].backend
		t0 := time.Now()
		rows, err := child.Run(ctx, jobs, BatchOptions{Workers: workers})
		s.complete(idx, len(jobs), time.Since(t0), err == nil)
		if err == nil {
			if s.opt.Warm {
				s.warmSiblings(ctx, idx, jobs, rows)
			}
			return rows, nil
		}
		if ctx.Err() != nil {
			// The child's failure is (or is indistinguishable from) the
			// cancellation: don't bench a possibly healthy child or inflate
			// its failure counters, and report the abort as what it is.
			return nil, ctx.Err()
		}
		errs = append(errs, fmt.Errorf("%s: %w", s.children[idx].name, err))
		s.quarantine(idx)
		tried[idx] = true
	}
}
