package schedule_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/schedule"
	"repro/internal/tree"
)

func batchInstances(t *testing.T) []schedule.Instance {
	t.Helper()
	var out []schedule.Instance
	for seed := int64(0); seed < 6; seed++ {
		out = append(out, schedule.Instance{
			Name: "rand-" + string(rune('a'+seed)),
			Tree: randomTree(t, 40+seed, 6+int(seed)*3),
		})
	}
	return out
}

// A parallel batch must produce, row for row, the same values as running
// every job sequentially (timing aside).
func TestRunBatchMatchesSequential(t *testing.T) {
	insts := batchInstances(t)
	jobs := schedule.MinMemoryGrid(insts, []string{"postorder", "minmem", "liu"})
	if len(jobs) != len(insts)*3 {
		t.Fatalf("grid has %d jobs, want %d", len(jobs), len(insts)*3)
	}
	seq, err := schedule.RunBatch(context.Background(), jobs, schedule.BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	par, err := schedule.RunBatch(context.Background(), jobs, schedule.BatchOptions{
		Workers: 8,
		OnRow:   func(schedule.Row) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(jobs) {
		t.Fatalf("OnRow saw %d rows, want %d", streamed, len(jobs))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		a.Seconds, b.Seconds = 0, 0
		if a != b {
			t.Fatalf("row %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

// A MinIO grid replays the orderBy traversal under every policy; at the
// in-core optimum budget the I/O must be zero, at the floor it must match
// a direct simulator run.
func TestMinIOGrid(t *testing.T) {
	insts := batchInstances(t)
	memories := func(tr *tree.Tree, out schedule.Outcome) ([]int64, error) {
		if out.Memory < tr.MaxMemReq() {
			t.Fatalf("memories got outcome %d below floor %d", out.Memory, tr.MaxMemReq())
		}
		return []int64{tr.MaxMemReq()}, nil
	}
	policies := schedule.EvictionPolicyNames()
	jobs, err := schedule.MinIOGrid(context.Background(), insts, "minmem", policies, memories, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(insts)*len(policies) {
		t.Fatalf("grid has %d jobs, want %d", len(jobs), len(insts)*len(policies))
	}
	rows, err := schedule.RunBatch(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		job := jobs[i]
		ev, err := schedule.EvictorByName(row.Algorithm, 0)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := schedule.Simulate(job.Tree, job.Order, schedule.Config{Memory: job.Memory, Evict: ev})
		if err != nil {
			t.Fatal(err)
		}
		if row.IO != sim.IO || row.Writes != len(sim.Writes) {
			t.Fatalf("row %d (%s/%s): IO %d/%d writes != direct %d/%d",
				i, row.Instance, row.Algorithm, row.IO, row.Writes, sim.IO, len(sim.Writes))
		}
		if row.Kind != "minio" || row.Budget != job.Memory {
			t.Fatalf("row %d mislabelled: %+v", i, row)
		}
	}
}

func TestMinIOGridRejects(t *testing.T) {
	insts := batchInstances(t)[:1]
	memories := func(tr *tree.Tree, _ schedule.Outcome) ([]int64, error) { return []int64{tr.TotalF()}, nil }
	if _, err := schedule.MinIOGrid(context.Background(), insts, "nope", []string{"lsnf"}, memories, 0); err == nil {
		t.Fatal("unknown orderBy accepted")
	}
	if _, err := schedule.MinIOGrid(context.Background(), insts, "lsnf", []string{"lsnf"}, memories, 0); err == nil {
		t.Fatal("MinIO orderBy accepted")
	}
	// enumerate proves a value but exhibits no traversal to replay.
	if _, err := schedule.MinIOGrid(context.Background(), insts, "enumerate", []string{"lsnf"}, memories, 0); err == nil {
		t.Fatal("orderless orderBy accepted")
	}
}

func TestRunBatchPropagatesErrors(t *testing.T) {
	insts := batchInstances(t)
	jobs := schedule.MinMemoryGrid(insts, []string{"minmem", "no-such-solver"})
	if _, err := schedule.RunBatch(context.Background(), jobs, schedule.BatchOptions{}); err == nil {
		t.Fatal("unknown algorithm in a job accepted")
	}
}

func TestWriteRows(t *testing.T) {
	rows := []schedule.Row{
		{Instance: "a", Algorithm: "minmem", Kind: "minmemory", Memory: 42, Seconds: 0.25},
		{Instance: "b", Algorithm: "lsnf", Kind: "minio", Budget: 10, Memory: 9, IO: 7, Writes: 2, Seconds: 0.5},
	}
	var csvBuf bytes.Buffer
	if err := schedule.WriteRowsCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), csvBuf.String())
	}
	if lines[0] != "instance,algorithm,kind,budget,memory,io,writes,seconds" {
		t.Fatalf("bad CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "b,lsnf,minio,10,9,7,2,") {
		t.Fatalf("bad CSV row %q", lines[2])
	}
	var jsonBuf bytes.Buffer
	if err := schedule.WriteRowsJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	jl := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	if len(jl) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(jl))
	}
	if !strings.Contains(jl[1], `"algorithm":"lsnf"`) || !strings.Contains(jl[1], `"io":7`) {
		t.Fatalf("bad JSONL row %q", jl[1])
	}
}
