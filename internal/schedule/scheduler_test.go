package schedule_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/schedule"
)

// slowBackend delegates to inner after a fixed delay per Run call — the
// stand-in for an overloaded or distant server.
type slowBackend struct {
	inner schedule.Backend
	delay time.Duration
	name  string
}

func (b *slowBackend) Capabilities() schedule.Capabilities {
	return schedule.Capabilities{Name: b.name}
}

func (b *slowBackend) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	time.Sleep(b.delay)
	return b.inner.Run(ctx, jobs, opt)
}

func (b *slowBackend) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, b.Run, src, sink, opt)
}

// The adaptive policy converges to weighted dispatch: a child an order of
// magnitude slower than its sibling ends up with a small fraction of the
// chunks, while the merged rows stay bit-identical to a Local run.
func TestAdaptiveDispatchWeightsByThroughput(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast := &slowBackend{inner: schedule.Local{}, delay: time.Millisecond, name: "fast"}
	slow := &slowBackend{inner: schedule.Local{}, delay: 25 * time.Millisecond, name: "slow"}
	shard, err := schedule.NewShard(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 1}); err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, sank.Rows(), "weighted shard vs local")
	stats := shard.ChildStats()
	byName := map[string]schedule.ShardChildStats{}
	for _, cs := range stats {
		byName[cs.Name] = cs
	}
	f, s := byName["fast"], byName["slow"]
	if f.Chunks+s.Chunks != int64(len(jobs)) {
		t.Fatalf("chunk accounting: fast %d + slow %d != %d", f.Chunks, s.Chunks, len(jobs))
	}
	// The slow child is explored (so it gets measured) but must not keep an
	// equal share: the fast child should take the clear majority.
	if f.Chunks <= 2*s.Chunks {
		t.Fatalf("adaptive dispatch did not weight by throughput: fast %d chunks, slow %d", f.Chunks, s.Chunks)
	}
	if f.RowsPerSec == 0 {
		t.Fatal("fast child has no observed throughput after the stream")
	}
}

// flappingBackend is a flakyBackend with a health probe: it reports
// unhealthy until its failure budget is spent, then healthy — a server that
// crashes and comes back.
type flappingBackend struct {
	flakyBackend
}

func (b *flappingBackend) Health(ctx context.Context) error {
	if b.failN.Load() > 0 {
		return errors.New("flapping: still down")
	}
	return nil
}

// A flapping child is quarantined on failure and readmitted once its
// backoff expires and its health probe passes; after readmission it serves
// chunks again and the merged rows stay bit-identical to a Local run.
func TestFlappingChildQuarantinedThenReadmitted(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flappy := &flappingBackend{flakyBackend{inner: schedule.Local{}}}
	flappy.failN.Store(1)
	steady := &slowBackend{inner: schedule.Local{}, delay: 5 * time.Millisecond, name: "steady"}
	shard, err := schedule.NewShardWith(schedule.ShardOptions{QuarantineBase: time.Millisecond}, flappy, steady)
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 2}); err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, sank.Rows(), "flapping shard vs local")
	c := shard.Counters()
	if c.Quarantines < 1 || c.Readmissions < 1 {
		t.Fatalf("flapping child lifecycle not recorded: counters %+v", c)
	}
	var flappyStats schedule.ShardChildStats
	for _, cs := range shard.ChildStats() {
		if cs.Name == "flaky(local)" {
			flappyStats = cs
		}
	}
	if flappyStats.Chunks < 1 {
		t.Fatalf("readmitted child served no chunks: %+v", flappyStats)
	}
	if flappyStats.Quarantines < 1 || flappyStats.Readmissions < 1 {
		t.Fatalf("per-child lifecycle counters not recorded: %+v", flappyStats)
	}
}

// A child whose health probe keeps failing stays quarantined — probes are
// not readmissions — and the stream completes on the remaining children.
func TestDeadChildStaysQuarantined(t *testing.T) {
	jobs := gridJobs(t)
	dead := &flappingBackend{flakyBackend{inner: schedule.Local{}}}
	dead.failN.Store(1 << 30) // never recovers, probe always fails
	steady := &slowBackend{inner: schedule.Local{}, delay: time.Millisecond, name: "steady"}
	shard, err := schedule.NewShardWith(schedule.ShardOptions{QuarantineBase: time.Microsecond}, dead, steady)
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	if len(sank.Rows()) != len(jobs) {
		t.Fatalf("streamed %d rows, want %d", len(sank.Rows()), len(jobs))
	}
	c := shard.Counters()
	if c.Quarantines < 1 {
		t.Fatalf("dead child never quarantined: %+v", c)
	}
	if c.Readmissions != 0 {
		t.Fatalf("dead child readmitted despite failing probes: %+v", c)
	}
}

// With Warm set, every chunk computed on one Cached child is forwarded to
// the sibling's store: after one sharded stream, both stores hold every
// row, so a re-run anywhere in the fleet is fully warm.
func TestShardWarmsSiblingCaches(t *testing.T) {
	jobs := gridJobs(t)
	store1, store2 := schedule.NewMemStore(), schedule.NewMemStore()
	c1 := schedule.NewCached(schedule.Local{}, store1)
	c2 := schedule.NewCached(schedule.Local{}, store2)
	shard, err := schedule.NewShardWith(schedule.ShardOptions{Warm: true}, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	if len(sank.Rows()) != len(jobs) {
		t.Fatalf("streamed %d rows, want %d", len(sank.Rows()), len(jobs))
	}
	if store1.Len() != len(jobs) || store2.Len() != len(jobs) {
		t.Fatalf("warming left stores at %d and %d rows, want %d each", store1.Len(), store2.Len(), len(jobs))
	}
	c := shard.Counters()
	if c.WarmedRows != int64(len(jobs)) {
		t.Fatalf("warmed %d rows, want %d", c.WarmedRows, len(jobs))
	}
	if c.WarmErrors != 0 {
		t.Fatalf("warm errors: %+v", c)
	}

	// A re-run through either child alone is now fully warm: zero misses,
	// and no job ever reaches the inner backend.
	rerun := schedule.NewCached(failIfRun{t}, store2)
	if _, err := rerun.Run(context.Background(), jobs, schedule.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := rerun.Counters(); misses != 0 || hits != int64(len(jobs)) {
		t.Fatalf("re-run after warming: %d hits, %d misses", hits, misses)
	}
}

// failIfRun fails the test if any job reaches it — the warm re-run must be
// answered entirely from the store.
type failIfRun struct{ t *testing.T }

func (f failIfRun) Capabilities() schedule.Capabilities {
	return schedule.Capabilities{Name: "fail-if-run"}
}

func (f failIfRun) Run(ctx context.Context, jobs []schedule.Job, opt schedule.BatchOptions) ([]schedule.Row, error) {
	f.t.Errorf("warm re-run reached the inner backend with %d jobs", len(jobs))
	return schedule.Local{}.Run(ctx, jobs, opt)
}

func (f failIfRun) Stream(ctx context.Context, src schedule.JobSource, sink schedule.RowSink, opt schedule.StreamOptions) error {
	return schedule.StreamChunked(ctx, f.Run, src, sink, opt)
}
