package schedule_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/schedule"
	"repro/internal/tree"
)

// refBestKEvictor is the seed Best-K victim selection, preserved verbatim:
// full 2^K subset enumeration in ascending mask order with
// strict-improvement updates. The branch-and-bound rewrite must stay
// bit-identical to it.
type refBestKEvictor struct{ window int }

func (r refBestKEvictor) Name() string { return "Best K Comb. (enumeration)" }

func (r refBestKEvictor) SelectVictims(t *tree.Tree, s []int, need int64) ([]int, error) {
	var victims []int
	take := func(idx int) {
		victims = append(victims, s[idx])
		need -= t.F(s[idx])
		s = append(s[:idx], s[idx+1:]...)
	}
	popcount := func(m int) int {
		c := 0
		for m != 0 {
			m &= m - 1
			c++
		}
		return c
	}
	for need > 0 {
		if len(s) == 0 {
			return nil, schedule.ErrNoSpace
		}
		k := len(s)
		if k > r.window {
			k = r.window
		}
		bestMask, bestTotal := 0, int64(0)
		var bestDiff int64 = 1 << 62
		for mask := 1; mask < 1<<k; mask++ {
			var total int64
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					total += t.F(s[i])
				}
			}
			d := total - need
			if d < 0 {
				d = -d
			}
			better := d < bestDiff
			if d == bestDiff {
				cover, bestCover := total >= need, bestTotal >= need
				if cover != bestCover {
					better = cover
				} else if popcount(mask) < popcount(bestMask) {
					better = true
				}
			}
			if better {
				bestMask, bestTotal, bestDiff = mask, total, d
			}
		}
		for i := k - 1; i >= 0; i-- {
			if bestMask&(1<<i) != 0 {
				take(i)
			}
		}
	}
	return victims, nil
}

// starTree builds a root with one child per size, so SelectVictims can be
// driven directly: S is the list of child node ids.
func starTree(tb testing.TB, sizes []int64) (*tree.Tree, []int) {
	tb.Helper()
	parent := make([]int, len(sizes)+1)
	f := make([]int64, len(sizes)+1)
	n := make([]int64, len(sizes)+1)
	parent[0] = tree.NoParent
	s := make([]int, len(sizes))
	for i, size := range sizes {
		parent[i+1] = 0
		f[i+1] = size
		s[i] = i + 1
	}
	tr, err := tree.New(parent, f, n)
	if err != nil {
		tb.Fatal(err)
	}
	return tr, s
}

// mustBestK builds a Best-K evictor or fails the test.
func mustBestK(tb testing.TB, window int) schedule.Evictor {
	tb.Helper()
	ev, err := schedule.BestK(window)
	if err != nil {
		tb.Fatal(err)
	}
	return ev
}

// The branch-and-bound Best-K must return the exact victim sequence of the
// seed enumeration on randomized windows — ≥ 100 cases across window
// sizes, size ranges and requirements, including windows wider than S.
func TestBestKMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := 0
	for _, window := range []int{1, 2, 3, 5, 8, 12, schedule.MaxBestKWindow} {
		for trial := 0; trial < 30; trial++ {
			nfiles := 1 + rng.Intn(25)
			sizes := make([]int64, nfiles)
			var total int64
			for i := range sizes {
				sizes[i] = 1 + rng.Int63n(40)
				total += sizes[i]
			}
			need := 1 + rng.Int63n(total)
			tr, s := starTree(t, sizes)
			got, err := mustBestK(t, window).SelectVictims(tr, append([]int(nil), s...), need)
			if err != nil {
				t.Fatalf("window %d trial %d: %v", window, trial, err)
			}
			want, err := refBestKEvictor{window}.SelectVictims(tr, append([]int(nil), s...), need)
			if err != nil {
				t.Fatalf("window %d trial %d: reference: %v", window, trial, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("window %d sizes %v need %d: victims %v != enumeration %v",
					window, sizes, need, got, want)
			}
			cases++
		}
	}
	if cases < 100 {
		t.Fatalf("only %d differential cases, want ≥ 100", cases)
	}
}

// Full eviction replays through the simulator must also be bit-identical:
// same I/O, same write schedule, on randomized trees and budgets.
func TestBestKSimulationMatchesEnumeration(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		tr := randomTree(t, seed, 10+int(seed*3%40))
		order := tr.TopDown()
		lo := tr.MaxMemReq()
		sim, err := schedule.Simulate(tr, order, schedule.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int64{lo, (lo + sim.Peak) / 2} {
			for _, window := range []int{1, 3, 5, 9} {
				got, err := schedule.Simulate(tr, order, schedule.Config{Memory: m, Evict: mustBestK(t, window)})
				if err != nil {
					t.Fatalf("seed %d M=%d K=%d: %v", seed, m, window, err)
				}
				want, err := schedule.Simulate(tr, order, schedule.Config{Memory: m, Evict: refBestKEvictor{window}})
				if err != nil {
					t.Fatalf("seed %d M=%d K=%d: reference: %v", seed, m, window, err)
				}
				if got.IO != want.IO || !reflect.DeepEqual(got.Writes, want.Writes) {
					t.Fatalf("seed %d M=%d K=%d: simulation diverges from enumeration", seed, m, window)
				}
			}
		}
	}
}

// FuzzBestKMatchesEnumeration drives the branch-and-bound subset search
// against the seed enumeration on fuzzed windows and requirements.
func FuzzBestKMatchesEnumeration(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(10), int64(17))
	f.Add(int64(9), uint8(12), uint8(30), int64(100))
	f.Fuzz(func(t *testing.T, seed int64, window, nfiles uint8, need int64) {
		w := 1 + int(window)%schedule.MaxBestKWindow
		nf := 1 + int(nfiles)%30
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int64, nf)
		var total int64
		for i := range sizes {
			sizes[i] = 1 + rng.Int63n(50)
			total += sizes[i]
		}
		if need <= 0 {
			need = 1 - need
		}
		need = 1 + need%total
		tr, s := starTree(t, sizes)
		got, gotErr := mustBestK(t, w).SelectVictims(tr, append([]int(nil), s...), need)
		want, wantErr := refBestKEvictor{w}.SelectVictims(tr, append([]int(nil), s...), need)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sizes %v need %d window %d: victims %v != enumeration %v", sizes, need, w, got, want)
		}
	})
}

// ---------------------------------------------------------------------------
// Evictor edge cases
// ---------------------------------------------------------------------------

// allPolicies returns one evictor per registered policy name.
func allPolicies(t *testing.T) map[string]schedule.Evictor {
	t.Helper()
	out := map[string]schedule.Evictor{}
	for _, name := range schedule.EvictionPolicyNames() {
		ev, err := schedule.EvictorByName(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = ev
	}
	return out
}

// Every policy returns ErrNoSpace when S cannot cover the requirement —
// directly and wrapped through the simulator.
func TestEveryPolicyErrNoSpace(t *testing.T) {
	tr, s := starTree(t, []int64{3, 2, 1})
	for name, ev := range allPolicies(t) {
		_, err := ev.SelectVictims(tr, append([]int(nil), s...), 100)
		if !errors.Is(err, schedule.ErrNoSpace) {
			t.Errorf("%s: error %v, want ErrNoSpace", name, err)
		}
		// And with an empty S.
		if _, err := ev.SelectVictims(tr, nil, 1); !errors.Is(err, schedule.ErrNoSpace) {
			t.Errorf("%s: empty S: error %v, want ErrNoSpace", name, err)
		}
	}
	// Through the simulator: a budget below the root child's MemReq cannot
	// be saved by any eviction.
	deep := tree.MustNew([]int{tree.NoParent, 0, 1}, []int64{1, 8, 9}, []int64{1, 1, 1})
	for name, ev := range allPolicies(t) {
		_, err := schedule.Simulate(deep, []int{0, 1, 2}, schedule.Config{Memory: deep.MaxMemReq() - 1, Evict: ev})
		if !errors.Is(err, schedule.ErrNoSpace) {
			t.Errorf("%s: simulate error %v, want ErrNoSpace in chain", name, err)
		}
	}
}

// Zero-size files never enter S: the simulator's snapshot excludes them,
// so no policy is ever offered one and no write schedule contains one.
func TestZeroSizeFilesExcludedFromS(t *testing.T) {
	// The minio policy-scenario shape: root children with sizes (zeros
	// interleaved) plus a heavy X→Y branch scheduled right after the root,
	// so X's execution forces an eviction while every root file is
	// resident.
	files := []int64{0, 5, 0, 4, 3}
	var sum int64
	parent := []int{tree.NoParent}
	f := []int64{0}
	n := []int64{0}
	for _, size := range files {
		parent = append(parent, 0)
		f = append(f, size)
		n = append(n, 0)
		sum += size
	}
	x := len(parent)
	parent, f, n = append(parent, 0), append(f, 1), append(n, 0)
	y := len(parent)
	parent, f, n = append(parent, x), append(f, 10), append(n, 0)
	tr := tree.MustNew(parent, f, n)
	const need = 5
	m := sum + 1 + 10 - need
	order := []int{0, x, y}
	for k := len(files); k >= 1; k-- {
		order = append(order, k)
	}
	sawS := false
	for name, ev := range allPolicies(t) {
		probe := probeEvictor{inner: ev, onS: func(s []int) {
			sawS = true
			for _, v := range s {
				if tr.F(v) == 0 {
					t.Errorf("%s: zero-size file %d offered to the policy", name, v)
				}
			}
		}}
		sim, err := schedule.Simulate(tr, order, schedule.Config{Memory: m, Evict: probe})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sim.Writes) == 0 {
			t.Fatalf("%s: scenario did not evict", name)
		}
		for _, w := range sim.Writes {
			if w.Size == 0 {
				t.Errorf("%s: zero-size write %+v", name, w)
			}
		}
	}
	if !sawS {
		t.Fatal("scenario never triggered an eviction; S was never observed")
	}
}

// probeEvictor observes every S snapshot before delegating.
type probeEvictor struct {
	inner schedule.Evictor
	onS   func([]int)
}

func (p probeEvictor) Name() string { return p.inner.Name() }

func (p probeEvictor) SelectVictims(t *tree.Tree, s []int, need int64) ([]int, error) {
	p.onS(s)
	return p.inner.SelectVictims(t, s, need)
}

// A Best-K window wider than S degrades gracefully to the full subset
// search over S and picks the same victims as an exactly-fitting window.
func TestBestKWindowWiderThanS(t *testing.T) {
	sizes := []int64{7, 3, 5, 2}
	for _, need := range []int64{1, 6, 8, 11, 17} {
		tr, s := starTree(t, sizes)
		wide, err := mustBestK(t, schedule.MaxBestKWindow).SelectVictims(tr, append([]int(nil), s...), need)
		if err != nil {
			t.Fatal(err)
		}
		tight, err := mustBestK(t, len(sizes)).SelectVictims(tr, append([]int(nil), s...), need)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wide, tight) {
			t.Fatalf("need %d: wide-window victims %v != exact-window %v", need, wide, tight)
		}
	}
}

// ---------------------------------------------------------------------------
// Benchmark: branch-and-bound versus the seed enumeration
// ---------------------------------------------------------------------------

// BenchmarkBestKEvict replays a large eviction-heavy traversal under the
// Best-K policy: BranchAndBound is the production branch-and-bound search,
// Enumeration the seed 2^K subset scan it replaced. Both must produce the
// same schedule (pinned by TestBestKSimulationMatchesEnumeration); the
// benchmark tracks the search cost at the paper's window and at a wide
// window where pruning dominates.
func BenchmarkBestKEvict(b *testing.B) {
	rng := rand.New(rand.NewSource(2011))
	tr, err := tree.Random(rng, tree.RandomOptions{Nodes: 20_000, MaxF: 100, MaxN: 40, Attach: tree.AttachPreferential})
	if err != nil {
		b.Fatal(err)
	}
	order := tr.TopDown()
	sim, err := schedule.Simulate(tr, order, schedule.Config{})
	if err != nil {
		b.Fatal(err)
	}
	budget := tr.MaxMemReq() + (sim.Peak-tr.MaxMemReq())/2
	for _, window := range []int{schedule.BestKWindow, 15} {
		bb := mustBestK(b, window)
		en := refBestKEvictor{window}
		b.Run(fmt.Sprintf("BranchAndBound/K%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Simulate(tr, order, schedule.Config{Memory: budget, Evict: bb}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Enumeration/K%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Simulate(tr, order, schedule.Config{Memory: budget, Evict: en}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
