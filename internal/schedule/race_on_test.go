//go:build race

package schedule

// raceEnabled reports whether the race detector is instrumenting this test
// binary; its allocations would fail the allocation pins.
const raceEnabled = true
