package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// skipIfRace skips an allocation pin under the race detector, whose
// instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation pins are meaningless under the race detector")
	}
}

// allocTree builds a deterministic mid-size tree for the allocation pins.
func allocTree(tb testing.TB, nodes int) *tree.Tree {
	tb.Helper()
	t, err := tree.Random(rand.New(rand.NewSource(2011)), tree.RandomOptions{Nodes: nodes, MaxF: 1000, MaxN: 500})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

// A steady-state peak simulation costs zero allocations: the position
// buffer comes from the pooled arena and nothing else outlives the call.
func TestSimulatePeakAllocFree(t *testing.T) {
	skipIfRace(t)
	tr := allocTree(t, 2000)
	order := tr.TopDown()
	if _, err := Simulate(tr, order, Config{}); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Simulate(tr, order, Config{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("peak simulation costs %.1f allocs/op, want 0", allocs)
	}
}

// A steady-state bottom-up simulation is likewise allocation free.
func TestSimulateBottomUpAllocFree(t *testing.T) {
	skipIfRace(t)
	tr := allocTree(t, 2000)
	order := tree.ReverseOrder(tr.TopDown())
	if _, err := Simulate(tr, order, Config{Direction: BottomUp}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Simulate(tr, order, Config{Direction: BottomUp}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("bottom-up simulation costs %.1f allocs/op, want 0", allocs)
	}
}

// An evicting replay's only steady-state allocation is sealing the Writes
// log into its exact-size result slice: snapshots, victim lists and the
// resident set all come from the pooled arena.
func TestSimulateEvictAllocs(t *testing.T) {
	skipIfRace(t)
	tr := allocTree(t, 2000)
	order := tr.TopDown()
	ev, err := BestK(BestKWindow)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Memory: tr.MaxMemReq(), Evict: ev}
	warm, err := Simulate(tr, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Writes) == 0 {
		t.Fatal("budget did not force any evictions; the pin would be vacuous")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Simulate(tr, order, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("evicting simulation costs %.1f allocs/op, want ≤ 1 (the Writes seal)", allocs)
	}
}

// The Best-K victim selection itself is allocation free when appending into
// a recycled buffer, like the hillvalley kernel's scratch.
func TestSelectVictimsAppendAllocFree(t *testing.T) {
	skipIfRace(t)
	tr := allocTree(t, 2000)
	ev, err := BestK(BestKWindow)
	if err != nil {
		t.Fatal(err)
	}
	gp := ev.(greedyPolicy)
	// Candidate set: every positive-size non-root file, latest first by
	// construction order; the exact ordering is irrelevant to the pin.
	var base []int
	for i := 0; i < tr.Len() && len(base) < 64; i++ {
		if i != tr.Root() && tr.F(i) > 0 {
			base = append(base, i)
		}
	}
	var need int64
	for _, v := range base[:len(base)/2] {
		need += tr.F(v)
	}
	s := make([]int, len(base))
	dst := make([]int, 0, len(base))
	run := func() {
		copy(s, base)
		victims, err := gp.selectVictimsAppend(tr, s[:len(base)], need, dst[:0])
		if err != nil || len(victims) == 0 {
			t.Fatalf("selection failed: %v (%d victims)", err, len(victims))
		}
	}
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("victim selection costs %.1f allocs/op, want 0", allocs)
	}
}

// The pooled arena must not leak state between calls: an invalid order
// still yields the canonical validation errors after valid runs warmed the
// pool, and results are bit-identical run to run.
func TestSimulateScratchIsolation(t *testing.T) {
	tr := allocTree(t, 200)
	order := tr.TopDown()
	ev, err := BestK(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Memory: tr.MaxMemReq(), Evict: ev, Profile: true}
	first, err := Simulate(tr, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the first result's slices must not bleed into a rerun.
	for i := range first.Writes {
		first.Writes[i].Node = -1
	}
	for i := range first.Profile {
		first.Profile[i].Hill = -1
	}
	second, err := Simulate(tr, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Writes) == 0 || second.Writes[0].Node == -1 {
		t.Fatal("rerun shares Writes memory with the previous result")
	}
	if len(second.Profile) == 0 || second.Profile[0].Hill == -1 {
		t.Fatal("rerun shares Profile memory with the previous result")
	}
	bad := append([]int{}, order...)
	bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0]
	if _, err := Simulate(tr, bad, Config{}); err == nil {
		t.Fatal("invalid order accepted after warm runs")
	}
	dup := append([]int{}, order...)
	dup[1] = dup[0]
	if _, err := Simulate(tr, dup, Config{}); err == nil {
		t.Fatal("duplicate order accepted after warm runs")
	}
	if _, err := Simulate(tr, order[:len(order)-1], Config{}); err == nil {
		t.Fatal("short order accepted after warm runs")
	}
}
