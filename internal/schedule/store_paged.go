package schedule

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/store"
)

// The paged row store is the FormatPaged sibling of JSONLStore and
// BinaryStore: the same key→row entries, but held out of core in a paged
// block file with a B-tree index (internal/store) instead of being loaded
// into memory on open. Each record's value is
//
//	uvarint recency stamp, AppendRow(row)
//
// so a bounded store can reconstruct least-recently-used order across
// reopens while keeping only an O(MaxEntries) index of keys — never the
// rows — resident. Eviction deletes the record in place (the engine's free
// list recycles its pages); nothing ever rewrites the whole file.

// PagedStore is a Store persisted in a paged block file, optionally bounded
// (StoreOptions). Unlike its siblings it does not hold rows in memory: Get
// reads through the engine's bounded page cache, so the resident footprint
// stays constant as the file grows. Construct with OpenPagedStoreWith.
type PagedStore struct {
	mu      sync.Mutex
	db      *store.DB
	dec     rowDecoder
	scratch []byte
	closed  bool

	// Bounded mode only: recency index of keys (front = most recently
	// used). Rows live on disk; this costs O(MaxEntries) keys, not rows.
	max     int
	order   *list.List
	byKey   map[string]*list.Element
	evicted int64

	// nextSeq is the recency clock: every Put (and every bounded Get hit)
	// stamps its record with the next value. Mirrored into the engine's
	// user-meta slot so the clock survives reopens without a scan.
	nextSeq uint64
}

type pagedEntry struct {
	key string
	seq uint64
}

// OpenPagedStore opens (creating if absent) the unbounded paged store at
// path; see OpenPagedStoreWith.
func OpenPagedStore(path string) (*PagedStore, error) {
	return OpenPagedStoreWith(path, StoreOptions{})
}

// OpenPagedStoreWith opens (creating if absent) the paged store at path.
// Rows are not loaded: an unbounded open is O(1) in the entry count. A
// bounded open scans keys and stamps (not rows) to rebuild recency order,
// and trims an over-budget file down to the newest MaxEntries rows —
// load-time trimming is compaction, not eviction, so the counter starts at
// zero. Like the binary store, a file in another format is an error rather
// than healable damage, so a -cache-format mix-up cannot erase a good
// cache. Crash damage is the engine's concern: the store rolls back to the
// last durable commit on open, so torn writes cost recent entries, never
// the file.
func OpenPagedStoreWith(path string, opt StoreOptions) (*PagedStore, error) {
	db, err := store.Open(path, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("schedule: open paged row store: %w", err)
	}
	return newPagedStore(db, opt)
}

// OpenPagedStoreBacking opens a paged store over an arbitrary engine
// backing — the hook the crash tests use to tear the write history at
// exact byte boundaries via store.MemBacking.
func OpenPagedStoreBacking(b store.Backing, opt StoreOptions) (*PagedStore, error) {
	db, err := store.OpenBacking(b, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("schedule: open paged row store: %w", err)
	}
	return newPagedStore(db, opt)
}

func newPagedStore(db *store.DB, opt StoreOptions) (*PagedStore, error) {
	s := &PagedStore{
		db:      db,
		dec:     rowDecoder{intern: map[string]string{}},
		max:     opt.MaxEntries,
		nextSeq: db.UserMeta(),
	}
	if s.max <= 0 {
		return s, nil
	}
	s.order = list.New()
	s.byKey = map[string]*list.Element{}
	entries := make([]pagedEntry, 0, db.Len())
	scanErr := db.Scan(func(k, v []byte) error {
		seq, n := binary.Uvarint(v)
		if n <= 0 {
			return fmt.Errorf("schedule: paged row store entry %q has no recency stamp", k)
		}
		entries = append(entries, pagedEntry{key: string(k), seq: seq})
		return nil
	})
	if scanErr != nil {
		db.Close()
		return nil, scanErr
	}
	// Oldest first; ties (possible after a crash rolled the clock back)
	// break by key so reloads are deterministic.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].seq != entries[j].seq {
			return entries[i].seq < entries[j].seq
		}
		return entries[i].key < entries[j].key
	})
	for _, e := range entries {
		if e.seq >= s.nextSeq {
			s.nextSeq = e.seq + 1
		}
	}
	// Trim an over-budget file to the newest rows, in place.
	for len(entries) > s.max {
		if _, err := db.Delete([]byte(entries[0].key)); err != nil {
			db.Close()
			return nil, fmt.Errorf("schedule: trim paged row store: %w", err)
		}
		entries = entries[1:]
	}
	for _, e := range entries {
		s.byKey[e.key] = s.order.PushFront(&pagedEntry{key: e.key, seq: e.seq})
	}
	db.SetUserMeta(s.nextSeq)
	return s, nil
}

// appendStamped encodes a record value: recency stamp, then the row.
func (s *PagedStore) appendStamped(dst []byte, seq uint64, row Row) []byte {
	dst = binary.AppendUvarint(dst, seq)
	return AppendRow(dst, row)
}

// Get implements Store. A bounded hit counts as use: the entry moves to the
// recency front and its on-disk stamp is rewritten in place, so the LRU
// order survives reopens without any close-time rewrite.
func (s *PagedStore) Get(key string) (Row, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Row{}, false
	}
	val, ok, err := s.db.Get([]byte(key))
	if err != nil || !ok {
		return Row{}, false
	}
	_, n := binary.Uvarint(val)
	if n <= 0 {
		return Row{}, false
	}
	row, rest, err := s.dec.decode(val[n:])
	if err != nil || len(rest) != 0 {
		return Row{}, false
	}
	if e, tracked := s.byKey[key]; tracked {
		ent := e.Value.(*pagedEntry)
		ent.seq = s.nextSeq
		s.nextSeq++
		s.order.MoveToFront(e)
		s.scratch = s.appendStamped(s.scratch[:0], ent.seq, row)
		if err := s.db.Put([]byte(key), s.scratch); err != nil {
			return Row{}, false
		}
		s.db.SetUserMeta(s.nextSeq)
	}
	return row, true
}

// Put implements Store: the entry is written straight to the paged file —
// no resident copy — and, when bounded, the least-recently-used entry
// beyond MaxEntries is deleted in place, its pages recycled through the
// engine's free list.
func (s *PagedStore) Put(key string, row Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("schedule: put on closed paged row store")
	}
	seq := s.nextSeq
	s.nextSeq++
	s.scratch = s.appendStamped(s.scratch[:0], seq, row)
	if err := s.db.Put([]byte(key), s.scratch); err != nil {
		return fmt.Errorf("schedule: append row store: %w", err)
	}
	s.db.SetUserMeta(s.nextSeq)
	if s.max <= 0 {
		return nil
	}
	if e, ok := s.byKey[key]; ok {
		ent := e.Value.(*pagedEntry)
		ent.seq = seq
		s.order.MoveToFront(e)
		return nil
	}
	s.byKey[key] = s.order.PushFront(&pagedEntry{key: key, seq: seq})
	for len(s.byKey) > s.max {
		oldest := s.order.Back()
		ent := oldest.Value.(*pagedEntry)
		s.order.Remove(oldest)
		delete(s.byKey, ent.key)
		if _, err := s.db.Delete([]byte(ent.key)); err != nil {
			return fmt.Errorf("schedule: evict from row store: %w", err)
		}
		s.evicted++
	}
	return nil
}

// Len returns the number of stored rows (resident on disk, not in memory).
func (s *PagedStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.db.Len())
}

// Evictions returns the number of rows evicted by the MaxEntries bound
// since the store was opened.
func (s *PagedStore) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Close commits outstanding writes and releases the file. No compaction
// pass is needed: deletes already reclaimed their pages in place and
// recency stamps are already durable. Closing twice is a no-op.
func (s *PagedStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.db.Close()
}

// StoreStats exposes the underlying engine's counters for observability
// and tests.
func (s *PagedStore) StoreStats() store.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Stats()
}
