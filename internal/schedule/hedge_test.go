package schedule_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/schedule"
)

// exportNoTime renders rows the way cmd/experiments exports them, with the
// wall-clock column zeroed so two runs of the same grid are byte-comparable.
func exportNoTime(t *testing.T, rows []schedule.Row) []byte {
	t.Helper()
	cp := append([]schedule.Row(nil), rows...)
	for i := range cp {
		cp[i].Seconds = 0
	}
	var buf bytes.Buffer
	if err := schedule.WriteRowsJSON(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The pinned differential: one child turns an order of magnitude slower
// mid-grid. A hedged shard must (a) export byte-identical rows to a Local
// run, (b) record at least one hedge win, (c) cancel the straggling
// attempt rather than abandon it, and (d) emit exactly one row per job —
// the losing arm's rows never reach the sink.
func TestHedgedShardBeatsStraggler(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := exportNoTime(t, want)

	// The straggler answers its first call at full speed, then stalls every
	// later chunk far past the hedge threshold. Round-robin dispatch keeps
	// feeding it regardless — the worst case for a straggler, and the
	// deterministic one: the adaptive policy would instead starve it of
	// chunks after the first throughput measurement.
	slow := schedule.NewFaultBackend(schedule.Local{})
	slow.SlowAfter(1, 400*time.Millisecond)
	fast := schedule.NewFaultBackend(schedule.Local{})
	shard, err := schedule.NewShardWith(schedule.ShardOptions{
		Policy:         schedule.PolicyRoundRobin,
		HedgeAfter:     20 * time.Millisecond,
		QuarantineBase: time.Millisecond,
	}, slow, fast)
	if err != nil {
		t.Fatal(err)
	}

	var sank schedule.Collector
	if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
		schedule.StreamOptions{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	sameRowsNoTime(t, want, sank.Rows(), "hedged shard vs local")
	if got := exportNoTime(t, sank.Rows()); !bytes.Equal(got, wantJSON) {
		t.Fatal("hedged shard export is not byte-identical to the local export")
	}
	c := shard.Counters()
	if c.HedgeWins < 1 {
		t.Fatalf("straggler was never beaten: counters %+v", c)
	}
	if c.Hedges < c.HedgeWins {
		t.Fatalf("more wins than hedges: counters %+v", c)
	}
	// A stalled-then-cancelled attempt is a hedge loss, not a failure:
	// nothing here should have tripped the resubmission/quarantine path.
	if c.Resubmissions != 0 || c.Quarantines != 0 {
		t.Fatalf("hedging leaked into the failure path: counters %+v", c)
	}
	if slow.Cancellations() < 1 {
		t.Fatalf("losing attempt was never cancelled: %d cancellations", slow.Cancellations())
	}
}

// Randomized schedules: every child runs a seeded per-call latency script
// and one child also fails deterministically scripted calls. Whatever
// interleaving of hedges, losses and resubmissions results, the export
// must stay byte-identical to Local with exactly one row per job.
func TestHedgedShardRandomLatencyMatchesLocal(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := exportNoTime(t, want)

	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7919*seed + 17))
			children := make([]schedule.Backend, 3)
			for i := range children {
				fb := schedule.NewFaultBackend(schedule.Local{})
				delays := make([]time.Duration, 64)
				for j := range delays {
					delays[j] = time.Duration(rng.Intn(15)) * time.Millisecond
				}
				fb.SetDelayScript(func(call int, _ []schedule.Job) time.Duration {
					return delays[call%len(delays)]
				})
				if i == 0 {
					// Only one child ever fails, so no chunk can exhaust
					// all three children and the stream never errors.
					fb.SetFailScript(func(call int) error {
						if call%5 == 3 {
							return errors.New("injected fault")
						}
						return nil
					})
				}
				children[i] = fb
			}
			shard, err := schedule.NewShardWith(schedule.ShardOptions{
				HedgeAfter:     5 * time.Millisecond,
				QuarantineBase: time.Millisecond,
			}, children...)
			if err != nil {
				t.Fatal(err)
			}
			var sank schedule.Collector
			if err := shard.Stream(context.Background(), schedule.SliceSource(jobs), &sank,
				schedule.StreamOptions{ChunkSize: 3}); err != nil {
				t.Fatal(err)
			}
			sameRowsNoTime(t, want, sank.Rows(), "randomized hedged shard vs local")
			if got := exportNoTime(t, sank.Rows()); !bytes.Equal(got, wantJSON) {
				t.Fatal("randomized hedged export is not byte-identical to the local export")
			}
		})
	}
}

// Concurrent hedged streams over one shard — the shape the race detector
// job leans on: four grids in flight at once, all hedging off the same
// straggler, each must come back complete and duplicate-free.
func TestHedgedShardConcurrentStreams(t *testing.T) {
	jobs := gridJobs(t)
	want, err := schedule.Local{}.Run(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow := schedule.NewFaultBackend(schedule.Local{})
	slow.SlowAfter(1, 60*time.Millisecond)
	shard, err := schedule.NewShardWith(schedule.ShardOptions{
		Policy:         schedule.PolicyRoundRobin,
		HedgeAfter:     10 * time.Millisecond,
		QuarantineBase: time.Millisecond,
	}, slow, schedule.NewFaultBackend(schedule.Local{}))
	if err != nil {
		t.Fatal(err)
	}

	const streams = 4
	sinks := make([]schedule.Collector, streams)
	errs := make([]error, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = shard.Stream(context.Background(), schedule.SliceSource(jobs), &sinks[i],
				schedule.StreamOptions{ChunkSize: 3})
		}(i)
	}
	wg.Wait()
	for i := 0; i < streams; i++ {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		sameRowsNoTime(t, want, sinks[i].Rows(), fmt.Sprintf("concurrent hedged stream %d vs local", i))
	}
}
