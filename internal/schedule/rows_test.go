package schedule_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/schedule"
)

// parseRowsCSV reads back what WriteRowsCSV produced.
func parseRowsCSV(t *testing.T, data []byte) []schedule.Row {
	t.Helper()
	recs, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || strings.Join(recs[0], ",") != "instance,algorithm,kind,budget,memory,io,writes,seconds" {
		t.Fatalf("bad CSV header %v", recs)
	}
	var rows []schedule.Row
	for _, rec := range recs[1:] {
		if len(rec) != 8 {
			t.Fatalf("CSV record has %d fields: %v", len(rec), rec)
		}
		num := func(s string) int64 {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				t.Fatalf("bad numeric field %q: %v", s, err)
			}
			return v
		}
		sec, err := strconv.ParseFloat(rec[7], 64)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, schedule.Row{
			Instance: rec[0], Algorithm: rec[1], Kind: rec[2],
			Budget: num(rec[3]), Memory: num(rec[4]), IO: num(rec[5]),
			Writes: int(num(rec[6])), Seconds: sec,
		})
	}
	return rows
}

// Rows must survive a CSV round-trip and a JSONL round-trip bit for bit,
// and both encodings must carry the same eight columns for every kind of
// row — in particular, a MinMemory row's zero budget is emitted, not
// omitted.
func TestRowsRoundTrip(t *testing.T) {
	insts := batchInstances(t)[:2]
	jobs := schedule.MinMemoryGrid(insts, []string{"postorder", "minmem"})
	for _, inst := range insts {
		jobs = append(jobs, schedule.Job{
			Instance: inst.Name, Tree: inst.Tree, Algorithm: "lsnf",
			Order: inst.Tree.TopDown(), Memory: inst.Tree.TotalF(),
		})
	}
	rows, err := schedule.RunBatch(context.Background(), jobs, schedule.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var csvBuf bytes.Buffer
	if err := schedule.WriteRowsCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	back := parseRowsCSV(t, csvBuf.Bytes())
	if len(back) != len(rows) {
		t.Fatalf("CSV round-trip returned %d rows, want %d", len(back), len(rows))
	}
	for i := range rows {
		if back[i] != rows[i] {
			t.Fatalf("CSV round-trip changed row %d: %+v vs %+v", i, back[i], rows[i])
		}
	}

	var jsonBuf bytes.Buffer
	if err := schedule.WriteRowsJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	if len(lines) != len(rows) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), len(rows))
	}
	for i, line := range lines {
		// CSV/JSON column parity: every row serializes all eight fields.
		for _, field := range []string{`"instance"`, `"algorithm"`, `"kind"`, `"budget"`, `"memory"`, `"io"`, `"writes"`, `"seconds"`} {
			if !strings.Contains(line, field) {
				t.Fatalf("JSONL line %d missing field %s: %s", i, field, line)
			}
		}
		var r schedule.Row
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		if r != rows[i] {
			t.Fatalf("JSONL round-trip changed row %d: %+v vs %+v", i, r, rows[i])
		}
	}
}
