// Package schedule is the evaluation engine of the reproduction: one
// registry of every algorithm the paper studies (MinMemory solvers, MinIO
// eviction policies and oracles), one event-driven traversal simulator they
// all share, and a pluggable batch/streaming evaluator that runs
// (instance × algorithm × budget) grids on local workers, through
// content-addressed caches, or across a fleet of evaluation servers.
//
// # Jobs, rows and the Backend contract
//
// A Job is one grid cell — a tree, an algorithm name, and the optional
// replay order / memory budget / window the algorithm's Request takes. A
// Row is the structured result, ready for CSV or JSON Lines export. A
// Backend evaluates jobs to rows under a strict determinism contract:
// given the same jobs, every backend produces bit-identical rows up to the
// Seconds column, whether the work ran in-process, from a cache, or on
// servers across the network. The differential tests pin this.
//
// Backend.Run is the materialized form (jobs slice in, rows slice out, in
// job order). Backend.Stream is the same contract over iterators: jobs are
// pulled from a JobSource as capacity frees up, rows are pushed to a
// RowSink in job order, one Push at a time.
//
// # Ordering guarantees
//
// Rows always arrive in job order — the order the source produced the
// jobs — regardless of completion order. Internally the streaming engine
// evaluates chunks concurrently and merges results with an
// order-preserving merge, so a streamed grid is bit-identical, in
// sequence, to a materialized Run over the same jobs. BatchOptions.OnRow
// fires in completion order (serialized); the returned slice and the sink
// are in job order.
//
// # Residency bounds
//
// The streaming engine cuts the source into chunks of
// StreamOptions.ChunkSize jobs and keeps at most StreamOptions.InFlight
// chunks alive at once — read from the source but not yet drained into the
// sink. Peak resident jobs and rows are therefore bounded by
// ChunkSize × InFlight regardless of stream length: a grid larger than
// memory flows through as long as the sink drains.
//
// # Retry, quarantine and readmission
//
// Shard fans chunks out across several child backends. Each chunk is
// dispatched by the ShardOptions.Policy scheduler — adaptive by default,
// weighting dispatch by each child's windowed observed throughput and
// in-flight load. A chunk whose child fails is resubmitted to another
// child; the failing child is quarantined with exponential backoff, probed
// (HealthChecker) once the backoff expires, and readmitted when the probe
// passes. Only when every child has failed the chunk — by running it or by
// failing its readmission probe — does the stream fail, with a *ChunkError
// naming the chunk's global job index range so the run can be resumed.
// Below the shard, service.Client retries transient submission failures
// (connection errors, 5xx, truncated streams) per its Retries field
// without re-announcing rows already delivered.
//
// # The simulator and the solver kernel
//
// Simulate is the single replay loop behind every evaluation: in-core
// peak measurement, feasibility checking, and the out-of-core eviction
// simulation under one of the six greedy policies. The policies are
// Evictor values constructed by LSNF, FirstFit, BestFit, FirstFill,
// BestFill and BestK; the Best-K subset search runs as branch-and-bound
// over the window (bit-identical to the full 2^K enumeration it
// replaced), and its window is validated once, at construction, with a
// typed *WindowRangeError. With Config.Profile set, Simulate also
// canonicalizes the replay's memory curve through the shared
// internal/hillvalley kernel into Simulation.Profile — on a Liu-optimal
// bottom-up traversal that decomposition equals Liu's certificate
// profile exactly.
//
// # Caching and warming
//
// Cached decorates any backend with a content-addressed row store keyed by
// CacheKey (tree digest + algorithm + budget + window + order digest);
// MemStore and JSONLStore implement the Store interface with optional LRU
// bounds. A Shard with ShardOptions.Warm forwards each computed chunk's
// keyed rows to every sibling implementing RowWarmer, so the fleet's
// caches converge on one warm working set.
package schedule
