package schedule

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// FaultBackend is a deterministic fault-injection harness around a Backend,
// for tests and smoke fleets: per-call latency scripts (including the
// mid-grid slowdown of SlowAfter), scripted failures, and a hook observing
// cancelled injected waits. The injected delay honors context cancellation
// — a cancelled call returns ctx.Err() without running the inner backend —
// so a hedged shard's loser releases the child immediately, exactly like a
// real server whose request context is cancelled when the client hangs up.
//
// With no scripts set, FaultBackend is a transparent wrapper. Call numbers
// are assigned under a lock across concurrent Runs, monotonically from 0,
// so a script keyed on the call number is deterministic in how many calls
// misbehave even when their order interleaves.
type FaultBackend struct {
	inner Backend

	mu       sync.Mutex
	calls    int
	delay    func(call int, jobs []Job) time.Duration
	fail     func(call int) error
	onCancel func(call int)

	runs      atomic.Int64
	cancelled atomic.Int64
}

// NewFaultBackend wraps inner with no faults scripted.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{inner: inner}
}

// Capabilities implements Backend, naming the wrapper around the inner
// backend's capabilities.
func (f *FaultBackend) Capabilities() Capabilities {
	caps := f.inner.Capabilities()
	caps.Name = "fault(" + caps.Name + ")"
	return caps
}

// SetDelay injects a fixed latency before every Run call.
func (f *FaultBackend) SetDelay(d time.Duration) {
	f.SetDelayScript(func(int, []Job) time.Duration { return d })
}

// SetDelayScript injects a per-call latency: the script sees the 0-based
// call number and the call's jobs, and returns how long the call stalls
// before evaluating. A nil script removes the injection.
func (f *FaultBackend) SetDelayScript(script func(call int, jobs []Job) time.Duration) {
	f.mu.Lock()
	f.delay = script
	f.mu.Unlock()
}

// SlowAfter scripts the mid-grid slowdown: calls 0..n-1 run at full speed,
// and every call from n on stalls for d first — the "child silently
// degrades mid-grid" scenario the hedged shard exists for.
func (f *FaultBackend) SlowAfter(n int, d time.Duration) {
	f.SetDelayScript(func(call int, _ []Job) time.Duration {
		if call >= n {
			return d
		}
		return 0
	})
}

// SetFailScript injects per-call failures: a non-nil return fails the call
// (after its injected delay) without running the inner backend. A nil
// script removes the injection.
func (f *FaultBackend) SetFailScript(script func(call int) error) {
	f.mu.Lock()
	f.fail = script
	f.mu.Unlock()
}

// OnCancel registers a hook observing cancelled injected waits: it runs on
// the Run goroutine when a delayed call's context is cancelled mid-stall,
// with that call's number. Tests use it to assert that a hedge loser's
// child really observed the cancellation rather than stalling to term.
func (f *FaultBackend) OnCancel(hook func(call int)) {
	f.mu.Lock()
	f.onCancel = hook
	f.mu.Unlock()
}

// Runs returns how many Run calls have started.
func (f *FaultBackend) Runs() int64 { return f.runs.Load() }

// Cancellations returns how many injected waits were cut short by context
// cancellation.
func (f *FaultBackend) Cancellations() int64 { return f.cancelled.Load() }

// Run implements Backend: the call stalls per the delay script (honoring
// cancellation), fails per the fail script, and otherwise runs the inner
// backend.
func (f *FaultBackend) Run(ctx context.Context, jobs []Job, opt BatchOptions) ([]Row, error) {
	f.runs.Add(1)
	f.mu.Lock()
	call := f.calls
	f.calls++
	var delay time.Duration
	if f.delay != nil {
		delay = f.delay(call, jobs)
	}
	var failErr error
	if f.fail != nil {
		failErr = f.fail(call)
	}
	hook := f.onCancel
	f.mu.Unlock()
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			f.cancelled.Add(1)
			if hook != nil {
				hook(call)
			}
			return nil, ctx.Err()
		}
	}
	if failErr != nil {
		return nil, failErr
	}
	return f.inner.Run(ctx, jobs, opt)
}

// Stream implements Backend via the chunked shim, so a FaultBackend slots
// anywhere a Backend does (each chunk is one scripted call).
func (f *FaultBackend) Stream(ctx context.Context, src JobSource, sink RowSink, opt StreamOptions) error {
	return StreamChunked(ctx, f.Run, src, sink, opt)
}
